(* Implicit-vs-materialized equivalence: every ported generator must
   describe byte-for-byte the same CDAG as its materialized namesake —
   same vertex count, edges, degrees, tags, labels and deterministic
   topological order — at several sizes.  This is the license for
   swapping implicit graphs in wherever a frozen CSR used to be. *)

module Cdag = Dmc_cdag.Cdag
module Implicit = Dmc_cdag.Implicit
module Topo = Dmc_cdag.Topo
module Subgraph = Dmc_cdag.Subgraph
module Shapes = Dmc_gen.Shapes
module Fft = Dmc_gen.Fft
module Linalg = Dmc_gen.Linalg
module Stencil = Dmc_gen.Stencil
module Implicit_gen = Dmc_gen.Implicit_gen
module Workload = Dmc_gen.Workload

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sorted_collect iter v =
  let out = ref [] in
  iter v (fun w -> out := w :: !out);
  List.rev !out

(* The full equivalence predicate: same n, same succ/pred rows (order
   included), same tagging, same labels, same deterministic topo
   order. *)
let assert_equiv name (imp : Implicit.t) (g : Cdag.t) =
  check (name ^ ": n_vertices") (Cdag.n_vertices g) imp.Implicit.n_vertices;
  check (name ^ ": n_edges") (Cdag.n_edges g) (Implicit.n_edges imp);
  for v = 0 to Cdag.n_vertices g - 1 do
    let fail what = Alcotest.failf "%s: vertex %d: %s differ" name v what in
    if sorted_collect imp.Implicit.iter_succ v <> Cdag.succ_list g v then
      fail "successors";
    if sorted_collect imp.Implicit.iter_pred v <> Cdag.pred_list g v then
      fail "predecessors";
    if imp.Implicit.is_input v <> Cdag.is_input g v then fail "input tags";
    if imp.Implicit.is_output v <> Cdag.is_output g v then fail "output tags";
    if imp.Implicit.label v <> Cdag.label g v then fail "labels"
  done;
  (* materializing the implicit graph and wrapping the materialized one
     both round-trip *)
  let m = Implicit.materialize imp in
  check (name ^ ": materialized edges") (Cdag.n_edges g) (Cdag.n_edges m);
  if Topo.order m <> Topo.order g then
    Alcotest.failf "%s: topological orders differ" name;
  check_bool (name ^ ": id-monotone") true (Implicit.check_monotone imp)

let test_chain () =
  List.iter
    (fun n -> assert_equiv (Printf.sprintf "chain:%d" n)
        (Implicit_gen.chain n) (Shapes.chain n))
    [ 1; 7; 64 ]

let test_tree () =
  List.iter
    (fun n -> assert_equiv (Printf.sprintf "tree:%d" n)
        (Implicit_gen.reduction_tree n) (Shapes.reduction_tree n))
    [ 1; 2; 5; 13; 64; 100 ]

let test_diamond () =
  List.iter
    (fun (r, c) -> assert_equiv (Printf.sprintf "diamond:%d,%d" r c)
        (Implicit_gen.diamond ~rows:r ~cols:c)
        (Shapes.diamond ~rows:r ~cols:c))
    [ (1, 1); (3, 5); (8, 8); (1, 9) ]

let test_fft () =
  List.iter
    (fun k -> assert_equiv (Printf.sprintf "fft:%d" k)
        (Implicit_gen.butterfly k) (Fft.butterfly k))
    [ 0; 1; 3; 6 ]

let test_matmul () =
  List.iter
    (fun n -> assert_equiv (Printf.sprintf "matmul:%d" n)
        (Implicit_gen.matmul n) (Linalg.matmul n))
    [ 1; 2; 4; 7 ]

let test_jacobi () =
  List.iter
    (fun (n, t) -> assert_equiv (Printf.sprintf "jacobi1d:%d,%d" n t)
        (Implicit_gen.jacobi_1d ~n ~steps:t)
        (Stencil.jacobi_1d ~n ~steps:t).Stencil.graph)
    [ (1, 1); (9, 3); (32, 8) ];
  List.iter
    (fun (n, t) -> assert_equiv (Printf.sprintf "jacobi2d:%d,%d" n t)
        (Implicit_gen.jacobi_2d ~n ~steps:t)
        (Stencil.jacobi_2d ~n ~steps:t ()).Stencil.graph)
    [ (3, 2); (6, 3) ];
  List.iter
    (fun (n, t) -> assert_equiv (Printf.sprintf "jacobi3d:%d,%d" n t)
        (Implicit_gen.jacobi_3d ~n ~steps:t)
        (Stencil.jacobi_3d ~n ~steps:t).Stencil.graph)
    [ (2, 2); (4, 2) ]

(* of_cdag on an irregular graph round-trips through materialize *)
let test_of_cdag_roundtrip () =
  let g = Linalg.cholesky 5 in
  let imp = Implicit.of_cdag g in
  assert_equiv "of_cdag(cholesky:5)" imp g

(* windows: Theorem-2 tagging and edge discovery without global scans *)
let test_window () =
  let imp = Implicit_gen.jacobi_1d ~n:16 ~steps:4 in
  let g = (Stencil.jacobi_1d ~n:16 ~steps:4).Stencil.graph in
  let part = Implicit.window imp ~lo:16 ~hi:48 in
  let ref_part =
    let set = Dmc_util.Bitset.create (Cdag.n_vertices g) in
    for i = 16 to 47 do Dmc_util.Bitset.add set i done;
    Subgraph.induced g set
  in
  check "window size" (Cdag.n_vertices ref_part.Subgraph.graph)
    (Cdag.n_vertices part.Subgraph.graph);
  check "window edges" (Cdag.n_edges ref_part.Subgraph.graph)
    (Cdag.n_edges part.Subgraph.graph);
  (* same parent ids in the same order *)
  check_bool "window to_parent" true
    (part.Subgraph.to_parent = ref_part.Subgraph.to_parent);
  (* full-range window reproduces the whole graph *)
  let whole = Implicit.window imp ~lo:0 ~hi:imp.Implicit.n_vertices in
  check "whole-window edges" (Cdag.n_edges g)
    (Cdag.n_edges whole.Subgraph.graph)

(* huge instances: construction and local adjacency stay O(1)-ish *)
let test_huge_local_access () =
  let imp = Implicit_gen.jacobi_1d ~n:1_000_000_000 ~steps:8 in
  check "huge n" 9_000_000_000 imp.Implicit.n_vertices;
  let succs = sorted_collect imp.Implicit.iter_succ 500_000_000 in
  check "huge succ count" 3 (List.length succs);
  let fft = Implicit_gen.butterfly 30 in
  check "huge fft n" (31 * (1 lsl 30)) fft.Implicit.n_vertices;
  let preds = sorted_collect fft.Implicit.iter_pred (5 * (1 lsl 30)) in
  check "huge fft pred count" 2 (List.length preds)

let test_registry () =
  (* spec parsing with trailing defaults *)
  (match Workload.parse_implicit "jacobi1d:100" with
  | Ok imp -> check "default T=8" (9 * 100) imp.Implicit.n_vertices
  | Error e -> Alcotest.fail e);
  (match Workload.parse_implicit "jacobi1d:100,3" with
  | Ok imp -> check "explicit T" (4 * 100) imp.Implicit.n_vertices
  | Error e -> Alcotest.fail e);
  check_bool "arity error" true
    (match Workload.parse_implicit "diamond:4" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "unknown name" true
    (match Workload.parse_implicit "nosuch:4" with
    | Error _ -> true
    | Ok _ -> false);
  (* every implicit entry with a materialized namesake agrees on a
     small instance *)
  let small = [ ("chain", [ 12 ]); ("tree", [ 12 ]); ("diamond", [ 4; 6 ]);
                ("fft", [ 3 ]); ("matmul", [ 3 ]); ("jacobi1d", [ 8; 2 ]);
                ("jacobi2d", [ 4; 2 ]); ("jacobi3d", [ 3; 2 ]) ] in
  List.iter
    (fun (name, args) ->
      match (Workload.build_implicit name args, Workload.build name args) with
      | Ok imp, Ok g -> assert_equiv ("registry " ^ name) imp g
      | _ -> Alcotest.failf "registry build failed for %s" name)
    small

let () =
  Alcotest.run "implicit"
    [
      ( "equivalence",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "tree" `Quick test_tree;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "fft" `Quick test_fft;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "jacobi" `Quick test_jacobi;
          Alcotest.test_case "of_cdag roundtrip" `Quick test_of_cdag_roundtrip;
        ] );
      ( "windows",
        [
          Alcotest.test_case "window" `Quick test_window;
          Alcotest.test_case "huge local access" `Quick test_huge_local_access;
        ] );
      ( "registry",
        [ Alcotest.test_case "registry" `Quick test_registry ] );
    ]
