(* Tests for the bound-query daemon: content-addressed cache keys, the
   wire protocol codecs, the persisted LRU result cache, and — against
   a forked live daemon — typed error replies for malformed requests,
   bounded admission, graceful SIGTERM drain with an in-flight worker,
   and cache survival across kill -9. *)

module Json = Dmc_util.Json
module Ipc = Dmc_util.Ipc
module Budget = Dmc_util.Budget
module Checkpoint = Dmc_util.Checkpoint
module Fault = Dmc_runtime.Fault
module Cache_key = Dmc_serve.Cache_key
module Protocol = Dmc_serve.Protocol
module Result_cache = Dmc_serve.Result_cache
module Server = Dmc_serve.Server

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let diamond = Dmc_gen.Workload.parse_exn "diamond:4,4"

let job ?(engine = "wavefront") ?(s = 4) ?timeout ?node_budget ?(samples = 64)
    graph =
  {
    Dmc_core.Engine_job.engine;
    graph;
    s;
    p = 1;
    timeout;
    node_budget;
    samples;
  }

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)

let test_key_identity () =
  let text = Dmc_cdag.Serialize.to_string diamond in
  let k1 = Cache_key.of_job (job text) and k2 = Cache_key.of_job (job text) in
  check_string "same job, same key" k1 k2;
  (* formatting noise in the graph text must not split the entry *)
  let noisy = "\n" ^ String.concat "\n" (String.split_on_char '\n' text) in
  check_string "canonicalized graph text" k1 (Cache_key.of_job (job noisy))

let test_key_discrimination () =
  let text = Dmc_cdag.Serialize.to_string diamond in
  let base = Cache_key.of_job (job text) in
  let differs name j =
    check_bool name true (Cache_key.of_job j <> base)
  in
  differs "s" (job ~s:5 text);
  differs "engine" (job ~engine:"lru" text);
  differs "timeout" (job ~timeout:1.5 text);
  differs "node budget" (job ~node_budget:1000 text);
  differs "samples" (job ~samples:8 text);
  differs "graph" (job (Dmc_cdag.Serialize.to_string (Dmc_gen.Workload.parse_exn "chain:9")))

let spec_key ?(engine = "wavefront") ?(s = 4) ?timeout ?node_budget
    ?(samples = 64) spec =
  Cache_key.of_spec ~engine ~s ~timeout ~node_budget ~samples spec

let test_key_spec () =
  let k = spec_key "diamond:4,4" in
  check_string "stable" k (spec_key "diamond:4,4");
  check_string "whitespace trimmed" k (spec_key " diamond:4,4\n");
  (* the spec key space never collides with the inline-graph space,
     even for the graph the spec would build *)
  check_bool "disjoint from of_job" true
    (k <> Cache_key.of_job (job (Dmc_cdag.Serialize.to_string diamond)));
  List.iter
    (fun (name, k') -> check_bool name true (k' <> k))
    [
      ("spec", spec_key "diamond:4,5");
      ("engine", spec_key ~engine:"lru" "diamond:4,4");
      ("s", spec_key ~s:5 "diamond:4,4");
      ("timeout", spec_key ~timeout:1.5 "diamond:4,4");
      ("node budget", spec_key ~node_budget:1000 "diamond:4,4");
      ("samples", spec_key ~samples:8 "diamond:4,4");
    ]

(* ------------------------------------------------------------------ *)
(* Protocol codecs                                                     *)

let roundtrip_request req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok req' -> check_bool "request roundtrip" true (req = req')
  | Error msg -> Alcotest.fail msg

let roundtrip_reply reply =
  match Protocol.reply_of_json (Protocol.reply_to_json reply) with
  | Ok reply' -> check_bool "reply roundtrip" true (reply = reply')
  | Error msg -> Alcotest.fail msg

let test_protocol_roundtrips () =
  List.iter roundtrip_request
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Shutdown;
      Protocol.query (Protocol.Spec "diamond:4,4") ~engine:"wavefront" ~s:8;
      Protocol.query ~timeout:2.5 ~node_budget:100 ~samples:16
        (Protocol.Graph "g") ~engine:"optimal" ~s:3;
    ];
  List.iter roundtrip_reply
    [
      Protocol.Pong;
      Protocol.Bye;
      Protocol.Stats_snapshot (Json.Obj [ ("counters", Json.Obj []) ]);
      Protocol.Metrics_snapshot
        (Json.Obj [ ("uptime_s", Json.Float 1.5); ("text", Json.String "x 1") ]);
      Protocol.Result { cached = true; row = Json.Obj [ ("value", Json.Int 6) ] };
      Protocol.Failed Budget.Timeout;
      Protocol.Failed (Budget.Invalid_input "nope");
      Protocol.Rejected Protocol.Overloaded;
      Protocol.Rejected Protocol.Draining;
      Protocol.Rejected (Protocol.Protocol "bad header");
    ]

let test_protocol_bad_shapes () =
  List.iter
    (fun json ->
      match Protocol.request_of_json json with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" (Json.to_string ~indent:false json))
    [
      Json.Obj [];
      Json.Obj [ ("req", Json.Int 3) ];
      Json.Obj [ ("req", Json.String "explode") ];
      Json.Obj [ ("req", Json.String "query") ];
      Json.Obj
        [
          ("req", Json.String "query");
          ("spec", Json.String "a");
          ("graph", Json.String "b");
          ("engine", Json.String "lru");
          ("s", Json.Int 4);
        ];
      Json.Obj
        [ ("req", Json.String "query"); ("spec", Json.String "a"); ("s", Json.Int 4) ];
    ]

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)

let fresh_dir () =
  let dir = Filename.temp_file "dmc-serve-cache" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let test_cache_lru () =
  let c = Result_cache.create ~capacity:2 () in
  Result_cache.add c "a" (Json.Int 1);
  Result_cache.add c "b" (Json.Int 2);
  check_bool "a hits" true (Result_cache.find c "a" = Some (Json.Int 1));
  (* a is now MRU; inserting c must evict b *)
  Result_cache.add c "c" (Json.Int 3);
  check "still two entries" 2 (Result_cache.size c);
  check_bool "b evicted" true (Result_cache.find c "b" = None);
  check_bool "a survives" true (Result_cache.find c "a" = Some (Json.Int 1));
  check_bool "c present" true (Result_cache.find c "c" = Some (Json.Int 3))

(* Directory ownership: a second lock on a held directory fails typed;
   a lock whose owner is dead (a kill -9'd daemon) is reclaimed. *)
let test_cache_dir_lock () =
  let dir = fresh_dir () in
  (match Result_cache.lock_dir dir with
  | Error e -> Alcotest.fail (Result_cache.lock_error_to_string e)
  | Ok lock -> (
      (match Result_cache.lock_dir dir with
      | Ok _ -> Alcotest.fail "second lock on a held directory succeeded"
      | Error (Result_cache.Held { pid; path }) ->
          check "held by this process" (Unix.getpid ()) pid;
          check_bool "lock file lives in the cache dir" true
            (Filename.dirname path = dir)
      | Error (Result_cache.Lock_io _ as e) ->
          Alcotest.fail (Result_cache.lock_error_to_string e));
      Result_cache.unlock_dir lock;
      match Result_cache.lock_dir dir with
      | Ok lock' -> Result_cache.unlock_dir lock'
      | Error e ->
          Alcotest.failf "relock after unlock: %s"
            (Result_cache.lock_error_to_string e)));
  (* stale lock: a pid that is certainly gone (a reaped child) *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let oc = open_out (Filename.concat dir "lock.pid") in
  output_string oc (string_of_int dead_pid);
  close_out oc;
  (match Result_cache.lock_dir dir with
  | Ok lock -> Result_cache.unlock_dir lock
  | Error e ->
      Alcotest.failf "stale lock not reclaimed: %s"
        (Result_cache.lock_error_to_string e));
  rm_rf dir

let test_cache_persistence () =
  let dir = fresh_dir () in
  let c = Result_cache.create ~dir ~capacity:8 () in
  Result_cache.add c "k1" (Json.Obj [ ("value", Json.Int 6) ]);
  Result_cache.add c "k2" (Json.Int 2);
  ignore (Result_cache.find c "k1" : Json.t option);
  Result_cache.save c;
  (* a second instance over the same directory starts warm, with
     recency preserved: k2 is LRU after the k1 touch above *)
  let c' = Result_cache.create ~dir ~capacity:2 () in
  check "reloaded both" 2 (Result_cache.size c');
  (match Result_cache.entries c' with
  | [ ("k2", _); ("k1", _) ] -> ()
  | entries ->
      Alcotest.failf "recency lost: %s"
        (String.concat "," (List.map fst entries)));
  check_bool "k1 row intact" true
    (Result_cache.find c' "k1" = Some (Json.Obj [ ("value", Json.Int 6) ]));
  rm_rf dir

let test_cache_corrupt_file () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "results.json" in
  let oc = open_out file in
  output_string oc "{ not json at all";
  close_out oc;
  (* a damaged cache costs recomputation, never availability *)
  let c = Result_cache.create ~dir ~capacity:4 () in
  check "corrupt file yields empty cache" 0 (Result_cache.size c);
  Result_cache.add c "k" (Json.Int 1);
  let c' = Result_cache.create ~dir ~capacity:4 () in
  check "recovered and persisted" 1 (Result_cache.size c');
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Live daemon harness                                                 *)

let temp_sock () =
  let path = Filename.temp_file "dmc-serve" ".sock" in
  Sys.remove path;
  path

let fork_server ?cache_dir ?(jobs = 2) ?(job_timeout = None) ?(faults = [])
    ?(max_inflight = 64) ?(read_timeout = 2.) ~socket () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let stop = ref false in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
      let cfg =
        {
          Server.default with
          socket_path = socket;
          cache_dir;
          max_inflight;
          read_timeout;
          jobs;
          job_timeout;
          faults;
          should_drain = (fun () -> !stop);
        }
      in
      (match Server.serve cfg with
      | Ok () -> Unix._exit (if !stop then 143 else 0)
      | Error _ -> Unix._exit 1)
  | pid -> pid

let connect path =
  let rec go tries =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 100

let read_reply fd =
  match Ipc.read_frame ~deadline:(Unix.gettimeofday () +. 30.) fd with
  | Error e -> Alcotest.failf "reply: %s" (Ipc.read_error_to_string e)
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Ok reply -> reply
      | Error msg -> Alcotest.failf "unparseable reply: %s" msg)

let rpc path req =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Ipc.write_frame fd (Protocol.request_to_json req);
      read_reply fd)

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon died on signal %d" s
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped"

let shutdown_server path pid =
  (match rpc path Protocol.Shutdown with
  | Protocol.Bye -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  check "graceful exit" 0 (wait_exit pid)

let graph_query ?timeout ?(s = 4) () =
  Protocol.query ?timeout (Protocol.Spec "diamond:4,4") ~engine:"wavefront" ~s

let test_server_query_and_cache () =
  let socket = temp_sock () in
  let pid = fork_server ~socket () in
  (match rpc socket Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping");
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = false; row } ->
      check_bool "row has a value" true (Json.mem row "value" <> None)
  | _ -> Alcotest.fail "first query should compute");
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = true; _ } -> ()
  | _ -> Alcotest.fail "second query should hit the cache");
  (* spec and inline-graph queries live in disjoint key spaces: the spec
     key is computed from the spec string alone (no materialization), so
     an equivalent inline graph is a separate entry, not a hit *)
  let inline =
    Protocol.query
      (Protocol.Graph (Dmc_cdag.Serialize.to_string diamond))
      ~engine:"wavefront" ~s:4
  in
  (match rpc socket inline with
  | Protocol.Result { cached = false; _ } -> ()
  | _ -> Alcotest.fail "inline graph must not hit the spec-keyed entry");
  (match rpc socket inline with
  | Protocol.Result { cached = true; _ } -> ()
  | _ -> Alcotest.fail "repeated inline graph should hit its own entry");
  (match rpc socket Protocol.Stats with
  | Protocol.Stats_snapshot stats ->
      let counter name =
        Option.bind (Json.mem stats "counters") (fun c ->
            Option.bind (Json.mem c name) Json.as_int)
      in
      check_bool "two computes" true (counter "serve.compute" = Some 2);
      check_bool "two hits" true (counter "serve.cache.hit" = Some 2)
  | _ -> Alcotest.fail "stats");
  shutdown_server socket pid

let test_server_metrics () =
  let socket = temp_sock () in
  let pid = fork_server ~socket () in
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = false; _ } -> ()
  | _ -> Alcotest.fail "first query should compute");
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = true; _ } -> ()
  | _ -> Alcotest.fail "second query should hit the cache");
  (match rpc socket Protocol.Metrics with
  | Protocol.Metrics_snapshot m ->
      (match Option.bind (Json.mem m "uptime_s") Json.as_float with
      | Some up -> check_bool "uptime non-negative" true (up >= 0.)
      | None -> Alcotest.fail "metrics missing uptime_s");
      let cache_field name =
        Option.bind (Json.mem m "cache") (fun c -> Json.mem c name)
      in
      check_bool "one hit, one miss" true
        (Option.bind (cache_field "hits") Json.as_int = Some 1
        && Option.bind (cache_field "misses") Json.as_int = Some 1);
      (match Option.bind (cache_field "ratio") Json.as_float with
      | Some r -> check_bool "ratio is hits/total" true (abs_float (r -. 0.5) < 1e-9)
      | None -> Alcotest.fail "metrics missing cache ratio");
      (match Json.mem m "registry" with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "metrics missing registry snapshot");
      let text =
        match Option.bind (Json.mem m "text") Json.as_string with
        | Some t -> t
        | None -> Alcotest.fail "metrics missing text exposition"
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun needle ->
          check_bool ("exposition has " ^ needle) true (contains text needle))
        [
          "# TYPE dmc_serve_cache_hit counter";
          "# TYPE dmc_serve_lat_request_us summary";
          "# TYPE dmc_serve_cache_hit_ratio gauge";
          "dmc_serve_cache_hit_ratio 0.5";
        ];
      (* every non-comment line must be exactly "name value" with a
         float-parseable value — the contract a scraper relies on *)
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match String.index_opt line ' ' with
            | None -> Alcotest.failf "sample line without a value: %S" line
            | Some i ->
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                check_bool
                  (Printf.sprintf "value parses: %S" line)
                  true
                  (float_of_string_opt v <> None))
        (String.split_on_char '\n' text)
  | _ -> Alcotest.fail "metrics request should return a snapshot");
  shutdown_server socket pid

let test_server_typed_errors () =
  let socket = temp_sock () in
  let pid = fork_server ~socket ~read_timeout:0.4 () in
  let raw bytes =
    let fd = connect socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        if bytes <> "" then
          ignore (Unix.write_substring fd bytes 0 (String.length bytes) : int);
        read_reply fd)
  in
  (match raw "not hex!" with
  | Protocol.Rejected (Protocol.Protocol _) -> ()
  | _ -> Alcotest.fail "bad header should be a typed protocol reject");
  (match raw "00000003tru" with
  | Protocol.Rejected (Protocol.Protocol _) -> ()
  | _ -> Alcotest.fail "non-JSON payload should be a typed protocol reject");
  (match raw (Ipc.encode_frame (Json.Obj [ ("req", Json.String "explode") ])) with
  | Protocol.Rejected (Protocol.Protocol _) -> ()
  | _ -> Alcotest.fail "unknown request should be a typed protocol reject");
  (* a stalled half-frame runs into the read deadline, with byte counts *)
  (match raw "000000" with
  | Protocol.Rejected (Protocol.Protocol detail) ->
      check_bool "deadline detail carries byte counts" true
        (detail = "read deadline exceeded: expected 8 bytes, got 6")
  | _ -> Alcotest.fail "stalled read should be a typed deadline reject");
  (* unknown workload spec and unknown engine are failure-taxonomy replies *)
  (match
     rpc socket (Protocol.query (Protocol.Spec "no-such:1") ~engine:"lru" ~s:4)
   with
  | Protocol.Failed (Budget.Invalid_input _) -> ()
  | _ -> Alcotest.fail "bad spec should fail as invalid-input");
  (match rpc socket (Protocol.query (Protocol.Spec "chain:6") ~engine:"nope" ~s:4) with
  | Protocol.Failed (Budget.Invalid_input _) -> ()
  | _ -> Alcotest.fail "bad engine should fail as invalid-input");
  (* and the daemon survived all of it *)
  (match rpc socket Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "daemon should still answer");
  shutdown_server socket pid

let test_server_overload () =
  let socket = temp_sock () in
  (* one admission slot, and the first query's worker hangs until its
     0.6 s deadline — the second query must be refused, not queued *)
  let pid =
    fork_server ~socket ~jobs:1 ~max_inflight:1 ~job_timeout:(Some 0.6)
      ~faults:
        [ { Fault.kind = Fault.Hang; job = 1; attempts = None } ]
      ()
  in
  let fd1 = connect socket in
  Ipc.write_frame fd1 (Protocol.request_to_json (graph_query ()));
  Unix.sleepf 0.2 (* let the daemon admit query 1 *);
  (match rpc socket (graph_query ~s:5 ()) with
  | Protocol.Rejected Protocol.Overloaded -> ()
  | _ -> Alcotest.fail "second query should be rejected as overloaded");
  (* the hung worker exhausts retries and the client still gets a
     typed failure reply *)
  (match read_reply fd1 with
  | Protocol.Failed Budget.Timeout -> ()
  | r ->
      Alcotest.failf "expected timeout failure, got %s"
        (Json.to_string ~indent:false (Protocol.reply_to_json r)));
  Unix.close fd1;
  shutdown_server socket pid

let test_server_sigterm_drain () =
  let dir = fresh_dir () in
  let socket = temp_sock () in
  (* worker 1 hangs till its deadline, so SIGTERM provably lands while
     the job is in flight; drain must still answer the client, persist
     the cache and exit 143 *)
  let pid =
    fork_server ~socket ~cache_dir:dir ~jobs:1 ~job_timeout:(Some 0.8)
      ~faults:[ { Fault.kind = Fault.Hang; job = 1; attempts = Some 1 } ]
      ()
  in
  let fd = connect socket in
  Ipc.write_frame fd (Protocol.request_to_json (graph_query ()));
  Unix.sleepf 0.2;
  Unix.kill pid Sys.sigterm;
  (* drained, not dropped: the in-flight query retries after the hang
     and comes back as a real row *)
  (match read_reply fd with
  | Protocol.Result { cached = false; _ } -> ()
  | r ->
      Alcotest.failf "expected a computed row, got %s"
        (Json.to_string ~indent:false (Protocol.reply_to_json r)));
  Unix.close fd;
  check "SIGTERM drain exits 143" 143 (wait_exit pid);
  check_bool "socket removed" true (not (Sys.file_exists socket));
  (* the drained row made it to disk *)
  let c = Result_cache.create ~dir ~capacity:8 () in
  check "cache persisted on drain" 1 (Result_cache.size c);
  rm_rf dir

let test_server_kill9_warm_restart () =
  let dir = fresh_dir () in
  let socket = temp_sock () in
  let pid = fork_server ~socket ~cache_dir:dir () in
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = false; _ } -> ()
  | _ -> Alcotest.fail "first query should compute");
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid : int * Unix.process_status);
  (* restart over the same cache dir (and the stale socket file): the
     answered query must be a warm hit, with zero recomputation *)
  let pid = fork_server ~socket ~cache_dir:dir () in
  (match rpc socket (graph_query ()) with
  | Protocol.Result { cached = true; _ } -> ()
  | _ -> Alcotest.fail "restart should answer from the persisted cache");
  (match rpc socket Protocol.Stats with
  | Protocol.Stats_snapshot stats ->
      let counter name =
        Option.bind (Json.mem stats "counters") (fun c ->
            Option.bind (Json.mem c name) Json.as_int)
      in
      check_bool "no recomputation" true (counter "serve.compute" = Some 0)
  | _ -> Alcotest.fail "stats");
  shutdown_server socket pid;
  rm_rf dir

let () =
  Alcotest.run "dmc_serve"
    [
      ( "cache-key",
        [
          Alcotest.test_case "identity and canonicalization" `Quick
            test_key_identity;
          Alcotest.test_case "discriminates every input" `Quick
            test_key_discrimination;
          Alcotest.test_case "spec keys: no materialization, own space"
            `Quick test_key_spec;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrips" `Quick test_protocol_roundtrips;
          Alcotest.test_case "bad shapes rejected" `Quick
            test_protocol_bad_shapes;
        ] );
      ( "result-cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "directory lock" `Quick test_cache_dir_lock;
          Alcotest.test_case "persistence preserves recency" `Quick
            test_cache_persistence;
          Alcotest.test_case "corrupt file tolerated" `Quick
            test_cache_corrupt_file;
        ] );
      ( "server",
        [
          Alcotest.test_case "query, cache, stats" `Quick
            test_server_query_and_cache;
          Alcotest.test_case "metrics exposition" `Quick test_server_metrics;
          Alcotest.test_case "typed errors, daemon survives" `Quick
            test_server_typed_errors;
          Alcotest.test_case "bounded admission" `Quick test_server_overload;
          Alcotest.test_case "sigterm drain" `Quick test_server_sigterm_drain;
          Alcotest.test_case "kill -9, warm restart" `Quick
            test_server_kill9_warm_restart;
        ] );
    ]
