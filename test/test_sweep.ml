(* Tests for the distributed-sweep stack: the Sweep grid algebra, the
   Host lease/health state machine, the Transport call envelope, and
   the multi-host Pool end-to-end (fake shell workers for failure
   shapes, the real [dmc worker] binary for value determinism). *)

module Json = Dmc_util.Json
module Ipc = Dmc_util.Ipc
module Sweep = Dmc_analysis.Sweep
module Host = Dmc_runtime.Host
module Transport = Dmc_runtime.Transport
module Pool = Dmc_runtime.Pool

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let fail_result = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let must_error what = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error (_ : string) -> ()

(* ------------------------------------------------------------------ *)
(* parse_int_list                                                      *)

let test_parse_int_list () =
  Alcotest.(check (list int))
    "singletons and ranges" [ 8; 12; 16; 17; 18; 19 ]
    (fail_result (Sweep.parse_int_list "8,12,16..19"));
  Alcotest.(check (list int))
    "single value" [ 5 ]
    (fail_result (Sweep.parse_int_list "5"));
  Alcotest.(check (list int))
    "degenerate range" [ 3 ]
    (fail_result (Sweep.parse_int_list "3..3"));
  List.iter
    (fun s -> must_error ("parse_int_list " ^ s) (Sweep.parse_int_list s))
    [ ""; "a"; "1,,2"; "5..3"; "..4"; "4.."; "1.5" ]

(* ------------------------------------------------------------------ *)
(* Grid expansion and validation                                       *)

let test_grid_expansion_order () =
  let grid =
    fail_result
      (Sweep.make
         ~specs:[ "jacobi1d:{n},3" ]
         ~sizes:[ 6; 8 ] ~ss:[ 4; 8 ]
         ~engines:[ "floor"; "lru" ]
         ())
  in
  let rows = Sweep.rows grid in
  check "row count" 8 (List.length rows);
  let expect =
    [
      ("jacobi1d:6,3", 4, "floor");
      ("jacobi1d:6,3", 4, "lru");
      ("jacobi1d:6,3", 8, "floor");
      ("jacobi1d:6,3", 8, "lru");
      ("jacobi1d:8,3", 4, "floor");
      ("jacobi1d:8,3", 4, "lru");
      ("jacobi1d:8,3", 8, "floor");
      ("jacobi1d:8,3", 8, "lru");
    ]
  in
  List.iteri
    (fun i (wl, s, e) ->
      let r = List.nth rows i in
      check_str (Printf.sprintf "row %d workload" i) wl r.Sweep.workload;
      check (Printf.sprintf "row %d s" i) s r.Sweep.s;
      check_str (Printf.sprintf "row %d engine" i) e r.Sweep.engine)
    expect

let test_grid_seed_axis () =
  let grid =
    fail_result
      (Sweep.make
         ~specs:[ "layered:{seed},3,4" ]
         ~seeds:[ 1; 2; 3 ] ~ss:[ 4 ] ~engines:[ "floor" ] ())
  in
  let rows = Sweep.rows grid in
  check "one row per seed" 3 (List.length rows);
  check_str "seed substituted" "layered:1,3,4"
    (List.hd rows).Sweep.workload;
  (* graphs build (and memoize) per concrete spec *)
  List.iter (fun r -> ignore (fail_result (Sweep.job grid r))) rows

let test_grid_validation () =
  let make ?sizes ?seeds ?(ss = [ 4 ]) ?engines specs =
    Sweep.make ~specs ?sizes ?seeds ~ss ?engines ()
  in
  must_error "empty specs" (make []);
  must_error "empty ss" (Sweep.make ~specs:[ "fft:3" ] ~ss:[] ());
  must_error "non-positive s" (make ~ss:[ 0 ] [ "fft:3" ]);
  must_error "unknown engine" (make ~engines:[ "rb" ] [ "fft:3" ]);
  must_error "placeholder without axis" (make [ "jacobi1d:{n},3" ]);
  must_error "axis without placeholder" (make ~sizes:[ 6 ] [ "fft:3" ]);
  must_error "seeds without {seed}" (make ~seeds:[ 1 ] [ "fft:3" ]);
  must_error "unknown workload" (make [ "nosuch:3" ]);
  must_error "wrong arity" (make [ "fft:3,4,5" ]);
  must_error "non-integer param" (make [ "fft:x" ]);
  (* a valid grid with every engine defaulted *)
  let grid = fail_result (make [ "fft:3" ]) in
  check "engines default to all governed"
    (List.length Dmc_core.Bounds.governed_engines)
    (List.length (Sweep.rows grid))

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore                                                *)

let test_checkpoint_roundtrip () =
  let grid =
    fail_result
      (Sweep.make ~specs:[ "fft:3" ] ~ss:[ 4; 8 ] ~engines:[ "floor" ] ())
  in
  let committed = [ Json.Int 1; Json.Int 2 ] in
  (match Sweep.restore grid (Sweep.checkpoint grid ~committed) with
  | Ok payloads -> check_bool "prefix survives" true (payloads = committed)
  | Error e -> Alcotest.fail e);
  must_error "foreign kind"
    (Sweep.restore grid (Json.Obj [ ("kind", Json.String "other") ]));
  let other =
    fail_result
      (Sweep.make ~specs:[ "fft:3" ] ~ss:[ 4 ] ~engines:[ "floor" ] ())
  in
  must_error "signature mismatch"
    (Sweep.restore other (Sweep.checkpoint grid ~committed));
  must_error "more payloads than rows"
    (Sweep.restore grid
       (Sweep.checkpoint grid
          ~committed:[ Json.Int 1; Json.Int 2; Json.Int 3 ]))

let test_doc_uncommitted_rows () =
  let grid =
    fail_result
      (Sweep.make ~specs:[ "fft:3" ] ~ss:[ 4 ] ~engines:[ "floor"; "lru" ] ())
  in
  let done_row r =
    match Sweep.job grid r with
    | Error e -> Alcotest.fail e
    | Ok j -> (
        match Dmc_core.Engine_job.run j with
        | Ok payload -> payload
        | Error f -> Alcotest.fail (Dmc_util.Budget.failure_to_string f))
  in
  let rows = Sweep.rows grid in
  let all = List.map (fun r -> Some (done_row r)) rows in
  check_bool "complete sweep is ok" true
    (Dmc_analysis.Doc.ok (Sweep.doc grid ~results:all));
  let partial = [ List.hd all; None ] in
  let doc = Sweep.doc grid ~results:partial in
  check_bool "uncommitted row fails the report" false (Dmc_analysis.Doc.ok doc);
  let text = Dmc_analysis.Doc.to_text doc in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "uncommitted row is visible" true (contains text "not committed")

(* ------------------------------------------------------------------ *)
(* Transport envelope                                                  *)

let test_envelope_roundtrip () =
  let job = Json.Obj [ ("kind", Json.String "j"); ("n", Json.Int 3) ] in
  (match
     Transport.parse_envelope (Transport.envelope ~hb:true ~fault:None job)
   with
  | Ok { Transport.job = j; hb; obs; trace; fault } ->
      check_bool "job survives" true (j = job);
      check_bool "hb survives" true hb;
      check_bool "obs defaults off" false obs;
      check_bool "no trace by default" true (trace = None);
      check_bool "no fault" true (fault = None)
  | Error e -> Alcotest.fail e);
  (let tr = { Transport.run = "r1"; host = "h"; lease = "0:1" } in
   match
     Transport.parse_envelope
       (Transport.envelope ~hb:false ~obs:true ~trace:tr ~fault:None job)
   with
   | Ok { Transport.obs; trace; _ } ->
       check_bool "obs survives" true obs;
       check_bool "trace survives" true (trace = Some tr)
   | Error e -> Alcotest.fail e);
  must_error "non-envelope refused"
    (Transport.parse_envelope (Json.Obj [ ("kind", Json.String "x") ]));
  must_error "wrong version refused"
    (Transport.parse_envelope
       (Json.Obj
          [
            ("kind", Json.String "dmc-worker-call");
            ("v", Json.Int (Transport.call_version + 1));
            ("job", Json.Null);
          ]))

(* ------------------------------------------------------------------ *)
(* Host state machine                                                  *)

let fast_policy =
  {
    Host.default_policy with
    quarantine_base = 0.05;
    quarantine_cap = 0.2;
  }

let mk_remote ?(policy = fast_policy) ?(capacity = 1) name =
  Host.remote ~policy ~name ~capacity ~argv:[ "/bin/false" ] ()

let test_host_quarantine_backoff () =
  let h = mk_remote "q" in
  let now = 1000. in
  let fail_until_quarantined now =
    let rec go n now =
      if n > 10 then Alcotest.fail "never quarantined"
      else
        match Host.record h ~now (Host.Transport_failure "x") with
        | `Quarantined -> ()
        | `Fine -> go (n + 1) now
    in
    go 0 now
  in
  fail_until_quarantined now;
  check_bool "dead after threshold" true (h.Host.verdict = Host.Dead);
  let q1 = h.Host.until -. now in
  check_bool "first quarantine = base" true (abs_float (q1 -. 0.05) < 1e-9);
  check_bool "quarantined now" true (Host.quarantined h ~now);
  check_bool "not available while quarantined" false (Host.available h ~now);
  (* next_wakeup points at the expiry for the supervisor's select *)
  (match Host.next_wakeup h with
  | Some t -> check_bool "wakeup is the expiry" true (t = h.Host.until)
  | None -> Alcotest.fail "no wakeup for a finite quarantine");
  (* repeated quarantines double, capped *)
  let rec requarantine n last =
    if n = 0 then last
    else begin
      let now = h.Host.until +. 0.001 in
      check_bool "available for a probe after expiry" true
        (Host.available h ~now);
      Host.lease h ~now;
      check_bool "probing" true h.Host.probing;
      Host.release h;
      fail_until_quarantined now;
      requarantine (n - 1) now
    end
  in
  let last_now = requarantine 5 now in
  let qn = h.Host.until -. last_now in
  check_bool "backoff grew past the base" true (qn > 0.05 +. 1e-9);
  check_bool "backoff capped" true (qn <= 0.2 +. 1e-9)

let test_host_probe_redeems () =
  let h = mk_remote "p" in
  let now = 0. in
  for _ = 1 to h.Host.policy.Host.fail_threshold do
    ignore (Host.record h ~now (Host.Transport_failure "x"))
  done;
  check_bool "dead" true (h.Host.verdict = Host.Dead);
  let now = h.Host.until +. 0.01 in
  Host.lease h ~now;
  (match Host.record h ~now Host.Ok_result with
  | `Fine -> ()
  | `Quarantined -> Alcotest.fail "probe success must not quarantine");
  Host.release h;
  check_bool "redeemed to alive" true (h.Host.verdict = Host.Alive);
  check "failures reset" 0 h.Host.consec_failures

let test_host_poison_permanent () =
  let h = mk_remote "g" in
  let now = 0. in
  let rec go n =
    if n > 10 then Alcotest.fail "never poisoned"
    else
      match Host.record h ~now (Host.Garbage "junk") with
      | `Quarantined -> ()
      | `Fine -> go (n + 1)
  in
  go 0;
  check_bool "poisoned" true (h.Host.verdict = Host.Poisoned);
  check_bool "never available again" false
    (Host.available h ~now:(now +. 1e9));
  check_bool "no wakeup for infinity" true (Host.next_wakeup h = None)

let test_host_local_never_quarantines () =
  let h = Host.local ~capacity:2 () in
  for _ = 1 to 20 do
    match Host.record h ~now:0. (Host.Transport_failure "x") with
    | `Quarantined -> Alcotest.fail "local host quarantined"
    | `Fine -> ()
  done;
  check_bool "local stays alive" true (h.Host.verdict = Host.Alive);
  check_bool "still available" true (Host.available h ~now:0.)

let test_host_slow_verdict () =
  let h = mk_remote "s" in
  for _ = 1 to h.Host.policy.Host.slow_threshold do
    ignore (Host.record h ~now:0. Host.Deadline_kill)
  done;
  check_bool "slow after repeated deadline kills" true
    (h.Host.verdict = Host.Slow);
  check_bool "slow hosts still serve" true (Host.available h ~now:0.);
  ignore (Host.record h ~now:0. Host.Ok_result);
  check_bool "redeemed" true (h.Host.verdict = Host.Alive)

let test_host_capacity_leases () =
  let h = Host.local ~capacity:2 () in
  Host.lease h ~now:0.;
  Host.lease h ~now:0.;
  check_bool "at capacity" false (Host.available h ~now:0.);
  Host.release h;
  check_bool "slot freed" true (Host.available h ~now:0.);
  check "dispatched counted" 2 h.Host.dispatched

let test_parse_spec () =
  (match Host.parse_spec "local" with
  | Ok h ->
      check_bool "local is not remote" false (Host.is_remote h);
      check "default capacity" 1 h.Host.capacity
  | Error e -> Alcotest.fail e);
  (match Host.parse_spec "local:4" with
  | Ok h -> check "local capacity" 4 h.Host.capacity
  | Error e -> Alcotest.fail e);
  (match Host.parse_spec "cmd:2:python3 worker.py" with
  | Ok h -> (
      check_bool "cmd is remote" true (Host.is_remote h);
      check "cmd capacity" 2 h.Host.capacity;
      match h.Host.transport with
      | Transport.Command { argv } ->
          check_bool "argv split" true
            (argv = [| "python3"; "worker.py" |])
      | Transport.Fork -> Alcotest.fail "cmd host got a fork transport")
  | Error e -> Alcotest.fail e);
  (match Host.parse_spec "ssh:host1" with
  | Ok h -> (
      match h.Host.transport with
      | Transport.Command { argv } ->
          check_bool "ssh wraps dmc worker" true
            (argv.(0) = "ssh"
            && argv.(Array.length argv - 1) = "worker"
            && Array.exists (fun a -> a = "host1") argv)
      | Transport.Fork -> Alcotest.fail "ssh host got a fork transport")
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s -> must_error ("parse_spec " ^ s) (Host.parse_spec s))
    [ ""; "cmd"; "cmd:2:"; "ssh:"; "local:0"; "local:x"; "weird:1:foo" ]

let test_normalize () =
  let remote = mk_remote "r" in
  let hosts = Host.normalize ~jobs:3 [ remote ] in
  check "local prepended" 2 (List.length hosts);
  let local = List.hd hosts in
  check_bool "first is local" false (Host.is_remote local);
  check "local capacity follows jobs" 3 local.Host.capacity;
  (* duplicate names are disambiguated, not merged *)
  let hosts =
    Host.normalize ~jobs:1 [ Host.local ~capacity:1 (); mk_remote "w"; mk_remote "w" ]
  in
  let names = List.map (fun h -> h.Host.name) hosts in
  check "no hosts dropped" 3 (List.length names);
  check_bool "names unique" true
    (List.sort_uniq compare names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Multi-host pool end-to-end (fake shell workers)                     *)

let temp_dir () =
  let dir = Filename.temp_file "dmc-sweep-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let write_script dir name body =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc ("#!/bin/sh\n" ^ body);
  close_out oc;
  Unix.chmod path 0o755;
  path

(* A fake worker that answers every call with the same ok frame. *)
let ok_worker dir payload =
  let frame_file = Filename.concat dir "frame.bin" in
  let oc = open_out_bin frame_file in
  output_string oc (Ipc.encode_frame (Json.Obj [ ("ok", payload) ]));
  close_out oc;
  write_script dir "ok_worker.sh"
    (Printf.sprintf "cat >/dev/null\ncat %s\n" (Filename.quote frame_file))

let garbage_worker dir =
  write_script dir "garbage_worker.sh"
    "cat >/dev/null\necho this-is-not-a-frame\n"

let fast_cfg =
  {
    Pool.default with
    jobs = 2;
    max_retries = 1;
    backoff_base = 0.01;
    backoff_cap = 0.02;
  }

let run_pool ?hosts jobs =
  Pool.run ?hosts ~encode:(fun j -> j) fast_cfg
    ~worker:(fun i _ -> Ok (Json.Int i))
    jobs

let jobs n = List.init n (fun i -> Json.Obj [ ("job", Json.Int i) ])

let test_pool_remote_ok_worker () =
  let dir = temp_dir () in
  let script = ok_worker dir (Json.Int 42) in
  let host =
    Host.remote ~policy:fast_policy ~name:"fake" ~capacity:2
      ~argv:[ "/bin/sh"; script ] ()
  in
  let outcomes = run_pool ~hosts:[ host ] (jobs 4) in
  Array.iteri
    (fun i o ->
      match o.Pool.verdict with
      | Pool.Done v ->
          check_bool (Printf.sprintf "job %d answered by the fake" i) true
            (v = Json.Int 42)
      | v ->
          Alcotest.failf "job %d: %s" i (Pool.verdict_to_string v))
    outcomes;
  check "all attempts went remote" 4 host.Host.completed

let test_pool_failover_to_local () =
  let dead =
    Host.remote ~policy:fast_policy ~name:"dead" ~capacity:2
      ~argv:[ "/nonexistent/dmc-test-binary" ] ()
  in
  let local = Host.local ~capacity:2 () in
  let outcomes = run_pool ~hosts:[ dead; local ] (jobs 6) in
  Array.iteri
    (fun i o ->
      match o.Pool.verdict with
      | Pool.Done v ->
          check_bool (Printf.sprintf "job %d fell back to local" i) true
            (v = Json.Int i)
      | v -> Alcotest.failf "job %d: %s" i (Pool.verdict_to_string v))
    outcomes;
  check_bool "dead host ended dead" true (dead.Host.verdict = Host.Dead);
  check_bool "dead host completed nothing" true (dead.Host.completed = 0);
  check_bool "leases were re-sharded" true (dead.Host.resharded > 0)

let test_pool_garbage_host_poisoned () =
  let dir = temp_dir () in
  let script = garbage_worker dir in
  let bad =
    Host.remote ~policy:fast_policy ~name:"liar" ~capacity:1
      ~argv:[ "/bin/sh"; script ] ()
  in
  let local = Host.local ~capacity:2 () in
  let outcomes = run_pool ~hosts:[ bad; local ] (jobs 5) in
  Array.iteri
    (fun i o ->
      match o.Pool.verdict with
      | Pool.Done v ->
          check_bool (Printf.sprintf "job %d committed locally" i) true
            (v = Json.Int i)
      | v -> Alcotest.failf "job %d: %s" i (Pool.verdict_to_string v))
    outcomes;
  check_bool "garbage host poisoned" true (bad.Host.verdict = Host.Poisoned)

let test_pool_all_hosts_poisoned () =
  let dir = temp_dir () in
  let script = garbage_worker dir in
  let bad =
    Host.remote ~policy:fast_policy ~name:"only-liar" ~capacity:1
      ~argv:[ "/bin/sh"; script ] ()
  in
  let outcomes = run_pool ~hosts:[ bad ] (jobs 3) in
  check_bool "host poisoned" true (bad.Host.verdict = Host.Poisoned);
  Array.iteri
    (fun i o ->
      match o.Pool.verdict with
      | Pool.Done _ -> Alcotest.failf "job %d committed from garbage" i
      | _ -> ())
    outcomes;
  check_bool "at least one job typed as unservable" true
    (Array.exists
       (fun o ->
         match o.Pool.verdict with
         | Pool.Engine_failure (Dmc_util.Budget.Internal _) -> true
         | _ -> false)
       outcomes)

let test_pool_postmortem_dump () =
  (* A garbage host poisons itself; with the flight recorder armed,
     every protocol-broken attempt must leave a postmortem file, and
     the quarantine must land in the span buffer as an instant event
     on the host's lane. *)
  let dir = temp_dir () in
  let script = garbage_worker dir in
  let pm_dir = Filename.concat dir "pm" in
  let bad =
    Host.remote ~policy:fast_policy ~name:"liar-pm" ~capacity:1
      ~argv:[ "/bin/sh"; script ] ()
  in
  let local = Host.local ~capacity:2 () in
  Dmc_obs.Registry.reset ();
  Dmc_obs.Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Dmc_obs.Registry.set_enabled false)
    (fun () ->
      let (_ : Pool.outcome array) =
        Pool.run ~hosts:[ bad; local ]
          ~encode:(fun j -> j)
          { fast_cfg with postmortem_dir = Some pm_dir }
          ~worker:(fun i _ -> Ok (Json.Int i))
          (jobs 4)
      in
      let dumps =
        Sys.readdir pm_dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f >= 11 && String.sub f 0 11 = "postmortem-")
      in
      check_bool "at least one postmortem dump" true (dumps <> []);
      (match
         Dmc_util.Checkpoint.load (Filename.concat pm_dir (List.hd dumps))
       with
      | Error m -> Alcotest.failf "postmortem unreadable: %s" m
      | Ok doc ->
          (match Json.mem doc "kind" with
          | Some (Json.String "dmc-postmortem") -> ()
          | _ -> Alcotest.fail "postmortem kind tag");
          (match Json.mem doc "flight" with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "postmortem flight ring empty"));
      let quarantine_instant = ref false in
      Dmc_obs.Registry.iter_events (fun e ->
          if
            e.Dmc_obs.Registry.ev_name = "host.quarantine"
            && List.assoc_opt "ph" e.Dmc_obs.Registry.ev_attrs = Some "i"
            && e.Dmc_obs.Registry.ev_src = Dmc_obs.Registry.source "liar-pm"
          then quarantine_instant := true);
      check_bool "quarantine instant on the host's lane" true
        !quarantine_instant;
      check_bool "quarantine interval logged on the host" true
        (bad.Host.quarantine_log <> []))

(* ------------------------------------------------------------------ *)
(* Determinism through the real worker binary                          *)

(* resolved against the test binary, not the cwd, so the suite runs
   both under [dune runtest] and by hand from the repo root *)
let dmc_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "dmc.exe"

let test_remote_report_matches_local () =
  if not (Sys.file_exists dmc_exe) then
    Alcotest.fail ("worker binary missing: " ^ dmc_exe);
  let grid =
    fail_result
      (Sweep.make
         ~specs:[ "jacobi1d:{n},3" ]
         ~sizes:[ 6; 8 ] ~ss:[ 4; 8 ]
         ~engines:[ "floor"; "lru" ]
         ())
  in
  let rows = Sweep.rows grid in
  let pool_jobs = List.map (fun r -> fail_result (Sweep.job grid r)) rows in
  let run_with hosts =
    let results = Array.make (List.length rows) None in
    let (_ : Pool.outcome array) =
      Pool.run ~hosts
        ~encode:Dmc_core.Engine_job.to_json
        { fast_cfg with max_retries = 2 }
        ~worker:(fun _ j -> Dmc_core.Engine_job.run j)
        ~on_result:(fun i o ->
          match o.Pool.verdict with
          | Pool.Done payload -> results.(i) <- Some payload
          | v -> Alcotest.failf "row %d: %s" i (Pool.verdict_to_string v))
        pool_jobs
    in
    Dmc_analysis.Doc.to_text (Sweep.doc grid ~results:(Array.to_list results))
  in
  let local_report = run_with [ Host.local ~capacity:1 () ] in
  let remote_report =
    run_with
      [
        Host.remote ~policy:fast_policy ~name:"w1" ~capacity:2
          ~argv:[ dmc_exe; "worker" ] ();
        Host.remote ~policy:fast_policy ~name:"w2" ~capacity:2
          ~argv:[ dmc_exe; "worker" ] ();
      ]
  in
  check_str "remote fleet report is byte-identical to local" local_report
    remote_report

let test_remote_obs_counters_match_local () =
  (* The obs snapshot crosses the command transport inside the result
     frame; merged engine counters must come out byte-identical to a
     local-fork run.  Scheduling counters ([pool.] prefix) and
     per-host attribution ([sweep.host.] prefix) are run-shape, not
     work, so they are stripped before the comparison. *)
  if not (Sys.file_exists dmc_exe) then
    Alcotest.fail ("worker binary missing: " ^ dmc_exe);
  let grid =
    fail_result
      (Sweep.make
         ~specs:[ "jacobi1d:{n},3" ]
         ~sizes:[ 6; 8 ] ~ss:[ 4 ]
         ~engines:[ "floor"; "lru" ]
         ())
  in
  let rows = Sweep.rows grid in
  let counters_with hosts =
    let pool_jobs = List.map (fun r -> fail_result (Sweep.job grid r)) rows in
    Dmc_obs.Registry.reset ();
    Dmc_obs.Registry.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Dmc_obs.Registry.set_enabled false)
      (fun () ->
        let (_ : Pool.outcome array) =
          Pool.run ~hosts
            ~encode:Dmc_core.Engine_job.to_json
            { fast_cfg with max_retries = 2 }
            ~worker:(fun _ j -> Dmc_core.Engine_job.run j)
            pool_jobs
        in
        let work_sum =
          Dmc_obs.Registry.fold_counters
            (fun acc c ->
              let name = c.Dmc_obs.Registry.c_name in
              let prefixed p =
                String.length name >= String.length p
                && String.sub name 0 (String.length p) = p
              in
              if prefixed "pool." || prefixed "sweep.host." then acc
              else acc + c.Dmc_obs.Registry.c_value)
            0
        in
        (Dmc_obs.Export.counters_table (), work_sum))
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let strip_run_shape table =
    String.split_on_char '\n' table
    |> List.filter (fun line ->
           not (contains line "pool." || contains line "sweep.host."))
    |> String.concat "\n"
  in
  let local_table, local_work =
    counters_with [ Host.local ~capacity:2 () ]
  in
  let remote_table, remote_work =
    counters_with
      [
        Host.remote ~policy:fast_policy ~name:"w1" ~capacity:2
          ~argv:[ dmc_exe; "worker" ] ();
      ]
  in
  check_bool "workers actually counted engine work" true
    (local_work > 0 && remote_work > 0);
  check_str "merged work counters are byte-identical across transports"
    (strip_run_shape local_table)
    (strip_run_shape remote_table)

let () =
  Alcotest.run "dmc_sweep"
    [
      ( "grid",
        [
          Alcotest.test_case "parse_int_list" `Quick test_parse_int_list;
          Alcotest.test_case "expansion order" `Quick test_grid_expansion_order;
          Alcotest.test_case "seed axis" `Quick test_grid_seed_axis;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "uncommitted rows fail the report" `Quick
            test_doc_uncommitted_rows;
        ] );
      ( "transport",
        [ Alcotest.test_case "envelope roundtrip" `Quick test_envelope_roundtrip ] );
      ( "host",
        [
          Alcotest.test_case "quarantine backoff" `Quick
            test_host_quarantine_backoff;
          Alcotest.test_case "half-open probe redeems" `Quick
            test_host_probe_redeems;
          Alcotest.test_case "poison is permanent" `Quick
            test_host_poison_permanent;
          Alcotest.test_case "local never quarantines" `Quick
            test_host_local_never_quarantines;
          Alcotest.test_case "slow verdict" `Quick test_host_slow_verdict;
          Alcotest.test_case "capacity and leases" `Quick
            test_host_capacity_leases;
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ( "pool",
        [
          Alcotest.test_case "remote ok worker" `Quick
            test_pool_remote_ok_worker;
          Alcotest.test_case "failover to local" `Quick
            test_pool_failover_to_local;
          Alcotest.test_case "garbage host poisoned" `Quick
            test_pool_garbage_host_poisoned;
          Alcotest.test_case "postmortem dump and quarantine instant" `Quick
            test_pool_postmortem_dump;
          Alcotest.test_case "all hosts poisoned" `Quick
            test_pool_all_hosts_poisoned;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "remote obs counters match local" `Quick
            test_remote_obs_counters_match_local;
          Alcotest.test_case "remote report matches local" `Quick
            test_remote_report_matches_local;
        ] );
    ]
