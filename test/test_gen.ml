(* Tests for the workload generators: sizes, degrees, tagging, and the
   structural properties the paper's analyses rely on. *)

module Cdag = Dmc_cdag.Cdag
module Validate = Dmc_cdag.Validate
module Grid = Dmc_gen.Grid
module Linalg = Dmc_gen.Linalg
module Stencil = Dmc_gen.Stencil
module Fft = Dmc_gen.Fft
module Shapes = Dmc_gen.Shapes
module Solver = Dmc_gen.Solver
module Random_dag = Dmc_gen.Random_dag
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)

let test_grid_indexing () =
  let g = Grid.create [ 3; 4; 5 ] in
  check "size" 60 (Grid.size g);
  check "rank" 3 (Grid.rank g);
  check "row-major" ((1 * 20) + (2 * 5) + 3) (Grid.index g [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "coord roundtrip" [ 1; 2; 3 ]
    (Grid.coord g (Grid.index g [ 1; 2; 3 ]));
  check_bool "in range" true (Grid.in_range g [ 2; 3; 4 ]);
  check_bool "out of range" false (Grid.in_range g [ 3; 0; 0 ]);
  Alcotest.check_raises "bad index" (Invalid_argument "Grid.index: out of range")
    (fun () -> ignore (Grid.index g [ 0; 0; 5 ]))

let test_grid_neighbors () =
  let g = Grid.create [ 4; 4 ] in
  let center = Grid.index g [ 1; 1 ] in
  check "star interior" 4 (List.length (Grid.star_neighbors g center));
  check "box interior" 8 (List.length (Grid.box_neighbors g center));
  let corner = Grid.index g [ 0; 0 ] in
  check "star corner" 2 (List.length (Grid.star_neighbors g corner));
  check "box corner" 3 (List.length (Grid.box_neighbors g corner));
  (* neighbors are symmetric *)
  List.iter
    (fun n -> check_bool "symmetric" true (List.mem center (Grid.star_neighbors g n)))
    (Grid.star_neighbors g center)

let test_grid_1d () =
  let g = Grid.create [ 7 ] in
  check "1d star middle" 2 (List.length (Grid.star_neighbors g 3));
  check "1d star end" 1 (List.length (Grid.star_neighbors g 0));
  Alcotest.(check (list int)) "1d neighbors" [ 2; 4 ] (Grid.star_neighbors g 3)

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)

let test_dot_product_shape () =
  let n = 6 in
  let g = Linalg.dot_product n in
  (* 2n inputs + n multiplies + (n-1) reduction adds *)
  check "vertices" ((4 * n) - 1) (Cdag.n_vertices g);
  check "inputs" (2 * n) (Cdag.n_inputs g);
  check "outputs" 1 (Cdag.n_outputs g);
  check_bool "hong-kung" true (Validate.is_hong_kung g)

let test_saxpy_shape () =
  let n = 5 in
  let g = Linalg.saxpy n in
  check "vertices" ((3 * n) + 1) (Cdag.n_vertices g);
  check "outputs" n (Cdag.n_outputs g);
  (* every compute vertex reads the scalar and two elements *)
  Cdag.iter_vertices g (fun v ->
      if not (Cdag.is_input g v) then check "ternary" 3 (Cdag.in_degree g v))

let test_outer_product_shape () =
  let n = 4 in
  let g = Linalg.outer_product n in
  check "vertices" ((2 * n) + (n * n)) (Cdag.n_vertices g);
  check "edges" (2 * n * n) (Cdag.n_edges g);
  check "outputs" (n * n) (Cdag.n_outputs g)

let test_matmul_shape () =
  let n = 3 in
  let mm = Linalg.matmul_indexed n in
  let g = mm.Linalg.mm_graph in
  (* 2n^2 inputs + n^3 mults + n^2(n-1) adds *)
  check "vertices"
    ((2 * n * n) + (n * n * n) + (n * n * (n - 1)))
    (Cdag.n_vertices g);
  check "outputs" (n * n) (Cdag.n_outputs g);
  (* index maps agree with the graph structure *)
  let m = mm.Linalg.mult 1 2 0 in
  check "first acc = first mult" m (mm.Linalg.acc 1 2 0);
  let a = mm.Linalg.acc 1 2 1 in
  check "acc in-degree" 2 (Cdag.in_degree g a);
  check_bool "acc chain edge" true (Cdag.has_edge g (mm.Linalg.acc 1 2 0) a);
  check_bool "mult feeds acc" true (Cdag.has_edge g (mm.Linalg.mult 1 2 1) a);
  check_bool "output is last acc" true (Cdag.is_output g (mm.Linalg.acc 1 2 (n - 1)))

let test_blocked_matmul_order_topological () =
  let mm = Linalg.matmul_indexed 4 in
  let order = Linalg.blocked_matmul_order mm ~block:2 in
  (* the strategy validates topological-ness; a throw means failure *)
  let moves = Dmc_core.Strategy.schedule ~order mm.Linalg.mm_graph ~s:16 in
  match Dmc_core.Rbw_game.run mm.Linalg.mm_graph ~s:16 moves with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.reason

let test_lu_structure () =
  let n = 4 in
  let lu = Linalg.lu_factor n in
  let g = lu.Linalg.lu_graph in
  check_bool "hong-kung" true (Validate.is_hong_kung g);
  check "inputs" (n * n) (Cdag.n_inputs g);
  (* L strictly-lower entries + U upper-triangle entries *)
  check "outputs" (n * n) (Cdag.n_outputs g);
  (* vertex count: inputs + multipliers + sum of square updates *)
  let updates = (3 * 3) + (2 * 2) + (1 * 1) in
  check "vertices" ((n * n) + (n * (n - 1) / 2) + updates) (Cdag.n_vertices g);
  (* multiplier reads the column entry and the pivot *)
  check "multiplier in-degree" 2 (Cdag.in_degree g (lu.Linalg.multiplier 2 0));
  check_bool "multiplier reads pivot" true
    (Cdag.has_edge g (lu.Linalg.pivot 0) (lu.Linalg.multiplier 2 0));
  (* updates chain across steps: a(2,2) after step 0 feeds step 1 *)
  check_bool "update chains" true
    (Cdag.has_edge g (lu.Linalg.update 2 2 0) (lu.Linalg.update 2 2 1));
  (* the step-1 pivot is the step-0 update of a(1,1) *)
  check "pivot after update" (lu.Linalg.update 1 1 0) (lu.Linalg.pivot 1);
  (* schedulable *)
  (match Dmc_core.Rbw_game.run g ~s:6 (Dmc_core.Strategy.schedule g ~s:6) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.reason);
  Alcotest.check_raises "bad accessor" (Invalid_argument "Linalg.lu.multiplier: need i > k")
    (fun () -> ignore (lu.Linalg.multiplier 0 2))

let test_cholesky_structure () =
  let n = 4 in
  let g = Linalg.cholesky n in
  check_bool "hong-kung" true (Validate.is_hong_kung g);
  check "inputs" (n * (n + 1) / 2) (Cdag.n_inputs g);
  check "outputs" (n * (n + 1) / 2) (Cdag.n_outputs g);
  (* updates: for column j, sum over k<j of (n-j) entries *)
  let updates = ref 0 in
  for j = 0 to n - 1 do
    updates := !updates + (j * (n - j))
  done;
  check "vertices" ((n * (n + 1) / 2) + !updates + (n * (n + 1) / 2))
    (Cdag.n_vertices g);
  (* schedulable and sandwiched *)
  let r = Dmc_core.Bounds.analyze g ~s:6 in
  check_bool "lb <= ub" true (r.Dmc_core.Bounds.best_lb <= r.Dmc_core.Bounds.belady_ub)

let test_composite_shape () =
  let n = 3 in
  let c = Linalg.composite n in
  check "inputs are 4 vectors" (4 * n) (Cdag.n_inputs c.Linalg.graph);
  check "single output" 1 (Cdag.n_outputs c.Linalg.graph);
  check_bool "sum is the output" true (Cdag.is_output c.Linalg.graph c.Linalg.sum_vertex);
  check "A entries" (n * n) (Array.length c.Linalg.a_vertices);
  check "C mults" (n * n * n) (Array.length c.Linalg.c_mults);
  (* every A entry reads one p and one q element *)
  Array.iter (fun v -> check "rank-1 in-degree" 2 (Cdag.in_degree c.Linalg.graph v))
    c.Linalg.a_vertices

(* ------------------------------------------------------------------ *)
(* Stencil                                                             *)

let test_jacobi_shape () =
  let st = Stencil.jacobi_2d ~shape:Stencil.Box ~n:4 ~steps:3 () in
  check "vertices" (16 * 4) (Cdag.n_vertices st.Stencil.graph);
  check "inputs" 16 (Cdag.n_inputs st.Stencil.graph);
  check "outputs" 16 (Cdag.n_outputs st.Stencil.graph);
  (* interior point at t=1 reads its 9-point neighborhood at t=0 *)
  let interior = st.Stencil.vertex 1 (Grid.index st.Stencil.grid [ 1; 1 ]) in
  check "box stencil in-degree" 9 (Cdag.in_degree st.Stencil.graph interior);
  let star = Stencil.jacobi_2d ~shape:Stencil.Star ~n:4 ~steps:1 () in
  let interior' = star.Stencil.vertex 1 (Grid.index star.Stencil.grid [ 1; 1 ]) in
  check "star stencil in-degree" 5 (Cdag.in_degree star.Stencil.graph interior')

let test_jacobi_vertex_map () =
  let st = Stencil.jacobi_1d ~n:5 ~steps:2 in
  check "t=0 is input" 0 (st.Stencil.vertex 0 0);
  check_bool "inputs tagged" true (Cdag.is_input st.Stencil.graph (st.Stencil.vertex 0 4));
  check_bool "outputs tagged" true
    (Cdag.is_output st.Stencil.graph (st.Stencil.vertex 2 0));
  Alcotest.check_raises "bad time" (Invalid_argument "Stencil.vertex: out of range")
    (fun () -> ignore (st.Stencil.vertex 3 0))

let test_stencil_orders_topological () =
  let st = Stencil.jacobi_2d ~shape:Stencil.Star ~n:5 ~steps:3 () in
  List.iter
    (fun order ->
      (* Strategy.schedule raises if the order is invalid *)
      ignore (Dmc_core.Strategy.schedule ~order st.Stencil.graph ~s:30))
    [ Stencil.natural_order st; Stencil.skewed_order st ~tile:2; Stencil.skewed_order st ~tile:3 ]

let test_skewed_order_covers_everything () =
  let st = Stencil.jacobi_1d ~n:7 ~steps:4 in
  let order = Stencil.skewed_order st ~tile:3 in
  check "covers all compute vertices" (7 * 4) (Array.length order);
  (* partial bands: steps not divisible by the tile *)
  let st5 = Stencil.jacobi_1d ~n:5 ~steps:5 in
  let order5 = Stencil.skewed_order st5 ~tile:3 in
  check "partial band covered" (5 * 5) (Array.length order5);
  ignore (Dmc_core.Strategy.schedule ~order:order5 st5.Stencil.graph ~s:12);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then Alcotest.fail "duplicate vertex in skewed order";
      Hashtbl.replace seen v ())
    order

(* ------------------------------------------------------------------ *)
(* FFT / shapes                                                        *)

let test_fft_shape () =
  let k = 3 in
  let n = 1 lsl k in
  let g = Fft.butterfly k in
  check "vertices" ((k + 1) * n) (Cdag.n_vertices g);
  check "edges" (2 * k * n) (Cdag.n_edges g);
  check "inputs" n (Cdag.n_inputs g);
  check "outputs" n (Cdag.n_outputs g);
  (* every non-input vertex has exactly two predecessors *)
  Cdag.iter_vertices g (fun v ->
      if not (Cdag.is_input g v) then check "butterfly in-degree" 2 (Cdag.in_degree g v));
  (* the butterfly partner structure *)
  check_bool "partner edge" true
    (Cdag.has_edge g (Fft.vertex ~k ~rank:0 1) (Fft.vertex ~k ~rank:1 0))

let test_fft_blocked_order () =
  let k = 4 in
  let g = Fft.butterfly k in
  let order = Fft.blocked_order ~k ~group_bits:2 in
  check "covers all compute vertices" (Cdag.n_compute g) (Array.length order);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then Alcotest.fail "duplicate in blocked order";
      Hashtbl.replace seen v ())
    order;
  (* topological: validated by the scheduler *)
  ignore (Dmc_core.Strategy.schedule ~order g ~s:10);
  (* a single pass covering all ranks degenerates to one sweep; with
     room for two full ranks the I/O collapses to the cold bound *)
  let one_pass = Fft.blocked_order ~k ~group_bits:k in
  check "single pass cold I/O" (Cdag.n_inputs g + Cdag.n_outputs g)
    (Dmc_core.Strategy.io ~order:one_pass g ~s:((2 * (1 lsl k)) + 2));
  Alcotest.check_raises "bad group bits" (Invalid_argument "Fft.blocked_order")
    (fun () -> ignore (Fft.blocked_order ~k:3 ~group_bits:0))

let test_bitonic_sort () =
  let k = 3 in
  let n = 1 lsl k in
  let g = Fft.bitonic_sort k in
  check "vertices" (n * (1 + (k * (k + 1) / 2))) (Cdag.n_vertices g);
  check "inputs" n (Cdag.n_inputs g);
  check "outputs" n (Cdag.n_outputs g);
  check_bool "hong-kung" true (Validate.is_hong_kung g);
  (* every comparator output reads exactly two wires *)
  Cdag.iter_vertices g (fun v ->
      if not (Cdag.is_input g v) then check "comparator in-degree" 2 (Cdag.in_degree g v));
  (* like the butterfly, there are n vertex-disjoint lines *)
  check "n disjoint lines" n (Dmc_core.Lines.max_disjoint_lines g);
  (* schedulable and sandwiched *)
  let report = Dmc_core.Bounds.analyze g ~s:6 in
  check_bool "lb <= belady" true
    (report.Dmc_core.Bounds.best_lb <= report.Dmc_core.Bounds.belady_ub);
  check_bool "informative lb" true (report.Dmc_core.Bounds.best_lb >= 2 * n)

let test_shapes () =
  let c = Shapes.chain 6 in
  check "chain edges" 5 (Cdag.n_edges c);
  let t = Shapes.reduction_tree 8 in
  check "tree vertices" 15 (Cdag.n_vertices t);
  check "tree output" 1 (Cdag.n_outputs t);
  let bt = Shapes.broadcast_tree 8 in
  check "broadcast leaves" 8 (List.length (Cdag.sinks bt));
  let d = Shapes.diamond ~rows:3 ~cols:4 in
  check "diamond vertices" 12 (Cdag.n_vertices d);
  check "diamond edges" ((2 * 4) + (3 * 3)) (Cdag.n_edges d);
  let p = Shapes.pyramid 3 in
  check "pyramid vertices" 10 (Cdag.n_vertices p);
  check "pyramid inputs" 4 (Cdag.n_inputs p);
  let bi = Shapes.binomial 3 in
  check "binomial vertices" 8 (Cdag.n_vertices bi);
  check "binomial edges" 12 (Cdag.n_edges bi);
  let ind = Shapes.independent 5 in
  check "independent edges" 0 (Cdag.n_edges ind);
  check "independent outputs" 5 (Cdag.n_outputs ind);
  let f = Shapes.two_level_fanin ~fanin:3 ~mids:2 in
  check "fanin vertices" 6 (Cdag.n_vertices f)

(* ------------------------------------------------------------------ *)
(* Solvers                                                             *)

let test_spmv_shape () =
  let g = Solver.spmv ~dims:[ 4; 4 ] in
  check "vertices" 32 (Cdag.n_vertices g);
  check "outputs" 16 (Cdag.n_outputs g);
  check_bool "rbw valid" true (Validate.is_rbw g)

let test_thomas_structure () =
  let n = 8 in
  let th = Solver.thomas ~n in
  let g = th.Solver.th_graph in
  check "vertices" (3 * n) (Cdag.n_vertices g);
  check "inputs" n (Cdag.n_inputs g);
  check "outputs" n (Cdag.n_outputs g);
  check_bool "hong-kung" true (Validate.is_hong_kung g);
  (* forward chain and backward chain *)
  check_bool "forward chain" true
    (Cdag.has_edge g th.Solver.forward.(2) th.Solver.forward.(3));
  check_bool "back substitution" true
    (Cdag.has_edge g th.Solver.solution.(4) th.Solver.solution.(3));
  check_bool "e feeds x" true
    (Cdag.has_edge g th.Solver.forward.(5) th.Solver.solution.(5));
  (* the working-set cliff: all forward values live at the turn *)
  check "wavefront at e_n" n
    (Dmc_core.Wavefront.min_wavefront g th.Solver.forward.(n - 1))

let test_cg_structure () =
  let cg = Solver.cg ~dims:[ 3; 3 ] ~iters:2 in
  let g = cg.Solver.graph in
  check_bool "rbw valid" true (Validate.is_rbw g);
  check "iterations" 2 (Array.length cg.Solver.iterations);
  check "inputs are x0 r0 p0" (3 * 9) (Cdag.n_inputs g);
  let it0 = cg.Solver.iterations.(0) and it1 = cg.Solver.iterations.(1) in
  (* a = rr / pv: two predecessors *)
  check "a in-degree" 2 (Cdag.in_degree g it0.Solver.a_scalar);
  check "g in-degree" 2 (Cdag.in_degree g it0.Solver.g_scalar);
  (* the carried direction vector: iteration 1's SpMV reads p from
     iteration 0's update *)
  check_bool "p carried across iterations" true
    (Cdag.has_edge g it0.Solver.p_next.(4) it1.Solver.v_spmv.(4));
  (* x update reads x, a and p *)
  check "x update in-degree" 3 (Cdag.in_degree g it0.Solver.x_next.(0));
  (* final x vertices are outputs *)
  check_bool "final x output" true (Cdag.is_output g it1.Solver.x_next.(0))

let test_gmres_structure () =
  let gm = Solver.gmres ~dims:[ 3; 3 ] ~iters:3 in
  let g = gm.Solver.graph in
  check_bool "rbw valid" true (Validate.is_rbw g);
  check "iterations" 3 (Array.length gm.Solver.iterations);
  check "inputs are v0" 9 (Cdag.n_inputs g);
  let it2 = gm.Solver.iterations.(2) in
  (* iteration 2's SpMV reads the basis vector produced by iteration 1 *)
  check_bool "basis carried" true
    (Cdag.has_edge g gm.Solver.iterations.(1).Solver.basis_next.(0) it2.Solver.w_spmv.(0));
  (* normalization: each new basis element reads v' and the norm *)
  check "basis element in-degree" 2 (Cdag.in_degree g it2.Solver.basis_next.(0));
  check_bool "h scalars are outputs" true (Cdag.is_output g it2.Solver.h_diag)

(* GMRES iteration i has i+1 dot products, so vertex count grows
   quadratically in the iteration count. *)
let test_chebyshev_structure () =
  let ch = Solver.chebyshev ~dims:[ 4 ] ~iters:2 in
  let g = ch.Solver.ch_graph in
  check_bool "rbw valid" true (Validate.is_rbw g);
  check "inputs x0 and b" 8 (Cdag.n_inputs g);
  check "outputs" 4 (Cdag.n_outputs g);
  (* 3 vectors per iteration: spmv, residual, update *)
  check "vertices" (8 + (2 * 3 * 4)) (Cdag.n_vertices g);
  let it0 = ch.Solver.ch_iterations.(0) in
  check "residual in-degree" 2 (Cdag.in_degree g it0.Solver.residual.(1));
  check_bool "update reads residual" true
    (Cdag.has_edge g it0.Solver.residual.(2) it0.Solver.ch_x_next.(2));
  (* no vertex funnels the whole grid: in-degrees stay stencil-local *)
  Cdag.iter_vertices g (fun v ->
      check_bool "local in-degree" true (Cdag.in_degree g v <= 3))

let test_gmres_growth () =
  let size m = Cdag.n_vertices (Solver.gmres ~dims:[ 4 ] ~iters:m).Solver.graph in
  let s2 = size 2 and s4 = size 4 in
  check_bool "superlinear growth" true (s4 > 2 * s2)

let test_multigrid_structure () =
  let mg = Dmc_gen.Multigrid.v_cycle ~dims:[ 17 ] ~levels:3 ~cycles:2 () in
  let g = mg.Dmc_gen.Multigrid.graph in
  check_bool "rbw valid" true (Validate.is_rbw g);
  check "grids per level" 3 (Array.length mg.Dmc_gen.Multigrid.grids);
  check "finest points" 17 (Dmc_gen.Multigrid.finest_points mg);
  check "coarsest points" 5 (Grid.size mg.Dmc_gen.Multigrid.grids.(2));
  check "inputs are u0 and b" (2 * 17) (Cdag.n_inputs g);
  check "outputs are the final iterate" 17 (Cdag.n_outputs g);
  check "cycles recorded" 2 (Array.length mg.Dmc_gen.Multigrid.cycles);
  (* structure of a cycle trace *)
  let fine = mg.Dmc_gen.Multigrid.cycles.(0).(0) in
  check "pre sweeps" 2 (Array.length fine.Dmc_gen.Multigrid.pre_smooth);
  check "post sweeps" 2 (Array.length fine.Dmc_gen.Multigrid.post_smooth);
  check "restriction to coarse size" 9 (Array.length fine.Dmc_gen.Multigrid.restricted);
  (* a corrected fine point reads its pre-smoothed value and coarse
     parents *)
  let corrected = fine.Dmc_gen.Multigrid.corrected.(8) in
  check_bool "correction reads pre-smoothed" true
    (Cdag.has_edge g fine.Dmc_gen.Multigrid.pre_smooth.(1).(8) corrected);
  (* the second cycle consumes the first cycle's final iterate *)
  let fine2 = mg.Dmc_gen.Multigrid.cycles.(1).(0) in
  check_bool "cycles chain" true
    (Cdag.has_edge g fine.Dmc_gen.Multigrid.post_smooth.(1).(8)
       fine2.Dmc_gen.Multigrid.pre_smooth.(0).(8))

let test_multigrid_2d_and_errors () =
  let mg = Dmc_gen.Multigrid.v_cycle ~dims:[ 9; 9 ] ~levels:2 ~cycles:1 () in
  check_bool "2d rbw valid" true (Validate.is_rbw mg.Dmc_gen.Multigrid.graph);
  check "2d coarse grid" 25 (Grid.size mg.Dmc_gen.Multigrid.grids.(1));
  (* ceil-halving saturates at one point, so deep hierarchies stay legal *)
  let tiny = Dmc_gen.Multigrid.v_cycle ~dims:[ 2 ] ~levels:4 ~cycles:1 () in
  check "coarsest saturates" 1 (Grid.size tiny.Dmc_gen.Multigrid.grids.(3));
  Alcotest.check_raises "bad params" (Invalid_argument "Multigrid.v_cycle")
    (fun () -> ignore (Dmc_gen.Multigrid.v_cycle ~dims:[ 8 ] ~levels:0 ~cycles:1 ()))

let test_multigrid_schedulable () =
  let mg = Dmc_gen.Multigrid.v_cycle ~dims:[ 9 ] ~levels:2 ~cycles:1 () in
  let g = mg.Dmc_gen.Multigrid.graph in
  let moves = Dmc_core.Strategy.schedule g ~s:8 in
  match Dmc_core.Rbw_game.run g ~s:8 moves with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.reason

(* ------------------------------------------------------------------ *)
(* Random DAGs                                                         *)

let prop_layered_well_formed =
  QCheck.Test.make ~name:"layered DAGs freeze and validate" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.3 in
      Validate.is_hong_kung g && Cdag.n_vertices g >= 5)

let prop_gnp_edges_forward =
  QCheck.Test.make ~name:"gnp edges go forward" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Random_dag.gnp rng ~n:15 ~edge_prob:0.3 in
      let ok = ref true in
      Cdag.iter_edges g (fun u v -> if u >= v then ok := false);
      !ok)

let prop_connected_dag_connected =
  QCheck.Test.make ~name:"connected_dag has a single weak component" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 10 in
      let g = Random_dag.connected_dag rng ~n ~extra_edges:3 in
      let uf = Dmc_util.Union_find.create n in
      Cdag.iter_edges g (fun u v -> Dmc_util.Union_find.union uf u v);
      Dmc_util.Union_find.count uf = 1)

(* ------------------------------------------------------------------ *)
(* Workload registry *)

let test_workload_parse () =
  let g = Dmc_gen.Workload.parse_exn "chain:8" in
  Alcotest.(check int) "chain:8 vertices" 8 (Cdag.n_vertices g);
  let g2 = Dmc_gen.Workload.parse_exn "jacobi1d:5,2" in
  let direct =
    Dmc_gen.Stencil.((jacobi ~shape:Star ~dims:[ 5 ] ~steps:2 ()).graph)
  in
  Alcotest.(check int) "jacobi1d:5,2 matches direct build"
    (Cdag.n_vertices direct) (Cdag.n_vertices g2)

let test_workload_unknown () =
  match Dmc_gen.Workload.parse "nosuch:3" with
  | Ok _ -> Alcotest.fail "unknown generator accepted"
  | Error msg ->
      let has_sub sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the bad generator" true
        (has_sub "unknown generator 'nosuch'");
      Alcotest.(check bool) "lists known generators" true (has_sub "chain")

let test_workload_arity () =
  (match Dmc_gen.Workload.build "jacobi1d" [ 3 ] with
  | Ok _ -> Alcotest.fail "bad arity accepted"
  | Error msg ->
      Alcotest.(check bool) "states the signature" true
        (String.length msg > 0
        && msg = "generator 'jacobi1d' expects 2 parameters (jacobi1d:N,T), got 1"));
  match Dmc_gen.Workload.parse "chain:x" with
  | Ok _ -> Alcotest.fail "non-integer parameter accepted"
  | Error _ -> ()

let test_workload_registry () =
  let names = Dmc_gen.Workload.names in
  Alcotest.(check bool) "has the paper kernels" true
    (List.for_all
       (fun n -> List.mem n names)
       [ "matmul"; "fft"; "jacobi2d"; "cg"; "gmres"; "multigrid" ]);
  List.iter
    (fun (w : Dmc_gen.Workload.t) ->
      Alcotest.(check bool)
        (w.name ^ " resolvable") true
        (match Dmc_gen.Workload.find w.name with
        | Some found -> found.name = w.name
        | None -> false))
    Dmc_gen.Workload.all

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_gen"
    [
      ( "grid",
        [
          Alcotest.test_case "indexing" `Quick test_grid_indexing;
          Alcotest.test_case "neighbors" `Quick test_grid_neighbors;
          Alcotest.test_case "1d" `Quick test_grid_1d;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "dot product" `Quick test_dot_product_shape;
          Alcotest.test_case "saxpy" `Quick test_saxpy_shape;
          Alcotest.test_case "outer product" `Quick test_outer_product_shape;
          Alcotest.test_case "matmul" `Quick test_matmul_shape;
          Alcotest.test_case "blocked order topological" `Quick
            test_blocked_matmul_order_topological;
          Alcotest.test_case "composite" `Quick test_composite_shape;
          Alcotest.test_case "lu factorization" `Quick test_lu_structure;
          Alcotest.test_case "cholesky" `Quick test_cholesky_structure;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "jacobi shape" `Quick test_jacobi_shape;
          Alcotest.test_case "vertex map" `Quick test_jacobi_vertex_map;
          Alcotest.test_case "orders topological" `Quick test_stencil_orders_topological;
          Alcotest.test_case "skewed order covers" `Quick test_skewed_order_covers_everything;
        ] );
      ( "fft+shapes",
        [
          Alcotest.test_case "fft butterfly" `Quick test_fft_shape;
          Alcotest.test_case "fft blocked order" `Quick test_fft_blocked_order;
          Alcotest.test_case "bitonic sort" `Quick test_bitonic_sort;
          Alcotest.test_case "shape families" `Quick test_shapes;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "spmv" `Quick test_spmv_shape;
          Alcotest.test_case "thomas" `Quick test_thomas_structure;
          Alcotest.test_case "cg structure" `Quick test_cg_structure;
          Alcotest.test_case "gmres structure" `Quick test_gmres_structure;
          Alcotest.test_case "gmres growth" `Quick test_gmres_growth;
          Alcotest.test_case "chebyshev structure" `Quick test_chebyshev_structure;
          Alcotest.test_case "multigrid structure" `Quick test_multigrid_structure;
          Alcotest.test_case "multigrid 2d and errors" `Quick test_multigrid_2d_and_errors;
          Alcotest.test_case "multigrid schedulable" `Quick test_multigrid_schedulable;
        ] );
      ( "workload",
        [
          Alcotest.test_case "parse and build" `Quick test_workload_parse;
          Alcotest.test_case "unknown generator" `Quick test_workload_unknown;
          Alcotest.test_case "arity errors" `Quick test_workload_arity;
          Alcotest.test_case "registry" `Quick test_workload_registry;
        ] );
      qsuite "random-props"
        [ prop_layered_well_formed; prop_gnp_edges_forward; prop_connected_dag_connected ];
    ]
