(* Tests for the bench-baseline regression gate: metric flattening of
   the baseline JSON shape, the tolerance-band diff semantics (the
   exit-code contract behind `dmc bench-diff`), the work-only filter
   used by the cross-machine CI gate, and the provenance meta block. *)

module Json = Dmc_util.Json
module Baseline = Dmc_obs.Baseline

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A miniature but shape-complete baseline document. *)
let doc ?(ns = 1000.0) ?(counter = 100) ?(p99 = 40.0) ?(heap = 5000.0) () =
  Json.Obj
    [
      ("kind", Json.String "dmc-bench-baseline");
      ( "benchmarks",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "dmc/case");
                ("ns_per_run", Json.Float ns);
                ("r_square", Json.Float 0.99);
              ];
            Json.Obj
              [
                ("name", Json.String "dmc/null-estimate");
                ("ns_per_run", Json.Null);
                ("r_square", Json.Null);
              ];
          ] );
      ( "profile",
        Json.Obj
          [
            ("counters", Json.Obj [ ("dinic.augmenting_paths", Json.Int counter) ]);
            ( "hists",
              Json.Obj
                [
                  ( "dinic.path_len",
                    Json.Obj
                      [
                        ("n", Json.Int 10);
                        ("sum", Json.Int 300);
                        ("mean", Json.Float 30.0);
                        ("p50", Json.Float 28.0);
                        ("p90", Json.Float 38.0);
                        ("p99", Json.Float p99);
                      ] );
                ] );
            ("gauges", Json.Obj [ ("gc.heap_words", Json.Float heap) ]);
            ("dropped", Json.Int 0);
            ("spans", Json.Obj [ ("ignored.span", Json.Float 1.0) ]);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Flattening                                                          *)

let test_metrics_flatten () =
  let ms = Baseline.metrics (doc ()) in
  let names = List.map fst ms in
  List.iter
    (fun expected ->
      check_bool (expected ^ " present") true (List.mem expected names))
    [
      "bench.dmc/case.ns_per_run";
      "counter.dinic.augmenting_paths";
      "hist.dinic.path_len.n";
      "hist.dinic.path_len.mean";
      "hist.dinic.path_len.p50";
      "hist.dinic.path_len.p90";
      "hist.dinic.path_len.p99";
      "gauge.gc.heap_words";
    ];
  (* spans never become metrics; a Null estimate is skipped, not 0 *)
  check_bool "spans excluded" true
    (not (List.exists (fun n -> String.length n >= 4 && String.sub n 0 4 = "span") names));
  check_bool "null estimate skipped" true
    (not (List.mem "bench.dmc/null-estimate.ns_per_run" names));
  check "exact metric count" 8 (List.length ms);
  check_string "name-sorted" (String.concat "," (List.sort compare names))
    (String.concat "," names)

let test_metrics_tolerates_junk () =
  check "non-object yields nothing" 0 (List.length (Baseline.metrics Json.Null));
  let partial = Json.Obj [ ("profile", Json.Obj [ ("counters", Json.Int 3) ]) ] in
  check "malformed sections skipped" 0 (List.length (Baseline.metrics partial))

let test_work_metric_filter () =
  check_bool "counter is work" true (Baseline.is_work_metric "counter.x");
  check_bool "hist is work" true (Baseline.is_work_metric "hist.x.p99");
  check_bool "bench is wall-clock" false (Baseline.is_work_metric "bench.x.ns_per_run");
  check_bool "gauge is memory" false (Baseline.is_work_metric "gauge.gc.heap_words")

(* ------------------------------------------------------------------ *)
(* Diff semantics                                                      *)

let test_diff_identical () =
  let r = Baseline.diff ~old:(doc ()) ~fresh:(doc ()) () in
  check "all compared" 8 r.Baseline.compared;
  check "no regressions" 0 r.Baseline.regressed;
  check "no improvements" 0 r.Baseline.improved;
  check_bool "every row unchanged" true
    (List.for_all (fun row -> row.Baseline.status = Baseline.Unchanged) r.Baseline.rows)

let test_diff_within_tolerance () =
  (* +5% under a 10% band is noise, not a regression *)
  let r = Baseline.diff ~old:(doc ()) ~fresh:(doc ~ns:1050.0 ()) () in
  check "within band is unchanged" 0 r.Baseline.regressed

let test_diff_regression () =
  let r = Baseline.diff ~old:(doc ()) ~fresh:(doc ~counter:200 ()) () in
  check "doubled counter regresses" 1 r.Baseline.regressed;
  let row =
    List.find
      (fun row -> row.Baseline.metric = "counter.dinic.augmenting_paths")
      r.Baseline.rows
  in
  check_bool "row flagged" true (row.Baseline.status = Baseline.Regressed);
  (* raising the tolerance past the delta absorbs it *)
  let r' =
    Baseline.diff ~max_regress:150.0 ~old:(doc ()) ~fresh:(doc ~counter:200 ()) ()
  in
  check "tolerance absorbs it" 0 r'.Baseline.regressed

let test_diff_improvement () =
  let r = Baseline.diff ~old:(doc ()) ~fresh:(doc ~ns:500.0 ()) () in
  check "halved time improves" 1 r.Baseline.improved;
  check "improvement never gates" 0 r.Baseline.regressed

let test_diff_added_removed () =
  let extra =
    match doc () with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "profile", Json.Obj pf ->
                   ( "profile",
                     Json.Obj
                       (List.map
                          (function
                            | "counters", Json.Obj cs ->
                                ("counters", Json.Obj (("new.counter", Json.Int 1) :: cs))
                            | f -> f)
                          pf) )
               | f -> f)
             fields)
    | _ -> assert false
  in
  let r = Baseline.diff ~old:(doc ()) ~fresh:extra () in
  check "new metric reported" 1 r.Baseline.added;
  check "added never gates" 0 r.Baseline.regressed;
  let r' = Baseline.diff ~old:extra ~fresh:(doc ()) () in
  check "vanished metric reported" 1 r'.Baseline.removed;
  check "removed never gates" 0 r'.Baseline.regressed

let test_diff_work_only () =
  (* wall-clock and memory regress wildly, work is identical: the
     work-only gate must stay green *)
  let fresh = doc ~ns:9000.0 ~heap:1e9 () in
  let full = Baseline.diff ~old:(doc ()) ~fresh () in
  check_bool "full diff regresses" true (full.Baseline.regressed > 0);
  let work = Baseline.diff ~work_only:true ~old:(doc ()) ~fresh () in
  check "work-only ignores them" 0 work.Baseline.regressed;
  check "work-only compares only counter/hist" 6 work.Baseline.compared

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render () =
  let r = Baseline.diff ~old:(doc ()) ~fresh:(doc ~counter:200 ()) () in
  let out = Baseline.render r in
  check_bool "regressed row shown" true (contains out "REGRESSED");
  check_bool "metric named" true (contains out "counter.dinic.augmenting_paths");
  check_bool "summary line" true (contains out "1 regressed");
  let clean = Baseline.render (Baseline.diff ~old:(doc ()) ~fresh:(doc ()) ()) in
  check_bool "clean diff elides the table" true (not (contains clean "|"));
  check_bool "clean diff keeps the summary" true (contains clean "0 regressed")

(* ------------------------------------------------------------------ *)
(* Provenance meta                                                     *)

let test_meta_block () =
  let m = Baseline.meta ~argv:[| "bench"; "--json"; "x.json" |] () in
  List.iter
    (fun key ->
      match Json.mem m key with
      | Some (Json.String s) ->
          check_bool (key ^ " non-empty") true (String.length s > 0)
      | _ -> Alcotest.failf "meta field %s missing or not a string" key)
    [ "git_sha"; "ocaml_version"; "hostname"; "machine" ];
  (match Json.mem m "ocaml_version" with
  | Some (Json.String v) -> check_string "matches runtime" Sys.ocaml_version v
  | _ -> ());
  match Json.mem m "argv" with
  | Some (Json.List l) -> check "argv preserved" 3 (List.length l)
  | _ -> Alcotest.fail "meta.argv missing"

(* ------------------------------------------------------------------ *)
(* End-to-end against the real exporter shape                          *)

let test_against_real_export () =
  (* Build a baseline from the live registry, exactly like bench --json
     does, and make sure the flattener understands it. *)
  Dmc_obs.Registry.reset ();
  Dmc_obs.Registry.set_enabled true;
  Dmc_obs.Counter.add (Dmc_obs.Counter.make "e2e.counter") 5;
  Dmc_obs.Histogram.observe (Dmc_obs.Histogram.make "e2e.hist") 17;
  Dmc_obs.Span.with_ "e2e.span" (fun () -> ());
  Dmc_obs.Registry.set_enabled false;
  let baseline =
    Json.Obj
      [
        ("kind", Json.String "dmc-bench-baseline");
        ("meta", Baseline.meta ~argv:Sys.argv ());
        ("benchmarks", Json.List []);
        ("profile", Dmc_obs.Export.to_json ());
      ]
  in
  (* ... and that it survives the concrete syntax round-trip *)
  let reparsed =
    match Json.parse (Json.to_string baseline) with
    | Ok d -> d
    | Error m -> Alcotest.failf "baseline does not re-parse: %s" m
  in
  let ms = Baseline.metrics reparsed in
  check_bool "counter flattened" true (List.mem_assoc "counter.e2e.counter" ms);
  check_bool "hist p99 flattened" true (List.mem_assoc "hist.e2e.hist.p99" ms);
  check_bool "gc gauge flattened" true (List.mem_assoc "gauge.gc.heap_words" ms);
  let r = Baseline.diff ~old:reparsed ~fresh:reparsed () in
  check "self-diff is clean" 0 (r.Baseline.regressed + r.Baseline.improved)

let () =
  Alcotest.run "baseline"
    [
      ( "flatten",
        [
          Alcotest.test_case "namespaces and ordering" `Quick test_metrics_flatten;
          Alcotest.test_case "junk tolerated" `Quick test_metrics_tolerates_junk;
          Alcotest.test_case "work-metric filter" `Quick test_work_metric_filter;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical is clean" `Quick test_diff_identical;
          Alcotest.test_case "noise within tolerance" `Quick test_diff_within_tolerance;
          Alcotest.test_case "regression detected" `Quick test_diff_regression;
          Alcotest.test_case "improvement reported" `Quick test_diff_improvement;
          Alcotest.test_case "added/removed never gate" `Quick test_diff_added_removed;
          Alcotest.test_case "work-only filter" `Quick test_diff_work_only;
        ] );
      ("render", [ Alcotest.test_case "table and summary" `Quick test_render ]);
      ("meta", [ Alcotest.test_case "provenance fields" `Quick test_meta_block ]);
      ( "end-to-end",
        [ Alcotest.test_case "real exporter shape" `Quick test_against_real_export ] );
    ]
