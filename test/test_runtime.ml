(* Tests for the supervised worker pool: IPC framing, fault-spec
   parsing, deterministic backoff, and — via the fault-injection hook —
   every verdict the supervisor can hand back, plus retry accounting
   and the in-submission-order commit that makes [--jobs N] output
   byte-identical to [--jobs 1]. *)

module Json = Dmc_util.Json
module Budget = Dmc_util.Budget
module Ipc = Dmc_util.Ipc
module Fault = Dmc_runtime.Fault
module Pool = Dmc_runtime.Pool
module Progress = Dmc_runtime.Progress

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* IPC framing                                                         *)

let test_ipc_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Int 42;
      Json.String "hello \"quoted\" \n world";
      Json.Obj [ ("ok", Json.List [ Json.Int 1; Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Ipc.decode_frame (Ipc.encode_frame v) with
      | Ok v' -> check_bool "roundtrip" true (v = v')
      | Error e -> Alcotest.fail (Ipc.read_error_to_string e))
    values

let test_ipc_pipe () =
  let r, w = Unix.pipe ~cloexec:false () in
  let v = Json.Obj [ ("payload", Json.String (String.make 10_000 'x')) ] in
  (* Pipe capacity exceeds this frame, so a single-threaded
     write-then-read cannot deadlock. *)
  Ipc.write_frame w v;
  Unix.close w;
  (match Ipc.read_frame r with
  | Ok v' -> check_bool "pipe roundtrip" true (v = v')
  | Error e -> Alcotest.fail (Ipc.read_error_to_string e));
  (match Ipc.read_frame r with
  | Error Ipc.Closed -> ()
  | Ok _ -> Alcotest.fail "read past EOF succeeded"
  | Error e -> Alcotest.failf "expected Closed, got %s" (Ipc.read_error_to_string e));
  Unix.close r

let test_ipc_errors () =
  let fail_with name expected s =
    match Ipc.decode_frame s with
    | Ok _ -> Alcotest.failf "%s: decoded garbage" name
    | Error e ->
        check_bool name true
          (match (expected, e) with
          | `Closed, Ipc.Closed
          | `Bad_header, Ipc.Bad_header _
          | `Oversized, Ipc.Oversized _
          | `Truncated, Ipc.Truncated _
          | `Malformed, Ipc.Malformed _ ->
              true
          | _ -> false)
  in
  fail_with "empty" `Closed "";
  fail_with "non-hex header" `Bad_header "*** not an ipc frame ***";
  fail_with "short header" `Truncated "0000";
  fail_with "payload cut short" `Truncated "0000000a{\"a\"";
  fail_with "oversized" `Oversized "ffffffff";
  fail_with "payload not json" `Malformed "00000003tru";
  fail_with "trailing bytes" `Malformed "00000001 1 trailing"

(* ------------------------------------------------------------------ *)
(* Fault specs                                                         *)

let test_fault_parse () =
  (match Fault.parse "hang:3,abort:2:1,garbage:7" with
  | Error m -> Alcotest.fail m
  | Ok faults ->
      check "three clauses" 3 (List.length faults);
      check_string "roundtrip" "hang:3,abort:2:1,garbage:7"
        (String.concat "," (List.map Fault.to_string faults)));
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed fault spec %S" spec)
    [ "hang"; "hang:"; "hang:0"; "hang:x"; "explode:1"; "hang:1:0"; "hang:1:2:3" ];
  (* an empty spec means "no faults", not a parse error *)
  check_bool "empty spec" true (Fault.parse "" = Ok [])

let test_fault_applies () =
  match Fault.parse "abort:2:1,hang:3" with
  | Error m -> Alcotest.fail m
  | Ok faults ->
      (* 1-based spec against 0-based submission index *)
      check_bool "job 0 clean" true (Fault.applies faults ~job:0 ~attempt:1 = None);
      check_bool "job 1 attempt 1" true
        (Fault.applies faults ~job:1 ~attempt:1 = Some Fault.Abort);
      check_bool "job 1 attempt 2 clean" true
        (Fault.applies faults ~job:1 ~attempt:2 = None);
      check_bool "job 2 every attempt" true
        (Fault.applies faults ~job:2 ~attempt:5 = Some Fault.Hang)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)

let test_backoff () =
  let cfg = { Pool.default with backoff_base = 0.1; backoff_cap = 2.0 } in
  let d ~job ~attempt = Pool.backoff_delay cfg ~job ~attempt in
  check_bool "deterministic" true (d ~job:3 ~attempt:2 = d ~job:3 ~attempt:2);
  check_bool "jitter distinguishes jobs" true (d ~job:0 ~attempt:1 <> d ~job:1 ~attempt:1);
  (* un-jittered schedule doubles then caps; jitter adds at most 25% *)
  for attempt = 1 to 8 do
    let base = min cfg.backoff_cap (cfg.backoff_base *. (2. ** float_of_int (attempt - 1))) in
    let delay = d ~job:5 ~attempt in
    check_bool "at least base" true (delay >= base);
    check_bool "jitter bounded" true (delay <= base *. 1.25)
  done;
  check_bool "capped" true (d ~job:5 ~attempt:30 <= cfg.backoff_cap *. 1.25)

(* ------------------------------------------------------------------ *)
(* Pool verdicts via fault injection                                   *)

let quick_worker _i n = Ok (Json.Int (n * n))

let run_one ?(timeout = 5.0) ?(max_retries = 0) ?(faults = []) worker =
  let cfg =
    { Pool.default with timeout = Some timeout; max_retries; faults }
  in
  let outcomes = Pool.run cfg ~worker [ 7 ] in
  check "one outcome" 1 (Array.length outcomes);
  outcomes.(0)

let test_verdict_ok () =
  let o = run_one quick_worker in
  (match o.Pool.verdict with
  | Pool.Done (Json.Int 49) -> ()
  | v -> Alcotest.failf "expected Done 49, got %s" (Pool.verdict_to_string v));
  check "single attempt" 1 o.Pool.attempts;
  check "no backoffs" 0 (List.length o.Pool.backoffs)

let test_verdict_timed_out () =
  let faults = Result.get_ok (Fault.parse "hang:1") in
  let o = run_one ~timeout:0.3 ~faults quick_worker in
  match o.Pool.verdict with
  | Pool.Timed_out -> ()
  | v -> Alcotest.failf "expected Timed_out, got %s" (Pool.verdict_to_string v)

let test_verdict_crashed () =
  let faults = Result.get_ok (Fault.parse "abort:1") in
  let o = run_one ~faults quick_worker in
  match o.Pool.verdict with
  | Pool.Crashed s ->
      check_string "signal" "SIGABRT" (Pool.signal_name s)
  | v -> Alcotest.failf "expected Crashed, got %s" (Pool.verdict_to_string v)

let test_verdict_protocol_error () =
  let faults = Result.get_ok (Fault.parse "garbage:1") in
  let o = run_one ~faults quick_worker in
  match o.Pool.verdict with
  | Pool.Worker_protocol_error _ -> ()
  | v ->
      Alcotest.failf "expected Worker_protocol_error, got %s"
        (Pool.verdict_to_string v)

let test_verdict_engine_failure () =
  (* Deterministic worker-reported failures must not be retried even
     when retries are allowed. *)
  let o = run_one ~max_retries:3 (fun _ _ -> Error Budget.Timeout) in
  (match o.Pool.verdict with
  | Pool.Engine_failure Budget.Timeout -> ()
  | v -> Alcotest.failf "expected Engine_failure, got %s" (Pool.verdict_to_string v));
  check "no retry of deterministic failure" 1 o.Pool.attempts

let test_verdict_worker_exception () =
  (* An exception escaping the worker maps into the failure taxonomy
     rather than crashing the child without a frame. *)
  let o = run_one (fun _ _ -> failwith "boom") in
  match o.Pool.verdict with
  | Pool.Engine_failure (Budget.Internal _) -> ()
  | v -> Alcotest.failf "expected Engine_failure internal, got %s" (Pool.verdict_to_string v)

let test_retry_recovers () =
  (* Fault only on attempt 1: the retry must succeed, with the backoff
     slept before it on the books. *)
  let faults = Result.get_ok (Fault.parse "abort:1:1") in
  let cfg =
    {
      Pool.default with
      timeout = Some 5.0;
      max_retries = 2;
      backoff_base = 0.01;
      backoff_cap = 0.05;
      faults;
    }
  in
  let o = (Pool.run cfg ~worker:quick_worker [ 7 ]).(0) in
  (match o.Pool.verdict with
  | Pool.Done (Json.Int 49) -> ()
  | v -> Alcotest.failf "expected Done after retry, got %s" (Pool.verdict_to_string v));
  check "two attempts" 2 o.Pool.attempts;
  check "one backoff slept" 1 (List.length o.Pool.backoffs);
  check_bool "backoff matches schedule" true
    (o.Pool.backoffs = [ Pool.backoff_delay cfg ~job:0 ~attempt:1 ])

let test_retry_exhausts () =
  (* Fault on every attempt: retries burn down, verdict stays Crashed. *)
  let faults = Result.get_ok (Fault.parse "abort:1") in
  let cfg =
    {
      Pool.default with
      timeout = Some 5.0;
      max_retries = 2;
      backoff_base = 0.01;
      backoff_cap = 0.05;
      faults;
    }
  in
  let o = (Pool.run cfg ~worker:quick_worker [ 7 ]).(0) in
  (match o.Pool.verdict with
  | Pool.Crashed _ -> ()
  | v -> Alcotest.failf "expected Crashed, got %s" (Pool.verdict_to_string v));
  check "all attempts used" 3 o.Pool.attempts;
  check "backoff per retry" 2 (List.length o.Pool.backoffs)

let test_verdict_failure_mapping () =
  let open Pool in
  check_bool "timed-out -> timeout" true
    (verdict_failure Timed_out = Some Budget.Timeout);
  check_bool "crash -> internal" true
    (match verdict_failure (Crashed Sys.sigabrt) with
    | Some (Budget.Internal _) -> true
    | _ -> false);
  check_bool "protocol -> internal" true
    (match verdict_failure (Worker_protocol_error "x") with
    | Some (Budget.Internal _) -> true
    | _ -> false);
  check_bool "engine failure passes through" true
    (verdict_failure (Engine_failure Budget.Budget_exhausted)
    = Some Budget.Budget_exhausted);
  check_bool "done -> none" true (verdict_failure (Done Json.Null) = None)

(* ------------------------------------------------------------------ *)
(* Order determinism                                                   *)

let staggered_worker i n =
  (* Later submissions finish first, so out-of-order completion is
     guaranteed, not just possible. *)
  Unix.sleepf (float_of_int (8 - i) *. 0.02);
  Ok (Json.Int (n * 10))

let commit_trace cfg jobs =
  let order = ref [] in
  let outcomes =
    Pool.run cfg ~worker:staggered_worker
      ~on_result:(fun i o ->
        let payload =
          match o.Pool.verdict with
          | Pool.Done j -> Json.to_string j
          | v -> Pool.verdict_to_string v
        in
        order := (i, payload) :: !order)
      jobs
  in
  (List.rev !order, outcomes)

let test_order_determinism () =
  let jobs = List.init 8 (fun i -> i + 1) in
  let seq, seq_out = commit_trace { Pool.default with jobs = 1 } jobs in
  let par, par_out = commit_trace { Pool.default with jobs = 4 } jobs in
  check_bool "commit order is submission order" true
    (List.map fst par = [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  check_bool "parallel trace equals sequential trace" true (seq = par);
  check_bool "outcome payloads agree" true
    (Array.for_all2
       (fun a b -> a.Pool.verdict = b.Pool.verdict)
       seq_out par_out)

let test_isolation () =
  (* One crashing worker must not disturb its siblings' results. *)
  let faults = Result.get_ok (Fault.parse "abort:3") in
  let cfg = { Pool.default with jobs = 4; timeout = Some 5.0; faults } in
  let outcomes = Pool.run cfg ~worker:quick_worker [ 1; 2; 3; 4; 5 ] in
  Array.iteri
    (fun i o ->
      match (i, o.Pool.verdict) with
      | 2, Pool.Crashed _ -> ()
      | 2, v -> Alcotest.failf "job 2: expected Crashed, got %s" (Pool.verdict_to_string v)
      | i, Pool.Done (Json.Int sq) -> check "square" ((i + 1) * (i + 1)) sq
      | i, v -> Alcotest.failf "job %d: %s" i (Pool.verdict_to_string v))
    outcomes

let test_stop_accounting () =
  (* A hard stop while job 0 still blocks the commit prefix: jobs 1-3
     may have finished out of order, but nothing was committed, so
     every outcome must read Cancelled — the number of non-Cancelled
     outcomes must always equal the number of on_result calls. *)
  let t0 = Unix.gettimeofday () in
  let cfg =
    {
      Pool.default with
      jobs = 4;
      should_stop = (fun () -> Unix.gettimeofday () -. t0 > 0.4);
    }
  in
  let commits = ref 0 in
  let worker i _ =
    Unix.sleepf (if i = 0 then 10.0 else 0.05);
    Ok (Json.Int i)
  in
  let outcomes =
    Pool.run cfg ~worker ~on_result:(fun _ _ -> incr commits) [ 0; 1; 2; 3; 4; 5 ]
  in
  let non_cancelled =
    Array.fold_left
      (fun acc o ->
        match o.Pool.verdict with
        | Pool.Engine_failure Budget.Cancelled -> acc
        | _ -> acc + 1)
      0 outcomes
  in
  check "non-cancelled outcomes = committed results" !commits non_cancelled;
  check "nothing committed past the blocked prefix" 0 !commits

(* ------------------------------------------------------------------ *)
(* Progress channel                                                    *)

let test_progress_render () =
  let p =
    {
      Progress.total = 10;
      finished = 3;
      running =
        [ { Progress.job = 4; attempt = 2; phase = "optimal.rbw_io";
            host = "local" } ];
      waiting = 6;
      retries = 1;
      elapsed = 12.0;
      eta = Some 28.0;
      rss_bytes = Some (512 * 1024 * 1024);
    }
  in
  let line = Progress.render p in
  let contains needle =
    let nh = String.length line and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub line i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool ("line mentions " ^ needle) true (contains needle))
    [ "3/10 done"; "1 running"; "job 4"; "try 2"; "optimal.rbw_io";
      "6 waiting"; "1 retr"; "512.0MiB" ];
  (* a quiet pool renders without running/retry/rss fragments *)
  let idle =
    Progress.render
      {
        Progress.total = 2; finished = 2; running = []; waiting = 0;
        retries = 0; elapsed = 1.0; eta = None; rss_bytes = None;
      }
  in
  check_bool "idle line is total-only" true (String.length idle > 0)

let test_progress_rss () =
  match Progress.rss_of_pid (Unix.getpid ()) with
  | Some bytes -> check_bool "own RSS is positive" true (bytes > 0)
  | None -> Alcotest.fail "could not read own /proc RSS"

let test_pool_heartbeats () =
  (* With on_progress set, workers switch into heartbeat mode: extra
     {"hb": ...} frames precede the result frame.  The supervisor must
     surface scheduling snapshots AND still deliver every result
     untouched — the protocol change cannot corrupt payloads. *)
  let snaps = ref [] in
  let cfg =
    {
      Pool.default with
      jobs = 2;
      timeout = Some 5.0;
      on_progress = Some (fun p -> snaps := p :: !snaps);
    }
  in
  let worker _ n =
    Unix.sleepf 0.3;
    Ok (Json.Int (n + 1))
  in
  let outcomes = Pool.run cfg ~worker [ 1; 2; 3 ] in
  Array.iteri
    (fun i o ->
      match o.Pool.verdict with
      | Pool.Done (Json.Int v) -> check "payload intact" (i + 2) v
      | v -> Alcotest.failf "job %d: %s" i (Pool.verdict_to_string v))
    outcomes;
  check_bool "progress snapshots delivered" true (!snaps <> []);
  List.iter
    (fun p ->
      check "total is job count" 3 p.Progress.total;
      check_bool "counts are consistent" true
        (p.Progress.finished + List.length p.Progress.running + p.Progress.waiting
         <= 3
        && p.Progress.finished >= 0))
    !snaps;
  (* the "start" heartbeat marks at least one snapshot's running job *)
  check_bool "a worker phase was observed" true
    (List.exists
       (fun p ->
         List.exists (fun r -> r.Progress.phase = "start") p.Progress.running)
       !snaps)

let test_pool_heartbeats_with_fault () =
  (* Heartbeat mode must not weaken protocol-error detection: a child
     that writes garbage instead of frames is still classified. *)
  let faults = Result.get_ok (Fault.parse "garbage:1") in
  let cfg =
    {
      Pool.default with
      timeout = Some 5.0;
      faults;
      on_progress = Some (fun _ -> ());
    }
  in
  let o = (Pool.run cfg ~worker:quick_worker [ 7 ]).(0) in
  match o.Pool.verdict with
  | Pool.Worker_protocol_error _ -> ()
  | v ->
      Alcotest.failf "expected Worker_protocol_error, got %s"
        (Pool.verdict_to_string v)

let test_pool_heartbeat_determinism () =
  (* The acceptance bar behind --progress: enabling the channel must
     not change a single result byte. *)
  let jobs = List.init 6 (fun i -> i) in
  let run on_progress =
    let cfg = { Pool.default with jobs = 3; timeout = Some 5.0; on_progress } in
    let trace = ref [] in
    ignore
      (Pool.run cfg ~worker:staggered_worker
         ~on_result:(fun i o ->
           let payload =
             match o.Pool.verdict with
             | Pool.Done j -> Json.to_string j
             | v -> Pool.verdict_to_string v
           in
           trace := (i, payload) :: !trace)
         jobs);
    List.rev !trace
  in
  let quiet = run None and chatty = run (Some (fun _ -> ())) in
  check_bool "identical commit traces with and without progress" true
    (quiet = chatty)

(* ------------------------------------------------------------------ *)
(* Half-written frames: a peer that dies or stalls mid-frame must
   surface as a typed error carrying the byte accounting, never as a
   hang or a bare parse failure.                                       *)

let test_ipc_half_frame () =
  (* EOF mid-payload: the header promised more than ever arrived. *)
  let frame = Ipc.encode_frame (Json.Obj [ ("k", Json.String "vvvv") ]) in
  let payload_len = String.length frame - Ipc.header_bytes in
  let r, w = Unix.pipe ~cloexec:false () in
  ignore (Unix.write_substring w frame 0 (Ipc.header_bytes + 3) : int);
  Unix.close w;
  (match Ipc.read_frame r with
  | Error (Ipc.Truncated { expected; got }) ->
      check "promised payload bytes" payload_len expected;
      check "received payload bytes" 3 got
  | Ok _ -> Alcotest.fail "decoded a half-written frame"
  | Error e ->
      Alcotest.failf "expected Truncated, got %s" (Ipc.read_error_to_string e));
  Unix.close r;
  (* EOF mid-header. *)
  let r, w = Unix.pipe ~cloexec:false () in
  ignore (Unix.write_substring w frame 0 4 : int);
  Unix.close w;
  (match Ipc.read_frame r with
  | Error (Ipc.Truncated { expected; got }) ->
      check "header width" Ipc.header_bytes expected;
      check "header bytes received" 4 got
  | Ok _ -> Alcotest.fail "decoded a half-written header"
  | Error e ->
      Alcotest.failf "expected Truncated, got %s" (Ipc.read_error_to_string e));
  Unix.close r

let test_ipc_read_deadline () =
  (* The writer stays alive but never finishes the frame — the
     slow-loris shape.  Only the deadline can end this read. *)
  let frame = Ipc.encode_frame (Json.Obj [ ("k", Json.Int 1) ]) in
  let payload_len = String.length frame - Ipc.header_bytes in
  let r, w = Unix.pipe ~cloexec:false () in
  ignore (Unix.write_substring w frame 0 (Ipc.header_bytes + 2) : int);
  (match Ipc.read_frame ~deadline:(Unix.gettimeofday () +. 0.1) r with
  | Error (Ipc.Timed_out { expected; got }) ->
      check "promised payload bytes" payload_len expected;
      check "received payload bytes" 2 got
  | Ok _ -> Alcotest.fail "decoded a stalled frame"
  | Error e ->
      Alcotest.failf "expected Timed_out, got %s" (Ipc.read_error_to_string e));
  Unix.close w;
  Unix.close r;
  (* A complete frame under a generous deadline still reads fine (on a
     fresh pipe: a timed-out read has already consumed its bytes). *)
  let r, w = Unix.pipe ~cloexec:false () in
  Ipc.write_frame w (Json.Obj [ ("k", Json.Int 1) ]);
  (match Ipc.read_frame ~deadline:(Unix.gettimeofday () +. 5.) r with
  | Ok (Json.Obj [ ("k", Json.Int 1) ]) -> ()
  | Ok _ -> Alcotest.fail "wrong frame"
  | Error e -> Alcotest.fail (Ipc.read_error_to_string e));
  Unix.close w;
  Unix.close r

(* ------------------------------------------------------------------ *)
(* Server fault kinds                                                  *)

let test_fault_server_kinds () =
  (match Fault.parse "drop:1,truncate:2:1,slow:3" with
  | Error m -> Alcotest.fail m
  | Ok faults ->
      check_string "roundtrip" "drop:1,truncate:2:1,slow:3"
        (String.concat "," (List.map Fault.to_string faults));
      check_bool "all server kinds" true
        (List.for_all
           (fun f -> not (Fault.is_worker_kind f.Fault.kind))
           faults));
  check_bool "worker kinds" true
    (List.for_all Fault.is_worker_kind [ Fault.Hang; Fault.Abort; Fault.Garbage ])

(* ------------------------------------------------------------------ *)
(* Streaming handle                                                    *)

let test_streaming_unordered () =
  let commits = ref [] in
  let pool =
    Pool.create ~ordered:false
      { Pool.default with jobs = 2 }
      ~worker:(fun i () ->
        if i = 0 then Unix.sleepf 0.4;
        Ok (Json.Int i))
      ~on_commit:(fun id o -> commits := (id, o.Pool.verdict) :: !commits)
      ()
  in
  ignore (Pool.submit pool () : int);
  ignore (Pool.submit pool () : int);
  check "both unfinished" 2 (Pool.unfinished pool);
  while Pool.unfinished pool > 0 do
    Pool.step pool
  done;
  let commits = List.rev !commits in
  check "both committed" 2 (List.length commits);
  (* job 1 is instant, job 0 sleeps: unordered commit must release the
     fast job's reply without waiting for the slow one *)
  check "fast job committed first" 1 (fst (List.hd commits));
  check_bool "no descriptors left" true (Pool.watch_fds pool = []);
  match (Pool.outcome pool 0, Pool.outcome pool 1) with
  | ( Some { Pool.verdict = Pool.Done (Json.Int 0); _ },
      Some { Pool.verdict = Pool.Done (Json.Int 1); _ } ) ->
      ()
  | _ -> Alcotest.fail "outcomes not queryable after commit"

let test_streaming_abandon () =
  let commits = ref 0 in
  let pool =
    Pool.create
      { Pool.default with jobs = 1 }
      ~worker:(fun _ () ->
        Unix.sleepf 60.;
        Ok Json.Null)
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  ignore (Pool.submit pool () : int);
  ignore (Pool.submit pool () : int);
  Pool.step ~max_wait:0. pool;
  check "one in flight, one queued" 1 (Pool.running pool);
  Pool.abandon pool;
  check "cancellation commits nothing" 0 !commits;
  check "nothing unfinished" 0 (Pool.unfinished pool);
  List.iter
    (fun id ->
      match Pool.outcome pool id with
      | Some { Pool.verdict = Pool.Engine_failure Budget.Cancelled; _ } -> ()
      | _ -> Alcotest.failf "job %d not reported cancelled" id)
    [ 0; 1 ]

let () =
  Alcotest.run "dmc_runtime"
    [
      ( "ipc",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipc_roundtrip;
          Alcotest.test_case "pipe" `Quick test_ipc_pipe;
          Alcotest.test_case "error taxonomy" `Quick test_ipc_errors;
          Alcotest.test_case "half-written frame" `Quick test_ipc_half_frame;
          Alcotest.test_case "read deadline" `Quick test_ipc_read_deadline;
        ] );
      ( "fault",
        [
          Alcotest.test_case "parse" `Quick test_fault_parse;
          Alcotest.test_case "applies" `Quick test_fault_applies;
          Alcotest.test_case "server kinds" `Quick test_fault_server_kinds;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "unordered commit" `Quick test_streaming_unordered;
          Alcotest.test_case "abandon cancels uncommitted" `Quick
            test_streaming_abandon;
        ] );
      ( "backoff",
        [ Alcotest.test_case "deterministic capped jitter" `Quick test_backoff ] );
      ( "verdicts",
        [
          Alcotest.test_case "done" `Quick test_verdict_ok;
          Alcotest.test_case "hang -> timed-out" `Quick test_verdict_timed_out;
          Alcotest.test_case "abort -> crashed" `Quick test_verdict_crashed;
          Alcotest.test_case "garbage -> protocol error" `Quick
            test_verdict_protocol_error;
          Alcotest.test_case "engine failure is final" `Quick
            test_verdict_engine_failure;
          Alcotest.test_case "worker exception -> internal" `Quick
            test_verdict_worker_exception;
          Alcotest.test_case "failure mapping" `Quick test_verdict_failure_mapping;
        ] );
      ( "retry",
        [
          Alcotest.test_case "recovers after transient fault" `Quick
            test_retry_recovers;
          Alcotest.test_case "exhausts and reports" `Quick test_retry_exhausts;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "commit order jobs=4 vs jobs=1" `Quick
            test_order_determinism;
          Alcotest.test_case "crash isolation" `Quick test_isolation;
          Alcotest.test_case "hard-stop accounting" `Quick test_stop_accounting;
        ] );
      ( "progress",
        [
          Alcotest.test_case "render fragments" `Quick test_progress_render;
          Alcotest.test_case "own RSS readable" `Quick test_progress_rss;
          Alcotest.test_case "heartbeats deliver snapshots" `Quick
            test_pool_heartbeats;
          Alcotest.test_case "garbage still a protocol error" `Quick
            test_pool_heartbeats_with_fault;
          Alcotest.test_case "channel does not change results" `Quick
            test_pool_heartbeat_determinism;
        ] );
    ]
