(* Tests for the trade-off experiment: curve measurement invariants
   (sandwich, monotonicity, p = 1 agreement), curve JSON round-trips,
   the registry pipeline, and byte-identical Doc-IR output across
   --jobs widths through the real CLI binary. *)

module Doc = Dmc_analysis.Doc
module Experiment = Dmc_analysis.Experiment
module Report = Dmc_analysis.Report
module Tradeoff = Dmc_analysis.Tradeoff
module Json = Dmc_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A small workload keeps the exact wavefront rungs cheap. *)
let small_curve = lazy (Tradeoff.measure ~spec:"tree:16" ~s:3 ())

let test_curve_shape () =
  let c = Lazy.force small_curve in
  check_int "one point per p" (List.length Tradeoff.ps)
    (List.length c.Tradeoff.points);
  List.iter2
    (fun p pt -> check_int "p sweep order" p pt.Tradeoff.p)
    Tradeoff.ps c.Tradeoff.points;
  check_bool "seq lb <= seq ub" true Tradeoff.(c.seq_lb <= c.seq_ub)

let test_sandwich () =
  let c = Lazy.force small_curve in
  check_bool "comm lb <= measured and time lb <= makespan" true
    (Tradeoff.sandwich_ok c);
  List.iter
    (fun pt ->
      check_bool
        (Printf.sprintf "positive bounds at p=%d" pt.Tradeoff.p)
        true
        Tradeoff.(pt.comm_lb > 0 && pt.time_lb > 0))
    c.Tradeoff.points

let test_lb_monotone () =
  let c = Lazy.force small_curve in
  check_bool "comm lb non-increasing in p" true (Tradeoff.lb_monotone c);
  (* the predicate itself must reject a non-monotone curve *)
  let rising =
    {
      c with
      Tradeoff.points =
        List.mapi
          (fun i pt -> { pt with Tradeoff.comm_lb = pt.Tradeoff.comm_lb + i })
          c.Tradeoff.points;
    }
  in
  check_bool "predicate rejects a rising lb" false (Tradeoff.lb_monotone rising)

let test_p1_agrees () =
  let c = Lazy.force small_curve in
  check_bool "p=1 collapses to the sequential bounds" true
    (Tradeoff.p1_agrees c);
  let off =
    { c with Tradeoff.seq_lb = c.Tradeoff.seq_lb + 1 }
  in
  check_bool "predicate rejects a disagreeing p=1 point" false
    (Tradeoff.p1_agrees off)

let test_json_roundtrip () =
  let c = Lazy.force small_curve in
  let json = Tradeoff.curve_to_json c in
  match Json.parse (Json.to_string json) with
  | Error msg -> Alcotest.failf "curve JSON does not re-parse: %s" msg
  | Ok json' ->
      let c' = Tradeoff.curve_of_json json' in
      check_str "curve survives the JSON round-trip"
        (Json.to_string json)
        (Json.to_string (Tradeoff.curve_to_json c'))

(* Registry integration: the tradeoff experiment is registered, its
   part names are unique, and the doc built from serialized payloads
   matches the directly-assembled doc (the pipeline the pool and the
   checkpoint use). *)
let test_registry_pipeline () =
  let e =
    match Report.find "tradeoff" with
    | Some e -> e
    | None -> Alcotest.fail "tradeoff experiment not registered"
  in
  let names = Experiment.part_names e in
  check_int "part names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let payloads =
    List.map
      (fun (p : Experiment.part) ->
        let payload = p.run () in
        match Json.parse (Json.to_string payload) with
        | Ok payload -> payload
        | Error msg -> Alcotest.failf "payload does not re-parse: %s" msg)
      e.parts
  in
  let doc = e.doc_of_parts payloads in
  check_str "doc from serialized payloads"
    (Doc.to_text (Experiment.doc e))
    (Doc.to_text doc);
  check_bool "all tradeoff checks pass" true (Doc.ok doc);
  (* the curves plot against p, not S *)
  let xlabels =
    List.filter_map
      (function Doc.Curve c -> Some c.Doc.xlabel | _ -> None)
      doc.Doc.blocks
  in
  check_bool "curves carry the p axis" true
    (xlabels <> [] && List.for_all (fun l -> l = "p") xlabels)

(* ------------------------------------------------------------------ *)
(* Byte-identity across --jobs widths, through the real binary         *)

let dmc_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "dmc.exe"

let run_capture argv =
  let cmd =
    String.concat " " (List.map Filename.quote argv) ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Buffer.contents buf
  | Unix.WEXITED n -> Alcotest.failf "%s exited %d" cmd n
  | _ -> Alcotest.failf "%s killed" cmd

let test_jobs_determinism () =
  if not (Sys.file_exists dmc_exe) then
    Alcotest.fail ("dmc binary missing: " ^ dmc_exe);
  let run jobs =
    run_capture
      [ dmc_exe; "experiment"; "tradeoff"; "--json"; "--jobs"; jobs ]
  in
  let serial = run "1" and wide = run "4" in
  check_bool "report is non-trivial" true (String.length serial > 100);
  check_str "--jobs 4 report is byte-identical to --jobs 1" serial wide

let test_sweep_p_jobs_determinism () =
  if not (Sys.file_exists dmc_exe) then
    Alcotest.fail ("dmc binary missing: " ^ dmc_exe);
  let run jobs =
    run_capture
      [
        dmc_exe; "sweep"; "tree:16"; "-s"; "3,4"; "-p"; "1,2,4";
        "--engines"; "mp-comm-lb,mp-comm-ub"; "--jobs"; jobs;
      ]
  in
  let serial = run "1" and wide = run "4" in
  check_bool "sweep report is non-trivial" true (String.length serial > 100);
  check_str "sweep --jobs 4 report is byte-identical to --jobs 1" serial wide

let () =
  Alcotest.run "dmc_tradeoff"
    [
      ( "curve",
        [
          Alcotest.test_case "shape" `Quick test_curve_shape;
          Alcotest.test_case "sandwich" `Quick test_sandwich;
          Alcotest.test_case "lb monotone in p" `Quick test_lb_monotone;
          Alcotest.test_case "p=1 agreement" `Quick test_p1_agrees;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "registry pipeline" `Slow test_registry_pipeline;
          Alcotest.test_case "--jobs byte-identity" `Slow test_jobs_determinism;
          Alcotest.test_case "sweep -p --jobs byte-identity" `Slow
            test_sweep_p_jobs_determinism;
        ] );
    ]
