(* Unit and property tests for the dmc_util substrate. *)

module Bitset = Dmc_util.Bitset
module Intvec = Dmc_util.Intvec
module Heap = Dmc_util.Heap
module Union_find = Dmc_util.Union_find
module Table = Dmc_util.Table
module Stats = Dmc_util.Stats
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check_bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check "cardinal" 4 (Bitset.cardinal s);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  check_bool "not mem 1" false (Bitset.mem s 1);
  Bitset.add s 63;
  check "idempotent add" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  check "after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check "idempotent remove" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 64; 99 ] (Bitset.elements s);
  Bitset.clear s;
  check "cleared" 0 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8);
  Alcotest.check_raises "mem negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "negative capacity" (Invalid_argument "Bitset.create")
    (fun () -> ignore (Bitset.create (-1)))

let test_bitset_setops () =
  let a = Bitset.of_list 10 [ 1; 2; 3; 4 ] in
  let b = Bitset.of_list 10 [ 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5; 6 ] (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 4 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  check_bool "subset no" false (Bitset.subset a b);
  check_bool "subset yes" true (Bitset.subset (Bitset.of_list 10 [ 3; 4 ]) b);
  check_bool "equal self" true (Bitset.equal a (Bitset.copy a));
  check_bool "not equal" false (Bitset.equal a b)

let test_bitset_choose_fold () =
  let s = Bitset.of_list 20 [ 7; 11; 13 ] in
  Alcotest.(check (option int)) "choose smallest" (Some 7) (Bitset.choose s);
  check "fold sum" 31 (Bitset.fold (fun i acc -> i + acc) s 0);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose (Bitset.create 5))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches a list-set model" ~count:200
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.elements s))

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"union/inter cardinalities are consistent" ~count:200
    QCheck.(pair (list (int_bound 31)) (list (int_bound 31)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 32 xs and b = Bitset.of_list 32 ys in
      Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b)
      = Bitset.cardinal a + Bitset.cardinal b)

(* ------------------------------------------------------------------ *)
(* Intvec                                                              *)

let test_intvec_basic () =
  let v = Intvec.create ~initial_capacity:2 () in
  for i = 0 to 99 do
    Intvec.push v (i * i)
  done;
  check "length" 100 (Intvec.length v);
  check "get 10" 100 (Intvec.get v 10);
  Intvec.set v 10 7;
  check "set/get" 7 (Intvec.get v 10);
  check "pop" 9801 (Intvec.pop v);
  check "length after pop" 99 (Intvec.length v);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Intvec: index out of bounds")
    (fun () -> ignore (Intvec.get v 99));
  Intvec.clear v;
  check "cleared" 0 (Intvec.length v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Intvec.pop: empty")
    (fun () -> ignore (Intvec.pop v))

let test_intvec_sort_roundtrip () =
  let v = Intvec.of_array [| 5; 1; 4; 2; 3 |] in
  Intvec.sort v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3; 4; 5 |] (Intvec.to_array v);
  check "fold" 15 (Intvec.fold ( + ) 0 v)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p ~value:(p * 10)) [ 5; 1; 4; 1; 3 ];
  check "length" 5 (Heap.length h);
  Alcotest.(check (option (pair int int))) "peek" (Some (1, 10)) (Heap.peek_min h);
  let drained = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (p, _) ->
        drained := p :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (List.rev !drained);
  check_bool "empty after" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~prio:x ~value:x) xs;
      let rec drain acc =
        match Heap.pop_min h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)

let test_union_find () =
  let uf = Union_find.create 10 in
  check "initial classes" 10 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 5 6;
  check "after unions" 7 (Union_find.count uf);
  check_bool "same 0 2" true (Union_find.same uf 0 2);
  check_bool "not same 0 5" false (Union_find.same uf 0 5);
  Union_find.union uf 0 2;
  check "idempotent union" 7 (Union_find.count uf);
  let classes = Union_find.classes uf in
  let sizes =
    Array.to_list classes |> List.map List.length |> List.filter (( <> ) 0)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "class sizes" [ 1; 1; 1; 1; 1; 2; 3 ] sizes

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  check_bool "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  check "line count" 5 (List.length lines);
  let widths = List.map String.length lines in
  check_bool "aligned columns" true
    (List.for_all (( = ) (List.hd widths)) widths);
  Alcotest.check_raises "bad width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_formats () =
  Alcotest.(check string) "fmt_int" "1_234_567" (Table.fmt_int 1234567);
  Alcotest.(check string) "fmt_int negative" "-1_000" (Table.fmt_int (-1000));
  Alcotest.(check string) "fmt_int small" "999" (Table.fmt_int 999);
  Alcotest.(check string) "fmt_float" "3.14" (Table.fmt_float ~digits:2 3.14159)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_known () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let s = Stats.summarize xs in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 4.5 s.Stats.median;
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "geomean of powers" 4.0
    (Stats.geomean [| 2.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "p0 is min" 2.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 9.0 (Stats.percentile xs 100.0)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

module Json = Dmc_util.Json

let test_json_rendering () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("s", Json.String "he said \"hi\"\n");
      ]
  in
  let compact = Json.to_string ~indent:false v in
  Alcotest.(check string) "compact"
    "{\"a\": 1,\"b\": [true,null,2.5],\"s\": \"he said \\\"hi\\\"\\n\"}"
    compact;
  let pretty = Json.to_string v in
  check_bool "pretty has newlines" true (String.contains pretty '\n');
  Alcotest.(check string) "empty obj" "{}" (Json.to_string (Json.Obj []));
  Alcotest.(check string) "empty list" "[]" (Json.to_string (Json.List []));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "opt none" "null" (Json.to_string (Json.opt (fun i -> Json.Int i) None));
  Alcotest.(check string) "opt some" "7" (Json.to_string (Json.opt (fun i -> Json.Int i) (Some 7)))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let xs = List.init 20 (fun _ -> Rng.next a) in
  let ys = List.init 20 (fun _ -> Rng.next b) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Rng.create 124 in
  let zs = List.init 20 (fun _ -> Rng.next c) in
  check_bool "different seed different stream" true (xs <> zs)

let test_rng_ranges () =
  let g = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int g 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of range";
    let f = Rng.float g 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of range"
  done;
  Alcotest.check_raises "int zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_rng_shuffle_is_permutation () =
  let g = Rng.create 99 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.next parent) in
  let ys = List.init 10 (fun _ -> Rng.next child) in
  check_bool "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Ipc partial delivery                                                *)

module Ipc = Dmc_util.Ipc

let with_pipe f =
  let r, w = Unix.pipe ~cloexec:false () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_exactly fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

(* Exhaustive over every byte boundary: a peer that dies after writing
   exactly [cut] bytes of a frame must yield [Closed] (nothing at all)
   or [Truncated] carrying the exact expected/got counts for whichever
   part — header or payload — the cut interrupted. *)
let test_ipc_truncated_every_boundary () =
  let value = Json.Obj [ ("row", Json.Int 7); ("payload", Json.String "xyz") ] in
  let frame = Ipc.encode_frame value in
  let total = String.length frame in
  let payload_len = total - Ipc.header_bytes in
  for cut = 0 to total do
    with_pipe (fun r w ->
        write_exactly w (String.sub frame 0 cut);
        Unix.close w;
        match (Ipc.read_frame r, cut) with
        | Ok v, c when c = total ->
            check_bool "full frame decodes" true (v = value)
        | Error Ipc.Closed, 0 -> ()
        | Error (Ipc.Truncated { expected; got }), c
          when c < Ipc.header_bytes ->
            check (Printf.sprintf "header expected at cut %d" c)
              Ipc.header_bytes expected;
            check (Printf.sprintf "header got at cut %d" c) c got
        | Error (Ipc.Truncated { expected; got }), c ->
            check (Printf.sprintf "payload expected at cut %d" c)
              payload_len expected;
            check (Printf.sprintf "payload got at cut %d" c)
              (c - Ipc.header_bytes) got
        | Ok _, c -> Alcotest.failf "cut %d decoded despite missing bytes" c
        | Error e, c ->
            Alcotest.failf "cut %d: unexpected %s" c
              (Ipc.read_error_to_string e))
  done

(* Same boundaries, but the peer stays alive and merely stalls: with a
   deadline every incomplete prefix must surface as [Timed_out], never
   [Truncated] (the pipe is still open) and never a hang. *)
let test_ipc_timed_out_every_boundary () =
  let value = Json.List [ Json.Int 1; Json.Bool false; Json.String "s" ] in
  let frame = Ipc.encode_frame value in
  let total = String.length frame in
  let payload_len = total - Ipc.header_bytes in
  for cut = 0 to total do
    with_pipe (fun r w ->
        write_exactly w (String.sub frame 0 cut);
        (* w stays open: the peer is dribbling, not dead *)
        let deadline = Unix.gettimeofday () +. 0.01 in
        match (Ipc.read_frame ~deadline r, cut) with
        | Ok v, c when c = total ->
            check_bool "full frame decodes" true (v = value)
        | Error (Ipc.Timed_out { expected; got }), c
          when c < Ipc.header_bytes ->
            check (Printf.sprintf "header expected at cut %d" c)
              Ipc.header_bytes expected;
            check (Printf.sprintf "header got at cut %d" c) c got
        | Error (Ipc.Timed_out { expected; got }), c ->
            check (Printf.sprintf "payload expected at cut %d" c)
              payload_len expected;
            check (Printf.sprintf "payload got at cut %d" c)
              (c - Ipc.header_bytes) got
        | Ok _, c -> Alcotest.failf "cut %d decoded despite missing bytes" c
        | Error e, c ->
            Alcotest.failf "cut %d: unexpected %s" c
              (Ipc.read_error_to_string e))
  done

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_setops;
          Alcotest.test_case "choose and fold" `Quick test_bitset_choose_fold;
        ] );
      qsuite "bitset-props" [ prop_bitset_model; prop_bitset_demorgan ];
      ( "intvec",
        [
          Alcotest.test_case "push/pop/get/set" `Quick test_intvec_basic;
          Alcotest.test_case "sort and fold" `Quick test_intvec_sort_roundtrip;
        ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering ] );
      qsuite "heap-props" [ prop_heap_sorts ];
      ( "union_find", [ Alcotest.test_case "classes" `Quick test_union_find ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "errors" `Quick test_stats_errors;
        ] );
      ( "json", [ Alcotest.test_case "rendering" `Quick test_json_rendering ] );
      ( "ipc",
        [
          Alcotest.test_case "truncated at every byte boundary" `Quick
            test_ipc_truncated_every_boundary;
          Alcotest.test_case "timed out at every byte boundary" `Quick
            test_ipc_timed_out_every_boundary;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_is_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
    ]
