(* Tests for the observability layer: counter/enabled semantics, span
   nesting, the Chrome trace export (valid JSON, consistent ts/dur),
   registry reset determinism — two identical instrumented runs must
   produce byte-identical counter profiles — and the snapshot/merge
   round-trip the pool supervisor uses across the fork boundary. *)

module Json = Dmc_util.Json
module Ipc = Dmc_util.Ipc
module Registry = Dmc_obs.Registry
module Counter = Dmc_obs.Counter
module Span = Dmc_obs.Span
module Export = Dmc_obs.Export

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test starts from a clean, enabled registry and leaves it
   disabled, so suites cannot observe each other's state. *)
let with_registry f () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Registry.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counter_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  let c = Counter.make "test.disabled" in
  Counter.incr c;
  Counter.add c 41;
  check "disabled counter stays zero" 0 (Counter.value c)

let test_counter_enabled =
  with_registry (fun () ->
      let c = Counter.make "test.enabled" in
      Counter.incr c;
      Counter.add c 41;
      check "enabled counter accumulates" 42 (Counter.value c);
      (* find-or-create: same name gives the same cell *)
      let c' = Counter.make "test.enabled" in
      Counter.incr c';
      check "registration is idempotent" 43 (Counter.value c))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_nesting =
  with_registry (fun () ->
      let got =
        Span.with_ "outer" (fun () ->
            Span.with_ "inner" (fun () -> 7) + 10)
      in
      check "span body result" 17 got;
      let events = ref [] in
      Registry.iter_events (fun e -> events := e :: !events);
      match List.rev !events with
      | [ inner; outer ] ->
          (* completion order: inner closes first *)
          check_string "inner first" "inner" inner.Registry.ev_name;
          check_string "outer second" "outer" outer.Registry.ev_name;
          check "inner depth" 1 inner.Registry.ev_depth;
          check "outer depth" 0 outer.Registry.ev_depth;
          check_bool "durations non-negative" true
            (inner.Registry.ev_dur >= 0.0 && outer.Registry.ev_dur >= 0.0);
          check_bool "outer contains inner" true
            (outer.Registry.ev_ts <= inner.Registry.ev_ts
            && outer.Registry.ev_ts +. outer.Registry.ev_dur
               >= inner.Registry.ev_ts +. inner.Registry.ev_dur)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let test_span_exception =
  with_registry (fun () ->
      (match Span.with_ "raises" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      check "span recorded despite exception" 1 (Registry.event_count ());
      (* the stack unwound: a following span opens at depth 0 *)
      Span.with_ "after" (fun () -> ());
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "after" then
            check "stack unwound on raise" 0 e.Registry.ev_depth))

let test_span_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  let got = Span.with_ "off" (fun () -> 5) in
  check "disabled span is transparent" 5 got;
  check "no span recorded when disabled" 0 (Registry.event_count ())

(* ------------------------------------------------------------------ *)
(* An instrumented workload: real engines, deterministic node counts.  *)

let run_workload () =
  let g = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
  ignore (Dmc_core.Optimal.rbw_io g ~s:4);
  ignore (Dmc_core.Wavefront.wmax_exact g);
  let jac =
    Dmc_gen.Stencil.jacobi_1d ~n:8 ~steps:3
  in
  ignore (Dmc_core.Strategy.io jac.Dmc_gen.Stencil.graph ~s:6)

let test_reset_determinism () =
  (* Two reset-run cycles must yield byte-identical counter output:
     the acceptance bar behind the --jobs 1 vs --jobs 2 profile diff. *)
  Registry.reset ();
  Registry.set_enabled true;
  run_workload ();
  let first = Export.counters_table () in
  Registry.reset ();
  run_workload ();
  let second = Export.counters_table () in
  Registry.set_enabled false;
  check_string "identical runs, identical counters" first second;
  check_bool "workload actually counted something" true
    (String.length first > 0
    && Registry.fold_counters (fun acc c -> acc + c.Registry.c_value) 0 > 0)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let test_chrome_trace =
  with_registry (fun () ->
      run_workload ();
      (* Round-trip through the concrete syntax: the file a user hands
         to chrome://tracing must parse back as JSON. *)
      let doc =
        match Json.parse (Json.to_string (Export.chrome_trace ())) with
        | Ok d -> d
        | Error m -> Alcotest.failf "chrome trace is not valid JSON: %s" m
      in
      let events =
        match Json.mem doc "traceEvents" with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "traceEvents missing or not a list"
      in
      let slices =
        List.filter
          (fun e ->
            match Json.mem e "ph" with
            | Some (Json.String "X") -> true
            | _ -> false)
          events
      in
      check_bool "has complete slices" true (List.length slices > 0);
      let num j =
        match j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.fail "ts/dur missing or not numeric"
      in
      List.iter
        (fun e ->
          let ts = num (Json.mem e "ts") and dur = num (Json.mem e "dur") in
          check_bool "ts non-negative" true (ts >= 0.0);
          check_bool "dur non-negative" true (dur >= 0.0);
          (match Json.mem e "name" with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.fail "slice without a name");
          match Json.mem e "pid" with
          | Some (Json.Int 0) -> ()
          | _ -> Alcotest.fail "slice with unexpected pid")
        slices)

let test_chrome_trace_failed_rung =
  with_registry (fun () ->
      (* A rung that exhausts its node budget must still close its span
         and stamp the failure outcome — failed work has to show up in
         the trace, not vanish. *)
      let g = Dmc_gen.Shapes.diamond ~rows:4 ~cols:4 in
      let row = Dmc_core.Bounds.governed_row ~node_budget:50 g ~s:4 "partition-h" in
      ignore row;
      let found = ref false in
      Registry.iter_events (fun e ->
          if List.mem_assoc "outcome" e.Registry.ev_attrs then begin
            found := true;
            check_bool "span closed with a duration" true
              (e.Registry.ev_dur >= 0.0)
          end);
      check_bool "at least one rung span with an outcome" true !found)

(* ------------------------------------------------------------------ *)
(* Source lanes and instant events (the fleet-trace machinery)         *)

let test_source_lanes =
  with_registry (fun () ->
      check "lane 0 is this process" 0 (Registry.source "dmc");
      let a = Registry.source "hostA" in
      let b = Registry.source "hostB" in
      check_bool "fresh lanes are distinct and nonzero" true
        (a <> b && a > 0 && b > 0);
      check "registration is idempotent" a (Registry.source "hostA");
      check_string "lane name round-trips" "hostA"
        (Option.get (Registry.source_name a));
      (* a local span stays on lane 0; a merged worker span lands on
         its host's lane, and the Chrome export gives each lane its
         own pid with process_name metadata *)
      Span.with_ "local.work" (fun () -> ());
      (* merging this registry's own snapshot under [~src:a] plants a
         copy of the span on the host lane while the original stays on
         lane 0 — the fork boundary without the fork *)
      Registry.merge_snapshot ~tid:1 ~src:a (Registry.snapshot_json ());
      let doc =
        match Json.parse (Json.to_string (Export.chrome_trace ())) with
        | Ok d -> d
        | Error m -> Alcotest.failf "chrome trace is not valid JSON: %s" m
      in
      let events =
        match Json.mem doc "traceEvents" with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "traceEvents missing"
      in
      let pids_of ph_kind =
        List.filter_map
          (fun e ->
            match (Json.mem e "ph", Json.mem e "pid") with
            | Some (Json.String k), Some (Json.Int pid) when k = ph_kind ->
                Some pid
            | _ -> None)
          events
      in
      let slice_pids = List.sort_uniq compare (pids_of "X") in
      check_bool "slices appear on lane 0 and the host lane" true
        (List.mem 0 slice_pids && List.mem a slice_pids);
      let proc_names =
        List.filter_map
          (fun e ->
            match (Json.mem e "ph", Json.mem e "name") with
            | Some (Json.String "M"), Some (Json.String "process_name") ->
                Option.bind (Json.mem e "args") (fun args ->
                    match (Json.mem args "name", Json.mem e "pid") with
                    | Some (Json.String n), Some (Json.Int pid) ->
                        Some (pid, n)
                    | _ -> None)
            | _ -> None)
          events
      in
      check_string "lane 0 named dmc" "dmc"
        (Option.get (List.assoc_opt 0 proc_names));
      check_string "host lane named after the host" "hostA"
        (Option.get (List.assoc_opt a proc_names)))

let test_instant_events =
  with_registry (fun () ->
      Registry.add_event ~name:"host.quarantine"
        ~attrs:[ ("ph", "i"); ("verdict", "dead") ]
        ~ts_us:10.0 ~dur_us:0.0
        ~src:(Registry.source "hostX") ();
      let doc =
        match Json.parse (Json.to_string (Export.chrome_trace ())) with
        | Ok d -> d
        | Error m -> Alcotest.failf "chrome trace is not valid JSON: %s" m
      in
      let events =
        match Json.mem doc "traceEvents" with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "traceEvents missing"
      in
      let inst =
        List.find_opt
          (fun e ->
            match (Json.mem e "ph", Json.mem e "name") with
            | Some (Json.String "i"), Some (Json.String "host.quarantine") ->
                true
            | _ -> false)
          events
      in
      match inst with
      | None -> Alcotest.fail "instant event missing from the trace"
      | Some e ->
          check_bool "instants carry no dur" true (Json.mem e "dur" = None);
          (match Json.mem e "s" with
          | Some (Json.String "p") -> ()
          | _ -> Alcotest.fail "instant scope must be process");
          (match Json.mem e "args" with
          | Some args ->
              check_bool "ph marker stripped from args" true
                (Json.mem args "ph" = None);
              check_bool "real attrs survive" true
                (Json.mem args "verdict" <> None)
          | None -> Alcotest.fail "instant lost its args"))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let test_flight_ring =
  with_registry (fun () ->
      let restore = Registry.default_flight_capacity in
      Fun.protect
        ~finally:(fun () -> Registry.set_flight_capacity restore)
        (fun () ->
          Registry.set_flight_capacity 4;
          for i = 1 to 7 do
            Registry.flight_note ~kind:"test" ~name:(Printf.sprintf "n%d" i)
              ~detail:""
          done;
          check "total pushed" 7 (Registry.flight_count ());
          let names =
            List.map (fun e -> e.Registry.fl_name) (Registry.flight_entries ())
          in
          Alcotest.(check (list string))
            "ring keeps the most recent, oldest first"
            [ "n4"; "n5"; "n6"; "n7" ] names;
          let ts = List.map (fun e -> e.Registry.fl_ts) (Registry.flight_entries ()) in
          check_bool "timestamps non-decreasing" true
            (List.sort compare ts = ts)))

let test_flight_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  Registry.flight_note ~kind:"test" ~name:"off" ~detail:"";
  check "disabled recorder stays empty" 0 (Registry.flight_count ())

let test_flight_span_autonote =
  with_registry (fun () ->
      Span.with_ "work.unit" (fun () -> ());
      let spans =
        List.filter
          (fun e -> e.Registry.fl_kind = "span")
          (Registry.flight_entries ())
      in
      match spans with
      | [ e ] -> check_string "span close auto-noted" "work.unit" e.Registry.fl_name
      | l -> Alcotest.failf "expected 1 span note, got %d" (List.length l))

let test_flight_dump_and_write =
  with_registry (fun () ->
      Counter.add (Counter.make "test.flight.counter") 3;
      Registry.flight_note ~kind:"verdict" ~name:"job0" ~detail:"crashed";
      let doc =
        Dmc_obs.Flight.dump ~reason:"crashed: SIGKILL"
          ~attrs:[ ("job", "0") ] ()
      in
      (match Json.mem doc "kind" with
      | Some (Json.String "dmc-postmortem") -> ()
      | _ -> Alcotest.fail "dump kind tag");
      (match Json.mem doc "reason" with
      | Some (Json.String "crashed: SIGKILL") -> ()
      | _ -> Alcotest.fail "dump reason");
      (match Json.mem doc "flight" with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "dump flight ring empty");
      (match Json.mem doc "counters" with
      | Some (Json.Obj cs) ->
          check_bool "non-zero counters dumped" true
            (List.mem_assoc "test.flight.counter" cs)
      | _ -> Alcotest.fail "dump counters");
      let dir = Filename.temp_file "dmc-flight" "" in
      Sys.remove dir;
      match
        Dmc_obs.Flight.write ~dir ~slug:"job0-attempt1"
          ~reason:"crashed: SIGKILL" ~attrs:[] ()
      with
      | Error m -> Alcotest.failf "flight write failed: %s" m
      | Ok path ->
          check_bool "file lands in dir" true
            (Filename.dirname path = dir && Sys.file_exists path);
          (match Dmc_util.Checkpoint.load path with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "postmortem is not valid JSON: %s" m);
          Sys.remove path;
          Unix.rmdir dir)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let test_prometheus_text =
  with_registry (fun () ->
      Counter.add (Counter.make "serve.cache.hit") 3;
      List.iter
        (Dmc_obs.Histogram.observe
           (Dmc_obs.Histogram.make "serve.lat.request_us"))
        [ 10; 100; 1000 ];
      Dmc_obs.Gauge.set (Dmc_obs.Gauge.make "serve.queue.depth") 2.0;
      let text = Export.prometheus () in
      let lines =
        String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
      in
      check_bool "non-empty exposition" true (lines <> []);
      List.iter
        (fun line ->
          if String.length line > 0 && line.[0] <> '#' then begin
            (* every sample line is exactly "name[{labels}] value" *)
            match String.index_opt line ' ' with
            | None -> Alcotest.failf "sample line without a value: %S" line
            | Some i ->
                let value = String.sub line (i + 1) (String.length line - i - 1) in
                check_bool
                  (Printf.sprintf "value parses as float: %S" line)
                  true
                  (float_of_string_opt value <> None);
                String.iter
                  (fun c ->
                    let name_char =
                      (c >= 'a' && c <= 'z')
                      || (c >= 'A' && c <= 'Z')
                      || (c >= '0' && c <= '9')
                      || c = '_' || c = ':' || c = '{' || c = '}'
                      || c = '"' || c = '=' || c = '.' || c = ','
                    in
                    if not name_char then
                      Alcotest.failf "bad metric name byte %C in %S" c line)
                  (String.sub line 0 i)
          end)
        lines;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle -> check_bool needle true (contains text needle))
        [
          "# TYPE dmc_serve_cache_hit counter";
          "dmc_serve_cache_hit 3";
          "# TYPE dmc_serve_lat_request_us summary";
          "quantile=\"0.5\"";
          "dmc_serve_lat_request_us_count 3";
          "# TYPE dmc_serve_queue_depth gauge";
          "dmc_serve_queue_depth 2";
        ])

(* ------------------------------------------------------------------ *)
(* Snapshot / merge round-trip (the fork boundary without the fork)    *)

let test_snapshot_merge =
  with_registry (fun () ->
      let c = Counter.make "test.merge" in
      Counter.add c 5;
      Span.with_ "child.work" (fun () -> ());
      let snap = Registry.snapshot_json () in
      (* a fresh registry standing in for the supervisor *)
      Registry.reset ();
      Counter.add (Counter.make "test.merge") 2;
      Registry.merge_snapshot ~tid:3 snap;
      check "counters add on merge" 7 (Counter.value (Counter.make "test.merge"));
      let merged = ref None in
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "child.work" then merged := Some e);
      match !merged with
      | None -> Alcotest.fail "merged span not found"
      | Some e -> check "merged span carries worker tid" 3 e.Registry.ev_tid)

let test_merge_shift =
  with_registry (fun () ->
      (* Command workers live in their own epoch; the supervisor
         rebases their spans by the dispatch instant.  The shift must
         move timestamps and nothing else. *)
      Span.with_ "child.work" (fun () -> ());
      let ts0 = ref nan in
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "child.work" then ts0 := e.Registry.ev_ts);
      let snap = Registry.snapshot_json () in
      Registry.reset ();
      Registry.merge_snapshot ~tid:2 ~shift_us:5000.0 snap;
      let merged = ref None in
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "child.work" then merged := Some e);
      match !merged with
      | None -> Alcotest.fail "shifted span not found"
      | Some e ->
          Alcotest.(check (float 1e-6))
            "timestamp rebased by the shift" (!ts0 +. 5000.0)
            e.Registry.ev_ts;
          check "unshifted merge defaults to src 0... tid still set" 2
            e.Registry.ev_tid)

let test_merge_malformed =
  with_registry (fun () ->
      (* Garbage snapshots must be ignored, never raise: observability
         cannot turn a good worker result into a protocol error. *)
      Registry.merge_snapshot ~tid:1 Json.Null;
      Registry.merge_snapshot ~tid:1 (Json.Obj [ ("counters", Json.Int 3) ]);
      Registry.merge_snapshot ~tid:1
        (Json.Obj [ ("events", Json.List [ Json.String "junk" ]) ]);
      check "malformed merges leave no events" 0 (Registry.event_count ()))

(* ------------------------------------------------------------------ *)
(* Ipc frame-length cap (satellite of this PR)                         *)

let test_ipc_oversized_cap () =
  (* The header declares ~4 GiB; decode must refuse before allocating
     a payload buffer, and the message must name the limit. *)
  match Ipc.decode_frame "ffffffff" with
  | Ok _ -> Alcotest.fail "decoded a 4 GiB frame header"
  | Error (Ipc.Oversized n) ->
      check_bool "declared length preserved" true (n > Ipc.max_frame_bytes);
      let msg = Ipc.read_error_to_string (Ipc.Oversized n) in
      let limit = string_of_int Ipc.max_frame_bytes in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check_bool "error names the limit" true (contains msg limit)
  | Error e -> Alcotest.failf "expected Oversized, got %s" (Ipc.read_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

module Histogram = Dmc_obs.Histogram
module Gauge = Dmc_obs.Gauge

let test_hist_buckets () =
  check "zero maps to bucket 0" 0 (Registry.bucket_of_value 0);
  check "negative clamps to bucket 0" 0 (Registry.bucket_of_value (-5));
  check "one" 1 (Registry.bucket_of_value 1);
  check "two" 2 (Registry.bucket_of_value 2);
  check "three" 2 (Registry.bucket_of_value 3);
  check "four" 3 (Registry.bucket_of_value 4);
  (* the bucket bounds and the bucket function must agree *)
  for b = 1 to 40 do
    check "lo lands in its bucket" b (Registry.bucket_of_value (Registry.bucket_lo b));
    check "hi lands in its bucket" b (Registry.bucket_of_value (Registry.bucket_hi b))
  done;
  check "max_int clamps to last bucket" (Registry.hist_buckets - 1)
    (Registry.bucket_of_value max_int)

let test_hist_observe =
  with_registry (fun () ->
      let h = Histogram.make "test.hist" in
      List.iter (Histogram.observe h) [ 1; 2; 3; 4; 100 ];
      check "count" 5 (Histogram.count h);
      check "sum" 110 (Histogram.sum h);
      Alcotest.(check (float 1e-9)) "mean" 22.0 (Histogram.mean h);
      let p50 = Histogram.percentile h 50.0
      and p90 = Histogram.percentile h 90.0
      and p99 = Histogram.percentile h 99.0 in
      check_bool "quantiles are monotone" true (p50 <= p90 && p90 <= p99);
      check_bool "quantiles within bucket-midpoint range" true
        (p50 >= 1.0 && p99 <= 95.5);
      (* find-or-create, like counters *)
      Histogram.observe (Histogram.make "test.hist") 7;
      check "registration is idempotent" 6 (Histogram.count h))

let test_hist_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  let h = Histogram.make "test.hist.off" in
  Histogram.observe h 5;
  check "disabled histogram stays empty" 0 (Histogram.count h)

let test_hist_empty_percentile =
  with_registry (fun () ->
      let h = Histogram.make "test.hist.empty" in
      match Histogram.percentile h 50.0 with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "percentile of empty histogram returned %g" v)

(* ------------------------------------------------------------------ *)
(* Gauges and the GC sampler                                           *)

let test_gauge_set_merge =
  with_registry (fun () ->
      let g = Gauge.make "test.gauge" in
      check_bool "unset initially" false (Gauge.is_set g);
      Gauge.set g 3.0;
      Alcotest.(check (float 0.)) "set/get" 3.0 (Gauge.get g);
      Registry.merge_gauge g 1.0;
      Alcotest.(check (float 0.)) "merge keeps max" 3.0 (Gauge.get g);
      Registry.merge_gauge g 9.0;
      Alcotest.(check (float 0.)) "merge raises to max" 9.0 (Gauge.get g))

let test_gc_gauges_sampled =
  with_registry (fun () ->
      Span.with_ "tick" (fun () -> ignore (Sys.opaque_identity (Array.make 256 0)));
      (* close_span sampled the GC: the heap gauge must be set and positive *)
      let g = Registry.gauge "gc.heap_words" in
      check_bool "gc.heap_words set by span close" true (Registry.(g.g_set));
      check_bool "heap is non-empty" true (Gauge.get g > 0.0))

(* ------------------------------------------------------------------ *)
(* Span-drop path                                                      *)

let test_span_drop =
  with_registry (fun () ->
      let restore = Registry.max_events () in
      Fun.protect
        ~finally:(fun () -> Registry.set_max_events restore)
        (fun () ->
          Registry.set_max_events 3;
          for i = 1 to 5 do
            Span.with_ (Printf.sprintf "drop.%d" i) (fun () -> ())
          done;
          check "buffer holds the cap" 3 (Registry.event_count ());
          check "overflow counted" 2 (Registry.dropped ());
          let profile = Export.profile () in
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          check_bool "profile reports the drop" true
            (contains profile "2 spans dropped: buffer full");
          (* the dropped count crosses the fork boundary like counters *)
          let snap = Registry.snapshot_json () in
          Registry.reset ();
          Registry.merge_snapshot ~tid:1 snap;
          check "dropped merges" 2 (Registry.dropped ())))

(* ------------------------------------------------------------------ *)
(* Exporter output always re-parses (property)                          *)

let test_export_json_escaping =
  (* Metric names come from code today, but the exporter must not
     depend on that: any byte string — quotes, backslashes, newlines,
     control bytes, non-ASCII — has to round-trip through the concrete
     JSON syntax. *)
  QCheck.Test.make ~count:200 ~name:"export JSON re-parses for any metric name"
    QCheck.(string_gen_of_size (Gen.int_range 1 20) Gen.char)
    (fun name ->
      Registry.reset ();
      Registry.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Registry.set_enabled false)
        (fun () ->
          Counter.incr (Counter.make name);
          Dmc_obs.Histogram.observe (Dmc_obs.Histogram.make name) 3;
          Gauge.set (Gauge.make name) 1.5;
          Span.with_ name (fun () -> ());
          match Json.parse (Json.to_string (Export.to_json ())) with
          | Ok _ -> true
          | Error m ->
              QCheck.Test.fail_reportf "name %S broke the exporter: %s" name m))

let test_export_json_nasty_names () =
  List.iter
    (fun name ->
      Registry.reset ();
      Registry.set_enabled true;
      Counter.incr (Counter.make name);
      Span.with_ name (fun () -> ());
      Registry.set_enabled false;
      let rendered = Json.to_string (Export.to_json ()) in
      match Json.parse rendered with
      | Ok doc ->
          let counters =
            match Json.mem doc "counters" with
            | Some (Json.Obj cs) -> cs
            | _ -> Alcotest.fail "counters object missing"
          in
          check_bool
            (Printf.sprintf "name %S survives the round-trip" name)
            true
            (List.mem_assoc name counters)
      | Error m -> Alcotest.failf "name %S broke the exporter: %s" name m)
    [ {|quo"te|}; {|back\slash|}; "line\nbreak"; "tab\there"; "caf\xc3\xa9" ]

(* ------------------------------------------------------------------ *)
(* Merge commutativity (randomized)                                    *)

let test_merge_commutative () =
  (* Counters, histograms, gauges and the dropped count merge with
     commutative operations (+, bucket-wise +, max), so any arrival
     order of worker snapshots must leave the same registry state.
     Spans are exempt: they append, and their order is wall-clock. *)
  let rng = Random.State.make [| 0x0b5; 42 |] in
  let random_snapshot () =
    Registry.reset ();
    Registry.set_enabled true;
    for _ = 1 to 1 + Random.State.int rng 4 do
      let c = Counter.make (Printf.sprintf "c.%d" (Random.State.int rng 3)) in
      Counter.add c (Random.State.int rng 100)
    done;
    for _ = 1 to 1 + Random.State.int rng 4 do
      let h = Histogram.make (Printf.sprintf "h.%d" (Random.State.int rng 2)) in
      Histogram.observe h (Random.State.int rng 10_000)
    done;
    Gauge.set (Gauge.make "g.0") (float_of_int (Random.State.int rng 1000));
    let snap = Registry.snapshot_json () in
    Registry.set_enabled false;
    snap
  in
  let snaps = List.init 6 (fun _ -> random_snapshot ()) in
  let merged_state order =
    Registry.reset ();
    Registry.set_enabled true;
    List.iteri (fun tid s -> Registry.merge_snapshot ~tid s) order;
    let doc = Export.to_json () in
    Registry.set_enabled false;
    (* compare only the commutative sections *)
    let section k = match Json.mem doc k with Some j -> Json.to_string j | None -> "" in
    section "counters" ^ section "hists" ^ section "gauges"
  in
  let forward = merged_state snaps and reverse = merged_state (List.rev snaps) in
  check_string "merge order is irrelevant" forward reverse;
  check_bool "merged state is non-trivial" true (String.length forward > 10)

(* ------------------------------------------------------------------ *)
(* Profile/to_json expose histogram stats and gauges                   *)

let test_export_metrics_sections =
  with_registry (fun () ->
      let h = Histogram.make "test.export.hist" in
      List.iter (Histogram.observe h) [ 1; 2; 4; 8; 16 ];
      Gauge.set (Gauge.make "test.export.gauge") 12.0;
      let profile = Export.profile () in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun section -> check_bool section true (contains profile section))
        [
          "== profile: counters ==";
          "== profile: histograms ==";
          "== profile: gauges ==";
          "== profile: spans ==";
          "test.export.hist";
          "test.export.gauge";
        ];
      let doc = Export.to_json () in
      (match Json.mem doc "hists" with
      | Some (Json.Obj hs) -> (
          match List.assoc_opt "test.export.hist" hs with
          | Some stats ->
              check "n exported" 5
                (Option.get (Option.bind (Json.mem stats "n") Json.as_int));
              List.iter
                (fun k ->
                  check_bool (k ^ " exported") true (Json.mem stats k <> None))
                [ "mean"; "p50"; "p90"; "p99" ]
          | None -> Alcotest.fail "histogram missing from to_json")
      | _ -> Alcotest.fail "hists section missing from to_json");
      match Json.mem doc "gauges" with
      | Some (Json.Obj gs) ->
          check_bool "gauge exported" true (List.mem_assoc "test.export.gauge" gs)
      | _ -> Alcotest.fail "gauges section missing from to_json")

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled is free" `Quick test_counter_disabled;
          Alcotest.test_case "enabled accumulates" `Quick test_counter_enabled;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and depth" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "disabled is transparent" `Quick test_span_disabled;
        ] );
      ( "determinism",
        [ Alcotest.test_case "reset makes runs identical" `Quick test_reset_determinism ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "valid JSON, consistent ts/dur" `Quick test_chrome_trace;
          Alcotest.test_case "failed rung appears" `Quick test_chrome_trace_failed_rung;
        ] );
      ( "merge",
        [
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_merge;
          Alcotest.test_case "epoch shift rebases spans" `Quick test_merge_shift;
          Alcotest.test_case "malformed snapshot ignored" `Quick test_merge_malformed;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "per-host lanes in the chrome trace" `Quick
            test_source_lanes;
          Alcotest.test_case "instant events render as ph:i" `Quick
            test_instant_events;
        ] );
      ( "flight",
        [
          Alcotest.test_case "bounded ring keeps the tail" `Quick test_flight_ring;
          Alcotest.test_case "disabled is free" `Quick test_flight_disabled;
          Alcotest.test_case "span close auto-notes" `Quick
            test_flight_span_autonote;
          Alcotest.test_case "postmortem dump and write" `Quick
            test_flight_dump_and_write;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "text exposition parses" `Quick test_prometheus_text;
        ] );
      ( "ipc",
        [ Alcotest.test_case "length cap precedes allocation" `Quick test_ipc_oversized_cap ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_buckets;
          Alcotest.test_case "observe/count/mean/quantiles" `Quick test_hist_observe;
          Alcotest.test_case "disabled is free" `Quick test_hist_disabled;
          Alcotest.test_case "empty percentile raises" `Quick test_hist_empty_percentile;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "set and max-merge" `Quick test_gauge_set_merge;
          Alcotest.test_case "gc sampler fills gc.*" `Quick test_gc_gauges_sampled;
        ] );
      ( "span-drop",
        [ Alcotest.test_case "cap, notice and merge" `Quick test_span_drop ] );
      ( "export",
        [
          QCheck_alcotest.to_alcotest test_export_json_escaping;
          Alcotest.test_case "nasty names round-trip" `Quick test_export_json_nasty_names;
          Alcotest.test_case "histogram stats and gauges exported" `Quick
            test_export_metrics_sections;
        ] );
      ( "merge-commutativity",
        [ Alcotest.test_case "snapshot order is irrelevant" `Quick test_merge_commutative ] );
    ]
