(* Tests for the observability layer: counter/enabled semantics, span
   nesting, the Chrome trace export (valid JSON, consistent ts/dur),
   registry reset determinism — two identical instrumented runs must
   produce byte-identical counter profiles — and the snapshot/merge
   round-trip the pool supervisor uses across the fork boundary. *)

module Json = Dmc_util.Json
module Ipc = Dmc_util.Ipc
module Registry = Dmc_obs.Registry
module Counter = Dmc_obs.Counter
module Span = Dmc_obs.Span
module Export = Dmc_obs.Export

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test starts from a clean, enabled registry and leaves it
   disabled, so suites cannot observe each other's state. *)
let with_registry f () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Registry.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counter_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  let c = Counter.make "test.disabled" in
  Counter.incr c;
  Counter.add c 41;
  check "disabled counter stays zero" 0 (Counter.value c)

let test_counter_enabled =
  with_registry (fun () ->
      let c = Counter.make "test.enabled" in
      Counter.incr c;
      Counter.add c 41;
      check "enabled counter accumulates" 42 (Counter.value c);
      (* find-or-create: same name gives the same cell *)
      let c' = Counter.make "test.enabled" in
      Counter.incr c';
      check "registration is idempotent" 43 (Counter.value c))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_nesting =
  with_registry (fun () ->
      let got =
        Span.with_ "outer" (fun () ->
            Span.with_ "inner" (fun () -> 7) + 10)
      in
      check "span body result" 17 got;
      let events = ref [] in
      Registry.iter_events (fun e -> events := e :: !events);
      match List.rev !events with
      | [ inner; outer ] ->
          (* completion order: inner closes first *)
          check_string "inner first" "inner" inner.Registry.ev_name;
          check_string "outer second" "outer" outer.Registry.ev_name;
          check "inner depth" 1 inner.Registry.ev_depth;
          check "outer depth" 0 outer.Registry.ev_depth;
          check_bool "durations non-negative" true
            (inner.Registry.ev_dur >= 0.0 && outer.Registry.ev_dur >= 0.0);
          check_bool "outer contains inner" true
            (outer.Registry.ev_ts <= inner.Registry.ev_ts
            && outer.Registry.ev_ts +. outer.Registry.ev_dur
               >= inner.Registry.ev_ts +. inner.Registry.ev_dur)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let test_span_exception =
  with_registry (fun () ->
      (match Span.with_ "raises" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      check "span recorded despite exception" 1 (Registry.event_count ());
      (* the stack unwound: a following span opens at depth 0 *)
      Span.with_ "after" (fun () -> ());
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "after" then
            check "stack unwound on raise" 0 e.Registry.ev_depth))

let test_span_disabled () =
  Registry.reset ();
  Registry.set_enabled false;
  let got = Span.with_ "off" (fun () -> 5) in
  check "disabled span is transparent" 5 got;
  check "no span recorded when disabled" 0 (Registry.event_count ())

(* ------------------------------------------------------------------ *)
(* An instrumented workload: real engines, deterministic node counts.  *)

let run_workload () =
  let g = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
  ignore (Dmc_core.Optimal.rbw_io g ~s:4);
  ignore (Dmc_core.Wavefront.wmax_exact g);
  let jac =
    Dmc_gen.Stencil.jacobi_1d ~n:8 ~steps:3
  in
  ignore (Dmc_core.Strategy.io jac.Dmc_gen.Stencil.graph ~s:6)

let test_reset_determinism () =
  (* Two reset-run cycles must yield byte-identical counter output:
     the acceptance bar behind the --jobs 1 vs --jobs 2 profile diff. *)
  Registry.reset ();
  Registry.set_enabled true;
  run_workload ();
  let first = Export.counters_table () in
  Registry.reset ();
  run_workload ();
  let second = Export.counters_table () in
  Registry.set_enabled false;
  check_string "identical runs, identical counters" first second;
  check_bool "workload actually counted something" true
    (String.length first > 0
    && Registry.fold_counters (fun acc c -> acc + c.Registry.c_value) 0 > 0)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let test_chrome_trace =
  with_registry (fun () ->
      run_workload ();
      (* Round-trip through the concrete syntax: the file a user hands
         to chrome://tracing must parse back as JSON. *)
      let doc =
        match Json.parse (Json.to_string (Export.chrome_trace ())) with
        | Ok d -> d
        | Error m -> Alcotest.failf "chrome trace is not valid JSON: %s" m
      in
      let events =
        match Json.mem doc "traceEvents" with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "traceEvents missing or not a list"
      in
      let slices =
        List.filter
          (fun e ->
            match Json.mem e "ph" with
            | Some (Json.String "X") -> true
            | _ -> false)
          events
      in
      check_bool "has complete slices" true (List.length slices > 0);
      let num j =
        match j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.fail "ts/dur missing or not numeric"
      in
      List.iter
        (fun e ->
          let ts = num (Json.mem e "ts") and dur = num (Json.mem e "dur") in
          check_bool "ts non-negative" true (ts >= 0.0);
          check_bool "dur non-negative" true (dur >= 0.0);
          (match Json.mem e "name" with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.fail "slice without a name");
          match Json.mem e "pid" with
          | Some (Json.Int 0) -> ()
          | _ -> Alcotest.fail "slice with unexpected pid")
        slices)

let test_chrome_trace_failed_rung =
  with_registry (fun () ->
      (* A rung that exhausts its node budget must still close its span
         and stamp the failure outcome — failed work has to show up in
         the trace, not vanish. *)
      let g = Dmc_gen.Shapes.diamond ~rows:4 ~cols:4 in
      let row = Dmc_core.Bounds.governed_row ~node_budget:50 g ~s:4 "partition-h" in
      ignore row;
      let found = ref false in
      Registry.iter_events (fun e ->
          if List.mem_assoc "outcome" e.Registry.ev_attrs then begin
            found := true;
            check_bool "span closed with a duration" true
              (e.Registry.ev_dur >= 0.0)
          end);
      check_bool "at least one rung span with an outcome" true !found)

(* ------------------------------------------------------------------ *)
(* Snapshot / merge round-trip (the fork boundary without the fork)    *)

let test_snapshot_merge =
  with_registry (fun () ->
      let c = Counter.make "test.merge" in
      Counter.add c 5;
      Span.with_ "child.work" (fun () -> ());
      let snap = Registry.snapshot_json () in
      (* a fresh registry standing in for the supervisor *)
      Registry.reset ();
      Counter.add (Counter.make "test.merge") 2;
      Registry.merge_snapshot ~tid:3 snap;
      check "counters add on merge" 7 (Counter.value (Counter.make "test.merge"));
      let merged = ref None in
      Registry.iter_events (fun e ->
          if e.Registry.ev_name = "child.work" then merged := Some e);
      match !merged with
      | None -> Alcotest.fail "merged span not found"
      | Some e -> check "merged span carries worker tid" 3 e.Registry.ev_tid)

let test_merge_malformed =
  with_registry (fun () ->
      (* Garbage snapshots must be ignored, never raise: observability
         cannot turn a good worker result into a protocol error. *)
      Registry.merge_snapshot ~tid:1 Json.Null;
      Registry.merge_snapshot ~tid:1 (Json.Obj [ ("counters", Json.Int 3) ]);
      Registry.merge_snapshot ~tid:1
        (Json.Obj [ ("events", Json.List [ Json.String "junk" ]) ]);
      check "malformed merges leave no events" 0 (Registry.event_count ()))

(* ------------------------------------------------------------------ *)
(* Ipc frame-length cap (satellite of this PR)                         *)

let test_ipc_oversized_cap () =
  (* The header declares ~4 GiB; decode must refuse before allocating
     a payload buffer, and the message must name the limit. *)
  match Ipc.decode_frame "ffffffff" with
  | Ok _ -> Alcotest.fail "decoded a 4 GiB frame header"
  | Error (Ipc.Oversized n) ->
      check_bool "declared length preserved" true (n > Ipc.max_frame_bytes);
      let msg = Ipc.read_error_to_string (Ipc.Oversized n) in
      let limit = string_of_int Ipc.max_frame_bytes in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check_bool "error names the limit" true (contains msg limit)
  | Error e -> Alcotest.failf "expected Oversized, got %s" (Ipc.read_error_to_string e)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled is free" `Quick test_counter_disabled;
          Alcotest.test_case "enabled accumulates" `Quick test_counter_enabled;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and depth" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "disabled is transparent" `Quick test_span_disabled;
        ] );
      ( "determinism",
        [ Alcotest.test_case "reset makes runs identical" `Quick test_reset_determinism ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "valid JSON, consistent ts/dur" `Quick test_chrome_trace;
          Alcotest.test_case "failed rung appears" `Quick test_chrome_trace_failed_rung;
        ] );
      ( "merge",
        [
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_merge;
          Alcotest.test_case "malformed snapshot ignored" `Quick test_merge_malformed;
        ] );
      ( "ipc",
        [ Alcotest.test_case "length cap precedes allocation" `Quick test_ipc_oversized_cap ] );
    ]
