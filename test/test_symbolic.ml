(* Tests for the symbolic-formula library: evaluation, simplification,
   printing/parsing round trips, and agreement between the symbolic
   formulas and the Analytic closed forms. *)

module Expr = Dmc_symbolic.Expr
module Formulas = Dmc_symbolic.Formulas
module Analytic = Dmc_core.Analytic
module Rng = Dmc_util.Rng

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let test_eval_basics () =
  let open Expr in
  let e = (var "x" + int 2) * var "y" in
  check_float "eval" 15.0 (eval ~env:[ ("x", 3.0); ("y", 3.0) ] e);
  check_float "pow" 8.0 (eval ~env:[] (int 2 ** int 3));
  check_float "sqrt" 4.0 (eval ~env:[] (Sqrt (int 16)));
  check_float "log2" 5.0 (eval ~env:[] (Log2 (int 32)));
  check_float "min" 2.0 (eval ~env:[] (Min (int 2, int 7)));
  check_float "max" 7.0 (eval ~env:[] (Max (int 2, int 7)));
  check_float "neg" (-3.0) (eval ~env:[] (Neg (int 3)))

let test_eval_errors () =
  Alcotest.check_raises "unbound" (Expr.Unbound_variable "q") (fun () ->
      ignore (Expr.eval ~env:[] (Expr.var "q")));
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (Expr.eval ~env:[] Expr.(int 1 / int 0)))

let test_vars_subst () =
  let open Expr in
  let e = (var "n" ** var "d") / var "P" in
  Alcotest.(check (list string)) "vars" [ "P"; "d"; "n" ] (vars e);
  let e' = subst ~env:[ ("d", int 3) ] e in
  Alcotest.(check (list string)) "vars after subst" [ "P"; "n" ] (vars e');
  check_float "substituted value" 2.0
    (eval ~env:[ ("n", 2.0); ("P", 4.0) ] e')

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)

let test_simplify_identities () =
  let open Expr in
  check_str "x*1" "x" (to_string (simplify (var "x" * int 1)));
  check_str "x+0" "x" (to_string (simplify (var "x" + int 0)));
  check_str "0*x" "0" (to_string (simplify (int 0 * var "x")));
  check_str "x^1" "x" (to_string (simplify (var "x" ** int 1)));
  check_str "x^0" "1" (to_string (simplify (var "x" ** int 0)));
  check_str "fold" "7" (to_string (simplify (int 3 + (int 2 * int 2))));
  check_str "neg neg" "x" (to_string (simplify (Neg (Neg (var "x")))));
  check_str "0-x" "-x" (to_string (simplify (int 0 - var "x")))

let gen_expr rng =
  (* random expression over x, y with positive-leaning constants *)
  let open Expr in
  let rec go depth =
    if Stdlib.( = ) depth 0 then
      match Rng.int rng 3 with
      | 0 -> var "x"
      | 1 -> var "y"
      | _ -> int (Stdlib.( + ) 1 (Rng.int rng 5))
    else begin
      let a = go (Stdlib.( - ) depth 1) and b = go (Stdlib.( - ) depth 1) in
      match Rng.int rng 6 with
      | 0 -> a + b
      | 1 -> a - b
      | 2 -> a * b
      | 3 -> a / b
      | 4 -> Max (a, b)
      | _ -> Min (a, b)
    end
  in
  go (Stdlib.( + ) 2 (Rng.int rng 3))

(* the full grammar, unary nodes included — what the closed forms from
   Symbolic_bounds actually exercise *)
let gen_expr_full rng =
  let open Expr in
  let rec go depth =
    if Stdlib.( = ) depth 0 then
      match Rng.int rng 3 with
      | 0 -> var "x"
      | 1 -> var "y"
      | _ -> int (Stdlib.( + ) 1 (Rng.int rng 5))
    else begin
      let a = go (Stdlib.( - ) depth 1) in
      match Rng.int rng 11 with
      | 0 -> a + go (Stdlib.( - ) depth 1)
      | 1 -> a - go (Stdlib.( - ) depth 1)
      | 2 -> a * go (Stdlib.( - ) depth 1)
      | 3 -> a / go (Stdlib.( - ) depth 1)
      | 4 -> Max (a, go (Stdlib.( - ) depth 1))
      | 5 -> Min (a, go (Stdlib.( - ) depth 1))
      | 6 -> Neg a
      | 7 -> Sqrt a
      | 8 -> Log2 a
      | 9 -> Floor a
      | _ -> Pow (a, int (Stdlib.( + ) 1 (Rng.int rng 3)))
    end
  in
  go (Stdlib.( + ) 2 (Rng.int rng 3))

let probe_envs =
  [
    [ ("x", 2.5); ("y", 4.0) ];
    [ ("x", 1.0); ("y", 1.0) ];
    [ ("x", -3.5); ("y", 0.25) ];
    [ ("x", 0.0); ("y", -1.0) ];
    [ ("x", 1024.0); ("y", 3.0) ];
  ]

(* NaN-aware comparison: both NaN, equal infinities, or close *)
let agree v v' =
  (Float.is_nan v && Float.is_nan v')
  || v = v'
  || Float.abs (v -. v') <= 1e-9 *. Float.max 1.0 (Float.abs v)

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves values (all envs)" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = gen_expr_full rng in
      let e' = Expr.simplify e in
      List.for_all
        (fun env ->
          match Expr.eval ~env e with
          | v -> (
              match Expr.eval ~env e' with
              | v' -> agree v v'
              | exception Division_by_zero -> false)
          | exception Division_by_zero -> true)
        probe_envs)

let prop_simplify_no_new_div_zero =
  QCheck.Test.make ~name:"simplify introduces no Division_by_zero" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = gen_expr_full rng in
      let e' = Expr.simplify e in
      List.for_all
        (fun env ->
          match Expr.eval ~env e with
          | (_ : float) -> (
              (* the original evaluates: the simplified form must too *)
              match Expr.eval ~env e' with
              | (_ : float) -> true
              | exception Division_by_zero -> false)
          | exception Division_by_zero -> true)
        probe_envs)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse (to_string e) evaluates like e" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = gen_expr rng in
      match Expr.parse (Expr.to_string e) with
      | Error _ -> false
      | Ok e' -> (
          let env = [ ("x", 1.5); ("y", 3.0) ] in
          match Expr.eval ~env e with
          | v -> Float.abs (v -. Expr.eval ~env e') <= 1e-9 *. Float.max 1.0 (Float.abs v)
          | exception Division_by_zero -> true))

(* ------------------------------------------------------------------ *)
(* Parser details                                                      *)

let test_parse_precedence () =
  let get s = match Expr.parse s with Ok e -> e | Error m -> Alcotest.fail m in
  check_float "mul before add" 7.0 (Expr.eval ~env:[] (get "1 + 2 * 3"));
  check_float "parens" 9.0 (Expr.eval ~env:[] (get "(1 + 2) * 3"));
  check_float "pow right assoc" 512.0 (Expr.eval ~env:[] (get "2^3^2"));
  check_float "unary minus" (-6.0) (Expr.eval ~env:[] (get "-2 * 3"));
  check_float "functions" 3.0 (Expr.eval ~env:[] (get "log2(min(8, 32))"));
  check_float "scientific" 1500.0 (Expr.eval ~env:[] (get "1.5e3"))

let test_parse_errors () =
  let bad s = match Expr.parse s with Error _ -> () | Ok _ -> Alcotest.fail s in
  bad "1 +";
  bad "(1";
  bad "sqrt(1, 2)";
  bad "min(1)";
  bad "1 2";
  bad "@"

(* ------------------------------------------------------------------ *)
(* Formulas agree with Analytic                                        *)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = Expr.simplify (gen_expr_full rng) in
      Expr.simplify e = e)

let test_formulas_match_analytic () =
  let ev f env = Expr.eval ~env f in
  check_float "matmul" (Analytic.matmul_lb ~n:12 ~s:64)
    (ev Formulas.matmul_lb [ ("n", 12.0); ("S", 64.0) ]);
  check_float "fft" (Analytic.fft_lb ~n:64 ~s:16)
    (ev Formulas.fft_lb [ ("n", 64.0); ("S", 16.0) ]);
  check_float "jacobi"
    (Analytic.jacobi_lb ~d:3 ~n:100 ~steps:7 ~s:512 ~p:16)
    (ev Formulas.jacobi_lb
       [ ("n", 100.0); ("d", 3.0); ("T", 7.0); ("S", 512.0); ("P", 16.0) ]);
  check_float "jacobi threshold"
    (Analytic.jacobi_balance_threshold ~d:2 ~s:1024)
    (ev Formulas.jacobi_threshold [ ("d", 2.0); ("S", 1024.0) ]);
  check_float "jacobi max dim"
    (Analytic.jacobi_max_dim ~s:4194304 ~balance:0.052)
    (ev Formulas.jacobi_max_dim [ ("S", 4194304.0); ("beta", 0.052) ]);
  check_float "cg lb"
    (Analytic.cg_vertical_lb ~d:3 ~n:50 ~steps:4 ~p:8)
    (ev Formulas.cg_vertical_lb
       [ ("n", 50.0); ("d", 3.0); ("T", 4.0); ("P", 8.0) ]);
  check_float "cg flops" (Analytic.cg_flops ~d:2 ~n:30 ~steps:5)
    (ev Formulas.cg_flops [ ("n", 30.0); ("d", 2.0); ("T", 5.0) ]);
  check_float "cg per flop" (Analytic.cg_vertical_per_flop ())
    (ev Formulas.cg_vertical_per_flop []);
  check_float "gmres lb"
    (Analytic.gmres_vertical_lb ~d:2 ~n:40 ~m:6 ~p:4)
    (ev Formulas.gmres_vertical_lb
       [ ("n", 40.0); ("d", 2.0); ("m", 6.0); ("P", 4.0) ]);
  check_float "gmres per flop" (Analytic.gmres_vertical_per_flop ~m:16)
    (ev Formulas.gmres_vertical_per_flop [ ("m", 16.0) ]);
  check_float "ghosts" (Analytic.ghost_cells ~d:3 ~block:10)
    (ev Formulas.ghost_cells [ ("B", 10.0); ("d", 3.0) ])

let test_formula_registry () =
  check_bool "has matmul" true (Formulas.find "matmul_lb" <> None);
  check_bool "unknown" true (Formulas.find "nonsense" = None);
  (* every registered formula prints and re-parses *)
  List.iter
    (fun (name, e) ->
      match Expr.parse (Expr.to_string e) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    Formulas.all

(* ------------------------------------------------------------------ *)
(* Symbolic recombination vs. the materialized numeric reference       *)

module Sb = Dmc_core.Symbolic_bounds

(* The exactness contract: at any materializable size, the symbolic
   recombination (one engine run per isomorphism class, counts as
   closed forms) must equal the numeric reference (same partition over
   the materialized graph, same engine on every piece) EXACTLY. *)
let check_agreement ~spec ~s ~tile () =
  match Sb.bound ~tile ~spec ~s () with
  | Error m -> Alcotest.fail (spec ^ ": symbolic failed: " ^ m)
  | Ok b -> (
      match Sb.numeric_reference ~tile ~spec ~s () with
      | Error m -> Alcotest.fail (spec ^ ": numeric failed: " ^ m)
      | Ok reference ->
          Alcotest.(check int)
            (Printf.sprintf "%s s=%d tile=%d" spec s tile)
            reference b.Sb.value;
          (* the closed form reproduces the value at this instance *)
          let at_n =
            Expr.eval ~env:[ ("n", float_of_int b.Sb.size) ] b.Sb.formula
          in
          Alcotest.(check (float 0.5))
            (spec ^ ": formula(n) = value")
            (float_of_int b.Sb.value) at_n;
          (* sanity: counts in the classes cover positive copies *)
          List.iter
            (fun c ->
              if c.Sb.cls_count_now <= 0 then
                Alcotest.fail (spec ^ ": non-positive class count " ^ c.Sb.cls_name))
            b.Sb.classes)

let test_agreement_chain () =
  List.iter
    (fun (spec, s, tile) -> check_agreement ~spec ~s ~tile ())
    [
      ("chain:300", 4, 32);
      ("chain:97", 3, 16);
      ("chain:8", 4, 32);
      (* tile >= n: single whole-graph class *)
      ("chain:20", 2, 64);
    ]

let test_agreement_tree () =
  List.iter
    (fun (spec, s, tile) -> check_agreement ~spec ~s ~tile ())
    [
      ("tree:256", 4, 16);
      ("tree:100", 4, 16);
      ("tree:37", 3, 8);
      ("tree:8", 2, 16);
    ]

let test_agreement_diamond () =
  List.iter
    (fun (spec, s, tile) -> check_agreement ~spec ~s ~tile ())
    [
      ("diamond:24,24", 4, 8);
      ("diamond:20,20", 4, 6);
      ("diamond:7,7", 3, 16);
    ]

let test_agreement_fft () =
  List.iter
    (fun (spec, s, tile) -> check_agreement ~spec ~s ~tile ())
    [ ("fft:6", 4, 2); ("fft:8", 4, 3); ("fft:5", 4, 10); ("fft:1", 2, 1) ]

let test_agreement_jacobi () =
  List.iter
    (fun (spec, s, tile) -> check_agreement ~spec ~s ~tile ())
    [
      ("jacobi1d:60,3", 4, 16);
      ("jacobi1d:45,2", 4, 8);
      ("jacobi2d:12,2", 4, 5);
      ("jacobi3d:6,2", 4, 3);
    ]

let test_symbolic_unsupported () =
  (match Sb.bound ~spec:"matmul:64" ~s:16 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "matmul should be unsupported");
  (match Sb.bound ~spec:"diamond:4,9" ~s:16 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-square diamond should be unsupported");
  check_bool "supports chain" true (Sb.supports "chain");
  check_bool "no matmul" false (Sb.supports "matmul")

(* The headline: a billion-node instance bounds in well under the
   10-second CLI budget, with no materialization. *)
let test_symbolic_billion () =
  let t0 = Unix.gettimeofday () in
  (match Sb.bound ~spec:"jacobi1d:1000000000" ~s:1024 () with
  | Error m -> Alcotest.fail m
  | Ok b ->
      check_bool "positive bound" true (b.Sb.value > 0);
      Alcotest.(check int) "n_vertices" 9_000_000_000 b.Sb.n_vertices;
      check_bool "formula mentions n" true (List.mem "n" (Expr.vars b.Sb.formula)));
  let dt = Unix.gettimeofday () -. t0 in
  check_bool "fast enough (<10s)" true (dt < 10.0)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_symbolic"
    [
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "vars and subst" `Quick test_vars_subst;
        ] );
      ( "simplify",
        [ Alcotest.test_case "identities" `Quick test_simplify_identities ] );
      qsuite "simplify-props"
        [
          prop_simplify_preserves_value;
          prop_simplify_no_new_div_zero;
          prop_simplify_idempotent;
        ];
      ( "parse",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      qsuite "parse-props" [ prop_parse_print_roundtrip ];
      ( "formulas",
        [
          Alcotest.test_case "match analytic" `Quick test_formulas_match_analytic;
          Alcotest.test_case "registry" `Quick test_formula_registry;
        ] );
      ( "symbolic-bounds",
        [
          Alcotest.test_case "chain agreement" `Quick test_agreement_chain;
          Alcotest.test_case "tree agreement" `Quick test_agreement_tree;
          Alcotest.test_case "diamond agreement" `Quick test_agreement_diamond;
          Alcotest.test_case "fft agreement" `Quick test_agreement_fft;
          Alcotest.test_case "jacobi agreement" `Quick test_agreement_jacobi;
          Alcotest.test_case "unsupported families" `Quick test_symbolic_unsupported;
          Alcotest.test_case "billion-node jacobi" `Quick test_symbolic_billion;
        ] );
    ]
