(* Rule-level tests of the three pebble-game engines: hand-written
   valid and invalid move sequences with pinpointed failures. *)

module Cdag = Dmc_cdag.Cdag
module Rb = Dmc_core.Rb_game
module Rbw = Dmc_core.Rbw_game
module Prbw = Dmc_core.Prbw_game
module Hierarchy = Dmc_machine.Hierarchy

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let _ = check_bool

(* in -> mid -> out *)
let chain3 () = Dmc_gen.Shapes.chain 3

let expect_error ~step ~substr result =
  match result with
  | Ok _ -> Alcotest.fail "expected an invalid game"
  | Error (e : Rb.error) ->
      check "failing step" step e.Rb.step;
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      if not (contains substr e.Rb.reason) then
        Alcotest.fail (Printf.sprintf "reason %S lacks %S" e.Rb.reason substr)

let expect_prbw_error ~step ~substr result =
  match result with
  | Ok _ -> Alcotest.fail "expected an invalid game"
  | Error (e : Prbw.error) ->
      check "failing step" step e.Prbw.step;
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      if not (contains substr e.Prbw.reason) then
        Alcotest.fail (Printf.sprintf "reason %S lacks %S" e.Prbw.reason substr)

(* ------------------------------------------------------------------ *)
(* Red-blue (Hong-Kung) game                                           *)

let test_rb_valid_chain () =
  let g = chain3 () in
  match
    Rb.run g ~s:2 [ Rb.Load 0; Rb.Compute 1; Rb.Delete 0; Rb.Compute 2; Rb.Store 2 ]
  with
  | Ok stats ->
      check "io" 2 stats.Rb.io;
      check "loads" 1 stats.Rb.loads;
      check "stores" 1 stats.Rb.stores;
      check "computes" 2 stats.Rb.computes;
      check "peak red" 2 stats.Rb.max_red
  | Error e -> Alcotest.fail e.Rb.reason

let test_rb_load_needs_blue () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"no blue" (Rb.run g ~s:2 [ Rb.Load 1 ])

let test_rb_compute_needs_red_preds () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"predecessor" (Rb.run g ~s:2 [ Rb.Compute 1 ])

let test_rb_compute_rejects_inputs () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"inputs cannot fire" (Rb.run g ~s:2 [ Rb.Compute 0 ])

let test_rb_capacity () =
  let g = Dmc_gen.Shapes.independent 3 in
  let g = Cdag.retag g ~inputs:[ 0; 1; 2 ] ~outputs:[] in
  (* 3 inputs with S=2: the third load must fail *)
  expect_error ~step:2 ~substr:"no free red pebble"
    (Rb.run g ~s:2 [ Rb.Load 0; Rb.Load 1; Rb.Load 2 ])

let test_rb_store_needs_red () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"no red" (Rb.run g ~s:2 [ Rb.Store 0 ])

let test_rb_missing_output () =
  let g = chain3 () in
  (* all fires but no final store *)
  expect_error ~step:5 ~substr:"no blue pebble at the end"
    (Rb.run g ~s:2 [ Rb.Load 0; Rb.Compute 1; Rb.Delete 0; Rb.Compute 2; Rb.Delete 2 ])

let test_rb_recomputation_allowed () =
  let g = chain3 () in
  (* fire vertex 1, delete it, fire it again: legal under Hong-Kung *)
  match
    Rb.run g ~s:2
      [ Rb.Load 0; Rb.Compute 1; Rb.Delete 1; Rb.Compute 1; Rb.Delete 0;
        Rb.Compute 2; Rb.Store 2 ]
  with
  | Ok stats -> check "computes counts refires" 3 stats.Rb.computes
  | Error e -> Alcotest.fail e.Rb.reason

let test_rb_delete_needs_red () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"no red" (Rb.run g ~s:2 [ Rb.Delete 0 ])

let test_rb_bad_vertex () =
  let g = chain3 () in
  expect_error ~step:0 ~substr:"out of range" (Rb.run g ~s:2 [ Rb.Load 17 ])

(* ------------------------------------------------------------------ *)
(* Red-blue-white game                                                 *)

let test_rbw_forbids_recomputation () =
  let g = chain3 () in
  expect_error ~step:3 ~substr:"recomputation"
    (Rbw.run g ~s:2 [ Rbw.Load 0; Rbw.Compute 1; Rbw.Delete 1; Rbw.Compute 1 ])

let test_rbw_requires_all_white () =
  (* An input that is never loaded fails completion even if outputs are
     blue: every vertex needs a white pebble. *)
  let b = Cdag.Builder.create () in
  let i1 = Cdag.Builder.add_vertex b in
  let i2 = Cdag.Builder.add_vertex b in
  let o = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b i1 o;
  let g = Cdag.Builder.freeze ~inputs:[ i1; i2 ] ~outputs:[ o ] b in
  expect_error ~step:3 ~substr:"no white pebble"
    (Rbw.run g ~s:2 [ Rbw.Load i1; Rbw.Compute o; Rbw.Store o; ]);
  (* loading the stray input fixes it *)
  match
    Rbw.run g ~s:2
      [ Rbw.Load i1; Rbw.Compute o; Rbw.Store o; Rbw.Delete i1; Rbw.Load i2 ]
  with
  | Ok stats -> check "io" 3 stats.Rbw.io
  | Error e -> Alcotest.fail e.Rbw.reason

let test_rbw_untagged_source_fires_freely () =
  (* An untagged source (no input tag) fires with R3 and needs no load;
     untagged sinks need no store. *)
  let g = Cdag.retag (chain3 ()) ~inputs:[] ~outputs:[] in
  match Rbw.run g ~s:2 [ Rbw.Compute 0; Rbw.Compute 1; Rbw.Delete 0; Rbw.Compute 2 ] with
  | Ok stats -> check "zero io" 0 stats.Rbw.io
  | Error e -> Alcotest.fail e.Rbw.reason

let test_rbw_spill_reload () =
  let g = Cdag.retag (chain3 ()) ~inputs:[] ~outputs:[] in
  (* compute 0, spill it, compute it again -> must reload instead *)
  match
    Rbw.run g ~s:1
      [ Rbw.Compute 0; Rbw.Store 0; Rbw.Delete 0; Rbw.Load 0; Rbw.Delete 0 ]
  with
  | Error e ->
      (* vertex 1 never fired: completion must fail, but the
         store/reload moves themselves are legal *)
      check "fails only at completion" 5 e.Rbw.step
  | Ok _ -> Alcotest.fail "incomplete game accepted"

let test_rbw_rejects_bad_graph () =
  let g = Cdag.retag (chain3 ()) ~inputs:[ 1 ] ~outputs:[] in
  Alcotest.check_raises "input with predecessor"
    (Invalid_argument "Rbw_game.run: graph violates the RBW convention") (fun () ->
      ignore (Rbw.run g ~s:2 []))

let test_rbw_io_of () =
  let g = chain3 () in
  let moves = [ Rbw.Load 0; Rbw.Compute 1; Rbw.Delete 0; Rbw.Compute 2; Rbw.Store 2 ] in
  check "io_of" 2 (Rbw.io_of g ~s:2 moves);
  Alcotest.check_raises "io_of invalid"
    (Failure "invalid RBW game at step 0: compute 1: predecessor 0 not red")
    (fun () -> ignore (Rbw.io_of g ~s:2 [ Rbw.Compute 1 ]))

(* ------------------------------------------------------------------ *)
(* Mutation testing of the rule engine: damaging a valid game must be
   detected.                                                           *)

let prop_dropping_a_compute_invalidates =
  QCheck.Test.make ~name:"dropping any compute invalidates the game" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Dmc_util.Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:3 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let moves = Dmc_core.Strategy.schedule g ~s in
      let indices =
        List.mapi (fun i m -> (i, m)) moves
        |> List.filter_map (fun (i, m) ->
               match m with Rbw.Compute _ -> Some i | _ -> None)
      in
      List.for_all
        (fun drop ->
          let mutated = List.filteri (fun i _ -> i <> drop) moves in
          Rbw.validate g ~s mutated <> None)
        indices)

let prop_dropping_a_load_invalidates =
  QCheck.Test.make ~name:"dropping any load invalidates the game" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Dmc_util.Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:3 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let moves = Dmc_core.Strategy.schedule g ~s in
      let indices =
        List.mapi (fun i m -> (i, m)) moves
        |> List.filter_map (fun (i, m) ->
               match m with Rbw.Load _ -> Some i | _ -> None)
      in
      (* a Belady schedule loads a value only when something needs it:
         removing any load breaks a later compute or the white rule *)
      List.for_all
        (fun drop ->
          let mutated = List.filteri (fun i _ -> i <> drop) moves in
          Rbw.validate g ~s mutated <> None)
        indices)

let test_swapping_compute_before_operand_detected () =
  let g = chain3 () in
  (* valid: load 0; compute 1 ... — swapped: compute 1 before load 0 *)
  let swapped = [ Rbw.Compute 1; Rbw.Load 0; Rbw.Compute 2; Rbw.Store 2 ] in
  match Rbw.validate g ~s:3 swapped with
  | Some e -> check "fails at the premature compute" 0 e.Rbw.step
  | None -> Alcotest.fail "premature compute accepted"

(* ------------------------------------------------------------------ *)
(* Parallel RBW game                                                   *)

let two_node_hier () =
  (* 2 processors, each with 4 registers and its own memory of 64. *)
  Hierarchy.create
    [ { Hierarchy.count = 2; capacity = 4 }; { Hierarchy.count = 2; capacity = 64 } ]

let test_prbw_valid_game () =
  let g = chain3 () in
  let h = two_node_hier () in
  let moves =
    [
      Prbw.Input { unit_id = 0; v = 0 };
      Prbw.Move_up { level = 1; unit_id = 0; v = 0 };
      Prbw.Compute { proc = 0; v = 1 };
      Prbw.Compute { proc = 0; v = 2 };
      Prbw.Move_down { level = 2; unit_id = 0; v = 2 };
      Prbw.Output { unit_id = 0; v = 2 };
    ]
  in
  match Prbw.run h g moves with
  | Ok stats ->
      check "loads" 1 stats.Prbw.loads;
      check "stores" 1 stats.Prbw.stores;
      check "no remote gets" 0 stats.Prbw.remote_gets;
      check "move up level 1" 1 stats.Prbw.move_up.(0);
      check "move down level 2" 1 stats.Prbw.move_down.(1);
      check "boundary 2 traffic" 2 (Prbw.boundary_traffic stats ~level:2);
      check "vertical total" 4 (Prbw.vertical_io_total stats);
      check "computes on proc 0" 2 stats.Prbw.computes_per_proc.(0)
  | Error e -> Alcotest.fail e.Prbw.reason

let test_prbw_remote_get () =
  let g = chain3 () in
  let h = two_node_hier () in
  (* input lands in memory 1, processor 0 computes: needs a remote get *)
  let moves =
    [
      Prbw.Input { unit_id = 1; v = 0 };
      Prbw.Remote_get { src = 1; dst = 0; v = 0 };
      Prbw.Move_up { level = 1; unit_id = 0; v = 0 };
      Prbw.Compute { proc = 0; v = 1 };
      Prbw.Compute { proc = 0; v = 2 };
      Prbw.Move_down { level = 2; unit_id = 0; v = 2 };
      Prbw.Output { unit_id = 0; v = 2 };
    ]
  in
  match Prbw.run h g moves with
  | Ok stats ->
      check "one remote get" 1 stats.Prbw.remote_gets;
      check "received by unit 0" 1 stats.Prbw.remote_gets_per_unit.(0)
  | Error e -> Alcotest.fail e.Prbw.reason

let test_prbw_remote_get_requires_presence () =
  let g = chain3 () in
  let h = two_node_hier () in
  expect_prbw_error ~step:0 ~substr:"not present"
    (Prbw.run h g [ Prbw.Remote_get { src = 1; dst = 0; v = 0 } ])

let test_prbw_compute_needs_local_registers () =
  let g = chain3 () in
  let h = two_node_hier () in
  (* operand in proc 0's registers; proc 1 cannot fire with it *)
  expect_prbw_error ~step:2 ~substr:"registers"
    (Prbw.run h g
       [
         Prbw.Input { unit_id = 0; v = 0 };
         Prbw.Move_up { level = 1; unit_id = 0; v = 0 };
         Prbw.Compute { proc = 1; v = 1 };
       ])

let test_prbw_move_up_needs_parent () =
  let g = chain3 () in
  let h = two_node_hier () in
  expect_prbw_error ~step:0 ~substr:"lacks it"
    (Prbw.run h g [ Prbw.Move_up { level = 1; unit_id = 0; v = 0 } ])

let test_prbw_capacity () =
  let g = Cdag.retag (Dmc_gen.Shapes.independent 6) ~inputs:[ 0; 1; 2; 3; 4; 5 ] ~outputs:[] in
  let h = Hierarchy.create
      [ { Hierarchy.count = 1; capacity = 2 }; { Hierarchy.count = 1; capacity = 4 } ]
  in
  (* the fifth Input overflows the level-2 unit of capacity 4 *)
  let moves = List.init 5 (fun i -> Prbw.Input { unit_id = 0; v = i }) in
  expect_prbw_error ~step:4 ~substr:"full" (Prbw.run h g moves)

let test_prbw_no_recomputation () =
  let g = Cdag.retag (chain3 ()) ~inputs:[] ~outputs:[] in
  let h = two_node_hier () in
  expect_prbw_error ~step:2 ~substr:"recomputation"
    (Prbw.run h g
       [
         Prbw.Compute { proc = 0; v = 0 };
         Prbw.Delete { level = 1; unit_id = 0; v = 0 };
         Prbw.Compute { proc = 0; v = 0 };
       ])

let test_prbw_embed_sequential () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let s1 = 4 in
  let h = Hierarchy.create
      [ { Hierarchy.count = 2; capacity = s1 }; { Hierarchy.count = 1; capacity = 100000 } ]
  in
  let seq = Dmc_core.Strategy.schedule g ~s:s1 in
  let seq_stats =
    match Rbw.run g ~s:s1 seq with Ok s -> s | Error e -> Alcotest.fail e.Rbw.reason
  in
  (* embed on processor 1 of 2 *)
  let par = Prbw.embed_sequential h ~proc:1 seq in
  match Prbw.run h g par with
  | Ok stats ->
      check "loads preserved" seq_stats.Rbw.loads stats.Prbw.loads;
      check "stores preserved" seq_stats.Rbw.stores stats.Prbw.stores;
      check "all computes on proc 1" seq_stats.Rbw.computes stats.Prbw.computes_per_proc.(1);
      check "boundary traffic matches sequential io"
        (seq_stats.Rbw.loads + seq_stats.Rbw.stores)
        (Prbw.boundary_traffic stats ~level:2)
  | Error e -> Alcotest.fail e.Prbw.reason

let prop_embed_any_schedule =
  QCheck.Test.make ~name:"embedded sequential games stay valid" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Dmc_util.Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:3 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let h = Hierarchy.create
          [ { Hierarchy.count = 1; capacity = s };
            { Hierarchy.count = 1; capacity = 100000 } ]
      in
      let seq = Dmc_core.Strategy.schedule g ~s in
      match Prbw.run h g (Prbw.embed_sequential h ~proc:0 seq) with
      | Ok _ -> true
      | Error _ -> false)


(* ------------------------------------------------------------------ *)
(* Multi-processor game (Mp_game)                                      *)

module Mp = Dmc_core.Mp_game
module Pc = Dmc_core.Pc_game
module Strategy = Dmc_core.Strategy

let expect_mp_error ~step ~substr result =
  match result with
  | Ok _ -> Alcotest.fail "expected an invalid game"
  | Error (e : Mp.error) ->
      check "failing step" step e.Mp.step;
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      if not (contains substr e.Mp.reason) then
        Alcotest.fail (Printf.sprintf "reason %S lacks %S" e.Mp.reason substr)

let expect_pc_error ~step ~substr result =
  match result with
  | Ok _ -> Alcotest.fail "expected an invalid game"
  | Error (e : Pc.error) ->
      check "failing step" step e.Pc.step;
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      if not (contains substr e.Pc.reason) then
        Alcotest.fail (Printf.sprintf "reason %S lacks %S" e.Pc.reason substr)

(* A value crossing processors must travel through slow memory:
   proc 0 computes the middle of the chain, proc 1 finishes it. *)
let test_mp_valid_cross_proc () =
  let g = chain3 () in
  match
    Mp.run g ~p:2 ~s:2
      [
        Mp.Load { proc = 0; v = 0 };
        Mp.Compute { proc = 0; v = 1 };
        Mp.Store { proc = 0; v = 1 };
        Mp.Load { proc = 1; v = 1 };
        Mp.Compute { proc = 1; v = 2 };
        Mp.Store { proc = 1; v = 2 };
      ]
  with
  | Ok stats ->
      check "loads" 2 stats.Mp.loads;
      check "stores" 2 stats.Mp.stores;
      check "io" 4 stats.Mp.io;
      check "proc 0 io" 2 stats.Mp.per_proc_io.(0);
      check "proc 1 io" 2 stats.Mp.per_proc_io.(1);
      check "proc 0 computes" 1 stats.Mp.per_proc_computes.(0);
      check "proc 1 computes" 1 stats.Mp.per_proc_computes.(1);
      check "peak red on one proc" 2 stats.Mp.max_red;
      (* proc 0: load(1) compute(2) store(3); proc 1 waits for the
         store's availability time: load lands at 4, compute 5, store 6 *)
      check "makespan" 6 stats.Mp.makespan
  | Error e -> Alcotest.fail e.Mp.reason

let test_mp_capacity_per_proc () =
  let g = chain3 () in
  expect_mp_error ~step:1 ~substr:"no free red pebble on processor 0"
    (Mp.run g ~p:2 ~s:1
       [ Mp.Load { proc = 0; v = 0 }; Mp.Compute { proc = 0; v = 1 } ])

let test_mp_load_needs_communication () =
  let g = chain3 () in
  (* proc 0 computed vertex 1 but never stored it: proc 1 cannot read
     a value that was never communicated *)
  expect_mp_error ~step:2 ~substr:"never communicated"
    (Mp.run g ~p:2 ~s:2
       [
         Mp.Load { proc = 0; v = 0 };
         Mp.Compute { proc = 0; v = 1 };
         Mp.Load { proc = 1; v = 1 };
       ])

let test_mp_no_recompute () =
  let g = chain3 () in
  expect_mp_error ~step:2 ~substr:"recomputation forbidden"
    (Mp.run g ~p:2 ~s:3
       [
         Mp.Load { proc = 0; v = 0 };
         Mp.Compute { proc = 0; v = 1 };
         Mp.Compute { proc = 0; v = 1 };
       ])

let test_mp_compute_needs_local_preds () =
  let g = chain3 () in
  (* the operand is red on proc 0, not on proc 1 where the compute fires *)
  expect_mp_error ~step:2 ~substr:"not red on processor 1"
    (Mp.run g ~p:2 ~s:2
       [
         Mp.Load { proc = 0; v = 0 };
         Mp.Compute { proc = 0; v = 1 };
         Mp.Compute { proc = 1; v = 2 };
       ])

let test_mp_proc_out_of_range () =
  let g = chain3 () in
  expect_mp_error ~step:0 ~substr:"processor 5 out of range"
    (Mp.run g ~p:2 ~s:2 [ Mp.Load { proc = 5; v = 0 } ])

let test_mp_store_needs_local_red () =
  let g = chain3 () in
  expect_mp_error ~step:1 ~substr:"no red pebble on processor 1"
    (Mp.run g ~p:2 ~s:2
       [ Mp.Load { proc = 0; v = 0 }; Mp.Store { proc = 1; v = 0 } ])

let test_mp_unused_input_must_be_read () =
  (* 0 -> 2 with 1 an input nothing consumes: the white-pebble
     completion convention still demands it be loaded once, keeping
     the io floor a sound lower bound for the game *)
  let b = Cdag.Builder.create () in
  let v0 = Cdag.Builder.add_vertex b in
  let v1 = Cdag.Builder.add_vertex b in
  let v2 = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b v0 v2;
  let g = Cdag.Builder.freeze ~inputs:[ v0; v1 ] ~outputs:[ v2 ] b in
  expect_mp_error ~step:3 ~substr:"never loaded"
    (Mp.run g ~p:2 ~s:2
       [
         Mp.Load { proc = 0; v = v0 };
         Mp.Compute { proc = 0; v = v2 };
         Mp.Store { proc = 0; v = v2 };
       ])

let test_mp_schedule_roundtrip () =
  let g = Dmc_gen.Workload.parse_exn "jacobi1d:16,4" in
  List.iter
    (fun p ->
      let moves = Strategy.mp_schedule g ~p ~s:6 in
      match Mp.run g ~p ~s:6 moves with
      | Ok stats ->
          check
            (Printf.sprintf "mp_io agrees with the replay at p=%d" p)
            stats.Mp.io
            (Strategy.mp_io g ~p ~s:6)
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "p=%d rejected at step %d: %s" p e.Mp.step
               e.Mp.reason))
    [ 1; 2; 3; 4 ]

let test_mp_p1_matches_sequential () =
  let g = Dmc_gen.Workload.parse_exn "fft:4" in
  check "p=1 io equals the sequential schedule's"
    (Dmc_core.Strategy.io g ~s:6)
    (Strategy.mp_io g ~p:1 ~s:6)

(* ------------------------------------------------------------------ *)
(* Partial-computation game (Pc_game)                                  *)

let tree2 () = Dmc_gen.Shapes.reduction_tree 2

let test_pc_valid_accumulate () =
  let g = tree2 () in
  match
    Pc.run g ~s:2
      [
        Pc.Load 0;
        Pc.Begin 2;
        Pc.Absorb { v = 2; pred = 0 };
        Pc.Delete 0;
        Pc.Load 1;
        Pc.Absorb { v = 2; pred = 1 };
        Pc.Finish 2;
        Pc.Store 2;
      ]
  with
  | Ok stats ->
      check "loads" 2 stats.Pc.loads;
      check "stores" 1 stats.Pc.stores;
      check "absorbs" 2 stats.Pc.absorbs;
      check "finishes" 1 stats.Pc.finishes;
      (* the paper's point: in-degree 2 fired with only 2 red pebbles *)
      check "two red pebbles sufficed" 2 stats.Pc.max_red
  | Error e -> Alcotest.fail e.Pc.reason

let test_pc_store_partial_forbidden () =
  let g = tree2 () in
  expect_pc_error ~step:2 ~substr:"partial values cannot be stored"
    (Pc.run g ~s:3 [ Pc.Load 0; Pc.Begin 2; Pc.Store 2 ])

let test_pc_absorb_rules () =
  let g = tree2 () in
  (* not a predecessor: absorbing 1 into an accumulator for... itself *)
  expect_pc_error ~step:3 ~substr:"already absorbed"
    (Pc.run g ~s:3
       [
         Pc.Load 0;
         Pc.Begin 2;
         Pc.Absorb { v = 2; pred = 0 };
         Pc.Absorb { v = 2; pred = 0 };
       ]);
  expect_pc_error ~step:2 ~substr:"operand not red"
    (Pc.run g ~s:3 [ Pc.Load 0; Pc.Begin 2; Pc.Absorb { v = 2; pred = 1 } ])

let test_pc_finish_needs_all_preds () =
  let g = tree2 () in
  expect_pc_error ~step:3 ~substr:"only 1 of 2 predecessors absorbed"
    (Pc.run g ~s:3
       [ Pc.Load 0; Pc.Begin 2; Pc.Absorb { v = 2; pred = 0 }; Pc.Finish 2 ])

let test_pc_no_recompute () =
  let g = tree2 () in
  expect_pc_error ~step:8 ~substr:"recomputation forbidden"
    (Pc.run g ~s:3
       [
         Pc.Load 0;
         Pc.Load 1;
         Pc.Begin 2;
         Pc.Absorb { v = 2; pred = 0 };
         Pc.Absorb { v = 2; pred = 1 };
         Pc.Finish 2;
         Pc.Store 2;
         Pc.Delete 2;
         Pc.Begin 2;
       ])

let test_pc_delete_resets_accumulator () =
  let g = tree2 () in
  (* deleting an in-progress accumulator discards its partial sums;
     beginning again from scratch is legal and must re-absorb *)
  match
    Pc.run g ~s:3
      [
        Pc.Load 0;
        Pc.Load 1;
        Pc.Begin 2;
        Pc.Absorb { v = 2; pred = 0 };
        Pc.Delete 2;
        Pc.Begin 2;
        Pc.Absorb { v = 2; pred = 0 };
        Pc.Absorb { v = 2; pred = 1 };
        Pc.Finish 2;
        Pc.Store 2;
      ]
  with
  | Ok stats -> check "absorbs counted across both attempts" 3 stats.Pc.absorbs
  | Error e -> Alcotest.fail e.Pc.reason

let test_pc_any_indegree_with_two_pebbles () =
  (* a 6-ary accumulation: the classic R3 would need 7 red pebbles *)
  let b = Cdag.Builder.create () in
  let ins = Array.init 6 (fun _ -> Cdag.Builder.add_vertex b) in
  let acc = Cdag.Builder.add_vertex b in
  Array.iter (fun i -> Cdag.Builder.add_edge b i acc) ins;
  let g =
    Cdag.Builder.freeze ~inputs:(Array.to_list ins) ~outputs:[ acc ] b
  in
  let moves =
    Pc.Begin acc
    :: (Array.to_list ins
       |> List.concat_map (fun i ->
              [ Pc.Load i; Pc.Absorb { v = acc; pred = i }; Pc.Delete i ]))
    @ [ Pc.Finish acc; Pc.Store acc ]
  in
  match Pc.run g ~s:2 moves with
  | Ok stats -> check "peak red" 2 stats.Pc.max_red
  | Error e -> Alcotest.fail e.Pc.reason

let test_pc_schedule_roundtrip () =
  let g = Dmc_gen.Workload.parse_exn "tree:16" in
  let moves = Strategy.pc_schedule g ~s:3 in
  match Pc.run g ~s:3 moves with
  | Ok stats ->
      check "pc_io agrees with the replay" stats.Pc.io
        (Strategy.pc_io g ~s:3)
  | Error e ->
      Alcotest.fail
        (Printf.sprintf "rejected at step %d: %s" e.Pc.step e.Pc.reason)

let prop_mp_schedule_valid =
  QCheck.Test.make ~name:"mp schedules replay cleanly at any p" ~count:30
    QCheck.(pair (int_bound 100_000) (int_range 1 4))
    (fun (seed, p) ->
      let rng = Dmc_util.Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:3 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      match Mp.run g ~p ~s (Strategy.mp_schedule g ~p ~s) with
      | Ok _ -> true
      | Error _ -> false)

let prop_pc_schedule_valid =
  QCheck.Test.make ~name:"pc schedules replay cleanly" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Dmc_util.Rng.create seed in
      let g =
        Dmc_gen.Random_dag.daggen rng ~n:40 ~fat:0.5 ~density:0.4 ~ccr:2
      in
      match Pc.run g ~s:4 (Strategy.pc_schedule g ~s:4) with
      | Ok _ -> true
      | Error _ -> false)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_games"
    [
      ( "rb",
        [
          Alcotest.test_case "valid chain game" `Quick test_rb_valid_chain;
          Alcotest.test_case "load needs blue" `Quick test_rb_load_needs_blue;
          Alcotest.test_case "compute needs red preds" `Quick test_rb_compute_needs_red_preds;
          Alcotest.test_case "inputs cannot fire" `Quick test_rb_compute_rejects_inputs;
          Alcotest.test_case "capacity enforced" `Quick test_rb_capacity;
          Alcotest.test_case "store needs red" `Quick test_rb_store_needs_red;
          Alcotest.test_case "missing output detected" `Quick test_rb_missing_output;
          Alcotest.test_case "recomputation allowed" `Quick test_rb_recomputation_allowed;
          Alcotest.test_case "delete needs red" `Quick test_rb_delete_needs_red;
          Alcotest.test_case "bad vertex" `Quick test_rb_bad_vertex;
        ] );
      ( "rbw",
        [
          Alcotest.test_case "forbids recomputation" `Quick test_rbw_forbids_recomputation;
          Alcotest.test_case "requires all white" `Quick test_rbw_requires_all_white;
          Alcotest.test_case "untagged sources fire freely" `Quick
            test_rbw_untagged_source_fires_freely;
          Alcotest.test_case "spill and reload" `Quick test_rbw_spill_reload;
          Alcotest.test_case "rejects bad graphs" `Quick test_rbw_rejects_bad_graph;
          Alcotest.test_case "io_of" `Quick test_rbw_io_of;
        ] );
      ( "prbw",
        [
          Alcotest.test_case "valid game" `Quick test_prbw_valid_game;
          Alcotest.test_case "remote get" `Quick test_prbw_remote_get;
          Alcotest.test_case "remote get requires presence" `Quick
            test_prbw_remote_get_requires_presence;
          Alcotest.test_case "compute needs local registers" `Quick
            test_prbw_compute_needs_local_registers;
          Alcotest.test_case "move up needs parent" `Quick test_prbw_move_up_needs_parent;
          Alcotest.test_case "capacity enforced" `Quick test_prbw_capacity;
          Alcotest.test_case "no recomputation" `Quick test_prbw_no_recomputation;
          Alcotest.test_case "embed sequential" `Quick test_prbw_embed_sequential;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "swapped compute detected" `Quick
            test_swapping_compute_before_operand_detected;
        ] );
      qsuite "mutation-props"
        [ prop_dropping_a_compute_invalidates; prop_dropping_a_load_invalidates ];
      ( "mp",
        [
          Alcotest.test_case "valid cross-processor game" `Quick
            test_mp_valid_cross_proc;
          Alcotest.test_case "per-processor capacity" `Quick
            test_mp_capacity_per_proc;
          Alcotest.test_case "load needs prior communication" `Quick
            test_mp_load_needs_communication;
          Alcotest.test_case "no recomputation" `Quick test_mp_no_recompute;
          Alcotest.test_case "compute needs local operands" `Quick
            test_mp_compute_needs_local_preds;
          Alcotest.test_case "processor out of range" `Quick
            test_mp_proc_out_of_range;
          Alcotest.test_case "store needs local red" `Quick
            test_mp_store_needs_local_red;
          Alcotest.test_case "unused inputs must be read" `Quick
            test_mp_unused_input_must_be_read;
          Alcotest.test_case "schedule round-trip" `Quick
            test_mp_schedule_roundtrip;
          Alcotest.test_case "p=1 matches sequential" `Quick
            test_mp_p1_matches_sequential;
        ] );
      ( "pc",
        [
          Alcotest.test_case "valid accumulation" `Quick test_pc_valid_accumulate;
          Alcotest.test_case "partial values cannot be stored" `Quick
            test_pc_store_partial_forbidden;
          Alcotest.test_case "absorb rules" `Quick test_pc_absorb_rules;
          Alcotest.test_case "finish needs all predecessors" `Quick
            test_pc_finish_needs_all_preds;
          Alcotest.test_case "no recomputation" `Quick test_pc_no_recompute;
          Alcotest.test_case "delete resets the accumulator" `Quick
            test_pc_delete_resets_accumulator;
          Alcotest.test_case "any in-degree with two pebbles" `Quick
            test_pc_any_indegree_with_two_pebbles;
          Alcotest.test_case "schedule round-trip" `Quick
            test_pc_schedule_roundtrip;
        ] );
      qsuite "prbw-props" [ prop_embed_any_schedule ];
      qsuite "mp-pc-props" [ prop_mp_schedule_valid; prop_pc_schedule_valid ];
    ]
