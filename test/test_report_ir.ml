(* Tests for the report IR: golden byte-comparison of the text
   renderer against the pre-IR output, JSON round-tripping, and the
   Markdown table-cell escaping. *)

module Doc = Dmc_analysis.Doc
module Experiment = Dmc_analysis.Experiment
module Report = Dmc_analysis.Report
module Json = Dmc_util.Json
module Table = Dmc_util.Table

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let experiment name =
  match Report.find name with
  | Some e -> e
  | None -> Alcotest.failf "experiment %s not registered" name

(* The golden fixtures are the verbatim stdout of the print-based
   reports this IR replaced (minus the trailing OVERALL line); the
   text renderer must reproduce them byte for byte. *)
let test_golden name () =
  let doc = Experiment.doc (experiment name) in
  let expected = read_file (Filename.concat "golden" (name ^ ".txt")) in
  Alcotest.(check string) (name ^ " text output") expected (Doc.to_text doc)

let roundtrip doc =
  let json = Doc.to_json doc in
  let text = Json.to_string json in
  match Json.parse text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok json' -> (
      match Doc.of_json json' with
      | Error msg -> Alcotest.failf "of_json failed: %s" msg
      | Ok doc' -> doc')

let test_json_roundtrip name () =
  let doc = Experiment.doc (experiment name) in
  let doc' = roundtrip doc in
  Alcotest.(check string)
    (name ^ " text survives the JSON round-trip")
    (Doc.to_text doc) (Doc.to_text doc');
  Alcotest.(check bool)
    (name ^ " verdict survives the JSON round-trip")
    (Doc.ok doc) (Doc.ok doc')

(* Every block constructor, including curves with their float bounds
   and checks with attached values, through to_json/of_json. *)
let test_json_roundtrip_synthetic () =
  let table =
    let t = Table.create ~headers:[ "name"; "value" ] in
    Table.set_align t [ Table.Left; Table.Right ];
    Table.add_row t [ "alpha"; "1" ];
    Table.add_rule t;
    Table.add_row t [ "beta"; "2" ];
    t
  in
  let doc =
    {
      Doc.name = "synthetic";
      blocks =
        [
          Doc.Section "a section";
          Doc.Text "free text\nwith lines\n";
          Doc.Facts [ [ Doc.fact "k" "v"; Doc.fact "k2" "v2" ]; [ Doc.fact "x" "y" ] ];
          Doc.Table table;
          Doc.Curve
            {
              Doc.curve = "curve";
              shape = "O(n)";
              xlabel = "S";
              points =
                [ { Doc.x = 8; lb = 1.25; ub = 3 }; { Doc.x = 16; lb = 0.1; ub = 1 } ];
            };
          Doc.check ~lb:1.5 ~measured:2.0 ~ub:4.0 "sandwiched" true;
          Doc.check "failing" false;
        ];
    }
  in
  let doc' = roundtrip doc in
  Alcotest.(check string) "text identical" (Doc.to_text doc) (Doc.to_text doc');
  Alcotest.(check bool) "ok carries the failing check" false (Doc.ok doc');
  match List.rev (Doc.checks doc') with
  | { Doc.label = "failing"; ok = false; _ } :: sandwich :: _ ->
      Alcotest.(check (option (float 0.0))) "lb survives" (Some 1.5) sandwich.Doc.lb;
      Alcotest.(check (option (float 0.0)))
        "measured survives" (Some 2.0) sandwich.Doc.measured;
      Alcotest.(check (option (float 0.0))) "ub survives" (Some 4.0) sandwich.Doc.ub
  | _ -> Alcotest.fail "checks lost in round-trip"

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_markdown_escaping () =
  let table =
    let t = Table.create ~headers:[ "cell" ] in
    Table.add_row t [ "a|b" ];
    Table.add_row t [ "back\\slash" ];
    Table.add_row t [ "two\nlines" ];
    t
  in
  let md =
    Doc.to_markdown { Doc.name = "esc"; blocks = [ Doc.Table table ] }
  in
  Alcotest.(check bool) "pipe escaped" true (contains ~sub:"a\\|b" md);
  Alcotest.(check bool) "backslash escaped" true
    (contains ~sub:"back\\\\slash" md);
  Alcotest.(check bool) "newline becomes <br>" true
    (contains ~sub:"two<br>lines" md);
  Alcotest.(check bool) "raw pipe gone from cells" false
    (contains ~sub:"| a|b |" md)

let test_markdown_shape () =
  let doc = Experiment.doc (experiment "table1") in
  let md = Doc.to_markdown doc in
  Alcotest.(check bool) "titled" true
    (contains ~sub:"# Experiment `table1`" md);
  Alcotest.(check bool) "has a section heading" true
    (contains ~sub:"## Table 1: machine specifications" md);
  Alcotest.(check bool) "has a separator row" true (contains ~sub:"| --- |" md)

(* The registry exposes parts with unique names and a working
   part-payload pipeline: doc-from-payloads equals doc-from-run. *)
let test_parts_pipeline name () =
  let e = experiment name in
  let names = Experiment.part_names e in
  Alcotest.(check int) "part names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let payloads = List.map (fun (p : Experiment.part) -> p.run ()) e.parts in
  (* Payloads must survive serialization: the pool and the checkpoint
     both ship them as JSON text. *)
  let payloads =
    List.map
      (fun p ->
        match Json.parse (Json.to_string p) with
        | Ok p -> p
        | Error msg -> Alcotest.failf "payload does not re-parse: %s" msg)
      payloads
  in
  let doc = e.doc_of_parts payloads in
  Alcotest.(check string) "doc from serialized payloads"
    (Doc.to_text (Experiment.doc e))
    (Doc.to_text doc)

let () =
  Alcotest.run "report_ir"
    [
      ( "golden",
        [
          Alcotest.test_case "table1" `Quick (test_golden "table1");
          Alcotest.test_case "sec3" `Quick (test_golden "sec3");
          Alcotest.test_case "jacobi" `Slow (test_golden "jacobi");
        ] );
      ( "json",
        [
          Alcotest.test_case "table1 round-trip" `Quick
            (test_json_roundtrip "table1");
          Alcotest.test_case "sec3 round-trip" `Quick (test_json_roundtrip "sec3");
          Alcotest.test_case "synthetic round-trip" `Quick
            test_json_roundtrip_synthetic;
        ] );
      ( "markdown",
        [
          Alcotest.test_case "cell escaping" `Quick test_markdown_escaping;
          Alcotest.test_case "document shape" `Quick test_markdown_shape;
        ] );
      ( "parts",
        [
          Alcotest.test_case "table1 pipeline" `Quick (test_parts_pipeline "table1");
          Alcotest.test_case "scaling pipeline" `Quick
            (test_parts_pipeline "scaling");
          Alcotest.test_case "summary pipeline" `Quick
            (test_parts_pipeline "summary");
        ] );
    ]
