(* Tests for the resource-governance layer: Budget guards, the
   result-typed engine API, the graceful-degradation ladder, and the
   checkpoint/RNG-state plumbing the resumable drivers build on. *)

module Budget = Dmc_util.Budget
module Rng = Dmc_util.Rng
module Json = Dmc_util.Json
module Checkpoint = Dmc_util.Checkpoint
module Cdag = Dmc_cdag.Cdag
module Bounds = Dmc_core.Bounds
module Optimal = Dmc_core.Optimal
module Wavefront = Dmc_core.Wavefront

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Budget guard mechanics                                              *)

let test_node_budget () =
  let b = Budget.create ~nodes:10 () in
  for _ = 1 to 9 do
    Budget.tick b
  done;
  check "nine ticks spent" 9 (Budget.spent b);
  (match Budget.tick b with
  | () -> Alcotest.fail "10th tick should exhaust the node budget"
  | exception Budget.Exhausted Budget.Budget_exhausted -> ());
  check_bool "check reports exhaustion" true
    (Budget.check b = Some Budget.Budget_exhausted)

let test_deadline () =
  (* negative deadline: already expired, independent of clock granularity *)
  let b = Budget.create ~deadline:(-1.0) () in
  (* The clock is only polled every few hundred ticks, so loop well
     past one period. *)
  match
    for _ = 1 to 10_000 do
      Budget.tick b
    done
  with
  | () -> Alcotest.fail "expired deadline never raised"
  | exception Budget.Exhausted Budget.Timeout -> ()

let test_tick_n_crosses_period () =
  let b = Budget.create ~deadline:(-1.0) () in
  match Budget.tick_n b 100_000 with
  | () -> Alcotest.fail "bulk tick ignored the deadline"
  | exception Budget.Exhausted Budget.Timeout -> ()

let test_cancel () =
  let b = Budget.create ~cancel:(fun () -> true) () in
  match
    for _ = 1 to 10_000 do
      Budget.tick b
    done
  with
  | () -> Alcotest.fail "cancellation hook never honored"
  | exception Budget.Exhausted Budget.Cancelled -> ()

let test_unlimited_counts () =
  let b = Budget.create () in
  for _ = 1 to 1_000 do
    Budget.tick b
  done;
  check "spent" 1_000 (Budget.spent b);
  check_bool "never exhausts" true (Budget.check b = None)

let test_guard_and_internal_error () =
  (match Budget.guard (fun () -> 42) with
  | Ok v -> check "plain value" 42 v
  | Error _ -> Alcotest.fail "guard failed a pure thunk");
  (* an exhausted budget short-circuits before running the thunk *)
  let b = Budget.create ~nodes:0 () in
  (match Budget.guard ~budget:b (fun () -> Alcotest.fail "ran anyway") with
  | Error Budget.Budget_exhausted -> ()
  | _ -> Alcotest.fail "exhausted budget not prechecked");
  match
    Budget.guard (fun () ->
        Budget.internal_error ~where:"Test.engine" "stuck at %d (n=%d)" 7 32)
  with
  | Error (Budget.Internal msg) ->
      check_string "context preserved" "Test.engine: stuck at 7 (n=32)" msg
  | _ -> Alcotest.fail "Internal_error not captured"

let test_failure_strings () =
  check_string "timeout" "timeout" (Budget.failure_to_string Budget.Timeout);
  check_string "budget" "budget-exhausted"
    (Budget.failure_to_string Budget.Budget_exhausted);
  check_string "too-large" "too-large: x"
    (Budget.failure_to_string (Budget.Too_large "x"))

(* ------------------------------------------------------------------ *)
(* Engines honor their budgets                                         *)

(* A graph big enough that every exhaustive engine runs essentially
   forever, but structurally fine (so only the budget can stop it). *)
let big_layered () =
  Dmc_gen.Random_dag.layered (Rng.create 1234) ~layers:8 ~width:6 ~edge_prob:0.5

let within_2x_deadline f =
  let deadline = 0.2 in
  let t0 = Budget.now () in
  let result = f (Budget.create ~deadline ()) in
  let elapsed = Budget.now () -. t0 in
  (* "promptly": within ~2x the deadline, plus scheduling slack *)
  check_bool
    (Printf.sprintf "returned within 2x deadline (took %.2fs)" elapsed)
    true
    (elapsed < (2.0 *. deadline) +. 0.3);
  result

let test_partition_deadline () =
  let g = big_layered () in
  match
    within_2x_deadline (fun budget -> Bounds.Engine.partition_lb ~budget g ~s:3)
  with
  | Error Budget.Timeout -> ()
  | Ok v -> Alcotest.failf "exponential search finished?! (%d)" v
  | Error e -> Alcotest.failf "wrong failure: %s" (Budget.failure_to_string e)

let test_rbw_node_budget () =
  (* The Dijkstra sweep ticks once per expanded state; 50 states is far
     too few for a 16-vertex game, so the budget must fire first. *)
  let g = Dmc_gen.Shapes.diamond ~rows:4 ~cols:4 in
  match
    Bounds.Engine.rbw_io
      ~budget:(Budget.create ~nodes:50 ())
      ~max_states:max_int g ~s:4
  with
  | Error Budget.Budget_exhausted -> ()
  | Ok v -> Alcotest.failf "game solved within 50 states?! (%d)" v
  | Error e -> Alcotest.failf "wrong failure: %s" (Budget.failure_to_string e)

let test_state_budget () =
  let g = big_layered () in
  match Bounds.Engine.partition_lb ~budget:(Budget.create ~nodes:500 ()) g ~s:3 with
  | Error Budget.Budget_exhausted -> ()
  | Ok v -> Alcotest.failf "search finished under 500 nodes?! (%d)" v
  | Error e -> Alcotest.failf "wrong failure: %s" (Budget.failure_to_string e)

let test_engine_too_large () =
  let g = Dmc_gen.Shapes.chain 40 in
  match Bounds.Engine.rbw_io g ~s:3 with
  | Error (Budget.Too_large _) -> ()
  | _ -> Alcotest.fail "40-vertex graph should be Too_large for rbw_io"

let test_engine_matches_raising_api () =
  let g = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
  let s = 4 in
  match Bounds.Engine.rbw_io g ~s with
  | Ok v -> check "engine = raising api" (Optimal.rbw_io g ~s) v
  | Error e -> Alcotest.failf "engine failed: %s" (Budget.failure_to_string e)

let test_anytime_wavefront_sound () =
  let g = Dmc_gen.Shapes.diamond ~rows:4 ~cols:4 in
  let exact = Wavefront.wmax_exact g in
  (* unbudgeted anytime sweep = plain sampling *)
  let sampled = Wavefront.wmax_sampled_anytime (Rng.create 3) g ~samples:64 in
  check_bool "anytime <= exact" true (sampled <= exact);
  (* an exhausted budget yields the trivial 0, never raises *)
  let b = Budget.create ~nodes:0 () in
  check "exhausted anytime is 0" 0
    (Wavefront.wmax_sampled_anytime ~budget:b (Rng.create 3) g ~samples:64)

(* ------------------------------------------------------------------ *)
(* Graceful degradation ladder                                         *)

let small_cases () =
  [
    ("diamond3x3", Dmc_gen.Shapes.diamond ~rows:3 ~cols:3, 4);
    ("tree8", Dmc_gen.Shapes.reduction_tree 8, 3);
    ("fft4", Dmc_gen.Fft.butterfly 2, 4);
    ("jacobi1d", (Dmc_gen.Stencil.jacobi_1d ~n:4 ~steps:2).graph, 4);
  ]

let test_governed_full_agrees () =
  List.iter
    (fun (name, g, s) ->
      let gov = Bounds.analyze_governed g ~s in
      let opt = Optimal.rbw_io g ~s in
      check_bool (name ^ ": lb <= optimal") true (gov.Bounds.gov_best_lb <= opt);
      match gov.Bounds.gov_best_ub with
      | Some ub -> check_bool (name ^ ": optimal <= ub") true (opt <= ub)
      | None -> Alcotest.failf "%s: no upper bound" name)
    (small_cases ())

let test_governed_fallback_sound () =
  (* With an immediately-expiring budget every exact engine degrades,
     yet each lower-bound row still reports a value, and that value
     stays at or below the true optimum. *)
  List.iter
    (fun (name, g, s) ->
      let gov = Bounds.analyze_governed ~timeout:0.000001 g ~s in
      let opt = Optimal.rbw_io g ~s in
      check_bool (name ^ ": degraded lb <= optimal") true
        (gov.Bounds.gov_best_lb <= opt);
      List.iter
        (fun (r : Bounds.row) ->
          match (r.Bounds.kind, r.Bounds.value) with
          | Bounds.Lower, Some v ->
              check_bool
                (Printf.sprintf "%s/%s: fallback value %d <= optimal %d" name
                   r.Bounds.engine v opt)
                true (v <= opt)
          | Bounds.Lower, None ->
              Alcotest.failf "%s/%s: lower-bound row lost its value" name
                r.Bounds.engine
          | _ -> ())
        gov.Bounds.gov_rows)
    (small_cases ())

let test_governed_status_strings () =
  let g = Dmc_gen.Shapes.chain 40 in
  let gov = Bounds.analyze_governed g ~s:3 in
  let row name =
    List.find (fun (r : Bounds.row) -> r.Bounds.engine = name)
      gov.Bounds.gov_rows
  in
  check_string "floor ok" "ok" (Bounds.row_status (row "floor"));
  (* 40 vertices: the optimal game is structurally too large and must
     report a skipped-with-fallback status *)
  let opt = row "optimal" in
  check_bool "optimal degraded" true (opt.Bounds.attempts <> []);
  check_string "optimal status" "skipped(fallback=wavefront)"
    (Bounds.row_status opt)

(* ------------------------------------------------------------------ *)
(* Checkpoint + RNG state plumbing                                     *)

let test_rng_save_restore () =
  let g = Rng.create 42 in
  for _ = 1 to 17 do
    ignore (Rng.next g)
  done;
  let token = Rng.save g in
  let h =
    match Rng.restore token with
    | Some h -> h
    | None -> Alcotest.fail "save token did not restore"
  in
  for i = 1 to 100 do
    check (Printf.sprintf "draw %d agrees" i) (Rng.next g) (Rng.next h)
  done;
  check_bool "garbage token rejected" true (Rng.restore "xyz" = None);
  check_bool "wrong-length token rejected" true (Rng.restore "00" = None)

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "dmc-test-ckpt" ".json" in
  let value =
    Json.Obj
      [
        ("kind", Json.String "test");
        ("next_case", Json.Int 17);
        ("rng", Json.String (Rng.save (Rng.create 5)));
        ("ratio", Json.Float 0.25);
        ("flags", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  Checkpoint.write path value;
  (match Checkpoint.load path with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      check_bool "roundtrip" true (loaded = value);
      check "field access" 17
        (Option.get (Option.bind (Json.mem loaded "next_case") Json.as_int)));
  Sys.remove path;
  match Checkpoint.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a deleted checkpoint"

let test_checkpoint_sweep () =
  let dir = Filename.temp_file "dmc-test-sweep" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "state.json" in
  let make name mtime =
    let full = Filename.concat dir name in
    let oc = open_out full in
    output_string oc "{}";
    close_out oc;
    Option.iter (fun t -> Unix.utimes full t t) mtime;
    full
  in
  let old_age = Unix.gettimeofday () -. 3600. in
  (* Two orphans from a SIGKILLed predecessor, one live temp from a
     concurrent writer, and bystanders that merely look similar. *)
  let orphan1 = make "state.json.abc123.tmp" (Some old_age) in
  let orphan2 = make "state.json.def456.tmp" (Some old_age) in
  let live = make "state.json.ghi789.tmp" None in
  let other_base = make "other.json.abc123.tmp" (Some old_age) in
  let not_tmp = make "state.json.notes" (Some old_age) in
  check "two orphans removed" 2 (Checkpoint.sweep_orphans path);
  check_bool "old orphans gone" true
    ((not (Sys.file_exists orphan1)) && not (Sys.file_exists orphan2));
  check_bool "fresh temp survives" true (Sys.file_exists live);
  check_bool "other base's temp survives" true (Sys.file_exists other_base);
  check_bool "non-temp survives" true (Sys.file_exists not_tmp);
  (* write() sweeps implicitly: re-age the live temp and checkpoint. *)
  Unix.utimes live old_age old_age;
  Checkpoint.write path (Json.Obj [ ("ok", Json.Bool true) ]);
  check_bool "write swept the aged temp" true (not (Sys.file_exists live));
  check_bool "checkpoint landed" true (Sys.file_exists path);
  List.iter Sys.remove [ other_base; not_tmp; path ];
  Unix.rmdir dir

(* The explicit age threshold: a temp younger than [max_age] is a
   concurrent writer's live file and must survive; the same file under
   a tighter threshold is an orphan. *)
let test_checkpoint_sweep_age_threshold () =
  let dir = Filename.temp_file "dmc-test-sweep-age" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "state.json" in
  let temp = Filename.concat dir "state.json.abc123.tmp" in
  let oc = open_out temp in
  output_string oc "{}";
  close_out oc;
  let age = Unix.gettimeofday () -. 120. in
  Unix.utimes temp age age;
  check "2-minute-old temp survives a 300s threshold" 0
    (Checkpoint.sweep_orphans ~max_age:300. path);
  check_bool "still there" true (Sys.file_exists temp);
  check "same temp reaped under a 60s threshold" 1
    (Checkpoint.sweep_orphans ~max_age:60. path);
  check_bool "gone" true (not (Sys.file_exists temp));
  Unix.rmdir dir

let test_json_parse_errors () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" text)
    [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

let () =
  Alcotest.run "dmc_budget"
    [
      ( "guard",
        [
          Alcotest.test_case "node budget" `Quick test_node_budget;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "tick_n crosses period" `Quick test_tick_n_crosses_period;
          Alcotest.test_case "cancellation" `Quick test_cancel;
          Alcotest.test_case "unlimited still counts" `Quick test_unlimited_counts;
          Alcotest.test_case "guard and internal errors" `Quick test_guard_and_internal_error;
          Alcotest.test_case "failure strings" `Quick test_failure_strings;
        ] );
      ( "engines",
        [
          Alcotest.test_case "partition honors deadline" `Quick test_partition_deadline;
          Alcotest.test_case "rbw honors node budget" `Quick test_rbw_node_budget;
          Alcotest.test_case "state budget" `Quick test_state_budget;
          Alcotest.test_case "too large" `Quick test_engine_too_large;
          Alcotest.test_case "matches raising api" `Quick test_engine_matches_raising_api;
          Alcotest.test_case "anytime wavefront sound" `Quick test_anytime_wavefront_sound;
        ] );
      ( "governed",
        [
          Alcotest.test_case "full run agrees" `Quick test_governed_full_agrees;
          Alcotest.test_case "fallback stays sound" `Quick test_governed_fallback_sound;
          Alcotest.test_case "status strings" `Quick test_governed_status_strings;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "rng save/restore" `Quick test_rng_save_restore;
          Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "orphan temp sweep" `Quick test_checkpoint_sweep;
          Alcotest.test_case "orphan sweep age threshold" `Quick
            test_checkpoint_sweep_age_threshold;
          Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        ] );
    ]
