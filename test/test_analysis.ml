(* Tests for the evaluation layer: Table 1, the CG/GMRES/Jacobi
   analyses, the Section-3 sweep, and the validation suites.  These are
   the paper's quantitative claims, checked mechanically. *)

module Balance = Dmc_machine.Balance
module Machines = Dmc_machine.Machines
module Table1 = Dmc_analysis.Table1
module Cg = Dmc_analysis.Cg_analysis
module Gmres = Dmc_analysis.Gmres_analysis
module Jacobi = Dmc_analysis.Jacobi_analysis
module Sec3 = Dmc_analysis.Sec3
module Validate = Dmc_analysis.Validate

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let test_table1_renders () =
  let s = Table1.render () in
  check_bool "bgq row" true (contains "IBM BG/Q" s);
  check_bool "xt5 row" true (contains "Cray XT5" s);
  check_bool "balance value" true (contains "0.0520" s)

let test_cg_verdicts () =
  let rows = Cg.analyze () in
  check "one row per machine" (List.length Machines.table1) (List.length rows);
  List.iter
    (fun (r : Cg.row) ->
      check_float "0.3 words per flop" 0.3 r.Cg.vertical_per_flop;
      check_bool "vertical bound" true (r.Cg.vertical_verdict = Balance.Bandwidth_bound);
      check_bool "horizontal free" true
        (r.Cg.horizontal_verdict = Balance.Not_bandwidth_bound))
    rows

let test_cg_structure_claims () =
  let s = Cg.structure ~dims:[ 3; 3 ] ~iters:2 ~s:6 () in
  check "grid points" 9 s.Cg.grid_points;
  check_bool "a wavefront >= 2n^d" true (s.Cg.a_wavefront >= 18);
  check_bool "g wavefront >= n^d" true (s.Cg.g_wavefront >= 9);
  check_bool "lb below execution" true (s.Cg.decomposed_lb <= s.Cg.belady_ub);
  check_bool "lb is informative" true (s.Cg.decomposed_lb > 0)

let test_gmres_sweep_shape () =
  let points = Gmres.sweep ~ms:[ 1; 100; 1000 ] () in
  (match points with
  | [ p1; p100; p1000 ] ->
      check_float "m=1" (6.0 /. 21.0) p1.Gmres.vertical_per_flop;
      check_bool "monotone decreasing" true
        (p1.Gmres.vertical_per_flop > p100.Gmres.vertical_per_flop
        && p100.Gmres.vertical_per_flop > p1000.Gmres.vertical_per_flop);
      (* m = 1 is bandwidth bound everywhere; m = 1000 nowhere *)
      check_bool "m=1 bound" true
        (List.for_all (fun (_, v) -> v = Balance.Bandwidth_bound) p1.Gmres.verdicts);
      check_bool "m=1000 free" true
        (List.for_all (fun (_, v) -> v = Balance.Indeterminate) p1000.Gmres.verdicts)
  | _ -> Alcotest.fail "expected three points");
  (* crossover matches the closed form: 6/(m+20) = balance *)
  let m_star = Gmres.crossover_m ~balance:0.052 in
  check_float "crossover" ((6.0 /. 0.052) -. 20.0) m_star;
  check_bool "bgq crossover near 95" true (Float.abs (m_star -. 95.4) < 0.1)

let test_gmres_structure_claims () =
  let s = Gmres.structure ~dims:[ 4 ] ~iters:2 ~s:4 () in
  check "grid points" 4 s.Gmres.grid_points;
  check_bool "h wavefront >= 2n^d" true (s.Gmres.h_wavefront >= 8);
  check_bool "norm wavefront >= n^d" true (s.Gmres.norm_wavefront >= 4);
  check_bool "lb below execution" true (s.Gmres.decomposed_lb <= s.Gmres.belady_ub)

let test_jacobi_thresholds () =
  let bgq = Jacobi.bgq_dram_l2 in
  check_bool "paper's 4.83" true (Float.abs (bgq.Jacobi.max_dim -. 4.83) < 0.1);
  check_bool "2d not bound" true (bgq.Jacobi.bound_at 2 <> Balance.Bandwidth_bound);
  let l2l1 = Jacobi.bgq_l2_l1 in
  check_bool "paper's 96" true (Float.abs (l2l1.Jacobi.max_dim -. 96.0) < 1.0);
  check "threshold rows cover machines" (1 + List.length Machines.table1)
    (List.length (Jacobi.thresholds ()))

let test_jacobi_tightness () =
  let t = Jacobi.tightness ~d:1 ~n:48 ~steps:12 ~s:18 () in
  check_bool "lb below tiled" true (t.Jacobi.analytic_lb <= float_of_int t.Jacobi.skewed_ub);
  check_bool "tiled beats natural" true (t.Jacobi.skewed_ub < t.Jacobi.natural_ub);
  check_bool "ratio finite" true (t.Jacobi.ratio > 1.0)

let test_jacobi_horizontal () =
  let h = Jacobi.horizontal ~dims:[ 8; 8 ] ~blocks:[ 2; 2 ] ~steps:2 () in
  check "exact match" h.Jacobi.predicted_ghosts h.Jacobi.measured_ghosts;
  check "value" (32 * 2) h.Jacobi.predicted_ghosts

let test_sec3_separation () =
  let rows = Sec3.sweep ~ns:[ 4; 64 ] ~measure_limit:4 () in
  match rows with
  | [ r4; r64 ] ->
      check_float "composite ub" 17.0 r4.Sec3.composite_upper_rb;
      check_bool "separation grows" true (r64.Sec3.separation > r4.Sec3.separation);
      check_bool "matmul bound exceeds composite at n=64" true
        (r64.Sec3.matmul_step_lb > r64.Sec3.composite_upper_rb);
      (* measured only for small n *)
      check_bool "n=4 measured" true (r4.Sec3.rbw_measured_ub <> None);
      check_bool "n=64 skipped" true (r64.Sec3.rbw_measured_ub = None);
      (match (r4.Sec3.rbw_lb, r4.Sec3.rbw_measured_ub) with
      | Some lb, Some ub -> check_bool "sandwich" true (lb <= ub)
      | _ -> Alcotest.fail "expected measurements at n=4")
  | _ -> Alcotest.fail "expected two rows"

let test_time_model () =
  let p =
    Dmc_analysis.Time_model.predict ~flops_per_core:1.0e9 ~cores:4 ~nodes:2
      ~vertical_bw:1.0e9 ~horizontal_bw:1.0e9 ~work:8.0e9
      ~vertical_words_per_node:2.0e9 ~horizontal_words_per_node:1.0e8
  in
  (* T_comp = 8e9/8e9 = 1s, T_mem = 2s, T_net = 0.1s *)
  Alcotest.(check (float 1e-9)) "t_comp" 1.0 p.Dmc_analysis.Time_model.t_comp;
  Alcotest.(check (float 1e-9)) "t_mem" 2.0 p.Dmc_analysis.Time_model.t_vertical;
  Alcotest.(check (float 1e-9)) "bound" 2.0 p.Dmc_analysis.Time_model.t_bound;
  check_bool "memory dominates" true (p.Dmc_analysis.Time_model.dominant = `Vertical);
  Alcotest.(check (float 1e-9)) "efficiency" 0.5 p.Dmc_analysis.Time_model.efficiency_cap;
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Time_model.predict: non-positive rate") (fun () ->
      ignore
        (Dmc_analysis.Time_model.predict ~flops_per_core:0.0 ~cores:1 ~nodes:1
           ~vertical_bw:1.0 ~horizontal_bw:1.0 ~work:1.0
           ~vertical_words_per_node:1.0 ~horizontal_words_per_node:1.0));
  (* CG on BG/Q: memory-dominated with a sub-50% cap *)
  let cg = Dmc_analysis.Time_model.cg ~machine:Machines.bgq ~flops_per_core:8.0e9 ~n:1000 ~steps:10 in
  check_bool "cg memory bound" true (cg.Dmc_analysis.Time_model.dominant = `Vertical);
  check_bool "cg efficiency capped" true (cg.Dmc_analysis.Time_model.efficiency_cap < 0.5)

let test_curves_sandwich () =
  let c = Dmc_analysis.Curves.jacobi_curve ~n:48 ~steps:12 ~ss:[ 9; 18 ] () in
  (match c.Dmc_analysis.Curves.points with
  | [ p9; p18 ] ->
      check_bool "lb <= ub at 9" true
        (p9.Dmc_analysis.Curves.lb <= float_of_int p9.Dmc_analysis.Curves.ub);
      check_bool "ub decays" true
        (p18.Dmc_analysis.Curves.ub <= p9.Dmc_analysis.Curves.ub)
  | _ -> Alcotest.fail "expected two points");
  let f = Dmc_analysis.Curves.fft_curve ~k:6 ~ss:[ 10; 18 ] () in
  check "two fft points" 2 (List.length f.Dmc_analysis.Curves.points)

let test_fft_analysis_rows () =
  let rows = Dmc_analysis.Fft_analysis.sweep ~configs:[ (6, 3, 18) ] in
  match rows with
  | [ r ] ->
      check "k" 6 r.Dmc_analysis.Fft_analysis.k;
      check_bool "sandwich" true
        (r.Dmc_analysis.Fft_analysis.analytic_lb
        <= float_of_int r.Dmc_analysis.Fft_analysis.blocked_ub);
      check_bool "blocked wins" true
        (r.Dmc_analysis.Fft_analysis.blocked_ub
        < r.Dmc_analysis.Fft_analysis.natural_ub)
  | _ -> Alcotest.fail "expected one row"

let test_multigrid_analysis_rows () =
  let rows = Dmc_analysis.Multigrid_analysis.sweep ~cycle_counts:[ 1; 2 ] () in
  match rows with
  | [ r1; r2 ] ->
      check_bool "work doubles" true
        (r2.Dmc_analysis.Multigrid_analysis.work
        = 2 * r1.Dmc_analysis.Multigrid_analysis.work);
      check_bool "decomposed grows" true
        (r2.Dmc_analysis.Multigrid_analysis.decomposed_lb
        > r1.Dmc_analysis.Multigrid_analysis.decomposed_lb);
      check_bool "sound" true
        (r2.Dmc_analysis.Multigrid_analysis.decomposed_lb
        <= r2.Dmc_analysis.Multigrid_analysis.belady_ub)
  | _ -> Alcotest.fail "expected two rows"

let test_balance_trend () =
  let t = Dmc_util.Table.render (Dmc_analysis.Scaling.balance_trend_table ()) in
  check_bool "has frontier row" true (contains "Frontier" t);
  check_bool "cg always bound" false (contains "not bandwidth-bound" t)

let test_scaling_errors_and_edges () =
  Alcotest.check_raises "bad balance" (Invalid_argument "Scaling.cg_network_bound_at")
    (fun () -> ignore (Dmc_analysis.Scaling.cg_network_bound_at ~balance:0.0 ()));
  (* three tables render *)
  check "three tables" 3 (List.length (Dmc_analysis.Scaling.tables ()));
  (* summary digest renders and contains every algorithm row *)
  let digest = Dmc_util.Table.render (Dmc_analysis.Summary.table ()) in
  check_bool "has CG row" true (contains "CG (any d)" digest);
  check_bool "has jacobi row" true (contains "Jacobi 5D" digest)

let test_validation_suites () =
  let cases = Validate.soundness_suite ~seed:1 ~cases:4 () in
  check_bool "non-empty" true (List.length cases > 10);
  check_bool "all sound" true (Validate.all_sound cases);
  let t1 = Validate.theorem1_suite ~seed:1 () in
  check_bool "theorem1 holds" true
    (List.for_all
       (fun (c : Validate.theorem1_check) ->
         c.Validate.partition_valid && c.Validate.arithmetic_holds)
       t1);
  let sims = Validate.simulator_suite () in
  check_bool "simulator dominates" true
    (List.for_all (fun (c : Validate.sim_check) -> c.Validate.holds) sims)

let test_report_registry () =
  let names = List.map fst Dmc_analysis.Report.names in
  Alcotest.(check (list string)) "registry"
    [ "summary"; "table1"; "sec3"; "cg"; "gmres"; "jacobi"; "scaling"; "fft"; "curves"; "multigrid"; "reductions"; "tradeoff"; "symscale"; "validate"; "sim" ]
    names

let () =
  Alcotest.run "dmc_analysis"
    [
      ( "table1", [ Alcotest.test_case "renders" `Quick test_table1_renders ] );
      ( "cg",
        [
          Alcotest.test_case "verdicts" `Quick test_cg_verdicts;
          Alcotest.test_case "structure claims" `Quick test_cg_structure_claims;
        ] );
      ( "gmres",
        [
          Alcotest.test_case "sweep shape" `Quick test_gmres_sweep_shape;
          Alcotest.test_case "structure claims" `Quick test_gmres_structure_claims;
        ] );
      ( "jacobi",
        [
          Alcotest.test_case "thresholds" `Quick test_jacobi_thresholds;
          Alcotest.test_case "tightness" `Quick test_jacobi_tightness;
          Alcotest.test_case "horizontal" `Quick test_jacobi_horizontal;
        ] );
      ( "sec3", [ Alcotest.test_case "separation" `Quick test_sec3_separation ] );
      ( "time_model", [ Alcotest.test_case "predictions" `Quick test_time_model ] );
      ( "curves", [ Alcotest.test_case "sandwich" `Quick test_curves_sandwich ] );
      ( "fft", [ Alcotest.test_case "rows" `Quick test_fft_analysis_rows ] );
      ( "multigrid", [ Alcotest.test_case "rows" `Quick test_multigrid_analysis_rows ] );
      ( "trend", [ Alcotest.test_case "balance trend" `Quick test_balance_trend ] );
      ( "scaling_edges",
        [ Alcotest.test_case "errors and digest" `Quick test_scaling_errors_and_edges ] );
      ( "validation", [ Alcotest.test_case "suites" `Slow test_validation_suites ] );
      ( "report", [ Alcotest.test_case "registry" `Quick test_report_registry ] );
    ]
