(* Tests for the CDAG substrate: builder, topology, reachability,
   validation, subgraphs, serialization. *)

module Cdag = Dmc_cdag.Cdag
module Topo = Dmc_cdag.Topo
module Reach = Dmc_cdag.Reach
module Validate = Dmc_cdag.Validate
module Subgraph = Dmc_cdag.Subgraph
module Serialize = Dmc_cdag.Serialize
module Dot = Dmc_cdag.Dot
module Bitset = Dmc_util.Bitset
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* a -> b -> d, a -> c -> d *)
let small_diamond () =
  let b = Cdag.Builder.create () in
  let va = Cdag.Builder.add_vertex ~label:"a" b in
  let vb = Cdag.Builder.add_vertex ~label:"b" b in
  let vc = Cdag.Builder.add_vertex ~label:"c" b in
  let vd = Cdag.Builder.add_vertex ~label:"d" b in
  Cdag.Builder.add_edge b va vb;
  Cdag.Builder.add_edge b va vc;
  Cdag.Builder.add_edge b vb vd;
  Cdag.Builder.add_edge b vc vd;
  (Cdag.Builder.freeze b, (va, vb, vc, vd))

(* ------------------------------------------------------------------ *)
(* Builder / structure                                                 *)

let test_builder_basic () =
  let g, (va, vb, vc, vd) = small_diamond () in
  check "vertices" 4 (Cdag.n_vertices g);
  check "edges" 4 (Cdag.n_edges g);
  check "out a" 2 (Cdag.out_degree g va);
  check "in d" 2 (Cdag.in_degree g vd);
  check_bool "edge a->b" true (Cdag.has_edge g va vb);
  check_bool "no edge b->c" false (Cdag.has_edge g vb vc);
  Alcotest.(check (list int)) "succ a" [ vb; vc ] (Cdag.succ_list g va);
  Alcotest.(check (list int)) "pred d" [ vb; vc ] (Cdag.pred_list g vd);
  Alcotest.(check string) "label" "a" (Cdag.label g va);
  (* Hong-Kung default tagging *)
  Alcotest.(check (list int)) "inputs" [ va ] (Cdag.inputs g);
  Alcotest.(check (list int)) "outputs" [ vd ] (Cdag.outputs g);
  check "compute count" 3 (Cdag.n_compute g)

let test_builder_dedup () =
  let b = Cdag.Builder.create () in
  let x = Cdag.Builder.add_vertex b and y = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b x y;
  Cdag.Builder.add_edge b x y;
  Cdag.Builder.add_edge b x y;
  let g = Cdag.Builder.freeze b in
  check "duplicate edges coalesced" 1 (Cdag.n_edges g);
  check "in-degree deduped" 1 (Cdag.in_degree g y)

let test_builder_rejects_cycle () =
  let b = Cdag.Builder.create () in
  let x = Cdag.Builder.add_vertex b and y = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b x y;
  Cdag.Builder.add_edge b y x;
  Alcotest.check_raises "cycle" (Invalid_argument "Cdag: edge relation has a cycle")
    (fun () -> ignore (Cdag.Builder.freeze b))

let test_builder_rejects_self_loop () =
  let b = Cdag.Builder.create () in
  let x = Cdag.Builder.add_vertex b in
  Alcotest.check_raises "self loop" (Invalid_argument "Cdag.Builder.add_edge: self-loop")
    (fun () -> Cdag.Builder.add_edge b x x)

let test_explicit_tagging_and_retag () =
  let b = Cdag.Builder.create () in
  let x = Cdag.Builder.add_vertex b and y = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b x y;
  let g = Cdag.Builder.freeze ~inputs:[] ~outputs:[ x; y ] b in
  check "no inputs" 0 (Cdag.n_inputs g);
  check "two outputs" 2 (Cdag.n_outputs g);
  let g2 = Cdag.retag g ~inputs:[ x ] ~outputs:[] in
  check "retagged inputs" 1 (Cdag.n_inputs g2);
  check "retagged outputs" 0 (Cdag.n_outputs g2);
  check "structure shared" (Cdag.n_edges g) (Cdag.n_edges g2);
  Alcotest.check_raises "retag out of range"
    (Invalid_argument "Cdag.retag: vertex out of range") (fun () ->
      ignore (Cdag.retag g ~inputs:[ 5 ] ~outputs:[]))

let test_sources_sinks () =
  let g, (va, _, _, vd) = small_diamond () in
  Alcotest.(check (list int)) "sources" [ va ] (Cdag.sources g);
  Alcotest.(check (list int)) "sinks" [ vd ] (Cdag.sinks g)

(* ------------------------------------------------------------------ *)
(* Topo                                                                *)

let test_topo_order () =
  let g, _ = small_diamond () in
  let ord = Topo.order g in
  check_bool "is topological" true (Topo.is_order g ord);
  Alcotest.(check (array int)) "deterministic" [| 0; 1; 2; 3 |] ord

let test_topo_rejects_bad_orders () =
  let g, _ = small_diamond () in
  check_bool "reversed" false (Topo.is_order g [| 3; 2; 1; 0 |]);
  check_bool "wrong length" false (Topo.is_order g [| 0; 1; 2 |]);
  check_bool "duplicate" false (Topo.is_order g [| 0; 1; 1; 3 |])

let test_depth_height () =
  let g, (va, vb, vc, vd) = small_diamond () in
  let d = Topo.depth g and h = Topo.height g in
  check "depth a" 0 d.(va);
  check "depth b" 1 d.(vb);
  check "depth d" 2 d.(vd);
  check "height a" 2 h.(va);
  check "height c" 1 h.(vc);
  check "height d" 0 h.(vd);
  check "critical path" 3 (Topo.critical_path g)

let test_layers () =
  let g, (va, vb, vc, vd) = small_diamond () in
  let layers = Topo.layers g in
  check "layer count" 3 (Array.length layers);
  Alcotest.(check (list int)) "layer 0" [ va ] layers.(0);
  Alcotest.(check (list int)) "layer 1" [ vb; vc ] layers.(1);
  Alcotest.(check (list int)) "layer 2" [ vd ] layers.(2)

let prop_topo_on_random =
  QCheck.Test.make ~name:"Kahn order is topological on random DAGs" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:20 ~edge_prob:0.2 in
      Topo.is_order g (Topo.order g))

(* ------------------------------------------------------------------ *)
(* Reach                                                               *)

let test_reach_diamond () =
  let g, (va, vb, vc, vd) = small_diamond () in
  Alcotest.(check (list int)) "desc a" [ vb; vc; vd ]
    (Bitset.elements (Reach.descendants g va));
  Alcotest.(check (list int)) "anc d" [ va; vb; vc ]
    (Bitset.elements (Reach.ancestors g vd));
  Alcotest.(check (list int)) "desc b" [ vd ] (Bitset.elements (Reach.descendants g vb));
  check_bool "a reaches d" true (Reach.reaches g va vd);
  check_bool "b does not reach c" false (Reach.reaches g vb vc);
  check_bool "reflexive" true (Reach.reaches g vb vb)

let test_convexity () =
  let g, (va, vb, vc, vd) = small_diamond () in
  let set l = Bitset.of_list 4 l in
  check_bool "whole graph convex" true (Reach.is_convex g (set [ va; vb; vc; vd ]));
  check_bool "a,b convex" true (Reach.is_convex g (set [ va; vb ]));
  check_bool "a,d not convex" false (Reach.is_convex g (set [ va; vd ]));
  check_bool "empty convex" true (Reach.is_convex g (set []))

let prop_closure_agrees_with_reaches =
  QCheck.Test.make ~name:"transitive closure agrees with reaches" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:12 ~edge_prob:0.25 in
      let closure = Reach.transitive_closure g in
      let ok = ref true in
      for u = 0 to 11 do
        for v = 0 to 11 do
          if Bitset.mem closure.(u) v <> Reach.reaches g u v then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)

let test_validate_conventions () =
  let g, _ = small_diamond () in
  check_bool "hong-kung ok" true (Validate.is_hong_kung g);
  check_bool "rbw ok" true (Validate.is_rbw g);
  let untagged = Cdag.retag g ~inputs:[] ~outputs:[] in
  check_bool "untagged violates HK" false (Validate.is_hong_kung untagged);
  check_bool "untagged fine for RBW" true (Validate.is_rbw untagged);
  let bad = Cdag.retag g ~inputs:[ 3 ] ~outputs:[] in
  check_bool "input with preds violates RBW" false (Validate.is_rbw bad);
  match Validate.rbw bad with
  | [ Validate.Input_has_pred v ] -> check "violating vertex" 3 v
  | _ -> Alcotest.fail "expected one Input_has_pred violation"

(* ------------------------------------------------------------------ *)
(* Subgraph                                                            *)

let test_induced_mapping () =
  let g, (va, vb, _, vd) = small_diamond () in
  let part = Subgraph.induced_list g [ va; vb; vd ] in
  check "induced vertices" 3 (Cdag.n_vertices part.Subgraph.graph);
  check "induced edges" 2 (Cdag.n_edges part.Subgraph.graph);
  Array.iteri
    (fun small big ->
      Alcotest.(check (option int)) "roundtrip" (Some small) (part.Subgraph.of_parent big))
    part.Subgraph.to_parent;
  Alcotest.(check (option int)) "absent vertex" None (part.Subgraph.of_parent 2);
  check "induced inputs" 1 (Cdag.n_inputs part.Subgraph.graph);
  check "induced outputs" 1 (Cdag.n_outputs part.Subgraph.graph)

let test_partition_covers () =
  let g, _ = small_diamond () in
  let parts = Subgraph.partition g [| 0; 0; 1; 1 |] in
  check "two parts" 2 (Array.length parts);
  check "sizes sum" 4
    (Array.fold_left (fun acc p -> acc + Cdag.n_vertices p.Subgraph.graph) 0 parts)

let test_boundaries () =
  let g, (va, vb, vc, vd) = small_diamond () in
  let set = Bitset.of_list 4 [ vb; vc ] in
  Alcotest.(check (list int)) "In" [ va ] (Bitset.elements (Subgraph.boundary_in g set));
  Alcotest.(check (list int)) "Out" [ vb; vc ]
    (Bitset.elements (Subgraph.boundary_out g set));
  let set2 = Bitset.of_list 4 [ vd ] in
  Alcotest.(check (list int)) "tagged output in Out" [ vd ]
    (Bitset.elements (Subgraph.boundary_out g set2))

let test_drop_io () =
  let g, _ = small_diamond () in
  let part, di, d_o = Subgraph.drop_io g in
  check "dI" 1 di;
  check "dO" 1 d_o;
  check "survivors" 2 (Cdag.n_vertices part.Subgraph.graph);
  check "no tags left" 0
    (Cdag.n_inputs part.Subgraph.graph + Cdag.n_outputs part.Subgraph.graph);
  let part_i, di' = Subgraph.drop_inputs g in
  check "dI only" 1 di';
  check "survivors keep outputs" 1 (Cdag.n_outputs part_i.Subgraph.graph);
  check "three survivors" 3 (Cdag.n_vertices part_i.Subgraph.graph)

(* ------------------------------------------------------------------ *)
(* Dot / Serialize                                                     *)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_dot_contains_structure () =
  let g, _ = small_diamond () in
  let dot = Dot.to_string ~name:"test" ~highlight:[ 1 ] g in
  check_bool "has digraph" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  check_bool "edge rendered" true (contains "n0 -> n1" dot);
  check_bool "highlight rendered" true (contains "lightblue" dot);
  check_bool "input shape" true (contains "shape=box" dot)

let test_serialize_roundtrip () =
  let g, _ = small_diamond () in
  let text = Serialize.to_string g in
  match Serialize.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok g2 -> check_bool "equal structure" true (Serialize.equal_structure g g2)

let test_serialize_errors () =
  (match Serialize.of_string "e 0 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing header accepted");
  (match Serialize.of_string "cdag 2\ne 0 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range vertex accepted");
  match Serialize.of_string "cdag 2\nbogus\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad directive accepted"

(* Corrupt-input matrix: every malformed construct must come back as
   [Error] naming the offending line, never as an exception. *)
let test_serialize_corrupt_matrix () =
  let expect_error name text needle =
    match Serialize.of_string text with
    | Ok _ -> Alcotest.failf "%s: accepted %S" name text
    | Error msg ->
        check_bool
          (Printf.sprintf "%s: %S mentions %S" name msg needle)
          true (contains needle msg)
  in
  expect_error "empty" "" "missing cdag header";
  expect_error "comments only" "# nothing here\n\n" "missing cdag header";
  expect_error "edge before header" "e 0 1\ncdag 2\n"
    "line 1: directive before the cdag header";
  expect_error "bare header" "cdag\n" "exactly one vertex count";
  expect_error "header arity" "cdag 2 3\n" "exactly one vertex count";
  expect_error "negative count" "cdag -3\n" "line 1: negative vertex count";
  expect_error "non-integer count" "cdag two\n" "line 1: not an integer: two";
  expect_error "duplicate header" "cdag 2\ncdag 2\n"
    "line 2: duplicate cdag header (first on line 1)";
  expect_error "dangling endpoint" "cdag 2\ne 0 5\n"
    "line 2: vertex 5 out of range (header declares 2 vertices)";
  expect_error "negative endpoint" "cdag 2\ne -1 1\n" "out of range";
  expect_error "edge arity short" "cdag 2\ne 0\n"
    "line 2: edge needs exactly two endpoints";
  expect_error "edge arity long" "cdag 3\ne 0 1 2\n"
    "line 2: edge needs exactly two endpoints";
  expect_error "self-loop" "cdag 2\ne 1 1\n" "line 2: self-loop on vertex 1";
  expect_error "duplicate edge" "cdag 2\ne 0 1\n# gap\ne 0 1\n"
    "line 4: duplicate edge 0 -> 1 (first on line 2)";
  expect_error "cycle" "cdag 3\ne 0 1\ne 1 2\ne 2 0\n" "cycle";
  expect_error "tag out of range" "cdag 2\ni 0 7\n" "line 2: vertex 7 out of range";
  expect_error "duplicate input tag" "cdag 2\ni 0\ni 0\n"
    "line 3: duplicate input tag on vertex 0 (first on line 2)";
  expect_error "duplicate output tag" "cdag 2\no 1 1\n"
    "duplicate output tag on vertex 1";
  expect_error "label without label" "cdag 2\nl 0\n"
    "line 2: label directive without a label";
  expect_error "label out of range" "cdag 2\nl 9 x\n" "line 2: vertex 9 out of range";
  expect_error "duplicate label" "cdag 2\nl 0 a\nl 0 b\n"
    "line 3: duplicate label for vertex 0 (first on line 2)";
  expect_error "garbage directive" "cdag 2\nxyzzy 1\n"
    "line 2: unrecognized directive: xyzzy 1";
  (* the accepted grammar still parses: comments, blanks, labels with
     spaces, forward references *)
  match Serialize.of_string "cdag 3\n\n# ok\ne 0 2\ne 1 2\ni 0 1\no 2\nl 2 a b\n" with
  | Error m -> Alcotest.fail m
  | Ok g ->
      check "vertices" 3 (Cdag.n_vertices g);
      check "edges" 2 (Cdag.n_edges g);
      Alcotest.(check string) "spaced label" "a b" (Cdag.label g 2)

let test_serialize_of_file_errors () =
  (match Serialize.of_file "/nonexistent/dmc-no-such-file.cdag" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read a nonexistent file");
  let path = Filename.temp_file "dmc-test-serialize" ".cdag" in
  let oc = open_out path in
  output_string oc "cdag 2\ne 0 bogus\n";
  close_out oc;
  (match Serialize.of_file path with
  | Error msg -> check_bool "line number survives of_file" true (contains "line 2" msg)
  | Ok _ -> Alcotest.fail "accepted corrupt file");
  Sys.remove path

let test_serialize_labels_roundtrip () =
  let b = Cdag.Builder.create () in
  let x = Cdag.Builder.add_vertex ~label:"alpha beta" b in
  let y = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b x y;
  let g = Cdag.Builder.freeze b in
  match Serialize.of_string (Serialize.to_string g) with
  | Error m -> Alcotest.fail m
  | Ok g2 ->
      Alcotest.(check string) "label with space survives" "alpha beta" (Cdag.label g2 x);
      Alcotest.(check string) "default label" "v1" (Cdag.label g2 y)

let test_dot_escaping () =
  let b = Cdag.Builder.create () in
  let _ = Cdag.Builder.add_vertex ~label:{|say "hi"\now|} b in
  let g = Cdag.Builder.freeze b in
  let dot = Dot.to_string g in
  check_bool "escapes quotes" true (contains {|\"hi\"|} dot)

let prop_serialize_roundtrip_random =
  QCheck.Test.make ~name:"serialize round-trips random CDAGs" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.4 in
      match Serialize.of_string (Serialize.to_string g) with
      | Ok g2 -> Serialize.equal_structure g g2
      | Error _ -> false)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_cdag"
    [
      ( "builder",
        [
          Alcotest.test_case "basic structure" `Quick test_builder_basic;
          Alcotest.test_case "edge dedup" `Quick test_builder_dedup;
          Alcotest.test_case "rejects cycles" `Quick test_builder_rejects_cycle;
          Alcotest.test_case "rejects self loops" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "explicit tagging and retag" `Quick test_explicit_tagging_and_retag;
          Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
        ] );
      ( "topo",
        [
          Alcotest.test_case "order" `Quick test_topo_order;
          Alcotest.test_case "rejects bad orders" `Quick test_topo_rejects_bad_orders;
          Alcotest.test_case "depth and height" `Quick test_depth_height;
          Alcotest.test_case "layers" `Quick test_layers;
        ] );
      qsuite "topo-props" [ prop_topo_on_random ];
      ( "reach",
        [
          Alcotest.test_case "diamond" `Quick test_reach_diamond;
          Alcotest.test_case "convexity" `Quick test_convexity;
        ] );
      qsuite "reach-props" [ prop_closure_agrees_with_reaches ];
      ( "validate", [ Alcotest.test_case "conventions" `Quick test_validate_conventions ] );
      ( "subgraph",
        [
          Alcotest.test_case "induced mapping" `Quick test_induced_mapping;
          Alcotest.test_case "partition covers" `Quick test_partition_covers;
          Alcotest.test_case "boundaries" `Quick test_boundaries;
          Alcotest.test_case "drop io" `Quick test_drop_io;
        ] );
      ( "io",
        [
          Alcotest.test_case "dot structure" `Quick test_dot_contains_structure;
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "serialize errors" `Quick test_serialize_errors;
          Alcotest.test_case "corrupt input matrix" `Quick test_serialize_corrupt_matrix;
          Alcotest.test_case "of_file errors" `Quick test_serialize_of_file_errors;
          Alcotest.test_case "labels roundtrip" `Quick test_serialize_labels_roundtrip;
          Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
        ] );
      qsuite "io-props" [ prop_serialize_roundtrip_random ];
    ]
