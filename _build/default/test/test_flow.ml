(* Tests for Dinic max-flow and the vertex-min-cut reduction. *)

module Maxflow = Dmc_flow.Maxflow
module Vertex_cut = Dmc_flow.Vertex_cut
module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let _ = check_bool

(* ------------------------------------------------------------------ *)
(* Max-flow on hand-built networks                                     *)

let test_single_edge () =
  let net = Maxflow.create 2 in
  let e = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:7 in
  check "flow" 7 (Maxflow.max_flow net ~src:0 ~dst:1);
  check "flow on edge" 7 (Maxflow.flow_on net e)

let test_series_bottleneck () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:10);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:4);
  check "bottleneck" 4 (Maxflow.max_flow net ~src:0 ~dst:2)

let test_parallel_paths () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:3);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:5);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:2);
  check "sum of paths" 5 (Maxflow.max_flow net ~src:0 ~dst:3)

(* The classic CLRS example network (max flow 23). *)
let test_clrs_network () =
  let net = Maxflow.create 6 in
  let edges =
    [ (0, 1, 16); (0, 2, 13); (1, 3, 12); (2, 1, 4); (2, 4, 14); (3, 2, 9);
      (3, 5, 20); (4, 3, 7); (4, 5, 4) ]
  in
  List.iter (fun (src, dst, cap) -> ignore (Maxflow.add_edge net ~src ~dst ~cap)) edges;
  check "CLRS flow" 23 (Maxflow.max_flow net ~src:0 ~dst:5)

(* A network needing a residual (back-edge) augmentation. *)
let test_residual_needed () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:1);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1);
  check "zigzag" 2 (Maxflow.max_flow net ~src:0 ~dst:3)

let test_min_cut_side () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:10);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:4);
  ignore (Maxflow.max_flow net ~src:0 ~dst:2);
  let side = Maxflow.min_cut_source_side net ~src:0 in
  Alcotest.(check (list int)) "source side" [ 0; 1 ] (Bitset.elements side)

let test_maxflow_errors () =
  let net = Maxflow.create 2 in
  Alcotest.check_raises "src=dst" (Invalid_argument "Maxflow.max_flow: src = dst")
    (fun () -> ignore (Maxflow.max_flow net ~src:0 ~dst:0));
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:(-1)));
  Alcotest.check_raises "bad node"
    (Invalid_argument "Maxflow.add_edge: node out of range") (fun () ->
      ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1))

(* Flow = capacity of the cut induced by the residual source side
   (max-flow/min-cut duality), on random networks. *)
let prop_duality =
  QCheck.Test.make ~name:"max-flow equals residual-cut capacity" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 + Rng.int rng 5 in
      let net = Maxflow.create n in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Rng.int rng 100 < 30 then begin
            let cap = 1 + Rng.int rng 9 in
            ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap);
            edges := (u, v, cap) :: !edges
          end
        done
      done;
      let flow = Maxflow.max_flow net ~src:0 ~dst:(n - 1) in
      let side = Maxflow.min_cut_source_side net ~src:0 in
      let cut_capacity =
        List.fold_left
          (fun acc (u, v, cap) ->
            if Bitset.mem side u && not (Bitset.mem side v) then acc + cap else acc)
          0 !edges
      in
      flow = cut_capacity)

(* ------------------------------------------------------------------ *)
(* Vertex cuts on CDAGs                                                *)

(* k disjoint 2-hop paths from a source set to a sink: cut = k. *)
let parallel_paths_graph k =
  let b = Cdag.Builder.create () in
  let srcs = List.init k (fun _ -> Cdag.Builder.add_vertex b) in
  let mids = List.init k (fun _ -> Cdag.Builder.add_vertex b) in
  let dst = Cdag.Builder.add_vertex b in
  List.iter2 (fun s m -> Cdag.Builder.add_edge b s m) srcs mids;
  List.iter (fun m -> Cdag.Builder.add_edge b m dst) mids;
  (Cdag.Builder.freeze b, srcs, mids, dst)

let test_vertex_cut_parallel () =
  let g, srcs, mids, dst = parallel_paths_graph 4 in
  let r =
    Vertex_cut.min_vertex_cut g ~from_set:srcs ~to_set:[ dst ] ~uncuttable:[ dst ] ()
  in
  check "cut size" 4 r.Vertex_cut.size;
  check "cut cardinality" 4 (List.length r.Vertex_cut.cut);
  (* each cut vertex lies on a distinct path *)
  List.iter
    (fun v ->
      if not (List.mem v srcs || List.mem v mids) then
        Alcotest.fail "cut vertex off the paths")
    r.Vertex_cut.cut

let test_vertex_cut_shared_mid () =
  (* Two sources, both through one middle vertex: cut = 1. *)
  let b = Cdag.Builder.create () in
  let s1 = Cdag.Builder.add_vertex b and s2 = Cdag.Builder.add_vertex b in
  let m = Cdag.Builder.add_vertex b in
  let t = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b s1 m;
  Cdag.Builder.add_edge b s2 m;
  Cdag.Builder.add_edge b m t;
  let g = Cdag.Builder.freeze b in
  let r = Vertex_cut.min_vertex_cut g ~from_set:[ s1; s2 ] ~to_set:[ t ] ~uncuttable:[ t ] () in
  check "single shared vertex" 1 r.Vertex_cut.size;
  Alcotest.(check (list int)) "the middle" [ m ] r.Vertex_cut.cut

let test_vertex_cut_uncuttable_forces_detour () =
  (* s -> m -> t with m uncuttable: the cut must take s itself. *)
  let b = Cdag.Builder.create () in
  let s = Cdag.Builder.add_vertex b in
  let m = Cdag.Builder.add_vertex b in
  let t = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b s m;
  Cdag.Builder.add_edge b m t;
  let g = Cdag.Builder.freeze b in
  let r =
    Vertex_cut.min_vertex_cut g ~from_set:[ s ] ~to_set:[ t ] ~uncuttable:[ m; t ] ()
  in
  check "must cut s" 1 r.Vertex_cut.size;
  Alcotest.(check (list int)) "s in cut" [ s ] r.Vertex_cut.cut

let test_vertex_cut_errors () =
  let g, srcs, _, dst = parallel_paths_graph 2 in
  Alcotest.check_raises "empty set"
    (Invalid_argument "Vertex_cut.min_vertex_cut: empty terminal set") (fun () ->
      ignore (Vertex_cut.min_vertex_cut g ~from_set:[] ~to_set:[ dst ] ()));
  Alcotest.check_raises "intersecting sets"
    (Invalid_argument "Vertex_cut.min_vertex_cut: terminal sets intersect")
    (fun () ->
      ignore (Vertex_cut.min_vertex_cut g ~from_set:srcs ~to_set:(dst :: srcs) ()))

let test_path_witness () =
  let g, srcs, mids, dst = parallel_paths_graph 3 in
  let paths =
    Vertex_cut.path_witness g ~from_set:srcs ~to_set:[ dst ] ~uncuttable:[ dst ] ()
  in
  check "three paths" 3 (List.length paths);
  (* each path is src -> mid -> dst's predecessor chain recorded as the
     cuttable vertices it crosses (dst is uncuttable so it appears as
     the terminal split edge too? no: uncuttable vertices still appear) *)
  List.iter
    (fun path ->
      match path with
      | s :: rest ->
          check_bool "starts at a source" true (List.mem s srcs);
          check_bool "passes its own mid" true
            (List.exists (fun v -> List.mem v mids) rest)
      | [] -> Alcotest.fail "empty path")
    paths;
  (* pairwise disjoint outside the uncuttable sink *)
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun v ->
         if v <> dst then begin
           if Hashtbl.mem seen v then Alcotest.fail "shared cuttable vertex";
           Hashtbl.replace seen v ()
         end))
    paths

let test_path_witness_count_matches_cut () =
  let g = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
  let r = Vertex_cut.min_vertex_cut g ~from_set:[ 0 ] ~to_set:[ 8 ] ~uncuttable:[ 8 ] () in
  let paths = Vertex_cut.path_witness g ~from_set:[ 0 ] ~to_set:[ 8 ] ~uncuttable:[ 8 ] () in
  check "witness size = cut size" r.Vertex_cut.size (List.length paths)

let test_disjoint_paths () =
  let g, _, _, _ = parallel_paths_graph 3 in
  ignore g;
  (* diamond: two disjoint paths around *)
  let d = Dmc_gen.Shapes.diamond ~rows:2 ~cols:2 in
  check "diamond 2x2" 2 (Vertex_cut.disjoint_paths d ~src:0 ~dst:3);
  (* chain: one path *)
  let c = Dmc_gen.Shapes.chain 5 in
  check "chain" 1 (Vertex_cut.disjoint_paths c ~src:0 ~dst:4);
  (* the defining property of the butterfly: a unique path between any
     input/output pair *)
  let f = Dmc_gen.Fft.butterfly 3 in
  check "fft unique path" 1
    (Vertex_cut.disjoint_paths f ~src:0 ~dst:(Dmc_gen.Fft.vertex ~k:3 ~rank:3 0));
  (* a 4x4 grid has 2 internally disjoint corner-to-corner paths *)
  let d44 = Dmc_gen.Shapes.diamond ~rows:4 ~cols:4 in
  check "grid corner paths" 2 (Vertex_cut.disjoint_paths d44 ~src:0 ~dst:15)

(* On random DAGs, the vertex cut between sources and sinks never
   exceeds either terminal set size (each is itself a valid cut when
   cuttable). *)
let prop_cut_bounded =
  QCheck.Test.make ~name:"vertex cut bounded by the from-set size" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.5 in
      let srcs = Cdag.sources g and snks = Cdag.sinks g in
      let snk_set = List.filter (fun v -> not (List.mem v srcs)) snks in
      if srcs = [] || snk_set = [] then true
      else begin
        let r =
          Vertex_cut.min_vertex_cut g ~from_set:srcs ~to_set:snk_set
            ~uncuttable:snk_set ()
        in
        r.Vertex_cut.size <= List.length srcs
        && r.Vertex_cut.size = List.length r.Vertex_cut.cut
      end)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_flow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "series bottleneck" `Quick test_series_bottleneck;
          Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
          Alcotest.test_case "CLRS network" `Quick test_clrs_network;
          Alcotest.test_case "residual augmentation" `Quick test_residual_needed;
          Alcotest.test_case "min-cut side" `Quick test_min_cut_side;
          Alcotest.test_case "errors" `Quick test_maxflow_errors;
        ] );
      qsuite "maxflow-props" [ prop_duality ];
      ( "vertex_cut",
        [
          Alcotest.test_case "parallel paths" `Quick test_vertex_cut_parallel;
          Alcotest.test_case "shared middle" `Quick test_vertex_cut_shared_mid;
          Alcotest.test_case "uncuttable detour" `Quick test_vertex_cut_uncuttable_forces_detour;
          Alcotest.test_case "errors" `Quick test_vertex_cut_errors;
          Alcotest.test_case "disjoint paths" `Quick test_disjoint_paths;
          Alcotest.test_case "path witness" `Quick test_path_witness;
          Alcotest.test_case "witness matches cut" `Quick test_path_witness_count_matches_cut;
        ] );
      qsuite "vertex-cut-props" [ prop_cut_bounded ];
    ]
