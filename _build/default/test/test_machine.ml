(* Tests for machine models: hierarchies, Table-1 data, balance
   classification. *)

module Hierarchy = Dmc_machine.Hierarchy
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)

let cluster () = Hierarchy.cluster ~nodes:4 ~cores:8 ~s1:32 ~l2:1024 ~mem:65536

let test_hierarchy_shape () =
  let h = cluster () in
  check "levels" 3 (Hierarchy.n_levels h);
  check "processors" 32 (Hierarchy.processors h);
  check "level-1 count" 32 (Hierarchy.count h ~level:1);
  check "level-2 count" 4 (Hierarchy.count h ~level:2);
  check "level-3 count" 4 (Hierarchy.count h ~level:3);
  check "S1" 32 (Hierarchy.capacity h ~level:1);
  check "S2" 1024 (Hierarchy.capacity h ~level:2);
  check "aggregate L1" (32 * 32) (Hierarchy.aggregate_capacity h ~level:1)

let test_hierarchy_tree () =
  let h = cluster () in
  check "fan-out level 1" 8 (Hierarchy.fan_out h ~level:1);
  check "fan-out level 2" 1 (Hierarchy.fan_out h ~level:2);
  check "parent of proc 9" 1 (Hierarchy.parent_unit h ~level:1 9);
  Alcotest.(check (list int)) "children of cache 1" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Hierarchy.children_units h ~level:2 1);
  check "unit of processor at L2" 2 (Hierarchy.unit_of_processor h ~level:2 17);
  check "unit of processor at L1" 17 (Hierarchy.unit_of_processor h ~level:1 17)

let test_hierarchy_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Hierarchy.create: no levels")
    (fun () -> ignore (Hierarchy.create []));
  Alcotest.check_raises "increasing counts"
    (Invalid_argument "Hierarchy.create: counts must weakly decrease") (fun () ->
      ignore (Hierarchy.create [ { Hierarchy.count = 2; capacity = 4 };
                                 { Hierarchy.count = 4; capacity = 4 } ]));
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Hierarchy.create: count not divisible by parent count")
    (fun () ->
      ignore (Hierarchy.create [ { Hierarchy.count = 9; capacity = 4 };
                                 { Hierarchy.count = 2; capacity = 4 } ]));
  let h = cluster () in
  Alcotest.check_raises "level range" (Invalid_argument "Hierarchy: level out of range")
    (fun () -> ignore (Hierarchy.count h ~level:4));
  Alcotest.check_raises "fan-out outermost"
    (Invalid_argument "Hierarchy.fan_out: outermost level") (fun () ->
      ignore (Hierarchy.fan_out h ~level:3))

let test_pp_tree () =
  let h = cluster () in
  let out = Format.asprintf "%a" Hierarchy.pp_tree h in
  let lines = String.split_on_char '\n' out |> List.filter (( <> ) "") in
  check "one line per level" 3 (List.length lines);
  check_bool "mentions processors" true
    (List.exists
       (fun l ->
         let n = String.length l in
         n >= 10 && String.sub l (n - 10) 10 = "processors")
       lines)

let test_two_level_and_smp () =
  let h = Hierarchy.two_level ~s:16 in
  check "two levels" 2 (Hierarchy.n_levels h);
  check "single processor" 1 (Hierarchy.processors h);
  check "S1 = s" 16 (Hierarchy.capacity h ~level:1);
  let smp = Hierarchy.smp ~cores:4 ~s1:8 ~shared:256 in
  check "smp processors" 4 (Hierarchy.processors smp);
  check "smp shared" 256 (Hierarchy.capacity smp ~level:2)

(* ------------------------------------------------------------------ *)
(* Machines                                                            *)

let test_table1_values () =
  (* The exact values the paper's Table 1 reports. *)
  check "bgq nodes" 2048 Machines.bgq.Machines.nodes;
  check_float "bgq vertical" 0.052 Machines.bgq.Machines.vertical_balance;
  check_float "bgq horizontal" 0.049 Machines.bgq.Machines.horizontal_balance;
  check "xt5 nodes" 9408 Machines.xt5.Machines.nodes;
  check_float "xt5 vertical" 0.0256 Machines.xt5.Machines.vertical_balance;
  check_float "xt5 horizontal" 0.058 Machines.xt5.Machines.horizontal_balance;
  check "table has both" 2 (List.length Machines.table1)

let test_machine_derived () =
  (* 32 MB cache / 8-byte words = 4 MWords — the S2 in the paper's
     Jacobi analysis. *)
  check "bgq cache words" (4 * 1024 * 1024) (Machines.cache_words Machines.bgq);
  check "bgq total cores" (2048 * 16) (Machines.total_cores Machines.bgq);
  let h = Machines.hierarchy Machines.bgq ~s1:32 in
  check "hierarchy processors" (2048 * 16) (Dmc_machine.Hierarchy.processors h);
  check "hierarchy nodes" 2048 (Dmc_machine.Hierarchy.count h ~level:3)

let test_find () =
  (match Machines.find "ibm bg/q" with
  | Some m -> Alcotest.(check string) "case-insensitive" "IBM BG/Q" m.Machines.name
  | None -> Alcotest.fail "bgq not found");
  check_bool "unknown machine" true (Machines.find "cray ymp" = None)

(* ------------------------------------------------------------------ *)
(* Balance                                                             *)

let test_classify () =
  check_bool "bandwidth bound" true
    (Balance.classify ~lb_per_flop:0.3 ~ub_per_flop:0.5 ~balance:0.05
    = Balance.Bandwidth_bound);
  check_bool "not bound" true
    (Balance.classify ~lb_per_flop:0.001 ~ub_per_flop:0.01 ~balance:0.05
    = Balance.Not_bandwidth_bound);
  check_bool "indeterminate" true
    (Balance.classify ~lb_per_flop:0.01 ~ub_per_flop:0.1 ~balance:0.05
    = Balance.Indeterminate);
  (* boundary cases: equality does not trigger either verdict *)
  check_bool "lb equal to balance" true
    (Balance.classify_lower ~lb_per_flop:0.05 ~balance:0.05 = Balance.Indeterminate);
  check_bool "ub equal to balance" true
    (Balance.classify_upper ~ub_per_flop:0.05 ~balance:0.05 = Balance.Indeterminate);
  Alcotest.check_raises "inconsistent bounds"
    (Invalid_argument "Balance.classify: lower bound exceeds upper bound") (fun () ->
      ignore (Balance.classify ~lb_per_flop:0.5 ~ub_per_flop:0.1 ~balance:0.3))

let test_lb_per_flop () =
  (* CG at d=3, n=1000: LB per node 6 n^3 T / Nnodes over 20 n^3 T
     FLOPs = 0.3 *)
  let n3 = 1.0e9 and t = 10.0 in
  let nodes = 2048 in
  let lb_per_unit = 6.0 *. n3 *. t /. float_of_int nodes in
  check_float "cg ratio" 0.3
    (Balance.lb_per_flop ~lb_per_unit ~units:nodes ~work:(20.0 *. n3 *. t));
  Alcotest.check_raises "zero work"
    (Invalid_argument "Balance.lb_per_flop: non-positive work") (fun () ->
      ignore (Balance.lb_per_flop ~lb_per_unit:1.0 ~units:1 ~work:0.0))

let test_verdict_strings () =
  Alcotest.(check string) "bb" "bandwidth-bound"
    (Balance.verdict_to_string Balance.Bandwidth_bound);
  Alcotest.(check string) "nbb" "not bandwidth-bound"
    (Balance.verdict_to_string Balance.Not_bandwidth_bound);
  Alcotest.(check string) "ind" "indeterminate"
    (Balance.verdict_to_string Balance.Indeterminate)

let () =
  Alcotest.run "dmc_machine"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "shape" `Quick test_hierarchy_shape;
          Alcotest.test_case "tree structure" `Quick test_hierarchy_tree;
          Alcotest.test_case "errors" `Quick test_hierarchy_errors;
          Alcotest.test_case "two-level and smp" `Quick test_two_level_and_smp;
          Alcotest.test_case "pp_tree" `Quick test_pp_tree;
        ] );
      ( "machines",
        [
          Alcotest.test_case "table 1 values" `Quick test_table1_values;
          Alcotest.test_case "derived quantities" `Quick test_machine_derived;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "balance",
        [
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "lb per flop" `Quick test_lb_per_flop;
          Alcotest.test_case "verdict strings" `Quick test_verdict_strings;
        ] );
    ]
