(* Tests for the upper-bound schedulers: every emitted game must replay
   cleanly through the corresponding engine, and the I/O accounting
   must match the closed forms where they exist. *)

module Cdag = Dmc_cdag.Cdag
module Strategy = Dmc_core.Strategy
module Rbw = Dmc_core.Rbw_game
module Prbw = Dmc_core.Prbw_game
module Hierarchy = Dmc_machine.Hierarchy
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let replay g ~s moves =
  match Rbw.run g ~s moves with
  | Ok stats -> stats
  | Error e -> Alcotest.fail (Printf.sprintf "step %d: %s" e.Rbw.step e.Rbw.reason)

(* ------------------------------------------------------------------ *)

let test_schedule_chain_minimal () =
  let g = Dmc_gen.Shapes.chain 10 in
  let stats = replay g ~s:2 (Strategy.schedule g ~s:2) in
  (* a chain needs exactly one load and one store at any S >= 2 *)
  check "chain io" 2 stats.Rbw.io

let test_schedule_respects_capacity () =
  let g = Dmc_gen.Linalg.matmul 3 in
  List.iter
    (fun s ->
      let stats = replay g ~s (Strategy.schedule g ~s) in
      check_bool "peak red within S" true (stats.Rbw.max_red <= s))
    [ 3; 4; 6; 10 ]

let test_schedule_io_decreases_with_s () =
  let g = Dmc_gen.Fft.butterfly 4 in
  let io s = Strategy.io g ~s in
  (* more fast memory never hurts this scheduler on the FFT *)
  check_bool "monotone" true (io 4 >= io 8 && io 8 >= io 16 && io 16 >= io 64);
  (* with S as large as the graph, I/O collapses to inputs + outputs *)
  check "cold bound" (Cdag.n_inputs g + Cdag.n_outputs g)
    (io (Cdag.n_vertices g))

let test_schedule_custom_order () =
  let mm = Dmc_gen.Linalg.matmul_indexed 4 in
  let g = mm.Dmc_gen.Linalg.mm_graph in
  let s = 20 in
  let blocked = Strategy.io ~order:(Dmc_gen.Linalg.blocked_matmul_order mm ~block:2) g ~s in
  let natural = Strategy.io g ~s in
  check_bool "blocked order no worse" true (blocked <= natural)

let test_schedule_rejects_bad_orders () =
  let g = Dmc_gen.Shapes.chain 4 in
  Alcotest.check_raises "not topological"
    (Invalid_argument "Strategy: order is not topological") (fun () ->
      ignore (Strategy.schedule ~order:[| 3; 2; 1 |] g ~s:4));
  Alcotest.check_raises "includes an input"
    (Invalid_argument "Strategy: order contains an input or bad vertex") (fun () ->
      ignore (Strategy.schedule ~order:[| 0; 1; 2 |] g ~s:4));
  Alcotest.check_raises "wrong coverage"
    (Invalid_argument "Strategy: order must cover exactly the non-input vertices")
    (fun () -> ignore (Strategy.schedule ~order:[| 1; 2 |] g ~s:4))

let test_schedule_s_too_small () =
  let g = Dmc_gen.Shapes.two_level_fanin ~fanin:5 ~mids:1 in
  (* the middle vertex needs 5 operands + itself: S = 3 cannot work *)
  Alcotest.check_raises "S too small"
    (Failure "Strategy.schedule: S too small for the operand set") (fun () ->
      ignore (Strategy.schedule g ~s:3))

let test_trivial_matches_formula () =
  List.iter
    (fun g ->
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let stats = replay g ~s:(max_indeg + 1) (Strategy.trivial g) in
      check "trivial io formula" (Strategy.trivial_io g) stats.Rbw.io)
    [
      Dmc_gen.Shapes.reduction_tree 8;
      Dmc_gen.Shapes.diamond ~rows:3 ~cols:3;
      Dmc_gen.Fft.butterfly 3;
      Dmc_gen.Linalg.outer_product 3;
    ]

let test_trivial_counts_unused_inputs () =
  let b = Cdag.Builder.create () in
  let i1 = Cdag.Builder.add_vertex b in
  let _i2 = Cdag.Builder.add_vertex b in
  let o = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b i1 o;
  let g = Cdag.Builder.freeze ~inputs:[ i1; _i2 ] ~outputs:[ o ] b in
  (* o: 1 load + 1 store; unused input: 1 load *)
  check "unused input counted" 3 (Strategy.trivial_io g);
  ignore (replay g ~s:2 (Strategy.trivial g))

let prop_schedules_valid_on_random =
  QCheck.Test.make ~name:"Belady and LRU schedules replay cleanly" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 0 1))
    (fun (seed, pol) ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:5 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 + Rng.int rng 4 in
      let policy = if pol = 0 then Strategy.Belady else Strategy.Lru in
      match Rbw.run g ~s (Strategy.schedule ~policy g ~s) with
      | Ok _ -> true
      | Error _ -> false)

(* Belady is optimal for pure reloads but the store side can cost it a
   couple of I/Os on adversarial DAGs, so the honest claims are: never
   much worse per case, and better in aggregate. *)
let test_belady_vs_lru_aggregate () =
  let total_belady = ref 0 and total_lru = ref 0 in
  for seed = 1 to 40 do
    let rng = Rng.create seed in
    let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.5 in
    let max_indeg =
      Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
    in
    let s = max_indeg + 2 in
    let b = Strategy.io ~policy:Strategy.Belady g ~s in
    let l = Strategy.io ~policy:Strategy.Lru g ~s in
    check_bool "never much worse per case" true (b <= l + 2 + (l / 10));
    total_belady := !total_belady + b;
    total_lru := !total_lru + l
  done;
  check_bool "better in aggregate" true (!total_belady <= !total_lru)

(* ------------------------------------------------------------------ *)
(* Shared-cache SMP strategy                                           *)

let test_smp_shared_valid () =
  let st = Dmc_gen.Stencil.jacobi_1d ~n:24 ~steps:6 in
  let g = st.Dmc_gen.Stencil.graph in
  let cores = 4 and s1 = 5 and s2 = 18 in
  let moves = Strategy.smp_shared g ~cores ~s1 ~s2 in
  let hier = Strategy.smp_hierarchy ~cores ~s1 ~s2 in
  match Prbw.run hier g moves with
  | Error e -> Alcotest.fail e.Prbw.reason
  | Ok stats ->
      (* work spreads over the cores *)
      Array.iter
        (fun c -> check_bool "every core fires" true (c > 0))
        stats.Prbw.computes_per_proc;
      (* the shared cache behaves like one sequential fast memory of
         size s2: its memory boundary dominates LB(s2) *)
      check_bool "cache boundary vs LB" true
        (Prbw.boundary_traffic stats ~level:3
        >= Dmc_core.Wavefront.lower_bound g ~s:s2)

let test_smp_shared_small_regs_rejected () =
  let g = Dmc_gen.Shapes.two_level_fanin ~fanin:6 ~mids:1 in
  Alcotest.check_raises "registers too small"
    (Failure "Strategy.smp_shared: register file too small for the operand set")
    (fun () -> ignore (Strategy.smp_shared g ~cores:2 ~s1:4 ~s2:32))

let prop_smp_shared_valid =
  QCheck.Test.make ~name:"smp games replay cleanly" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let cores = 1 + Rng.int rng 4 in
      let s1 = max_indeg + 1 and s2 = max_indeg + 3 + Rng.int rng 8 in
      let moves = Strategy.smp_shared g ~cores ~s1 ~s2 in
      match Prbw.run (Strategy.smp_hierarchy ~cores ~s1 ~s2) g moves with
      | Ok _ -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* SPMD strategy                                                       *)

let spmd_hier procs s1 =
  Hierarchy.create
    [ { Hierarchy.count = procs; capacity = s1 };
      { Hierarchy.count = procs; capacity = 1_000_000 } ]

let test_spmd_valid_and_ghosts () =
  let n = 8 and steps = 2 in
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims:[ n; n ] ~steps () in
  let g = st.Dmc_gen.Stencil.graph in
  let npts = n * n in
  let owner_pt = Dmc_sim.Partitioner.block_owner ~dims:[ n; n ] ~blocks:[ 2; 2 ] in
  let owner v = owner_pt (Dmc_gen.Grid.coord st.Dmc_gen.Stencil.grid (v mod npts)) in
  let hier = spmd_hier 4 16 in
  let moves = Strategy.spmd g hier ~owner () in
  match Prbw.run hier g moves with
  | Ok stats ->
      let predicted =
        Dmc_sim.Partitioner.ghost_words ~dims:[ n; n ] ~blocks:[ 2; 2 ] ~star:true
        * steps
      in
      check "horizontal = ghost formula" predicted stats.Prbw.remote_gets;
      check "all vertices computed" (Cdag.n_compute g)
        (Array.fold_left ( + ) 0 stats.Prbw.computes_per_proc)
  | Error e -> Alcotest.fail e.Prbw.reason

let test_spmd_single_owner_no_traffic () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let hier = spmd_hier 2 8 in
  let moves = Strategy.spmd g hier ~owner:(fun _ -> 0) () in
  match Prbw.run hier g moves with
  | Ok stats -> check "no remote gets" 0 stats.Prbw.remote_gets
  | Error e -> Alcotest.fail e.Prbw.reason

let test_spmd_rejects_bad_hierarchy () =
  let g = Dmc_gen.Shapes.chain 3 in
  let three_level =
    Hierarchy.create
      [ { Hierarchy.count = 2; capacity = 4 };
        { Hierarchy.count = 2; capacity = 16 };
        { Hierarchy.count = 2; capacity = 64 } ]
  in
  Alcotest.check_raises "three levels"
    (Invalid_argument "Strategy.spmd: hierarchy must have exactly two levels")
    (fun () -> ignore (Strategy.spmd g three_level ~owner:(fun _ -> 0) ()));
  let shared_mem =
    Hierarchy.create
      [ { Hierarchy.count = 2; capacity = 4 }; { Hierarchy.count = 1; capacity = 64 } ]
  in
  Alcotest.check_raises "shared memory"
    (Invalid_argument "Strategy.spmd: need one level-2 memory per processor")
    (fun () -> ignore (Strategy.spmd g shared_mem ~owner:(fun _ -> 0) ()))

let prop_spmd_valid_random_owner =
  QCheck.Test.make ~name:"spmd games replay cleanly under random owners" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.5 in
      let procs = 3 in
      let owners =
        Array.init (Cdag.n_vertices g) (fun _ -> Rng.int rng procs)
      in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let hier = spmd_hier procs (max_indeg + 1) in
      match Prbw.run hier g (Strategy.spmd g hier ~owner:(fun v -> owners.(v)) ()) with
      | Ok _ -> true
      | Error _ -> false)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_strategy"
    [
      ( "schedule",
        [
          Alcotest.test_case "chain minimal io" `Quick test_schedule_chain_minimal;
          Alcotest.test_case "capacity respected" `Quick test_schedule_respects_capacity;
          Alcotest.test_case "io decreases with S" `Quick test_schedule_io_decreases_with_s;
          Alcotest.test_case "custom order" `Quick test_schedule_custom_order;
          Alcotest.test_case "rejects bad orders" `Quick test_schedule_rejects_bad_orders;
          Alcotest.test_case "S too small" `Quick test_schedule_s_too_small;
        ] );
      ( "trivial",
        [
          Alcotest.test_case "matches formula" `Quick test_trivial_matches_formula;
          Alcotest.test_case "counts unused inputs" `Quick test_trivial_counts_unused_inputs;
        ] );
      qsuite "schedule-props" [ prop_schedules_valid_on_random ];
      ( "policy",
        [ Alcotest.test_case "belady vs lru" `Quick test_belady_vs_lru_aggregate ] );
      ( "smp",
        [
          Alcotest.test_case "valid and bounded" `Quick test_smp_shared_valid;
          Alcotest.test_case "small registers rejected" `Quick test_smp_shared_small_regs_rejected;
        ] );
      qsuite "smp-props" [ prop_smp_shared_valid ];
      ( "spmd",
        [
          Alcotest.test_case "ghost-cell traffic" `Quick test_spmd_valid_and_ghosts;
          Alcotest.test_case "single owner no traffic" `Quick test_spmd_single_owner_no_traffic;
          Alcotest.test_case "rejects bad hierarchies" `Quick test_spmd_rejects_bad_hierarchy;
        ] );
      qsuite "spmd-props" [ prop_spmd_valid_random_owner ];
    ]
