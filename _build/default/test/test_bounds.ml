(* Tests for the lower-bound engines: S-partitions, wavefronts, the
   decomposition calculus, analytic formulas and parallel bounds. *)

module Cdag = Dmc_cdag.Cdag
module Bitset = Dmc_util.Bitset
module Spartition = Dmc_core.Spartition
module Wavefront = Dmc_core.Wavefront
module Decompose = Dmc_core.Decompose
module Analytic = Dmc_core.Analytic
module Parallel_bounds = Dmc_core.Parallel_bounds
module Bounds = Dmc_core.Bounds
module Strategy = Dmc_core.Strategy
module Optimal = Dmc_core.Optimal
module Hierarchy = Dmc_machine.Hierarchy
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* S-partitions                                                        *)

let test_in_out_sets () =
  (* tree of 4 leaves: in/out of the two lowest internal vertices *)
  let g = Dmc_gen.Shapes.reduction_tree 4 in
  (* vertices: 0..3 leaves, 4 = 0+1, 5 = 2+3, 6 = root *)
  let vi = Bitset.of_list 7 [ 4; 5 ] in
  Alcotest.(check (list int)) "In" [ 0; 1; 2; 3 ] (Bitset.elements (Spartition.in_set g vi));
  Alcotest.(check (list int)) "Out" [ 4; 5 ] (Bitset.elements (Spartition.out_set g vi));
  (* output vertices always count in Out *)
  let root_only = Bitset.of_list 7 [ 6 ] in
  Alcotest.(check (list int)) "root in Out" [ 6 ]
    (Bitset.elements (Spartition.out_set g root_only))

let test_check_partition () =
  let g = Dmc_gen.Shapes.reduction_tree 4 in
  (* single block of all compute vertices: In = 4 leaves, Out = 1 *)
  let color = [| -1; -1; -1; -1; 0; 0; 0 |] in
  (match Spartition.check g ~s:4 ~color with
  | Ok h -> check "one block" 1 h
  | Error m -> Alcotest.fail m);
  (match Spartition.check g ~s:3 ~color with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "|In| = 4 accepted at S = 3");
  (* inputs must stay uncolored *)
  (match Spartition.check g ~s:4 ~color:[| 0; -1; -1; -1; 0; 0; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "colored input accepted");
  (* compute vertices must be colored *)
  match Spartition.check g ~s:4 ~color:[| -1; -1; -1; -1; -1; 0; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "uncolored compute vertex accepted"

let test_check_circuit () =
  (* x -> y -> z, x -> z; color {x,z} vs {y}: edges both ways = circuit *)
  let b = Cdag.Builder.create () in
  let i = Cdag.Builder.add_vertex b in
  let x = Cdag.Builder.add_vertex b in
  let y = Cdag.Builder.add_vertex b in
  let z = Cdag.Builder.add_vertex b in
  Cdag.Builder.add_edge b i x;
  Cdag.Builder.add_edge b x y;
  Cdag.Builder.add_edge b y z;
  Cdag.Builder.add_edge b x z;
  let g = Cdag.Builder.freeze b in
  match Spartition.check g ~s:5 ~color:[| -1; 0; 1; 0 |] with
  | Error msg ->
      check_bool "mentions circuit" true
        (String.length msg >= 7 && String.sub msg 0 7 = "circuit")
  | Ok _ -> Alcotest.fail "two-subset circuit accepted"

let test_of_game_produces_valid_partition () =
  let g = Dmc_gen.Fft.butterfly 3 in
  let s = 4 in
  let moves = Strategy.schedule g ~s in
  let color = Spartition.of_game g ~s moves in
  match Spartition.check g ~s:(2 * s) ~color with
  | Ok h ->
      let io = Dmc_core.Rbw_game.io_of g ~s moves in
      check_bool "lemma direction" true (io >= s * (h - 1))
  | Error m -> Alcotest.fail m

let test_min_h_exact_trivial () =
  (* a single compute vertex: h = 1 *)
  let g = Dmc_gen.Shapes.reduction_tree 2 in
  check "tiny tree" 1 (Spartition.min_h_exact g ~s:4);
  (* chain of computes fits one subset when S >= 1 boundary *)
  let c = Dmc_gen.Shapes.chain 6 in
  check "chain one block" 1 (Spartition.min_h_exact c ~s:2)

let test_min_h_exact_forced_split () =
  (* tree with 8 leaves at sigma = 3: any single block containing all
     computes has |In| = 8 > 3, so h > 1 *)
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  check_bool "forced split" true (Spartition.min_h_exact g ~s:3 > 1)

let test_max_subset_exact () =
  let g = Dmc_gen.Shapes.chain 10 in
  (* the whole 9-vertex compute chain has In = {input}, Out = {sink} *)
  check "chain whole" 9 (Spartition.max_subset_exact g ~s:2);
  let t = Dmc_gen.Shapes.reduction_tree 8 in
  let u3 = Spartition.max_subset_exact t ~s:3 in
  let u8 = Spartition.max_subset_exact t ~s:8 in
  check_bool "monotone in s" true (u8 >= u3);
  check "everything fits at large s" (Cdag.n_compute t) u8

let test_bound_arithmetic () =
  check "lemma1" 12 (Spartition.lemma1_bound ~s:4 ~h:4);
  check "lemma1 clamps" 0 (Spartition.lemma1_bound ~s:4 ~h:0);
  check "corollary1" 8 (Spartition.corollary1_bound ~s:4 ~n_compute:12 ~u:4);
  check "corollary1 rounds up" 5 (Spartition.corollary1_bound ~s:4 ~n_compute:9 ~u:4);
  check "corollary1 clamps" 0 (Spartition.corollary1_bound ~s:4 ~n_compute:2 ~u:4);
  Alcotest.check_raises "u positive"
    (Invalid_argument "Spartition.corollary1_bound: u must be positive") (fun () ->
      ignore (Spartition.corollary1_bound ~s:1 ~n_compute:1 ~u:0))

let prop_min_h_below_game_h =
  QCheck.Test.make ~name:"exhaustive H(2S) below any game-derived h" ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:3 ~width:3 ~edge_prob:0.5 in
      if Cdag.n_compute g > 8 then true
      else begin
        let max_indeg =
          Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
        in
        let s = max_indeg + 1 in
        let moves = Strategy.schedule g ~s in
        let color = Spartition.of_game g ~s moves in
        let h_game = 1 + Array.fold_left max (-1) color in
        match Spartition.min_h_exact g ~s:(2 * s) with
        | h_min -> h_min <= h_game
        | exception Optimal.Too_large _ -> true
      end)

(* ------------------------------------------------------------------ *)
(* Wavefronts                                                          *)

let test_wavefront_chain () =
  let g = Cdag.retag (Dmc_gen.Shapes.chain 7) ~inputs:[] ~outputs:[] in
  (* every vertex of a bare chain has wavefront 1 *)
  check "middle" 1 (Wavefront.min_wavefront g 3);
  check "wmax" 1 (Wavefront.wmax_exact g)

let test_wavefront_parallel_paths () =
  (* The CG/GMRES pattern in miniature: a scalar x reads k sources, and
     each source is also read again after x — so at the instant x
     fires, all k sources are still live: Wmin(x) >= k + 1 (the k
     disjoint source->post paths plus x's own path). *)
  let b = Cdag.Builder.create () in
  let k = 5 in
  let srcs = Array.init k (fun _ -> Cdag.Builder.add_vertex b) in
  let x = Cdag.Builder.add_vertex b in
  Array.iter (fun s -> Cdag.Builder.add_edge b s x) srcs;
  Array.iter
    (fun s ->
      let post = Cdag.Builder.add_vertex b in
      Cdag.Builder.add_edge b x post;
      Cdag.Builder.add_edge b s post)
    srcs;
  let g = Cdag.Builder.freeze ~inputs:[] ~outputs:[] b in
  check "wavefront pins the sources" (k + 1) (Wavefront.min_wavefront g x)

let test_wavefront_diamond_antidiagonal () =
  let g = Cdag.retag (Dmc_gen.Shapes.diamond ~rows:4 ~cols:4) ~inputs:[] ~outputs:[] in
  (* the widest anti-diagonal of a 4x4 diamond has 4 vertices *)
  check "diamond wmax" 4 (Wavefront.wmax_exact g)

let test_wavefront_parallel_sweep () =
  (* same answer across domain counts, including the fallback path *)
  let g = Cdag.retag (Dmc_gen.Fft.butterfly 4) ~inputs:[] ~outputs:[] in
  let seq = Wavefront.wmax_exact g in
  check "one domain" seq (Wavefront.wmax_exact_par ~domains:1 g);
  check "four domains" seq (Wavefront.wmax_exact_par ~domains:4 g)

let test_wavefront_sampled_le_exact () =
  let rng = Rng.create 3 in
  let g = Cdag.retag (Dmc_gen.Fft.butterfly 3) ~inputs:[] ~outputs:[] in
  let exact = Wavefront.wmax_exact g in
  let sampled = Wavefront.wmax_sampled rng g ~samples:16 in
  check_bool "sampled below exact" true (sampled <= exact);
  check_bool "sampled positive" true (sampled >= 1)

let prop_wavefront_sound_structural =
  (* the wavefront bound against the exhaustive optimum, with real
     shrinking on failure *)
  QCheck.Test.make ~name:"wavefront bound below the optimum (structural)" ~count:30
    (Dmc_testlib.Gen_cdag.arbitrary ~max_n:9 ())
    (fun spec ->
      let g = Dmc_testlib.Gen_cdag.spec_to_cdag spec in
      let s = Dmc_testlib.Gen_cdag.max_indegree spec + 1 in
      Wavefront.lower_bound g ~s <= Optimal.rbw_io g ~s)

let test_lemma2_bound () =
  check "positive" 6 (Wavefront.lemma2_bound ~wavefront:7 ~s:4);
  check "clamped" 0 (Wavefront.lemma2_bound ~wavefront:3 ~s:4)

let test_witness_cg () =
  (* the 2 n^d wavefront of CG's scalar [a] comes with a re-checkable
     Menger witness *)
  let cg = Dmc_gen.Solver.cg ~dims:[ 3 ] ~iters:2 in
  let x = cg.Dmc_gen.Solver.iterations.(1).Dmc_gen.Solver.a_scalar in
  let w = Wavefront.witness cg.Dmc_gen.Solver.graph x in
  check "witness size = min wavefront"
    (Wavefront.min_wavefront cg.Dmc_gen.Solver.graph x)
    (List.length w.Wavefront.paths);
  check_bool "witness verifies" true
    (Wavefront.verify_witness cg.Dmc_gen.Solver.graph w)

let test_witness_rejects_tampering () =
  let g = Cdag.retag (Dmc_gen.Shapes.diamond ~rows:3 ~cols:3) ~inputs:[] ~outputs:[] in
  let center = 4 in
  let w = Wavefront.witness g center in
  check_bool "genuine witness verifies" true (Wavefront.verify_witness g w);
  (* duplicating a path breaks disjointness *)
  (match w.Wavefront.paths with
  | p :: _ ->
      check_bool "duplicated path rejected" false
        (Wavefront.verify_witness g { w with Wavefront.paths = p :: w.Wavefront.paths })
  | [] -> Alcotest.fail "expected a nonempty witness");
  (* a fabricated non-path is rejected *)
  check_bool "non-path rejected" false
    (Wavefront.verify_witness g { w with Wavefront.paths = [ [ 0; 8 ] ] })

let prop_witness_always_verifies =
  QCheck.Test.make ~name:"witnesses verify on random DAGs" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.5 in
      let x = Rng.int rng (Cdag.n_vertices g) in
      let w = Wavefront.witness g x in
      Wavefront.verify_witness g w
      && List.length w.Wavefront.paths
         = (if Dmc_util.Bitset.is_empty (Dmc_cdag.Reach.descendants g x) then 0
            else Wavefront.min_wavefront g x))

let test_lower_bound_counts_io_tags () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  (* 8 inputs + 1 output must move regardless of S *)
  check_bool "floor via corollary 2" true (Wavefront.lower_bound g ~s:50 >= 9)

let prop_certify_wavefront =
  QCheck.Test.make ~name:"wavefront certificates verify on random DAGs" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.4 in
      Bounds.certify_wavefront g ~s:4)

(* ------------------------------------------------------------------ *)
(* Decompose                                                           *)

let test_adjust_arithmetic () =
  check "untag" 5 (Decompose.untag_adjust ~bound_tagged:9 ~d_inputs:3 ~d_outputs:1);
  check "untag clamps" 0 (Decompose.untag_adjust ~bound_tagged:2 ~d_inputs:3 ~d_outputs:1);
  check "deletion" 9 (Decompose.io_deletion_adjust ~bound_inner:5 ~d_inputs:3 ~d_outputs:1)

let test_sum_disjoint_components () =
  (* two disconnected trees: the summed bound equals the sum of the
     separate bounds *)
  let b = Cdag.Builder.create () in
  let mk_tree () =
    let i1 = Cdag.Builder.add_vertex b and i2 = Cdag.Builder.add_vertex b in
    let o = Cdag.Builder.add_vertex b in
    Cdag.Builder.add_edge b i1 o;
    Cdag.Builder.add_edge b i2 o;
    (i1, i2, o)
  in
  let _ = mk_tree () and _ = mk_tree () in
  let g = Cdag.Builder.freeze b in
  let color = [| 0; 0; 0; 1; 1; 1 |] in
  let bound part = Dmc_core.Bounds.io_floor part in
  check "sum of floors" 6 (Decompose.sum_disjoint g ~color ~bound)

let test_iteration_slices_clamped () =
  let st = Dmc_gen.Stencil.jacobi_1d ~n:4 ~steps:3 in
  let npts = 4 in
  let parts =
    Decompose.iteration_slices st.Dmc_gen.Stencil.graph
      ~slice_of:(fun v -> (v / npts) - 1)  (* time step of the vertex, -1 for inputs *)
      ~n_slices:3
  in
  check "three slices" 3 (Array.length parts);
  (* inputs clamp into slice 0 *)
  check "slice 0 holds inputs and step 1" 8
    (Cdag.n_vertices parts.(0).Dmc_cdag.Subgraph.graph)

let test_wavefront_sum_on_stencil () =
  (* slicing a 1D stencil by time step and targeting the middle of each
     row gives a per-step wavefront of ~n *)
  let n = 10 and steps = 3 in
  let st = Dmc_gen.Stencil.jacobi_1d ~n ~steps in
  let g = st.Dmc_gen.Stencil.graph in
  let slice_of v = max 0 ((v / n) - 1) in
  let parts = Decompose.iteration_slices g ~slice_of ~n_slices:steps in
  let pieces =
    Array.mapi (fun t part -> (part, [ st.Dmc_gen.Stencil.vertex (t + 1) (n / 2) ])) parts
  in
  let s = 5 in
  let lb = Decompose.wavefront_sum g ~pieces ~s in
  let ub = Strategy.io g ~s in
  check_bool "positive" true (lb > 0);
  check_bool "below a real execution" true (lb <= ub)

(* the composed bound from slices never exceeds a measured execution on
   random layered DAGs *)
let prop_decomposed_sound =
  QCheck.Test.make ~name:"sliced wavefront bounds stay below executions" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:6 ~width:4 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 in
      let n = Cdag.n_vertices g in
      let slices = 3 in
      let color = Array.init n (fun v -> v * slices / n) in
      let bound part = Wavefront.lower_bound part ~s in
      let lb = Decompose.sum_disjoint g ~color ~bound in
      lb <= Strategy.io g ~s)

(* ------------------------------------------------------------------ *)
(* Analytic formulas                                                   *)

let test_analytic_values () =
  check_float "matmul n=4 s=2" (64.0 /. 4.0) (Analytic.matmul_lb ~n:4 ~s:2);
  check_float "outer" 24.0 (Analytic.outer_product_io ~n:4);
  check_float "composite" 17.0 (Analytic.composite_io_upper ~n:4);
  check_float "fft n=16 s=4" (16.0 *. 4.0 /. 4.0) (Analytic.fft_lb ~n:16 ~s:4);
  check_float "ghost 1d" 2.0 (Analytic.ghost_cells ~d:1 ~block:10);
  check_float "ghost 2d" 44.0 (Analytic.ghost_cells ~d:2 ~block:10);
  check_float "jacobi lb" (8.0 *. 8.0 *. 4.0 /. (4.0 *. 4.0))
    (Analytic.jacobi_lb ~d:2 ~n:8 ~steps:4 ~s:8 ~p:1);
  check_float "jacobi u" (4.0 *. 8.0 *. 4.0) (Analytic.jacobi_u ~d:2 ~s:8);
  check_float "cg flops" (20.0 *. 1000.0 *. 5.0) (Analytic.cg_flops ~d:1 ~n:1000 ~steps:5);
  check_float "cg per flop" 0.3 (Analytic.cg_vertical_per_flop ());
  check_float "gmres per flop" (6.0 /. 36.0) (Analytic.gmres_vertical_per_flop ~m:16);
  check_float "pow_int" 1024.0 (Analytic.pow_int 2.0 10)

let test_analytic_paper_numbers () =
  (* the paper's reported Jacobi thresholds *)
  let bgq = Analytic.jacobi_max_dim ~s:(4 * 1024 * 1024) ~balance:0.052 in
  check_bool "bgq 4.83" true (Float.abs (bgq -. 4.83) < 0.1);
  let l1 = Analytic.jacobi_max_dim ~s:2048 ~balance:2.0 in
  check_bool "l2->l1 96" true (Float.abs (l1 -. 96.0) < 0.5);
  (* CG at d=3, n=1000 on 2048 nodes: 6 N^{1/3} / 20n *)
  check_float "cg horizontal" (6.0 *. 2048.0 ** (1.0 /. 3.0) /. 20000.0)
    (Analytic.cg_horizontal_per_flop ~d:3 ~n:1000 ~nodes:2048)

let test_analytic_exact_vs_asymptotic () =
  (* the exact forms approach the asymptotic ones when n >> S *)
  let exact = Analytic.cg_vertical_lb_exact ~d:3 ~n:100 ~steps:7 ~s:64 ~p:4 in
  let asym = Analytic.cg_vertical_lb ~d:3 ~n:100 ~steps:7 ~p:4 in
  check_bool "exact below asymptotic" true (exact <= asym);
  check_bool "within 1 percent at this scale" true (asym /. exact < 1.01);
  let ge = Analytic.gmres_vertical_lb_exact ~d:2 ~n:50 ~m:5 ~s:64 ~p:2 in
  let ga = Analytic.gmres_vertical_lb ~d:2 ~n:50 ~m:5 ~p:2 in
  check_bool "gmres exact below asymptotic" true (ge <= ga)

let test_analytic_errors () =
  Alcotest.check_raises "fft needs s>=2"
    (Invalid_argument "Analytic.fft_lb: s must be >= 2") (fun () ->
      ignore (Analytic.fft_lb ~n:8 ~s:1));
  Alcotest.check_raises "pow_int negative"
    (Invalid_argument "Analytic.pow_int: negative exponent") (fun () ->
      ignore (Analytic.pow_int 2.0 (-1)))

(* ------------------------------------------------------------------ *)
(* Parallel bounds                                                     *)

let test_parallel_bounds () =
  let h =
    Hierarchy.create
      [ { Hierarchy.count = 8; capacity = 16 };
        { Hierarchy.count = 4; capacity = 256 };
        { Hierarchy.count = 4; capacity = 65536 } ]
  in
  (* Theorem 5: sequential LB at S1*N1 = 128, split over N2 = 4 *)
  let seq_lb ~s = float_of_int (1000000 / s) in
  check_float "theorem 5" (float_of_int (1000000 / 128) /. 4.0)
    (Parallel_bounds.vertical_from_sequential ~hierarchy:h ~level:2 ~seq_lb);
  (* Theorem 6 at level 3: ((W/(U*N3)) - N2/N3) * S2 *)
  check_float "theorem 6" (((8000.0 /. (10.0 *. 4.0)) -. 1.0) *. 256.0)
    (Parallel_bounds.vertical_from_u ~hierarchy:h ~level:3 ~work:8000.0 ~u:10.0);
  (* Theorem 7: ((W/(U*(P/NL))) - 1) * SL *)
  check_float "theorem 7" (((8000.0 /. (10.0 *. 2.0)) -. 1.0) *. 65536.0)
    (Parallel_bounds.horizontal_from_u ~hierarchy:h ~work:8000.0 ~u:10.0);
  check_float "work per proc" 1000.0
    (Parallel_bounds.per_processor_work ~hierarchy:h ~work:8000.0);
  (* clamping *)
  check_float "theorem 6 clamps" 0.0
    (Parallel_bounds.vertical_from_u ~hierarchy:h ~level:3 ~work:1.0 ~u:1000.0);
  Alcotest.check_raises "level 1 invalid"
    (Invalid_argument "Parallel_bounds: level must be in [2, L]") (fun () ->
      ignore (Parallel_bounds.vertical_from_u ~hierarchy:h ~level:1 ~work:1.0 ~u:1.0))

(* ------------------------------------------------------------------ *)
(* The Bounds umbrella                                                 *)

let test_bounds_report () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let r = Bounds.analyze ~optimal_limit:16 g ~s:3 in
  check "floor" 9 r.Bounds.io_floor;
  check_bool "best is max" true
    (r.Bounds.best_lb >= r.Bounds.io_floor && r.Bounds.best_lb >= r.Bounds.wavefront_lb);
  (match r.Bounds.optimal_io with
  | Some opt ->
      check_bool "lb <= opt" true (r.Bounds.best_lb <= opt);
      check_bool "opt <= ub" true (opt <= r.Bounds.belady_ub)
  | None -> Alcotest.fail "optimal expected for 15 vertices");
  check_bool "ub ordering" true (r.Bounds.belady_ub <= r.Bounds.trivial_ub)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_bounds"
    [
      ( "spartition",
        [
          Alcotest.test_case "in/out sets" `Quick test_in_out_sets;
          Alcotest.test_case "check partition" `Quick test_check_partition;
          Alcotest.test_case "circuit detection" `Quick test_check_circuit;
          Alcotest.test_case "of_game valid" `Quick test_of_game_produces_valid_partition;
          Alcotest.test_case "min_h trivial" `Quick test_min_h_exact_trivial;
          Alcotest.test_case "min_h forced split" `Quick test_min_h_exact_forced_split;
          Alcotest.test_case "max subset" `Quick test_max_subset_exact;
          Alcotest.test_case "bound arithmetic" `Quick test_bound_arithmetic;
        ] );
      ( "wavefront",
        [
          Alcotest.test_case "chain" `Quick test_wavefront_chain;
          Alcotest.test_case "parallel paths" `Quick test_wavefront_parallel_paths;
          Alcotest.test_case "diamond anti-diagonal" `Quick test_wavefront_diamond_antidiagonal;
          Alcotest.test_case "sampled below exact" `Quick test_wavefront_sampled_le_exact;
          Alcotest.test_case "parallel sweep" `Quick test_wavefront_parallel_sweep;
          Alcotest.test_case "lemma 2" `Quick test_lemma2_bound;
          Alcotest.test_case "cg witness" `Quick test_witness_cg;
          Alcotest.test_case "witness tampering" `Quick test_witness_rejects_tampering;
          Alcotest.test_case "io tags counted" `Quick test_lower_bound_counts_io_tags;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "adjust arithmetic" `Quick test_adjust_arithmetic;
          Alcotest.test_case "disconnected components" `Quick test_sum_disjoint_components;
          Alcotest.test_case "iteration slices" `Quick test_iteration_slices_clamped;
          Alcotest.test_case "wavefront sum on stencil" `Quick test_wavefront_sum_on_stencil;
        ] );
      qsuite "decompose-props" [ prop_decomposed_sound ];
      qsuite "witness-props" [ prop_witness_always_verifies ];
      qsuite "partition-props" [ prop_min_h_below_game_h ];
      qsuite "certify-props" [ prop_certify_wavefront ];
      qsuite "wavefront-structural" [ prop_wavefront_sound_structural ];
      ( "analytic",
        [
          Alcotest.test_case "formula values" `Quick test_analytic_values;
          Alcotest.test_case "paper numbers" `Quick test_analytic_paper_numbers;
          Alcotest.test_case "exact vs asymptotic" `Quick test_analytic_exact_vs_asymptotic;
          Alcotest.test_case "errors" `Quick test_analytic_errors;
        ] );
      ( "parallel", [ Alcotest.test_case "theorems 5-7" `Quick test_parallel_bounds ] );
      ( "umbrella", [ Alcotest.test_case "report" `Quick test_bounds_report ] );
    ]
