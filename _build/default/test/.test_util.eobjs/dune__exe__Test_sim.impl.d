test/test_sim.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_sim Dmc_util List Option QCheck QCheck_alcotest Random
