test/test_gen.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_util Hashtbl List QCheck QCheck_alcotest Random
