test/test_symbolic.ml: Alcotest Dmc_core Dmc_symbolic Dmc_util Float List QCheck QCheck_alcotest Random Stdlib
