test/test_strategy.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_sim Dmc_util List Printf QCheck QCheck_alcotest Random
