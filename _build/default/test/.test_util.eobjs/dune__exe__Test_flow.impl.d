test/test_flow.ml: Alcotest Dmc_cdag Dmc_flow Dmc_gen Dmc_util Hashtbl List QCheck QCheck_alcotest Random
