test/test_transform_span.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_util List QCheck QCheck_alcotest Random
