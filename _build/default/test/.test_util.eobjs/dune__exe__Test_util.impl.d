test/test_util.ml: Alcotest Array Dmc_util Float Fun Hashtbl List QCheck QCheck_alcotest Random String
