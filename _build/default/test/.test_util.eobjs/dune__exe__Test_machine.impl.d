test/test_machine.ml: Alcotest Dmc_machine Format List String
