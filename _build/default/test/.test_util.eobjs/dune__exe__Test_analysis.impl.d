test/test_analysis.ml: Alcotest Dmc_analysis Dmc_machine Dmc_util Float List String
