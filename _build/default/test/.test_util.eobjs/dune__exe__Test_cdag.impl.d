test/test_cdag.ml: Alcotest Array Dmc_cdag Dmc_gen Dmc_util List QCheck QCheck_alcotest Random String
