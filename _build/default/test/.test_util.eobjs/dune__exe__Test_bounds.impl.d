test/test_bounds.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_testlib Dmc_util Float List QCheck QCheck_alcotest Random String
