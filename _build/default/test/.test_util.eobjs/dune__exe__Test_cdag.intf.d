test/test_cdag.mli:
