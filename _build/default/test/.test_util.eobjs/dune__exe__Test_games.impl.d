test/test_games.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_util List Printf QCheck QCheck_alcotest Random String
