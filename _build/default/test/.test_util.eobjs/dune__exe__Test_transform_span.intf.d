test/test_transform_span.mli:
