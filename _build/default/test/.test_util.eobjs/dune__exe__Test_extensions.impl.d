test/test_extensions.ml: Alcotest Array Dmc_analysis Dmc_cdag Dmc_core Dmc_gen Dmc_util List QCheck QCheck_alcotest Random String
