test/test_optimal.ml: Alcotest Array Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_testlib Dmc_util Fun List QCheck QCheck_alcotest Random
