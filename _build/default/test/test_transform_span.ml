(* Tests for the CDAG transformations (transpose duality, disjoint
   union, series composition) and for Savage's S-span engine. *)

module Cdag = Dmc_cdag.Cdag
module Transform = Dmc_cdag.Transform
module Serialize = Dmc_cdag.Serialize
module Span = Dmc_core.Span
module Optimal = Dmc_core.Optimal
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Transpose                                                           *)

let test_transpose_structure () =
  let g = Dmc_gen.Shapes.reduction_tree 4 in
  let t = Transform.transpose g in
  check "same vertices" (Cdag.n_vertices g) (Cdag.n_vertices t);
  check "same edges" (Cdag.n_edges g) (Cdag.n_edges t);
  check "inputs become outputs" (Cdag.n_inputs g) (Cdag.n_outputs t);
  check "outputs become inputs" (Cdag.n_outputs g) (Cdag.n_inputs t);
  check_bool "edges reversed" true (Cdag.has_edge t 6 5);
  check_bool "involution" true
    (Serialize.equal_structure g (Transform.transpose t))

(* The folklore "reverse the game" duality argument is unsound: the
   reverse of a delete is a pebble placement with no justification.
   This 8-vertex DAG (found by random search) pins the asymmetry:
   io(G) = 5 but io(G^T) = 6 at S = 4. *)
let test_transpose_duality_fails () =
  let b = Cdag.Builder.create () in
  let v = Array.init 8 (fun _ -> Cdag.Builder.add_vertex b) in
  List.iter
    (fun (x, y) -> Cdag.Builder.add_edge b v.(x) v.(y))
    [ (0, 2); (0, 3); (1, 3); (1, 4); (2, 5); (2, 6); (3, 5); (3, 6); (3, 7);
      (4, 6); (4, 7) ];
  let g = Cdag.Builder.freeze b in
  let t = Transform.transpose g in
  check "io(G)" 5 (Optimal.rb_io g ~s:4);
  check "io(G^T)" 6 (Optimal.rb_io t ~s:4)

let prop_transpose_optima_close =
  (* Even without exact duality, transposition cannot change the
     tagging floor, and both optima stay sandwiched between their own
     floors and trivial upper bounds. *)
  QCheck.Test.make ~name:"transpose keeps optima within their own floors and UBs"
    ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:3 ~width:3 ~edge_prob:0.55 in
      if Cdag.n_vertices g > 11 || not (Dmc_cdag.Validate.is_hong_kung g) then true
      else begin
        let t = Transform.transpose g in
        let max_indeg h =
          Cdag.fold_vertices h (fun acc v -> max acc (Cdag.in_degree h v)) 0
        in
        let s = 1 + max (max_indeg g) (max_indeg t) in
        let io_g = Optimal.rb_io g ~s and io_t = Optimal.rb_io t ~s in
        (* outputs that are also inputs are born blue: the RB floor
           only counts the rest *)
        let floor h =
          List.length
            (List.filter (fun v -> not (Cdag.is_input h v)) (Cdag.outputs h))
        in
        io_g >= floor g
        && io_t >= floor t
        && io_t <= Dmc_core.Strategy.trivial_io t
      end)

(* ------------------------------------------------------------------ *)
(* Disjoint union                                                      *)

let test_union_structure () =
  let a = Dmc_gen.Shapes.chain 3 and b = Dmc_gen.Shapes.reduction_tree 4 in
  let u = Transform.disjoint_union a b in
  check "vertex sum" (3 + 7) (Cdag.n_vertices u.Transform.graph);
  check "edge sum" (2 + 6) (Cdag.n_edges u.Transform.graph);
  check "input union" (1 + 4) (Cdag.n_inputs u.Transform.graph);
  check "left mapping" 0 (u.Transform.left 0);
  check "right mapping" 3 (u.Transform.right 0);
  Alcotest.check_raises "right out of range"
    (Invalid_argument "Transform.disjoint_union: right vertex") (fun () ->
      ignore (u.Transform.right 7))

let prop_union_optimal_additive =
  QCheck.Test.make ~name:"optimal I/O is additive over disjoint unions" ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = Dmc_gen.Random_dag.gnp rng ~n:5 ~edge_prob:0.35 in
      let b = Dmc_gen.Random_dag.gnp rng ~n:5 ~edge_prob:0.35 in
      let u = (Transform.disjoint_union a b).Transform.graph in
      let max_indeg h =
        Cdag.fold_vertices h (fun acc v -> max acc (Cdag.in_degree h v)) 0
      in
      let s = max_indeg u + 1 in
      Optimal.rbw_io u ~s = Optimal.rbw_io a ~s + Optimal.rbw_io b ~s)

(* ------------------------------------------------------------------ *)
(* Series composition                                                  *)

let test_series_pipeline () =
  (* chain3 ; chain3 wired output->input = a chain of 6 *)
  let a = Dmc_gen.Shapes.chain 3 and b = Dmc_gen.Shapes.chain 3 in
  let g = Transform.series a b ~wire:[ (2, 0) ] in
  check "vertices" 6 (Cdag.n_vertices g);
  check "edges" 5 (Cdag.n_edges g);
  (* the wired input is no longer a tagged input *)
  check "single remaining input" 1 (Cdag.n_inputs g);
  (* the whole pipeline still costs one load + stores of both outputs *)
  let opt = Optimal.rbw_io g ~s:2 in
  check "pipeline optimal" 3 opt

let test_series_rejects_bad_wire () =
  let a = Dmc_gen.Shapes.chain 3 and b = Dmc_gen.Shapes.chain 3 in
  Alcotest.check_raises "not an output"
    (Invalid_argument "Transform.series: wire source is not an output of the first CDAG")
    (fun () -> ignore (Transform.series a b ~wire:[ (1, 0) ]));
  Alcotest.check_raises "not an input"
    (Invalid_argument "Transform.series: wire target is not an input of the second CDAG")
    (fun () -> ignore (Transform.series a b ~wire:[ (2, 1) ]))

(* ------------------------------------------------------------------ *)
(* S-span                                                              *)

let test_span_chain () =
  let c = Dmc_gen.Shapes.chain 6 in
  (* two pebbles walk the whole chain: all 5 computes fire *)
  check "chain rho(2)" 5 (Span.s_span c ~s:2);
  check "chain rho(4)" 5 (Span.s_span c ~s:4);
  (* one pebble cannot fire anything beyond a source *)
  check "chain rho(1)" 0 (Span.s_span c ~s:1)

let test_span_tree () =
  let t = Dmc_gen.Shapes.reduction_tree 8 in
  (* regression values from the exhaustive search *)
  check "tree rho(4)" 2 (Span.s_span t ~s:4);
  check "tree rho(6)" 4 (Span.s_span t ~s:6);
  (* with room for everything the whole compute set fires *)
  check "tree rho(15)" 7 (Span.s_span t ~s:15)

let test_span_independent () =
  (* source compute vertices fire from an empty pebble set *)
  let g = Dmc_gen.Shapes.independent 5 in
  check "independent" 5 (Span.s_span g ~s:5);
  (* even one pebble fires them all (sequential, evicting) *)
  check "independent one pebble" 5 (Span.s_span g ~s:1)

let test_span_lower_bound () =
  let t = Dmc_gen.Shapes.reduction_tree 8 in
  (* S*(n'/rho(2S) - 1) = 2*(7/2 - 1) = 5 *)
  check "tree span lb s=2" 5 (Span.lower_bound t ~s:2);
  (* the span bound is sound against the optimum at a feasible S *)
  let opt = Optimal.rbw_io t ~s:3 in
  check_bool "sound" true (Span.lower_bound t ~s:3 <= opt)

let test_span_guards () =
  Alcotest.check_raises "too large"
    (Optimal.Too_large "Span.s_span: more than 20 vertices") (fun () ->
      ignore (Span.s_span (Dmc_gen.Shapes.diamond ~rows:5 ~cols:5) ~s:4));
  Alcotest.check_raises "s positive"
    (Invalid_argument "Span.s_span: s must be positive") (fun () ->
      ignore (Span.s_span (Dmc_gen.Shapes.chain 3) ~s:0))

let prop_span_sound =
  QCheck.Test.make ~name:"span bound below the optimum" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:8 ~edge_prob:0.3 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 in
      Span.lower_bound g ~s <= Optimal.rbw_io g ~s)

let prop_span_monotone =
  QCheck.Test.make ~name:"span grows with the pebble budget" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:8 ~edge_prob:0.3 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 in
      Span.s_span g ~s <= Span.s_span g ~s:(s + 2))

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_transform_span"
    [
      ( "transpose",
        [
          Alcotest.test_case "structure" `Quick test_transpose_structure;
          Alcotest.test_case "duality counterexample" `Quick test_transpose_duality_fails;
        ] );
      qsuite "transpose-props" [ prop_transpose_optima_close ];
      ( "union", [ Alcotest.test_case "structure" `Quick test_union_structure ] );
      qsuite "union-props" [ prop_union_optimal_additive ];
      ( "series",
        [
          Alcotest.test_case "pipeline" `Quick test_series_pipeline;
          Alcotest.test_case "rejects bad wires" `Quick test_series_rejects_bad_wire;
        ] );
      ( "span",
        [
          Alcotest.test_case "chain" `Quick test_span_chain;
          Alcotest.test_case "tree" `Quick test_span_tree;
          Alcotest.test_case "independent" `Quick test_span_independent;
          Alcotest.test_case "lower bound" `Quick test_span_lower_bound;
          Alcotest.test_case "guards" `Quick test_span_guards;
        ] );
      qsuite "span-props" [ prop_span_sound; prop_span_monotone ];
    ]
