module Cdag := Dmc_cdag.Cdag

(** A structural QCheck generator for CDAGs with {e real shrinking}:
    counterexamples shrink by dropping edges and suffix vertices, so a
    failing property lands on a minimal graph instead of an opaque
    seed. *)

type spec = {
  n : int;                     (** vertex count *)
  edges : (int * int) list;    (** forward edges, [u < v] *)
}

val spec_to_cdag : spec -> Cdag.t
(** Build with Hong–Kung default tagging.  Total when the spec is
    well-formed (edges forward and in range), which generated and
    shrunk specs always are. *)

val arbitrary : ?max_n:int -> ?edge_prob:float -> unit -> spec QCheck.arbitrary
(** Random specs of 2 to [max_n] (default 10) vertices, each forward
    pair an edge with probability [edge_prob] (default 0.3).  Shrinks
    by removing edges one at a time, then trimming the last vertex. *)

val max_indegree : spec -> int
