test/testlib/gen_cdag.mli: Dmc_cdag QCheck
