test/testlib/gen_cdag.ml: Array Dmc_cdag List Printf QCheck String
