module Cdag = Dmc_cdag.Cdag

type spec = {
  n : int;
  edges : (int * int) list;
}

let spec_to_cdag spec =
  let b = Cdag.Builder.create ~hint:spec.n () in
  for _ = 1 to spec.n do
    ignore (Cdag.Builder.add_vertex b)
  done;
  List.iter (fun (u, v) -> Cdag.Builder.add_edge b u v) spec.edges;
  Cdag.Builder.freeze b

let max_indegree spec =
  let indeg = Array.make spec.n 0 in
  List.iter (fun (_, v) -> indeg.(v) <- indeg.(v) + 1) spec.edges;
  Array.fold_left max 0 indeg

let print spec =
  Printf.sprintf "{n=%d; edges=[%s]}" spec.n
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) spec.edges))

let gen ~max_n ~edge_prob =
  let open QCheck.Gen in
  int_range 2 max_n >>= fun n ->
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  let rec pick acc = function
    | [] -> return { n; edges = List.rev acc }
    | p :: rest ->
        float_bound_inclusive 1.0 >>= fun x ->
        pick (if x < edge_prob then p :: acc else acc) rest
  in
  pick [] (List.rev !pairs)

let shrink spec yield =
  (* drop one edge at a time *)
  List.iteri
    (fun i _ ->
      yield { spec with edges = List.filteri (fun j _ -> j <> i) spec.edges })
    spec.edges;
  (* trim the last vertex (and its edges) *)
  if spec.n > 2 then
    yield
      {
        n = spec.n - 1;
        edges = List.filter (fun (u, v) -> u < spec.n - 1 && v < spec.n - 1) spec.edges;
      }

let arbitrary ?(max_n = 10) ?(edge_prob = 0.3) () =
  QCheck.make ~print ~shrink (gen ~max_n ~edge_prob)
