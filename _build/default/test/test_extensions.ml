(* Tests for the extension modules: the original Hong-Kung partitions
   (dominator sets), the lines bound, game traces, the DFS scheduling
   order, and the architectural scaling sweeps. *)

module Cdag = Dmc_cdag.Cdag
module Bitset = Dmc_util.Bitset
module Hk = Dmc_core.Hk_partition
module Lines = Dmc_core.Lines
module Trace = Dmc_core.Trace
module Strategy = Dmc_core.Strategy
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Hk_partition                                                        *)

let test_minimum_set () =
  (* tree 0..3 leaves, 4 = 0+1, 5 = 2+3, 6 = root *)
  let g = Dmc_gen.Shapes.reduction_tree 4 in
  let vi = Bitset.of_list 7 [ 0; 1; 4 ] in
  (* 0 and 1 feed 4 (inside), 4 feeds 6 (outside): Min = {4} *)
  Alcotest.(check (list int)) "min set" [ 4 ] (Bitset.elements (Hk.minimum_set g vi));
  (* the root has no successors at all: it belongs to Min *)
  Alcotest.(check (list int)) "sink in min" [ 6 ]
    (Bitset.elements (Hk.minimum_set g (Bitset.of_list 7 [ 6 ])))

let test_min_dominator_tree () =
  let g = Dmc_gen.Shapes.reduction_tree 4 in
  (* the subtree vertex 4 is dominated by itself: cut size 1 vs
     In-boundary size 2 — dominators are where Def 3 is sharper *)
  let size, dom = Hk.min_dominator g (Bitset.of_list 7 [ 4 ]) in
  check "dominator size" 1 size;
  Alcotest.(check (list int)) "dominator is the vertex" [ 4 ] dom;
  (* the root is dominated by any single cut on each leaf-root path;
     {6} itself works *)
  let size_root, _ = Hk.min_dominator g (Bitset.of_list 7 [ 6 ]) in
  check "root dominator" 1 size_root;
  (* the set of all 4 leaves needs all 4 inputs cut *)
  let size_leaves, _ = Hk.min_dominator g (Bitset.of_list 7 [ 0; 1; 2; 3 ]) in
  check "leaves dominator" 4 size_leaves

let test_min_dominator_shared_input () =
  (* one input feeding k middles: dominator of the middles = {input} *)
  let g = Dmc_gen.Shapes.broadcast_tree 4 in
  let sinks = Cdag.sinks g in
  let size, _ = Hk.min_dominator g (Bitset.of_list (Cdag.n_vertices g) sinks) in
  check "single source dominates" 1 size

let test_hk_check_and_game () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let s = 4 in
  (* a Belady RBW schedule is also a valid RB game (same move set,
     weaker rules) *)
  let moves = Strategy.schedule g ~s in
  (match Dmc_core.Rb_game.run g ~s moves with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.Dmc_core.Rb_game.reason);
  let color = Hk.of_rb_game g ~s moves in
  let h = 1 + Array.fold_left max (-1) color in
  (match Hk.check g ~s:(2 * s) ~color with
  | Ok h' -> check "all phases non-empty after compaction" h h'
  | Error m -> Alcotest.fail m);
  (* Lemma 1 direction *)
  let io =
    match Dmc_core.Rb_game.run g ~s moves with
    | Ok st -> st.Dmc_core.Rb_game.io
    | Error _ -> assert false
  in
  check_bool "q >= S(h-1)" true (io >= s * (h - 1))

let test_hk_check_rejects () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  (* everything in one subset: minimum dominator is the 8 inputs > 3 *)
  let color = Array.make (Cdag.n_vertices g) 0 in
  match Hk.check g ~s:3 ~color with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized dominator accepted"

let prop_hk_game_partitions_valid =
  QCheck.Test.make ~name:"RB-game phases form valid 2S-partitions" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.5 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let moves = Strategy.schedule g ~s in
      let color = Hk.of_rb_game g ~s moves in
      match Hk.check g ~s:(2 * s) ~color with Ok _ -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Lines                                                               *)

let test_lines_formulas () =
  check_float "bound" 10.0 (Lines.bound ~line_vertices:100 ~f_inverse_2s:4);
  (* d=2: 2 sqrt(2S) - 1 *)
  check_float "f inverse 2d" ((2.0 *. sqrt 16.0) -. 1.0) (Lines.jacobi_f_inverse ~d:2 ~s:8);
  (* the lines route reproduces the Theorem-10 closed form *)
  let via_lines = Lines.jacobi_bound ~d:2 ~n:8 ~steps:4 ~s:8 in
  let closed = Dmc_core.Analytic.jacobi_lb ~d:2 ~n:8 ~steps:4 ~s:8 ~p:1 in
  check_float "matches Theorem 10" closed via_lines

let test_disjoint_lines_stencil () =
  (* every grid point carries its own line: n^d disjoint input-output
     paths *)
  let st = Dmc_gen.Stencil.jacobi_2d ~shape:Dmc_gen.Stencil.Star ~n:4 ~steps:3 () in
  check "stencil lines" 16 (Lines.max_disjoint_lines st.Dmc_gen.Stencil.graph);
  let st1 = Dmc_gen.Stencil.jacobi_1d ~n:7 ~steps:2 in
  check "1d lines" 7 (Lines.max_disjoint_lines st1.Dmc_gen.Stencil.graph);
  (* a reduction tree has only one output: a single line *)
  check "tree lines" 1 (Lines.max_disjoint_lines (Dmc_gen.Shapes.reduction_tree 8));
  (* FFT: n inputs, n outputs, permutation routing: n lines *)
  check "fft lines" 8 (Lines.max_disjoint_lines (Dmc_gen.Fft.butterfly 3))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_summary () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let s = 3 in
  let moves = Strategy.schedule g ~s in
  let summary = Trace.summarize moves in
  let stats =
    match Dmc_core.Rbw_game.run g ~s moves with
    | Ok st -> st
    | Error e -> Alcotest.fail e.Dmc_core.Rbw_game.reason
  in
  check "io agrees with engine" stats.Dmc_core.Rbw_game.io summary.Trace.io;
  check "loads agree" stats.Dmc_core.Rbw_game.loads summary.Trace.loads;
  check "computes agree" stats.Dmc_core.Rbw_game.computes summary.Trace.computes;
  check_bool "reload accounting" true
    (summary.Trace.loads = summary.Trace.distinct_loaded + summary.Trace.reloads);
  check_bool "roundtrip" true (Trace.check_roundtrip g ~s moves)

let test_trace_timelines () =
  let moves =
    Dmc_core.Rbw_game.[ Load 0; Compute 1; Store 1; Delete 0; Delete 1 ]
  in
  Alcotest.(check (array int)) "io timeline" [| 1; 1; 2; 2; 2 |] (Trace.io_timeline moves);
  Alcotest.(check (array int)) "live timeline" [| 1; 2; 2; 1; 0 |]
    (Trace.live_timeline moves)

let test_trace_phases () =
  let moves =
    Dmc_core.Rbw_game.[ Load 0; Load 1; Compute 2; Store 2; Load 0; Store 0 ]
  in
  Alcotest.(check (list int)) "phases of 2" [ 2; 2; 1 ] (Trace.phase_io ~s:2 moves);
  Alcotest.(check (list int)) "one phase" [ 5 ] (Trace.phase_io ~s:10 moves)

let test_trace_parse_roundtrip () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let moves = Strategy.schedule g ~s:3 in
  (match Trace.parse (Trace.to_string moves) with
  | Ok moves' -> check_bool "round trip" true (moves = moves')
  | Error m -> Alcotest.fail m);
  (match Trace.parse "# comment\n\nload 3\ncompute 4\n" with
  | Ok [ Dmc_core.Rbw_game.Load 3; Dmc_core.Rbw_game.Compute 4 ] -> ()
  | _ -> Alcotest.fail "comment/blank handling");
  (match Trace.parse "frobnicate 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad op accepted");
  match Trace.parse "load x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad vertex accepted"

let test_trace_timeline_render () =
  let moves = Dmc_core.Rbw_game.[ Load 0; Compute 1; Store 1; Delete 0; Delete 1 ] in
  let out = Trace.render_timeline ~width:5 moves in
  check_bool "two rows" true (List.length (String.split_on_char '\n' out) >= 2);
  check_bool "reports io" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.hd |> fun l ->
       String.length l > 0);
  Alcotest.(check string) "empty game" "(empty game)\n" (Trace.render_timeline [])

let test_trace_to_string () =
  let moves = Dmc_core.Rbw_game.[ Load 0; Compute 1 ] in
  let s = Trace.to_string moves in
  check_bool "mentions load" true (String.length s > 0);
  let truncated = Trace.to_string ~limit:1 (moves @ moves) in
  check_bool "ellipsis" true
    (String.length truncated > 0
    && String.contains truncated '.')

(* ------------------------------------------------------------------ *)
(* DFS order                                                           *)

let test_dfs_order_optimal_on_trees () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let s = 3 in
  let dfs_io = Strategy.io ~order:(Strategy.dfs_order g) g ~s in
  let opt = Dmc_core.Optimal.rbw_io g ~s in
  check "dfs reaches the optimum on a tree" opt dfs_io;
  check_bool "beats breadth-first" true (dfs_io < Strategy.io g ~s)

let prop_dfs_order_valid =
  QCheck.Test.make ~name:"dfs order schedules replay cleanly" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let moves = Strategy.schedule ~order:(Strategy.dfs_order g) g ~s in
      match Dmc_core.Rbw_game.run g ~s moves with Ok _ -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Hierarchical (3-level) strategy                                     *)

let test_hierarchical_valid_and_bounded () =
  let st = Dmc_gen.Stencil.jacobi_1d ~n:24 ~steps:6 in
  let g = st.Dmc_gen.Stencil.graph in
  let s1 = 6 and s2 = 20 in
  let moves = Strategy.hierarchical g ~s1 ~s2 in
  let hier = Strategy.hierarchical_hierarchy ~s1 ~s2 in
  match Dmc_core.Prbw_game.run hier g moves with
  | Error e -> Alcotest.fail e.Dmc_core.Prbw_game.reason
  | Ok stats ->
      let b2 = Dmc_core.Prbw_game.boundary_traffic stats ~level:2 in
      let b3 = Dmc_core.Prbw_game.boundary_traffic stats ~level:3 in
      (* the register boundary sees at least the cache boundary's data *)
      check_bool "inner boundary carries more" true (b2 >= b3);
      (* each boundary's traffic dominates the sequential lower bound
         with the inner capacity (Theorem 5 with N_l = 1) *)
      check_bool "regs boundary vs LB(S1)" true
        (b2 >= Dmc_core.Wavefront.lower_bound g ~s:s1);
      check_bool "cache boundary vs LB(S2)" true
        (b3 >= Dmc_core.Wavefront.lower_bound g ~s:s2);
      (* every input read once, every output written once *)
      check "loads = inputs" (Cdag.n_inputs g) stats.Dmc_core.Prbw_game.loads;
      check "stores = outputs" (Cdag.n_outputs g) stats.Dmc_core.Prbw_game.stores

let test_hierarchical_large_cache_collapses () =
  (* with a cache as large as the graph, the memory boundary sees only
     the compulsory input/output traffic *)
  let g = Dmc_gen.Shapes.reduction_tree 16 in
  let moves = Strategy.hierarchical g ~s1:4 ~s2:100 in
  let hier = Strategy.hierarchical_hierarchy ~s1:4 ~s2:100 in
  match Dmc_core.Prbw_game.run hier g moves with
  | Error e -> Alcotest.fail e.Dmc_core.Prbw_game.reason
  | Ok stats ->
      check "memory boundary = in + out" (16 + 1)
        (Dmc_core.Prbw_game.boundary_traffic stats ~level:3)

let prop_hierarchical_valid =
  QCheck.Test.make ~name:"hierarchical games replay cleanly" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s1 = max_indeg + 1 + Rng.int rng 3 in
      let s2 = s1 + 2 + Rng.int rng 6 in
      let moves = Strategy.hierarchical g ~s1 ~s2 in
      let hier = Strategy.hierarchical_hierarchy ~s1 ~s2 in
      match Dmc_core.Prbw_game.run hier g moves with
      | Ok _ -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Theorem 2 against the exhaustive optimum                            *)

let prop_theorem2_vs_optimal =
  QCheck.Test.make ~name:"sum of per-part optima below the whole optimum" ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:9 ~edge_prob:0.3 in
      let n = Cdag.n_vertices g in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 in
      let color = Array.init n (fun _ -> Rng.int rng 2) in
      let parts = Dmc_cdag.Subgraph.partition g color in
      let part_sum =
        Array.fold_left
          (fun acc (p : Dmc_cdag.Subgraph.part) ->
            if Cdag.n_vertices p.Dmc_cdag.Subgraph.graph = 0 then acc
            else acc + Dmc_core.Optimal.rbw_io p.Dmc_cdag.Subgraph.graph ~s)
          0 parts
      in
      part_sum <= Dmc_core.Optimal.rbw_io g ~s)

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)

let test_scaling_cg () =
  let crossover =
    Dmc_analysis.Scaling.cg_network_bound_at ~balance:0.049 ()
  in
  (* (0.049 * 20000 / 6)^3 *)
  check_float "crossover closed form" ((0.049 *. 20000.0 /. 6.0) ** 3.0) crossover;
  let points = Dmc_analysis.Scaling.cg_node_sweep ~node_counts:[ 2048; 100_000_000 ] () in
  (match points with
  | [ small; huge ] ->
      check_bool "2048 nodes unbound" true (small.Dmc_analysis.Scaling.network_bound_on = []);
      check_bool "10^8 nodes bound" true (huge.Dmc_analysis.Scaling.network_bound_on <> [])
  | _ -> Alcotest.fail "expected two points")

let test_scaling_jacobi_cache () =
  let points =
    Dmc_analysis.Scaling.jacobi_cache_sweep ~cache_mwords:[ 1.0; 64.0 ] ()
  in
  match points with
  | [ small; big ] ->
      check_bool "bigger cache raises max dim" true
        (big.Dmc_analysis.Scaling.max_dim_paper > small.Dmc_analysis.Scaling.max_dim_paper);
      check_bool "bigger cache lowers the floor" true
        (big.Dmc_analysis.Scaling.threshold_3d < small.Dmc_analysis.Scaling.threshold_3d)
  | _ -> Alcotest.fail "expected two points"

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_extensions"
    [
      ( "hk_partition",
        [
          Alcotest.test_case "minimum set" `Quick test_minimum_set;
          Alcotest.test_case "min dominator on trees" `Quick test_min_dominator_tree;
          Alcotest.test_case "shared-input dominator" `Quick test_min_dominator_shared_input;
          Alcotest.test_case "game-derived partition" `Quick test_hk_check_and_game;
          Alcotest.test_case "rejects oversized dominators" `Quick test_hk_check_rejects;
        ] );
      qsuite "hk-props" [ prop_hk_game_partitions_valid ];
      ( "lines",
        [
          Alcotest.test_case "formulas" `Quick test_lines_formulas;
          Alcotest.test_case "disjoint lines" `Quick test_disjoint_lines_stencil;
        ] );
      ( "trace",
        [
          Alcotest.test_case "summary" `Quick test_trace_summary;
          Alcotest.test_case "timelines" `Quick test_trace_timelines;
          Alcotest.test_case "phases" `Quick test_trace_phases;
          Alcotest.test_case "to_string" `Quick test_trace_to_string;
          Alcotest.test_case "timeline render" `Quick test_trace_timeline_render;
          Alcotest.test_case "parse roundtrip" `Quick test_trace_parse_roundtrip;
        ] );
      ( "dfs",
        [ Alcotest.test_case "optimal on trees" `Quick test_dfs_order_optimal_on_trees ] );
      qsuite "dfs-props" [ prop_dfs_order_valid ];
      ( "hierarchical",
        [
          Alcotest.test_case "valid and bounded" `Quick test_hierarchical_valid_and_bounded;
          Alcotest.test_case "large cache collapses" `Quick test_hierarchical_large_cache_collapses;
        ] );
      qsuite "hierarchical-props" [ prop_hierarchical_valid ];
      qsuite "theorem2-props" [ prop_theorem2_vs_optimal ];
      ( "scaling",
        [
          Alcotest.test_case "cg crossover" `Quick test_scaling_cg;
          Alcotest.test_case "jacobi cache sweep" `Quick test_scaling_jacobi_cache;
        ] );
    ]
