(* Tests for the cache/hierarchy simulator and the block partitioner. *)

module Cache = Dmc_sim.Cache
module Hier_sim = Dmc_sim.Hier_sim
module Exec = Dmc_sim.Exec
module Partitioner = Dmc_sim.Partitioner
module Cdag = Dmc_cdag.Cdag
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Alcotest.(check (option int)) "insert 1" None
    (Option.map (fun (e : Cache.eviction) -> e.Cache.key) (Cache.insert c 1));
  ignore (Cache.insert c 2);
  (* touching 1 makes 2 the LRU victim *)
  check_bool "touch hit" true (Cache.touch c 1);
  (match Cache.insert c 3 with
  | Some e -> check "victim is 2" 2 e.Cache.key
  | None -> Alcotest.fail "expected an eviction");
  check "size" 2 (Cache.size c);
  check_bool "1 still present" true (Cache.mem c 1);
  check_bool "2 gone" false (Cache.mem c 2)

let test_cache_dirty_bits () =
  let c = Cache.create ~capacity:1 in
  ignore (Cache.insert c ~dirty:true 7);
  (match Cache.insert c 8 with
  | Some e ->
      check "victim" 7 e.Cache.key;
      check_bool "dirty carried" true e.Cache.dirty
  | None -> Alcotest.fail "expected eviction");
  (* set_dirty after a clean insert *)
  Cache.set_dirty c 8;
  match Cache.remove c 8 with
  | Some e -> check_bool "marked dirty" true e.Cache.dirty
  | None -> Alcotest.fail "remove failed"

let test_cache_refresh_no_evict () =
  let c = Cache.create ~capacity:2 in
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  (* re-inserting a resident key never evicts *)
  Alcotest.(check bool) "no eviction on refresh" true (Cache.insert c 1 = None);
  check "size stable" 2 (Cache.size c)

let test_cache_iter_order () =
  let c = Cache.create ~capacity:3 in
  List.iter (fun k -> ignore (Cache.insert c k)) [ 1; 2; 3 ];
  check_bool "touch 1" true (Cache.touch c 1);
  let order = ref [] in
  Cache.iter (fun k ~dirty:_ -> order := k :: !order) c;
  (* LRU-to-MRU: 2, 3, 1 *)
  Alcotest.(check (list int)) "lru order" [ 1; 3; 2 ] !order

(* ------------------------------------------------------------------ *)
(* Hier_sim                                                            *)

let test_hier_cold_misses () =
  let h = Hier_sim.create ~capacities:[| 2; 8 |] () in
  Hier_sim.read h 0;
  Hier_sim.read h 1;
  (* both cold: 2 words across each boundary *)
  Alcotest.(check (array int)) "cold traffic" [| 2; 2 |] (Hier_sim.traffic h);
  (* re-reads hit L1: no new traffic *)
  Hier_sim.read h 0;
  Hier_sim.read h 1;
  Alcotest.(check (array int)) "hits free" [| 2; 2 |] (Hier_sim.traffic h)

let test_hier_l2_hit () =
  let h = Hier_sim.create ~capacities:[| 1; 8 |] () in
  Hier_sim.read h 0;
  Hier_sim.read h 1;   (* evicts 0 from L1; 0 stays in L2 *)
  Hier_sim.read h 0;   (* L2 hit: boundary-1 fill only *)
  let t = Hier_sim.traffic h in
  check "boundary 1 fills" 3 t.(0);
  check "boundary 2 fills" 2 t.(1)

let test_hier_writeback () =
  let h = Hier_sim.create ~capacities:[| 1; 8 |] () in
  Hier_sim.write h 42;          (* dirty in L1, no traffic *)
  Alcotest.(check (array int)) "write allocates silently" [| 0; 0 |] (Hier_sim.traffic h);
  Hier_sim.read h 1;            (* evicts dirty 42 -> writeback to L2 *)
  let t = Hier_sim.traffic h in
  check "boundary 1 = fill + writeback" 2 t.(0);
  check "boundary 2 = fill only" 1 t.(1);
  check_bool "42 now in L2" true (Hier_sim.contains h ~level:2 42);
  Hier_sim.flush h;
  let t = Hier_sim.traffic h in
  (* flush pushes dirty 42 (and dirty copy in L2) to the backing store *)
  check_bool "flush wrote back" true (t.(1) >= 2)

let test_hier_errors () =
  Alcotest.check_raises "no levels" (Invalid_argument "Hier_sim.create: no levels")
    (fun () -> ignore (Hier_sim.create ~capacities:[||] ()));
  let h = Hier_sim.create ~capacities:[| 2 |] () in
  Alcotest.check_raises "bad level" (Invalid_argument "Hier_sim.contains: level out of range")
    (fun () -> ignore (Hier_sim.contains h ~level:2 0))

(* scanning a working set larger than L1 but within L2 costs boundary-1
   traffic on every pass but boundary-2 traffic only once *)
let test_hier_capacity_wall () =
  let h = Hier_sim.create ~capacities:[| 4; 64 |] () in
  for _pass = 1 to 3 do
    for k = 0 to 15 do
      Hier_sim.read h k
    done
  done;
  let t = Hier_sim.traffic h in
  check "L1 misses every pass" (3 * 16) t.(0);
  check "L2 cold only" 16 t.(1)

let test_hier_exclusive_victim_cache () =
  let h = Hier_sim.create ~policy:Hier_sim.Exclusive ~capacities:[| 1; 8 |] () in
  Hier_sim.read h 0;
  (* exclusive: the line lives in L1 only *)
  check_bool "not in L2" false (Hier_sim.contains h ~level:2 0);
  Hier_sim.read h 1;
  (* the clean victim migrates into L2 *)
  check_bool "victim cached" true (Hier_sim.contains h ~level:2 0);
  Hier_sim.read h 0;
  (* served from the victim cache: no new memory traffic *)
  let t = Hier_sim.traffic h in
  check "memory boundary cold only" 2 t.(1);
  (* and the L2 copy moved back in *)
  check_bool "removed from L2 on hit" false (Hier_sim.contains h ~level:2 0)

let test_hier_exclusive_aggregates_capacity () =
  (* working set of 6 over caps [2; 4]: exclusive aggregates to 6 and
     stops missing to memory after the cold pass; inclusive is bounded
     by the L2 capacity of 4 and keeps missing *)
  let run policy =
    let h = Hier_sim.create ~policy ~capacities:[| 2; 4 |] () in
    for _pass = 1 to 4 do
      for k = 0 to 5 do
        Hier_sim.read h k
      done
    done;
    (Hier_sim.traffic h).(1)
  in
  let inclusive = run Hier_sim.Inclusive and exclusive = run Hier_sim.Exclusive in
  check "exclusive cold only" 6 exclusive;
  check_bool "inclusive keeps missing" true (inclusive > 6)

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)

let test_block_owner () =
  let owner = Partitioner.block_owner ~dims:[ 8; 8 ] ~blocks:[ 2; 2 ] in
  check "NW" 0 (owner [ 0; 0 ]);
  check "NE" 1 (owner [ 0; 7 ]);
  check "SW" 2 (owner [ 7; 0 ]);
  check "SE" 3 (owner [ 4; 4 ]);
  (* uneven split: 7 points in 2 blocks -> 4 + 3 *)
  let owner7 = Partitioner.block_owner ~dims:[ 7 ] ~blocks:[ 2 ] in
  check "first chunk" 0 (owner7 [ 3 ]);
  check "second chunk" 1 (owner7 [ 4 ]);
  Alcotest.check_raises "bad coord"
    (Invalid_argument "Partitioner.block_owner: coordinate out of range") (fun () ->
      ignore (owner [ 8; 0 ]))

let test_ghost_words_1d () =
  (* 8 points, 2 blocks, star: points 3 and 4 each cross once *)
  check "1d ghosts" 2 (Partitioner.ghost_words ~dims:[ 8 ] ~blocks:[ 2 ] ~star:true)

let test_ghost_words_2d () =
  (* 8x8 in 2x2 star blocks: each internal face has 8 crossing pairs,
     2 faces x 2 directions = 32 *)
  check "2d star ghosts" 32
    (Partitioner.ghost_words ~dims:[ 8; 8 ] ~blocks:[ 2; 2 ] ~star:true);
  (* box adds the diagonal corner exchanges *)
  check_bool "box adds corners" true
    (Partitioner.ghost_words ~dims:[ 8; 8 ] ~blocks:[ 2; 2 ] ~star:false > 32)

let test_ghost_words_single_block () =
  check "no partition no ghosts" 0
    (Partitioner.ghost_words ~dims:[ 8; 8 ] ~blocks:[ 1; 1 ] ~star:true)

(* ------------------------------------------------------------------ *)
(* Exec                                                                *)

let test_exec_sequential_tree () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let order = Dmc_core.Strategy.default_order g in
  let r = Exec.run g ~order (Exec.sequential ~capacities:[| 4; 1024 |]) in
  check "computed all" 7 r.Exec.computed;
  check_bool "some traffic" true (r.Exec.vertical.(0).(0) > 0);
  check "no horizontal on one node" 0 r.Exec.horizontal_total;
  (* L1 traffic >= leaf loads *)
  check_bool "at least the leaves" true (r.Exec.vertical.(0).(0) >= 8)

let test_exec_large_cache_cold_only () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let order = Dmc_core.Strategy.default_order g in
  let r = Exec.run g ~order (Exec.sequential ~capacities:[| 1024 |]) in
  (* everything fits: traffic = cold loads of 8 leaves + flush of all
     15 produced-or-loaded... leaves are clean, computes dirty *)
  check "cold loads + dirty flush" (8 + 7) (Exec.vertical_total r ~level:1)

let test_exec_multinode_ghosts () =
  let n = 8 and steps = 2 in
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims:[ n; n ] ~steps () in
  let npts = n * n in
  let owner_pt = Partitioner.block_owner ~dims:[ n; n ] ~blocks:[ 2; 2 ] in
  let owner v = owner_pt (Dmc_gen.Grid.coord st.Dmc_gen.Stencil.grid (v mod npts)) in
  let r =
    Exec.run st.Dmc_gen.Stencil.graph
      ~order:(Dmc_gen.Stencil.natural_order st)
      { Exec.capacities = [| 16; 4096 |]; nodes = 4; owner }
  in
  check "ghost words"
    (Partitioner.ghost_words ~dims:[ n; n ] ~blocks:[ 2; 2 ] ~star:true * steps)
    r.Exec.horizontal_total;
  check "per-node sums to total" r.Exec.horizontal_total
    (Array.fold_left ( + ) 0 r.Exec.horizontal_in)

let test_exec_rejects_bad_order () =
  let g = Dmc_gen.Shapes.chain 4 in
  Alcotest.check_raises "not topological" (Invalid_argument "Exec.run: order is not topological")
    (fun () ->
      ignore (Exec.run g ~order:[| 3; 2; 1 |] (Exec.sequential ~capacities:[| 4 |])))

(* ------------------------------------------------------------------ *)
(* Sim_game: the simulator as an explicit, rule-checked game player    *)

let test_sim_game_replays () =
  List.iter
    (fun (g, s) ->
      let order = Dmc_core.Strategy.default_order g in
      let r = Dmc_sim.Sim_game.of_execution g ~order ~s in
      match Dmc_core.Rbw_game.run g ~s r.Dmc_sim.Sim_game.moves with
      | Ok stats -> check "engine io agrees" r.Dmc_sim.Sim_game.io stats.Dmc_core.Rbw_game.io
      | Error e -> Alcotest.fail e.Dmc_core.Rbw_game.reason)
    [
      (Dmc_gen.Shapes.reduction_tree 16, 4);
      (Dmc_gen.Fft.butterfly 4, 6);
      (Dmc_gen.Linalg.matmul 4, 8);
      ((Dmc_gen.Stencil.jacobi_1d ~n:12 ~steps:4).graph, 6);
    ]

let test_sim_game_matches_exec_traffic () =
  let g = Dmc_gen.Fft.butterfly 4 in
  let s = 6 in
  let order = Dmc_core.Strategy.default_order g in
  let game = Dmc_sim.Sim_game.of_execution g ~order ~s in
  let exec = Exec.run g ~order (Exec.sequential ~capacities:[| s; 10_000 |]) in
  (* identical LRU decisions: game I/O = boundary-1 traffic (this graph
     has no unused inputs) *)
  check "word-for-word" exec.Exec.vertical.(0).(0) game.Dmc_sim.Sim_game.io

let test_sim_game_s_too_small () =
  let g = Dmc_gen.Shapes.two_level_fanin ~fanin:4 ~mids:1 in
  Alcotest.check_raises "capacity below working set"
    (Failure "Sim_game.of_execution: operand evicted before the fire (s too small)")
    (fun () ->
      ignore
        (Dmc_sim.Sim_game.of_execution g
           ~order:(Dmc_core.Strategy.default_order g)
           ~s:4))

let prop_sim_game_valid =
  QCheck.Test.make ~name:"synthesized games replay cleanly" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 + Rng.int rng 4 in
      let order = Dmc_core.Strategy.default_order g in
      let r = Dmc_sim.Sim_game.of_execution g ~order ~s in
      match Dmc_core.Rbw_game.run g ~s r.Dmc_sim.Sim_game.moves with
      | Ok stats -> stats.Dmc_core.Rbw_game.io = r.Dmc_sim.Sim_game.io
      | Error _ -> false)

(* the simulator is a valid pebble-game player: its L1 traffic
   dominates the certified lower bound at the same capacity *)
let prop_sim_dominates_lb =
  QCheck.Test.make ~name:"LRU traffic dominates certified bounds" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:5 ~width:4 ~edge_prob:0.4 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let order = Dmc_core.Strategy.default_order g in
      let r = Exec.run g ~order (Exec.sequential ~capacities:[| s; 10_000 |]) in
      let report = Dmc_core.Bounds.analyze g ~s in
      r.Exec.vertical.(0).(0) >= report.Dmc_core.Bounds.best_lb)

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_sim"
    [
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "dirty bits" `Quick test_cache_dirty_bits;
          Alcotest.test_case "refresh no evict" `Quick test_cache_refresh_no_evict;
          Alcotest.test_case "iter order" `Quick test_cache_iter_order;
        ] );
      ( "hier_sim",
        [
          Alcotest.test_case "cold misses" `Quick test_hier_cold_misses;
          Alcotest.test_case "L2 hits" `Quick test_hier_l2_hit;
          Alcotest.test_case "writeback" `Quick test_hier_writeback;
          Alcotest.test_case "errors" `Quick test_hier_errors;
          Alcotest.test_case "capacity wall" `Quick test_hier_capacity_wall;
          Alcotest.test_case "exclusive victim cache" `Quick test_hier_exclusive_victim_cache;
          Alcotest.test_case "exclusive aggregates capacity" `Quick
            test_hier_exclusive_aggregates_capacity;
        ] );
      ( "partitioner",
        [
          Alcotest.test_case "block owner" `Quick test_block_owner;
          Alcotest.test_case "1d ghosts" `Quick test_ghost_words_1d;
          Alcotest.test_case "2d ghosts" `Quick test_ghost_words_2d;
          Alcotest.test_case "single block" `Quick test_ghost_words_single_block;
        ] );
      ( "exec",
        [
          Alcotest.test_case "sequential tree" `Quick test_exec_sequential_tree;
          Alcotest.test_case "large cache" `Quick test_exec_large_cache_cold_only;
          Alcotest.test_case "multinode ghosts" `Quick test_exec_multinode_ghosts;
          Alcotest.test_case "rejects bad order" `Quick test_exec_rejects_bad_order;
        ] );
      ( "sim_game",
        [
          Alcotest.test_case "replays cleanly" `Quick test_sim_game_replays;
          Alcotest.test_case "matches exec traffic" `Quick test_sim_game_matches_exec_traffic;
          Alcotest.test_case "s too small" `Quick test_sim_game_s_too_small;
        ] );
      qsuite "exec-props" [ prop_sim_dominates_lb; prop_sim_game_valid ];
    ]
