(* Tests for the exhaustive optimal-game search — known optima,
   model-relating inequalities, and budget guards. *)

module Cdag = Dmc_cdag.Cdag
module Optimal = Dmc_core.Optimal
module Strategy = Dmc_core.Strategy
module Rng = Dmc_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Known optima                                                        *)

let test_chain () =
  let g = Dmc_gen.Shapes.chain 8 in
  (* a chain with S >= 2 needs exactly its one load and one store *)
  check "rbw chain" 2 (Optimal.rbw_io g ~s:2);
  check "rb chain" 2 (Optimal.rb_io g ~s:2);
  (* with S = 1 the single input can never feed its successor while the
     result is placed — but rule R3 needs both simultaneously, so the
     game needs the input red and one more slot: impossible; the chain
     beyond the input cannot fire.  The search must report failure. *)
  Alcotest.check_raises "S=1 impossible"
    (Optimal.Too_large "Optimal: no complete game found (exhausted states)")
    (fun () -> ignore (Optimal.rbw_io g ~s:1))

let test_diamond_fits () =
  (* Pebbling an n x n grid needs n + 1 pebbles (the advancing
     anti-diagonal plus the cell in flight): at S = 4 the 3x3 diamond
     runs spill-free, at S = 3 it cannot. *)
  let g = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
  check "diamond S=4" 2 (Optimal.rbw_io g ~s:4);
  check_bool "diamond S=3 spills" true (Optimal.rbw_io g ~s:3 > 2)

let test_independent_outputs () =
  (* n independent compute vertices, all outputs: each costs exactly
     one store; fires are free *)
  let g = Dmc_gen.Shapes.independent 4 in
  check "independent" 4 (Optimal.rbw_io g ~s:2)

let test_two_level_fanin () =
  (* 2 inputs shared by 2 mids + 1 out: loads 2, store 1 at S >= 4 *)
  let g = Dmc_gen.Shapes.two_level_fanin ~fanin:2 ~mids:2 in
  check "fanin io" 3 (Optimal.rbw_io g ~s:5)

let test_tree_s_large () =
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  (* with S large there are no spills: 8 loads + 1 store *)
  check "tree no spill" 9 (Optimal.rbw_io g ~s:15);
  check "rb agrees" 9 (Optimal.rb_io g ~s:15)

(* ------------------------------------------------------------------ *)
(* Inequalities between the models                                     *)

(* structural generator: counterexamples shrink to minimal graphs *)
let prop_rb_le_rbw =
  QCheck.Test.make ~name:"forbidding recomputation cannot reduce I/O" ~count:40
    (Dmc_testlib.Gen_cdag.arbitrary ~max_n:9 ())
    (fun spec ->
      let g = Dmc_testlib.Gen_cdag.spec_to_cdag spec in
      let s = Dmc_testlib.Gen_cdag.max_indegree spec + 1 in
      Optimal.rb_io g ~s <= Optimal.rbw_io g ~s)

let prop_optimal_le_strategies =
  QCheck.Test.make ~name:"the optimum is below every strategy" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:9 ~edge_prob:0.3 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 2 in
      let opt = Optimal.rbw_io g ~s in
      opt <= Strategy.io ~policy:Strategy.Belady g ~s
      && opt <= Strategy.io ~policy:Strategy.Lru g ~s
      && opt <= Strategy.trivial_io g)

let prop_optimal_monotone_in_s =
  QCheck.Test.make ~name:"more red pebbles never increase the optimum" ~count:30
    (Dmc_testlib.Gen_cdag.arbitrary ~max_n:9 ())
    (fun spec ->
      let g = Dmc_testlib.Gen_cdag.spec_to_cdag spec in
      let s = Dmc_testlib.Gen_cdag.max_indegree spec + 1 in
      Optimal.rbw_io g ~s:(s + 2) <= Optimal.rbw_io g ~s)

let prop_optimal_ge_floor =
  QCheck.Test.make ~name:"the optimum pays the tagging floor" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.gnp rng ~n:9 ~edge_prob:0.3 in
      let max_indeg =
        Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
      in
      let s = max_indeg + 1 in
      Optimal.rbw_io g ~s >= Dmc_core.Bounds.io_floor g)

(* ------------------------------------------------------------------ *)
(* Theorem 3: tagging arithmetic against the exhaustive optimum        *)

let prop_theorem3_tagging =
  QCheck.Test.make ~name:"Theorem 3: tags only add I/O, within |dI|+|dO|" ~count:25
    (Dmc_testlib.Gen_cdag.arbitrary ~max_n:8 ())
    (fun spec ->
      let g = Dmc_testlib.Gen_cdag.spec_to_cdag spec in
      let s = Dmc_testlib.Gen_cdag.max_indegree spec + 1 in
      (* add an output tag on every vertex and keep inputs as they are:
         dO = non-output vertices *)
      let n = Cdag.n_vertices g in
      let d_o =
        List.filter (fun v -> not (Cdag.is_output g v)) (List.init n Fun.id)
      in
      let g' =
        Cdag.retag g ~inputs:(Cdag.inputs g)
          ~outputs:(Cdag.outputs g @ d_o)
      in
      let io = Optimal.rbw_io g ~s and io' = Optimal.rbw_io g' ~s in
      (* untagging direction: IO(C) <= IO(C'); tagging direction:
         IO(C') - |dO| <= IO(C) *)
      io <= io' && io' - List.length d_o <= io)

let prop_theorem3_input_tagging =
  QCheck.Test.make ~name:"Theorem 3: input tags on sources, same sandwich" ~count:25
    (Dmc_testlib.Gen_cdag.arbitrary ~max_n:8 ())
    (fun spec ->
      let g0 = Dmc_testlib.Gen_cdag.spec_to_cdag spec in
      let s = Dmc_testlib.Gen_cdag.max_indegree spec + 1 in
      (* start from a variant with NO input tags (sources fire freely),
         then tag all sources as inputs *)
      let g = Cdag.retag g0 ~inputs:[] ~outputs:(Cdag.outputs g0) in
      let d_i = Cdag.sources g in
      let g' = Cdag.retag g ~inputs:d_i ~outputs:(Cdag.outputs g) in
      let io = Optimal.rbw_io g ~s and io' = Optimal.rbw_io g' ~s in
      io <= io' && io' - List.length d_i <= io)

(* ------------------------------------------------------------------ *)
(* Balanced-assignment horizontal optimum                              *)

let test_horizontal_chain () =
  (* a compute chain split across 2 balanced processors must cross at
     least once *)
  let g = Dmc_gen.Shapes.chain 9 in
  let cost, assign = Optimal.min_balanced_horizontal g ~procs:2 in
  check "one crossing" 1 cost;
  check "assignment covers all vertices" (Cdag.n_vertices g) (Array.length assign);
  (* the returned assignment realizes the cost: contiguous halves *)
  let crossings = ref 0 in
  Cdag.iter_edges g (fun u v -> if assign.(u) <> assign.(v) then incr crossings);
  check "assignment has one cut edge" 1 !crossings

let test_horizontal_independent_free () =
  (* independent vertices never communicate *)
  let g = Dmc_gen.Shapes.independent 6 in
  let cost, _ = Optimal.min_balanced_horizontal g ~procs:3 in
  check "no communication" 0 cost

let test_horizontal_inputs_free () =
  (* a reduction tree of 8 leaves: the leaves are inputs (free); the 7
     internal adds split 4/3 across 2 procs with one crossing *)
  let g = Dmc_gen.Shapes.reduction_tree 8 in
  let cost, _ = Optimal.min_balanced_horizontal g ~procs:2 in
  check "tree crossing" 1 cost

let test_horizontal_stencil () =
  (* 1D stencil, 2 procs: each step the boundary exchanges one value in
     each direction; contiguous halves are optimal *)
  let st = Dmc_gen.Stencil.jacobi_1d ~n:4 ~steps:2 in
  let cost, _ = Optimal.min_balanced_horizontal st.Dmc_gen.Stencil.graph ~procs:2 in
  (* step 1 -> step 2 crossing: u(1,1) needed by u(2,2) and u(1,2) by
     u(2,1): 2 words (the final step's outputs are not consumed) *)
  check "stencil crossings" 2 cost

let prop_spmd_dominates_optimal =
  QCheck.Test.make ~name:"spmd traffic dominates the balanced optimum" ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Dmc_gen.Random_dag.layered rng ~layers:4 ~width:3 ~edge_prob:0.5 in
      if Cdag.n_compute g > 12 then true
      else begin
        let procs = 2 in
        let cost, assign = Optimal.min_balanced_horizontal g ~procs in
        let max_indeg =
          Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
        in
        let hier =
          Dmc_machine.Hierarchy.create
            [ { Dmc_machine.Hierarchy.count = procs; capacity = max_indeg + 1 };
              { Dmc_machine.Hierarchy.count = procs; capacity = 1_000_000 } ]
        in
        (* run spmd with the optimal assignment itself: measured remote
           gets equal the optimum (the reduction is exact) *)
        let moves =
          Strategy.spmd g hier ~owner:(fun v -> assign.(v)) ()
        in
        match Dmc_core.Prbw_game.run hier g moves with
        | Ok stats -> stats.Dmc_core.Prbw_game.remote_gets >= cost
        | Error _ -> false
      end)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)

let test_size_guards () =
  let big = Dmc_gen.Shapes.diamond ~rows:5 ~cols:5 in
  Alcotest.check_raises "rbw > 20 vertices"
    (Optimal.Too_large "Optimal.rbw_io: more than 20 vertices") (fun () ->
      ignore (Optimal.rbw_io big ~s:4));
  let mid = Dmc_gen.Shapes.diamond ~rows:4 ~cols:5 in
  (* 20 vertices: accepted by rbw, rejected by nothing for rb *)
  ignore (Optimal.rb_io mid ~s:6);
  Alcotest.check_raises "state budget"
    (Optimal.Too_large "Optimal: state budget exhausted") (fun () ->
      ignore (Optimal.rbw_io ~max_states:10 (Dmc_gen.Shapes.reduction_tree 8) ~s:3))

let test_input_validation () =
  let g = Dmc_gen.Shapes.chain 3 in
  Alcotest.check_raises "s must be positive"
    (Invalid_argument "Optimal.rbw_io: s must be positive") (fun () ->
      ignore (Optimal.rbw_io g ~s:0));
  let bad = Cdag.retag g ~inputs:[] ~outputs:[] in
  Alcotest.check_raises "rb needs hong-kung"
    (Invalid_argument "Optimal.rb_io: graph violates the Hong-Kung convention")
    (fun () -> ignore (Optimal.rb_io bad ~s:2))

let qsuite name tests =
  (* fixed qcheck seed so runs are reproducible *)
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
      tests )

let () =
  Alcotest.run "dmc_optimal"
    [
      ( "known-optima",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "diamond" `Quick test_diamond_fits;
          Alcotest.test_case "independent outputs" `Quick test_independent_outputs;
          Alcotest.test_case "two-level fanin" `Quick test_two_level_fanin;
          Alcotest.test_case "tree without spills" `Quick test_tree_s_large;
        ] );
      qsuite "inequalities"
        [
          prop_rb_le_rbw;
          prop_optimal_le_strategies;
          prop_optimal_monotone_in_s;
          prop_optimal_ge_floor;
        ];
      ( "horizontal",
        [
          Alcotest.test_case "chain" `Quick test_horizontal_chain;
          Alcotest.test_case "independent" `Quick test_horizontal_independent_free;
          Alcotest.test_case "tree inputs free" `Quick test_horizontal_inputs_free;
          Alcotest.test_case "stencil" `Quick test_horizontal_stencil;
        ] );
      qsuite "theorem3-props" [ prop_theorem3_tagging; prop_theorem3_input_tagging ];
      qsuite "horizontal-props" [ prop_spmd_dominates_optimal ];
      ( "guards",
        [
          Alcotest.test_case "size guards" `Quick test_size_guards;
          Alcotest.test_case "input validation" `Quick test_input_validation;
        ] );
    ]
