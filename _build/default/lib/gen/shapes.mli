module Cdag := Dmc_cdag.Cdag

(** Small structural CDAG families used as fixtures by the tests, the
    exhaustive-optimal validation experiments, and the related-work
    graph classes (binomial graphs, r-pyramids) mentioned in Section 6. *)

val chain : int -> Cdag.t
(** [chain n]: a path of [n] vertices; first tagged input, last output. *)

val reduction_tree : int -> Cdag.t
(** [reduction_tree leaves]: complete binary reduction over the given
    number of input leaves down to one output. *)

val broadcast_tree : int -> Cdag.t
(** Mirror image of {!reduction_tree}: one input fans out to the given
    number of output leaves. *)

val diamond : rows:int -> cols:int -> Cdag.t
(** The diamond/grid DAG: vertex [(i,j)] depends on [(i-1,j)] and
    [(i,j-1)].  [(0,0)] is the input, [(rows-1, cols-1)] the output. *)

val binomial : int -> Cdag.t
(** [binomial k]: the binomial graph B_k of Ranjan–Savage–Zubair,
    defined recursively — B_0 is a single vertex; B_k joins two copies
    of B_{k-1} with an edge from each vertex of the first copy to its
    twin in the second.  [2^k] vertices, in-degree up to [k]. *)

val pyramid : int -> Cdag.t
(** [pyramid h] is the 2-pyramid of height [h]: row [0] has [h+1] input
    vertices; each row-[r+1] vertex depends on two adjacent row-[r]
    vertices; the apex is the output.  [(h+1)(h+2)/2] vertices. *)

val independent : int -> Cdag.t
(** [independent n]: [n] isolated vertices, each both an input-free
    compute vertex and a tagged output — a degenerate fixture for edge
    cases of the games. *)

val two_level_fanin : fanin:int -> mids:int -> Cdag.t
(** [mids] middle vertices each reading the same [fanin] inputs, and a
    single output reading every middle vertex — a high-sharing fixture
    where tagging choices matter. *)
