module Cdag := Dmc_cdag.Cdag

(** Geometric multigrid V-cycles — the natural extension of the paper's
    solver family (Jacobi smoothing is its inner loop, CG its
    competitor).  The CDAG captures the full cycle structure:

    - [pre] Jacobi smoothing sweeps on each level going down,
    - full-weighting restriction to the next coarser grid,
    - a coarsest-level solve modelled as extra smoothing sweeps,
    - linear-interpolation prolongation plus correction going up,
    - [post] smoothing sweeps after each correction,

    iterated for a number of V-cycles.  Grids coarsen by 2 per level
    along each dimension.  All vertices are per-(grid point, stage), so
    the data-movement analyses (wavefronts, decomposition by cycle,
    measured schedules) apply exactly as for the paper's solvers. *)

type level_trace = {
  level : int;                     (** 0 = finest *)
  pre_smooth : Cdag.vertex array array;
      (** [pre_smooth.(k).(i)]: point [i] after the [k]-th pre-smoothing
          sweep at this level, within the current cycle *)
  post_smooth : Cdag.vertex array array;
  restricted : Cdag.vertex array;  (** the coarse-grid values sent down *)
  corrected : Cdag.vertex array;   (** the fine values after prolongation *)
}

type t = {
  graph : Cdag.t;
  grids : Grid.t array;            (** per level, finest first *)
  cycles : level_trace array array;
      (** [cycles.(c).(l)]: the trace of level [l] within cycle [c] *)
}

val v_cycle :
  ?pre:int -> ?post:int -> ?coarse_sweeps:int ->
  dims:int list -> levels:int -> cycles:int -> unit -> t
(** Defaults: [pre = 2], [post = 2], [coarse_sweeps = 4].  [levels >= 1]
    ([levels = 1] degenerates to plain smoothing); every grid dimension
    must stay positive after [levels - 1] halvings.  The initial guess
    and right-hand side are the inputs; the final fine-grid iterate is
    the output. *)

val work : t -> int
(** Number of compute vertices — the multigrid work per the usual
    geometric-series accounting. *)

val finest_points : t -> int
