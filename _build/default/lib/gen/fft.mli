module Cdag := Dmc_cdag.Cdag

(** The FFT butterfly CDAG — the classic non-trivial example of the
    Hong–Kung paper and of the no-recomputation literature (Savage,
    Ranjan et al.).  Its sequential I/O complexity with fast memory [S]
    is [Θ(n log n / log S)]. *)

val butterfly : int -> Cdag.t
(** [butterfly k] is the [n = 2^k]-input FFT graph: [k] ranks of [n]
    vertices each; the vertex for value [i] at rank [r+1] depends on the
    rank-[r] vertices [i] and [i lxor 2^r].  Inputs are the rank-0
    vertices, outputs the rank-[k] ones.  [(k+1) * 2^k] vertices.
    Raises [Invalid_argument] when [k < 0] or the size overflows. *)

val vertex : k:int -> rank:int -> int -> Cdag.vertex
(** Id of the vertex for value index [i] at the given rank, matching
    the numbering used by {!butterfly}. *)

val bitonic_sort : int -> Cdag.t
(** [bitonic_sort k]: Batcher's bitonic sorting network on [n = 2^k]
    values as a CDAG — the sorting workload of the I/O-complexity
    canon (Aggarwal–Vitter, cited in Section 6).  Each comparator is a
    pair of vertices (min and max outputs) reading the same two wires;
    the network has [k (k + 1) / 2] stages of [n] vertices each, so
    [n (1 + k (k + 1) / 2)] vertices.  Its data-movement behaviour matches
    the FFT's [Θ(n log n / log S)] regime per stage-block. *)

val blocked_order : k:int -> group_bits:int -> Cdag.vertex array
(** The classic I/O-optimal butterfly schedule: the [k] ranks are cut
    into passes of [group_bits] ranks each; within a pass, the [2^k]
    value lines split into independent groups of [2^group_bits] lines
    (the lines whose active index bits vary), and each group's
    sub-butterfly is computed to completion before the next group is
    touched.  With [S = Θ(2^group_bits)] red pebbles this attains
    [Θ(n log n / log S)] I/O — matching {!Dmc_core.Analytic.fft_lb}'s
    shape.  Requires [1 <= group_bits]. *)
