module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

type level_trace = {
  level : int;
  pre_smooth : Cdag.vertex array array;
  post_smooth : Cdag.vertex array array;
  restricted : Cdag.vertex array;
  corrected : Cdag.vertex array;
}

type t = {
  graph : Cdag.t;
  grids : Grid.t array;
  cycles : level_trace array array;
}

let halve dims = List.map (fun n -> (n + 1) / 2) dims

(* Coarse points whose doubled coordinate is within one of the fine
   point's — the stencil of linear interpolation. *)
let coarse_parents fine coarse i =
  let fc = Grid.coord fine i in
  let per_dim =
    List.map2
      (fun x cn ->
        List.sort_uniq compare
          (List.filter_map
             (fun c -> if c >= 0 && c < cn then Some c else None)
             [ (x - 1) / 2; x / 2; (x + 1) / 2 ]))
      fc (Grid.dims coarse)
  in
  (* cartesian product of the per-dimension candidates *)
  let rec product = function
    | [] -> [ [] ]
    | choices :: rest ->
        let tails = product rest in
        List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices
  in
  product per_dim
  |> List.filter_map (fun coords ->
         (* keep only coarse points within interpolation distance 1 *)
         let ok =
           List.for_all2 (fun x c -> abs (x - (2 * c)) <= 1) fc coords
         in
         if ok then Some (Grid.index coarse coords) else None)
  |> List.sort_uniq compare

let v_cycle ?(pre = 2) ?(post = 2) ?(coarse_sweeps = 4) ~dims ~levels ~cycles () =
  if pre < 1 || post < 1 || coarse_sweeps < 1 then invalid_arg "Multigrid.v_cycle";
  if levels < 1 || cycles < 1 then invalid_arg "Multigrid.v_cycle";
  let grids =
    Array.init levels (fun l ->
        let rec h d k = if k = 0 then d else h (halve d) (k - 1) in
        let d = h dims l in
        if List.exists (fun n -> n <= 0) d then
          invalid_arg "Multigrid.v_cycle: too many levels for the grid";
        Grid.create d)
  in
  let b = B.create ~hint:(4 * Grid.size grids.(0) * cycles) () in
  let add_point name l i = B.add_vertex ~label:(Printf.sprintf "%s%d[%d]" name l i) b in
  (* One Jacobi sweep: u'(i) <- f(u on {i} ∪ star(i), rhs(i)); when
     [u] is absent the iterate is implicitly zero (first coarse sweep)
     and only the right-hand side feeds the point. *)
  let smooth name l grid u rhs =
    Array.init (Grid.size grid) (fun i ->
        let v = add_point name l i in
        (match u with
        | Some u ->
            B.add_edge b u.(i) v;
            List.iter (fun j -> B.add_edge b u.(j) v) (Grid.star_neighbors grid i)
        | None -> ());
        B.add_edge b rhs.(i) v;
        v)
  in
  let inputs = ref [] in
  let fresh_vec name grid =
    Array.init (Grid.size grid) (fun i ->
        let v = B.add_vertex ~label:(Printf.sprintf "%s[%d]" name i) b in
        inputs := v :: !inputs;
        v)
  in
  let u0 = fresh_vec "u0" grids.(0) in
  let b0 = fresh_vec "b" grids.(0) in
  let cycle_traces = ref [] in
  let u_fine = ref u0 in
  for _c = 1 to cycles do
    let traces = Array.make levels None in
    (* Descend with the current iterate (None means zero initial guess),
       returning the final iterate at this level. *)
    let rec descend level u rhs =
      let grid = grids.(level) in
      if level = levels - 1 then begin
        (* coarsest: smoothing sweeps stand in for the direct solve *)
        let sweeps = ref [] in
        let u = ref u in
        for k = 1 to coarse_sweeps do
          let u' = smooth (Printf.sprintf "cs%d_" k) level grid !u rhs in
          sweeps := u' :: !sweeps;
          u := Some u'
        done;
        traces.(level) <-
          Some
            {
              level;
              pre_smooth = Array.of_list (List.rev !sweeps);
              post_smooth = [||];
              restricted = [||];
              corrected = [||];
            };
        match !u with Some u -> u | None -> assert false
      end
      else begin
        let pre_sweeps = ref [] in
        let u = ref u in
        for k = 1 to pre do
          let u' = smooth (Printf.sprintf "pre%d_" k) level grid !u rhs in
          pre_sweeps := u' :: !pre_sweeps;
          u := Some u'
        done;
        let u_pre = match !u with Some u -> u | None -> assert false in
        (* restrict the residual: coarse rhs point j reads the fine
           neighborhood of its center 2j plus the fine rhs there *)
        let coarse = grids.(level + 1) in
        let restricted =
          Array.init (Grid.size coarse) (fun j ->
              let v = add_point "r" (level + 1) j in
              let center =
                Grid.index grid
                  (List.map2
                     (fun c n -> min (2 * c) (n - 1))
                     (Grid.coord coarse j) (Grid.dims grid))
              in
              B.add_edge b u_pre.(center) v;
              List.iter
                (fun jn -> B.add_edge b u_pre.(jn) v)
                (Grid.star_neighbors grid center);
              B.add_edge b rhs.(center) v;
              v)
        in
        let coarse_solution = descend (level + 1) None restricted in
        (* prolong and correct *)
        let corrected =
          Array.init (Grid.size grid) (fun i ->
              let v = add_point "c" level i in
              B.add_edge b u_pre.(i) v;
              List.iter
                (fun j -> B.add_edge b coarse_solution.(j) v)
                (coarse_parents grid coarse i);
              v)
        in
        let post_sweeps = ref [] in
        let u = ref (Some corrected) in
        for k = 1 to post do
          let u' = smooth (Printf.sprintf "post%d_" k) level grid !u rhs in
          post_sweeps := u' :: !post_sweeps;
          u := Some u'
        done;
        traces.(level) <-
          Some
            {
              level;
              pre_smooth = Array.of_list (List.rev !pre_sweeps);
              post_smooth = Array.of_list (List.rev !post_sweeps);
              restricted;
              corrected;
            };
        match !u with Some u -> u | None -> assert false
      end
    in
    u_fine := descend 0 (Some !u_fine) b0;
    cycle_traces :=
      Array.map (function Some t -> t | None -> assert false) traces
      :: !cycle_traces
  done;
  let graph =
    B.freeze ~inputs:(List.rev !inputs) ~outputs:(Array.to_list !u_fine) b
  in
  { graph; grids; cycles = Array.of_list (List.rev !cycle_traces) }

let work t = Cdag.n_compute t.graph

let finest_points t = Grid.size t.grids.(0)
