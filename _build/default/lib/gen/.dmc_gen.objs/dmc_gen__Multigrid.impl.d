lib/gen/multigrid.ml: Array Dmc_cdag Grid List Printf
