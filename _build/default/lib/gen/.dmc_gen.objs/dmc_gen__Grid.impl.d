lib/gen/grid.ml: Array List
