lib/gen/solver.mli: Dmc_cdag Grid
