lib/gen/linalg.mli: Dmc_cdag
