lib/gen/random_dag.ml: Array Dmc_cdag Dmc_util Printf
