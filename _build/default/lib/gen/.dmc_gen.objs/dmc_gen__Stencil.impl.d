lib/gen/stencil.ml: Array Dmc_cdag Dmc_util Grid List Printf
