lib/gen/shapes.ml: Array Dmc_cdag List Printf
