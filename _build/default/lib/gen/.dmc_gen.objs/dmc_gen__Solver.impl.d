lib/gen/solver.ml: Array Dmc_cdag Grid List Printf
