lib/gen/fft.ml: Array Dmc_cdag Dmc_util List Printf
