lib/gen/fft.mli: Dmc_cdag
