lib/gen/shapes.mli: Dmc_cdag
