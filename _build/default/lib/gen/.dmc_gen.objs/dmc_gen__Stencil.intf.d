lib/gen/stencil.mli: Dmc_cdag Grid
