lib/gen/grid.mli:
