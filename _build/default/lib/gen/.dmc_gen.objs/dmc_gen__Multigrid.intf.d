lib/gen/multigrid.mli: Dmc_cdag Grid
