lib/gen/linalg.ml: Array Dmc_cdag Dmc_util Hashtbl List Printf
