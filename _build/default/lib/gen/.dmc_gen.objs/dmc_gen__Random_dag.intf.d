lib/gen/random_dag.mli: Dmc_cdag Dmc_util
