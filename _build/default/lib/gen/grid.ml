type t = { dims : int array; strides : int array; size : int }

let create dims_list =
  let dims = Array.of_list dims_list in
  if Array.length dims = 0 then invalid_arg "Grid.create: no dimensions";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Grid.create: non-positive dim") dims;
  let d = Array.length dims in
  let strides = Array.make d 1 in
  for k = d - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  { dims; strides; size = Array.fold_left ( * ) 1 dims }

let dims g = Array.to_list g.dims
let rank g = Array.length g.dims
let size g = g.size

let in_range g coords =
  List.length coords = rank g
  && List.for_all2 (fun c n -> c >= 0 && c < n) coords (dims g)

let index g coords =
  if not (in_range g coords) then invalid_arg "Grid.index: out of range";
  List.fold_left ( + ) 0 (List.mapi (fun k c -> c * g.strides.(k)) coords)

let coord g i =
  if i < 0 || i >= g.size then invalid_arg "Grid.coord: out of range";
  Array.to_list (Array.mapi (fun k s -> i / s mod g.dims.(k)) g.strides)

let star_neighbors g i =
  let c = Array.of_list (coord g i) in
  let out = ref [] in
  for k = rank g - 1 downto 0 do
    List.iter
      (fun delta ->
        let ck = c.(k) + delta in
        if ck >= 0 && ck < g.dims.(k) then out := (i + (delta * g.strides.(k))) :: !out)
      [ -1; 1 ]
  done;
  List.sort compare !out

let box_neighbors g i =
  let d = rank g in
  let c = Array.of_list (coord g i) in
  let out = ref [] in
  (* Enumerate offsets in {-1,0,1}^d via a base-3 counter. *)
  let n_offsets = int_of_float (3.0 ** float_of_int d) in
  for code = 0 to n_offsets - 1 do
    let rest = ref code and ok = ref true and idx = ref 0 and nonzero = ref false in
    for k = d - 1 downto 0 do
      let delta = (!rest mod 3) - 1 in
      rest := !rest / 3;
      if delta <> 0 then nonzero := true;
      let ck = c.(k) + delta in
      if ck < 0 || ck >= g.dims.(k) then ok := false
      else idx := !idx + (delta * g.strides.(k))
    done;
    if !ok && !nonzero then out := (i + !idx) :: !out
  done;
  List.sort compare !out

let iter g f =
  for i = 0 to g.size - 1 do
    f i
  done
