(** Row-major indexing of d-dimensional grids.

    All stencil and solver generators describe vectors as points of an
    [n_1 x ... x n_d] grid; this module centralizes the coordinate
    arithmetic. *)

type t

val create : int list -> t
(** [create dims] with every dimension positive. *)

val dims : t -> int list

val rank : t -> int
(** Number of dimensions [d]. *)

val size : t -> int
(** Total number of points (product of the dimensions). *)

val index : t -> int list -> int
(** Row-major linear index of a coordinate; raises [Invalid_argument]
    when out of range or of the wrong rank. *)

val coord : t -> int -> int list
(** Inverse of {!index}. *)

val in_range : t -> int list -> bool

val star_neighbors : t -> int -> int list
(** Linear indices of the points one step along each axis (the
    [2d]-point von Neumann neighborhood), excluding the point itself;
    boundary points have fewer. *)

val box_neighbors : t -> int -> int list
(** The full Moore neighborhood ([3^d - 1] points), excluding the point
    itself. *)

val iter : t -> (int -> unit) -> unit
(** Apply to every linear index in ascending order. *)
