module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

let vec b name n = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "%s%d" name i) b)

(* Binary reduction tree over [leaves]; returns the root vertex.  A
   single leaf is its own root. *)
let reduce_tree b name leaves =
  let rec level k vs =
    match Array.length vs with
    | 0 -> invalid_arg "reduce_tree: no leaves"
    | 1 -> vs.(0)
    | n ->
        let half = (n + 1) / 2 in
        let next =
          Array.init half (fun i ->
              if (2 * i) + 1 < n then begin
                let v =
                  B.add_vertex ~label:(Printf.sprintf "%s_red%d_%d" name k i) b
                in
                B.add_edge b vs.(2 * i) v;
                B.add_edge b vs.((2 * i) + 1) v;
                v
              end
              else vs.(2 * i))
        in
        level (k + 1) next
  in
  level 0 leaves

let dot_product n =
  if n <= 0 then invalid_arg "Linalg.dot_product";
  let b = B.create ~hint:(3 * n) () in
  let x = vec b "x" n and y = vec b "y" n in
  let mults =
    Array.init n (fun i ->
        let m = B.add_vertex ~label:(Printf.sprintf "m%d" i) b in
        B.add_edge b x.(i) m;
        B.add_edge b y.(i) m;
        m)
  in
  let root = reduce_tree b "dot" mults in
  B.freeze
    ~inputs:(Array.to_list x @ Array.to_list y)
    ~outputs:[ root ] b

let saxpy n =
  if n <= 0 then invalid_arg "Linalg.saxpy";
  let b = B.create ~hint:(3 * n) () in
  let a = B.add_vertex ~label:"a" b in
  let x = vec b "x" n and y = vec b "y" n in
  let outs =
    Array.init n (fun i ->
        let v = B.add_vertex ~label:(Printf.sprintf "z%d" i) b in
        B.add_edge b a v;
        B.add_edge b x.(i) v;
        B.add_edge b y.(i) v;
        v)
  in
  B.freeze
    ~inputs:((a :: Array.to_list x) @ Array.to_list y)
    ~outputs:(Array.to_list outs) b

let outer_product n =
  if n <= 0 then invalid_arg "Linalg.outer_product";
  let b = B.create ~hint:(2 * n * (n + 1)) () in
  let x = vec b "x" n and y = vec b "y" n in
  let outs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      let v = B.add_vertex ~label:(Printf.sprintf "a%d_%d" i j) b in
      B.add_edge b x.(i) v;
      B.add_edge b y.(j) v;
      outs := v :: !outs
    done
  done;
  B.freeze ~inputs:(Array.to_list x @ Array.to_list y) ~outputs:!outs b

(* Shared core of matvec/matmul: an accumulation chain over [n]
   products feeding row/column inputs. *)
let matvec n =
  if n <= 0 then invalid_arg "Linalg.matvec";
  let b = B.create ~hint:(3 * n * n) () in
  let a = Array.init n (fun i -> vec b (Printf.sprintf "a%d_" i) n) in
  let x = vec b "x" n in
  let outs = ref [] in
  for i = 0 to n - 1 do
    let acc = ref (-1) in
    for k = 0 to n - 1 do
      let m = B.add_vertex ~label:(Printf.sprintf "m%d_%d" i k) b in
      B.add_edge b a.(i).(k) m;
      B.add_edge b x.(k) m;
      if !acc < 0 then acc := m
      else begin
        let s = B.add_vertex ~label:(Printf.sprintf "s%d_%d" i k) b in
        B.add_edge b !acc s;
        B.add_edge b m s;
        acc := s
      end
    done;
    outs := !acc :: !outs
  done;
  let inputs =
    Array.to_list x @ List.concat_map Array.to_list (Array.to_list a)
  in
  B.freeze ~inputs ~outputs:(List.rev !outs) b

type mm = {
  mm_graph : Cdag.t;
  mm_n : int;
  a : Cdag.vertex array;
  b : Cdag.vertex array;
  mult : int -> int -> int -> Cdag.vertex;
  acc : int -> int -> int -> Cdag.vertex;
}

let matmul_indexed n =
  if n <= 0 then invalid_arg "Linalg.matmul_indexed";
  let b = B.create ~hint:(4 * n * n * n) () in
  let a_rows = Array.init n (fun i -> vec b (Printf.sprintf "a%d_" i) n) in
  let b_rows = Array.init n (fun i -> vec b (Printf.sprintf "b%d_" i) n) in
  let mults = Array.make (n * n * n) 0 and accs = Array.make (n * n * n) 0 in
  let idx i j k = (((i * n) + j) * n) + k in
  let outs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref (-1) in
      for k = 0 to n - 1 do
        let m = B.add_vertex ~label:(Printf.sprintf "m%d_%d_%d" i j k) b in
        B.add_edge b a_rows.(i).(k) m;
        B.add_edge b b_rows.(k).(j) m;
        mults.(idx i j k) <- m;
        if !acc < 0 then acc := m
        else begin
          let s = B.add_vertex ~label:(Printf.sprintf "c%d_%d_%d" i j k) b in
          B.add_edge b !acc s;
          B.add_edge b m s;
          acc := s
        end;
        accs.(idx i j k) <- !acc
      done;
      outs := !acc :: !outs
    done
  done;
  let inputs =
    List.concat_map Array.to_list (Array.to_list a_rows)
    @ List.concat_map Array.to_list (Array.to_list b_rows)
  in
  let graph = B.freeze ~inputs ~outputs:(List.rev !outs) b in
  let check i j k =
    if i < 0 || i >= n || j < 0 || j >= n || k < 0 || k >= n then
      invalid_arg "Linalg.mm: index out of range"
  in
  {
    mm_graph = graph;
    mm_n = n;
    a = Array.concat (Array.to_list a_rows);
    b = Array.concat (Array.to_list b_rows);
    mult = (fun i j k -> check i j k; mults.(idx i j k));
    acc = (fun i j k -> check i j k; accs.(idx i j k));
  }

let matmul n = (matmul_indexed n).mm_graph

(* Emit the (i,j,k) cells of one rectangular tile in loop order,
   appending the multiply and (for k > 0) the accumulation vertex. *)
let emit_tile mm order (i0, i1) (j0, j1) (k0, k1) =
  for i = i0 to i1 - 1 do
    for j = j0 to j1 - 1 do
      for k = k0 to k1 - 1 do
        Dmc_util.Intvec.push order (mm.mult i j k);
        if k > 0 then Dmc_util.Intvec.push order (mm.acc i j k)
      done
    done
  done

let clipped_ranges n block =
  let blocks = (n + block - 1) / block in
  List.init blocks (fun b -> (b * block, min ((b + 1) * block) n))

let blocked_matmul_order mm ~block =
  if block <= 0 then invalid_arg "Linalg.blocked_matmul_order";
  let n = mm.mm_n in
  let order = Dmc_util.Intvec.create ~initial_capacity:(2 * n * n * n) () in
  let ranges = clipped_ranges n block in
  (* For a fixed (i, j) the accumulation chain must see k ascending;
     iterating k-blocks innermost-ascending within each (i, j) block
     preserves that. *)
  List.iter
    (fun ri ->
      List.iter
        (fun rj ->
          List.iter (fun rk -> emit_tile mm order ri rj rk) ranges)
        ranges)
    ranges;
  Dmc_util.Intvec.to_array order

let blocked2_matmul_order mm ~inner ~outer =
  if inner <= 0 || outer < inner then invalid_arg "Linalg.blocked2_matmul_order";
  let n = mm.mm_n in
  let order = Dmc_util.Intvec.create ~initial_capacity:(2 * n * n * n) () in
  let outer_ranges = clipped_ranges n outer in
  let inner_ranges (lo, hi) =
    let blocks = (hi - lo + inner - 1) / inner in
    List.init blocks (fun b -> (lo + (b * inner), min (lo + ((b + 1) * inner)) hi))
  in
  List.iter
    (fun oi ->
      List.iter
        (fun oj ->
          List.iter
            (fun ok ->
              (* register tiles within the cache tile; k still ascends
                 for each fixed (i, j) across both levels *)
              List.iter
                (fun ii ->
                  List.iter
                    (fun ij ->
                      List.iter
                        (fun ik -> emit_tile mm order ii ij ik)
                        (inner_ranges ok))
                    (inner_ranges oj))
                (inner_ranges oi))
            outer_ranges)
        outer_ranges)
    outer_ranges;
  Dmc_util.Intvec.to_array order

type lu = {
  lu_graph : Cdag.t;
  lu_n : int;
  pivot : int -> Cdag.vertex;
  multiplier : int -> int -> Cdag.vertex;
  update : int -> int -> int -> Cdag.vertex;
}

let lu_factor n =
  if n <= 1 then invalid_arg "Linalg.lu_factor";
  let b = B.create ~hint:(2 * n * n * n / 3) () in
  let cur =
    Array.init n (fun i ->
        Array.init n (fun j -> B.add_vertex ~label:(Printf.sprintf "a%d_%d" i j) b))
  in
  let inputs = Array.to_list cur |> List.concat_map Array.to_list in
  let pivots = Array.make n 0 in
  let mults = Hashtbl.create 64 in
  let updates = Hashtbl.create 256 in
  for k = 0 to n - 2 do
    pivots.(k) <- cur.(k).(k);
    for i = k + 1 to n - 1 do
      let m = B.add_vertex ~label:(Printf.sprintf "l%d_%d" i k) b in
      B.add_edge b cur.(i).(k) m;
      B.add_edge b cur.(k).(k) m;
      Hashtbl.replace mults (i, k) m
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        let u = B.add_vertex ~label:(Printf.sprintf "a%d_%d.%d" i j (k + 1)) b in
        B.add_edge b cur.(i).(j) u;
        B.add_edge b (Hashtbl.find mults (i, k)) u;
        B.add_edge b cur.(k).(j) u;
        Hashtbl.replace updates (i, j, k) u;
        cur.(i).(j) <- u
      done
    done
  done;
  pivots.(n - 1) <- cur.(n - 1).(n - 1);
  (* outputs: the L multipliers and the final U entries (i <= j) *)
  let outputs =
    List.concat
      [
        Hashtbl.fold (fun _ v acc -> v :: acc) mults [];
        List.concat
          (List.init n (fun i -> List.init (n - i) (fun dj -> cur.(i).(i + dj))));
      ]
  in
  let lu_graph = B.freeze ~inputs ~outputs b in
  let check_range msg c = if c < 0 || c >= n then invalid_arg msg in
  {
    lu_graph;
    lu_n = n;
    pivot =
      (fun k ->
        check_range "Linalg.lu.pivot" k;
        pivots.(k));
    multiplier =
      (fun i k ->
        match Hashtbl.find_opt mults (i, k) with
        | Some v -> v
        | None -> invalid_arg "Linalg.lu.multiplier: need i > k");
    update =
      (fun i j k ->
        match Hashtbl.find_opt updates (i, j, k) with
        | Some v -> v
        | None -> invalid_arg "Linalg.lu.update: need i, j > k");
  }

let cholesky n =
  if n <= 1 then invalid_arg "Linalg.cholesky";
  let b = B.create ~hint:(n * n * n / 3) () in
  (* cur.(i).(j) for i >= j: the current value of entry (i, j) *)
  let cur =
    Array.init n (fun i ->
        Array.init (i + 1) (fun j ->
            B.add_vertex ~label:(Printf.sprintf "a%d_%d" i j) b))
  in
  let inputs =
    Array.to_list cur |> List.concat_map Array.to_list
  in
  let l = Array.make_matrix n n 0 in
  for j = 0 to n - 1 do
    (* update column j by every previous column k *)
    for k = 0 to j - 1 do
      for i = j to n - 1 do
        let u = B.add_vertex ~label:(Printf.sprintf "u%d_%d.%d" i j k) b in
        B.add_edge b cur.(i).(j) u;
        B.add_edge b l.(i).(k) u;
        B.add_edge b l.(j).(k) u;
        cur.(i).(j) <- u
      done
    done;
    (* diagonal square root, then scale the column *)
    let d = B.add_vertex ~label:(Printf.sprintf "l%d_%d" j j) b in
    B.add_edge b cur.(j).(j) d;
    l.(j).(j) <- d;
    for i = j + 1 to n - 1 do
      let v = B.add_vertex ~label:(Printf.sprintf "l%d_%d" i j) b in
      B.add_edge b cur.(i).(j) v;
      B.add_edge b d v;
      l.(i).(j) <- v
    done
  done;
  let outputs =
    List.concat (List.init n (fun j -> List.init (n - j) (fun di -> l.(j + di).(j))))
  in
  B.freeze ~inputs ~outputs b

type composite = {
  graph : Cdag.t;
  n : int;
  a_vertices : Cdag.vertex array;
  b_vertices : Cdag.vertex array;
  c_mults : Cdag.vertex array;
  sum_vertex : Cdag.vertex;
}

let composite n =
  if n <= 0 then invalid_arg "Linalg.composite";
  let b = B.create ~hint:(2 * n * n * (n + 2)) () in
  let p = vec b "p" n and q = vec b "q" n in
  let r = vec b "r" n and s = vec b "s" n in
  let rank1 name u v =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let w = B.add_vertex ~label:(Printf.sprintf "%s%d_%d" name i j) b in
        B.add_edge b u.(i) w;
        B.add_edge b v.(j) w;
        w)
  in
  let a_vertices = rank1 "A" p q in
  let b_vertices = rank1 "B" r s in
  (* C = A * B with accumulation chains; the running global sum hangs
     off every completed C element. *)
  let c_mults = Array.make (n * n * n) 0 in
  let sum_acc = ref (-1) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref (-1) in
      for k = 0 to n - 1 do
        let m = B.add_vertex ~label:(Printf.sprintf "m%d_%d_%d" i j k) b in
        c_mults.(((i * n) + j) * n + k) <- m;
        B.add_edge b a_vertices.((i * n) + k) m;
        B.add_edge b b_vertices.((k * n) + j) m;
        if !acc < 0 then acc := m
        else begin
          let t = B.add_vertex ~label:(Printf.sprintf "c%d_%d_%d" i j k) b in
          B.add_edge b !acc t;
          B.add_edge b m t;
          acc := t
        end
      done;
      let t = B.add_vertex ~label:(Printf.sprintf "sum%d_%d" i j) b in
      B.add_edge b !acc t;
      if !sum_acc >= 0 then B.add_edge b !sum_acc t;
      sum_acc := t
    done
  done;
  let inputs =
    Array.to_list p @ Array.to_list q @ Array.to_list r @ Array.to_list s
  in
  let graph = B.freeze ~inputs ~outputs:[ !sum_acc ] b in
  { graph; n; a_vertices; b_vertices; c_mults; sum_vertex = !sum_acc }
