module Cdag := Dmc_cdag.Cdag

(** CDAGs of the iterative linear solvers analyzed in Section 5: sparse
    matrix–vector products on grid Laplacians, Conjugate Gradient
    (Fig. 3) and GMRES (Fig. 4).

    The matrices are never materialized — exactly as the paper assumes
    ("the elements of the matrix are not explicitly stored"): an SpMV
    output point depends directly on the star neighborhood of the input
    vector.  Scalar reductions (dot products, norms) are modeled as
    binary reduction trees.  Each generator returns the distinguished
    scalar vertices that the wavefront arguments of Theorems 8 and 9
    target. *)

val spmv : dims:int list -> Cdag.t
(** One grid-Laplacian SpMV: inputs the vector, outputs [A x];
    output point [i] depends on input points [{i} ∪ star(i)]. *)

(** {1 Tridiagonal direct solve (Thomas algorithm)} *)

type thomas = {
  th_graph : Cdag.t;
  forward : Cdag.vertex array;
      (** the forward-elimination values [e_i]; [e_i] depends on
          [e_{i-1}] and the input [d_i] *)
  solution : Cdag.vertex array;
      (** the back-substituted unknowns [x_i]; [x_i] depends on [e_i]
          and [x_{i+1}] *)
}

val thomas : n:int -> thomas
(** The direct solver for the tridiagonal system of Section 5.1
    (Equation 11), with the matrix coefficients folded into the
    operations as the paper assumes.  The right-hand side is the input
    vector, the unknowns are the outputs.  [3n] vertices.  Structurally
    the CDAG is a forward chain meeting a backward chain, so every
    forward value is live when the backward sweep starts: the minimum
    wavefront at [e_n] is [n], forcing [2(n - S)] I/Os — the classic
    working-set behaviour of direct solvers. *)

(** {1 Conjugate Gradient} *)

type cg_iteration = {
  a_scalar : Cdag.vertex;
      (** the vertex of scalar [a] (line 7 of Fig. 3) — the paper's
          [υ_x], whose minimum wavefront is [2 n^d] *)
  g_scalar : Cdag.vertex;
      (** the vertex of scalar [g] (line 10) — the paper's [υ_y],
          wavefront [n^d] *)
  p_next : Cdag.vertex array;   (** vertices of the updated direction [p] *)
  x_next : Cdag.vertex array;   (** vertices of the updated solution [x] *)
  r_next : Cdag.vertex array;   (** vertices of [r_new] *)
  v_spmv : Cdag.vertex array;   (** vertices of [v = A p] *)
}

type cg = {
  graph : Cdag.t;
  grid : Grid.t;
  iterations : cg_iteration array;
}

val cg : dims:int list -> iters:int -> cg
(** [cg ~dims ~iters] builds [iters] CG iterations over a grid of the
    given dimensions.  Inputs are the initial [x], [r] and [p] vectors;
    outputs are the final [x] and the last residual reduction. *)

(** {1 Chebyshev iteration} *)

type chebyshev_iteration = {
  ch_spmv : Cdag.vertex array;    (** [v = A x] *)
  residual : Cdag.vertex array;   (** [r = b - v], elementwise *)
  ch_x_next : Cdag.vertex array;  (** [x' = x + α r], α a precomputed constant *)
}

type chebyshev = {
  ch_graph : Cdag.t;
  ch_grid : Grid.t;
  ch_iterations : chebyshev_iteration array;
}

val chebyshev : dims:int list -> iters:int -> chebyshev
(** The Chebyshev (stationary second-kind) iteration: the same SpMV
    and vector updates as CG but with {e precomputed} scalar
    coefficients — no dot products, hence no global reductions.  Its
    per-iteration wavefronts are stencil-local instead of CG's
    [2 n^d]-wide dot-product pinch, which is exactly the
    communication-avoiding-Krylov argument: CG's memory wall comes
    from its reductions, not its SpMV.  Inputs are [x_0] and [b];
    outputs the final iterate. *)

(** {1 GMRES} *)

type gmres_iteration = {
  h_diag : Cdag.vertex;
      (** the dot product [h_{i,i} = <w, v_i>] — the paper's [υ_x],
          wavefront [2 n^d] *)
  norm : Cdag.vertex;
      (** [h_{i+1,i} = ||v'||] — the paper's [υ_y], wavefront [n^d] *)
  basis_next : Cdag.vertex array;  (** vertices of [v_{i+1}] *)
  w_spmv : Cdag.vertex array;      (** vertices of [w = A v_i] *)
}

type gmres = {
  graph : Cdag.t;
  grid : Grid.t;
  iterations : gmres_iteration array;
}

val gmres : dims:int list -> iters:int -> gmres
(** [gmres ~dims ~iters] builds the modified-Gram-Schmidt GMRES CDAG of
    Fig. 4 with [iters] outer iterations: per iteration one SpMV,
    [i + 1] dot products against all previous basis vectors, the
    orthogonalization chain, the norm, and the normalization.  Inputs
    are the initial basis vector [v_0]; outputs are the final basis
    vector and the Hessenberg scalars. *)
