module Cdag := Dmc_cdag.Cdag

(** CDAG generators for the dense linear-algebra kernels analyzed in
    Sections 2–3 of the paper. *)

val dot_product : int -> Cdag.t
(** [dot_product n]: inputs [x_0..x_{n-1}], [y_0..y_{n-1}], one multiply
    vertex per element and a binary reduction tree to a single tagged
    output.  [4n - 1] vertices. *)

val saxpy : int -> Cdag.t
(** [saxpy n]: inputs scalar [a] and vectors [x], [y]; outputs
    [y_i + a*x_i], one compute vertex per element. *)

val outer_product : int -> Cdag.t
(** [outer_product n]: inputs two [n]-vectors, outputs the [n^2]
    products.  Data movement is inherently [2n + n^2] (Sec. 3). *)

val matvec : int -> Cdag.t
(** [matvec n]: dense [n x n] matrix times [n]-vector, with multiply
    vertices and per-row accumulation chains. *)

val matmul : int -> Cdag.t
(** [matmul n]: the classical [n^3] algorithm — a multiply vertex per
    [(i,j,k)] and a length-[n] accumulation chain per [(i,j)].  Inputs
    are the [2n^2] matrix elements, outputs the [n^2] results.  The
    asymptotic I/O lower bound is [n^3 / (2 sqrt(2S))] (Sec. 3). *)

type mm = {
  mm_graph : Cdag.t;
  mm_n : int;
  a : Cdag.vertex array;      (** inputs of A, row-major [n x n] *)
  b : Cdag.vertex array;      (** inputs of B *)
  mult : int -> int -> int -> Cdag.vertex;
      (** [mult i j k] is the product vertex [a_ik * b_kj] *)
  acc : int -> int -> int -> Cdag.vertex;
      (** [acc i j k] is the running sum after adding [mult i j k];
          [acc i j 0 = mult i j 0], and [acc i j (n-1)] is the tagged
          output [c_ij] *)
}

val matmul_indexed : int -> mm
(** Same CDAG as {!matmul}, with the index maps needed by the blocked
    execution order. *)

val blocked_matmul_order : mm -> block:int -> Cdag.vertex array
(** A topological order of the compute vertices following the
    classical [b x b x b]-blocked loop nest.  Played against a pebble
    game with [S = Θ(b^2)] red pebbles it attains the [Θ(n^3/sqrt S)]
    upper bound matching the Hong–Kung lower bound. *)

val blocked2_matmul_order : mm -> inner:int -> outer:int -> Cdag.vertex array
(** Two-level blocking: [outer]-sized cache tiles subdivided into
    [inner]-sized register tiles ([inner] need not divide [outer]; both
    positive, [inner <= outer]).  Driven through the three-level
    scheduler this attains [Θ(n^3/sqrt S_1)] traffic at the register
    boundary and [Θ(n^3/sqrt S_2)] at the cache boundary
    simultaneously — the multi-level tightness behind Theorems 5/6. *)

type lu = {
  lu_graph : Cdag.t;
  lu_n : int;
  pivot : int -> Cdag.vertex;
      (** [pivot k]: the value of [a_kk] at the start of step [k] *)
  multiplier : int -> int -> Cdag.vertex;
      (** [multiplier i k = a_ik / a_kk], the [L] entry, for [i > k] *)
  update : int -> int -> int -> Cdag.vertex;
      (** [update i j k]: [a_ij] after step [k]'s rank-1 update, for
          [i, j > k] *)
}

val lu_factor : int -> lu
(** Right-looking LU factorization without pivoting of an [n x n]
    matrix: step [k] computes the column of multipliers
    [l_ik = a_ik / a_kk] and the rank-1 Schur update
    [a_ij - l_ik a_kj].  Inputs are the [n^2] matrix entries, outputs
    the [L] multipliers and the [U] rows (each entry's final value).
    [n^2 + n(n-1)/2 + Σ_k (n-1-k)^2] vertices; the communication lower
    bound is [Θ(n^3 / sqrt S)], the same regime as matrix
    multiplication (Demmel et al., cited in Section 6). *)

val cholesky : int -> Cdag.t
(** Left-looking Cholesky factorization of an [n x n] symmetric matrix
    (lower triangle stored): column [j] is updated by all columns
    [k < j] ([a_ij - l_ik l_jk]), then scaled by the diagonal square
    root.  Inputs are the [n(n+1)/2] lower-triangle entries, outputs
    the [L] factor.  Same [Θ(n^3 / sqrt S)] communication regime as LU
    with half the work. *)

type composite = {
  graph : Cdag.t;
  n : int;
  a_vertices : Cdag.vertex array;  (** A = p q^T, row-major [n x n] *)
  b_vertices : Cdag.vertex array;  (** B = r s^T *)
  c_mults : Cdag.vertex array;     (** multiply vertices of C = AB, [(i,j,k)] row-major *)
  sum_vertex : Cdag.vertex;        (** the final accumulation result *)
}

val composite : int -> composite
(** The motivating example of Section 3:

    {v
    A = p q^T;  B = r s^T;  C = A B;  sum = Σ_ij C_ij
    v}

    Inputs are the four [n]-vectors, the single output is [sum].  With
    [4n + 4] fast-memory words the whole computation needs only
    [4n + 1] I/Os even though the embedded matrix multiplication alone
    has an [n^3/(2 sqrt(2S))] bound — the example that motivates the
    RBW decomposition machinery.  Note the CDAG here forbids
    recomputation (RBW), so the paper's 4n+1 game is not literally
    playable; the point reproduced by the benches is that the composite
    bound is far below the sum of per-step Hong–Kung bounds. *)
