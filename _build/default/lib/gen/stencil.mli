module Cdag := Dmc_cdag.Cdag

(** CDAG generators for iterative stencil (Jacobi-style) computations
    on d-dimensional grids — the workload of Section 5.4 and the
    heat-equation discretization of Section 5.1. *)

type shape =
  | Star  (** von Neumann neighborhood: [2d + 1] points (5-point in 2D) *)
  | Box   (** Moore neighborhood: [3^d] points (9-point in 2D) *)

type t = {
  graph : Cdag.t;
  grid : Grid.t;
  steps : int;
  vertex : int -> int -> Cdag.vertex;
      (** [vertex t i] is the vertex of grid point [i] at time [t],
          with [t = 0] the inputs and [t = steps] the outputs. *)
}

val jacobi : ?shape:shape -> dims:int list -> steps:int -> unit -> t
(** [jacobi ~dims ~steps ()] builds the CDAG with one vertex per
    (time, grid point): point [p] at time [t+1] depends on [p] and its
    neighbors at time [t].  Time-0 vertices are tagged inputs, final
    ones outputs.  Theorem 10 gives the I/O lower bound
    [n^d T / (4 P (2S)^{1/d})] for these CDAGs. *)

val jacobi_1d : n:int -> steps:int -> t
(** 3-point stencil on a bar of [n] points — the discretized heat
    equation of Fig. 2. *)

val jacobi_2d : ?shape:shape -> n:int -> steps:int -> unit -> t
(** [n x n] grid; [Box] gives the paper's 9-point variant. *)

val jacobi_3d : n:int -> steps:int -> t
(** [n^3] star stencil. *)

val natural_order : t -> Cdag.vertex array
(** The untiled execution order: full time sweeps, points in row-major
    order within each step.  Exposes no temporal reuse, so its I/O is
    [Θ(n^d)] per step — the baseline the tiled order is compared to. *)

val skewed_order : t -> tile:int -> Cdag.vertex array
(** A topological order of the compute vertices following skewed
    (parallelogram) space-time tiles of spatial side [tile] and
    temporal height [tile]: tile [(band, k_1..k_d)] holds grid point
    [x] at local time [τ] when [x_j + τ ∈ [k_j*tile, (k_j+1)*tile)].
    Sliding each tile window one step back in space per time step makes
    every dependence point into the same tile or an
    already-processed one, so the order is topological; with
    [S = Θ(tile^d)] red pebbles it attains the [Θ(n^d T / S^{1/d})]
    I/O upper bound that matches Theorem 10's lower bound.  Raises
    [Invalid_argument] when [tile <= 0]. *)
