module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder
module Rng = Dmc_util.Rng

let layered rng ~layers ~width ~edge_prob =
  if layers <= 0 || width <= 0 then invalid_arg "Random_dag.layered";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Random_dag.layered: probability out of range";
  let b = B.create ~hint:(layers * width) () in
  let rows =
    Array.init layers (fun l ->
        let w = 1 + Rng.int rng width in
        Array.init w (fun i ->
            B.add_vertex ~label:(Printf.sprintf "r%d_%d" l i) b))
  in
  for l = 0 to layers - 2 do
    Array.iter
      (fun dst ->
        let connected = ref false in
        Array.iter
          (fun src ->
            if Rng.float rng 1.0 < edge_prob then begin
              B.add_edge b src dst;
              connected := true
            end)
          rows.(l);
        if not !connected then B.add_edge b (Rng.pick rng rows.(l)) dst)
      rows.(l + 1)
  done;
  B.freeze b

let gnp rng ~n ~edge_prob =
  if n <= 0 then invalid_arg "Random_dag.gnp";
  let b = B.create ~hint:n () in
  let vs = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "g%d" i) b) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < edge_prob then B.add_edge b vs.(i) vs.(j)
    done
  done;
  B.freeze b

let connected_dag rng ~n ~extra_edges =
  if n <= 0 then invalid_arg "Random_dag.connected_dag";
  let b = B.create ~hint:n () in
  let vs = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "t%d" i) b) in
  for j = 1 to n - 1 do
    B.add_edge b vs.(Rng.int rng j) vs.(j)
  done;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra_edges && !attempts < 20 * (extra_edges + 1) do
    incr attempts;
    if n >= 2 then begin
      let i = Rng.int rng (n - 1) in
      let j = i + 1 + Rng.int rng (n - 1 - i) in
      if not (Cdag.Builder.n_vertices b = 0) then begin
        B.add_edge b vs.(i) vs.(j);
        incr added
      end
    end
  done;
  B.freeze b
