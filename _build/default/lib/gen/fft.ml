module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

let vertex ~k ~rank i =
  if rank < 0 || rank > k then invalid_arg "Fft.vertex: rank out of range";
  let n = 1 lsl k in
  if i < 0 || i >= n then invalid_arg "Fft.vertex: index out of range";
  (rank * n) + i

let bitonic_sort k =
  if k < 0 || k > 12 then invalid_arg "Fft.bitonic_sort: size out of range";
  let n = 1 lsl k in
  let b = Cdag.Builder.create ~hint:(n * (1 + (k * (k + 1)))) () in
  let wires = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "in%d" i) b) in
  let inputs = Array.to_list wires in
  (* Batcher's network: stage (p, q) with q = p, p-1, ..., 0 compares
     wire i with wire (i xor 2^q); each comparator yields two fresh
     vertices reading both wires. *)
  for p = 0 to k - 1 do
    for q = p downto 0 do
      let stride = 1 lsl q in
      let next = Array.copy wires in
      for i = 0 to n - 1 do
        let j = i lxor stride in
        if i < j then begin
          let lo = B.add_vertex ~label:(Printf.sprintf "min[%d,%d]" p i) b in
          let hi = B.add_vertex ~label:(Printf.sprintf "max[%d,%d]" p i) b in
          B.add_edge b wires.(i) lo;
          B.add_edge b wires.(j) lo;
          B.add_edge b wires.(i) hi;
          B.add_edge b wires.(j) hi;
          next.(i) <- lo;
          next.(j) <- hi
        end
      done;
      Array.blit next 0 wires 0 n
    done
  done;
  B.freeze ~inputs ~outputs:(Array.to_list wires) b

let blocked_order ~k ~group_bits =
  if group_bits < 1 then invalid_arg "Fft.blocked_order";
  let n = 1 lsl k in
  let order = Dmc_util.Intvec.create ~initial_capacity:(k * n) () in
  let rank = ref 0 in
  while !rank < k do
    let hi = min k (!rank + group_bits) in
    let active = hi - !rank in
    (* Enumerate the groups: all settings of the inactive index bits.
       A group's members share those bits and range over the active
       ones [rank .. hi-1]. *)
    let n_groups = n lsr active in
    for group = 0 to n_groups - 1 do
      (* spread the group's bits around the active window *)
      let low_mask = (1 lsl !rank) - 1 in
      let low = group land low_mask in
      let high = (group lsr !rank) lsl hi in
      for r = !rank to hi - 1 do
        for a = 0 to (1 lsl active) - 1 do
          let i = high lor (a lsl !rank) lor low in
          Dmc_util.Intvec.push order (vertex ~k ~rank:(r + 1) i)
        done
      done
    done;
    rank := hi
  done;
  Dmc_util.Intvec.to_array order

let butterfly k =
  if k < 0 || k > 24 then invalid_arg "Fft.butterfly: size out of range";
  let n = 1 lsl k in
  let b = B.create ~hint:((k + 1) * n) () in
  for rank = 0 to k do
    for i = 0 to n - 1 do
      ignore (B.add_vertex ~label:(Printf.sprintf "f[r%d,%d]" rank i) b)
    done
  done;
  for rank = 0 to k - 1 do
    for i = 0 to n - 1 do
      let dst = vertex ~k ~rank:(rank + 1) i in
      B.add_edge b (vertex ~k ~rank i) dst;
      B.add_edge b (vertex ~k ~rank (i lxor (1 lsl rank))) dst
    done
  done;
  let rank_slice r = List.init n (fun i -> vertex ~k ~rank:r i) in
  B.freeze ~inputs:(rank_slice 0) ~outputs:(rank_slice k) b
