module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

let chain n =
  if n <= 0 then invalid_arg "Shapes.chain";
  let b = B.create ~hint:n () in
  let vs = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "c%d" i) b) in
  for i = 0 to n - 2 do
    B.add_edge b vs.(i) vs.(i + 1)
  done;
  B.freeze ~inputs:[ vs.(0) ] ~outputs:[ vs.(n - 1) ] b

let reduction_tree leaves =
  if leaves <= 0 then invalid_arg "Shapes.reduction_tree";
  let b = B.create ~hint:(2 * leaves) () in
  let ins =
    Array.init leaves (fun i -> B.add_vertex ~label:(Printf.sprintf "in%d" i) b)
  in
  let rec reduce vs =
    match Array.length vs with
    | 1 -> vs.(0)
    | n ->
        let half = (n + 1) / 2 in
        reduce
          (Array.init half (fun i ->
               if (2 * i) + 1 < n then begin
                 let v = B.add_vertex b in
                 B.add_edge b vs.(2 * i) v;
                 B.add_edge b vs.((2 * i) + 1) v;
                 v
               end
               else vs.(2 * i)))
  in
  let root = reduce ins in
  B.freeze ~inputs:(Array.to_list ins) ~outputs:[ root ] b

let broadcast_tree leaves =
  if leaves <= 0 then invalid_arg "Shapes.broadcast_tree";
  let b = B.create ~hint:(2 * leaves) () in
  let root = B.add_vertex ~label:"root" b in
  (* Grow a complete binary fan-out until we have [leaves] frontier
     vertices. *)
  let frontier = ref [ root ] in
  while List.length !frontier < leaves do
    let need = leaves - List.length !frontier in
    let expanded, kept =
      match !frontier with
      | [] -> assert false
      | v :: rest ->
          let c1 = B.add_vertex b and c2 = B.add_vertex b in
          B.add_edge b v c1;
          B.add_edge b v c2;
          ignore need;
          ([ c1; c2 ], rest)
    in
    frontier := kept @ expanded
  done;
  B.freeze ~inputs:[ root ] ~outputs:!frontier b

let diamond ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Shapes.diamond";
  let b = B.create ~hint:(rows * cols) () in
  let id i j = (i * cols) + j in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      ignore (B.add_vertex ~label:(Printf.sprintf "d%d_%d" i j) b)
    done
  done;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i > 0 then B.add_edge b (id (i - 1) j) (id i j);
      if j > 0 then B.add_edge b (id i (j - 1)) (id i j)
    done
  done;
  B.freeze ~inputs:[ id 0 0 ] ~outputs:[ id (rows - 1) (cols - 1) ] b

let binomial k =
  if k < 0 || k > 20 then invalid_arg "Shapes.binomial";
  let n = 1 lsl k in
  let b = B.create ~hint:n () in
  for i = 0 to n - 1 do
    ignore (B.add_vertex ~label:(Printf.sprintf "b%d" i) b)
  done;
  (* Vertex i of copy 2 is i + 2^{r} at recursion level r; unrolled,
     vertex j has an edge to j + 2^r whenever bit r of j is 0. *)
  for j = 0 to n - 1 do
    for r = 0 to k - 1 do
      if j land (1 lsl r) = 0 then B.add_edge b j (j + (1 lsl r))
    done
  done;
  B.freeze b

let pyramid h =
  if h < 0 then invalid_arg "Shapes.pyramid";
  let b = B.create ~hint:((h + 1) * (h + 2) / 2) () in
  let rows =
    Array.init (h + 1) (fun r ->
        Array.init (h + 1 - r) (fun i ->
            B.add_vertex ~label:(Printf.sprintf "p%d_%d" r i) b))
  in
  for r = 0 to h - 1 do
    Array.iteri
      (fun i v ->
        B.add_edge b rows.(r).(i) v;
        B.add_edge b rows.(r).(i + 1) v)
      rows.(r + 1)
  done;
  B.freeze
    ~inputs:(Array.to_list rows.(0))
    ~outputs:[ rows.(h).(0) ]
    b

let independent n =
  if n <= 0 then invalid_arg "Shapes.independent";
  let b = B.create ~hint:n () in
  let vs = List.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "i%d" i) b) in
  B.freeze ~inputs:[] ~outputs:vs b

let two_level_fanin ~fanin ~mids =
  if fanin <= 0 || mids <= 0 then invalid_arg "Shapes.two_level_fanin";
  let b = B.create ~hint:(fanin + mids + 1) () in
  let ins = Array.init fanin (fun i -> B.add_vertex ~label:(Printf.sprintf "x%d" i) b) in
  let mid =
    Array.init mids (fun i ->
        let v = B.add_vertex ~label:(Printf.sprintf "y%d" i) b in
        Array.iter (fun u -> B.add_edge b u v) ins;
        v)
  in
  let out = B.add_vertex ~label:"z" b in
  Array.iter (fun v -> B.add_edge b v out) mid;
  B.freeze ~inputs:(Array.to_list ins) ~outputs:[ out ] b
