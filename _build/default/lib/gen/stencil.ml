module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

type shape = Star | Box

type t = {
  graph : Cdag.t;
  grid : Grid.t;
  steps : int;
  vertex : int -> int -> Cdag.vertex;
}

let jacobi ?(shape = Star) ~dims ~steps () =
  if steps < 1 then invalid_arg "Stencil.jacobi: steps must be >= 1";
  let grid = Grid.create dims in
  let npts = Grid.size grid in
  let b = B.create ~hint:(npts * (steps + 1)) () in
  let vertex_of = Array.make ((steps + 1) * npts) 0 in
  let vid t i = vertex_of.((t * npts) + i) in
  for t = 0 to steps do
    Grid.iter grid (fun i ->
        let v = B.add_vertex ~label:(Printf.sprintf "u[t%d,%d]" t i) b in
        vertex_of.((t * npts) + i) <- v)
  done;
  let neighbors =
    match shape with
    | Star -> Grid.star_neighbors grid
    | Box -> Grid.box_neighbors grid
  in
  for t = 0 to steps - 1 do
    Grid.iter grid (fun i ->
        let dst = vid (t + 1) i in
        B.add_edge b (vid t i) dst;
        List.iter (fun j -> B.add_edge b (vid t j) dst) (neighbors i))
  done;
  let time_slice t =
    List.init npts (fun i -> vid t i)
  in
  let graph =
    B.freeze ~inputs:(time_slice 0) ~outputs:(time_slice steps) b
  in
  {
    graph;
    grid;
    steps;
    vertex =
      (fun t i ->
        if t < 0 || t > steps || i < 0 || i >= npts then
          invalid_arg "Stencil.vertex: out of range";
        vid t i);
  }

let natural_order st =
  let npts = Grid.size st.grid in
  let order = Array.make (st.steps * npts) 0 in
  for t = 1 to st.steps do
    for i = 0 to npts - 1 do
      order.(((t - 1) * npts) + i) <- st.vertex t i
    done
  done;
  order

let skewed_order st ~tile =
  if tile <= 0 then invalid_arg "Stencil.skewed_order";
  let grid = st.grid in
  let dims = Array.of_list (Grid.dims grid) in
  let d = Array.length dims in
  let order = Dmc_util.Intvec.create ~initial_capacity:(st.steps * Grid.size grid) () in
  let n_bands = (st.steps + tile - 1) / tile in
  (* Per-dimension tile-index bound: x_j + tau <= n_j - 1 + tile - 1. *)
  let kmax = Array.map (fun n -> (n - 1 + tile - 1) / tile) dims in
  let k = Array.make d 0 in
  (* Emit the points of tile [k] at local time [tau] of band [band]:
     x_j in [k_j*tile - tau, (k_j+1)*tile - tau) clipped to the grid. *)
  let emit_tile band =
    for tau = 0 to tile - 1 do
      let t = (band * tile) + tau + 1 in
      if t <= st.steps then begin
        let lo = Array.map (fun kj -> max 0 ((kj * tile) - tau)) k in
        let hi =
          Array.mapi (fun j kj -> min dims.(j) (((kj + 1) * tile) - tau)) k
        in
        let rec points j coord_base =
          if j = d then Dmc_util.Intvec.push order (st.vertex t coord_base)
          else
            for xj = lo.(j) to hi.(j) - 1 do
              points (j + 1) ((coord_base * dims.(j)) + xj)
            done
        in
        if Array.for_all2 (fun l h -> l < h) lo hi then points 0 0
      end
    done
  in
  (* Lexicographic sweep over tile indices for each band. *)
  let rec tiles band j =
    if j = d then emit_tile band
    else
      for kj = 0 to kmax.(j) do
        k.(j) <- kj;
        tiles band (j + 1)
      done
  in
  for band = 0 to n_bands - 1 do
    tiles band 0
  done;
  Dmc_util.Intvec.to_array order

let jacobi_1d ~n ~steps = jacobi ~shape:Star ~dims:[ n ] ~steps ()

let jacobi_2d ?(shape = Box) ~n ~steps () = jacobi ~shape ~dims:[ n; n ] ~steps ()

let jacobi_3d ~n ~steps = jacobi ~shape:Star ~dims:[ n; n; n ] ~steps ()
