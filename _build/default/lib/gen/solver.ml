module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder

let add_vec b name n =
  Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "%s[%d]" name i) b)

(* Binary reduction tree; returns the root (the single leaf when n=1). *)
let reduce b name leaves =
  let rec go vs =
    match Array.length vs with
    | 0 -> invalid_arg "Solver.reduce: empty"
    | 1 -> vs.(0)
    | n ->
        go
          (Array.init ((n + 1) / 2) (fun i ->
               if (2 * i) + 1 < n then begin
                 let v = B.add_vertex ~label:(name ^ "+") b in
                 B.add_edge b vs.(2 * i) v;
                 B.add_edge b vs.((2 * i) + 1) v;
                 v
               end
               else vs.(2 * i)))
  in
  go leaves

(* Dot product <x, y> as mults + reduction; x and y may alias (norm). *)
let dot b name x y =
  let n = Array.length x in
  let mults =
    Array.init n (fun i ->
        let m = B.add_vertex ~label:(Printf.sprintf "%s*%d" name i) b in
        B.add_edge b x.(i) m;
        if y.(i) <> x.(i) then B.add_edge b y.(i) m;
        m)
  in
  reduce b name mults

(* Grid-Laplacian SpMV: out[i] <- preds {i} ∪ star(i) of [x]. *)
let spmv_into b name grid x =
  Array.init (Grid.size grid) (fun i ->
      let v = B.add_vertex ~label:(Printf.sprintf "%s[%d]" name i) b in
      B.add_edge b x.(i) v;
      List.iter (fun j -> B.add_edge b x.(j) v) (Grid.star_neighbors grid i);
      v)

let spmv ~dims =
  let grid = Grid.create dims in
  let b = B.create ~hint:(2 * Grid.size grid) () in
  let x = add_vec b "x" (Grid.size grid) in
  let y = spmv_into b "y" grid x in
  B.freeze ~inputs:(Array.to_list x) ~outputs:(Array.to_list y) b

(* Elementwise ternary update out[i] <- f(u[i], scalar, w[i]). *)
let axpy_like b name u scalar w =
  Array.init (Array.length u) (fun i ->
      let v = B.add_vertex ~label:(Printf.sprintf "%s[%d]" name i) b in
      B.add_edge b u.(i) v;
      B.add_edge b scalar v;
      B.add_edge b w.(i) v;
      v)

type thomas = {
  th_graph : Cdag.t;
  forward : Cdag.vertex array;
  solution : Cdag.vertex array;
}

let thomas ~n =
  if n <= 0 then invalid_arg "Solver.thomas";
  let b = B.create ~hint:(3 * n) () in
  let d = add_vec b "d" n in
  let forward =
    Array.init n (fun i ->
        let e = B.add_vertex ~label:(Printf.sprintf "e[%d]" i) b in
        B.add_edge b d.(i) e;
        e)
  in
  for i = 1 to n - 1 do
    B.add_edge b forward.(i - 1) forward.(i)
  done;
  let solution = Array.make n 0 in
  for i = n - 1 downto 0 do
    let x = B.add_vertex ~label:(Printf.sprintf "x[%d]" i) b in
    B.add_edge b forward.(i) x;
    if i < n - 1 then B.add_edge b solution.(i + 1) x;
    solution.(i) <- x
  done;
  let th_graph =
    B.freeze ~inputs:(Array.to_list d) ~outputs:(Array.to_list solution) b
  in
  { th_graph; forward; solution }

type cg_iteration = {
  a_scalar : Cdag.vertex;
  g_scalar : Cdag.vertex;
  p_next : Cdag.vertex array;
  x_next : Cdag.vertex array;
  r_next : Cdag.vertex array;
  v_spmv : Cdag.vertex array;
}

type cg = {
  graph : Cdag.t;
  grid : Grid.t;
  iterations : cg_iteration array;
}

let cg ~dims ~iters =
  if iters < 1 then invalid_arg "Solver.cg: iters must be >= 1";
  let grid = Grid.create dims in
  let n = Grid.size grid in
  let b = B.create ~hint:(8 * n * iters) () in
  let x0 = add_vec b "x0" n and r0 = add_vec b "r0" n and p0 = add_vec b "p0" n in
  let x = ref x0 and r = ref r0 and p = ref p0 in
  let prev_rr = ref None in
  let iterations =
    Array.init iters (fun t ->
        let tag s = Printf.sprintf "%s.%d" s t in
        let v_spmv = spmv_into b (tag "v") grid !p in
        (* a <- <r,r> / <p,v> *)
        let rr =
          match !prev_rr with
          | Some rr -> rr   (* <r,r> = <rnew,rnew> of the previous step *)
          | None -> dot b (tag "rr") !r !r
        in
        let pv = dot b (tag "pv") !p v_spmv in
        let a_scalar = B.add_vertex ~label:(tag "a") b in
        B.add_edge b rr a_scalar;
        B.add_edge b pv a_scalar;
        (* x <- x + a p;  rnew <- r - a v *)
        let x_next = axpy_like b (tag "x") !x a_scalar !p in
        let r_next = axpy_like b (tag "rnew") !r a_scalar v_spmv in
        (* g <- <rnew,rnew> / <r,r> *)
        let rnew2 = dot b (tag "rnew2") r_next r_next in
        let g_scalar = B.add_vertex ~label:(tag "g") b in
        B.add_edge b rnew2 g_scalar;
        B.add_edge b rr g_scalar;
        (* p <- rnew + g p *)
        let p_next = axpy_like b (tag "p") r_next g_scalar !p in
        x := x_next;
        r := r_next;
        p := p_next;
        prev_rr := Some rnew2;
        { a_scalar; g_scalar; p_next; x_next; r_next; v_spmv })
  in
  let inputs =
    Array.to_list x0 @ Array.to_list r0 @ Array.to_list p0
  in
  let final_rr = match !prev_rr with Some v -> v | None -> assert false in
  let outputs = Array.to_list !x @ [ final_rr ] in
  let graph = B.freeze ~inputs ~outputs b in
  { graph; grid; iterations }

type chebyshev_iteration = {
  ch_spmv : Cdag.vertex array;
  residual : Cdag.vertex array;
  ch_x_next : Cdag.vertex array;
}

type chebyshev = {
  ch_graph : Cdag.t;
  ch_grid : Grid.t;
  ch_iterations : chebyshev_iteration array;
}

let chebyshev ~dims ~iters =
  if iters < 1 then invalid_arg "Solver.chebyshev: iters must be >= 1";
  let grid = Grid.create dims in
  let n = Grid.size grid in
  let b = B.create ~hint:(4 * n * iters) () in
  let x0 = add_vec b "x0" n and rhs = add_vec b "b" n in
  let x = ref x0 in
  let ch_iterations =
    Array.init iters (fun t ->
        let tag s = Printf.sprintf "%s.%d" s t in
        let ch_spmv = spmv_into b (tag "v") grid !x in
        let residual =
          Array.init n (fun i ->
              let v = B.add_vertex ~label:(Printf.sprintf "r.%d[%d]" t i) b in
              B.add_edge b rhs.(i) v;
              B.add_edge b ch_spmv.(i) v;
              v)
        in
        let ch_x_next =
          Array.init n (fun i ->
              let v = B.add_vertex ~label:(Printf.sprintf "x.%d[%d]" t i) b in
              B.add_edge b !x.(i) v;
              B.add_edge b residual.(i) v;
              v)
        in
        x := ch_x_next;
        { ch_spmv; residual; ch_x_next })
  in
  let ch_graph =
    B.freeze
      ~inputs:(Array.to_list x0 @ Array.to_list rhs)
      ~outputs:(Array.to_list !x) b
  in
  { ch_graph; ch_grid = grid; ch_iterations }

type gmres_iteration = {
  h_diag : Cdag.vertex;
  norm : Cdag.vertex;
  basis_next : Cdag.vertex array;
  w_spmv : Cdag.vertex array;
}

type gmres = {
  graph : Cdag.t;
  grid : Grid.t;
  iterations : gmres_iteration array;
}

let gmres ~dims ~iters =
  if iters < 1 then invalid_arg "Solver.gmres: iters must be >= 1";
  let grid = Grid.create dims in
  let n = Grid.size grid in
  let b = B.create ~hint:(8 * n * iters) () in
  let v0 = add_vec b "v0" n in
  let basis = ref [ v0 ] in (* most recent first *)
  let h_scalars = ref [] in
  let iterations =
    Array.init iters (fun i ->
        let tag s = Printf.sprintf "%s.%d" s i in
        let vi = List.hd !basis in
        let w_spmv = spmv_into b (tag "w") grid vi in
        (* h_{j,i} = <w, v_j> for every previous basis vector; the j = i
           dot is the wavefront-bearing one. *)
        let hs =
          List.rev_map (fun vj -> dot b (tag "h") w_spmv vj) (List.rev !basis)
        in
        let h_diag = List.hd hs in
        h_scalars := hs @ !h_scalars;
        (* v' = w - Σ_j h_{j,i} v_j as a chain of axpy stages *)
        let vprime =
          List.fold_left2
            (fun acc h vj -> axpy_like b (tag "v'") acc h vj)
            w_spmv (List.rev hs)
            (List.rev !basis)
        in
        (* h_{i+1,i} = ||v'|| *)
        let norm = dot b (tag "nrm") vprime vprime in
        h_scalars := norm :: !h_scalars;
        (* v_{i+1} = v' / h_{i+1,i} *)
        let basis_next =
          Array.init n (fun e ->
              let v = B.add_vertex ~label:(Printf.sprintf "v%d[%d]" (i + 1) e) b in
              B.add_edge b vprime.(e) v;
              B.add_edge b norm v;
              v)
        in
        basis := basis_next :: !basis;
        { h_diag; norm; basis_next; w_spmv })
  in
  let outputs = Array.to_list (List.hd !basis) @ !h_scalars in
  let graph = B.freeze ~inputs:(Array.to_list v0) ~outputs b in
  { graph; grid; iterations }
