module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic

type threshold_row = {
  label : string;
  cache_words : int;
  balance : float;
  max_dim : float;
  bound_at : int -> Balance.verdict;
}

let make_row ~label ~cache_words ~balance =
  {
    label;
    cache_words;
    balance;
    max_dim = Analytic.jacobi_max_dim ~s:cache_words ~balance;
    bound_at =
      (fun d ->
        Balance.classify_lower
          ~lb_per_flop:(Analytic.jacobi_balance_threshold ~d ~s:cache_words)
          ~balance);
  }

let bgq_dram_l2 =
  make_row ~label:"IBM BG/Q DRAM->L2"
    ~cache_words:(Machines.cache_words Machines.bgq)
    ~balance:Machines.bgq.Machines.vertical_balance

(* The L2->L1 boundary of BG/Q: 16 KB L1 data cache (2048 words) and a
   2 words/FLOP L1 balance — the parameters that reproduce the paper's
   reported d <= 96. *)
let bgq_l2_l1 = make_row ~label:"IBM BG/Q L2->L1" ~cache_words:2048 ~balance:2.0

let thresholds () =
  bgq_dram_l2 :: bgq_l2_l1
  :: List.filter_map
       (fun (m : Machines.t) ->
         if m.name = Machines.bgq.Machines.name then None
         else
           Some
             (make_row
                ~label:(m.name ^ " DRAM->L2")
                ~cache_words:(Machines.cache_words m)
                ~balance:m.vertical_balance))
       Machines.table1

let table () =
  let t =
    Table.create
      ~headers:[ "Boundary"; "S (words)"; "balance"; "max dim"; "d=2"; "d=3"; "d=5" ]
  in
  List.iter
    (fun r ->
      let verdict d = Balance.verdict_to_string (r.bound_at d) in
      Table.add_row t
        [
          r.label;
          Table.fmt_int r.cache_words;
          Printf.sprintf "%.4f" r.balance;
          Printf.sprintf "%.2f" r.max_dim;
          verdict 2;
          verdict 3;
          verdict 5;
        ])
    (thresholds ());
  t

type tightness = {
  d : int;
  n : int;
  steps : int;
  s : int;
  analytic_lb : float;
  skewed_ub : int;
  natural_ub : int;
  ratio : float;
}

let tightness ?(d = 1) ?(n = 64) ?(steps = 16) ?(s = 18) () =
  let dims = List.init d (fun _ -> n) in
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims ~steps () in
  let tile =
    (* S must hold two tile-wide planes plus halo slack, so size the
       tile at a third of the per-dimension budget. *)
    max 2 (int_of_float (float_of_int (s / 3) ** (1.0 /. float_of_int d)))
  in
  let skewed = Dmc_gen.Stencil.skewed_order st ~tile in
  let natural = Dmc_gen.Stencil.natural_order st in
  let io order = Dmc_core.Strategy.io ~order st.graph ~s in
  let analytic_lb = Analytic.jacobi_lb ~d ~n ~steps ~s ~p:1 in
  let skewed_ub = io skewed in
  {
    d;
    n;
    steps;
    s;
    analytic_lb;
    skewed_ub;
    natural_ub = io natural;
    ratio = float_of_int skewed_ub /. analytic_lb;
  }

type horizontal_check = {
  dims : int list;
  blocks : int list;
  steps : int;
  measured_ghosts : int;
  predicted_ghosts : int;
}

let horizontal ?(dims = [ 12; 12 ]) ?(blocks = [ 2; 2 ]) ?(steps = 3) () =
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims ~steps () in
  let grid = st.grid in
  let nodes = List.fold_left ( * ) 1 blocks in
  let owner_of_point = Dmc_sim.Partitioner.block_owner ~dims ~blocks in
  let npts = Dmc_gen.Grid.size grid in
  let owner v = owner_of_point (Dmc_gen.Grid.coord grid (v mod npts)) in
  let config =
    { Dmc_sim.Exec.capacities = [| 64; npts * (steps + 1) |]; nodes; owner }
  in
  let result =
    Dmc_sim.Exec.run st.graph ~order:(Dmc_gen.Stencil.natural_order st) config
  in
  {
    dims;
    blocks;
    steps;
    measured_ghosts = result.horizontal_total;
    predicted_ghosts = Dmc_sim.Partitioner.ghost_words ~dims ~blocks ~star:true * steps;
  }

let surface_to_volume_table ?(d = 3) ~blocks () =
  let t =
    Table.create
      ~headers:[ "block side B"; "ghost words"; "volume B^d"; "ghost/volume"; "~2d/B" ]
  in
  List.iter
    (fun b ->
      let ghost = Analytic.ghost_cells ~d ~block:b in
      let volume = float_of_int b ** float_of_int d in
      Table.add_row t
        [
          string_of_int b;
          Printf.sprintf "%.0f" ghost;
          Printf.sprintf "%.0f" volume;
          Printf.sprintf "%.4f" (ghost /. volume);
          Printf.sprintf "%.4f" (2.0 *. float_of_int d /. float_of_int b);
        ])
    blocks;
  t
