module Table = Dmc_util.Table
module Analytic = Dmc_core.Analytic

type row = {
  n : int;
  s : int;
  matmul_step_lb : float;
  naive_sum_lb : float;
  composite_upper_rb : float;
  separation : float;
  rbw_measured_ub : int option;
  rbw_lb : int option;
}

let sweep ?(ns = [ 4; 8; 16; 32; 64 ]) ?(measure_limit = 8) () =
  List.map
    (fun n ->
      let s = (4 * n) + 4 in
      let matmul_step_lb = Analytic.matmul_lb ~n ~s in
      let outer = Analytic.outer_product_io ~n in
      let reduce = (float_of_int n *. float_of_int n) +. 1.0 in
      let naive_sum_lb = (2.0 *. outer) +. matmul_step_lb +. reduce in
      let composite_upper_rb = Analytic.composite_io_upper ~n in
      let measured =
        if n <= measure_limit then begin
          let c = Dmc_gen.Linalg.composite n in
          Some
            ( Dmc_core.Strategy.io c.graph ~s,
              Dmc_core.Wavefront.lower_bound c.graph ~s )
        end
        else None
      in
      {
        n;
        s;
        matmul_step_lb;
        naive_sum_lb;
        composite_upper_rb;
        separation = naive_sum_lb /. composite_upper_rb;
        rbw_measured_ub = Option.map fst measured;
        rbw_lb = Option.map snd measured;
      })
    ns

let table ?ns ?measure_limit () =
  let t =
    Table.create
      ~headers:
        [
          "n";
          "S=4n+4";
          "matmul step LB";
          "naive sum of LBs";
          "composite UB (RB)";
          "separation";
          "RBW measured UB";
          "RBW certified LB";
        ]
  in
  let opt = function None -> "-" | Some x -> string_of_int x in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.s;
          Printf.sprintf "%.1f" r.matmul_step_lb;
          Printf.sprintf "%.1f" r.naive_sum_lb;
          Printf.sprintf "%.0f" r.composite_upper_rb;
          Printf.sprintf "%.1fx" r.separation;
          opt r.rbw_measured_ub;
          opt r.rbw_lb;
        ])
    (sweep ?ns ?measure_limit ());
  t
