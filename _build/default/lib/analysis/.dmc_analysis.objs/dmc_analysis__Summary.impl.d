lib/analysis/summary.ml: Dmc_machine Dmc_symbolic Dmc_util List Printf
