lib/analysis/multigrid_analysis.mli: Dmc_util
