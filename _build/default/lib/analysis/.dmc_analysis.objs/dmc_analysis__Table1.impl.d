lib/analysis/table1.ml: Dmc_machine Dmc_util List Printf
