lib/analysis/jacobi_analysis.mli: Dmc_machine Dmc_util
