lib/analysis/curves.ml: Dmc_core Dmc_gen Dmc_util Float List Printf
