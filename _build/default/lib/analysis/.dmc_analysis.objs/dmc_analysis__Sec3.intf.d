lib/analysis/sec3.mli: Dmc_util
