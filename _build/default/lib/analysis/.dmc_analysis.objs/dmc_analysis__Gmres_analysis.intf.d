lib/analysis/gmres_analysis.mli: Dmc_machine Dmc_util
