lib/analysis/gmres_analysis.ml: Array Dmc_core Dmc_gen Dmc_machine Dmc_util List Printf
