lib/analysis/multigrid_analysis.ml: Array Dmc_cdag Dmc_core Dmc_gen Dmc_util List Printf
