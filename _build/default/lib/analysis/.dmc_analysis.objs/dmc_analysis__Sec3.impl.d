lib/analysis/sec3.ml: Dmc_core Dmc_gen Dmc_util List Option Printf
