lib/analysis/jacobi_analysis.ml: Dmc_core Dmc_gen Dmc_machine Dmc_sim Dmc_util List Printf
