lib/analysis/cg_analysis.mli: Dmc_machine Dmc_util
