lib/analysis/validate.mli: Dmc_util
