lib/analysis/reductions.ml: Array Dmc_cdag Dmc_core Dmc_gen Printf
