lib/analysis/time_model.mli: Dmc_machine Dmc_util
