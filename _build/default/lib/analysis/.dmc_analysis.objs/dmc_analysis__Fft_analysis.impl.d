lib/analysis/fft_analysis.ml: Dmc_core Dmc_flow Dmc_gen Dmc_util Float List Printf
