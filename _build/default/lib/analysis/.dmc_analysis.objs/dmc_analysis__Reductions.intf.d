lib/analysis/reductions.mli:
