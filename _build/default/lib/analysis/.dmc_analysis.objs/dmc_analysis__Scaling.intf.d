lib/analysis/scaling.mli: Dmc_util
