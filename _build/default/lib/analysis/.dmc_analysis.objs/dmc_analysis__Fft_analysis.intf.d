lib/analysis/fft_analysis.mli: Dmc_util
