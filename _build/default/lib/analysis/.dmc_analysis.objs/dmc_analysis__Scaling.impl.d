lib/analysis/scaling.ml: Dmc_core Dmc_machine Dmc_util List Printf String
