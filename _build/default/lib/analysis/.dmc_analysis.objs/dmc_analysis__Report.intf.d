lib/analysis/report.mli:
