lib/analysis/time_model.ml: Dmc_core Dmc_machine Dmc_util Float List Printf
