lib/analysis/summary.mli: Dmc_util
