lib/analysis/table1.mli: Dmc_util
