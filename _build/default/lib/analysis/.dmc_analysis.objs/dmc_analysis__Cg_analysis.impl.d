lib/analysis/cg_analysis.ml: Array Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_util List Printf
