lib/analysis/curves.mli: Dmc_util
