(** Experiment drivers: each function prints one of the paper's
    evaluation artifacts (see the experiment index in DESIGN.md) to
    stdout and returns [true] when every internal consistency check
    passed. *)

val table1 : unit -> bool
(** T1: the machine-specification table. *)

val sec3 : unit -> bool
(** E-SEC3: the composite-example separation sweep. *)

val cg : unit -> bool
(** E-CGV / E-CGH: the CG balance analysis plus the Theorem-8 machinery
    on a concrete CDAG.  Checks: CG is bandwidth-bound vertically and
    unbound horizontally on every Table-1 machine; measured wavefronts
    reach the paper's [2 n^d] / [n^d]; the decomposed LB is below the
    measured execution. *)

val gmres : unit -> bool
(** E-GMV / E-GMH: the GMRES sweep over the Krylov dimension [m] and
    the Theorem-9 machinery. *)

val jacobi : unit -> bool
(** E-JAC: the dimension-threshold table, the Theorem-10 tightness
    measurement, and the ghost-cell horizontal check. *)

val validate : unit -> bool
(** E-VAL1/E-VAL2: the soundness fleet and the Theorem-1 checks. *)

val sim : unit -> bool
(** E-SIM: cache-simulator traffic versus certified bounds. *)

val all : unit -> bool
(** Run every experiment in order; [true] iff all passed. *)

val names : (string * (unit -> bool)) list
(** The experiment registry, for the CLI and the bench harness. *)
