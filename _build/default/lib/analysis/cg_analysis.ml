module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic
module Cdag = Dmc_cdag.Cdag

type row = {
  machine : Machines.t;
  vertical_per_flop : float;
  vertical_verdict : Balance.verdict;
  horizontal_per_flop : float;
  horizontal_verdict : Balance.verdict;
}

let analyze ?(d = 3) ?(n = 1000) () =
  List.map
    (fun (m : Machines.t) ->
      let vertical_per_flop = Analytic.cg_vertical_per_flop () in
      let horizontal_per_flop =
        Analytic.cg_horizontal_per_flop ~d ~n ~nodes:m.nodes
      in
      {
        machine = m;
        vertical_per_flop;
        vertical_verdict =
          Balance.classify_lower ~lb_per_flop:vertical_per_flop
            ~balance:m.vertical_balance;
        horizontal_per_flop;
        horizontal_verdict =
          Balance.classify_upper ~ub_per_flop:horizontal_per_flop
            ~balance:m.horizontal_balance;
      })
    Machines.table1

let table ?d ?n () =
  let t =
    Table.create
      ~headers:
        [
          "Machine";
          "LB_vert/FLOP";
          "balance_vert";
          "vertical verdict";
          "UB_horiz/FLOP";
          "balance_horiz";
          "horizontal verdict";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.machine.Machines.name;
          Printf.sprintf "%.3f" r.vertical_per_flop;
          Printf.sprintf "%.4f" r.machine.Machines.vertical_balance;
          Balance.verdict_to_string r.vertical_verdict;
          Printf.sprintf "%.2e" r.horizontal_per_flop;
          Printf.sprintf "%.4f" r.machine.Machines.horizontal_balance;
          Balance.verdict_to_string r.horizontal_verdict;
        ])
    (analyze ?d ?n ());
  t

type structure_check = {
  grid_points : int;
  iters : int;
  a_wavefront : int;
  g_wavefront : int;
  decomposed_lb : int;
  belady_ub : int;
  s : int;
}

(* Slice the CG CDAG so that piece [t] holds the direction vector
   carried into iteration [t] together with iteration [t]'s SpMV, dot
   products, scalar [a] and vector updates — the shape in which both
   the p-paths and the v-paths to υ_x survive, giving the 2 n^d
   wavefront inside a purely disjoint (Theorem 2) decomposition. *)
let slices (cg : Dmc_gen.Solver.cg) =
  let iters = Array.length cg.iterations in
  let bound t =
    let r = cg.iterations.(t).r_next in
    r.(Array.length r - 1)
  in
  fun v ->
    let rec find t = if t >= iters then iters - 1 else if v <= bound t then t else find (t + 1) in
    find 0

let structure ?(dims = [ 4; 4; 4 ]) ?(iters = 2) ?(s = 16) () =
  let cg = Dmc_gen.Solver.cg ~dims ~iters in
  let g = cg.graph in
  let slice_of = slices cg in
  let parts =
    Dmc_core.Decompose.iteration_slices g ~slice_of ~n_slices:iters
  in
  let pieces =
    Array.mapi
      (fun t part -> (part, [ cg.iterations.(t).a_scalar ]))
      parts
  in
  let decomposed_lb = Dmc_core.Decompose.wavefront_sum g ~pieces ~s in
  let last = cg.iterations.(iters - 1) in
  {
    grid_points = Dmc_gen.Grid.size cg.grid;
    iters;
    a_wavefront = Dmc_core.Wavefront.min_wavefront g last.a_scalar;
    g_wavefront = Dmc_core.Wavefront.min_wavefront g last.g_scalar;
    decomposed_lb;
    belady_ub = Dmc_core.Strategy.io g ~s;
    s;
  }
