module Table = Dmc_util.Table
module Balance = Dmc_machine.Balance

let section title =
  Printf.printf "\n== %s ==\n\n" title

let check label ok =
  Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") label;
  ok

let table1 () =
  section "Table 1: machine specifications";
  Table.print (Table1.table ());
  true

let sec3 () =
  section "Section 3 composite example: naive per-step bound summation vs reality";
  Table.print (Sec3.table ());
  let rows = Sec3.sweep () in
  let growing =
    List.for_all (fun (r : Sec3.row) -> r.n <= 8 || r.separation > 1.0) rows
  in
  let sandwiched =
    List.for_all
      (fun (r : Sec3.row) ->
        match (r.rbw_lb, r.rbw_measured_ub) with
        | Some lb, Some ub -> lb <= ub
        | _ -> true)
      rows
  in
  check "naive summation overshoots the composite cost for large n" growing
  && check "certified RBW LB <= measured RBW UB on the real CDAG" sandwiched

let cg () =
  section "CG (Sec 5.2): machine-balance analysis (d=3, n=1000)";
  Table.print (Cg_analysis.table ());
  let rows = Cg_analysis.analyze () in
  let vertical_bound =
    List.for_all (fun (r : Cg_analysis.row) -> r.vertical_verdict = Balance.Bandwidth_bound) rows
  in
  let horizontal_free =
    List.for_all
      (fun (r : Cg_analysis.row) -> r.horizontal_verdict = Balance.Not_bandwidth_bound)
      rows
  in
  section "CG: Theorem-8 machinery on a concrete CDAG (4^3 grid, 2 iterations)";
  let s = Cg_analysis.structure () in
  Printf.printf
    "  grid points n^d = %d, iterations = %d, S = %d\n\
    \  measured wavefront at a-scalar = %d (paper: >= 2 n^d = %d)\n\
    \  measured wavefront at g-scalar = %d (paper: >= n^d = %d)\n\
    \  decomposed lower bound = %d, Belady upper bound = %d\n"
    s.grid_points s.iters s.s s.a_wavefront (2 * s.grid_points) s.g_wavefront
    s.grid_points s.decomposed_lb s.belady_ub;
  section "CG: execution-time model (Eqs 4-6) at 8 GFLOP/s per core, n = 1000, T = 100";
  Table.print (Time_model.table ~flops_per_core:8.0e9 ~n:1000 ~steps:100);
  let time_ok =
    List.for_all
      (fun (m : Dmc_machine.Machines.t) ->
        let p = Time_model.cg ~machine:m ~flops_per_core:8.0e9 ~n:1000 ~steps:100 in
        p.Time_model.dominant = `Vertical && p.Time_model.efficiency_cap < 0.5)
      Dmc_machine.Machines.table1
  in
  check "CG bandwidth-bound vertically on every machine (LB/FLOP = 0.3)" vertical_bound
  && check "time model: memory dominates and caps efficiency below 50%" time_ok
  && check "CG not bound by the interconnect on any machine" horizontal_free
  && check "wavefront at a-scalar reaches 2 n^d" (s.a_wavefront >= 2 * s.grid_points)
  && check "wavefront at g-scalar reaches n^d" (s.g_wavefront >= s.grid_points)
  && check "decomposed LB <= measured execution" (s.decomposed_lb <= s.belady_ub)

let gmres () =
  section "GMRES (Sec 5.3): vertical cost 6/(m+20) vs machine balance";
  let ms = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] in
  Table.print (Gmres_analysis.table ~ms ());
  List.iter
    (fun (m : Dmc_machine.Machines.t) ->
      Printf.printf "  crossover m* (%s): %.1f\n" m.name
        (Gmres_analysis.crossover_m ~balance:m.vertical_balance))
    Dmc_machine.Machines.table1;
  let points = Gmres_analysis.sweep ~ms () in
  let small_m_bound =
    List.for_all
      (fun (p : Gmres_analysis.sweep_point) ->
        p.m > 8
        || List.for_all (fun (_, v) -> v = Balance.Bandwidth_bound) p.verdicts)
      points
  in
  let large_m_free =
    List.exists
      (fun (p : Gmres_analysis.sweep_point) ->
        List.for_all (fun (_, v) -> v = Balance.Indeterminate) p.verdicts)
      points
  in
  section "GMRES: Theorem-9 machinery on a concrete CDAG (5^2 grid, 3 iterations)";
  let s = Gmres_analysis.structure () in
  Printf.printf
    "  grid points n^d = %d, iterations = %d, S = %d\n\
    \  measured wavefront at h_{i,i} = %d (paper: >= 2 n^d = %d)\n\
    \  measured wavefront at the norm = %d (paper: >= n^d = %d)\n\
    \  decomposed lower bound = %d, Belady upper bound = %d\n"
    s.grid_points s.iters s.s s.h_wavefront (2 * s.grid_points) s.norm_wavefront
    s.grid_points s.decomposed_lb s.belady_ub;
  check "GMRES bandwidth-bound at small m on every machine" small_m_bound
  && check "large m escapes the bandwidth bound" large_m_free
  && check "wavefront at h_{i,i} reaches 2 n^d" (s.h_wavefront >= 2 * s.grid_points)
  && check "wavefront at the norm reaches n^d" (s.norm_wavefront >= s.grid_points)
  && check "decomposed LB <= measured execution" (s.decomposed_lb <= s.belady_ub)

let jacobi () =
  section "Jacobi (Sec 5.4): dimension thresholds from the machine balance";
  Table.print (Jacobi_analysis.table ());
  let rows = Jacobi_analysis.thresholds () in
  let bgq = Jacobi_analysis.bgq_dram_l2 in
  let l2l1 = Jacobi_analysis.bgq_l2_l1 in
  section "Jacobi: Theorem-10 tightness (skewed tiles vs the bound)";
  let t = Jacobi_analysis.tightness () in
  let t2 = Jacobi_analysis.tightness ~n:(2 * t.n) ~steps:(2 * t.steps) () in
  let t2d = Jacobi_analysis.tightness ~d:2 ~n:16 ~steps:8 ~s:48 () in
  List.iter
    (fun (x : Jacobi_analysis.tightness) ->
      Printf.printf
        "  d=%d n=%d steps=%d S=%d: analytic LB = %.1f, skewed-tile UB = %d (%.1fx), natural order UB = %d (%.1fx)\n"
        x.d x.n x.steps x.s x.analytic_lb x.skewed_ub x.ratio x.natural_ub
        (float_of_int x.natural_ub /. x.analytic_lb))
    [ t; t2; t2d ];
  section "Jacobi: horizontal ghost-cell traffic (12x12 grid, 2x2 nodes, 3 steps)";
  let h = Jacobi_analysis.horizontal () in
  Printf.printf "  measured = %d words, predicted = %d words\n" h.measured_ghosts
    h.predicted_ghosts;
  Printf.printf "\n  surface-to-volume (why the network never binds a big block, d = 3):\n\n";
  Table.print (Jacobi_analysis.surface_to_volume_table ~blocks:[ 4; 8; 16; 32; 64 ] ());
  check "BG/Q DRAM->L2 threshold reproduces the paper's 4.83"
    (Float.abs (bgq.max_dim -. 4.83) < 0.1)
  && check "BG/Q L2->L1 threshold reproduces the paper's 96"
       (Float.abs (l2l1.max_dim -. 96.0) < 1.0)
  && check "3D stencils are not bandwidth-bound below the threshold"
       (List.for_all
          (fun (r : Jacobi_analysis.threshold_row) ->
            r.max_dim < 3.0 || r.bound_at 3 <> Balance.Bandwidth_bound)
          rows)
  && check "skewed tiling beats the natural order by >= 3x"
       (3 * t.skewed_ub <= t.natural_ub)
  && check "tiled I/O tracks the Theorem-10 Θ(nT/S) shape (stable ratio under 2x scaling)"
       (Float.abs (t2.ratio -. t.ratio) < 0.35 *. t.ratio)
  && check "Theorem-10 LB below the measured tiled execution"
       (t.analytic_lb <= float_of_int t.skewed_ub)
  && check "2D tiles also beat the natural order under the d=2 bound"
       (t2d.analytic_lb <= float_of_int t2d.skewed_ub
       && t2d.skewed_ub < t2d.natural_ub)
  && check "horizontal traffic matches the ghost-cell formula"
       (h.measured_ghosts = h.predicted_ghosts)

let validate () =
  section "Validation: lower bounds vs provably optimal games";
  let cases = Validate.soundness_suite () in
  Table.print (Validate.soundness_table cases);
  let sound = Validate.all_sound cases in
  section "Validation: Theorem 1 (game -> 2S-partition)";
  let t1 = Validate.theorem1_suite () in
  Table.print (Validate.theorem1_table t1);
  let t1_ok =
    List.for_all
      (fun (c : Validate.theorem1_check) -> c.partition_valid && c.arithmetic_holds)
      t1
  in
  check "every lower bound below the optimum, every strategy above" sound
  && check "every game-derived partition is a valid 2S-partition with S*h >= q >= S*(h-1)" t1_ok

let sim () =
  section "Simulator cross-check: LRU hierarchy traffic vs certified bounds";
  let checks = Validate.simulator_suite () in
  Table.print (Validate.simulator_table checks);
  section "Three-level P-RBW games: per-boundary traffic vs sequential bounds";
  let hier = Validate.hierarchy_suite () in
  Table.print (Validate.hierarchy_table hier);
  section "Multi-level tightness: two-level blocked matmul vs Hong-Kung at each level";
  let mm =
    Validate.matmul_multilevel ~configs:[ (12, 48); (12, 147); (27, 147); (48, 300) ] ()
  in
  Table.print (Validate.matmul_multilevel_table mm);
  check "simulated traffic dominates every certified lower bound"
    (List.for_all (fun (c : Validate.sim_check) -> c.holds) checks)
  && check "every P-RBW boundary dominates its sequential bound"
       (List.for_all (fun (c : Validate.hierarchy_check) -> c.holds) hier)
  && check "matmul traffic dominates the HK bound at both levels"
       (List.for_all
          (fun (r : Validate.matmul_level_row) ->
            float_of_int r.regs_traffic >= r.regs_bound
            && float_of_int r.cache_traffic >= r.cache_bound)
          mm)
  && check "matmul traffic within 16x of the HK bound at both levels"
       (List.for_all
          (fun (r : Validate.matmul_level_row) ->
            float_of_int r.regs_traffic <= 16.0 *. r.regs_bound
            && float_of_int r.cache_traffic <= 16.0 *. r.cache_bound)
          mm)

let scaling () =
  section "Architectural what-ifs: when does the bottleneck move?";
  Printf.printf "CG horizontal cost vs node count (d=3, n=1000):\n\n";
  (match Scaling.tables () with
  | [ t1; t2; t3 ] ->
      Table.print t1;
      Printf.printf
        "\n  CG stays memory-bound at any scale; the network only joins in around\n\
        \  N = %.2e nodes (BG/Q balance).\n\n"
        (Scaling.cg_network_bound_at
           ~balance:Dmc_machine.Machines.bgq.Dmc_machine.Machines.horizontal_balance ());
      Printf.printf "Jacobi dimension threshold vs cache size (balance 0.052):\n\n";
      Table.print t2;
      Printf.printf "\nMinimum machine balance each algorithm needs:\n\n";
      Table.print t3
  | _ -> ());
  Printf.printf
    "\nBalance trend beyond Table 1 (post-2014 rows are estimates from public specs):\n\n";
  Table.print (Scaling.balance_trend_table ());
  check "CG network crossover is beyond any built machine"
    (Scaling.cg_network_bound_at
       ~balance:Dmc_machine.Machines.bgq.Dmc_machine.Machines.horizontal_balance ()
    > 1.0e6)

let names =
  [
    ("summary", Summary.run);
    ("table1", table1);
    ("sec3", sec3);
    ("cg", cg);
    ("gmres", gmres);
    ("jacobi", jacobi);
    ("scaling", scaling);
    ("fft", Fft_analysis.run);
    ("curves", Curves.run);
    ("multigrid", Multigrid_analysis.run);
    ("reductions", Reductions.run);
    ("validate", validate);
    ("sim", sim);
  ]

let all () =
  List.fold_left (fun acc (_, f) -> f () && acc) true names
