module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Expr = Dmc_symbolic.Expr
module Formulas = Dmc_symbolic.Formulas

let rows () =
  let cache = float_of_int (Machines.cache_words Machines.bgq) in
  [
    ("CG (any d)", Formulas.cg_vertical_per_flop, []);
    ("GMRES m=8", Formulas.gmres_vertical_per_flop, [ ("m", 8.0) ]);
    ("GMRES m=128", Formulas.gmres_vertical_per_flop, [ ("m", 128.0) ]);
    ("Jacobi 2D", Formulas.jacobi_threshold, [ ("d", 2.0); ("S", cache) ]);
    ("Jacobi 3D", Formulas.jacobi_threshold, [ ("d", 3.0); ("S", cache) ]);
    ("Jacobi 5D", Formulas.jacobi_threshold, [ ("d", 5.0); ("S", cache) ]);
  ]

let table () =
  let t =
    Table.create
      ~headers:
        ([ "algorithm"; "vertical floor (words/FLOP)"; "value" ]
        @ List.map (fun (m : Machines.t) -> m.name) Machines.table1)
  in
  List.iter
    (fun (name, formula, env) ->
      let floor = Expr.eval ~env formula in
      Table.add_row t
        ([
           name;
           Expr.to_string (Expr.simplify formula);
           Printf.sprintf "%.2e" floor;
         ]
        @ List.map
            (fun (m : Machines.t) ->
              Balance.verdict_to_string
                (Balance.classify_lower ~lb_per_flop:floor ~balance:m.vertical_balance))
            Machines.table1))
    (rows ());
  t

let run () =
  Printf.printf
    "\n== Summary: every algorithm's memory floor vs the Table-1 machines ==\n\n";
  Table.print (table ());
  Printf.printf
    "\n  The pattern the paper establishes: iterative solvers with O(1)\n\
    \  arithmetic intensity (CG, small-m GMRES) are doomed by the memory wall;\n\
    \  stencils and multigrid live far below it thanks to temporal tiling;\n\
    \  GMRES escapes as its Krylov work grows quadratically.\n";
  let verdict name =
    let _, formula, env = List.find (fun (n, _, _) -> n = name) (rows ()) in
    Balance.classify_lower
      ~lb_per_flop:(Expr.eval ~env formula)
      ~balance:Machines.bgq.Machines.vertical_balance
  in
  let check label ok =
    Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") label;
    ok
  in
  check "CG bandwidth-bound" (verdict "CG (any d)" = Balance.Bandwidth_bound)
  && check "GMRES m=8 bandwidth-bound" (verdict "GMRES m=8" = Balance.Bandwidth_bound)
  && check "GMRES m=128 escapes" (verdict "GMRES m=128" = Balance.Indeterminate)
  && check "Jacobi 2D/3D unbound"
       (verdict "Jacobi 2D" = Balance.Indeterminate
       && verdict "Jacobi 3D" = Balance.Indeterminate)
