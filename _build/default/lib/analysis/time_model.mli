(** The execution-time model of Equations 4–6: the runtime of a CDAG on
    a machine is bounded below by the larger of its computation time and
    each memory unit's communication time,

    {v  T >= max(T_comp, max_l T^i_l)   with
        T_comp >= |V| / (P F),   T^i_l = IO^i_l / B^i_l  v}

    Instantiated for the two links the paper analyzes (DRAM↔cache per
    node, and the interconnect), this predicts which resource bounds an
    algorithm's time and by how much — the quantitative version of the
    balance verdicts. *)

type prediction = {
  t_comp : float;      (** seconds: [work / (P * flops_per_core)] *)
  t_vertical : float;  (** seconds: per-node vertical words / per-node bandwidth *)
  t_horizontal : float;
  t_bound : float;     (** [max] of the three: a valid runtime lower bound *)
  dominant : [ `Compute | `Vertical | `Horizontal ];
  efficiency_cap : float;
      (** [t_comp / t_bound]: the highest fraction of peak FLOP/s any
          implementation can reach (1.0 when compute-bound) *)
}

val predict :
  flops_per_core:float ->
  cores:int ->
  nodes:int ->
  vertical_bw:float ->
  horizontal_bw:float ->
  work:float ->
  vertical_words_per_node:float ->
  horizontal_words_per_node:float ->
  prediction
(** Bandwidths in words/second ({e per node}); [work] in FLOPs;
    [cores] per node.  Raises [Invalid_argument] on non-positive rates. *)

val cg : machine:Dmc_machine.Machines.t -> flops_per_core:float -> n:int -> steps:int -> prediction
(** The CG instance of Section 5.2 (d = 3): plugs Theorem 8's vertical
    bound and the ghost-cell horizontal bound into the model.  The
    machine's bandwidths are reconstructed from its balance values and
    the given peak. *)

val table : flops_per_core:float -> n:int -> steps:int -> Dmc_util.Table.t
(** CG time predictions across the Table-1 machines. *)
