module Machines = Dmc_machine.Machines
module Analytic = Dmc_core.Analytic
module Table = Dmc_util.Table

type prediction = {
  t_comp : float;
  t_vertical : float;
  t_horizontal : float;
  t_bound : float;
  dominant : [ `Compute | `Vertical | `Horizontal ];
  efficiency_cap : float;
}

let predict ~flops_per_core ~cores ~nodes ~vertical_bw ~horizontal_bw ~work
    ~vertical_words_per_node ~horizontal_words_per_node =
  if flops_per_core <= 0.0 || vertical_bw <= 0.0 || horizontal_bw <= 0.0 then
    invalid_arg "Time_model.predict: non-positive rate";
  if cores <= 0 || nodes <= 0 then invalid_arg "Time_model.predict: bad counts";
  let t_comp = work /. (float_of_int (cores * nodes) *. flops_per_core) in
  let t_vertical = vertical_words_per_node /. vertical_bw in
  let t_horizontal = horizontal_words_per_node /. horizontal_bw in
  let t_bound = Float.max t_comp (Float.max t_vertical t_horizontal) in
  let dominant =
    if t_bound = t_comp then `Compute
    else if t_bound = t_vertical then `Vertical
    else `Horizontal
  in
  {
    t_comp;
    t_vertical;
    t_horizontal;
    t_bound;
    dominant;
    efficiency_cap = t_comp /. t_bound;
  }

let cg ~machine ~flops_per_core ~n ~steps =
  let m : Machines.t = machine in
  let d = 3 in
  let cores = m.cores_per_node and nodes = m.nodes in
  let peak_node = float_of_int cores *. flops_per_core in
  (* balance = bandwidth(words/s) / peak(FLOP/s) per node *)
  let vertical_bw = m.vertical_balance *. peak_node in
  let horizontal_bw = m.horizontal_balance *. peak_node in
  let work = Analytic.cg_flops ~d ~n ~steps in
  let vertical_words_per_node =
    Analytic.cg_vertical_lb ~d ~n ~steps ~p:(cores * nodes)
    *. float_of_int cores
  in
  let block =
    max 1 (int_of_float (float_of_int n /. (float_of_int nodes ** (1.0 /. 3.0))))
  in
  let horizontal_words_per_node = Analytic.cg_horizontal_ub ~d ~block ~steps in
  predict ~flops_per_core ~cores ~nodes ~vertical_bw ~horizontal_bw ~work
    ~vertical_words_per_node ~horizontal_words_per_node

let dominant_to_string = function
  | `Compute -> "compute"
  | `Vertical -> "memory"
  | `Horizontal -> "network"

let table ~flops_per_core ~n ~steps =
  let t =
    Table.create
      ~headers:
        [ "machine"; "T_comp (s)"; "T_mem (s)"; "T_net (s)"; "bound by"; "max efficiency" ]
  in
  List.iter
    (fun (m : Machines.t) ->
      let p = cg ~machine:m ~flops_per_core ~n ~steps in
      Table.add_row t
        [
          m.name;
          Printf.sprintf "%.2e" p.t_comp;
          Printf.sprintf "%.2e" p.t_vertical;
          Printf.sprintf "%.2e" p.t_horizontal;
          dominant_to_string p.dominant;
          Printf.sprintf "%.0f%%" (100.0 *. p.efficiency_cap);
        ])
    Machines.table1;
  t
