module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic

type sweep_point = {
  m : int;
  vertical_per_flop : float;
  horizontal_per_flop : float;
  verdicts : (string * Balance.verdict) list;
}

let sweep ?(d = 3) ?(n = 1000) ~ms () =
  List.map
    (fun m ->
      let vertical_per_flop = Analytic.gmres_vertical_per_flop ~m in
      {
        m;
        vertical_per_flop;
        horizontal_per_flop =
          Analytic.gmres_horizontal_per_flop ~d ~n ~m
            ~nodes:(List.hd Machines.table1).Machines.nodes;
        verdicts =
          List.map
            (fun (mc : Machines.t) ->
              ( mc.name,
                Balance.classify_lower ~lb_per_flop:vertical_per_flop
                  ~balance:mc.vertical_balance ))
            Machines.table1;
      })
    ms

let crossover_m ~balance =
  if balance <= 0.0 then invalid_arg "Gmres_analysis.crossover_m";
  (6.0 /. balance) -. 20.0

let table ?d ?n ~ms () =
  let machine_names = List.map (fun (m : Machines.t) -> m.Machines.name) Machines.table1 in
  let t =
    Table.create
      ~headers:
        ([ "m"; "LB_vert/FLOP"; "UB_horiz/FLOP" ]
        @ List.map (fun n -> n ^ " verdict") machine_names)
  in
  List.iter
    (fun p ->
      Table.add_row t
        ([
           string_of_int p.m;
           Printf.sprintf "%.4f" p.vertical_per_flop;
           Printf.sprintf "%.2e" p.horizontal_per_flop;
         ]
        @ List.map (fun (_, v) -> Balance.verdict_to_string v) p.verdicts))
    (sweep ?d ?n ~ms ());
  t

type structure_check = {
  grid_points : int;
  iters : int;
  h_wavefront : int;
  norm_wavefront : int;
  decomposed_lb : int;
  belady_ub : int;
  s : int;
}

(* Piece [i] holds basis vector [v_i] (produced at the end of outer
   iteration [i-1]) plus iteration [i]'s SpMV, dot products,
   orthogonalization chain and norm — so both the w-paths and the
   v_i-paths to [h_{i,i}] survive a disjoint decomposition. *)
let slices (gm : Dmc_gen.Solver.gmres) =
  let iters = Array.length gm.iterations in
  let bound t = gm.iterations.(t).norm in
  fun v ->
    let rec find t = if t >= iters then iters - 1 else if v <= bound t then t else find (t + 1) in
    find 0

let structure ?(dims = [ 5; 5 ]) ?(iters = 3) ?(s = 16) () =
  let gm = Dmc_gen.Solver.gmres ~dims ~iters in
  let g = gm.graph in
  let parts =
    Dmc_core.Decompose.iteration_slices g ~slice_of:(slices gm) ~n_slices:iters
  in
  let pieces =
    Array.mapi (fun t part -> (part, [ gm.iterations.(t).h_diag ])) parts
  in
  let last = gm.iterations.(iters - 1) in
  {
    grid_points = Dmc_gen.Grid.size gm.grid;
    iters;
    h_wavefront = Dmc_core.Wavefront.min_wavefront g last.h_diag;
    norm_wavefront = Dmc_core.Wavefront.min_wavefront g last.norm;
    decomposed_lb = Dmc_core.Decompose.wavefront_sum g ~pieces ~s;
    belady_ub = Dmc_core.Strategy.io g ~s;
    s;
  }
