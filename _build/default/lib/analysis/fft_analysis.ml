module Table = Dmc_util.Table
module Fft = Dmc_gen.Fft

type row = {
  k : int;
  s : int;
  group_bits : int;
  analytic_lb : float;
  blocked_ub : int;
  natural_ub : int;
  ratio : float;
}

let sweep ~configs =
  List.map
    (fun (k, group_bits, s) ->
      let g = Fft.butterfly k in
      let blocked_ub =
        Dmc_core.Strategy.io ~order:(Fft.blocked_order ~k ~group_bits) g ~s
      in
      let natural_ub = Dmc_core.Strategy.io g ~s in
      let analytic_lb = Dmc_core.Analytic.fft_lb ~n:(1 lsl k) ~s in
      {
        k;
        s;
        group_bits;
        analytic_lb;
        blocked_ub;
        natural_ub;
        ratio = float_of_int blocked_ub /. analytic_lb;
      })
    configs

let table rows =
  let t =
    Table.create
      ~headers:[ "n"; "S"; "pass ranks"; "analytic LB"; "blocked UB"; "vs LB"; "natural UB"; "vs LB" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int (1 lsl r.k);
          string_of_int r.s;
          string_of_int r.group_bits;
          Printf.sprintf "%.0f" r.analytic_lb;
          string_of_int r.blocked_ub;
          Printf.sprintf "%.1fx" r.ratio;
          string_of_int r.natural_ub;
          Printf.sprintf "%.1fx" (float_of_int r.natural_ub /. r.analytic_lb);
        ])
    rows;
  t

let run () =
  Printf.printf
    "\n== FFT butterfly: blocked passes vs the n log n / log S bound ==\n\n";
  let rows =
    sweep ~configs:[ (6, 3, 18); (8, 3, 18); (8, 4, 34); (10, 4, 34); (10, 5, 66) ]
  in
  Table.print (table rows);
  let check label ok =
    Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") label;
    ok
  in
  (* structural facts behind the bound *)
  let g8 = Fft.butterfly 3 in
  let unique_path =
    Dmc_flow.Vertex_cut.disjoint_paths g8 ~src:0 ~dst:(Fft.vertex ~k:3 ~rank:3 0) = 1
  in
  let lines = Dmc_core.Lines.max_disjoint_lines g8 = 8 in
  let sound =
    List.for_all (fun r -> r.analytic_lb <= float_of_int r.blocked_ub) rows
  in
  let ratios = List.map (fun r -> r.ratio) rows in
  let rmin = List.fold_left Float.min (List.hd ratios) ratios in
  let rmax = List.fold_left Float.max (List.hd ratios) ratios in
  let blocked_wins =
    List.for_all (fun r -> 2 * r.blocked_ub <= r.natural_ub) rows
  in
  (* tiny-instance optimality sandwich *)
  let tiny = Fft.butterfly 2 in
  let opt = Dmc_core.Optimal.rbw_io tiny ~s:4 in
  let report = Dmc_core.Bounds.analyze tiny ~s:4 in
  check "unique input-output paths (the butterfly property)" unique_path
  && check "n vertex-disjoint lines (Theorem-10-style hypothesis)" lines
  && check "analytic LB below every blocked execution" sound
  && check "blocked ratio stable across 16x problem scaling (Θ-shape)"
       (rmax /. rmin < 1.5)
  && check "blocked passes beat the rank-major order by >= 2x" blocked_wins
  && check "certified LB <= optimum <= blocked UB on the 4-point butterfly"
       (report.Dmc_core.Bounds.best_lb <= opt
       && opt <= Dmc_core.Strategy.io ~order:(Fft.blocked_order ~k:2 ~group_bits:2) tiny ~s:4)
