type t = {
  name : string;
  nodes : int;
  cores_per_node : int;
  memory_gb_per_node : float;
  cache_mb : float;
  vertical_balance : float;
  horizontal_balance : float;
}

let bgq =
  {
    name = "IBM BG/Q";
    nodes = 2048;
    cores_per_node = 16;
    memory_gb_per_node = 16.0;
    cache_mb = 32.0;
    vertical_balance = 0.052;
    horizontal_balance = 0.049;
  }

let xt5 =
  {
    name = "Cray XT5";
    nodes = 9408;
    cores_per_node = 12;
    memory_gb_per_node = 16.0;
    cache_mb = 6.0;
    vertical_balance = 0.0256;
    horizontal_balance = 0.058;
  }

let table1 = [ bgq; xt5 ]

let word_bytes = 8.0

let cache_words m = int_of_float (m.cache_mb *. 1024.0 *. 1024.0 /. word_bytes)

let memory_words_per_node m =
  int_of_float (m.memory_gb_per_node *. 1024.0 *. 1024.0 *. 1024.0 /. word_bytes)

let total_cores m = m.nodes * m.cores_per_node

let hierarchy m ~s1 =
  Hierarchy.cluster ~nodes:m.nodes ~cores:m.cores_per_node ~s1
    ~l2:(cache_words m) ~mem:(memory_words_per_node m)

(* Estimated balances for post-2014 systems, from public peak numbers:
   vertical = (memory GB/s / 8) / peak GFLOP/s per node; horizontal =
   (injection GB/s / 8) / peak GFLOP/s per node.  Rounded to two
   significant digits; these are our estimates, not Table-1 data. *)
let extended =
  [
    (2012, bgq);
    (2009, xt5);
    ( 2018,
      {
        name = "Summit node (est.)";
        nodes = 4608;
        cores_per_node = 44;
        memory_gb_per_node = 512.0;
        cache_mb = 36.0;
        (* 6x V100: ~5.4 TB/s HBM, ~47 TF FP64; EDR IB 2x12.5 GB/s *)
        vertical_balance = 0.014;
        horizontal_balance = 0.000066;
      } );
    ( 2020,
      {
        name = "Fugaku node (est.)";
        nodes = 158976;
        cores_per_node = 48;
        memory_gb_per_node = 32.0;
        cache_mb = 32.0;
        (* 1 TB/s HBM2, 3.4 TF FP64; TofuD ~40.8 GB/s injection *)
        vertical_balance = 0.037;
        horizontal_balance = 0.0015;
      } );
    ( 2022,
      {
        name = "Frontier node (est.)";
        nodes = 9408;
        cores_per_node = 64;
        memory_gb_per_node = 512.0;
        cache_mb = 32.0;
        (* 4x MI250X: ~13 TB/s HBM, ~191 TF FP64; Slingshot 4x25 GB/s *)
        vertical_balance = 0.0085;
        horizontal_balance = 0.000065;
      } );
  ]

let find_any name =
  let canon s = String.lowercase_ascii (String.trim s) in
  List.find_opt
    (fun m -> canon m.name = canon name)
    (table1 @ List.map snd extended)

let pp ppf m =
  Format.fprintf ppf
    "%s: %d nodes x %d cores, %.0f GB/node, %.1f MB cache, balance v=%.4f h=%.4f"
    m.name m.nodes m.cores_per_node m.memory_gb_per_node m.cache_mb
    m.vertical_balance m.horizontal_balance

let find name =
  let canon s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun m -> canon m.name = canon name) table1
