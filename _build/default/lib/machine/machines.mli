(** The computing systems of Table 1 of the paper, plus a few
    parameterized reference systems for the what-if analyses.

    Balance parameters are stored exactly as the paper reports them
    (words/FLOP); derived quantities (cache sizes in words) use 8-byte
    words as the paper does. *)

type t = {
  name : string;
  nodes : int;                  (** [N_nodes] *)
  cores_per_node : int;
  memory_gb_per_node : float;
  cache_mb : float;             (** shared L2/L3 capacity per node, MB *)
  vertical_balance : float;
      (** words/FLOP between DRAM and the shared cache (Table 1) *)
  horizontal_balance : float;
      (** words/FLOP across the interconnect (Table 1) *)
}

val bgq : t
(** IBM BG/Q: 2048 nodes, 16 GB, 32 MB cache, 0.052 / 0.049. *)

val xt5 : t
(** Cray XT5: 9408 nodes, 16 GB, 6 MB cache, 0.0256 / 0.058. *)

val table1 : t list
(** The machines of Table 1, in paper order. *)

val extended : (int * t) list
(** A balance-trend timeline: the Table-1 systems plus later machines
    with {e estimated} balances derived from public peak numbers (HBM
    bandwidth / peak FP64, NIC bandwidth / peak FP64; 8-byte words).
    These rows are our addition, not the paper's — they extend its
    motivating observation that balance keeps falling.  The [int] is
    the system's deployment year. *)

val find_any : string -> t option
(** Case-insensitive lookup among {!table1} and {!extended}. *)

val cache_words : t -> int
(** Shared cache capacity in 8-byte words. *)

val memory_words_per_node : t -> int

val total_cores : t -> int

val hierarchy : t -> s1:int -> Hierarchy.t
(** The three-level {!Hierarchy.t} of the machine (registers of [s1]
    words per core, shared cache, node memory). *)

val pp : Format.formatter -> t -> unit

val find : string -> t option
(** Case-insensitive lookup among {!table1}. *)
