type level_spec = { count : int; capacity : int }

type t = { specs : level_spec array }

let create specs_list =
  let specs = Array.of_list specs_list in
  if Array.length specs = 0 then invalid_arg "Hierarchy.create: no levels";
  Array.iter
    (fun { count; capacity } ->
      if count <= 0 then invalid_arg "Hierarchy.create: non-positive count";
      if capacity <= 0 then invalid_arg "Hierarchy.create: non-positive capacity")
    specs;
  for l = 0 to Array.length specs - 2 do
    let below = specs.(l).count and above = specs.(l + 1).count in
    if below < above then invalid_arg "Hierarchy.create: counts must weakly decrease";
    if below mod above <> 0 then
      invalid_arg "Hierarchy.create: count not divisible by parent count"
  done;
  { specs }

let n_levels h = Array.length h.specs

let check_level h level =
  if level < 1 || level > n_levels h then
    invalid_arg "Hierarchy: level out of range"

let count h ~level =
  check_level h level;
  h.specs.(level - 1).count

let capacity h ~level =
  check_level h level;
  h.specs.(level - 1).capacity

let processors h = count h ~level:1

let fan_out h ~level =
  check_level h level;
  if level >= n_levels h then invalid_arg "Hierarchy.fan_out: outermost level";
  h.specs.(level - 1).count / h.specs.(level).count

let parent_unit h ~level j =
  let f = fan_out h ~level in
  if j < 0 || j >= count h ~level then invalid_arg "Hierarchy.parent_unit: bad unit";
  j / f

let children_units h ~level j =
  check_level h level;
  if level <= 1 then invalid_arg "Hierarchy.children_units: innermost level";
  if j < 0 || j >= count h ~level then
    invalid_arg "Hierarchy.children_units: bad unit";
  let f = fan_out h ~level:(level - 1) in
  List.init f (fun i -> (j * f) + i)

let unit_of_processor h ~level p =
  check_level h level;
  if p < 0 || p >= processors h then
    invalid_arg "Hierarchy.unit_of_processor: bad processor";
  p / (processors h / count h ~level)

let aggregate_capacity h ~level = count h ~level * capacity h ~level

let two_level ~s =
  create [ { count = 1; capacity = s }; { count = 1; capacity = max_int / 2 } ]

let smp ~cores ~s1 ~shared =
  create [ { count = cores; capacity = s1 }; { count = 1; capacity = shared } ]

let cluster ~nodes ~cores ~s1 ~l2 ~mem =
  create
    [
      { count = nodes * cores; capacity = s1 };
      { count = nodes; capacity = l2 };
      { count = nodes; capacity = mem };
    ]

let pp_tree ppf h =
  let levels = n_levels h in
  for l = levels downto 1 do
    let indent = String.make (2 * (levels - l)) ' ' in
    Format.fprintf ppf "%sL%d: %d unit%s x %d words" indent l (count h ~level:l)
      (if count h ~level:l = 1 then "" else "s")
      (capacity h ~level:l);
    if l > 1 then
      Format.fprintf ppf "  (fan-out %d)" (fan_out h ~level:(l - 1));
    if l = 1 then Format.fprintf ppf "  <- processors";
    Format.pp_print_newline ppf ()
  done

let pp ppf h =
  Format.fprintf ppf "hierarchy[";
  Array.iteri
    (fun i { count; capacity } ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "L%d: %d x %d words" (i + 1) count capacity)
    h.specs;
  Format.fprintf ppf "]"
