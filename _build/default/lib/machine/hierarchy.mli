(** The multi-node, multi-level memory hierarchy of Section 3.4 (see
    Fig. 1 of the paper).

    A hierarchy has [L] levels.  Level 1 is the innermost storage
    (registers / private caches): [N_1 = P] units — one per processor —
    each holding [S_1] words.  Level [L] is the outermost: [N_L] main
    memories connected by the interconnect.  Each level-[l] unit has a
    unique parent unit at level [l+1]; fan-out is uniform, so
    [N_l mod N_{l+1} = 0]. *)

type level_spec = {
  count : int;     (** [N_l]: number of storage units at this level *)
  capacity : int;  (** [S_l]: words (red pebbles) per unit; must be positive *)
}

type t

val create : level_spec list -> t
(** [create specs] with [specs] listed innermost (level 1) first.
    Raises [Invalid_argument] when the list is empty, a count or
    capacity is non-positive, counts do not weakly decrease, or a count
    is not divisible by its parent level's count. *)

val n_levels : t -> int
(** [L]. *)

val count : t -> level:int -> int
(** [N_l]; levels are 1-based.  Raises [Invalid_argument] out of range. *)

val capacity : t -> level:int -> int
(** [S_l]. *)

val processors : t -> int
(** [P = N_1]. *)

val fan_out : t -> level:int -> int
(** [N_l / N_{l+1}] for [level < L]: the number of level-[l] children
    under one level-[l+1] unit. *)

val parent_unit : t -> level:int -> int -> int
(** [parent_unit h ~level j] is the index of the level-[l+1] unit above
    level-[l] unit [j].  Requires [level < L]. *)

val children_units : t -> level:int -> int -> int list
(** Indices of the level-[l-1] units below a level-[l] unit.  Requires
    [level > 1]. *)

val unit_of_processor : t -> level:int -> int -> int
(** The level-[l] unit in the subtree of which processor [p] sits
    (processor [p] is level-1 unit [p]). *)

val aggregate_capacity : t -> level:int -> int
(** [S_l * N_l]: total words available at a level. *)

val two_level : s:int -> t
(** The classic Hong–Kung setting: one processor, [s] red pebbles, one
    unbounded main memory — encoded as levels [(1, s); (1, max_int/2)]. *)

val smp : cores:int -> s1:int -> shared:int -> t
(** A shared-memory node: [cores] processors with [s1] private words
    each, under a single shared memory of [shared] words. *)

val cluster : nodes:int -> cores:int -> s1:int -> l2:int -> mem:int -> t
(** The paper's target shape: [nodes] main memories of [mem] words,
    each above an [l2]-word shared cache, each above [cores] processors
    with [s1] private words. *)

val pp : Format.formatter -> t -> unit

val pp_tree : Format.formatter -> t -> unit
(** Multi-line rendering of the Fig.-1 shape: one row per level,
    outermost first, showing unit counts, capacities and fan-out. *)
