lib/machine/hierarchy.ml: Array Format List String
