lib/machine/balance.ml: Format
