lib/machine/hierarchy.mli: Format
