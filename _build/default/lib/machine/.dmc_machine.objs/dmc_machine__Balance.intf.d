lib/machine/balance.mli: Format
