lib/machine/machines.mli: Format Hierarchy
