lib/machine/machines.ml: Format Hierarchy List String
