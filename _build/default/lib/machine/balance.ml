type verdict = Bandwidth_bound | Not_bandwidth_bound | Indeterminate

let verdict_to_string = function
  | Bandwidth_bound -> "bandwidth-bound"
  | Not_bandwidth_bound -> "not bandwidth-bound"
  | Indeterminate -> "indeterminate"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

let lb_per_flop ~lb_per_unit ~units ~work =
  if work <= 0.0 then invalid_arg "Balance.lb_per_flop: non-positive work";
  lb_per_unit *. float_of_int units /. work

let classify_lower ~lb_per_flop ~balance =
  if lb_per_flop > balance then Bandwidth_bound else Indeterminate

let classify_upper ~ub_per_flop ~balance =
  if ub_per_flop < balance then Not_bandwidth_bound else Indeterminate

let classify ~lb_per_flop ~ub_per_flop ~balance =
  if lb_per_flop > ub_per_flop then
    invalid_arg "Balance.classify: lower bound exceeds upper bound";
  if lb_per_flop > balance then Bandwidth_bound
  else if ub_per_flop < balance then Not_bandwidth_bound
  else Indeterminate
