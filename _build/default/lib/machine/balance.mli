(** The machine-balance analysis of Section 5 (Equations 4–10).

    An algorithm with total work [|V|] FLOPs, a data-movement lower
    bound [LB] at some memory unit and an upper bound [UB] is compared
    against the machine-balance value [B / (|P| F)] (words/FLOP) of that
    unit:

    - Equation 7: if [LB * N / |V| > balance] the algorithm is
      {e bandwidth bound} at that level no matter how it is optimized.
    - Equation 8: if [UB * N / |V| < balance] there is at least one
      execution order that is {e not} constrained by that level's
      bandwidth.
    - Otherwise the bounds do not decide the question. *)

type verdict =
  | Bandwidth_bound
      (** Eq. 7 violated: even the lower bound exceeds what the machine
          can stream per FLOP. *)
  | Not_bandwidth_bound
      (** Eq. 8 violated: even the upper bound fits under the balance. *)
  | Indeterminate
      (** [lb_per_flop <= balance <= ub_per_flop]. *)

val pp_verdict : Format.formatter -> verdict -> unit

val verdict_to_string : verdict -> string

val lb_per_flop : lb_per_unit:float -> units:int -> work:float -> float
(** [LB * N / |V|], the left-hand side of Eq. 7. *)

val classify :
  lb_per_flop:float -> ub_per_flop:float -> balance:float -> verdict
(** Raises [Invalid_argument] when [lb_per_flop > ub_per_flop] (the
    bounds would be inconsistent). *)

val classify_lower : lb_per_flop:float -> balance:float -> verdict
(** Eq. 7 only: [Bandwidth_bound] or [Indeterminate]. *)

val classify_upper : ub_per_flop:float -> balance:float -> verdict
(** Eq. 8 only: [Not_bandwidth_bound] or [Indeterminate]. *)
