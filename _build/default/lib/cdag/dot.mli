(** Graphviz export of CDAGs for visual inspection of the generated
    workloads and of partitions/wavefronts computed by the bound
    engines. *)

val to_string : ?name:string -> ?highlight:Cdag.vertex list -> Cdag.t -> string
(** DOT source.  Inputs are drawn as boxes, outputs as double circles,
    vertices in [highlight] are filled. *)

val to_file : ?name:string -> ?highlight:Cdag.vertex list -> string -> Cdag.t -> unit
(** Write {!to_string} to the given path. *)
