module Heap = Dmc_util.Heap

let order g =
  let n = Cdag.n_vertices g in
  let indeg = Array.init n (Cdag.in_degree g) in
  let ready = Heap.create () in
  Array.iteri (fun v d -> if d = 0 then Heap.push ready ~prio:v ~value:v) indeg;
  let out = Array.make n 0 in
  let k = ref 0 in
  let rec drain () =
    match Heap.pop_min ready with
    | None -> ()
    | Some (_, u) ->
        out.(!k) <- u;
        incr k;
        Cdag.iter_succ g u (fun v ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then Heap.push ready ~prio:v ~value:v);
        drain ()
  in
  drain ();
  assert (!k = n);
  out

let is_order g perm =
  let n = Cdag.n_vertices g in
  if Array.length perm <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun i v ->
        if v < 0 || v >= n || pos.(v) >= 0 then ok := false else pos.(v) <- i)
      perm;
    if !ok then
      Cdag.iter_edges g (fun u v -> if pos.(u) >= pos.(v) then ok := false);
    !ok
  end

let depth g =
  let d = Array.make (Cdag.n_vertices g) 0 in
  Array.iter
    (fun v ->
      Cdag.iter_pred g v (fun u -> if d.(u) + 1 > d.(v) then d.(v) <- d.(u) + 1))
    (order g);
  d

let height g =
  let n = Cdag.n_vertices g in
  let h = Array.make n 0 in
  let ord = order g in
  for i = n - 1 downto 0 do
    let v = ord.(i) in
    Cdag.iter_succ g v (fun w -> if h.(w) + 1 > h.(v) then h.(v) <- h.(w) + 1)
  done;
  h

let critical_path g =
  if Cdag.n_vertices g = 0 then 0
  else 1 + Array.fold_left max 0 (depth g)

let layers g =
  let d = depth g in
  let max_d = Array.fold_left max 0 d in
  let out = Array.make (max_d + 1) [] in
  for v = Cdag.n_vertices g - 1 downto 0 do
    out.(d.(v)) <- v :: out.(d.(v))
  done;
  out
