module Bitset = Dmc_util.Bitset

let closure step g start_set =
  let n = Cdag.n_vertices g in
  let seen = Bitset.copy start_set in
  let stack = Stack.create () in
  Bitset.iter (fun v -> Stack.push v stack) start_set;
  ignore n;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    step g u (fun v ->
        if not (Bitset.mem seen v) then begin
          Bitset.add seen v;
          Stack.push v stack
        end)
  done;
  seen

let forward_closure g s = closure Cdag.iter_succ g s
let backward_closure g s = closure Cdag.iter_pred g s

let descendants g x =
  let s = Bitset.create (Cdag.n_vertices g) in
  Bitset.add s x;
  let d = forward_closure g s in
  Bitset.remove d x;
  d

let ancestors g x =
  let s = Bitset.create (Cdag.n_vertices g) in
  Bitset.add s x;
  let a = backward_closure g s in
  Bitset.remove a x;
  a

let reaches g u v =
  u = v
  ||
  let s = Bitset.create (Cdag.n_vertices g) in
  Bitset.add s u;
  Bitset.mem (forward_closure g s) v

let is_convex g set =
  (* In a topological scan, a vertex outside [set] that has an ancestor
     in [set] must not have a descendant in [set].  We propagate a
     "tainted" flag: outside-vertices reachable from the set. *)
  let n = Cdag.n_vertices g in
  let tainted = Bitset.create n in
  let ok = ref true in
  Array.iter
    (fun v ->
      let from_set = ref false and from_tainted = ref false in
      Cdag.iter_pred g v (fun u ->
          if Bitset.mem set u then from_set := true;
          if Bitset.mem tainted u then from_tainted := true);
      if Bitset.mem set v then begin
        if !from_tainted then ok := false
      end
      else if !from_set || !from_tainted then Bitset.add tainted v)
    (Topo.order g);
  !ok

let transitive_closure g =
  let n = Cdag.n_vertices g in
  let closure = Array.init n (fun _ -> Bitset.create n) in
  let ord = Topo.order g in
  for i = n - 1 downto 0 do
    let v = ord.(i) in
    Bitset.add closure.(v) v;
    Cdag.iter_succ g v (fun w ->
        let merged = Bitset.union closure.(v) closure.(w) in
        closure.(v) <- merged)
  done;
  closure
