(** Topological orders and structural depth of CDAGs. *)

val order : Cdag.t -> Cdag.vertex array
(** A topological order of all vertices (Kahn's algorithm, smallest-id
    first among the ready vertices, so the order is deterministic). *)

val is_order : Cdag.t -> Cdag.vertex array -> bool
(** Whether the given permutation of [0 .. n-1] lists every vertex after
    all of its predecessors.  Also rejects non-permutations. *)

val depth : Cdag.t -> int array
(** [depth g].(v) is the number of edges on the longest path from any
    source to [v] (sources have depth 0). *)

val height : Cdag.t -> int array
(** Dual of {!depth}: longest path from [v] down to any sink. *)

val critical_path : Cdag.t -> int
(** Number of vertices on the longest source-to-sink path; the span of
    the computation (lower bound on parallel steps). *)

val layers : Cdag.t -> Cdag.vertex list array
(** Vertices grouped by {!depth}: index [d] holds the vertices at depth
    [d], ascending. *)
