(** Structural CDAG transformations and the classic identities that go
    with them.

    - {!transpose} reverses every edge and swaps the input/output
      tagging.  Note that the Hong–Kung I/O complexity is {e not}
      invariant under transposition at fixed [S]: the folklore
      game-reversal argument breaks because the reverse of a deletion
      would have to conjure a red pebble without its (reversed)
      predecessors being red.  The test suite pins an 8-vertex
      counterexample where the optima differ by one I/O.
    - {!disjoint_union} places two CDAGs side by side; optimal I/O is
      additive across disconnected components (a special case of the
      decomposition theorem, with equality).
    - {!series} feeds every output of the first CDAG into the
      corresponding input of the second, modelling pipeline
      composition. *)

val transpose : Cdag.t -> Cdag.t
(** Same vertex ids; every edge reversed; inputs and outputs swap
    roles.  Involutive up to structural equality. *)

type union = {
  graph : Cdag.t;
  left : Cdag.vertex -> Cdag.vertex;   (** id in the union of a left vertex *)
  right : Cdag.vertex -> Cdag.vertex;
}

val disjoint_union : Cdag.t -> Cdag.t -> union
(** Left vertices keep their ids; right vertices are shifted by the
    left vertex count.  Tags are the unions of the originals'. *)

val series : Cdag.t -> Cdag.t -> wire:(Cdag.vertex * Cdag.vertex) list -> Cdag.t
(** [series a b ~wire] is the disjoint union plus an edge from (left)
    [u] to (right) [v] for each [(u, v)] in [wire]; each wired [v]
    loses its input tag (it is now computed from upstream), each wired
    [u] keeps its output tag only if it still had one.  Raises
    [Invalid_argument] if a wire's [v] is not a tagged input of [b] or
    [u] is not a tagged output of [a]. *)
