let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "cdag") ?(highlight = []) g =
  let hl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace hl v ()) highlight;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontsize=10];\n";
  Cdag.iter_vertices g (fun v ->
      let shape =
        if Cdag.is_input g v then "box"
        else if Cdag.is_output g v then "doublecircle"
        else "ellipse"
      in
      let style =
        if Hashtbl.mem hl v then ", style=filled, fillcolor=lightblue" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" v
           (escape (Cdag.label g v)) shape style));
  Cdag.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?highlight g))
