type violation =
  | Source_not_input of Cdag.vertex
  | Sink_not_output of Cdag.vertex
  | Input_has_pred of Cdag.vertex

let pp_violation ppf = function
  | Source_not_input v -> Format.fprintf ppf "source %d is not an input" v
  | Sink_not_output v -> Format.fprintf ppf "sink %d is not an output" v
  | Input_has_pred v -> Format.fprintf ppf "input %d has a predecessor" v

let rbw g =
  Cdag.fold_vertices g
    (fun acc v ->
      if Cdag.is_input g v && Cdag.in_degree g v > 0 then
        Input_has_pred v :: acc
      else acc)
    []
  |> List.rev

let hong_kung g =
  let strict =
    Cdag.fold_vertices g
      (fun acc v ->
        let acc =
          if Cdag.in_degree g v = 0 && not (Cdag.is_input g v) then
            Source_not_input v :: acc
          else acc
        in
        if Cdag.out_degree g v = 0 && not (Cdag.is_output g v) then
          Sink_not_output v :: acc
        else acc)
      []
  in
  List.rev_append strict (rbw g) |> List.sort compare

let is_hong_kung g = hong_kung g = []
let is_rbw g = rbw g = []
