let transpose g =
  let n = Cdag.n_vertices g in
  let b = Cdag.Builder.create ~hint:n () in
  for v = 0 to n - 1 do
    ignore (Cdag.Builder.add_vertex ~label:(Cdag.label g v) b)
  done;
  Cdag.iter_edges g (fun u v -> Cdag.Builder.add_edge b v u);
  Cdag.Builder.freeze ~inputs:(Cdag.outputs g) ~outputs:(Cdag.inputs g) b

type union = {
  graph : Cdag.t;
  left : Cdag.vertex -> Cdag.vertex;
  right : Cdag.vertex -> Cdag.vertex;
}

let disjoint_union a b_graph =
  let na = Cdag.n_vertices a and nb = Cdag.n_vertices b_graph in
  let b = Cdag.Builder.create ~hint:(na + nb) () in
  for v = 0 to na - 1 do
    ignore (Cdag.Builder.add_vertex ~label:(Cdag.label a v) b)
  done;
  for v = 0 to nb - 1 do
    ignore (Cdag.Builder.add_vertex ~label:(Cdag.label b_graph v) b)
  done;
  Cdag.iter_edges a (fun u v -> Cdag.Builder.add_edge b u v);
  Cdag.iter_edges b_graph (fun u v -> Cdag.Builder.add_edge b (u + na) (v + na));
  let shift = List.map (fun v -> v + na) in
  let graph =
    Cdag.Builder.freeze
      ~inputs:(Cdag.inputs a @ shift (Cdag.inputs b_graph))
      ~outputs:(Cdag.outputs a @ shift (Cdag.outputs b_graph))
      b
  in
  let check n what v =
    if v < 0 || v >= n then invalid_arg ("Transform.disjoint_union: " ^ what)
  in
  {
    graph;
    left = (fun v -> check na "left vertex" v; v);
    right = (fun v -> check nb "right vertex" v; v + na);
  }

let series a b_graph ~wire =
  let u = disjoint_union a b_graph in
  List.iter
    (fun (src, dst) ->
      if not (Cdag.is_output a src) then
        invalid_arg "Transform.series: wire source is not an output of the first CDAG";
      if not (Cdag.is_input b_graph dst) then
        invalid_arg "Transform.series: wire target is not an input of the second CDAG")
    wire;
  (* Rebuild with the wire edges and the adjusted tagging. *)
  let na = Cdag.n_vertices a in
  let g = u.graph in
  let b = Cdag.Builder.create ~hint:(Cdag.n_vertices g) () in
  for v = 0 to Cdag.n_vertices g - 1 do
    ignore (Cdag.Builder.add_vertex ~label:(Cdag.label g v) b)
  done;
  Cdag.iter_edges g (fun x y -> Cdag.Builder.add_edge b x y);
  List.iter (fun (src, dst) -> Cdag.Builder.add_edge b src (dst + na)) wire;
  let wired_inputs = List.map (fun (_, dst) -> dst + na) wire in
  let inputs =
    List.filter (fun v -> not (List.mem v wired_inputs)) (Cdag.inputs g)
  in
  Cdag.Builder.freeze ~inputs ~outputs:(Cdag.outputs g) b
