module Bitset = Dmc_util.Bitset

type part = {
  graph : Cdag.t;
  to_parent : Cdag.vertex array;
  of_parent : Cdag.vertex -> Cdag.vertex option;
}

let induced g set =
  let n = Cdag.n_vertices g in
  let to_parent = Array.of_list (Bitset.elements set) in
  let map = Array.make n (-1) in
  Array.iteri (fun i v -> map.(v) <- i) to_parent;
  let b = Cdag.Builder.create ~hint:(Array.length to_parent) () in
  Array.iter
    (fun v -> ignore (Cdag.Builder.add_vertex ~label:(Cdag.label g v) b))
    to_parent;
  Array.iteri
    (fun i v ->
      Cdag.iter_succ g v (fun w -> if map.(w) >= 0 then Cdag.Builder.add_edge b i map.(w)))
    to_parent;
  let tag pred =
    Array.to_list to_parent
    |> List.filteri (fun _ v -> pred v)
    |> List.map (fun v -> map.(v))
  in
  let inputs = tag (Cdag.is_input g) and outputs = tag (Cdag.is_output g) in
  let graph = Cdag.Builder.freeze ~inputs ~outputs b in
  let of_parent v =
    if v < 0 || v >= n || map.(v) < 0 then None else Some map.(v)
  in
  { graph; to_parent; of_parent }

let induced_list g vs =
  induced g (Bitset.of_list (Cdag.n_vertices g) vs)

let partition g color =
  let n = Cdag.n_vertices g in
  if Array.length color <> n then invalid_arg "Subgraph.partition: bad color array";
  let k = 1 + Array.fold_left max (-1) color in
  if k <= 0 then [||]
  else begin
    let sets = Array.init k (fun _ -> Bitset.create n) in
    Array.iteri
      (fun v c ->
        if c < 0 then invalid_arg "Subgraph.partition: negative color";
        Bitset.add sets.(c) v)
      color;
    Array.map (induced g) sets
  end

let boundary_in g set =
  let n = Cdag.n_vertices g in
  let out = Bitset.create n in
  Bitset.iter
    (fun v -> Cdag.iter_pred g v (fun u -> if not (Bitset.mem set u) then Bitset.add out u))
    set;
  out

let boundary_out g set =
  let n = Cdag.n_vertices g in
  let out = Bitset.create n in
  Bitset.iter
    (fun v ->
      if Cdag.is_output g v then Bitset.add out v
      else
        Cdag.iter_succ g v (fun w ->
            if not (Bitset.mem set w) then Bitset.add out v))
    set;
  out

let drop_inputs g =
  let n = Cdag.n_vertices g in
  let keep = Bitset.create n in
  let di = ref 0 in
  Cdag.iter_vertices g (fun v ->
      if Cdag.is_input g v then incr di else Bitset.add keep v);
  let part = induced g keep in
  let graph = Cdag.retag part.graph ~inputs:[] ~outputs:(Cdag.outputs part.graph) in
  ({ part with graph }, !di)

let drop_io g =
  let n = Cdag.n_vertices g in
  let keep = Bitset.create n in
  let di = ref 0 and d_o = ref 0 in
  Cdag.iter_vertices g (fun v ->
      if Cdag.is_input g v then incr di
      else if Cdag.is_output g v then incr d_o
      else Bitset.add keep v);
  let part = induced g keep in
  let graph = Cdag.retag part.graph ~inputs:[] ~outputs:[] in
  ({ part with graph }, !di, !d_o)
