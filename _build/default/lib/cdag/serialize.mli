(** A small line-oriented text format for CDAGs, so that workloads can
    be saved, diffed and re-loaded by the CLI:

    {v
    cdag <n_vertices>
    i <v> ...        # input tags
    o <v> ...        # output tags
    e <u> <v>        # one edge per line
    l <v> <label>    # optional labels
    v}

    Lines starting with [#] and blank lines are ignored. *)

val to_string : Cdag.t -> string

val of_string : string -> (Cdag.t, string) result
(** Parse; [Error] carries a message with the offending line number. *)

val to_file : string -> Cdag.t -> unit

val of_file : string -> (Cdag.t, string) result

val equal_structure : Cdag.t -> Cdag.t -> bool
(** Same vertex count, edges and tags (labels ignored) — used by the
    round-trip tests. *)
