(** Induced subgraphs and the decomposition transforms of Section 3.2.

    The decomposition theorem (Theorem 2) lets one partition the vertex
    set of a CDAG arbitrarily, analyze each induced sub-CDAG
    independently, and {e add} the per-part lower bounds.  The functions
    here build those induced sub-CDAGs, keeping the tagging rules of the
    theorem: part inputs are [I ∩ V_i] and part outputs are [O ∩ V_i]
    (edges crossing parts are simply dropped). *)

module Bitset := Dmc_util.Bitset

type part = {
  graph : Cdag.t;                 (** the induced sub-CDAG *)
  to_parent : Cdag.vertex array;  (** part id -> original id *)
  of_parent : Cdag.vertex -> Cdag.vertex option;
      (** original id -> part id, [None] when outside the part *)
}

val induced : Cdag.t -> Bitset.t -> part
(** Sub-CDAG induced by a vertex set, with Theorem-2 tagging
    ([I_i = I ∩ V_i], [O_i = O ∩ V_i]). *)

val induced_list : Cdag.t -> Cdag.vertex list -> part

val partition : Cdag.t -> int array -> part array
(** [partition g color] splits [g] by the per-vertex color (an
    arbitrary, not necessarily convex, assignment; colors must be dense
    in [0 .. k-1]).  Returns the [k] induced parts of Theorem 2. *)

val boundary_in : Cdag.t -> Bitset.t -> Bitset.t
(** [In(V_i)] of Definition 5: vertices outside the set with at least
    one successor inside. *)

val boundary_out : Cdag.t -> Bitset.t -> Bitset.t
(** [Out(V_i)] of Definition 5: vertices of the set that are tagged
    outputs or have at least one successor outside the set. *)

val drop_inputs : Cdag.t -> part * int
(** Corollary 2 restricted to the input side: remove every tagged
    input vertex, keep the output tagging on the survivors, and return
    the remaining CDAG with [|dI|].  This is the minimal surgery that
    makes Lemma 2 (which requires [I = ∅] but tolerates outputs)
    applicable. *)

val drop_io : Cdag.t -> part * int * int
(** The input/output-deletion transform of Corollary 2: remove every
    tagged input vertex ([dI]) and every tagged output vertex ([dO],
    excluding those already counted in [dI]), returning the remaining
    CDAG — which has empty input and output sets — as a {!part} (so
    surviving vertices can be mapped), together with [|dI|] and [|dO|].
    A lower bound [Q] on the result yields the bound [Q + |dI| + |dO|]
    on the original. *)
