lib/cdag/transform.ml: Cdag List
