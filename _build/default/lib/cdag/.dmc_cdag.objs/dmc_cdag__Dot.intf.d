lib/cdag/dot.mli: Cdag
