lib/cdag/reach.ml: Array Cdag Dmc_util Stack Topo
