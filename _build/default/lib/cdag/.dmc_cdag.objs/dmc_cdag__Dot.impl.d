lib/cdag/dot.ml: Buffer Cdag Fun Hashtbl List Printf String
