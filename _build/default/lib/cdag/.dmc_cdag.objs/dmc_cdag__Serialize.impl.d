lib/cdag/serialize.ml: Array Buffer Cdag Fun List Printf String
