lib/cdag/reach.mli: Cdag Dmc_util
