lib/cdag/cdag.mli: Format
