lib/cdag/cdag.ml: Array Dmc_util Format List Queue
