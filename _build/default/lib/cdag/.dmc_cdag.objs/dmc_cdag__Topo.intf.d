lib/cdag/topo.mli: Cdag
