lib/cdag/topo.ml: Array Cdag Dmc_util
