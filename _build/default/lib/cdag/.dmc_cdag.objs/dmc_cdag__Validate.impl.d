lib/cdag/validate.ml: Cdag Format List
