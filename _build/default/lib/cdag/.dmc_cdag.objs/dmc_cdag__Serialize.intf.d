lib/cdag/serialize.mli: Cdag
