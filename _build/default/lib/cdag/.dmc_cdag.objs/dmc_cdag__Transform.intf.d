lib/cdag/transform.mli: Cdag
