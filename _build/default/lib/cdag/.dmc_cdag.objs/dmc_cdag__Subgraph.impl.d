lib/cdag/subgraph.ml: Array Cdag Dmc_util List
