lib/cdag/validate.mli: Cdag Format
