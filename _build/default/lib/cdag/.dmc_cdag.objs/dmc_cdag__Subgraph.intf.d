lib/cdag/subgraph.mli: Cdag Dmc_util
