(** Reachability queries: ancestors, descendants, and convex closures.

    The wavefront lower bound (Section 3.3) needs, for a vertex [x],
    the partition [S_x = {x} ∪ Anc(x)] versus [T_x ⊇ Desc(x)]; these
    helpers compute the required vertex sets as bitsets. *)

module Bitset := Dmc_util.Bitset

val descendants : Cdag.t -> Cdag.vertex -> Bitset.t
(** Proper descendants of a vertex (excluding the vertex itself). *)

val ancestors : Cdag.t -> Cdag.vertex -> Bitset.t
(** Proper ancestors (excluding the vertex itself). *)

val forward_closure : Cdag.t -> Bitset.t -> Bitset.t
(** Everything reachable from the given set, including the set. *)

val backward_closure : Cdag.t -> Bitset.t -> Bitset.t

val reaches : Cdag.t -> Cdag.vertex -> Cdag.vertex -> bool
(** [reaches g u v] is true when there is a directed path [u ->* v]
    (true when [u = v]). *)

val is_convex : Cdag.t -> Bitset.t -> bool
(** A set [S] is convex when every path between two members stays in
    [S]; equivalently no path leaves and re-enters.  Checked by scanning
    a topological order. *)

val transitive_closure : Cdag.t -> Bitset.t array
(** [transitive_closure g].(v) is the set of vertices reachable from
    [v], including [v].  Quadratic memory — intended for the small
    graphs used by the exact bound engines. *)
