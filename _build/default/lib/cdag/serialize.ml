let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "cdag %d\n" (Cdag.n_vertices g));
  let dump_tags key vs =
    if vs <> [] then begin
      Buffer.add_string buf key;
      List.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) vs;
      Buffer.add_char buf '\n'
    end
  in
  dump_tags "i" (Cdag.inputs g);
  dump_tags "o" (Cdag.outputs g);
  Cdag.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v));
  Cdag.iter_vertices g (fun v ->
      let l = Cdag.label g v in
      if l <> "v" ^ string_of_int v then
        Buffer.add_string buf (Printf.sprintf "l %d %s\n" v l));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let exception Bad of string in
  try
    let builder = ref None in
    let inputs = ref [] and outputs = ref [] in
    let labels = ref [] in
    let edges = ref [] in
    let n_declared = ref (-1) in
    List.iteri
      (fun lineno0 line ->
        let lineno = lineno0 + 1 in
        let fail msg = raise (Bad (Printf.sprintf "line %d: %s" lineno msg)) in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          let words =
            String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
          in
          let int_of w =
            match int_of_string_opt w with
            | Some i -> i
            | None -> fail ("not an integer: " ^ w)
          in
          match words with
          | "cdag" :: [ n ] ->
              if !builder <> None then fail "duplicate cdag header";
              let n = int_of n in
              if n < 0 then fail "negative vertex count";
              n_declared := n;
              let b = Cdag.Builder.create ~hint:n () in
              for _ = 1 to n do
                ignore (Cdag.Builder.add_vertex b)
              done;
              builder := Some b
          | "i" :: vs -> inputs := !inputs @ List.map int_of vs
          | "o" :: vs -> outputs := !outputs @ List.map int_of vs
          | [ "e"; u; v ] -> edges := (int_of u, int_of v) :: !edges
          | "l" :: v :: rest ->
              labels := (int_of v, String.concat " " rest) :: !labels
          | _ -> fail ("unrecognized directive: " ^ line))
      lines;
    match !builder with
    | None -> Error "missing cdag header"
    | Some b ->
        let n = !n_declared in
        let check v =
          if v < 0 || v >= n then raise (Bad (Printf.sprintf "vertex %d out of range" v))
        in
        List.iter (fun (u, v) -> check u; check v; Cdag.Builder.add_edge b u v)
          (List.rev !edges);
        List.iter check !inputs;
        List.iter check !outputs;
        (* Labels are not supported after the fact by the builder; rebuild
           with labels if any were given. *)
        let g =
          if !labels = [] then
            Cdag.Builder.freeze ~inputs:!inputs ~outputs:!outputs b
          else begin
            let label_of = Array.make n "" in
            List.iter (fun (v, l) -> check v; label_of.(v) <- l) !labels;
            let b2 = Cdag.Builder.create ~hint:n () in
            for v = 0 to n - 1 do
              ignore (Cdag.Builder.add_vertex ~label:label_of.(v) b2)
            done;
            List.iter (fun (u, v) -> Cdag.Builder.add_edge b2 u v) (List.rev !edges);
            Cdag.Builder.freeze ~inputs:!inputs ~outputs:!outputs b2
          end
        in
        Ok g
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          of_string text)

let equal_structure a b =
  Cdag.n_vertices a = Cdag.n_vertices b
  && Cdag.n_edges a = Cdag.n_edges b
  && Cdag.inputs a = Cdag.inputs b
  && Cdag.outputs a = Cdag.outputs b
  &&
  let ok = ref true in
  Cdag.iter_edges a (fun u v -> if not (Cdag.has_edge b u v) then ok := false);
  !ok
