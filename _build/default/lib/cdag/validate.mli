(** Well-formedness checks for CDAGs under the two conventions used in
    the paper. *)

type violation =
  | Source_not_input of Cdag.vertex
      (** a vertex without predecessors is not tagged as an input *)
  | Sink_not_output of Cdag.vertex
      (** a vertex without successors is not tagged as an output *)
  | Input_has_pred of Cdag.vertex
      (** an input vertex has an incoming edge (forbidden by Def. 1) *)

val pp_violation : Format.formatter -> violation -> unit

val hong_kung : Cdag.t -> violation list
(** Violations of the strict Hong–Kung convention (Definition 2): every
    source must be an input, every sink an output, and inputs have no
    incoming edges.  An empty list means the graph is a valid input for
    the red-blue game. *)

val rbw : Cdag.t -> violation list
(** Violations under the flexible RBW convention (Definition 4): only
    [Input_has_pred] remains an error — sources may be untagged (they
    fire freely with R3) and sinks may be untagged (no final blue pebble
    required). *)

val is_hong_kung : Cdag.t -> bool

val is_rbw : Cdag.t -> bool
