let check_pos name x = if x <= 0 then invalid_arg ("Analytic: " ^ name ^ " must be positive")

let pow_int x k =
  if k < 0 then invalid_arg "Analytic.pow_int: negative exponent";
  let rec go acc x k =
    if k = 0 then acc
    else if k land 1 = 1 then go (acc *. x) (x *. x) (k lsr 1)
    else go acc (x *. x) (k lsr 1)
  in
  go 1.0 x k

let fi = float_of_int

let matmul_lb ~n ~s =
  check_pos "n" n;
  check_pos "s" s;
  fi n ** 3.0 /. (2.0 *. sqrt (2.0 *. fi s))

let outer_product_io ~n =
  check_pos "n" n;
  (2.0 *. fi n) +. (fi n *. fi n)

let composite_io_upper ~n =
  check_pos "n" n;
  (4.0 *. fi n) +. 1.0

let fft_lb ~n ~s =
  check_pos "n" n;
  if s < 2 then invalid_arg "Analytic.fft_lb: s must be >= 2";
  let log2 x = log x /. log 2.0 in
  fi n *. log2 (fi n) /. (2.0 *. log2 (fi s))

let grid_points ~d ~n = pow_int (fi n) d

let jacobi_lb ~d ~n ~steps ~s ~p =
  check_pos "d" d;
  check_pos "n" n;
  check_pos "steps" steps;
  check_pos "s" s;
  check_pos "p" p;
  grid_points ~d ~n *. fi steps
  /. (4.0 *. fi p *. ((2.0 *. fi s) ** (1.0 /. fi d)))

let jacobi_u ~d ~s =
  check_pos "d" d;
  check_pos "s" s;
  4.0 *. fi s *. ((2.0 *. fi s) ** (1.0 /. fi d))

let ghost_cells ~d ~block =
  check_pos "d" d;
  check_pos "block" block;
  pow_int (fi block +. 2.0) d -. pow_int (fi block) d

let jacobi_horizontal_ub ~d ~block ~steps =
  check_pos "steps" steps;
  ghost_cells ~d ~block *. fi steps

let jacobi_balance_threshold ~d ~s =
  check_pos "d" d;
  check_pos "s" s;
  1.0 /. (4.0 *. ((2.0 *. fi s) ** (1.0 /. fi d)))

let jacobi_max_dim ~s ~balance =
  check_pos "s" s;
  if balance <= 0.0 then invalid_arg "Analytic.jacobi_max_dim: balance";
  4.0 *. balance *. (log (2.0 *. fi s) /. log 2.0)

let cg_vertical_lb ~d ~n ~steps ~p =
  check_pos "p" p;
  check_pos "steps" steps;
  6.0 *. grid_points ~d ~n *. fi steps /. fi p

let cg_vertical_lb_exact ~d ~n ~steps ~s ~p =
  check_pos "p" p;
  check_pos "s" s;
  check_pos "steps" steps;
  let nd = grid_points ~d ~n in
  Float.max 0.0 (2.0 *. fi steps *. ((3.0 *. nd) -. (2.0 *. fi s)) /. fi p)

let cg_flops ~d ~n ~steps =
  check_pos "steps" steps;
  20.0 *. grid_points ~d ~n *. fi steps

let cg_horizontal_ub ~d ~block ~steps =
  check_pos "steps" steps;
  ghost_cells ~d ~block *. fi steps

let cg_vertical_per_flop () = 6.0 /. 20.0

let cg_horizontal_per_flop ~d ~n ~nodes =
  check_pos "n" n;
  check_pos "nodes" nodes;
  6.0 *. (fi nodes ** (1.0 /. fi d)) /. (20.0 *. fi n)

let gmres_vertical_lb ~d ~n ~m ~p =
  check_pos "m" m;
  check_pos "p" p;
  6.0 *. grid_points ~d ~n *. fi m /. fi p

let gmres_vertical_lb_exact ~d ~n ~m ~s ~p =
  check_pos "m" m;
  check_pos "p" p;
  check_pos "s" s;
  let nd = grid_points ~d ~n in
  Float.max 0.0 (2.0 *. fi m *. ((3.0 *. nd) -. (2.0 *. fi s)) /. fi p)

let gmres_flops ~d ~n ~m =
  check_pos "m" m;
  let nd = grid_points ~d ~n in
  (20.0 *. nd *. fi m) +. (nd *. fi m *. fi m)

let gmres_horizontal_ub ~d ~block ~m =
  check_pos "m" m;
  ghost_cells ~d ~block *. fi m

let gmres_vertical_per_flop ~m =
  check_pos "m" m;
  6.0 /. (fi m +. 20.0)

let gmres_horizontal_per_flop ~d ~n ~m ~nodes =
  check_pos "n" n;
  check_pos "m" m;
  check_pos "nodes" nodes;
  6.0 *. (fi nodes ** (1.0 /. fi d)) /. (fi n *. fi m)
