module Cdag = Dmc_cdag.Cdag
module Maxflow = Dmc_flow.Maxflow

let bound ~line_vertices ~f_inverse_2s =
  if line_vertices <= 0 || f_inverse_2s < 0 then invalid_arg "Lines.bound";
  float_of_int line_vertices /. (2.0 *. float_of_int (f_inverse_2s + 1))

let jacobi_f_inverse ~d ~s =
  if d <= 0 || s <= 0 then invalid_arg "Lines.jacobi_f_inverse";
  (2.0 *. ((2.0 *. float_of_int s) ** (1.0 /. float_of_int d))) -. 1.0

let jacobi_bound ~d ~n ~steps ~s =
  if n <= 0 || steps <= 0 then invalid_arg "Lines.jacobi_bound";
  let l = (float_of_int n ** float_of_int d) *. float_of_int steps in
  let f_inv = jacobi_f_inverse ~d ~s in
  l /. (2.0 *. (f_inv +. 1.0))

let max_disjoint_lines g =
  let inputs = Cdag.inputs g and outputs = Cdag.outputs g in
  if inputs = [] || outputs = [] then 0
  else begin
    (* Unit vertex capacities everywhere, endpoints included: lines may
       not share any vertex at all. *)
    let n = Cdag.n_vertices g in
    let v_in v = 2 * v and v_out v = (2 * v) + 1 in
    let net = Maxflow.create ((2 * n) + 2) in
    let src = 2 * n and dst = (2 * n) + 1 in
    for v = 0 to n - 1 do
      ignore (Maxflow.add_edge net ~src:(v_in v) ~dst:(v_out v) ~cap:1)
    done;
    Cdag.iter_edges g (fun u v ->
        ignore (Maxflow.add_edge net ~src:(v_out u) ~dst:(v_in v) ~cap:Maxflow.infinite));
    List.iter
      (fun v -> ignore (Maxflow.add_edge net ~src ~dst:(v_in v) ~cap:1))
      inputs;
    List.iter
      (fun v -> ignore (Maxflow.add_edge net ~src:(v_out v) ~dst ~cap:1))
      outputs;
    Maxflow.max_flow net ~src ~dst
  end
