module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag
module Vertex_cut = Dmc_flow.Vertex_cut

let minimum_set g vi =
  let out = Bitset.create (Cdag.n_vertices g) in
  Bitset.iter
    (fun v ->
      let all_outside =
        Cdag.fold_succ g v (fun acc w -> acc && not (Bitset.mem vi w)) true
      in
      if all_outside then Bitset.add out v)
    vi;
  out

let min_dominator g vi =
  let inputs = Cdag.inputs g in
  if inputs = [] || Bitset.is_empty vi then (0, [])
  else begin
    (* Inputs inside the subset are 0-length paths: they must be in
       every dominator.  The rest is a vertex min-cut from the
       remaining inputs to the remaining subset members. *)
    let shared = List.filter (Bitset.mem vi) inputs in
    let outside_inputs = List.filter (fun v -> not (Bitset.mem vi v)) inputs in
    let members = List.filter (fun v -> not (Cdag.is_input g v)) (Bitset.elements vi) in
    if outside_inputs = [] || members = [] then
      (List.length shared, shared)
    else begin
      let r =
        Vertex_cut.min_vertex_cut g ~from_set:outside_inputs ~to_set:members ()
      in
      (* Paths ending inside the subset may be cut at the member itself
         (members are cuttable), so the cut is a true dominator of the
         non-input members; add the shared inputs back. *)
      (List.length shared + r.Vertex_cut.size,
       List.sort compare (shared @ r.Vertex_cut.cut))
    end
  end

let check g ~s ~color =
  let n = Cdag.n_vertices g in
  if Array.length color <> n then Error "color array has wrong length"
  else begin
    let h = 1 + Array.fold_left max (-1) color in
    let bad = ref None in
    Array.iteri
      (fun v c ->
        if c < 0 && !bad = None then
          bad := Some (Printf.sprintf "vertex %d is uncolored" v))
      color;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let blocks = Array.init (max h 0) (fun _ -> Bitset.create n) in
        Array.iteri (fun v c -> Bitset.add blocks.(c) v) color;
        (* P2: no two-subset circuit *)
        let adj = Array.make_matrix (max h 1) (max h 1) false in
        Cdag.iter_edges g (fun u v ->
            if color.(u) <> color.(v) then adj.(color.(u)).(color.(v)) <- true);
        let circuit = ref None in
        for i = 0 to h - 1 do
          for j = i + 1 to h - 1 do
            if adj.(i).(j) && adj.(j).(i) && !circuit = None then circuit := Some (i, j)
          done
        done;
        (match !circuit with
        | Some (i, j) -> Error (Printf.sprintf "circuit between subsets %d and %d" i j)
        | None ->
            let nonempty =
              Array.to_list blocks |> List.filter (fun b -> not (Bitset.is_empty b))
            in
            let violation =
              List.find_map
                (fun b ->
                  let dom, _ = min_dominator g b in
                  if dom > s then Some "subset with minimum dominator > S"
                  else if Bitset.cardinal (minimum_set g b) > s then
                    Some "subset with |Min| > S"
                  else None)
                nonempty
            in
            (match violation with
            | Some msg -> Error msg
            | None -> Ok (List.length nonempty)))
  end

let of_rb_game g ~s moves =
  (match Rb_game.validate g ~s moves with
  | Some e ->
      failwith
        (Printf.sprintf "Hk_partition.of_rb_game: invalid game at step %d: %s"
           e.Rb_game.step e.Rb_game.reason)
  | None -> ());
  let n = Cdag.n_vertices g in
  let color = Array.make n (-1) in
  let phase = ref 0 and io_in_phase = ref 0 in
  let first_pebble v = if color.(v) < 0 then color.(v) <- !phase in
  let io_tick () =
    if !io_in_phase = s then begin
      incr phase;
      io_in_phase := 0
    end;
    incr io_in_phase
  in
  List.iter
    (fun (m : Rb_game.move) ->
      match m with
      | Rb_game.Load v ->
          io_tick ();
          first_pebble v
      | Rb_game.Store _ -> io_tick ()
      | Rb_game.Compute v -> first_pebble v
      | Rb_game.Delete _ -> ())
    moves;
  (* Unpebbled vertices (never needed by the game) join phase 0. *)
  Array.iteri (fun v c -> if c < 0 then color.(v) <- 0) color;
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt remap c with
      | Some c' -> c'
      | None ->
          let c' = !next in
          incr next;
          Hashtbl.replace remap c c';
          c')
    color
