module Cdag := Dmc_cdag.Cdag
module Hierarchy := Dmc_machine.Hierarchy

(** The parallel red-blue-white (P-RBW) pebble game of Definition 6 —
    the paper's model of a multi-node, multi-core machine with a
    multi-level storage hierarchy (Fig. 1).

    Pebbles come in [L] levels of "shades": level-[l] shade [j] lives in
    the [j]-th storage unit of level [l] of a {!Dmc_machine.Hierarchy.t}
    and at most [S_l] such pebbles exist per unit.  Blue pebbles model
    the unbounded input/output storage behind the level-[L] memories;
    white pebbles mark evaluation (no recomputation, as in {!Rbw_game}).

    The rules (names follow the paper):
    - R1 {e Input}: place a level-[L] pebble on a blue-pebbled vertex
      (also places white);
    - R2 {e Output}: place a blue pebble on a level-[L]-pebbled vertex;
    - R3 {e Remote get}: copy a vertex from one level-[L] unit to
      another — the {e horizontal} data movement;
    - R4 {e Move up}: copy from a level-[l+1] unit into one of its
      level-[l] children ([l < L]) — {e vertical}, toward the cores;
    - R5 {e Move down}: copy from a level-[l-1] unit into its level-[l]
      parent ([l > 1]) — {e vertical}, away from the cores;
    - R6 {e Compute}: processor [p] fires an unevaluated vertex whose
      predecessors all carry [p]'s own level-1 shade; places [p]'s
      level-1 pebble and a white pebble;
    - R7 {e Delete}: remove any red pebble.

    A complete game ends with white pebbles everywhere and blue pebbles
    on all outputs. *)

type move =
  | Input of { unit_id : int; v : Cdag.vertex }
  | Output of { unit_id : int; v : Cdag.vertex }
  | Remote_get of { src : int; dst : int; v : Cdag.vertex }
  | Move_up of { level : int; unit_id : int; v : Cdag.vertex }
      (** place the level-[level] pebble of unit [unit_id], copying from
          that unit's parent at level [level + 1] *)
  | Move_down of { level : int; unit_id : int; v : Cdag.vertex }
      (** place the level-[level] pebble of unit [unit_id], copying from
          one of that unit's children at level [level - 1] *)
  | Compute of { proc : int; v : Cdag.vertex }
  | Delete of { level : int; unit_id : int; v : Cdag.vertex }

val pp_move : Format.formatter -> move -> unit

type stats = {
  loads : int;                     (** R1 count *)
  stores : int;                    (** R2 count *)
  remote_gets : int;               (** R3 count: total horizontal words *)
  remote_gets_per_unit : int array;
      (** R3 count by destination level-[L] unit *)
  move_up : int array;
      (** index [l-1]: R4 moves placing level-[l] pebbles, [l < L] *)
  move_down : int array;
      (** index [l-1]: R5 moves placing level-[l] pebbles, [l > 1] *)
  move_down_per_unit : int array array;
      (** [.(l-1).(j)]: R5 moves placing level-[l] pebbles in unit [j] *)
  computes_per_proc : int array;
  max_occupancy : int array array;
      (** [.(l-1).(j)]: peak pebble count of unit [j] at level [l] *)
}

val boundary_traffic : stats -> level:int -> int
(** Words crossing the boundary between levels [level - 1] and
    [level] (for [2 <= level <= L]): R4 moves placing level-[level-1]
    pebbles plus R5 moves placing level-[level] pebbles.  This is the
    vertical data movement that Theorems 5 and 6 bound. *)

val vertical_io_total : stats -> int
(** Sum of all R1, R2, R4 and R5 moves. *)

type error = { step : int; reason : string }

val run : Hierarchy.t -> Cdag.t -> move list -> (stats, error) result
(** Replay and validate a game, enforcing every rule, all unit
    capacities, and the completion condition. *)

val validate : Hierarchy.t -> Cdag.t -> move list -> error option

val embed_sequential :
  Hierarchy.t -> proc:int -> Rbw_game.move list -> move list
(** Lift a sequential RBW game onto processor [proc] of the hierarchy:
    loads become [Input] followed by a chain of [Move_up]s down to
    [proc]'s level-1 unit, stores become a chain of [Move_down]s
    followed by [Output], computes and deletes stay at level 1 (deletes
    remove only the level-1 copy).  The embedding is a valid P-RBW game
    whenever the sequential game is valid with [s = S_1] and every
    intermediate level has enough capacity to hold all live values —
    guaranteed for {!Dmc_machine.Hierarchy.two_level}. *)
