module Hierarchy := Dmc_machine.Hierarchy

(** The parallel lower bounds of Section 4: Theorems 5–7 lift a
    sequential (single-processor) bound or a [U(2S)] estimate to the
    vertical and horizontal data movement of any valid P-RBW game. *)

val vertical_from_sequential :
  hierarchy:Hierarchy.t -> level:int -> seq_lb:(s:int -> float) -> float
(** Theorem 5: the level-[l] unit with the most write-back traffic
    receives at least [IO_1(C, S_{l-1} N_{l-1}) / N_l] words, where
    [IO_1(C, S)] is the sequential I/O lower bound with [S] words of
    fast memory, supplied as [seq_lb].  Requires [2 <= level <= L]. *)

val vertical_from_u :
  hierarchy:Hierarchy.t -> level:int -> work:float -> u:float -> float
(** Theorem 6: with [U = U(C, 2 S_{l-1})] the largest 2S-partition
    subset, the busiest level-[l] unit moves at least
    [(|V| / (U N_l) - N_{l-1} / N_l) * S_{l-1}] words; clamped at 0. *)

val horizontal_from_u :
  hierarchy:Hierarchy.t -> work:float -> u:float -> float
(** Theorem 7: the level-[L] unit whose processor group computes the
    most fires at least [(|V| / (U P_i) - 1) * S_L] remote-get words,
    with [P_i = P / N_L] the group size; clamped at 0. *)

val per_processor_work : hierarchy:Hierarchy.t -> work:float -> float
(** [|V| / P]: the work of the busiest processor is at least this. *)
