module Cdag := Dmc_cdag.Cdag

(** The original Hong–Kung red-blue pebble game (Definition 2).

    [S] red pebbles model the fast memory, unboundedly many blue
    pebbles the slow memory.  Recomputation {e is} allowed: a vertex
    may fire with rule R3 any number of times.  The I/O cost of a game
    is the number of R1 (load) plus R2 (store) moves.

    The engine replays a proposed move sequence, rejecting the first
    illegal move, and checks the completion condition (a blue pebble on
    every output).  It is the ground truth against which both the
    strategies (upper bounds) and the bound engines (lower bounds) are
    validated. *)

type move =
  | Load of Cdag.vertex     (** R1: blue -> red *)
  | Store of Cdag.vertex    (** R2: red -> blue *)
  | Compute of Cdag.vertex  (** R3: all predecessors red -> red *)
  | Delete of Cdag.vertex   (** R4: remove a red pebble *)

val pp_move : Format.formatter -> move -> unit

type stats = {
  loads : int;
  stores : int;
  io : int;            (** [loads + stores] *)
  computes : int;
  max_red : int;       (** peak number of red pebbles in use *)
}

type error = {
  step : int;          (** 0-based index of the offending move, or the
                           move-list length for a completion failure *)
  reason : string;
}

val run : Cdag.t -> s:int -> move list -> (stats, error) result
(** Play a complete game.  The initial state has a blue pebble on each
    tagged input.  Rules enforced: loads need a blue pebble, stores a
    red one, computes need every predecessor red (and the vertex must
    be a non-input), the red-pebble count never exceeds [S], and at the
    end every output holds a blue pebble.  Raises [Invalid_argument]
    when [s <= 0]. *)

val validate : Cdag.t -> s:int -> move list -> error option
(** [None] when {!run} succeeds. *)
