module Cdag = Dmc_cdag.Cdag

type report = {
  s : int;
  n_vertices : int;
  n_edges : int;
  io_floor : int;
  wavefront_lb : int;
  partition_lb : int option;
  partition_u_lb : int option;
  span_lb : int option;
  best_lb : int;
  belady_ub : int;
  lru_ub : int;
  trivial_ub : int;
  optimal_io : int option;
}

let io_floor g =
  let stored_outputs =
    List.length (List.filter (fun v -> not (Cdag.is_input g v)) (Cdag.outputs g))
  in
  Cdag.n_inputs g + stored_outputs

let analyze ?(exact_partition_limit = 9) ?(optimal_limit = 0) g ~s =
  let floor = io_floor g in
  let wavefront_lb = Wavefront.lower_bound g ~s in
  let small_enough = Cdag.n_compute g <= exact_partition_limit in
  let partition_lb =
    if small_enough then
      match Spartition.lower_bound_exact g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let partition_u_lb =
    if Cdag.n_compute g <= 22 && Cdag.n_vertices g <= 62 then
      match Spartition.lower_bound_u g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let span_lb =
    if Cdag.n_vertices g <= 16 then
      match Span.lower_bound g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let optimal_io =
    if optimal_limit > 0 && Cdag.n_vertices g <= min optimal_limit 20 then
      match Optimal.rbw_io g ~s with
      | io -> Some io
      | exception Optimal.Too_large _ -> None
    else None
  in
  let candidates =
    floor :: wavefront_lb
    :: List.filter_map Fun.id [ partition_lb; partition_u_lb; span_lb ]
  in
  {
    s;
    n_vertices = Cdag.n_vertices g;
    n_edges = Cdag.n_edges g;
    io_floor = floor;
    wavefront_lb;
    partition_lb;
    partition_u_lb;
    span_lb;
    best_lb = List.fold_left max 0 candidates;
    belady_ub = Strategy.io ~policy:Strategy.Belady g ~s;
    lru_ub = Strategy.io ~policy:Strategy.Lru g ~s;
    trivial_ub = Strategy.trivial_io g;
    optimal_io;
  }

let pp_report ppf r =
  let pp_opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some x -> Format.pp_print_int ppf x
  in
  Format.fprintf ppf
    "@[<v>CDAG: %d vertices, %d edges, S = %d@,\
     lower bounds: floor = %d, wavefront = %d, partition-H = %a, partition-U = %a, span = %a -> best = %d@,\
     upper bounds: belady = %d, lru = %d, trivial = %d@,\
     optimal: %a@]"
    r.n_vertices r.n_edges r.s r.io_floor r.wavefront_lb pp_opt r.partition_lb
    pp_opt r.partition_u_lb pp_opt r.span_lb r.best_lb r.belady_ub r.lru_ub
    r.trivial_ub pp_opt r.optimal_io

let report_to_json r =
  let module J = Dmc_util.Json in
  J.Obj
    [
      ("s", J.Int r.s);
      ("n_vertices", J.Int r.n_vertices);
      ("n_edges", J.Int r.n_edges);
      ( "lower_bounds",
        J.Obj
          [
            ("io_floor", J.Int r.io_floor);
            ("wavefront", J.Int r.wavefront_lb);
            ("partition_h", J.opt (fun x -> J.Int x) r.partition_lb);
            ("partition_u", J.opt (fun x -> J.Int x) r.partition_u_lb);
            ("span", J.opt (fun x -> J.Int x) r.span_lb);
            ("best", J.Int r.best_lb);
          ] );
      ( "upper_bounds",
        J.Obj
          [
            ("belady", J.Int r.belady_ub);
            ("lru", J.Int r.lru_ub);
            ("trivial", J.Int r.trivial_ub);
          ] );
      ("optimal_io", J.opt (fun x -> J.Int x) r.optimal_io);
    ]

let certify_wavefront ?(samples = 64) g ~s =
  ignore s;
  let part, _ = Dmc_cdag.Subgraph.drop_inputs g in
  let stripped = part.Dmc_cdag.Subgraph.graph in
  let n = Cdag.n_vertices stripped in
  if n = 0 then true
  else begin
    let candidates =
      if n <= Wavefront.exact_threshold then List.init n Fun.id
      else begin
        let rng = Dmc_util.Rng.create 0x5eed in
        List.init samples (fun _ -> Dmc_util.Rng.int rng n)
      end
    in
    let best = ref 0 and best_w = ref (-1) in
    List.iter
      (fun x ->
        let w = Wavefront.min_wavefront stripped x in
        if w > !best_w then begin
          best_w := w;
          best := x
        end)
      candidates;
    let witness = Wavefront.witness stripped !best in
    Wavefront.verify_witness stripped witness
    && (witness.Wavefront.paths = [] || List.length witness.Wavefront.paths = !best_w)
  end
