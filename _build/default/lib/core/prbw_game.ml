module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag
module Hierarchy = Dmc_machine.Hierarchy

type move =
  | Input of { unit_id : int; v : Cdag.vertex }
  | Output of { unit_id : int; v : Cdag.vertex }
  | Remote_get of { src : int; dst : int; v : Cdag.vertex }
  | Move_up of { level : int; unit_id : int; v : Cdag.vertex }
  | Move_down of { level : int; unit_id : int; v : Cdag.vertex }
  | Compute of { proc : int; v : Cdag.vertex }
  | Delete of { level : int; unit_id : int; v : Cdag.vertex }

let pp_move ppf = function
  | Input { unit_id; v } -> Format.fprintf ppf "input u%d v%d" unit_id v
  | Output { unit_id; v } -> Format.fprintf ppf "output u%d v%d" unit_id v
  | Remote_get { src; dst; v } -> Format.fprintf ppf "get u%d<-u%d v%d" dst src v
  | Move_up { level; unit_id; v } ->
      Format.fprintf ppf "up L%d u%d v%d" level unit_id v
  | Move_down { level; unit_id; v } ->
      Format.fprintf ppf "down L%d u%d v%d" level unit_id v
  | Compute { proc; v } -> Format.fprintf ppf "compute p%d v%d" proc v
  | Delete { level; unit_id; v } ->
      Format.fprintf ppf "delete L%d u%d v%d" level unit_id v

type stats = {
  loads : int;
  stores : int;
  remote_gets : int;
  remote_gets_per_unit : int array;
  move_up : int array;
  move_down : int array;
  move_down_per_unit : int array array;
  computes_per_proc : int array;
  max_occupancy : int array array;
}

let boundary_traffic stats ~level =
  let levels = Array.length stats.move_up in
  if level < 2 || level > levels then
    invalid_arg "Prbw_game.boundary_traffic: level out of range";
  stats.move_up.(level - 2) + stats.move_down.(level - 1)

let vertical_io_total stats =
  stats.loads + stats.stores
  + Array.fold_left ( + ) 0 stats.move_up
  + Array.fold_left ( + ) 0 stats.move_down

type error = { step : int; reason : string }

type state = {
  hier : Hierarchy.t;
  levels : int;
  (* [pebbles.(l-1).(j)] is the vertex set held in unit [j] at level [l]. *)
  pebbles : Bitset.t array array;
  white : Bitset.t;
  blue : Bitset.t;
  occupancy_peak : int array array;
}

let make_state hier g =
  let n = Cdag.n_vertices g in
  let levels = Hierarchy.n_levels hier in
  let pebbles =
    Array.init levels (fun l ->
        Array.init (Hierarchy.count hier ~level:(l + 1)) (fun _ -> Bitset.create n))
  in
  let blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  {
    hier;
    levels;
    pebbles;
    white = Bitset.create n;
    blue;
    occupancy_peak = Array.init levels (fun l ->
        Array.make (Hierarchy.count hier ~level:(l + 1)) 0);
  }

let run hier g moves =
  if not (Dmc_cdag.Validate.is_rbw g) then
    invalid_arg "Prbw_game.run: graph violates the RBW convention";
  let st = make_state hier g in
  let levels = st.levels in
  let n = Cdag.n_vertices g in
  let top = levels in
  let n_top = Hierarchy.count hier ~level:top in
  let procs = Hierarchy.processors hier in
  let loads = ref 0 and stores = ref 0 and remote_gets = ref 0 in
  let remote_gets_per_unit = Array.make n_top 0 in
  let move_up = Array.make levels 0 and move_down = Array.make levels 0 in
  let move_down_per_unit =
    Array.init levels (fun l -> Array.make (Hierarchy.count hier ~level:(l + 1)) 0)
  in
  let computes_per_proc = Array.make procs 0 in
  let exception Fail of error in
  let fail step fmt = Format.kasprintf (fun reason -> raise (Fail { step; reason })) fmt in
  let check_vertex step v =
    if v < 0 || v >= n then fail step "vertex %d out of range" v
  in
  let check_unit step ~level j =
    if level < 1 || level > levels then fail step "level %d out of range" level;
    if j < 0 || j >= Hierarchy.count hier ~level then
      fail step "unit %d out of range at level %d" j level
  in
  let unit_set ~level j = st.pebbles.(level - 1).(j) in
  let place step ~level j v =
    let set = unit_set ~level j in
    if not (Bitset.mem set v) then begin
      if Bitset.cardinal set >= Hierarchy.capacity hier ~level then
        fail step "unit %d at level %d is full (S_%d = %d)" j level level
          (Hierarchy.capacity hier ~level);
      Bitset.add set v;
      if Bitset.cardinal set > st.occupancy_peak.(level - 1).(j) then
        st.occupancy_peak.(level - 1).(j) <- Bitset.cardinal set
    end
  in
  try
    List.iteri
      (fun step move ->
        match move with
        | Input { unit_id; v } ->
            check_vertex step v;
            check_unit step ~level:top unit_id;
            if not (Bitset.mem st.blue v) then fail step "input %d: no blue pebble" v;
            place step ~level:top unit_id v;
            Bitset.add st.white v;
            incr loads
        | Output { unit_id; v } ->
            check_vertex step v;
            check_unit step ~level:top unit_id;
            if not (Bitset.mem (unit_set ~level:top unit_id) v) then
              fail step "output %d: no level-%d pebble in unit %d" v top unit_id;
            Bitset.add st.blue v;
            incr stores
        | Remote_get { src; dst; v } ->
            check_vertex step v;
            check_unit step ~level:top src;
            check_unit step ~level:top dst;
            if src = dst then fail step "remote get %d: src = dst" v;
            if not (Bitset.mem (unit_set ~level:top src) v) then
              fail step "remote get %d: not present in source unit %d" v src;
            place step ~level:top dst v;
            incr remote_gets;
            remote_gets_per_unit.(dst) <- remote_gets_per_unit.(dst) + 1
        | Move_up { level; unit_id; v } ->
            check_vertex step v;
            check_unit step ~level unit_id;
            if level >= top then fail step "move up: level %d has no parent" level;
            let parent = Hierarchy.parent_unit hier ~level unit_id in
            if not (Bitset.mem (unit_set ~level:(level + 1) parent) v) then
              fail step "move up %d: parent unit %d at level %d lacks it" v parent
                (level + 1);
            place step ~level unit_id v;
            move_up.(level - 1) <- move_up.(level - 1) + 1
        | Move_down { level; unit_id; v } ->
            check_vertex step v;
            check_unit step ~level unit_id;
            if level <= 1 then fail step "move down: level %d has no children" level;
            let child_has =
              List.exists
                (fun c -> Bitset.mem (unit_set ~level:(level - 1) c) v)
                (Hierarchy.children_units hier ~level unit_id)
            in
            if not child_has then
              fail step "move down %d: no child of unit %d at level %d holds it" v
                unit_id level;
            place step ~level unit_id v;
            move_down.(level - 1) <- move_down.(level - 1) + 1;
            move_down_per_unit.(level - 1).(unit_id) <-
              move_down_per_unit.(level - 1).(unit_id) + 1
        | Compute { proc; v } ->
            check_vertex step v;
            if proc < 0 || proc >= procs then fail step "processor %d out of range" proc;
            if Cdag.is_input g v then fail step "compute %d: inputs cannot fire" v;
            if Bitset.mem st.white v then
              fail step "compute %d: already white (recomputation forbidden)" v;
            let regs = unit_set ~level:1 proc in
            let missing =
              Cdag.fold_pred g v
                (fun acc u -> if Bitset.mem regs u then acc else u :: acc)
                []
            in
            (match missing with
            | u :: _ ->
                fail step "compute %d: predecessor %d not in processor %d registers" v
                  u proc
            | [] ->
                place step ~level:1 proc v;
                Bitset.add st.white v;
                computes_per_proc.(proc) <- computes_per_proc.(proc) + 1)
        | Delete { level; unit_id; v } ->
            check_vertex step v;
            check_unit step ~level unit_id;
            if not (Bitset.mem (unit_set ~level unit_id) v) then
              fail step "delete %d: unit %d at level %d does not hold it" v unit_id
                level;
            Bitset.remove (unit_set ~level unit_id) v)
      moves;
    let finish = List.length moves in
    Cdag.iter_vertices g (fun v ->
        if not (Bitset.mem st.white v) then
          fail finish "vertex %d has no white pebble at the end" v);
    List.iter
      (fun v ->
        if not (Bitset.mem st.blue v) then
          fail finish "output %d has no blue pebble at the end" v)
      (Cdag.outputs g);
    Ok
      {
        loads = !loads;
        stores = !stores;
        remote_gets = !remote_gets;
        remote_gets_per_unit;
        move_up;
        move_down;
        move_down_per_unit;
        computes_per_proc;
        max_occupancy = st.occupancy_peak;
      }
  with Fail e -> Error e

let validate hier g moves =
  match run hier g moves with Ok _ -> None | Error e -> Some e

let embed_sequential hier ~proc moves =
  let levels = Hierarchy.n_levels hier in
  if proc < 0 || proc >= Hierarchy.processors hier then
    invalid_arg "Prbw_game.embed_sequential: bad processor";
  let unit_at level = Hierarchy.unit_of_processor hier ~level proc in
  let down_chain v =
    (* Bring a value from the top level into [proc]'s registers. *)
    List.init (levels - 1) (fun i ->
        let level = levels - 1 - i in
        Move_up { level; unit_id = unit_at level; v })
  in
  let up_chain v =
    (* Push a register value out to the top level. *)
    List.init (levels - 1) (fun i ->
        let level = 2 + i in
        Move_down { level; unit_id = unit_at level; v })
  in
  List.concat_map
    (fun (m : Rbw_game.move) ->
      match m with
      | Rb_game.Load v -> Input { unit_id = unit_at levels; v } :: down_chain v
      | Rb_game.Store v -> up_chain v @ [ Output { unit_id = unit_at levels; v } ]
      | Rb_game.Compute v -> [ Compute { proc; v } ]
      | Rb_game.Delete v -> [ Delete { level = 1; unit_id = proc; v } ])
    moves
