module Cdag := Dmc_cdag.Cdag

(** The Hong–Kung "lines" lower-bound technique that Theorem 10's proof
    invokes (Hong & Kung, Theorem 5.1).

    For a CDAG in which all inputs reach all outputs through
    vertex-disjoint paths ({e lines}), let [F(d)] bound the number of
    distinct lines touched by any set of vertices that sit on a common
    line at distance [>= d] from each other; then the sequential I/O
    satisfies

    {v  Q >= L / (2 (F^{-1}(2S) + 1))  v}

    where [L] is the number of vertices lying on lines.  For the
    d-dimensional Jacobi CDAG the paper instantiates
    [F^{-1}(2S) = 2 (2S)^{1/d} - 1] (shown for [d = 2] as
    [2 sqrt(2S) - 1]), yielding Theorem 10. *)

val bound : line_vertices:int -> f_inverse_2s:int -> float
(** [L / (2 (F^{-1}(2S) + 1))].  Requires positive arguments. *)

val jacobi_f_inverse : d:int -> s:int -> float
(** [2 (2S)^{1/d} - 1]. *)

val jacobi_bound : d:int -> n:int -> steps:int -> s:int -> float
(** Theorem 10 (sequential, [P = 1]) derived through the lines
    machinery with [L = n^d T]: evaluates to
    [n^d T / (4 (2S)^{1/d})], the same closed form as
    {!Analytic.jacobi_lb}. *)

val max_disjoint_lines : Cdag.t -> int
(** The hypothesis checker: the maximum number of vertex-disjoint
    directed paths from the tagged inputs to the tagged outputs
    (a max-flow with unit vertex capacities, endpoints included).
    For a [d]-dimensional Jacobi CDAG of [n^d] points this equals
    [n^d] — every grid point carries its own line.  Returns 0 when the
    graph has no inputs or no outputs. *)
