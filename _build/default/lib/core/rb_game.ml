module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag

type move =
  | Load of Cdag.vertex
  | Store of Cdag.vertex
  | Compute of Cdag.vertex
  | Delete of Cdag.vertex

let pp_move ppf = function
  | Load v -> Format.fprintf ppf "load %d" v
  | Store v -> Format.fprintf ppf "store %d" v
  | Compute v -> Format.fprintf ppf "compute %d" v
  | Delete v -> Format.fprintf ppf "delete %d" v

type stats = {
  loads : int;
  stores : int;
  io : int;
  computes : int;
  max_red : int;
}

type error = { step : int; reason : string }

let run g ~s moves =
  if s <= 0 then invalid_arg "Rb_game.run: s must be positive";
  let n = Cdag.n_vertices g in
  let red = Bitset.create n and blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and max_red = ref 0 in
  let exception Fail of error in
  let fail step fmt = Format.kasprintf (fun reason -> raise (Fail { step; reason })) fmt in
  let place step v =
    if not (Bitset.mem red v) then begin
      if Bitset.cardinal red >= s then fail step "no free red pebble (S = %d)" s;
      Bitset.add red v;
      if Bitset.cardinal red > !max_red then max_red := Bitset.cardinal red
    end
  in
  let check_vertex step v =
    if v < 0 || v >= n then fail step "vertex %d out of range" v
  in
  try
    List.iteri
      (fun step move ->
        match move with
        | Load v ->
            check_vertex step v;
            if not (Bitset.mem blue v) then fail step "load %d: no blue pebble" v;
            place step v;
            incr loads
        | Store v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "store %d: no red pebble" v;
            Bitset.add blue v;
            incr stores
        | Compute v ->
            check_vertex step v;
            if Cdag.is_input g v then fail step "compute %d: inputs cannot fire" v;
            let missing =
              Cdag.fold_pred g v
                (fun acc u -> if Bitset.mem red u then acc else u :: acc)
                []
            in
            (match missing with
            | u :: _ -> fail step "compute %d: predecessor %d not red" v u
            | [] ->
                place step v;
                incr computes)
        | Delete v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "delete %d: no red pebble" v;
            Bitset.remove red v)
      moves;
    let finish = List.length moves in
    List.iter
      (fun v ->
        if not (Bitset.mem blue v) then
          fail finish "output %d has no blue pebble at the end" v)
      (Cdag.outputs g);
    Ok
      {
        loads = !loads;
        stores = !stores;
        io = !loads + !stores;
        computes = !computes;
        max_red = !max_red;
      }
  with Fail e -> Error e

let validate g ~s moves =
  match run g ~s moves with Ok _ -> None | Error e -> Some e
