module Cdag := Dmc_cdag.Cdag
module Bitset := Dmc_util.Bitset

(** The {e original} Hong–Kung S-partition machinery (Definition 3),
    which Definition 5 specializes for the RBW game.

    A Hong–Kung S-partition splits {e all} vertices [V] (inputs
    included) into subsets such that
    - P2: no two-subset circuit;
    - P3: some {e dominator set} of [V_i] — a vertex set intercepting
      every path from the inputs [I] to a vertex of [V_i] — has at most
      [S] vertices;
    - P4: the {e minimum set} of [V_i] — its members whose successors
      all lie outside [V_i] (including members with no successors) —
      has at most [S] vertices.

    Dominators are where the original model differs from the RBW
    [In]/[Out] boundaries: a dominator may sit far from the subset and
    be much smaller than [In(V_i)].  Minimum dominator sets are vertex
    min-cuts and are computed here by max-flow. *)

val minimum_set : Cdag.t -> Bitset.t -> Bitset.t
(** [Min(V_i)]: members of the set all of whose successors lie outside
    it (members without successors qualify). *)

val min_dominator : Cdag.t -> Bitset.t -> int * Cdag.vertex list
(** The size and one witness of a minimum dominator set of the given
    subset: the smallest vertex set meeting every path from a tagged
    input to a subset member.  Members of [I ∩ V_i] dominate only
    themselves, so they are always part of the cut.  Returns [(0, [])]
    when no input reaches the subset. *)

val check : Cdag.t -> s:int -> color:int array -> (int, string) result
(** Validate a color array (over {e all} vertices, each in
    [0 .. h-1]) as a Hong–Kung S-partition; [Ok h] is the number of
    non-empty subsets. *)

val of_rb_game : Cdag.t -> s:int -> Rb_game.move list -> int array
(** The Theorem-1 construction for the original red-blue game: split
    the (valid) game into consecutive phases of at most [s] I/O moves
    and color every vertex by the phase in which it {e first} receives
    a red pebble (by load or compute).  Vertices the game never pebbles
    (possible when they do not feed any output) are placed in phase 0.
    Colors are compacted.  Raises [Failure] on an invalid game. *)
