module Cdag := Dmc_cdag.Cdag

(** Inspection helpers for sequential game traces: summaries,
    timelines and rendering.  Used by the CLI's [--trace] output and by
    the notebooks-style examples. *)

type summary = {
  length : int;
  loads : int;
  stores : int;
  computes : int;
  deletes : int;
  io : int;            (** [loads + stores] *)
  distinct_loaded : int;
  reloads : int;       (** loads of vertices loaded before *)
}

val summarize : Rbw_game.move list -> summary
(** Pure counting — does not check validity. *)

val io_timeline : Rbw_game.move list -> int array
(** Cumulative I/O count after each move; length = number of moves. *)

val live_timeline : Rbw_game.move list -> int array
(** Number of red pebbles after each move, assuming the trace is valid
    (loads/computes of already-red vertices do not double count). *)

val to_string : ?limit:int -> Rbw_game.move list -> string
(** Render one move per line; [limit] truncates with an ellipsis
    (default unlimited). *)

val pp_summary : Format.formatter -> summary -> unit

val phase_io : s:int -> Rbw_game.move list -> int list
(** I/O counts of the Theorem-1 phases (consecutive segments of at most
    [s] I/O moves) — each entry is at most [s], and only the last may
    be smaller. *)

val parse : string -> (Rbw_game.move list, string) result
(** Parse the {!to_string} syntax back into a move list — one move per
    line, [load N] / [store N] / [compute N] / [delete N]; blank lines
    and [#] comments ignored.  Together with {!to_string} this lets
    games be stored, diffed and replayed by external tools (the CLI's
    [dmc replay]). *)

val render_timeline : ?width:int -> Rbw_game.move list -> string
(** A two-row ASCII sparkline of the game: cumulative I/O fraction on
    the first row, live red-pebble count on the second, downsampled to
    [width] columns (default 64).  Purely cosmetic — used by the CLI's
    [--trace] output. *)

val check_roundtrip : Cdag.t -> s:int -> Rbw_game.move list -> bool
(** Convenience: [true] iff the trace replays cleanly and its
    {!summarize} I/O agrees with the engine's count. *)
