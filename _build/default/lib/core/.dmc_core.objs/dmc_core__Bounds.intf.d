lib/core/bounds.mli: Dmc_cdag Dmc_util Format
