lib/core/spartition.ml: Array Dmc_cdag Dmc_util Hashtbl List Optimal Printf Rb_game Rbw_game
