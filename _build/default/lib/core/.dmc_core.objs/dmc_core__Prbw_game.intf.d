lib/core/prbw_game.mli: Dmc_cdag Dmc_machine Format Rbw_game
