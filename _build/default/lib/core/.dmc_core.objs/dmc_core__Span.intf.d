lib/core/span.mli: Dmc_cdag
