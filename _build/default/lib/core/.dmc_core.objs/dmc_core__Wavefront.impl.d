lib/core/wavefront.ml: Dmc_cdag Dmc_flow Dmc_util Domain List
