lib/core/spartition.mli: Dmc_cdag Dmc_util Rbw_game
