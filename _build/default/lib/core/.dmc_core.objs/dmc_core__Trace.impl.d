lib/core/trace.ml: Array Buffer Dmc_cdag Format Hashtbl List Printf Rb_game Rbw_game String
