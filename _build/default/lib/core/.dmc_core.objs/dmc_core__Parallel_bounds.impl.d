lib/core/parallel_bounds.ml: Dmc_machine Float
