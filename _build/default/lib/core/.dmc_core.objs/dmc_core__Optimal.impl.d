lib/core/optimal.ml: Array Dmc_cdag Dmc_util Hashtbl List
