lib/core/analytic.mli:
