lib/core/trace.mli: Dmc_cdag Format Rbw_game
