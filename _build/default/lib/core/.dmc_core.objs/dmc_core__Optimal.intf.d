lib/core/optimal.mli: Dmc_cdag
