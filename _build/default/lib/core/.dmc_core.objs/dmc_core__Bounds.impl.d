lib/core/bounds.ml: Dmc_cdag Dmc_util Format Fun List Optimal Span Spartition Strategy Wavefront
