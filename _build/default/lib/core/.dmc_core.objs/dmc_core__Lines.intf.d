lib/core/lines.mli: Dmc_cdag
