lib/core/hk_partition.mli: Dmc_cdag Dmc_util Rb_game
