lib/core/rb_game.ml: Dmc_cdag Dmc_util Format List
