lib/core/span.ml: Array Dmc_cdag Hashtbl List Optimal
