lib/core/analytic.ml: Float
