lib/core/lines.ml: Dmc_cdag Dmc_flow List
