lib/core/hk_partition.ml: Array Dmc_cdag Dmc_flow Dmc_util Hashtbl List Printf Rb_game
