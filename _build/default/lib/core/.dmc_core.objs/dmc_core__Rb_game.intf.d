lib/core/rb_game.mli: Dmc_cdag Format
