lib/core/decompose.ml: Array Dmc_cdag List Wavefront
