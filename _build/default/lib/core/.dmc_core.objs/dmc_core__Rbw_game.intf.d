lib/core/rbw_game.mli: Dmc_cdag Rb_game
