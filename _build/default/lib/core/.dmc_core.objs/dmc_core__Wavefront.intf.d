lib/core/wavefront.mli: Dmc_cdag Dmc_util
