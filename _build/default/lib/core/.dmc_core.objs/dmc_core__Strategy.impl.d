lib/core/strategy.ml: Array Dmc_cdag Dmc_machine Dmc_util List Prbw_game Rb_game
