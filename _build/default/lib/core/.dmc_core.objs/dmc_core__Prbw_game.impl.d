lib/core/prbw_game.ml: Array Dmc_cdag Dmc_machine Dmc_util Format List Rb_game Rbw_game
