lib/core/parallel_bounds.mli: Dmc_machine
