lib/core/rbw_game.ml: Dmc_cdag Dmc_util Format List Printf Rb_game
