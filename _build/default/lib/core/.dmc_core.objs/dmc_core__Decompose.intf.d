lib/core/decompose.mli: Dmc_cdag
