lib/core/strategy.mli: Dmc_cdag Dmc_machine Prbw_game Rbw_game
