(** Closed-form data-movement bounds for the algorithms the paper
    analyzes.  All results are in {e words}; [float] because the
    formulas involve roots and the parameters reach [n = 1000, d = 3]
    scales.

    Constants follow the paper exactly, including its operation counts
    (e.g. CG's [20 n^d T] FLOPs), so the evaluation tables reproduce
    the published numbers (0.3 words/FLOP for CG, [6/(m+20)] for
    GMRES, [d <= 4.83] for Jacobi on BG/Q). *)

(** {1 Dense linear algebra (Sections 2–3)} *)

val matmul_lb : n:int -> s:int -> float
(** Hong–Kung matrix-multiplication bound [n^3 / (2 sqrt(2S))]. *)

val outer_product_io : n:int -> float
(** Exact I/O of an [n x n] outer product: [2n + n^2] (inputs must be
    read, results written; no reuse is possible). *)

val composite_io_upper : n:int -> float
(** The Section-3 composite example executed with [4n + 4] words of
    fast memory under the recomputation-allowed model: [4n + 1] I/Os. *)

val fft_lb : n:int -> s:int -> float
(** FFT butterfly bound [Θ(n log n / log S)]; the constant used is
    [n log2 n / (2 log2 S)] (Hong–Kung Theorem 2.1 shape).  Requires
    [s >= 2]. *)

(** {1 Jacobi stencils (Section 5.4, Theorem 10)} *)

val jacobi_lb : d:int -> n:int -> steps:int -> s:int -> p:int -> float
(** [n^d T / (4 P (2S)^{1/d})] — Theorem 10 generalized to [d]
    dimensions. *)

val jacobi_u : d:int -> s:int -> float
(** The largest-2S-partition-subset estimate the paper uses for
    Jacobi: [U(C, 2S) = 4 S (2S)^{1/d}]. *)

val jacobi_horizontal_ub : d:int -> block:int -> steps:int -> float
(** Ghost-cell exchange volume per block over [T] steps:
    [((B+2)^d - B^d) T]; equals the paper's [4 B T] for [d = 2] up to
    the corner terms. *)

val jacobi_balance_threshold : d:int -> s:int -> float
(** The per-FLOP vertical traffic floor [1 / (4 (2S)^{1/d})] that the
    machine balance must exceed for the stencil not to be
    bandwidth-bound. *)

val jacobi_max_dim : s:int -> balance:float -> float
(** The paper's threshold [d <= 4 * balance * log2(2S)] (its
    "[0.21 log(2 S_2)]" with [0.21 = 4 x 0.052]); evaluates to 4.83 for
    BG/Q's memory-to-L2 balance with [S_2] = 4 MWords, and to 96 for
    the L2-to-L1 boundary. *)

(** {1 Conjugate Gradient (Section 5.2, Theorem 8)} *)

val cg_vertical_lb : d:int -> n:int -> steps:int -> p:int -> float
(** The asymptotic bound [6 n^d T / P]. *)

val cg_vertical_lb_exact : d:int -> n:int -> steps:int -> s:int -> p:int -> float
(** The pre-asymptotic form from the proof of Theorem 8:
    [T (2 (2 n^d - S) + 2 (n^d - S)) / P = 2 T (3 n^d - 2 S) / P],
    clamped at 0. *)

val cg_flops : d:int -> n:int -> steps:int -> float
(** The paper's operation count [20 n^d T]. *)

val cg_horizontal_ub : d:int -> block:int -> steps:int -> float
(** Ghost cells of the SpMV per iteration: [((B+2)^d - B^d) T]. *)

val cg_vertical_per_flop : unit -> float
(** [6/20 = 0.3] words/FLOP — the number compared against Table 1. *)

val cg_horizontal_per_flop : d:int -> n:int -> nodes:int -> float
(** [6 N_nodes^{1/d} / (20 n)] words/FLOP (the paper's [d = 3] algebra,
    generalized). *)

(** {1 GMRES (Section 5.3, Theorem 9)} *)

val gmres_vertical_lb : d:int -> n:int -> m:int -> p:int -> float
(** [6 n^d m / P]. *)

val gmres_vertical_lb_exact : d:int -> n:int -> m:int -> s:int -> p:int -> float
(** [2 m (3 n^d - 2S) / P], the summed per-iteration wavefront bounds. *)

val gmres_flops : d:int -> n:int -> m:int -> float
(** [20 n^d m + n^d m^2]. *)

val gmres_horizontal_ub : d:int -> block:int -> m:int -> float

val gmres_vertical_per_flop : m:int -> float
(** [6 / (m + 20)]. *)

val gmres_horizontal_per_flop : d:int -> n:int -> m:int -> nodes:int -> float
(** [6 N_nodes^{1/d} / (n m)]. *)

(** {1 Shared helpers} *)

val ghost_cells : d:int -> block:int -> float
(** [(B+2)^d - B^d]: boundary points fetched from the neighbors of one
    [B^d] block of a star/box stencil or grid SpMV. *)

val pow_int : float -> int -> float
(** [pow_int x k] for non-negative [k]. *)
