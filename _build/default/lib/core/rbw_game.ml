module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag
module Validate = Dmc_cdag.Validate

type move = Rb_game.move =
  | Load of Cdag.vertex
  | Store of Cdag.vertex
  | Compute of Cdag.vertex
  | Delete of Cdag.vertex

type stats = Rb_game.stats = {
  loads : int;
  stores : int;
  io : int;
  computes : int;
  max_red : int;
}

type error = Rb_game.error = { step : int; reason : string }

let run g ~s moves =
  if s <= 0 then invalid_arg "Rbw_game.run: s must be positive";
  if not (Validate.is_rbw g) then
    invalid_arg "Rbw_game.run: graph violates the RBW convention";
  let n = Cdag.n_vertices g in
  let red = Bitset.create n and blue = Bitset.create n and white = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and max_red = ref 0 in
  let exception Fail of error in
  let fail step fmt = Format.kasprintf (fun reason -> raise (Fail { step; reason })) fmt in
  let place step v =
    if not (Bitset.mem red v) then begin
      if Bitset.cardinal red >= s then fail step "no free red pebble (S = %d)" s;
      Bitset.add red v;
      if Bitset.cardinal red > !max_red then max_red := Bitset.cardinal red
    end
  in
  let check_vertex step v =
    if v < 0 || v >= n then fail step "vertex %d out of range" v
  in
  try
    List.iteri
      (fun step move ->
        match move with
        | Load v ->
            check_vertex step v;
            if not (Bitset.mem blue v) then fail step "load %d: no blue pebble" v;
            place step v;
            Bitset.add white v;
            incr loads
        | Store v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "store %d: no red pebble" v;
            Bitset.add blue v;
            incr stores
        | Compute v ->
            check_vertex step v;
            if Cdag.is_input g v then fail step "compute %d: inputs cannot fire" v;
            if Bitset.mem white v then
              fail step "compute %d: already white (recomputation forbidden)" v;
            let missing =
              Cdag.fold_pred g v
                (fun acc u -> if Bitset.mem red u then acc else u :: acc)
                []
            in
            (match missing with
            | u :: _ -> fail step "compute %d: predecessor %d not red" v u
            | [] ->
                place step v;
                Bitset.add white v;
                incr computes)
        | Delete v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "delete %d: no red pebble" v;
            Bitset.remove red v)
      moves;
    let finish = List.length moves in
    Cdag.iter_vertices g (fun v ->
        if not (Bitset.mem white v) then
          fail finish "vertex %d has no white pebble at the end" v);
    List.iter
      (fun v ->
        if not (Bitset.mem blue v) then
          fail finish "output %d has no blue pebble at the end" v)
      (Cdag.outputs g);
    Ok
      {
        loads = !loads;
        stores = !stores;
        io = !loads + !stores;
        computes = !computes;
        max_red = !max_red;
      }
  with Fail e -> Error e

let validate g ~s moves =
  match run g ~s moves with Ok _ -> None | Error e -> Some e

let io_of g ~s moves =
  match run g ~s moves with
  | Ok stats -> stats.io
  | Error e -> failwith (Printf.sprintf "invalid RBW game at step %d: %s" e.step e.reason)
