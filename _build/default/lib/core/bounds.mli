module Cdag := Dmc_cdag.Cdag

(** One-stop lower/upper-bound analysis of a concrete CDAG, combining
    every engine in this library.  This is what the CLI and the
    validation experiments call. *)

type report = {
  s : int;
  n_vertices : int;
  n_edges : int;
  io_floor : int;
      (** the tagging floor: every input must be loaded once (white
          pebbles) and every non-input output stored once *)
  wavefront_lb : int;   (** {!Wavefront.lower_bound} *)
  partition_lb : int option;
      (** {!Spartition.lower_bound_exact} when the graph is small
          enough for the exhaustive search, else [None] *)
  partition_u_lb : int option;
      (** {!Spartition.lower_bound_u} when feasible *)
  span_lb : int option;
      (** {!Span.lower_bound} (Savage's S-span) when the graph is small
          enough for the exhaustive span search *)
  best_lb : int;        (** max of the above *)
  belady_ub : int;      (** measured I/O of the Belady schedule *)
  lru_ub : int;         (** measured I/O of the LRU schedule *)
  trivial_ub : int;     (** {!Strategy.trivial_io} *)
  optimal_io : int option;
      (** exhaustive optimum when the graph has at most
          [optimal_limit] vertices *)
}

val io_floor : Cdag.t -> int

val analyze :
  ?exact_partition_limit:int ->
  ?optimal_limit:int ->
  Cdag.t ->
  s:int ->
  report
(** Run every applicable engine.  [exact_partition_limit] (default 9)
    caps the compute-vertex count for the exhaustive partition search;
    [optimal_limit] (default 0, i.e. disabled) caps the vertex count
    for the exhaustive optimal game. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Dmc_util.Json.t
(** The report as JSON, for the CLI's [--json] output. *)

val certify_wavefront : ?samples:int -> Cdag.t -> s:int -> bool
(** Re-derive the wavefront component of {!analyze}'s bound with a
    Menger witness and verify it from first principles
    ({!Wavefront.verify_witness}): find the maximizing vertex of the
    input-stripped graph (exactly below {!Wavefront.exact_threshold}
    vertices, else over [samples] draws), extract its disjoint-path
    witness, and check both the paths and that their count equals the
    min-cut value.  [true] means the certificate checks out. *)
