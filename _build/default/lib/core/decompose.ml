module Cdag = Dmc_cdag.Cdag
module Subgraph = Dmc_cdag.Subgraph

let parts g ~color = Subgraph.partition g color

let sum_disjoint g ~color ~bound =
  Array.fold_left
    (fun acc (p : Subgraph.part) -> acc + bound p.graph)
    0 (parts g ~color)

let untag_adjust ~bound_tagged ~d_inputs ~d_outputs =
  max 0 (bound_tagged - d_inputs - d_outputs)

let io_deletion_adjust ~bound_inner ~d_inputs ~d_outputs =
  bound_inner + d_inputs + d_outputs

let iteration_slices g ~slice_of ~n_slices =
  if n_slices <= 0 then invalid_arg "Decompose.iteration_slices";
  let color =
    Array.init (Cdag.n_vertices g) (fun v ->
        let s = slice_of v in
        if s < 0 then 0 else if s >= n_slices then n_slices - 1 else s)
  in
  Subgraph.partition g color

let wavefront_sum _g ~pieces ~s =
  (* Per piece: strip its tagged input vertices (Corollary 2 on the
     input side, adding |dI| back; outputs may stay — Lemma 2 tolerates
     them), take the best Lemma-2 wavefront bound over the surviving
     distinguished vertices, and sum across pieces (Theorem 2). *)
  Array.fold_left
    (fun acc ((p : Subgraph.part), targets) ->
      let stripped, di = Subgraph.drop_inputs p.graph in
      let d_o = 0 in
      let best =
        List.fold_left
          (fun best v ->
            match p.of_parent v with
            | None -> best
            | Some v' -> (
                match stripped.of_parent v' with
                | None -> best
                | Some v'' ->
                    max best
                      (Wavefront.lemma2_bound
                         ~wavefront:
                           (Wavefront.min_wavefront stripped.graph v'')
                         ~s)))
          0 targets
      in
      acc + best + di + d_o)
    0 pieces
