module Cdag := Dmc_cdag.Cdag

(** The red-blue-white pebble game of Definition 4 — the paper's
    sequential model.

    Differences from the Hong–Kung game ({!Rb_game}):
    - flexible tagging: untagged sources fire freely with R3 and
      untagged sinks need no final blue pebble;
    - a white pebble marks a vertex as evaluated; R1 and R3 both place
      it, and a white-pebbled vertex can never fire again
      ({e no recomputation});
    - completion requires a white pebble on {e every} vertex (so every
      input is loaded at least once) and a blue pebble on every output.

    Move sequences are shared with {!Rb_game} so one strategy output
    can be checked under both rule sets. *)

type move = Rb_game.move =
  | Load of Cdag.vertex
  | Store of Cdag.vertex
  | Compute of Cdag.vertex
  | Delete of Cdag.vertex

type stats = Rb_game.stats = {
  loads : int;
  stores : int;
  io : int;
  computes : int;
  max_red : int;
}

type error = Rb_game.error = { step : int; reason : string }

val run : Cdag.t -> s:int -> move list -> (stats, error) result
(** Play a complete RBW game.  Raises [Invalid_argument] when
    [s <= 0] or when the graph violates the RBW convention (an input
    with a predecessor, see {!Dmc_cdag.Validate.rbw}). *)

val validate : Cdag.t -> s:int -> move list -> error option

val io_of : Cdag.t -> s:int -> move list -> int
(** The I/O cost of a game known to be valid; raises [Failure] with
    the error message otherwise. *)
