module Cdag := Dmc_cdag.Cdag
module Subgraph := Dmc_cdag.Subgraph

(** The decomposition calculus of Section 3.2: how per-piece lower
    bounds compose into a bound for the whole CDAG.

    - Theorem 2 (disjoint decomposition): for {e any} disjoint vertex
      partition, the sum of the induced sub-CDAGs' I/O lower bounds
      bounds the whole.
    - Corollary 2 (input/output deletion): deleting the tagged I/O
      vertices costs exactly [|dI| + |dO|] I/Os, which can be added
      back.
    - Theorem 3 (tagging / untagging): adding tags can only increase
      I/O, and a bound computed with extra tags transfers back after
      subtracting [|dI| + |dO|].
    - Theorem 4 (non-disjoint decomposition): pieces may share boundary
      vertices — e.g. consecutive outer-loop iterations sharing a
      carried vector — when the shared vertices are re-tagged as inputs
      of the later piece; the per-piece wavefront bounds still add up.
      This is what Theorems 8 and 9 use on CG and GMRES. *)

val sum_disjoint :
  Cdag.t -> color:int array -> bound:(Cdag.t -> int) -> int
(** Theorem 2: split by the (arbitrary) color array — every vertex
    needs a color in [0 .. k-1] — and sum [bound] over the induced
    parts.  The result is a valid lower bound for the whole CDAG
    whenever [bound] is a valid lower-bound procedure. *)

val parts : Cdag.t -> color:int array -> Subgraph.part array
(** The induced parts, exposed for custom per-part analyses. *)

val untag_adjust : bound_tagged:int -> d_inputs:int -> d_outputs:int -> int
(** Theorem 3, Equation 2: a bound obtained on a more-tagged variant of
    the same DAG, minus the number of added tags; clamped at 0. *)

val io_deletion_adjust : bound_inner:int -> d_inputs:int -> d_outputs:int -> int
(** Corollary 2, Equation 1: a bound on the graph with I/O vertices
    removed, plus one I/O per removed vertex. *)

val iteration_slices :
  Cdag.t -> slice_of:(Cdag.vertex -> int) -> n_slices:int -> Subgraph.part array
(** Convenience for time-iterated CDAGs (CG, GMRES, Jacobi): place each
    vertex in the slice [slice_of v] (0-based; values outside
    [0 .. n_slices-1] are clamped), inducing one sub-CDAG per outer
    iteration as Theorem 4's proofs do. *)

val wavefront_sum :
  Cdag.t ->
  pieces:(Subgraph.part * Cdag.vertex list) array ->
  s:int ->
  int
(** The Theorem-4 pattern used by Theorems 8/9: for each (induced
    piece, distinguished vertices) pair, strip the piece's tagged I/O
    vertices (Corollary 2 adds [|dI| + |dO|] back), take the best
    Lemma-2 bound [2 (Wmin(x) - S)] over the piece's distinguished
    vertices (given by {e original} vertex ids, mapped through both
    inductions), and sum across pieces (Theorem 2).  To accumulate
    several wavefronts of one outer iteration — e.g. CG's [υ_x] and
    [υ_y] — pass them in {e separate} pieces, as the paper's proofs do
    by sub-dividing each iteration. *)
