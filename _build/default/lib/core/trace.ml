module Cdag = Dmc_cdag.Cdag

type summary = {
  length : int;
  loads : int;
  stores : int;
  computes : int;
  deletes : int;
  io : int;
  distinct_loaded : int;
  reloads : int;
}

let summarize moves =
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and deletes = ref 0 in
  let loaded = Hashtbl.create 64 in
  let reloads = ref 0 in
  List.iter
    (fun (m : Rbw_game.move) ->
      match m with
      | Rb_game.Load v ->
          incr loads;
          if Hashtbl.mem loaded v then incr reloads else Hashtbl.replace loaded v ()
      | Rb_game.Store _ -> incr stores
      | Rb_game.Compute _ -> incr computes
      | Rb_game.Delete _ -> incr deletes)
    moves;
  {
    length = List.length moves;
    loads = !loads;
    stores = !stores;
    computes = !computes;
    deletes = !deletes;
    io = !loads + !stores;
    distinct_loaded = Hashtbl.length loaded;
    reloads = !reloads;
  }

let io_timeline moves =
  let out = Array.make (List.length moves) 0 in
  let acc = ref 0 in
  List.iteri
    (fun i (m : Rbw_game.move) ->
      (match m with
      | Rb_game.Load _ | Rb_game.Store _ -> incr acc
      | Rb_game.Compute _ | Rb_game.Delete _ -> ());
      out.(i) <- !acc)
    moves;
  out

let live_timeline moves =
  let out = Array.make (List.length moves) 0 in
  let red = Hashtbl.create 64 in
  List.iteri
    (fun i (m : Rbw_game.move) ->
      (match m with
      | Rb_game.Load v | Rb_game.Compute v -> Hashtbl.replace red v ()
      | Rb_game.Store _ -> ()
      | Rb_game.Delete v -> Hashtbl.remove red v);
      out.(i) <- Hashtbl.length red)
    moves;
  out

let to_string ?limit moves =
  let buf = Buffer.create 256 in
  let n = List.length moves in
  let cutoff = match limit with Some l -> l | None -> n in
  List.iteri
    (fun i m ->
      if i < cutoff then
        Buffer.add_string buf (Format.asprintf "%a@." Rb_game.pp_move m)
      else if i = cutoff then
        Buffer.add_string buf (Printf.sprintf "... (%d more moves)\n" (n - cutoff)))
    moves;
  Buffer.contents buf

let pp_summary ppf s =
  Format.fprintf ppf
    "%d moves: io=%d (loads=%d of which %d reloads, stores=%d), computes=%d, deletes=%d"
    s.length s.io s.loads s.reloads s.stores s.computes s.deletes

let phase_io ~s moves =
  if s <= 0 then invalid_arg "Trace.phase_io";
  let phases = ref [] and current = ref 0 in
  List.iter
    (fun (m : Rbw_game.move) ->
      match m with
      | Rb_game.Load _ | Rb_game.Store _ ->
          if !current = s then begin
            phases := !current :: !phases;
            current := 0
          end;
          incr current
      | Rb_game.Compute _ | Rb_game.Delete _ -> ())
    moves;
  if !current > 0 then phases := !current :: !phases;
  List.rev !phases

let parse text =
  let exception Bad of string in
  try
    let moves = ref [] in
    List.iteri
      (fun lineno0 line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else begin
          let fail msg =
            raise (Bad (Printf.sprintf "line %d: %s" (lineno0 + 1) msg))
          in
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ op; v ] -> (
              match int_of_string_opt v with
              | None -> fail ("not a vertex: " ^ v)
              | Some v -> (
                  match op with
                  | "load" -> moves := Rb_game.Load v :: !moves
                  | "store" -> moves := Rb_game.Store v :: !moves
                  | "compute" -> moves := Rb_game.Compute v :: !moves
                  | "delete" -> moves := Rb_game.Delete v :: !moves
                  | _ -> fail ("unknown move: " ^ op)))
          | _ -> fail ("malformed move: " ^ line)
        end)
      (String.split_on_char '\n' text);
    Ok (List.rev !moves)
  with Bad msg -> Error msg

let render_timeline ?(width = 64) moves =
  let io = io_timeline moves and live = live_timeline moves in
  let n = Array.length io in
  if n = 0 then "(empty game)\n"
  else begin
    let width = min width n in
    let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
    let sample (a : int array) col =
      a.(min (n - 1) (col * n / width))
    in
    let spark a =
      let peak = Array.fold_left max 1 a in
      String.init width (fun col ->
          let v = sample a col in
          glyphs.(min 7 (v * 8 / (peak + 1))))
    in
    Printf.sprintf "io   |%s| %d\nlive |%s| peak %d\n" (spark io)
      io.(n - 1) (spark live)
      (Array.fold_left max 0 live)
  end

let check_roundtrip g ~s moves =
  match Rbw_game.run g ~s moves with
  | Ok stats -> stats.Rbw_game.io = (summarize moves).io
  | Error _ -> false
