(** A minimal JSON emitter (no parsing) for machine-readable reports.

    Only what the CLI needs: objects, arrays, strings (escaped),
    numbers, booleans and null, rendered compactly or indented.  No
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default [true]) pretty-prints with two-space nesting.
    Floats are rendered with [%.17g] (round-trippable); NaN and
    infinities become [null] (JSON has no lexemes for them). *)

val opt : ('a -> t) -> 'a option -> t
(** [None] becomes [Null]. *)
