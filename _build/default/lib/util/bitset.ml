type t = {
  words : Bytes.t;        (* 8 bits per byte; little-endian bit order *)
  cap : int;
  mutable count : int;
}

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; cap = n; count = 0 }

let capacity s = s.cap

let check s i =
  if i < 0 || i >= s.cap then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add s i =
  check s i;
  let b = Char.code (Bytes.unsafe_get s.words (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if b land bit = 0 then begin
    Bytes.unsafe_set s.words (i lsr 3) (Char.unsafe_chr (b lor bit));
    s.count <- s.count + 1
  end

let remove s i =
  check s i;
  let b = Char.code (Bytes.unsafe_get s.words (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if b land bit <> 0 then begin
    Bytes.unsafe_set s.words (i lsr 3) (Char.unsafe_chr (b land lnot bit));
    s.count <- s.count - 1
  end

let cardinal s = s.count
let is_empty s = s.count = 0

let clear s =
  Bytes.fill s.words 0 (Bytes.length s.words) '\000';
  s.count <- 0

let copy s = { words = Bytes.copy s.words; cap = s.cap; count = s.count }

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

let same_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let binop f a b =
  same_cap a b;
  let r = create a.cap in
  let n = Bytes.length a.words in
  let count = ref 0 in
  for k = 0 to n - 1 do
    let v = f (Char.code (Bytes.unsafe_get a.words k))
              (Char.code (Bytes.unsafe_get b.words k)) in
    Bytes.unsafe_set r.words k (Char.unsafe_chr v);
    count := !count + popcount_byte v
  done;
  r.count <- !count;
  r

let union a b = binop (lor) a b
let inter a b = binop (land) a b
let diff a b = binop (fun x y -> x land lnot y land 0xff) a b

let equal a b =
  same_cap a b;
  Bytes.equal a.words b.words

let subset a b =
  same_cap a b;
  let n = Bytes.length a.words in
  let rec go k =
    k >= n
    || (let x = Char.code (Bytes.unsafe_get a.words k)
        and y = Char.code (Bytes.unsafe_get b.words k) in
        x land lnot y = 0 && go (k + 1))
  in
  go 0

let iter f s =
  for i = 0 to s.cap - 1 do
    if Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let choose s =
  if is_empty s then None
  else begin
    let r = ref None in
    (try
       iter (fun i -> r := Some i; raise Exit) s
     with Exit -> ());
    !r
  end

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
