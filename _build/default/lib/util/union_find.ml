type t = {
  parent : int array;
  rank : int array;
  mutable classes : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find uf i =
  let p = uf.parent.(i) in
  if p = i then i
  else begin
    let root = find uf p in
    uf.parent.(i) <- root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then begin
    uf.classes <- uf.classes - 1;
    if uf.rank.(ra) < uf.rank.(rb) then uf.parent.(ra) <- rb
    else if uf.rank.(ra) > uf.rank.(rb) then uf.parent.(rb) <- ra
    else begin
      uf.parent.(rb) <- ra;
      uf.rank.(ra) <- uf.rank.(ra) + 1
    end
  end

let same uf a b = find uf a = find uf b

let count uf = uf.classes

let classes uf =
  let n = Array.length uf.parent in
  let out = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find uf i in
    out.(r) <- i :: out.(r)
  done;
  out
