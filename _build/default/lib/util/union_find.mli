(** Union–find over the integers [0 .. n-1] with path compression and
    union by rank.  Used to group CDAG vertices into decomposition
    components. *)

type t

val create : int -> t
(** [create n] puts each of [0 .. n-1] in its own class. *)

val find : t -> int -> int
(** Canonical representative of the class of its argument. *)

val union : t -> int -> int -> unit
(** Merge two classes; a no-op if already merged. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct classes. *)

val classes : t -> int list array
(** Ascending members of each class, indexed by representative; entries
    for non-representatives are empty. *)
