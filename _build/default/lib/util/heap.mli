(** Binary min-heaps of [(priority, value)] pairs over integers.

    The Belady spill policy and Dinic's level scheduling use these.
    Duplicate priorities and values are allowed; ties break
    arbitrarily. *)

type t

val create : ?initial_capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> prio:int -> value:int -> unit
(** Insert a pair in O(log n). *)

val pop_min : t -> (int * int) option
(** Remove and return the pair with the smallest priority, or [None]
    when empty. *)

val peek_min : t -> (int * int) option

val clear : t -> unit
