(** Growable vectors of unboxed integers.

    The CDAG builder accumulates edges into these before freezing to
    CSR arrays; they avoid both list cells and boxed array churn. *)

type t

val create : ?initial_capacity:int -> unit -> t

val length : t -> int

val get : t -> int -> int
(** Raises [Invalid_argument] when the index is out of bounds. *)

val set : t -> int -> int -> unit

val push : t -> int -> unit
(** Append one element, growing the backing store as needed. *)

val pop : t -> int
(** Remove and return the last element.  Raises [Invalid_argument] on an
    empty vector. *)

val clear : t -> unit
(** Reset length to 0 without shrinking the backing store. *)

val to_array : t -> int array
(** Fresh array of the current contents. *)

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val sort : t -> unit
(** In-place ascending sort of the live prefix. *)
