type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let n = Array.length xs in
  let m = mean xs in
  let var =
    if n < 2 then 0.0
    else
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (n - 1)
  in
  {
    n;
    mean = m;
    stddev = sqrt var;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.0;
  }

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (Array.length xs))

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.median s.max
