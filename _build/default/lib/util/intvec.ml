type t = { mutable data : int array; mutable len : int }

let create ?(initial_capacity = 8) () =
  let cap = max 1 initial_capacity in
  { data = Array.make cap 0; len = 0 }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Intvec: index out of bounds"

let get v i = check v i; Array.unsafe_get v.data i
let set v i x = check v i; Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Intvec.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len
