type t = {
  mutable prio : int array;
  mutable value : int array;
  mutable len : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  { prio = Array.make cap 0; value = Array.make cap 0; len = 0 }

let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let pi = h.prio.(i) and vi = h.value.(i) in
  h.prio.(i) <- h.prio.(j);
  h.value.(i) <- h.value.(j);
  h.prio.(j) <- pi;
  h.value.(j) <- vi

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.len && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let cap = Array.length h.prio in
  let prio = Array.make (2 * cap) 0 and value = Array.make (2 * cap) 0 in
  Array.blit h.prio 0 prio 0 h.len;
  Array.blit h.value 0 value 0 h.len;
  h.prio <- prio;
  h.value <- value

let push h ~prio ~value =
  if h.len = Array.length h.prio then grow h;
  h.prio.(h.len) <- prio;
  h.value.(h.len) <- value;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let p = h.prio.(0) and v = h.value.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.value.(0) <- h.value.(h.len);
      sift_down h 0
    end;
    Some (p, v)
  end

let peek_min h = if h.len = 0 then None else Some (h.prio.(0), h.value.(0))

let clear h = h.len <- 0
