lib/util/heap.mli:
