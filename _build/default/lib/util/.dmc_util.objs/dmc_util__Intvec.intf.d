lib/util/intvec.mli:
