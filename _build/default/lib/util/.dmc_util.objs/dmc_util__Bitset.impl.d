lib/util/bitset.ml: Bytes Char Format List
