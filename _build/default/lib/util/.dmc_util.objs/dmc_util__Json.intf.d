lib/util/json.mli:
