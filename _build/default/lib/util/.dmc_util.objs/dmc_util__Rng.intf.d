lib/util/rng.mli:
