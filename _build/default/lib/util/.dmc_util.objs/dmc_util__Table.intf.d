lib/util/table.mli:
