(** Fixed-capacity dense bitsets over the integer range [0, capacity).

    Used throughout the pebble-game engines and graph traversals where
    membership sets over vertex ids must be cheap to create, copy and
    intersect.  All operations besides {!copy}, {!union}, {!inter},
    {!diff} and {!elements} run in O(1) or O(capacity/64). *)

type t

val create : int -> t
(** [create n] is an empty bitset with capacity [n] (members may range
    over [0 .. n-1]).  Raises [Invalid_argument] if [n < 0]. *)

val capacity : t -> int
(** Maximum number of distinct members the set can hold. *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Raises [Invalid_argument] if [i] is
    outside [0 .. capacity-1]. *)

val add : t -> int -> unit
(** [add s i] inserts [i]; a no-op if already present. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; a no-op if absent. *)

val cardinal : t -> int
(** Number of members (maintained incrementally; O(1)). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove every member. *)

val copy : t -> t
(** Independent duplicate. *)

val equal : t -> t -> bool
(** Set equality; requires equal capacities. *)

val union : t -> t -> t
(** [union a b] is a fresh set; capacities must match. *)

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the members of [a] not in [b]. *)

val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is a capacity-[n] set containing [xs]. *)

val choose : t -> int option
(** Smallest member, if any. *)

val pp : Format.formatter -> t -> unit
