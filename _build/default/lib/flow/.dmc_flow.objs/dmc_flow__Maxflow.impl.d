lib/flow/maxflow.ml: Array Dmc_util Queue Stack
