lib/flow/vertex_cut.ml: Array Dmc_cdag Dmc_util Hashtbl List Maxflow
