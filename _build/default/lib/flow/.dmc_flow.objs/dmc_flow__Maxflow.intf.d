lib/flow/maxflow.mli: Dmc_util
