lib/flow/vertex_cut.mli: Dmc_cdag Dmc_util
