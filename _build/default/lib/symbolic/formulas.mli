(** The paper's bounds as symbolic formulas.

    Variable conventions: [n] grid side, [d] dimensionality, [T] time
    steps / CG iterations, [m] Krylov dimension, [S] fast-memory words,
    [P] processors, [N] node count, [B] per-dimension block side,
    [beta] machine balance (words/FLOP).

    Every formula evaluates (see the test suite) to the corresponding
    {!Dmc_core.Analytic} function on all parameters. *)

val matmul_lb : Expr.t
(** [n^3 / (2 sqrt(2 S))]. *)

val fft_lb : Expr.t
(** [n log2(n) / (2 log2(S))]. *)

val jacobi_lb : Expr.t
(** [n^d T / (4 P (2S)^(1/d))] — Theorem 10. *)

val jacobi_threshold : Expr.t
(** [1 / (4 (2S)^(1/d))] — the balance the machine must exceed. *)

val jacobi_max_dim : Expr.t
(** [4 beta log2(2 S)] — the paper's dimension threshold. *)

val cg_vertical_lb : Expr.t
(** [6 n^d T / P] — Theorem 8. *)

val cg_flops : Expr.t
(** [20 n^d T]. *)

val cg_vertical_per_flop : Expr.t
(** [6 / 20]. *)

val gmres_vertical_lb : Expr.t
(** [6 n^d m / P] — Theorem 9. *)

val gmres_vertical_per_flop : Expr.t
(** [6 / (m + 20)]. *)

val ghost_cells : Expr.t
(** [(B + 2)^d - B^d]. *)

val lemma1 : Expr.t
(** [S (h - 1)] with the partition count [h] as a variable. *)

val lemma2 : Expr.t
(** [2 (w - S)] with the wavefront size [w] as a variable. *)

val all : (string * Expr.t) list
(** Name -> formula registry for the CLI ([dmc formula]). *)

val find : string -> Expr.t option
