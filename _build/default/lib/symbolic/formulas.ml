open Expr

let n = var "n"
let d = var "d"
let t = var "T"
let m = var "m"
let s = var "S"
let p = var "P"
let bblk = var "B"
let beta = var "beta"
let two_s = int 2 * s

let matmul_lb = (n ** int 3) / (int 2 * Sqrt two_s)

let fft_lb = n * Log2 n / (int 2 * Log2 s)

let nd = n ** d

let jacobi_lb = nd * t / (int 4 * p * (two_s ** (int 1 / d)))

let jacobi_threshold = int 1 / (int 4 * (two_s ** (int 1 / d)))

let jacobi_max_dim = int 4 * beta * Log2 two_s

let cg_vertical_lb = int 6 * nd * t / p

let cg_flops = int 20 * nd * t

let cg_vertical_per_flop = int 6 / int 20

let gmres_vertical_lb = int 6 * nd * m / p

let gmres_vertical_per_flop = int 6 / (m + int 20)

let ghost_cells = ((bblk + int 2) ** d) - (bblk ** d)

let lemma1 = s * (var "h" - int 1)

let lemma2 = int 2 * (var "w" - s)

let all =
  [
    ("matmul_lb", matmul_lb);
    ("fft_lb", fft_lb);
    ("jacobi_lb", jacobi_lb);
    ("jacobi_threshold", jacobi_threshold);
    ("jacobi_max_dim", jacobi_max_dim);
    ("cg_vertical_lb", cg_vertical_lb);
    ("cg_flops", cg_flops);
    ("cg_vertical_per_flop", cg_vertical_per_flop);
    ("gmres_vertical_lb", gmres_vertical_lb);
    ("gmres_vertical_per_flop", gmres_vertical_per_flop);
    ("ghost_cells", ghost_cells);
    ("lemma1", lemma1);
    ("lemma2", lemma2);
  ]

let find name = List.assoc_opt name all
