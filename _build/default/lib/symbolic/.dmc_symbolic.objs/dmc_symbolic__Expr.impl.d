lib/symbolic/expr.ml: Buffer Float Format List Printf Stdlib String
