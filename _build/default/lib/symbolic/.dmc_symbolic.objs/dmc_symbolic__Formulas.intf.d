lib/symbolic/formulas.mli: Expr
