lib/symbolic/formulas.ml: Expr List
