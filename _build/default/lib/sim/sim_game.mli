module Cdag := Dmc_cdag.Cdag

(** From cache simulation to pebble game, mechanically.

    The claim "an LRU cache execution is just one particular way to
    play the RBW game, so its traffic dominates every lower bound" is
    made precise here: {!of_execution} replays a compute order through
    a single-level LRU cache of capacity [s] and emits the
    corresponding explicit move sequence — fills become loads, dirty
    write-backs become stores, evictions become deletes.  The output
    replays cleanly through {!Dmc_core.Rbw_game.run} (the tests check
    this on every workload), and its I/O equals the traffic
    {!Exec.run} reports for the same configuration, words for words. *)

type result = {
  moves : Dmc_core.Rbw_game.move list;
  io : int;            (** loads + stores in [moves] *)
}

val of_execution : Cdag.t -> order:Cdag.vertex array -> s:int -> result
(** [order] as in {!Exec.run}: a topological order of the non-input
    vertices.  [s] must be at least the largest in-degree plus one
    (the LRU working set of a fire), or the generated compute would
    find an operand evicted: raises [Failure] in that case.  Unused
    inputs are loaded once at the end (the white-pebble completion
    rule), so the game I/O can exceed the raw simulator traffic by
    exactly their count. *)
