(* Doubly-linked LRU list threaded through a hashtable of nodes. *)

type node = {
  key : int;
  mutable dirty : bool;
  mutable prev : node option;  (* toward LRU end *)
  mutable next : node option;  (* toward MRU end *)
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable lru : node option;
  mutable mru : node option;
}

type eviction = { key : int; dirty : bool }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create (2 * capacity); lru = None; mru = None }

let capacity c = c.cap
let size c = Hashtbl.length c.table
let mem c k = Hashtbl.mem c.table k

let unlink c node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> c.lru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> c.mru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_mru c node =
  node.prev <- c.mru;
  node.next <- None;
  (match c.mru with Some m -> m.next <- Some node | None -> c.lru <- Some node);
  c.mru <- Some node

let touch c k =
  match Hashtbl.find_opt c.table k with
  | None -> false
  | Some node ->
      unlink c node;
      push_mru c node;
      true

let evict_lru c =
  match c.lru with
  | None -> None
  | Some node ->
      unlink c node;
      Hashtbl.remove c.table node.key;
      Some { key = node.key; dirty = node.dirty }

let insert c ?(dirty = false) k =
  match Hashtbl.find_opt c.table k with
  | Some node ->
      node.dirty <- node.dirty || dirty;
      unlink c node;
      push_mru c node;
      None
  | None ->
      let victim = if size c >= c.cap then evict_lru c else None in
      let node = { key = k; dirty; prev = None; next = None } in
      Hashtbl.replace c.table k node;
      push_mru c node;
      victim

let set_dirty c k =
  match Hashtbl.find_opt c.table k with
  | Some node -> node.dirty <- true
  | None -> ()

let remove c k =
  match Hashtbl.find_opt c.table k with
  | None -> None
  | Some node ->
      unlink c node;
      Hashtbl.remove c.table k;
      Some { key = node.key; dirty = node.dirty }

let iter f c =
  let rec go = function
    | None -> ()
    | Some (node : node) ->
        f node.key ~dirty:node.dirty;
        go node.next
  in
  go c.lru
