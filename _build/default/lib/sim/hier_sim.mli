(** A multi-level LRU cache-hierarchy simulator for one node.

    Levels are indexed from 1 (innermost, e.g. registers or L1) to [L];
    behind level [L] sits an unbounded backing store.  A read probes
    inward-out; the fill path brings the word into every level inside
    the hit level, counting one word of traffic on every boundary it
    crosses.  Dirty evictions write back one word to the next level
    out.  Boundary [l] (for [1 <= l <= L]) is the link between level
    [l] and level [l+1] (or the backing store when [l = L]) — the
    quantity the paper's vertical bounds constrain. *)

type t

type policy =
  | Inclusive
      (** copies remain at outer levels when a line moves inward; only
          dirty victims travel outward (the default, and what the
          paper's Theorem 5 derivation assumes) *)
  | Exclusive
      (** a line lives at exactly one level: an inner hit removes the
          outer copy, and {e every} eviction migrates the line one
          level out (victim caching), so the aggregate capacity is the
          sum of the levels — Section 4.1's other option *)

val create : ?policy:policy -> capacities:int array -> unit -> t
(** [capacities] ordered innermost first; all positive.  At least one
    level.  [policy] defaults to [Inclusive]. *)

val n_levels : t -> int

val read : t -> int -> unit
(** Read a word (by key).  Words never read or written before are
    assumed resident in the backing store (a cold miss pays traffic on
    every boundary). *)

val write : t -> int -> unit
(** Produce a word: it is installed dirty at level 1 {e without}
    fetching it first (no write-allocate read traffic). *)

val flush : t -> unit
(** Evict everything, propagating dirty write-backs outward — call at
    the end of a run so produced data reaches the backing store. *)

val traffic : t -> int array
(** [traffic t].(l-1) is the number of words that crossed boundary [l]
    so far (fills plus write-backs). *)

val contains : t -> level:int -> int -> bool
(** Whether a word currently sits at the given level (1-based). *)
