lib/sim/hier_sim.ml: Array Cache List
