lib/sim/exec.ml: Array Dmc_cdag Dmc_util Hier_sim
