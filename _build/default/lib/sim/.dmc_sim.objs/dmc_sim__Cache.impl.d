lib/sim/cache.ml: Hashtbl
