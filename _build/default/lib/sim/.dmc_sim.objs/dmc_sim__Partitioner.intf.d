lib/sim/partitioner.mli:
