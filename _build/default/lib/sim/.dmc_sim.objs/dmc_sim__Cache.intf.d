lib/sim/cache.mli:
