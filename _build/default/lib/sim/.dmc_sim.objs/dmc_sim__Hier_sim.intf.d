lib/sim/hier_sim.mli:
