lib/sim/sim_game.ml: Array Cache Dmc_cdag Dmc_core Dmc_util List
