lib/sim/exec.mli: Dmc_cdag
