lib/sim/partitioner.ml: Array List
