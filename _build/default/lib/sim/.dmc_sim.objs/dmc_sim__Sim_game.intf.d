lib/sim/sim_game.mli: Dmc_cdag Dmc_core
