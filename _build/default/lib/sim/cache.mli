(** A word-granularity LRU cache over integer keys.

    This is the building block of the hierarchy simulator: each storage
    level is one of these.  Entries carry a dirty bit so write-back
    traffic can be counted. *)

type t

type eviction = { key : int; dirty : bool }

val create : capacity:int -> t
(** [capacity] in words; must be positive. *)

val capacity : t -> int

val size : t -> int

val mem : t -> int -> bool

val touch : t -> int -> bool
(** Move a key to most-recently-used position; returns whether it was
    present (a miss does not insert). *)

val insert : t -> ?dirty:bool -> int -> eviction option
(** Insert (or refresh) a key as most-recently-used, returning the LRU
    victim when the cache was full.  Refreshing an existing key never
    evicts; [dirty] ORs into the existing dirty bit. *)

val set_dirty : t -> int -> unit
(** Mark a present key dirty; no-op when absent. *)

val remove : t -> int -> eviction option
(** Remove a key, returning its record when present. *)

val iter : (int -> dirty:bool -> unit) -> t -> unit
(** Iterate entries from least- to most-recently-used. *)
