module Grid = struct
  (* A tiny local copy of row-major indexing to avoid a dependency on
     the generator library (which depends the other way for tests). *)
  let strides dims =
    let d = Array.length dims in
    let s = Array.make d 1 in
    for k = d - 2 downto 0 do
      s.(k) <- s.(k + 1) * dims.(k + 1)
    done;
    s
end

let block_owner ~dims ~blocks =
  let dims = Array.of_list dims and blocks = Array.of_list blocks in
  if Array.length dims <> Array.length blocks then
    invalid_arg "Partitioner.block_owner: rank mismatch";
  Array.iteri
    (fun j b ->
      if b <= 0 || b > dims.(j) then
        invalid_arg "Partitioner.block_owner: bad block count")
    blocks;
  let block_of j x =
    (* Near-equal contiguous chunks: the first [r] chunks have size
       [q+1], the rest [q]. *)
    let n = dims.(j) and b = blocks.(j) in
    let q = n / b and r = n mod b in
    if x < (q + 1) * r then x / (q + 1) else r + ((x - ((q + 1) * r)) / q)
  in
  fun coords ->
    let coords = Array.of_list coords in
    if Array.length coords <> Array.length dims then
      invalid_arg "Partitioner.block_owner: coordinate rank mismatch";
    let rank = ref 0 in
    Array.iteri
      (fun j x ->
        if x < 0 || x >= dims.(j) then
          invalid_arg "Partitioner.block_owner: coordinate out of range";
        rank := (!rank * blocks.(j)) + block_of j x)
      coords;
    !rank

let neighbors ~dims ~star coords =
  let d = Array.length dims in
  let out = ref [] in
  if star then
    for j = 0 to d - 1 do
      List.iter
        (fun delta ->
          let c = Array.copy coords in
          c.(j) <- c.(j) + delta;
          if c.(j) >= 0 && c.(j) < dims.(j) then out := c :: !out)
        [ -1; 1 ]
    done
  else begin
    let n_offsets = int_of_float (3.0 ** float_of_int d) in
    for code = 0 to n_offsets - 1 do
      let rest = ref code and ok = ref true and nonzero = ref false in
      let c = Array.copy coords in
      for j = d - 1 downto 0 do
        let delta = (!rest mod 3) - 1 in
        rest := !rest / 3;
        if delta <> 0 then nonzero := true;
        c.(j) <- c.(j) + delta;
        if c.(j) < 0 || c.(j) >= dims.(j) then ok := false
      done;
      if !ok && !nonzero then out := c :: !out
    done
  end;
  !out

let ghost_words ~dims ~blocks ~star =
  let owner = block_owner ~dims ~blocks in
  let dims_a = Array.of_list dims in
  let d = Array.length dims_a in
  let total = Array.fold_left ( * ) 1 dims_a in
  let strides = Grid.strides dims_a in
  let count = ref 0 in
  for i = 0 to total - 1 do
    let coords = Array.init d (fun k -> i / strides.(k) mod dims_a.(k)) in
    let me = owner (Array.to_list coords) in
    (* Distinct neighbor owners that consume this point. *)
    let consumers =
      neighbors ~dims:dims_a ~star coords
      |> List.map (fun c -> owner (Array.to_list c))
      |> List.filter (fun o -> o <> me)
      |> List.sort_uniq compare
    in
    count := !count + List.length consumers
  done;
  !count
