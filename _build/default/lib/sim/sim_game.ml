module Cdag = Dmc_cdag.Cdag
module Bitset = Dmc_util.Bitset

type result = {
  moves : Dmc_core.Rbw_game.move list;
  io : int;
}

let of_execution g ~order ~s =
  let n = Cdag.n_vertices g in
  let cache = Cache.create ~capacity:s in
  let blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let touched_input = Bitset.create n in
  let moves = ref [] in
  let io = ref 0 in
  let emit m = moves := m :: !moves in
  (* A dirty victim is written back (Store) before its pebble goes
     away; a clean one is just deleted. *)
  let handle_eviction = function
    | None -> ()
    | Some { Cache.key; dirty } ->
        if dirty then begin
          emit (Dmc_core.Rbw_game.Store key);
          incr io;
          Bitset.add blue key
        end;
        emit (Dmc_core.Rbw_game.Delete key)
  in
  let read v =
    if not (Cache.touch cache v) then begin
      (* miss: the value must be recoverable from slow memory *)
      if not (Bitset.mem blue v) then
        failwith "Sim_game.of_execution: operand lost (s too small)";
      handle_eviction (Cache.insert cache v);
      emit (Dmc_core.Rbw_game.Load v);
      incr io;
      if Cdag.is_input g v then Bitset.add touched_input v
    end
  in
  Array.iter
    (fun v ->
      Cdag.iter_pred g v (fun u -> read u);
      (* all operands are now the most recently used entries, so the
         LRU victim of the result's insertion cannot be one of them
         unless the capacity is below in-degree + 1 *)
      let victim = Cache.insert cache ~dirty:true v in
      (match victim with
      | Some { Cache.key; _ } when Cdag.has_edge g key v ->
          failwith "Sim_game.of_execution: operand evicted before the fire (s too small)"
      | _ -> ());
      handle_eviction victim;
      emit (Dmc_core.Rbw_game.Compute v))
    order;
  (* flush: write every dirty resident back; outputs must reach slow
     memory *)
  let residents = ref [] in
  Cache.iter (fun k ~dirty -> residents := (k, dirty) :: !residents) cache;
  List.iter
    (fun (k, dirty) ->
      if dirty then begin
        emit (Dmc_core.Rbw_game.Store k);
        incr io;
        Bitset.add blue k
      end;
      emit (Dmc_core.Rbw_game.Delete k);
      ignore (Cache.remove cache k))
    !residents;
  (* whiten inputs nobody read *)
  List.iter
    (fun v ->
      if not (Bitset.mem touched_input v) then begin
        emit (Dmc_core.Rbw_game.Load v);
        incr io;
        emit (Dmc_core.Rbw_game.Delete v)
      end)
    (Cdag.inputs g);
  { moves = List.rev !moves; io = !io }
