(** Block partitioning of grid-structured CDAGs across nodes, with the
    ghost-cell accounting of Sections 5.2.2 and 5.4.2. *)

val block_owner :
  dims:int list -> blocks:int list -> (int list -> int)
(** [block_owner ~dims ~blocks] maps a grid coordinate to the rank of
    the block that owns it, splitting each dimension [dims_j] into
    [blocks_j] near-equal contiguous chunks (ranks are row-major over
    the block grid).  Raises [Invalid_argument] on rank mismatch or a
    non-positive block count. *)

val ghost_words :
  dims:int list -> blocks:int list -> star:bool -> int
(** The number of (point, owner) pairs where a stencil neighbor of the
    point belongs to a different owner — i.e. the words one full
    exchange phase moves.  [star] selects the von Neumann neighborhood,
    otherwise Moore.  Counted exactly on the discrete grid (boundary
    blocks have fewer neighbors), matching what {!Exec.run} measures. *)
