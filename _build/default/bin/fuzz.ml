(* dmc-fuzz: randomized cross-validation soak tool.

   Generates random CDAGs across several families and, for each,
   cross-checks every engine against every other:

     1. every lower bound <= the exhaustive RBW optimum (small graphs);
     2. the optimum <= every strategy's measured I/O;
     3. RB optimum <= RBW optimum;
     4. every schedule (Belady, LRU, DFS order) replays cleanly;
     5. the Theorem-1 partition of each game validates with
        q >= S(h-1);
     6. the LRU simulator's traffic dominates the certified bound;
     7. serialization round-trips;
     8. the three-level hierarchical game validates with both
        boundaries above their sequential bounds.

   Usage:  dune exec bin/fuzz.exe -- [cases] [seed]
   Exit status 1 on the first violation (with a reproducer seed). *)

module Cdag = Dmc_cdag.Cdag
module Rng = Dmc_util.Rng
module Strategy = Dmc_core.Strategy

let max_indeg g =
  Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0

let families =
  [|
    (fun rng -> Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.4);
    (fun rng -> Dmc_gen.Random_dag.layered rng ~layers:3 ~width:5 ~edge_prob:0.6);
    (fun rng -> Dmc_gen.Random_dag.gnp rng ~n:(7 + Rng.int rng 6) ~edge_prob:0.3);
    (fun rng -> Dmc_gen.Random_dag.connected_dag rng ~n:(6 + Rng.int rng 8)
                  ~extra_edges:(Rng.int rng 8));
    (fun rng ->
      let n = 3 + Rng.int rng 4 in
      (Dmc_gen.Stencil.jacobi_1d ~n ~steps:(1 + Rng.int rng 3)).graph);
  |]

exception Violation of string

let require label ok = if not ok then raise (Violation label)

let one_case rng =
  let g = families.(Rng.int rng (Array.length families)) rng in
  let s = max_indeg g + 1 + Rng.int rng 4 in
  let n = Cdag.n_vertices g in

  (* 7: serialization round-trip *)
  (match Dmc_cdag.Serialize.of_string (Dmc_cdag.Serialize.to_string g) with
  | Ok g2 -> require "serialize" (Dmc_cdag.Serialize.equal_structure g g2)
  | Error m -> raise (Violation ("serialize: " ^ m)));

  (* 4: schedules replay *)
  let check_schedule label order policy =
    match Dmc_core.Rbw_game.run g ~s (Strategy.schedule ~policy ?order g ~s) with
    | Ok stats -> stats.Dmc_core.Rbw_game.io
    | Error e -> raise (Violation (Printf.sprintf "%s: %s" label e.reason))
  in
  let belady = check_schedule "belady" None Strategy.Belady in
  let lru = check_schedule "lru" None Strategy.Lru in
  let dfs = check_schedule "dfs" (Some (Strategy.dfs_order g)) Strategy.Belady in

  (* 1-3: bound soundness against the optimum *)
  let report = Dmc_core.Bounds.analyze g ~s in
  (* Inputs nobody consumes still cost one load in a complete RBW game
     (the white-pebble rule), but they never cross an inner hierarchy
     boundary and the LRU simulator never touches them: correct the
     dominance checks by their count. *)
  let unused_inputs =
    List.length
      (List.filter (fun v -> Cdag.out_degree g v = 0) (Cdag.inputs g))
  in
  require "floor <= wavefront consistency" (report.best_lb >= report.io_floor);
  (if n <= 14 then
     match Dmc_core.Optimal.rbw_io g ~s with
     | opt ->
         require "lb <= optimal" (report.best_lb <= opt);
         require "optimal <= belady" (opt <= belady);
         require "optimal <= lru" (opt <= lru);
         require "optimal <= dfs" (opt <= dfs);
         if n <= 12 && Dmc_cdag.Validate.is_hong_kung g then
           require "rb <= rbw" (Dmc_core.Optimal.rb_io g ~s <= opt)
     | exception Dmc_core.Optimal.Too_large _ -> ());

  (* 5: Theorem-1 partition of the Belady game *)
  let moves = Strategy.schedule g ~s in
  let io = Dmc_core.Rbw_game.io_of g ~s moves in
  let color = Dmc_core.Spartition.of_game g ~s moves in
  let h = 1 + Array.fold_left max (-1) color in
  (match Dmc_core.Spartition.check g ~s:(2 * s) ~color with
  | Ok _ -> ()
  | Error m -> raise (Violation ("theorem1 partition: " ^ m)));
  require "theorem1 arithmetic" (io >= s * (h - 1));

  (* 6: simulator dominance *)
  let sim =
    Dmc_sim.Exec.run g
      ~order:(Strategy.default_order g)
      (Dmc_sim.Exec.sequential ~capacities:[| s; 8 * n |])
  in
  require "simulator dominates lb"
    (sim.vertical.(0).(0) + unused_inputs >= report.best_lb);

  (* 8: hierarchical game *)
  let s2 = s + 2 + Rng.int rng 8 in
  let hier_moves = Strategy.hierarchical g ~s1:s ~s2 in
  let hier = Strategy.hierarchical_hierarchy ~s1:s ~s2 in
  (match Dmc_core.Prbw_game.run hier g hier_moves with
  | Ok stats ->
      require "hier regs boundary"
        (Dmc_core.Prbw_game.boundary_traffic stats ~level:2 + unused_inputs
        >= Dmc_core.Wavefront.lower_bound g ~s);
      require "hier mem boundary"
        (Dmc_core.Prbw_game.boundary_traffic stats ~level:3 + unused_inputs
        >= Dmc_core.Wavefront.lower_bound g ~s:s2)
  | Error e -> raise (Violation ("hierarchical: " ^ e.reason)));
  n

let () =
  let cases =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20140418 in
  let master = Rng.create seed in
  let total_vertices = ref 0 in
  let failures = ref 0 in
  for i = 1 to cases do
    let case_seed = Rng.next master in
    let rng = Rng.create case_seed in
    match one_case rng with
    | n -> total_vertices := !total_vertices + n
    | exception Violation msg ->
        incr failures;
        Printf.printf "VIOLATION in case %d (seed %d): %s\n%!" i case_seed msg
    | exception e ->
        incr failures;
        Printf.printf "EXCEPTION in case %d (seed %d): %s\n%!" i case_seed
          (Printexc.to_string e)
  done;
  Printf.printf "fuzz: %d cases, %d vertices total, %d violation(s)\n" cases
    !total_vertices !failures;
  if Stdlib.( > ) !failures 0 then exit 1
