(* Co-designing a machine against the bounds — the paper's closing
   argument turned into a tool.

   Given a hypothetical machine (peak FLOP/s per core, memory and
   network bandwidths), this example asks each algorithm's lower bound
   whether the machine can ever run it at full tilt, how fast the
   cache must grow to save a stencil, and where the time actually goes
   (Equations 4-6).  Formulas are manipulated symbolically so the
   reader can see what is being evaluated.

   Run with:  dune exec examples/balance_explorer.exe *)

module Expr = Dmc_symbolic.Expr
module Formulas = Dmc_symbolic.Formulas
module Machines = Dmc_machine.Machines
module Table = Dmc_util.Table

let () =
  (* A hypothetical 2030 node: 128 cores at 16 GFLOP/s, 4 TB/s of
     memory bandwidth, 100 GB/s injection. *)
  let cores = 128 and flops = 16.0e9 in
  let peak = float_of_int cores *. flops in
  let mem_bw_words = 4.0e12 /. 8.0 and net_bw_words = 100.0e9 /. 8.0 in
  let v_balance = mem_bw_words /. peak in
  let h_balance = net_bw_words /. peak in
  Printf.printf
    "hypothetical node: %d cores x %.0f GFLOP/s, %.1f TB/s HBM, 100 GB/s NIC\n\
     vertical balance %.4f words/FLOP, horizontal %.6f words/FLOP\n\n"
    cores (flops /. 1.0e9) 4.0 v_balance h_balance;

  (* What does each algorithm demand?  Straight from the symbolic
     formulas. *)
  Printf.printf "per-algorithm floors (words/FLOP) vs this machine:\n\n";
  let t = Table.create ~headers:[ "algorithm"; "formula"; "floor"; "verdict" ] in
  let verdict floor =
    Dmc_machine.Balance.verdict_to_string
      (Dmc_machine.Balance.classify_lower ~lb_per_flop:floor ~balance:v_balance)
  in
  let add name formula env =
    let floor = Expr.eval ~env formula in
    Table.add_row t
      [ name; Expr.to_string (Expr.simplify formula);
        Printf.sprintf "%.2e" floor; verdict floor ]
  in
  add "CG" Formulas.cg_vertical_per_flop [];
  add "GMRES m=32" Formulas.gmres_vertical_per_flop [ ("m", 32.0) ];
  add "GMRES m=512" Formulas.gmres_vertical_per_flop [ ("m", 512.0) ];
  let cache_words = 8.0 *. 1024.0 *. 1024.0 in
  add "Jacobi 3D" Formulas.jacobi_threshold [ ("d", 3.0); ("S", cache_words) ];
  Table.print t;

  (* How big must the cache be before a d-dimensional stencil is
     safe?  Invert the threshold symbolically-ish: sweep S. *)
  Printf.printf
    "\nJacobi floor vs cache size (the knob an architect can turn):\n\n";
  let t2 = Table.create ~headers:[ "cache (MWords)"; "3D floor"; "5D floor" ] in
  List.iter
    (fun mw ->
      let s = mw *. 1024.0 *. 1024.0 in
      let f d = Expr.eval ~env:[ ("d", d); ("S", s) ] Formulas.jacobi_threshold in
      Table.add_row t2
        [ Printf.sprintf "%.2f" mw; Printf.sprintf "%.2e" (f 3.0);
          Printf.sprintf "%.2e" (f 5.0) ])
    [ 0.25; 1.0; 4.0; 16.0 ];
  Table.print t2;

  (* And where does the time go for CG on the real Table-1 machines,
     versus this hypothetical one? *)
  Printf.printf "\nCG time model (n = 1000, T = 100):\n\n";
  Table.print (Dmc_analysis.Time_model.table ~flops_per_core:8.0e9 ~n:1000 ~steps:100);
  let p =
    Dmc_analysis.Time_model.predict ~flops_per_core:flops ~cores ~nodes:1024
      ~vertical_bw:mem_bw_words ~horizontal_bw:net_bw_words
      ~work:(Dmc_core.Analytic.cg_flops ~d:3 ~n:1000 ~steps:100)
      ~vertical_words_per_node:
        (Dmc_core.Analytic.cg_vertical_lb ~d:3 ~n:1000 ~steps:100
           ~p:(1024 * cores)
        *. float_of_int cores)
      ~horizontal_words_per_node:
        (Dmc_core.Analytic.cg_horizontal_ub ~d:3 ~block:100 ~steps:100)
  in
  Printf.printf
    "\nhypothetical node: T_comp %.2e s vs T_mem %.2e s -> efficiency cap %.0f%%\n\
     (CG stays memory-bound even on a 4 TB/s node: 0.3 words/FLOP is a\n\
     property of the algorithm, not of any machine)\n"
    p.Dmc_analysis.Time_model.t_comp p.Dmc_analysis.Time_model.t_vertical
    (100.0 *. p.Dmc_analysis.Time_model.efficiency_cap)
