(* Is Conjugate Gradient doomed to be memory-bound?  (Section 5.2)

   This example reproduces the paper's headline CG result end to end:
   1. the machine-balance argument — CG moves at least 0.3 words per
      FLOP through the memory/L2 link, more than any Table-1 machine
      can stream, so no amount of tuning makes it compute-bound;
   2. the wavefront machinery behind that number, run mechanically on a
      real CG CDAG: min-cut wavefronts at the two dot-product scalars
      of every iteration, composed by decomposition;
   3. the horizontal side: ghost-cell traffic measured on a
      block-partitioned run through the cluster simulator, matching the
      (B+2)^d - B^d formula — orders of magnitude under the network
      balance.

   Run with:  dune exec examples/cg_bandwidth.exe *)

let () =
  (* 1. Balance analysis at the paper's scale (d = 3, n = 1000). *)
  Dmc_util.Table.print (Dmc_analysis.Cg_analysis.table ());
  Printf.printf
    "\nCG's vertical lower bound per FLOP is 6/20 = %.2f words/FLOP;\n\
     both machines sit far below it, so CG is bandwidth-bound vertically.\n\n"
    (Dmc_core.Analytic.cg_vertical_per_flop ());

  (* 2. The Theorem-8 machinery on a real (small) CG CDAG. *)
  let dims = [ 4; 4; 4 ] and iters = 3 and s = 24 in
  let cg = Dmc_gen.Solver.cg ~dims ~iters in
  let npts = Dmc_gen.Grid.size cg.grid in
  Printf.printf "CG CDAG on a %d-point grid, %d iterations: %d vertices\n" npts
    iters (Dmc_cdag.Cdag.n_vertices cg.graph);
  Array.iteri
    (fun t (it : Dmc_gen.Solver.cg_iteration) ->
      let wa = Dmc_core.Wavefront.min_wavefront cg.graph it.a_scalar in
      let wg = Dmc_core.Wavefront.min_wavefront cg.graph it.g_scalar in
      Printf.printf
        "  iteration %d: |Wmin(a)| = %3d (>= 2 n^d = %3d)   |Wmin(g)| = %3d (>= n^d = %3d)\n"
        t wa (2 * npts) wg npts)
    cg.iterations;
  let s_check = Dmc_analysis.Cg_analysis.structure ~dims ~iters ~s () in
  Printf.printf
    "decomposed lower bound (Theorems 2+8): %d words;  a measured Belady execution: %d words\n\n"
    s_check.decomposed_lb s_check.belady_ub;

  (* 3. Horizontal: block-partitioned SpMV ghost cells via the
     simulator. *)
  let grid_n = 12 and blocks = [ 2; 2 ] and steps = 3 in
  let st =
    Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims:[ grid_n; grid_n ]
      ~steps ()
  in
  let owner_pt = Dmc_sim.Partitioner.block_owner ~dims:[ grid_n; grid_n ] ~blocks in
  let npts2 = grid_n * grid_n in
  let owner v = owner_pt (Dmc_gen.Grid.coord st.grid (v mod npts2)) in
  let result =
    Dmc_sim.Exec.run st.graph
      ~order:(Dmc_gen.Stencil.natural_order st)
      { Dmc_sim.Exec.capacities = [| 64; 8 * npts2 |]; nodes = 4; owner }
  in
  let predicted =
    Dmc_sim.Partitioner.ghost_words ~dims:[ grid_n; grid_n ] ~blocks ~star:true
    * steps
  in
  Printf.printf
    "horizontal traffic on a %dx%d grid over %d SpMV-like sweeps across 4 nodes:\n\
    \  measured %d words, ghost-cell formula %d words\n"
    grid_n grid_n steps result.horizontal_total predicted;
  Printf.printf
    "per-FLOP that is ~%.1e words — versus a network balance of ~0.05: the\n\
     interconnect is never CG's bottleneck; the memory wall is.\n"
    (Dmc_core.Analytic.cg_horizontal_per_flop ~d:3 ~n:1000 ~nodes:2048)
