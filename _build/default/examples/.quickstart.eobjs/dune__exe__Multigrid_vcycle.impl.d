examples/multigrid_vcycle.ml: Array Dmc_analysis Dmc_cdag Dmc_core Dmc_gen Dmc_util List Printf
