examples/gmres_krylov_sweep.mli:
