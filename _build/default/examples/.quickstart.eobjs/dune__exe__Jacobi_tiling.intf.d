examples/jacobi_tiling.mli:
