examples/cg_bandwidth.mli:
