examples/quickstart.mli:
