examples/sorting_and_factorization.ml: Array Dmc_cdag Dmc_core Dmc_gen Dmc_util List Printf
