examples/multigrid_vcycle.mli:
