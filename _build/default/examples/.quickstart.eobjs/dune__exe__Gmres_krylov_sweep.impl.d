examples/gmres_krylov_sweep.ml: Array Dmc_analysis Dmc_cdag Dmc_core Dmc_gen Dmc_machine Dmc_util List Printf
