examples/cg_bandwidth.ml: Array Dmc_analysis Dmc_cdag Dmc_core Dmc_gen Dmc_sim Dmc_util Printf
