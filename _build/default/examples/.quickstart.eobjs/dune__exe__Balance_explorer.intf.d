examples/balance_explorer.mli:
