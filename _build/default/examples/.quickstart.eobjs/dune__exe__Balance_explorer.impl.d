examples/balance_explorer.ml: Dmc_analysis Dmc_core Dmc_machine Dmc_symbolic Dmc_util List Printf
