examples/composite_pipeline.mli:
