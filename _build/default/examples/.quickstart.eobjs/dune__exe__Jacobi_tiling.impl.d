examples/jacobi_tiling.ml: Array Dmc_cdag Dmc_core Dmc_gen Dmc_sim Dmc_util List Printf
