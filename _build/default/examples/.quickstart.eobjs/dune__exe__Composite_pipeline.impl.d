examples/composite_pipeline.ml: Array Dmc_analysis Dmc_cdag Dmc_core Dmc_gen Dmc_util Printf
