examples/quickstart.ml: Dmc_cdag Dmc_core Format List
