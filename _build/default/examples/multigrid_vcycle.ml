(* Multigrid under the data-movement microscope — an extension of the
   paper's solver family.

   A V-cycle does geometrically less work on each coarser grid, so its
   arithmetic is dominated by the finest-level smoothing.  What about
   its data movement?  This example

   1. builds full V-cycle CDAGs (smooth / restrict / recurse / prolong
      / smooth) and shows their structure;
   2. locates the dominant wavefront: it sits at the restriction
      funnel, where the entire fine grid is pinned live while the
      coarse correction is computed — multigrid's version of CG's
      dot-product bottleneck;
   3. runs the per-cycle decomposition (the Theorem-2/8 pattern): the
      composed bound grows linearly with the cycle count while a
      whole-graph wavefront bound saturates;
   4. sandwiches everything against measured Belady executions.

   Run with:  dune exec examples/multigrid_vcycle.exe *)

module Multigrid = Dmc_gen.Multigrid
module Cdag = Dmc_cdag.Cdag

let () =
  let dims = [ 33 ] and levels = 3 in
  let mg = Multigrid.v_cycle ~dims ~levels ~cycles:1 () in
  Printf.printf "V-cycle on a %d-point grid, %d levels: %d vertices, %d edges\n"
    (Multigrid.finest_points mg) levels
    (Cdag.n_vertices mg.Multigrid.graph)
    (Cdag.n_edges mg.Multigrid.graph);
  Array.iteri
    (fun l grid ->
      Printf.printf "  level %d: %d points\n" l (Dmc_gen.Grid.size grid))
    mg.Multigrid.grids;

  (* Where is the data-movement bottleneck?  Compare wavefronts at a
     smoothing point, at a restriction point, and at a corrected
     point. *)
  let g = mg.Multigrid.graph in
  let fine = mg.Multigrid.cycles.(0).(0) in
  let mid = Multigrid.finest_points mg / 2 in
  let probe label v =
    Printf.printf "  |Wmin| at %-28s = %d\n" label
      (Dmc_core.Wavefront.min_wavefront g v)
  in
  print_newline ();
  probe "fine smoothing (sweep 2, mid)" fine.Multigrid.pre_smooth.(1).(mid);
  probe "restriction (coarse mid)"
    fine.Multigrid.restricted.(Array.length fine.Multigrid.restricted / 2);
  probe "prolongated correction (mid)" fine.Multigrid.corrected.(mid);
  let wit =
    Dmc_core.Wavefront.witness g
      fine.Multigrid.restricted.(Array.length fine.Multigrid.restricted / 2)
  in
  Printf.printf
    "  the restriction wavefront comes with a %d-path Menger witness (verified: %b)\n"
    (List.length wit.Dmc_core.Wavefront.paths)
    (Dmc_core.Wavefront.verify_witness g wit);

  (* The decomposition story, as in the CG/GMRES experiments. *)
  print_newline ();
  let rows = Dmc_analysis.Multigrid_analysis.sweep ~cycle_counts:[ 1; 2; 4; 8 ] () in
  Dmc_util.Table.print (Dmc_analysis.Multigrid_analysis.table rows);
  Printf.printf
    "\nThe per-cycle decomposed bound grows with the cycle count while the\n\
     whole-graph wavefront saturates -- every V-cycle must re-stream the fine\n\
     grid, exactly like every CG iteration must (Theorem 8).\n"
