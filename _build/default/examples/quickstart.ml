(* Quickstart: build a small CDAG by hand, bound its I/O from below
   with every engine, play a real pebble game against it, and check the
   sandwich  lower bound <= optimal <= strategy.

   Run with:  dune exec examples/quickstart.exe *)

module Cdag = Dmc_cdag.Cdag

let () =
  (* A tiny two-stage pipeline: two inputs feed three intermediate
     values, which reduce to one output.

        a   b
        |\ /|
        | X |
        |/ \|
       u  v  w      u = f(a), v = g(a,b), w = h(b)
        \ | /
         out                                                     *)
  let b = Cdag.Builder.create () in
  let a = Cdag.Builder.add_vertex ~label:"a" b in
  let bb = Cdag.Builder.add_vertex ~label:"b" b in
  let u = Cdag.Builder.add_vertex ~label:"u" b in
  let v = Cdag.Builder.add_vertex ~label:"v" b in
  let w = Cdag.Builder.add_vertex ~label:"w" b in
  let out = Cdag.Builder.add_vertex ~label:"out" b in
  List.iter
    (fun (x, y) -> Cdag.Builder.add_edge b x y)
    [ (a, u); (a, v); (bb, v); (bb, w); (u, out); (v, out); (w, out) ];
  let g = Cdag.Builder.freeze b in
  Format.printf "built: %a@." Cdag.pp_stats g;

  (* Every lower- and upper-bound engine at S = 3 red pebbles. *)
  let s = 4 in
  let report = Dmc_core.Bounds.analyze ~optimal_limit:20 g ~s in
  Format.printf "%a@.@." Dmc_core.Bounds.pp_report report;

  (* Play the Belady schedule as a rule-checked RBW pebble game. *)
  let moves = Dmc_core.Strategy.schedule g ~s in
  Format.printf "Belady schedule (%d moves):@." (List.length moves);
  List.iter (fun m -> Format.printf "  %a@." Dmc_core.Rb_game.pp_move m) moves;
  (match Dmc_core.Rbw_game.run g ~s moves with
  | Ok stats ->
      Format.printf "replayed: io = %d, peak red pebbles = %d@." stats.io stats.max_red
  | Error e -> Format.printf "INVALID at step %d: %s@." e.step e.reason);

  (* The exhaustive optimum confirms the sandwich. *)
  let opt = Dmc_core.Optimal.rbw_io g ~s in
  Format.printf "@.sandwich: best LB %d <= optimal %d <= Belady %d : %b@."
    report.best_lb opt report.belady_ub
    (report.best_lb <= opt && opt <= report.belady_ub);

  (* Export for visual inspection. *)
  Dmc_cdag.Dot.to_file "quickstart.dot" g;
  Format.printf "wrote quickstart.dot@."
