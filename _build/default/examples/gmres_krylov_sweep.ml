(* When does GMRES stop being memory-bound?  (Section 5.3)

   GMRES with Krylov dimension m does 20 n^3 m + n^3 m^2 FLOPs but only
   needs ~6 n^3 m words through the memory wall, so its vertical
   traffic per FLOP is 6/(m+20): for small m it exceeds every machine
   balance (bandwidth-bound, like CG); as m grows the m^2 Gram–Schmidt
   work amortizes the traffic and the solver crosses into compute-bound
   territory at m* = 6/balance - 20.

   Run with:  dune exec examples/gmres_krylov_sweep.exe *)

let () =
  let ms = [ 1; 2; 4; 8; 16; 24; 32; 48; 64; 96; 128; 192; 256 ] in
  Dmc_util.Table.print (Dmc_analysis.Gmres_analysis.table ~ms ());
  print_newline ();
  List.iter
    (fun (m : Dmc_machine.Machines.t) ->
      Printf.printf "  %-10s balance %.4f -> crossover m* = %.1f\n" m.name
        m.vertical_balance
        (Dmc_analysis.Gmres_analysis.crossover_m ~balance:m.vertical_balance))
    Dmc_machine.Machines.table1;

  (* The structural claim behind the 6 n^d m: the modified-Gram-Schmidt
     dot h_{i,i} pins both w and v_i live (wavefront 2 n^d), the norm
     pins v' (wavefront n^d).  Measured on a real CDAG: *)
  print_newline ();
  let dims = [ 6; 6 ] and iters = 4 in
  let gm = Dmc_gen.Solver.gmres ~dims ~iters in
  let npts = Dmc_gen.Grid.size gm.grid in
  Printf.printf "GMRES CDAG on a %d-point grid, %d outer iterations: %d vertices\n"
    npts iters
    (Dmc_cdag.Cdag.n_vertices gm.graph);
  Array.iteri
    (fun i (it : Dmc_gen.Solver.gmres_iteration) ->
      Printf.printf
        "  i = %d: |Wmin(h_ii)| = %3d (>= 2 n^d = %3d)   |Wmin(norm)| = %3d (>= n^d = %3d)\n"
        i
        (Dmc_core.Wavefront.min_wavefront gm.graph it.h_diag)
        (2 * npts)
        (Dmc_core.Wavefront.min_wavefront gm.graph it.norm)
        npts)
    gm.iterations;
  let s = 20 in
  let check = Dmc_analysis.Gmres_analysis.structure ~dims ~iters ~s () in
  Printf.printf
    "decomposed lower bound at S = %d: %d words; measured execution: %d words\n" s
    check.decomposed_lb check.belady_ub
