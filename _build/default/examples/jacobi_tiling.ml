(* Time-tiling a stencil: how close can a schedule get to Theorem 10?

   Theorem 10 bounds any execution of a d-dimensional Jacobi stencil by
   n^d T / (4 P (2S)^{1/d}) words of vertical traffic.  This example
   plays three execution orders of the same CDAG through the checked
   RBW pebble game and through the LRU cache simulator:

     - the natural order (full time sweeps): no temporal reuse,
       I/O ~ 2 n^d per step, a factor Θ((2S)^{1/d}) off the bound;
     - skewed parallelogram tiles: I/O ~ n^d T / tile, tracking the
       bound's Θ(n T / S) shape (d = 1 here);
     - the same orders under LRU instead of Belady, quantifying how
       much the eviction policy costs.

   Run with:  dune exec examples/jacobi_tiling.exe *)

module Stencil = Dmc_gen.Stencil
module Strategy = Dmc_core.Strategy
module Table = Dmc_util.Table

let () =
  let n = 96 and steps = 24 in
  let st = Stencil.jacobi_1d ~n ~steps in
  Printf.printf "1D Jacobi, n = %d, T = %d: %d vertices, %d edges\n\n" n steps
    (Dmc_cdag.Cdag.n_vertices st.graph)
    (Dmc_cdag.Cdag.n_edges st.graph);
  let t = Table.create ~headers:[ "S"; "Theorem 10 LB"; "order"; "policy"; "measured I/O"; "vs LB" ] in
  List.iter
    (fun s ->
      let lb = Dmc_core.Analytic.jacobi_lb ~d:1 ~n ~steps ~s ~p:1 in
      let tile = max 2 (s / 3) in
      let orders =
        [
          ("natural", Stencil.natural_order st);
          (Printf.sprintf "skewed(%d)" tile, Stencil.skewed_order st ~tile);
        ]
      in
      List.iter
        (fun (oname, order) ->
          List.iter
            (fun (pname, policy) ->
              let io = Strategy.io ~policy ~order st.graph ~s in
              Table.add_row t
                [
                  string_of_int s;
                  Printf.sprintf "%.0f" lb;
                  oname;
                  pname;
                  string_of_int io;
                  Printf.sprintf "%.1fx" (float_of_int io /. lb);
                ])
            [ ("belady", Strategy.Belady); ("lru", Strategy.Lru) ])
        orders;
      Table.add_rule t)
    [ 12; 24; 48 ];
  Table.print t;

  (* Cross-check one configuration against the cache simulator: an LRU
     cache of the same capacity is just another (valid) way to play the
     pebble game, so its traffic must also dominate the bound. *)
  let s = 24 in
  let tile = max 2 (s / 3) in
  let order = Stencil.skewed_order st ~tile in
  let sim =
    Dmc_sim.Exec.run st.graph ~order
      (Dmc_sim.Exec.sequential ~capacities:[| s; 8 * n * (steps + 1) |])
  in
  Printf.printf
    "\nLRU cache simulator at S = %d, skewed order: %d words at the L1 boundary\n"
    s sim.vertical.(0).(0);
  Printf.printf "Theorem 10 at S = %d: %.0f words — bound respected: %b\n" s
    (Dmc_core.Analytic.jacobi_lb ~d:1 ~n ~steps ~s ~p:1)
    (float_of_int sim.vertical.(0).(0)
    >= Dmc_core.Analytic.jacobi_lb ~d:1 ~n ~steps ~s ~p:1)
