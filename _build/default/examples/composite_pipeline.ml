(* Why per-kernel bounds don't add up — the Section 3 pipeline.

       A = p q^T;   B = r s^T;   C = A B;   sum = Σ_ij C_ij

   Each step in isolation has a known I/O bound; the matrix multiply
   alone needs n^3/(2 sqrt 2S) words.  Yet the whole pipeline runs in
   4n + 1 I/Os with S = 4n + 4 words when intermediate values may be
   recomputed: only the four vectors are ever loaded.  Summing
   per-kernel bounds is therefore unsound under the Hong–Kung game —
   the observation that motivates the red-blue-white game, where
   decomposition is a theorem (Theorem 2).

   This example sweeps n, prints the separation, and on a small
   instance runs the RBW machinery on the true composite CDAG.

   Run with:  dune exec examples/composite_pipeline.exe *)

let () =
  Dmc_util.Table.print (Dmc_analysis.Sec3.table ());
  print_newline ();

  (* A concrete composite CDAG at n = 4 under the no-recomputation
     model: decomposition is now sound, and the certified bound sits
     under a measured execution. *)
  let n = 4 in
  let c = Dmc_gen.Linalg.composite n in
  let s = (4 * n) + 4 in
  Printf.printf "composite CDAG at n = %d: %d vertices, %d edges, S = %d\n" n
    (Dmc_cdag.Cdag.n_vertices c.graph)
    (Dmc_cdag.Cdag.n_edges c.graph)
    s;
  let lb = Dmc_core.Wavefront.lower_bound c.graph ~s in
  let ub = Dmc_core.Strategy.io c.graph ~s in
  Printf.printf "certified RBW lower bound: %d;  measured Belady execution: %d\n" lb ub;

  (* Theorem 2 in action: split the pipeline into its four stages and
     add the per-stage bounds — sound under RBW. *)
  let g = c.graph in
  let color =
    Array.init (Dmc_cdag.Cdag.n_vertices g) (fun v ->
        if Array.exists (( = ) v) c.a_vertices then 0
        else if Array.exists (( = ) v) c.b_vertices then 1
        else if v = c.sum_vertex then 3
        else if Dmc_cdag.Cdag.is_input g v then 0
        else 2)
  in
  let stage_bound part = Dmc_core.Wavefront.lower_bound part ~s in
  let summed = Dmc_core.Decompose.sum_disjoint g ~color ~bound:stage_bound in
  Printf.printf
    "Theorem-2 stage-wise sum of RBW bounds: %d (sound: %d <= measured %d)\n"
    summed summed ub;

  Printf.printf
    "\nWith recomputation allowed the same pipeline needs only %d I/Os —\n\
     the RBW model gives up that trick to make decomposition sound.\n"
    (int_of_float (Dmc_core.Analytic.composite_io_upper ~n))
