(* dmc — data-movement complexity toolkit.

   Subcommands:
     dmc gen <family> ...       emit a CDAG in the text format (or DOT)
     dmc bounds ...             run every bound engine on a CDAG
     dmc game ...               play a scheduling strategy and validate it
     dmc machines               print the Table-1 machine list
     dmc experiment [name ...]  run the paper's evaluation experiments *)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* Run a command body, turning expected exceptions into clean error
   messages and a non-zero exit. *)
let guarded f =
  try f () with
  | Failure msg | Invalid_argument msg ->
      Format.eprintf "dmc: %s@." msg;
      exit 1
  | Dmc_core.Optimal.Too_large msg ->
      Format.eprintf "dmc: %s@." msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* Graceful shutdown.  The long-running drivers install these: the
   first SIGINT/SIGTERM raises a flag checked between units (and
   polled by the worker-pool supervisor), so the run stops
   dispatching, reaps its workers, keeps its last checkpoint and
   exits with a distinct code; a second signal exits immediately. *)

let interrupted : int option ref = ref None

let interrupt_exit_code () =
  match !interrupted with
  | Some s when s = Sys.sigterm -> 143
  | _ -> 130

let install_interrupt_handlers () =
  let handle s =
    Sys.Signal_handle
      (fun _ ->
        match !interrupted with
        | Some _ -> exit (if s = Sys.sigterm then 143 else 130)
        | None -> interrupted := Some s)
  in
  Sys.set_signal Sys.sigint (handle Sys.sigint);
  Sys.set_signal Sys.sigterm (handle Sys.sigterm)

(* ------------------------------------------------------------------ *)
(* Worker-pool plumbing shared by bounds/experiment.                  *)

let parse_faults = function
  | None -> Dmc_runtime.Fault.of_env ()
  | Some spec -> (
      match Dmc_runtime.Fault.parse spec with
      | Ok faults -> Dmc_runtime.Fault.of_env () @ faults
      | Error msg -> failwith msg)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Number of supervised worker processes.  With N > 1 each unit \
               (engine ladder for $(b,bounds), experiment for \
               $(b,experiment)) runs in its own forked child under a hard \
               deadline; results are committed in submission order, so the \
               output is byte-identical to a sequential run.")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Hard per-attempt wall-clock deadline for each worker: the \
               supervisor SIGKILLs an attempt that overruns (no reliance on \
               cooperative budget polling) and degrades or retries it.")

let retries_arg =
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
         ~doc:"Extra attempts for a worker that timed out, crashed or broke \
               the result protocol (exponential backoff with deterministic \
               jitter).  Deterministic engine failures are never retried.")

let fault_arg =
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection in the workers, for testing the \
               supervision paths: comma-separated kind:job[:attempts] \
               clauses with kind one of hang, abort, garbage and job the \
               1-based submission index (e.g. 'hang:3,abort:1:1').  Also \
               read from \\$DMC_FAULT.")

(* ------------------------------------------------------------------ *)
(* Shared CDAG source: either a named generator or a file.            *)

let generator_doc =
  "Named generator: chain:N, tree:N, diamond:R,C, fft:K, bitonic:K, pyramid:H, \
   binomial:K, matmul:N, lu:N, cholesky:N, outer:N, dot:N, composite:N, jacobi1d:N,T, \
   jacobi2d:N,T, jacobi3d:N,T, spmv:N,D, thomas:N, multigrid:N,L,C, cg:N,D,T, \
   gmres:N,D,M, layered:SEED,L,W"

let parse_ints s = List.map int_of_string (String.split_on_char ',' s)

let build_generator name args =
  match (name, args) with
  | "chain", [ n ] -> Dmc_gen.Shapes.chain n
  | "tree", [ n ] -> Dmc_gen.Shapes.reduction_tree n
  | "diamond", [ r; c ] -> Dmc_gen.Shapes.diamond ~rows:r ~cols:c
  | "fft", [ k ] -> Dmc_gen.Fft.butterfly k
  | "bitonic", [ k ] -> Dmc_gen.Fft.bitonic_sort k
  | "pyramid", [ h ] -> Dmc_gen.Shapes.pyramid h
  | "binomial", [ k ] -> Dmc_gen.Shapes.binomial k
  | "matmul", [ n ] -> Dmc_gen.Linalg.matmul n
  | "lu", [ n ] -> (Dmc_gen.Linalg.lu_factor n).lu_graph
  | "cholesky", [ n ] -> Dmc_gen.Linalg.cholesky n
  | "outer", [ n ] -> Dmc_gen.Linalg.outer_product n
  | "dot", [ n ] -> Dmc_gen.Linalg.dot_product n
  | "composite", [ n ] -> (Dmc_gen.Linalg.composite n).graph
  | "jacobi1d", [ n; t ] -> (Dmc_gen.Stencil.jacobi_1d ~n ~steps:t).graph
  | "jacobi2d", [ n; t ] -> (Dmc_gen.Stencil.jacobi_2d ~n ~steps:t ()).graph
  | "jacobi3d", [ n; t ] -> (Dmc_gen.Stencil.jacobi_3d ~n ~steps:t).graph
  | "spmv", [ n; d ] -> Dmc_gen.Solver.spmv ~dims:(List.init d (fun _ -> n))
  | "thomas", [ n ] -> (Dmc_gen.Solver.thomas ~n).th_graph
  | "multigrid", [ n; levels; cycles ] ->
      (Dmc_gen.Multigrid.v_cycle ~dims:[ n ] ~levels ~cycles ()).graph
  | "cg", [ n; d; t ] ->
      (Dmc_gen.Solver.cg ~dims:(List.init d (fun _ -> n)) ~iters:t).graph
  | "gmres", [ n; d; m ] ->
      (Dmc_gen.Solver.gmres ~dims:(List.init d (fun _ -> n)) ~iters:m).graph
  | "layered", [ seed; l; w ] ->
      Dmc_gen.Random_dag.layered (Dmc_util.Rng.create seed) ~layers:l ~width:w
        ~edge_prob:0.4
  | _ -> failwith ("unknown generator or bad arity: " ^ name)

let parse_spec spec =
  match String.index_opt spec ':' with
  | None -> build_generator spec []
  | Some i ->
      let name = String.sub spec 0 i in
      let args = parse_ints (String.sub spec (i + 1) (String.length spec - i - 1)) in
      build_generator name args

let load_cdag ~spec ~file =
  match (spec, file) with
  | Some spec, None -> parse_spec spec
  | None, Some path -> (
      match Dmc_cdag.Serialize.of_file path with
      | Ok g -> g
      | Error msg -> failwith ("cannot parse " ^ path ^ ": " ^ msg))
  | _ -> failwith "give exactly one of --gen or --file"

let spec_arg =
  Arg.(value & opt (some string) None
       & info [ "g"; "gen"; "spec" ] ~docv:"SPEC" ~doc:generator_doc)

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH"
         ~doc:"Read the CDAG from a text-format file (see Dmc_cdag.Serialize).")

let s_arg =
  Arg.(value & opt int 8 & info [ "s" ] ~docv:"S" ~doc:"Fast-memory capacity in words.")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget. For $(b,bounds): per engine ladder rung, with \
               graceful degradation down the fallback ladder instead of failure. \
               For $(b,experiment): overall; the run checkpoints and stops \
               cleanly between experiments when it expires.")

let node_budget_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"NODES"
         ~doc:"Search-node budget per engine ladder rung (each engine ticks the \
               guard once per search step).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON timeline of the run to $(docv) \
               (loadable in chrome://tracing or Perfetto). For $(b,bounds) this \
               implies the supervised pool path, so per-worker spans are merged \
               into the trace under their job's lane.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print the instrumentation profile (work counters, histogram \
               quantiles, GC/memory gauges, then span timings) after the run. \
               The counter and histogram sections count algorithmic work, \
               never time, so they are byte-identical across $(b,--jobs) \
               widths and repeat runs; gauges and spans are not.")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Render a live progress line on stderr while the supervised \
               pool runs: jobs done/running/retrying, the running workers' \
               current phase (from heartbeats), an ETA and resident memory. \
               Implies the pool path; stdout is untouched, so output and \
               checkpoints stay byte-identical with it on or off.")

let setup_obs ~trace ~profile =
  if trace <> None || profile then Dmc_obs.Registry.set_enabled true

let emit_obs ~trace ~profile =
  (match trace with
  | Some path -> Dmc_obs.Export.write_chrome_trace path
  | None -> ());
  if profile then begin
    print_string (Dmc_obs.Export.profile ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* dmc gen                                                            *)

let gen_cmd =
  let run spec file output dot =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let text = if dot then Dmc_cdag.Dot.to_string g else Dmc_cdag.Serialize.to_string g in
    (match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text));
    Format.printf "%a@." Dmc_cdag.Cdag.pp_stats g
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write to a file instead of stdout.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of the text format.") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a workload CDAG")
    Term.(const run $ spec_arg $ file_arg $ output $ dot)

(* ------------------------------------------------------------------ *)
(* dmc bounds                                                         *)

(* One pool job per governed engine: the ladder runs in a forked
   worker ([Engine_job] reconstructs it from name + serialized graph),
   and a worker lost to a crash, hard kill or protocol break degrades
   supervisor-side to the engine's terminal rung, with the pool
   verdict recorded as the failed "worker" rung. *)
let bounds_parallel ~jobs ~job_timeout ~retries ~faults ~progress ?timeout
    ?node_budget g ~s =
  let module Pool = Dmc_runtime.Pool in
  let engine_jobs =
    List.map
      (fun (name, _) ->
        Dmc_core.Engine_job.make ?timeout ?node_budget g ~s ~engine:name)
      Dmc_core.Bounds.governed_engines
  in
  let cfg =
    {
      Pool.default with
      jobs;
      timeout = job_timeout;
      max_retries = retries;
      faults;
      should_stop = (fun () -> !interrupted <> None);
      on_progress =
        (if progress then Some Dmc_runtime.Progress.draw else None);
    }
  in
  let outcomes =
    Pool.run cfg ~worker:(fun _ job -> Dmc_core.Engine_job.run job) engine_jobs
  in
  if progress then Dmc_runtime.Progress.clear ();
  let rows =
    List.mapi
      (fun i (name, kind) ->
        let o = outcomes.(i) in
        let degraded failure =
          Dmc_core.Bounds.degraded_row g ~s ~engine:name ~kind ~failure
            ~elapsed:o.Pool.elapsed
        in
        match o.Pool.verdict with
        | Pool.Done payload -> (
            match Dmc_core.Bounds.row_of_json payload with
            | Some row -> row
            | None ->
                degraded
                  (Dmc_util.Budget.Internal "worker returned an unparseable row"))
        | v -> degraded (Option.get (Pool.verdict_failure v)))
      Dmc_core.Bounds.governed_engines
  in
  Dmc_core.Bounds.assemble_governed g ~s rows

let bounds_cmd =
  let run spec file s optimal certify json timeout node_budget governed jobs
      job_timeout retries fault trace profile progress =
    setup_logs ();
    guarded @@ fun () ->
    install_interrupt_handlers ();
    setup_obs ~trace ~profile;
    let faults = parse_faults fault in
    let g = load_cdag ~spec ~file in
    (* A resource budget switches to the governed path: every engine
       runs under its own guard and degrades down a fallback ladder
       instead of failing, so the command always exits 0 with a status
       per engine.  Tracing/profiling/progress also routes through the
       pool: the supervised path is the instrumented one, and running
       it even at --jobs 1 keeps the counter profile identical across
       widths. *)
    if jobs > 1 || faults <> [] || job_timeout <> None || trace <> None
       || profile || progress
    then begin
      let gr =
        bounds_parallel ~jobs ~job_timeout ~retries ~faults ~progress ?timeout
          ?node_budget g ~s
      in
      (if json then
         print_endline
           (Dmc_util.Json.to_string (Dmc_core.Bounds.governed_to_json gr))
       else Format.printf "%a" Dmc_core.Bounds.pp_governed gr);
      if !interrupted <> None then begin
        emit_obs ~trace ~profile;
        exit (interrupt_exit_code ())
      end
    end
    else if governed || timeout <> None || node_budget <> None then begin
      let gr =
        Dmc_core.Bounds.analyze_governed ?timeout ?node_budget g ~s
      in
      if json then
        print_endline
          (Dmc_util.Json.to_string (Dmc_core.Bounds.governed_to_json gr))
      else Format.printf "%a" Dmc_core.Bounds.pp_governed gr
    end
    else begin
      let report =
        Dmc_core.Bounds.analyze ~optimal_limit:(if optimal then 20 else 0) g ~s
      in
      if json then
        print_endline (Dmc_util.Json.to_string (Dmc_core.Bounds.report_to_json report))
      else Format.printf "%a@." Dmc_core.Bounds.pp_report report
    end;
    if certify then
      Format.printf "wavefront certificate verifies: %b@."
        (Dmc_core.Bounds.certify_wavefront g ~s);
    emit_obs ~trace ~profile
  in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Also run the exhaustive optimal-game search (<= 20 vertices).")
  in
  let certify =
    Arg.(value & flag & info [ "certify" ]
           ~doc:"Extract and verify a Menger witness for the wavefront bound.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.") in
  let governed =
    Arg.(value & flag & info [ "governed" ]
           ~doc:"Use the governed engine ladder even without a budget \
                 (every engine is attempted, including the exhaustive ones).")
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Lower/upper-bound analysis of a CDAG")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ optimal $ certify $ json
          $ timeout_arg $ node_budget_arg $ governed $ jobs_arg
          $ job_timeout_arg $ retries_arg $ fault_arg $ trace_arg
          $ profile_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* dmc game                                                           *)

let game_cmd =
  let run spec file s policy trace =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let policy =
      match policy with
      | "lru" -> Dmc_core.Strategy.Lru
      | "belady" -> Dmc_core.Strategy.Belady
      | p -> failwith ("unknown policy: " ^ p)
    in
    let moves = Dmc_core.Strategy.schedule ~policy g ~s in
    (match Dmc_core.Rbw_game.run g ~s moves with
    | Ok stats ->
        Format.printf
          "valid RBW game: io=%d (loads=%d stores=%d), computes=%d, peak red=%d@."
          stats.io stats.loads stats.stores stats.computes stats.max_red;
        Format.printf "%a@." Dmc_core.Trace.pp_summary (Dmc_core.Trace.summarize moves);
        let phases = Dmc_core.Trace.phase_io ~s moves in
        Format.printf "Theorem-1 phases (<= S I/Os each): %d@." (List.length phases)
    | Error e -> Format.printf "INVALID at step %d: %s@." e.step e.reason);
    if trace then begin
      print_string (Dmc_core.Trace.render_timeline moves);
      print_string (Dmc_core.Trace.to_string ~limit:200 moves)
    end
  in
  let policy =
    Arg.(value & opt string "belady" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Eviction policy: belady or lru.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the move sequence.") in
  Cmd.v (Cmd.info "game" ~doc:"Play a scheduling strategy as a checked RBW pebble game")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ policy $ trace)

(* ------------------------------------------------------------------ *)
(* dmc replay                                                         *)

let replay_cmd =
  let run spec file s moves_path =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let text =
      let ic = open_in moves_path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Dmc_core.Trace.parse text with
    | Error msg -> failwith ("cannot parse moves: " ^ msg)
    | Ok moves -> (
        match Dmc_core.Rbw_game.run g ~s moves with
        | Ok stats ->
            Format.printf "VALID: io=%d (loads=%d stores=%d), computes=%d, peak red=%d@."
              stats.io stats.loads stats.stores stats.computes stats.max_red
        | Error e ->
            Format.printf "INVALID at step %d: %s@." e.step e.reason;
            exit 1)
  in
  let moves_path =
    Arg.(required & opt (some string) None & info [ "moves" ] ~docv:"PATH"
           ~doc:"File of moves, one per line (load/store/compute/delete N).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Validate an externally produced move sequence against the RBW rules")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ moves_path)

(* ------------------------------------------------------------------ *)
(* dmc hier                                                           *)

let hier_cmd =
  let run spec file s1 s2 =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let moves = Dmc_core.Strategy.hierarchical g ~s1 ~s2 in
    let hier = Dmc_core.Strategy.hierarchical_hierarchy ~s1 ~s2 in
    match Dmc_core.Prbw_game.run hier g moves with
    | Ok stats ->
        Format.printf
          "valid P-RBW game on 1 core, %d-word registers, %d-word cache:@." s1 s2;
        Format.printf "%a" Dmc_machine.Hierarchy.pp_tree hier;
        Format.printf "  registers<->cache: %d words@."
          (Dmc_core.Prbw_game.boundary_traffic stats ~level:2);
        Format.printf "  cache<->memory:    %d words@."
          (Dmc_core.Prbw_game.boundary_traffic stats ~level:3);
        Format.printf "  inputs read: %d, outputs written: %d@." stats.loads stats.stores;
        Format.printf "  sequential lower bounds: LB(S=%d) = %d, LB(S=%d) = %d@." s1
          (Dmc_core.Wavefront.lower_bound g ~s:s1)
          s2
          (Dmc_core.Wavefront.lower_bound g ~s:s2)
    | Error e -> Format.printf "INVALID at step %d: %s@." e.step e.reason
  in
  let s1 =
    Arg.(value & opt int 8 & info [ "s1" ] ~docv:"S1" ~doc:"Register-file capacity in words.")
  in
  let s2 =
    Arg.(value & opt int 64 & info [ "s2" ] ~docv:"S2" ~doc:"Cache capacity in words.")
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:"Run a CDAG through the three-level hierarchy and report per-boundary traffic")
    Term.(const run $ spec_arg $ file_arg $ s1 $ s2)

(* ------------------------------------------------------------------ *)
(* dmc witness                                                        *)

let witness_cmd =
  let run spec file vertex =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let v =
      match vertex with
      | Some v -> v
      | None ->
          (* pick the vertex with the largest wavefront *)
          let best = ref 0 and best_w = ref (-1) in
          Dmc_cdag.Cdag.iter_vertices g (fun x ->
              let w = Dmc_core.Wavefront.min_wavefront g x in
              if w > !best_w then begin
                best_w := w;
                best := x
              end);
          !best
    in
    let w = Dmc_core.Wavefront.witness g v in
    Format.printf "vertex %d (%s): min wavefront = %d@." v
      (Dmc_cdag.Cdag.label g v)
      (max 1 (List.length w.Dmc_core.Wavefront.paths));
    Format.printf "witness verifies: %b@." (Dmc_core.Wavefront.verify_witness g w);
    List.iteri
      (fun i path ->
        Format.printf "  path %d: %s@." i
          (String.concat " -> " (List.map string_of_int path)))
      w.Dmc_core.Wavefront.paths
  in
  let vertex =
    Arg.(value & opt (some int) None & info [ "vertex" ] ~docv:"V"
           ~doc:"Vertex to certify (default: the wavefront maximizer).")
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Extract and verify a Menger path witness for a wavefront bound")
    Term.(const run $ spec_arg $ file_arg $ vertex)

(* ------------------------------------------------------------------ *)
(* dmc horizontal                                                     *)

let horizontal_cmd =
  let run spec file procs =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let cost, assign = Dmc_core.Optimal.min_balanced_horizontal g ~procs in
    Format.printf
      "balanced-assignment horizontal optimum on %d nodes: %d words@." procs cost;
    let loads = Array.make procs 0 in
    Dmc_cdag.Cdag.iter_vertices g (fun v ->
        if not (Dmc_cdag.Cdag.is_input g v) then
          loads.(assign.(v)) <- loads.(assign.(v)) + 1);
    Array.iteri (fun p w -> Format.printf "  node %d fires %d vertices@." p w) loads
  in
  let procs =
    Arg.(value & opt int 2 & info [ "procs" ] ~docv:"P" ~doc:"Number of nodes.")
  in
  Cmd.v
    (Cmd.info "horizontal"
       ~doc:"Exact minimum inter-node traffic over balanced work assignments (small CDAGs)")
    Term.(const run $ spec_arg $ file_arg $ procs)

(* ------------------------------------------------------------------ *)
(* dmc formula                                                        *)

let formula_cmd =
  let run name bindings raw =
    setup_logs ();
    guarded @@ fun () ->
    let env =
      List.map
        (fun b ->
          match String.index_opt b '=' with
          | Some i ->
              let key = String.sub b 0 i in
              let v = String.sub b (i + 1) (String.length b - i - 1) in
              (key, float_of_string v)
          | None -> failwith ("binding must look like name=value: " ^ b))
        bindings
    in
    let show label e =
      let e = Dmc_symbolic.Expr.simplify e in
      Format.printf "%s = %s@." label (Dmc_symbolic.Expr.to_string e);
      let free = Dmc_symbolic.Expr.vars e in
      let missing = List.filter (fun v -> not (List.mem_assoc v env)) free in
      if missing = [] then
        Format.printf "  value: %g@." (Dmc_symbolic.Expr.eval ~env e)
      else
        Format.printf "  free variables: %s@." (String.concat ", " missing)
    in
    match (name, raw) with
    | Some name, None -> (
        match Dmc_symbolic.Formulas.find name with
        | Some e -> show name e
        | None ->
            failwith
              (Printf.sprintf "unknown formula %s (known: %s)" name
                 (String.concat ", " (List.map fst Dmc_symbolic.Formulas.all))))
    | None, Some text -> (
        match Dmc_symbolic.Expr.parse text with
        | Ok e -> show "expr" e
        | Error msg -> failwith ("parse error: " ^ msg))
    | None, None ->
        List.iter
          (fun (n, e) ->
            Format.printf "%-24s %s@." n
              (Dmc_symbolic.Expr.to_string (Dmc_symbolic.Expr.simplify e)))
          Dmc_symbolic.Formulas.all
    | Some _, Some _ -> failwith "give either a formula name or --expr, not both"
  in
  let fname =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Formula name (omit to list all).")
  in
  let bindings =
    Arg.(value & opt_all string [] & info [ "set" ] ~docv:"VAR=VALUE"
           ~doc:"Bind a variable for evaluation (repeatable).")
  in
  let raw =
    Arg.(value & opt (some string) None & info [ "expr" ] ~docv:"EXPR"
           ~doc:"Evaluate an ad-hoc expression instead of a named formula.")
  in
  Cmd.v (Cmd.info "formula" ~doc:"Print and evaluate the paper's bounds symbolically")
    Term.(const run $ fname $ bindings $ raw)

(* ------------------------------------------------------------------ *)
(* dmc machines                                                       *)

let machines_cmd =
  let run () =
    setup_logs ();
    guarded @@ fun () ->
    Dmc_util.Table.print (Dmc_analysis.Table1.table ())
  in
  Cmd.v (Cmd.info "machines" ~doc:"Print the Table-1 machine specifications")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* dmc bench-diff                                                     *)

let bench_diff_cmd =
  let run old fresh max_regress work_only =
    setup_logs ();
    guarded @@ fun () ->
    let load path =
      match Dmc_util.Checkpoint.load path with
      | Ok json -> json
      | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
    in
    let report =
      Dmc_obs.Baseline.diff ~max_regress ~work_only ~old:(load old)
        ~fresh:(load fresh) ()
    in
    print_string (Dmc_obs.Baseline.render report);
    if report.Dmc_obs.Baseline.regressed > 0 then exit 1
  in
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
           ~doc:"Committed baseline JSON (from bench --json).")
  in
  let fresh_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"Fresh baseline JSON to compare against OLD.")
  in
  let max_regress_arg =
    Arg.(value & opt float 10.0 & info [ "max-regress" ] ~docv:"PCT"
           ~doc:"Relative tolerance in percent: a metric regresses only \
                 when NEW exceeds OLD by more than PCT.")
  in
  let work_only_arg =
    Arg.(value & flag & info [ "work-only" ]
           ~doc:"Compare only the machine-independent work metrics \
                 (counter.* and hist.*), ignoring wall-clock and memory.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench baselines and fail on regressions")
    Term.(const run $ old_arg $ fresh_arg $ max_regress_arg $ work_only_arg)

(* ------------------------------------------------------------------ *)
(* dmc experiment                                                     *)

(* Run [f] with stdout redirected into a temp file; return its result
   and the captured text.  Used so each experiment's output can be
   stored in the checkpoint and replayed verbatim on resume — the
   resumed run's stdout is byte-identical to an uninterrupted one. *)
let capture_stdout f =
  let flush_all_out () =
    Format.pp_print_flush Format.std_formatter ();
    flush stdout
  in
  let tmp = Filename.temp_file "dmc-experiment" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush_all_out ();
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  let result = try Ok (f ()) with e -> Error e in
  flush_all_out ();
  Unix.dup2 saved Unix.stdout;
  Unix.close saved;
  Unix.close fd;
  let text =
    let ic = open_in_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  match result with
  | Ok v -> (v, text)
  | Error e ->
      print_string text;
      raise e

let experiment_checkpoint ~selected ~done_rev =
  let module J = Dmc_util.Json in
  J.Obj
    [
      ("kind", J.String "dmc-experiment");
      ("names", J.List (List.map (fun (n, _) -> J.String n) selected));
      ( "completed",
        J.List
          (List.rev_map
             (fun (name, ok, output) ->
               J.Obj
                 [
                   ("name", J.String name);
                   ("ok", J.Bool ok);
                   ("output", J.String output);
                 ])
             done_rev) );
    ]

let experiment_restore path ~selected =
  let module J = Dmc_util.Json in
  match Dmc_util.Checkpoint.load path with
  | Error msg -> failwith (Printf.sprintf "cannot resume from %s: %s" path msg)
  | Ok ckpt ->
      (match Option.bind (J.mem ckpt "kind") J.as_string with
      | Some "dmc-experiment" -> ()
      | _ -> failwith (path ^ ": not a dmc-experiment checkpoint"));
      let stored_names =
        match Option.bind (J.mem ckpt "names") J.as_list with
        | Some l -> List.filter_map J.as_string l
        | None -> []
      in
      if stored_names <> List.map fst selected then
        failwith
          (Printf.sprintf
             "%s: checkpoint is for experiments [%s], this run selects [%s]"
             path
             (String.concat " " stored_names)
             (String.concat " " (List.map fst selected)));
      let completed =
        match Option.bind (J.mem ckpt "completed") J.as_list with
        | Some l ->
            List.filter_map
              (fun entry ->
                match
                  ( Option.bind (J.mem entry "name") J.as_string,
                    Option.bind (J.mem entry "ok") J.as_bool,
                    Option.bind (J.mem entry "output") J.as_string )
                with
                | Some name, Some ok, Some output -> Some (name, ok, output)
                | _ -> None)
              l
        | None -> []
      in
      (* The checkpoint must be a prefix of the selection, in order. *)
      let rec check_prefix done_ sel =
        match (done_, sel) with
        | [], _ -> ()
        | (name, _, _) :: dt, (sn, _) :: st when name = sn -> check_prefix dt st
        | (name, _, _) :: _, _ ->
            failwith
              (Printf.sprintf "%s: completed experiment %s out of order" path name)
      in
      check_prefix completed selected;
      completed

let experiment_cmd =
  let run names timeout checkpoint resume jobs job_timeout retries fault trace
      profile progress =
    setup_logs ();
    guarded @@ fun () ->
    install_interrupt_handlers ();
    setup_obs ~trace ~profile;
    let faults = parse_faults fault in
    let registry = Dmc_analysis.Report.names in
    let selected =
      match names with
      | [] -> registry
      | names ->
          List.map
            (fun n ->
              match List.assoc_opt n registry with
              | Some f -> (n, f)
              | None ->
                  failwith
                    (Printf.sprintf "unknown experiment %s (known: %s)" n
                       (String.concat ", " (List.map fst registry))))
            names
    in
    let ckpt_path =
      match (checkpoint, resume) with
      | Some p, _ -> Some p
      | None, Some p -> Some p
      | None, None -> None
    in
    let completed =
      match resume with
      | None -> []
      | Some path -> experiment_restore path ~selected
    in
    if completed <> [] then
      Format.eprintf "dmc: resuming, %d experiment(s) already done@."
        (List.length completed);
    (* Replay the stored outputs so the full stdout stream matches an
       uninterrupted run byte for byte. *)
    List.iter (fun (_, _, output) -> print_string output) completed;
    flush stdout;
    let remaining = List.filteri (fun i _ -> i >= List.length completed) selected in
    let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
    let done_rev = ref (List.rev completed) in
    (* Commit one finished unit: stream its output, then checkpoint.
       Both execution paths funnel through here in selection order, so
       stdout and the checkpoint are byte-identical whichever path —
       and however many workers — produced the results. *)
    let commit_unit name ok output =
      print_string output;
      flush stdout;
      done_rev := (name, ok, output) :: !done_rev;
      Option.iter
        (fun p ->
          Dmc_util.Checkpoint.write p
            (experiment_checkpoint ~selected ~done_rev:!done_rev))
        ckpt_path
    in
    let resume_hint () =
      (* Only point at a checkpoint that actually exists: a run
         stopped before its first committed unit never wrote one. *)
      match ckpt_path with
      | Some p when Sys.file_exists p ->
          Printf.sprintf "; resume with --resume %s" p
      | Some _ | None -> ""
    in
    let finish ~stopped_early =
      emit_obs ~trace ~profile;
      (match !interrupted with
      | Some _ ->
          Format.eprintf "dmc: interrupted after %d/%d experiments%s@."
            (List.length !done_rev) (List.length selected) (resume_hint ());
          exit (interrupt_exit_code ())
      | None -> ());
      if stopped_early then begin
        Format.eprintf "dmc: timeout reached after %d/%d experiments%s@."
          (List.length !done_rev) (List.length selected) (resume_hint ());
        exit 0
      end;
      let ok = List.for_all (fun (_, ok, _) -> ok) !done_rev in
      Printf.printf "\nOVERALL: %s\n"
        (if ok then "ALL CHECKS PASSED" else "SOME CHECKS FAILED");
      if not ok then exit 1
    in
    if jobs > 1 || faults <> [] || job_timeout <> None || trace <> None
       || profile || progress
    then begin
      (* Supervised path: one forked worker per experiment.  A worker
         lost to a crash, hard kill or protocol break degrades to an
         in-process rerun of the same unit (the fault hook only fires
         in children, and a real crash is isolated there), so every
         unit still produces a row.  Tracing/profiling/progress imply
         this path even at --jobs 1, so the pool.* counter set — and
         hence the profile — is identical across widths. *)
      let module Pool = Dmc_runtime.Pool in
      let module J = Dmc_util.Json in
      let cfg =
        {
          Pool.default with
          jobs;
          timeout = job_timeout;
          max_retries = retries;
          faults;
          should_stop = (fun () -> !interrupted <> None);
          accept_more =
            (fun () ->
              match deadline with
              | None -> true
              | Some d -> Unix.gettimeofday () <= d);
          on_progress =
            (if progress then Some Dmc_runtime.Progress.draw else None);
        }
      in
      let arr = Array.of_list remaining in
      let worker _ (_, f) =
        let ok, output = capture_stdout f in
        Ok (J.Obj [ ("ok", J.Bool ok); ("output", J.String output) ])
      in
      let on_result i outcome =
        let name, f = arr.(i) in
        let degrade verdict =
          Format.eprintf
            "dmc: experiment %s: worker %s; degrading to an in-process run@."
            name
            (Pool.verdict_to_string verdict);
          match capture_stdout f with
          | ok, output -> (ok, output)
          | exception e ->
              Format.eprintf
                "dmc: experiment %s: in-process fallback failed too: %s@." name
                (Printexc.to_string e);
              (false, "")
        in
        let ok, output =
          match outcome.Pool.verdict with
          | Pool.Done payload -> (
              match
                ( Option.bind (J.mem payload "ok") J.as_bool,
                  Option.bind (J.mem payload "output") J.as_string )
              with
              | Some ok, Some output -> (ok, output)
              | _ -> degrade (Pool.Worker_protocol_error "bad result payload"))
          | v -> degrade v
        in
        commit_unit name ok output
      in
      let outcomes = Pool.run cfg ~worker ~on_result remaining in
      if progress then Dmc_runtime.Progress.clear ();
      let cancelled =
        Array.exists
          (fun o ->
            match o.Pool.verdict with
            | Pool.Engine_failure Dmc_util.Budget.Cancelled -> true
            | _ -> false)
          outcomes
      in
      finish ~stopped_early:(cancelled && !interrupted = None)
    end
    else begin
      let timed_out = ref false in
      List.iter
        (fun (name, f) ->
          if (not !timed_out) && !interrupted = None then
            match deadline with
            | Some d when Unix.gettimeofday () > d -> timed_out := true
            | _ ->
                let ok, output = capture_stdout f in
                commit_unit name ok output)
        remaining;
      finish ~stopped_early:!timed_out
    end
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME"
           ~doc:"Experiments to run (default: all). Known: table1 sec3 cg gmres jacobi validate sim.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Write a JSON checkpoint after each experiment, so a killed run \
                 can continue with $(b,--resume).")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"PATH"
           ~doc:"Resume from a checkpoint: completed experiments are skipped and \
                 their stored output replayed, so the final stdout is \
                 byte-identical to an uninterrupted run.  Also keeps \
                 checkpointing to the same file.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run the paper's evaluation experiments")
    Term.(const run $ names $ timeout_arg $ checkpoint $ resume $ jobs_arg
          $ job_timeout_arg $ retries_arg $ fault_arg $ trace_arg
          $ profile_arg $ progress_arg)

let () =
  let info =
    Cmd.info "dmc" ~version:"1.0.0"
      ~doc:"Data-movement complexity of computational DAGs (Elango et al., SPAA 2014)"
  in
  exit (Cmd.eval (Cmd.group info [ gen_cmd; bounds_cmd; game_cmd; replay_cmd; hier_cmd; horizontal_cmd; witness_cmd; formula_cmd; machines_cmd; bench_diff_cmd; experiment_cmd ]))
