(* dmc — data-movement complexity toolkit.

   Subcommands:
     dmc gen <family> ...       emit a CDAG in the text format (or DOT)
     dmc bounds ...             run every bound engine on a CDAG
     dmc game ...               play a scheduling strategy and validate it
     dmc machines               print the Table-1 machine list
     dmc experiment [name ...]  run the paper's evaluation experiments *)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* Run a command body, turning expected exceptions into clean error
   messages and a non-zero exit. *)
let guarded f =
  try f () with
  | Failure msg | Invalid_argument msg ->
      Format.eprintf "dmc: %s@." msg;
      exit 1
  | Dmc_core.Optimal.Too_large msg ->
      Format.eprintf "dmc: %s@." msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* Graceful shutdown.  The long-running drivers install these: the
   first SIGINT/SIGTERM raises a flag checked between units (and
   polled by the worker-pool supervisor), so the run stops
   dispatching, reaps its workers, keeps its last checkpoint and
   exits with a distinct code; a second signal exits immediately. *)

let interrupted : int option ref = ref None

let interrupt_exit_code () =
  match !interrupted with
  | Some s when s = Sys.sigterm -> 143
  | _ -> 130

let install_interrupt_handlers () =
  let handle s =
    Sys.Signal_handle
      (fun _ ->
        match !interrupted with
        | Some _ -> exit (if s = Sys.sigterm then 143 else 130)
        | None -> interrupted := Some s)
  in
  Sys.set_signal Sys.sigint (handle Sys.sigint);
  Sys.set_signal Sys.sigterm (handle Sys.sigterm)

(* ------------------------------------------------------------------ *)
(* Worker-pool plumbing shared by bounds/experiment.                  *)

let parse_faults = function
  | None -> Dmc_runtime.Fault.of_env ()
  | Some spec -> (
      match Dmc_runtime.Fault.parse spec with
      | Ok faults -> Dmc_runtime.Fault.of_env () @ faults
      | Error msg -> failwith msg)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Number of supervised worker processes.  With N > 1 each unit \
               (engine ladder for $(b,bounds), experiment for \
               $(b,experiment)) runs in its own forked child under a hard \
               deadline; results are committed in submission order, so the \
               output is byte-identical to a sequential run.")

let job_timeout_arg =
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS"
         ~doc:"Hard per-attempt wall-clock deadline for each worker: the \
               supervisor SIGKILLs an attempt that overruns (no reliance on \
               cooperative budget polling) and degrades or retries it.")

let retries_arg =
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
         ~doc:"Extra attempts for a worker that timed out, crashed or broke \
               the result protocol (exponential backoff with deterministic \
               jitter).  Deterministic engine failures are never retried.")

let fault_arg =
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection in the workers, for testing the \
               supervision paths: comma-separated kind:job[:attempts] \
               clauses with kind one of hang, abort, garbage and job the \
               1-based submission index (e.g. 'hang:3,abort:1:1').  Also \
               read from \\$DMC_FAULT.")

(* ------------------------------------------------------------------ *)
(* Shared CDAG source: either a named generator or a file.            *)

let generator_doc = Dmc_gen.Workload.spec_doc ()

let parse_spec = Dmc_gen.Workload.parse_exn

let load_cdag ~spec ~file =
  match (spec, file) with
  | Some spec, None -> parse_spec spec
  | None, Some path -> (
      match Dmc_cdag.Serialize.of_file path with
      | Ok g -> g
      | Error msg -> failwith ("cannot parse " ^ path ^ ": " ^ msg))
  | _ -> failwith "give exactly one of --gen or --file"

let spec_arg =
  Arg.(value & opt (some string) None
       & info [ "g"; "gen"; "spec" ] ~docv:"SPEC" ~doc:generator_doc)

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH"
         ~doc:"Read the CDAG from a text-format file (see Dmc_cdag.Serialize).")

let s_arg =
  Arg.(value & opt int 8
       & info [ "s"; "S" ] ~docv:"S" ~doc:"Fast-memory capacity in words.")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget. For $(b,bounds): per engine ladder rung, with \
               graceful degradation down the fallback ladder instead of failure. \
               For $(b,experiment): overall; the run checkpoints and stops \
               cleanly between experiments when it expires.")

let node_budget_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"NODES"
         ~doc:"Search-node budget per engine ladder rung (each engine ticks the \
               guard once per search step).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON timeline of the run to $(docv) \
               (loadable in chrome://tracing or Perfetto). For $(b,bounds) this \
               implies the supervised pool path, so per-worker spans are merged \
               into the trace under their job's lane.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print the instrumentation profile (work counters, histogram \
               quantiles, GC/memory gauges, then span timings) after the run. \
               The counter and histogram sections count algorithmic work, \
               never time, so they are byte-identical across $(b,--jobs) \
               widths and repeat runs; gauges and spans are not.")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Render a live progress line on stderr while the supervised \
               pool runs: jobs done/running/retrying, the running workers' \
               current phase (from heartbeats), an ETA and resident memory. \
               Implies the pool path; stdout is untouched, so output and \
               checkpoints stay byte-identical with it on or off.")

let setup_obs ~trace ~profile =
  if trace <> None || profile then Dmc_obs.Registry.set_enabled true

let emit_obs ~trace ~profile =
  (match trace with
  | Some path -> Dmc_obs.Export.write_chrome_trace path
  | None -> ());
  if profile then begin
    print_string (Dmc_obs.Export.profile ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* dmc gen                                                            *)

let gen_cmd =
  let run spec file output dot =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let text = if dot then Dmc_cdag.Dot.to_string g else Dmc_cdag.Serialize.to_string g in
    (match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text));
    Format.printf "%a@." Dmc_cdag.Cdag.pp_stats g
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write to a file instead of stdout.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of the text format.") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a workload CDAG")
    Term.(const run $ spec_arg $ file_arg $ output $ dot)

(* ------------------------------------------------------------------ *)
(* dmc bounds                                                         *)

(* One pool job per governed engine: the ladder runs in a forked
   worker ([Engine_job] reconstructs it from name + serialized graph),
   and a worker lost to a crash, hard kill or protocol break degrades
   supervisor-side to the engine's terminal rung, with the pool
   verdict recorded as the failed "worker" rung. *)
let bounds_parallel ~jobs ~job_timeout ~retries ~faults ~progress ?timeout
    ?node_budget g ~s =
  let module Pool = Dmc_runtime.Pool in
  let engine_jobs =
    List.map
      (fun (name, _) ->
        Dmc_core.Engine_job.make ?timeout ?node_budget g ~s ~engine:name)
      Dmc_core.Bounds.governed_engines
  in
  let cfg =
    {
      Pool.default with
      jobs;
      timeout = job_timeout;
      max_retries = retries;
      faults;
      should_stop = (fun () -> !interrupted <> None);
      on_progress =
        (if progress then Some Dmc_runtime.Progress.draw else None);
    }
  in
  let outcomes =
    Pool.run cfg ~worker:(fun _ job -> Dmc_core.Engine_job.run job) engine_jobs
  in
  if progress then Dmc_runtime.Progress.clear ();
  let rows =
    List.mapi
      (fun i (name, kind) ->
        let o = outcomes.(i) in
        let degraded failure =
          Dmc_core.Bounds.degraded_row g ~s ~engine:name ~kind ~failure
            ~elapsed:o.Pool.elapsed
        in
        match o.Pool.verdict with
        | Pool.Done payload -> (
            match Dmc_core.Bounds.row_of_json payload with
            | Some row -> row
            | None ->
                degraded
                  (Dmc_util.Budget.Internal "worker returned an unparseable row"))
        | v -> degraded (Option.get (Pool.verdict_failure v)))
      Dmc_core.Bounds.governed_engines
  in
  Dmc_core.Bounds.assemble_governed g ~s rows

(* Engine enumeration for --list-engines: the governed (sequential)
   family's one-liners live here; the multi-processor family carries
   its own doc strings in the registry. *)
let governed_engine_docs =
  [
    ("floor", "I/O floor: every input read + every non-input output written");
    ("wavefront", "min-cut wavefront bound (Lemma 2), exact then sampled");
    ("partition-h", "Lemma 1 with the exhaustive H(2S) partition count");
    ("partition-u", "Corollary 1 with the exhaustive U(2S) vertex count");
    ("span", "Savage S-span lower bound");
    ("optimal", "exhaustive optimal-game search (tiny graphs, exact)");
    ("belady", "Belady-policy schedule: a certified upper bound");
    ("lru", "LRU-policy schedule: a certified upper bound");
  ]

let print_engine_list () =
  let kind_str k = Dmc_core.Bounds.kind_to_string k in
  Format.printf "governed engines (sequential red-blue-white game):@.";
  List.iter
    (fun (name, kind) ->
      let doc =
        match List.assoc_opt name governed_engine_docs with
        | Some d -> d
        | None -> ""
      in
      Format.printf "  %-12s %-6s %s@." name (kind_str kind) doc)
    Dmc_core.Bounds.governed_engines;
  Format.printf
    "multi-processor engines (mp/pc games; p from bounds -p, sweep -p, or \
     a job's p field):@.";
  List.iter
    (fun (e : Dmc_core.Mp_bounds.info) ->
      Format.printf "  %-12s %-6s %s@." e.name (kind_str e.kind) e.doc)
    Dmc_core.Mp_bounds.engines

let print_symbolic_bound (b : Dmc_core.Symbolic_bounds.t) =
  let module Sb = Dmc_core.Symbolic_bounds in
  Format.printf "symbolic lower bound for %s (S=%d, tile=%d):@." b.Sb.spec
    b.Sb.s b.Sb.tile;
  Format.printf "  instance: n=%d, %d vertices (never materialized)@."
    b.Sb.size b.Sb.n_vertices;
  Format.printf "  LB(n) = %s@." (Dmc_symbolic.Expr.to_string b.Sb.formula);
  Format.printf "  LB    = %d@." b.Sb.value;
  List.iter
    (fun c ->
      Format.printf "  class %-14s x %-10d bound=%-8d count(n)=%s@."
        c.Sb.cls_name c.Sb.cls_count_now c.Sb.cls_bound
        (Dmc_symbolic.Expr.to_string c.Sb.cls_count))
    b.Sb.classes;
  match b.Sb.dropped with
  | Some d -> Format.printf "  dropped: %s@." d
  | None -> ()

let bounds_cmd =
  let run spec file s optimal certify json timeout node_budget governed jobs
      job_timeout retries fault trace profile progress list_engines p symbolic
      tile stream window =
    setup_logs ();
    guarded @@ fun () ->
    if list_engines then begin
      print_engine_list ();
      exit 0
    end;
    install_interrupt_handlers ();
    setup_obs ~trace ~profile;
    if symbolic then begin
      (* the whole point is never materializing, so only --gen specs
         make sense here; the spec is parsed, not built *)
      let spec =
        match (spec, file) with
        | Some sp, None -> sp
        | _ ->
            failwith
              "--symbolic requires --gen SPEC (and no --file): the instance \
               is never materialized"
      in
      (match Dmc_core.Symbolic_bounds.bound ?tile ~spec ~s () with
      | Error m -> failwith m
      | Ok b ->
          if json then
            print_endline
              (Dmc_util.Json.to_string (Dmc_core.Symbolic_bounds.to_json b))
          else print_symbolic_bound b);
      emit_obs ~trace ~profile;
      exit 0
    end;
    if stream then begin
      let spec =
        match (spec, file) with
        | Some sp, None -> sp
        | _ ->
            failwith
              "--stream requires --gen SPEC (and no --file): the graph is \
               enumerated window by window, never held whole"
      in
      let imp =
        match Dmc_gen.Workload.parse_implicit spec with
        | Ok imp -> imp
        | Error m -> failwith m
      in
      let r =
        if jobs > 1 then
          Dmc_core.Streaming.wavefront_sum_pooled ?window ?timeout ~jobs imp ~s
        else Dmc_core.Streaming.wavefront_sum ?window imp ~s
      in
      (if json then
         print_endline
           (Dmc_util.Json.to_string
              (Dmc_util.Json.Obj
                 [
                   ("kind", Dmc_util.Json.String "dmc-stream-bound");
                   ("spec", Dmc_util.Json.String spec);
                   ("s", Dmc_util.Json.Int s);
                   ("total", Dmc_util.Json.Int r.Dmc_core.Streaming.total);
                   ("windows", Dmc_util.Json.Int r.Dmc_core.Streaming.n_windows);
                   ("degraded", Dmc_util.Json.Int r.Dmc_core.Streaming.degraded);
                 ]))
       else
         Format.printf
           "streamed wavefront bound for %s (S=%d):@.  LB >= %d  (%d windows, \
            %d degraded)@."
           spec s r.Dmc_core.Streaming.total r.Dmc_core.Streaming.n_windows
           r.Dmc_core.Streaming.degraded);
      emit_obs ~trace ~profile;
      exit 0
    end;
    let faults = parse_faults fault in
    let g = load_cdag ~spec ~file in
    (* A resource budget switches to the governed path: every engine
       runs under its own guard and degrades down a fallback ladder
       instead of failing, so the command always exits 0 with a status
       per engine.  Tracing/profiling/progress also routes through the
       pool: the supervised path is the instrumented one, and running
       it even at --jobs 1 keeps the counter profile identical across
       widths. *)
    if p <> None then begin
      (* The multi-processor family: one governed row per mp/pc engine
         at (p, S), same ladder discipline as the sequential path. *)
      let p = Option.get p in
      let rows =
        List.map
          (fun (e : Dmc_core.Mp_bounds.info) ->
            Dmc_core.Mp_bounds.row ?timeout ?node_budget g ~p ~s e.name)
          Dmc_core.Mp_bounds.engines
      in
      if json then
        print_endline
          (Dmc_util.Json.to_string
             (Dmc_util.Json.Obj
                [
                  ("kind", Dmc_util.Json.String "dmc-mp-bounds");
                  ("p", Dmc_util.Json.Int p);
                  ("s", Dmc_util.Json.Int s);
                  ( "rows",
                    Dmc_util.Json.List
                      (List.map Dmc_core.Bounds.row_to_json rows) );
                ]))
      else begin
        Format.printf "multi-processor bounds at p=%d, S=%d:@." p s;
        List.iter
          (fun (r : Dmc_core.Bounds.row) ->
            Format.printf "  %-12s %-6s %-8s rung=%-8s %s@." r.engine
              (Dmc_core.Bounds.kind_to_string r.kind)
              (match r.value with Some v -> string_of_int v | None -> "-")
              r.rung
              (Dmc_core.Bounds.row_status r))
          rows
      end;
      emit_obs ~trace ~profile
    end
    else if jobs > 1 || faults <> [] || job_timeout <> None || trace <> None
            || profile || progress
    then begin
      let gr =
        bounds_parallel ~jobs ~job_timeout ~retries ~faults ~progress ?timeout
          ?node_budget g ~s
      in
      (if json then
         print_endline
           (Dmc_util.Json.to_string (Dmc_core.Bounds.governed_to_json gr))
       else Format.printf "%a" Dmc_core.Bounds.pp_governed gr);
      if !interrupted <> None then begin
        emit_obs ~trace ~profile;
        exit (interrupt_exit_code ())
      end
    end
    else if governed || timeout <> None || node_budget <> None then begin
      let gr =
        Dmc_core.Bounds.analyze_governed ?timeout ?node_budget g ~s
      in
      if json then
        print_endline
          (Dmc_util.Json.to_string (Dmc_core.Bounds.governed_to_json gr))
      else Format.printf "%a" Dmc_core.Bounds.pp_governed gr
    end
    else begin
      let report =
        Dmc_core.Bounds.analyze ~optimal_limit:(if optimal then 20 else 0) g ~s
      in
      if json then
        print_endline (Dmc_util.Json.to_string (Dmc_core.Bounds.report_to_json report))
      else Format.printf "%a@." Dmc_core.Bounds.pp_report report
    end;
    if certify then
      Format.printf "wavefront certificate verifies: %b@."
        (Dmc_core.Bounds.certify_wavefront g ~s);
    emit_obs ~trace ~profile
  in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Also run the exhaustive optimal-game search (<= 20 vertices).")
  in
  let certify =
    Arg.(value & flag & info [ "certify" ]
           ~doc:"Extract and verify a Menger witness for the wavefront bound.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.") in
  let governed =
    Arg.(value & flag & info [ "governed" ]
           ~doc:"Use the governed engine ladder even without a budget \
                 (every engine is attempted, including the exhaustive ones).")
  in
  let list_engines =
    Arg.(value & flag & info [ "list-engines" ]
           ~doc:"List every bound engine (governed and multi-processor) \
                 with a one-line description, then exit.")
  in
  let p_arg =
    Arg.(value & opt (some int) None & info [ "p" ] ~docv:"P"
           ~doc:"Run the multi-processor/pc engine family at $(docv) \
                 processors (per-processor capacity -s) instead of the \
                 sequential engines.")
  in
  let symbolic =
    Arg.(value & flag & info [ "symbolic" ]
           ~doc:"Symbolic recombination: split the (regular) generator into \
                 isomorphism classes of tiles, bound one representative per \
                 class with the wavefront engine, and recombine the counts \
                 into a closed form in n.  The instance is never \
                 materialized, so billion-node specs return in seconds.  \
                 Requires $(b,--gen); supports chain, tree, diamond \
                 (square), fft and jacobi1d/2d/3d.  The value agrees \
                 exactly with the materialized engine wherever both run.")
  in
  let tile_arg =
    Arg.(value & opt (some int) None & info [ "tile" ] ~docv:"W"
           ~doc:"Tile width for $(b,--symbolic) (butterfly stages per band \
                 for fft).  Defaults scale with -s.")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Streamed Theorem-2 sweep: enumerate the (implicit) \
                 generator window by window, bound each window with the \
                 wavefront engine, and sum.  Memory stays proportional to \
                 one window; $(b,--jobs) fans the windows over fork \
                 workers with byte-identical totals at any width.  \
                 Requires $(b,--gen).")
  in
  let window_arg =
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"N"
           ~doc:"Window size in vertices for $(b,--stream) (default 4096).")
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Lower/upper-bound analysis of a CDAG")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ optimal $ certify $ json
          $ timeout_arg $ node_budget_arg $ governed $ jobs_arg
          $ job_timeout_arg $ retries_arg $ fault_arg $ trace_arg
          $ profile_arg $ progress_arg $ list_engines $ p_arg $ symbolic
          $ tile_arg $ stream $ window_arg)

(* ------------------------------------------------------------------ *)
(* dmc game                                                           *)

let game_cmd =
  let run spec file s policy trace =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let policy =
      match policy with
      | "lru" -> Dmc_core.Strategy.Lru
      | "belady" -> Dmc_core.Strategy.Belady
      | p -> failwith ("unknown policy: " ^ p)
    in
    let moves = Dmc_core.Strategy.schedule ~policy g ~s in
    (match Dmc_core.Rbw_game.run g ~s moves with
    | Ok stats ->
        Format.printf
          "valid RBW game: io=%d (loads=%d stores=%d), computes=%d, peak red=%d@."
          stats.io stats.loads stats.stores stats.computes stats.max_red;
        Format.printf "%a@." Dmc_core.Trace.pp_summary (Dmc_core.Trace.summarize moves);
        let phases = Dmc_core.Trace.phase_io ~s moves in
        Format.printf "Theorem-1 phases (<= S I/Os each): %d@." (List.length phases)
    | Error e -> Format.printf "INVALID at step %d: %s@." e.step e.reason);
    if trace then begin
      print_string (Dmc_core.Trace.render_timeline moves);
      print_string (Dmc_core.Trace.to_string ~limit:200 moves)
    end
  in
  let policy =
    Arg.(value & opt string "belady" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Eviction policy: belady or lru.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the move sequence.") in
  Cmd.v (Cmd.info "game" ~doc:"Play a scheduling strategy as a checked RBW pebble game")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ policy $ trace)

(* ------------------------------------------------------------------ *)
(* dmc replay                                                         *)

let replay_cmd =
  let run spec file s moves_path =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let text =
      let ic = open_in moves_path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Dmc_core.Trace.parse text with
    | Error msg -> failwith ("cannot parse moves: " ^ msg)
    | Ok moves -> (
        match Dmc_core.Rbw_game.run g ~s moves with
        | Ok stats ->
            Format.printf "VALID: io=%d (loads=%d stores=%d), computes=%d, peak red=%d@."
              stats.io stats.loads stats.stores stats.computes stats.max_red
        | Error e ->
            Format.printf "INVALID at step %d: %s@." e.step e.reason;
            exit 1)
  in
  let moves_path =
    Arg.(required & opt (some string) None & info [ "moves" ] ~docv:"PATH"
           ~doc:"File of moves, one per line (load/store/compute/delete N).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Validate an externally produced move sequence against the RBW rules")
    Term.(const run $ spec_arg $ file_arg $ s_arg $ moves_path)

(* ------------------------------------------------------------------ *)
(* dmc hier                                                           *)

let hier_cmd =
  let run spec file s1 s2 =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let moves = Dmc_core.Strategy.hierarchical g ~s1 ~s2 in
    let hier = Dmc_core.Strategy.hierarchical_hierarchy ~s1 ~s2 in
    match Dmc_core.Prbw_game.run hier g moves with
    | Ok stats ->
        Format.printf
          "valid P-RBW game on 1 core, %d-word registers, %d-word cache:@." s1 s2;
        Format.printf "%a" Dmc_machine.Hierarchy.pp_tree hier;
        Format.printf "  registers<->cache: %d words@."
          (Dmc_core.Prbw_game.boundary_traffic stats ~level:2);
        Format.printf "  cache<->memory:    %d words@."
          (Dmc_core.Prbw_game.boundary_traffic stats ~level:3);
        Format.printf "  inputs read: %d, outputs written: %d@." stats.loads stats.stores;
        Format.printf "  sequential lower bounds: LB(S=%d) = %d, LB(S=%d) = %d@." s1
          (Dmc_core.Wavefront.lower_bound g ~s:s1)
          s2
          (Dmc_core.Wavefront.lower_bound g ~s:s2)
    | Error e -> Format.printf "INVALID at step %d: %s@." e.step e.reason
  in
  let s1 =
    Arg.(value & opt int 8 & info [ "s1" ] ~docv:"S1" ~doc:"Register-file capacity in words.")
  in
  let s2 =
    Arg.(value & opt int 64 & info [ "s2" ] ~docv:"S2" ~doc:"Cache capacity in words.")
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:"Run a CDAG through the three-level hierarchy and report per-boundary traffic")
    Term.(const run $ spec_arg $ file_arg $ s1 $ s2)

(* ------------------------------------------------------------------ *)
(* dmc witness                                                        *)

let witness_cmd =
  let run spec file vertex =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let v =
      match vertex with
      | Some v -> v
      | None ->
          (* pick the vertex with the largest wavefront *)
          let best = ref 0 and best_w = ref (-1) in
          Dmc_cdag.Cdag.iter_vertices g (fun x ->
              let w = Dmc_core.Wavefront.min_wavefront g x in
              if w > !best_w then begin
                best_w := w;
                best := x
              end);
          !best
    in
    let w = Dmc_core.Wavefront.witness g v in
    Format.printf "vertex %d (%s): min wavefront = %d@." v
      (Dmc_cdag.Cdag.label g v)
      (max 1 (List.length w.Dmc_core.Wavefront.paths));
    Format.printf "witness verifies: %b@." (Dmc_core.Wavefront.verify_witness g w);
    List.iteri
      (fun i path ->
        Format.printf "  path %d: %s@." i
          (String.concat " -> " (List.map string_of_int path)))
      w.Dmc_core.Wavefront.paths
  in
  let vertex =
    Arg.(value & opt (some int) None & info [ "vertex" ] ~docv:"V"
           ~doc:"Vertex to certify (default: the wavefront maximizer).")
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Extract and verify a Menger path witness for a wavefront bound")
    Term.(const run $ spec_arg $ file_arg $ vertex)

(* ------------------------------------------------------------------ *)
(* dmc horizontal                                                     *)

let horizontal_cmd =
  let run spec file procs =
    setup_logs ();
    guarded @@ fun () ->
    let g = load_cdag ~spec ~file in
    let cost, assign = Dmc_core.Optimal.min_balanced_horizontal g ~procs in
    Format.printf
      "balanced-assignment horizontal optimum on %d nodes: %d words@." procs cost;
    let loads = Array.make procs 0 in
    Dmc_cdag.Cdag.iter_vertices g (fun v ->
        if not (Dmc_cdag.Cdag.is_input g v) then
          loads.(assign.(v)) <- loads.(assign.(v)) + 1);
    Array.iteri (fun p w -> Format.printf "  node %d fires %d vertices@." p w) loads
  in
  let procs =
    Arg.(value & opt int 2 & info [ "procs" ] ~docv:"P" ~doc:"Number of nodes.")
  in
  Cmd.v
    (Cmd.info "horizontal"
       ~doc:"Exact minimum inter-node traffic over balanced work assignments (small CDAGs)")
    Term.(const run $ spec_arg $ file_arg $ procs)

(* ------------------------------------------------------------------ *)
(* dmc formula                                                        *)

let formula_cmd =
  let run name bindings raw =
    setup_logs ();
    guarded @@ fun () ->
    let env =
      List.map
        (fun b ->
          match String.index_opt b '=' with
          | Some i ->
              let key = String.sub b 0 i in
              let v = String.sub b (i + 1) (String.length b - i - 1) in
              (key, float_of_string v)
          | None -> failwith ("binding must look like name=value: " ^ b))
        bindings
    in
    let show label e =
      let e = Dmc_symbolic.Expr.simplify e in
      Format.printf "%s = %s@." label (Dmc_symbolic.Expr.to_string e);
      let free = Dmc_symbolic.Expr.vars e in
      let missing = List.filter (fun v -> not (List.mem_assoc v env)) free in
      if missing = [] then
        Format.printf "  value: %g@." (Dmc_symbolic.Expr.eval ~env e)
      else
        Format.printf "  free variables: %s@." (String.concat ", " missing)
    in
    match (name, raw) with
    | Some name, None -> (
        match Dmc_symbolic.Formulas.find name with
        | Some e -> show name e
        | None ->
            failwith
              (Printf.sprintf "unknown formula %s (known: %s)" name
                 (String.concat ", " (List.map fst Dmc_symbolic.Formulas.all))))
    | None, Some text -> (
        match Dmc_symbolic.Expr.parse text with
        | Ok e -> show "expr" e
        | Error msg -> failwith ("parse error: " ^ msg))
    | None, None ->
        List.iter
          (fun (n, e) ->
            Format.printf "%-24s %s@." n
              (Dmc_symbolic.Expr.to_string (Dmc_symbolic.Expr.simplify e)))
          Dmc_symbolic.Formulas.all
    | Some _, Some _ -> failwith "give either a formula name or --expr, not both"
  in
  let fname =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Formula name (omit to list all).")
  in
  let bindings =
    Arg.(value & opt_all string [] & info [ "set" ] ~docv:"VAR=VALUE"
           ~doc:"Bind a variable for evaluation (repeatable).")
  in
  let raw =
    Arg.(value & opt (some string) None & info [ "expr" ] ~docv:"EXPR"
           ~doc:"Evaluate an ad-hoc expression instead of a named formula.")
  in
  Cmd.v (Cmd.info "formula" ~doc:"Print and evaluate the paper's bounds symbolically")
    Term.(const run $ fname $ bindings $ raw)

(* ------------------------------------------------------------------ *)
(* dmc machines                                                       *)

let machines_cmd =
  let run () =
    setup_logs ();
    guarded @@ fun () ->
    Dmc_util.Table.print (Dmc_analysis.Table1.table ())
  in
  Cmd.v (Cmd.info "machines" ~doc:"Print the Table-1 machine specifications")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* dmc bench-diff                                                     *)

let bench_diff_cmd =
  let run old fresh max_regress work_only =
    setup_logs ();
    guarded @@ fun () ->
    let load path =
      match Dmc_util.Checkpoint.load path with
      | Ok json -> json
      | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
    in
    let report =
      Dmc_obs.Baseline.diff ~max_regress ~work_only ~old:(load old)
        ~fresh:(load fresh) ()
    in
    print_string (Dmc_obs.Baseline.render report);
    if report.Dmc_obs.Baseline.regressed > 0 then exit 1
  in
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
           ~doc:"Committed baseline JSON (from bench --json or \
                 dmc experiment --json).")
  in
  let fresh_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"Fresh JSON of the same kind to compare against OLD.")
  in
  let max_regress_arg =
    Arg.(value & opt float 10.0 & info [ "max-regress" ] ~docv:"PCT"
           ~doc:"Relative tolerance in percent: a metric regresses only \
                 when NEW exceeds OLD by more than PCT.")
  in
  let work_only_arg =
    Arg.(value & flag & info [ "work-only" ]
           ~doc:"Compare only the machine-independent work metrics \
                 (counter.* and hist.*), ignoring wall-clock and memory.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench baselines (or experiment JSON reports) and \
             fail on regressions")
    Term.(const run $ old_arg $ fresh_arg $ max_regress_arg $ work_only_arg)

(* ------------------------------------------------------------------ *)
(* dmc experiment                                                     *)

(* A flat, serializable unit of experiment work: one part of one
   experiment.  Units are committed in submission order whichever path
   (sequential, pool, resume) produced them, so the assembled
   documents — and every rendering — are byte-identical across --jobs
   widths and across kill/resume. *)
type experiment_unit = {
  u_exp : string;
  u_part : string;
  u_run : unit -> Dmc_util.Json.t;
  u_last : bool;  (* last part of its experiment *)
}

let experiment_units selected =
  List.concat_map
    (fun (e : Dmc_analysis.Experiment.t) ->
      let n = List.length e.parts in
      List.mapi
        (fun i (p : Dmc_analysis.Experiment.part) ->
          { u_exp = e.name; u_part = p.part; u_run = p.run; u_last = i = n - 1 })
        e.parts)
    selected

let experiment_ckpt_version = 2

let experiment_checkpoint ~selected ~done_rev =
  let module J = Dmc_util.Json in
  J.Obj
    [
      ("kind", J.String "dmc-experiment");
      ("v", J.Int experiment_ckpt_version);
      ( "names",
        J.List
          (List.map
             (fun (e : Dmc_analysis.Experiment.t) -> J.String e.name)
             selected) );
      ( "parts",
        J.List
          (List.rev_map
             (fun (exp, part, payload) ->
               J.Obj
                 [
                   ("exp", J.String exp);
                   ("part", J.String part);
                   ("payload", payload);
                 ])
             done_rev) );
    ]

let experiment_restore path ~selected ~units =
  let module J = Dmc_util.Json in
  match Dmc_util.Checkpoint.load path with
  | Error msg -> failwith (Printf.sprintf "cannot resume from %s: %s" path msg)
  | Ok ckpt ->
      (match Option.bind (J.mem ckpt "kind") J.as_string with
      | Some "dmc-experiment" -> ()
      | _ -> failwith (path ^ ": not a dmc-experiment checkpoint"));
      (match Option.bind (J.mem ckpt "v") J.as_int with
      | Some v when v = experiment_ckpt_version -> ()
      | Some v ->
          failwith
            (Printf.sprintf
               "%s: checkpoint schema v%d, this build reads v%d; regenerate \
                with --checkpoint" path v experiment_ckpt_version)
      | None ->
          failwith
            (path
           ^ ": checkpoint predates the structured v2 schema (it stores \
              captured stdout, not part payloads); regenerate with \
              --checkpoint"));
      let stored_names =
        match Option.bind (J.mem ckpt "names") J.as_list with
        | Some l -> List.filter_map J.as_string l
        | None -> []
      in
      let sel_names =
        List.map (fun (e : Dmc_analysis.Experiment.t) -> e.name) selected
      in
      if stored_names <> sel_names then
        failwith
          (Printf.sprintf
             "%s: checkpoint is for experiments [%s], this run selects [%s]"
             path
             (String.concat " " stored_names)
             (String.concat " " sel_names));
      let completed =
        match Option.bind (J.mem ckpt "parts") J.as_list with
        | Some l ->
            List.filter_map
              (fun entry ->
                match
                  ( Option.bind (J.mem entry "exp") J.as_string,
                    Option.bind (J.mem entry "part") J.as_string,
                    J.mem entry "payload" )
                with
                | Some exp, Some part, Some payload -> Some (exp, part, payload)
                | _ -> None)
              l
        | None -> []
      in
      (* The checkpoint must be a prefix of the unit list, in order. *)
      let rec check_prefix done_ us =
        match (done_, us) with
        | [], _ -> ()
        | (exp, part, _) :: dt, u :: ut when exp = u.u_exp && part = u.u_part ->
            check_prefix dt ut
        | (exp, part, _) :: _, _ ->
            failwith
              (Printf.sprintf "%s: completed part %s/%s out of order" path exp
                 part)
      in
      check_prefix completed units;
      completed

let experiment_cmd =
  let run names json md timeout checkpoint resume jobs job_timeout retries
      fault trace profile progress =
    setup_logs ();
    guarded @@ fun () ->
    install_interrupt_handlers ();
    setup_obs ~trace ~profile;
    if json && md then failwith "--json and --md are mutually exclusive";
    let mode = if json then `Json else if md then `Md else `Text in
    let faults = parse_faults fault in
    let registry = Dmc_analysis.Report.experiments in
    let selected =
      match names with
      | [] -> registry
      | names ->
          List.map
            (fun n ->
              match Dmc_analysis.Report.find n with
              | Some e -> e
              | None ->
                  failwith
                    (Printf.sprintf "unknown experiment %s (known: %s)" n
                       (String.concat ", "
                          (List.map
                             (fun (e : Dmc_analysis.Experiment.t) -> e.name)
                             registry))))
            names
    in
    let units = experiment_units selected in
    let unit_arr = Array.of_list units in
    let total = List.length units in
    let ckpt_path =
      match (checkpoint, resume) with
      | Some p, _ -> Some p
      | None, Some p -> Some p
      | None, None -> None
    in
    let completed =
      match resume with
      | None -> []
      | Some path -> experiment_restore path ~selected ~units
    in
    if completed <> [] then
      Format.eprintf "dmc: resuming, %d part(s) already done@."
        (List.length completed);
    let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
    let done_rev = ref [] in
    let all_ok = ref true in
    let docs_rev = ref [] in
    (* Payloads of the experiment currently being filled, newest first.
       Units commit strictly in submission order and an experiment's
       parts are contiguous, so one accumulator suffices. *)
    let pending_payloads = ref [] in
    let finalize_experiment name =
      let payloads = List.rev !pending_payloads in
      pending_payloads := [];
      match Dmc_analysis.Report.find name with
      | None -> ()
      | Some e -> (
          match e.doc_of_parts payloads with
          | doc ->
              if not (Dmc_analysis.Doc.ok doc) then all_ok := false;
              (match mode with
              | `Text ->
                  print_string (Dmc_analysis.Doc.to_text doc);
                  flush stdout
              | `Md ->
                  print_string (Dmc_analysis.Doc.to_markdown doc);
                  flush stdout
              | `Json -> docs_rev := Dmc_analysis.Doc.to_json doc :: !docs_rev)
          | exception exn ->
              all_ok := false;
              Format.eprintf "dmc: experiment %s: cannot assemble report: %s@."
                name (Printexc.to_string exn))
    in
    (* Commit one finished unit: accumulate its payload, render the
       experiment once its last part lands, then checkpoint.  Both
       execution paths funnel through here in unit order, so stdout
       and the checkpoint are byte-identical whichever path — and
       however many workers — produced the payloads. *)
    let commit_unit ?(write = true) u payload =
      done_rev := (u.u_exp, u.u_part, payload) :: !done_rev;
      pending_payloads := payload :: !pending_payloads;
      if u.u_last then finalize_experiment u.u_exp;
      if write then
        Option.iter
          (fun p ->
            Dmc_util.Checkpoint.write p
              (experiment_checkpoint ~selected ~done_rev:!done_rev))
          ckpt_path
    in
    (* Replay checkpointed payloads through the same commit path, so a
       resumed run renders completed experiments identically. *)
    List.iteri
      (fun i (_, _, payload) -> commit_unit ~write:false unit_arr.(i) payload)
      completed;
    let n_completed = List.length completed in
    let remaining = List.filteri (fun i _ -> i >= n_completed) units in
    let resume_hint () =
      (* Only point at a checkpoint that actually exists: a run
         stopped before its first committed unit never wrote one. *)
      match ckpt_path with
      | Some p when Sys.file_exists p ->
          Printf.sprintf "; resume with --resume %s" p
      | Some _ | None -> ""
    in
    let finish ~stopped_early =
      emit_obs ~trace ~profile;
      (match !interrupted with
      | Some _ ->
          Format.eprintf "dmc: interrupted after %d/%d part(s)%s@."
            (List.length !done_rev) total (resume_hint ());
          exit (interrupt_exit_code ())
      | None -> ());
      if stopped_early then begin
        Format.eprintf "dmc: timeout reached after %d/%d part(s)%s@."
          (List.length !done_rev) total (resume_hint ());
        exit 0
      end;
      (match mode with
      | `Text ->
          Printf.printf "\nOVERALL: %s\n"
            (if !all_ok then "ALL CHECKS PASSED" else "SOME CHECKS FAILED")
      | `Md ->
          Printf.printf "\n---\n\n**OVERALL:** %s\n"
            (if !all_ok then "ALL CHECKS PASSED" else "SOME CHECKS FAILED")
      | `Json ->
          let module J = Dmc_util.Json in
          print_string
            (J.to_string
               (J.Obj
                  [
                    ("kind", J.String "dmc-experiment-report");
                    ("v", J.Int experiment_ckpt_version);
                    ("ok", J.Bool !all_ok);
                    ("experiments", J.List (List.rev !docs_rev));
                  ]));
          print_newline ());
      if not !all_ok then exit 1
    in
    if jobs > 1 || faults <> [] || job_timeout <> None || trace <> None
       || profile || progress
    then begin
      (* Supervised path: one forked worker per part, committed in
         submission order.  A worker lost to a crash, hard kill or
         protocol break degrades to an in-process rerun of the same
         part, so every unit still yields a payload.  Tracing,
         profiling and progress imply this path even at --jobs 1, so
         the pool.* counter set — and hence the profile — is identical
         across widths. *)
      let module Pool = Dmc_runtime.Pool in
      let arr = Array.of_list remaining in
      (* The unit crosses the fork as data: the worker re-resolves the
         part by (experiment, part) name through the registry, so the
         job it runs is exactly the serializable Part_job record the
         checkpoint stores. *)
      let worker _ u =
        match
          Dmc_analysis.Part_job.run { exp = u.u_exp; part = u.u_part }
        with
        | Ok payload -> Ok payload
        | Error msg -> Error (Dmc_util.Budget.Invalid_input msg)
      in
      let cfg =
        {
          Pool.default with
          jobs;
          timeout = job_timeout;
          max_retries = retries;
          faults;
          should_stop = (fun () -> !interrupted <> None);
          accept_more =
            (fun () ->
              match deadline with
              | None -> true
              | Some d -> Unix.gettimeofday () <= d);
          on_progress =
            (if progress then Some Dmc_runtime.Progress.draw else None);
        }
      in
      let on_result i outcome =
        let u = arr.(i) in
        let payload =
          match outcome.Pool.verdict with
          | Pool.Done payload -> Some payload
          | v -> (
              Format.eprintf
                "dmc: experiment %s part %s: worker %s; degrading to an \
                 in-process run@."
                u.u_exp u.u_part
                (Pool.verdict_to_string v);
              match u.u_run () with
              | payload -> Some payload
              | exception exn ->
                  Format.eprintf
                    "dmc: experiment %s part %s: in-process fallback failed \
                     too: %s@."
                    u.u_exp u.u_part (Printexc.to_string exn);
                  None)
        in
        match payload with
        | Some payload -> commit_unit u payload
        | None ->
            all_ok := false;
            commit_unit u Dmc_util.Json.Null
      in
      let outcomes = Pool.run cfg ~worker ~on_result remaining in
      if progress then Dmc_runtime.Progress.clear ();
      let cancelled =
        Array.exists
          (fun o ->
            match o.Pool.verdict with
            | Pool.Engine_failure Dmc_util.Budget.Cancelled -> true
            | _ -> false)
          outcomes
      in
      finish ~stopped_early:(cancelled && !interrupted = None)
    end
    else begin
      let timed_out = ref false in
      List.iter
        (fun u ->
          if (not !timed_out) && !interrupted = None then
            match deadline with
            | Some d when Unix.gettimeofday () > d -> timed_out := true
            | _ -> commit_unit u (u.u_run ()))
        remaining;
      finish ~stopped_early:!timed_out
    end
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME"
           ~doc:"Experiments to run (default: all). Known: summary table1 \
                 sec3 cg gmres jacobi scaling fft curves multigrid \
                 reductions validate sim.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one structured JSON report instead of text: \
                 $(b,{kind, v, ok, experiments: [...]}), byte-identical \
                 across $(b,--jobs) widths and across kill/resume.  \
                 Consumable by $(b,dmc bench-diff).")
  in
  let md_arg =
    Arg.(value & flag & info [ "md" ]
           ~doc:"Render the reports as Markdown instead of text.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Write a JSON checkpoint of versioned structured part \
                 payloads after each completed part, so a killed run can \
                 continue with $(b,--resume).")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"PATH"
           ~doc:"Resume from a checkpoint: completed parts are reloaded and \
                 their experiments re-rendered from the stored payloads, so \
                 the final output is byte-identical to an uninterrupted \
                 run.  Also keeps checkpointing to the same file.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run the paper's evaluation experiments")
    Term.(const run $ names $ json_arg $ md_arg $ timeout_arg $ checkpoint
          $ resume $ jobs_arg $ job_timeout_arg $ retries_arg $ fault_arg
          $ trace_arg $ profile_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* dmc serve / dmc query                                              *)

let socket_arg =
  Arg.(value & opt string "dmc.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path the daemon listens on (and the \
               client connects to).")

let serve_cmd =
  let run socket cache_dir cache_entries max_inflight read_timeout jobs
      job_timeout retries fault =
    setup_logs ();
    guarded @@ fun () ->
    install_interrupt_handlers ();
    let faults = parse_faults fault in
    let cfg =
      {
        Dmc_serve.Server.socket_path = socket;
        cache_dir;
        cache_entries;
        max_inflight;
        read_timeout;
        jobs;
        job_timeout;
        max_retries = retries;
        faults;
        should_drain = (fun () -> !interrupted <> None);
        on_ready =
          Some (fun () -> Format.eprintf "dmc serve: listening on %s@." socket);
      }
    in
    match Dmc_serve.Server.serve cfg with
    | Ok () -> (
        (* drain complete: in-flight queries answered, cache persisted *)
        match !interrupted with
        | Some _ -> exit (interrupt_exit_code ())
        | None -> ())
    | Error msg ->
        Format.eprintf "dmc serve: %s@." msg;
        exit 1
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist the content-addressed result cache to \
                 $(docv)/results.json (atomic write-through: every insert \
                 fsyncs before rename, so kill -9 loses at most in-flight \
                 results).  A restart with the same $(docv) starts warm.")
  in
  let cache_entries =
    Arg.(value & opt int 1024 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"LRU capacity of the result cache, in entries.")
  in
  let max_inflight =
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission bound: queries submitted but not yet answered. \
                 Beyond it new queries get a typed 'overloaded' rejection \
                 instead of queueing unboundedly.")
  in
  let read_timeout =
    Arg.(value & opt float 10. & info [ "read-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-connection deadline from accept to a complete request \
                 frame; a stalled or dribbling client gets a typed protocol \
                 error, never an occupied slot.")
  in
  let fault =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Chaos mode: kind:conn[:attempts] clauses with kind one of \
                 drop, truncate, slow (by 1-based accepted-connection index) \
                 for the server loop, or hang, abort, garbage (by 1-based \
                 query submission index) forwarded to the worker pool.  Also \
                 read from \\$DMC_FAULT.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the bound-query daemon (Unix-socket IPC, supervised \
             workers, persisted result cache)")
    Term.(const run $ socket_arg $ cache_dir $ cache_entries $ max_inflight
          $ read_timeout $ jobs_arg $ job_timeout_arg $ retries_arg $ fault)

let query_once ~socket request =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
      | () -> (
          match
            Dmc_util.Ipc.write_frame fd
              (Dmc_serve.Protocol.request_to_json request)
          with
          | exception Unix.Unix_error (e, _, _) ->
              Error ("connection lost while sending: " ^ Unix.error_message e)
          | () -> (
              match Dmc_util.Ipc.read_frame fd with
              | Ok json -> Ok json
              | Error e -> Error ("reply: " ^ Dmc_util.Ipc.read_error_to_string e))))

(* Capped deterministic backoff around [query_once], so a briefly
   restarting daemon does not fail scripted clients: delays are
   [retry_delay * 2^(i-1)] capped at 10 s, no jitter — a scripted
   client's worst-case latency is computable from its flags. *)
let query_with_retries ~socket ~retries ~retry_delay request =
  let rec go attempt =
    match query_once ~socket request with
    | Ok _ as ok -> ok
    | Error msg when attempt <= retries ->
        let delay =
          Float.min 10. (retry_delay *. (2. ** float_of_int (attempt - 1)))
        in
        Format.eprintf "dmc query: %s; retry %d/%d in %.1fs@." msg attempt
          retries delay;
        Unix.sleepf delay;
        go (attempt + 1)
    | Error _ as e -> e
  in
  go 1

let query_cmd =
  let run socket spec file engine s timeout node_budget samples count ping
      stats metrics shutdown retries retry_delay =
    setup_logs ();
    guarded @@ fun () ->
    let module P = Dmc_serve.Protocol in
    let request =
      if ping then P.Ping
      else if stats then P.Stats
      else if metrics then P.Metrics
      else if shutdown then P.Shutdown
      else
        let source =
          match (spec, file) with
          | Some sp, None -> P.Spec sp
          | None, Some path -> (
              match Dmc_cdag.Serialize.of_file path with
              | Ok g -> P.Graph (Dmc_cdag.Serialize.to_string g)
              | Error msg -> failwith ("cannot parse " ^ path ^ ": " ^ msg))
          | _ ->
              failwith
                "give exactly one of --gen or --file (or --ping, --stats, \
                 --shutdown)"
        in
        P.query ?timeout ?node_budget ~samples source ~engine ~s
    in
    let transport_failures = ref 0 in
    for _ = 1 to count do
      match query_with_retries ~socket ~retries ~retry_delay request with
      | Ok reply when metrics -> (
          (* Print the Prometheus-style text exposition the daemon
             embeds in the snapshot; fall back to the raw reply line
             if an older daemon answered something else. *)
          let module J = Dmc_util.Json in
          match
            Option.bind (J.mem reply "metrics") (fun m ->
                Option.bind (J.mem m "text") J.as_string)
          with
          | Some text -> print_string text
          | None -> print_endline (J.to_string ~indent:false reply))
      | Ok reply ->
          print_endline (Dmc_util.Json.to_string ~indent:false reply)
      | Error msg ->
          incr transport_failures;
          Format.eprintf "dmc query: %s@." msg
    done;
    (* Typed replies — including 'failed' and 'rejected' — exit 0: the
       daemon answered.  Only transport failures (no daemon, dropped or
       truncated connection) are a client error. *)
    if !transport_failures > 0 then exit 1
  in
  let engine =
    let names = List.map fst Dmc_core.Bounds.governed_engines in
    Arg.(value & opt string "wavefront" & info [ "engine" ] ~docv:"NAME"
           ~doc:(Printf.sprintf "Bound engine to query: one of %s."
                   (String.concat ", " names)))
  in
  let samples =
    Arg.(value & opt int 64 & info [ "samples" ] ~docv:"N"
           ~doc:"Sample count for the sampling engines (as in dmc bounds).")
  in
  let count =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N"
           ~doc:"Send the query $(docv) times (one connection each), \
                 printing one reply line per attempt — the second and later \
                 ones exercise the daemon's result cache.")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe instead of a query.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Fetch the daemon's counter/gauge snapshot instead of a query.")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Fetch the daemon's full metrics exposition instead of a \
                 query and print it as Prometheus-style text: counters, \
                 latency-histogram quantiles (request / queue-wait / \
                 engine / cache-lookup), gauges including the cache hit \
                 ratio, and uptime.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to drain gracefully and exit.")
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry a transport failure (no daemon, dropped or truncated \
                 connection) up to $(docv) times before exiting 1, so a \
                 briefly-restarting daemon does not fail scripted clients.  \
                 Typed replies — including 'failed' and 'rejected' — are \
                 answers, never retried.")
  in
  let retry_delay =
    Arg.(value & opt float 0.5 & info [ "retry-delay" ] ~docv:"SECONDS"
           ~doc:"First retry delay; doubles per attempt, capped at 10s. \
                 Deterministic (no jitter), so scripted worst-case latency \
                 is computable from the flags.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query a running dmc serve daemon (one reply line per request)")
    Term.(const run $ socket_arg $ spec_arg $ file_arg $ engine $ s_arg
          $ timeout_arg $ node_budget_arg $ samples $ count $ ping $ stats
          $ metrics $ shutdown $ retries $ retry_delay)

(* ------------------------------------------------------------------ *)
(* dmc worker — the remote end of a Command transport.  Internal: the
   coordinator (or an ssh wrapper it spawned) writes one call frame to
   stdin; the result frames go to stdout.  Kept a public subcommand so
   'ssh host dmc worker' needs nothing but a dmc binary on the host. *)

let worker_cmd =
  let run () =
    setup_logs ();
    let dispatch job =
      match Dmc_core.Engine_job.of_json job with
      | Ok ej -> Dmc_core.Engine_job.run ej
      | Error _ -> (
          match Dmc_analysis.Part_job.of_json job with
          | Ok pj -> (
              match Dmc_analysis.Part_job.run pj with
              | Ok payload -> Ok payload
              | Error msg -> Error (Dmc_util.Budget.Invalid_input msg))
          | Error _ ->
              Error
                (Dmc_util.Budget.Invalid_input
                   "job is neither a dmc-engine-job nor a dmc-part-job"))
    in
    exit
      (Dmc_runtime.Transport.run_call ~input:Unix.stdin ~output:Unix.stdout
         ~dispatch ())
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Execute one serialized worker call from stdin (internal; \
             spawned by the coordinator's remote transports)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* dmc sweep — the parameter-grid runner over the host fleet.          *)

let host_arg =
  Arg.(value & opt_all string [] & info [ "host" ] ~docv:"SPEC"
         ~doc:"A backend to shard rows onto (repeatable).  \
               $(b,local[:CAP]) is the fork backend; \
               $(b,cmd[:CAP]:COMMAND) spawns COMMAND per attempt and \
               speaks the worker protocol over its stdio; \
               $(b,ssh[:CAP]:DEST) is shorthand for \
               cmd:CAP:'ssh -oBatchMode=yes DEST dmc worker'.  CAP is \
               the host's concurrent-lease capacity (default 1).  A \
               local host is always added when no spec provides one, so \
               a sweep degrades to local-fork-only rather than fail \
               while backends die.  Without any --host, rows run on a \
               local host of capacity --jobs.")

let sweep_cmd =
  let run specs sizes seeds ss ps engines json md timeout node_budget hosts
      checkpoint resume jobs job_timeout retries fault trace profile progress
      postmortem host_health =
    setup_logs ();
    guarded @@ fun () ->
    install_interrupt_handlers ();
    setup_obs ~trace ~profile;
    (* The flight recorder rides the registry; a postmortem dir must
       arm it even when no trace/profile sink was asked for. *)
    if postmortem <> None then Dmc_obs.Registry.set_enabled true;
    if json && md then failwith "--json and --md are mutually exclusive";
    let module Sweep = Dmc_analysis.Sweep in
    let module Pool = Dmc_runtime.Pool in
    let module Host = Dmc_runtime.Host in
    let faults = parse_faults fault in
    let parse_axis name = function
      | None -> []
      | Some s -> (
          match Sweep.parse_int_list s with
          | Ok ns -> ns
          | Error e -> failwith (Printf.sprintf "--%s: %s" name e))
    in
    let sizes = parse_axis "sizes" sizes in
    let seeds = parse_axis "seeds" seeds in
    let ss =
      match Sweep.parse_int_list ss with
      | Ok ns -> ns
      | Error e -> failwith ("-s: " ^ e)
    in
    let ps =
      Option.map
        (fun s ->
          match Sweep.parse_int_list s with
          | Ok ns -> ns
          | Error e -> failwith ("-p: " ^ e))
        ps
    in
    let engines =
      Option.map
        (fun s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun e -> e <> ""))
        engines
    in
    let grid =
      match
        Sweep.make ~specs ~sizes ~seeds ~ss ?ps ?engines ?timeout
          ?node_budget ()
      with
      | Ok g -> g
      | Error e -> failwith e
    in
    let hosts =
      match
        List.fold_left
          (fun acc spec ->
            match (acc, Host.parse_spec spec) with
            | Error _, _ -> acc
            | Ok _, Error e -> Error e
            | Ok hs, Ok h -> Ok (h :: hs))
          (Ok []) hosts
      with
      | Error e -> failwith e
      | Ok [] ->
          (* Pool defaults to a local host of capacity jobs; the
             host-health section needs the ledger records, so build
             the same default explicitly when asked to report on it. *)
          if host_health then Host.normalize ~jobs [] else []
      | Ok hs -> Host.normalize ~jobs (List.rev hs)
    in
    let rows = Sweep.rows grid in
    let total = List.length rows in
    let jobs_list =
      List.map
        (fun r ->
          match Sweep.job grid r with
          | Ok j -> (r, j)
          | Error e -> failwith (Printf.sprintf "%s: %s" r.Sweep.workload e))
        rows
    in
    let ckpt_path =
      match (checkpoint, resume) with
      | Some p, _ -> Some p
      | None, Some p -> Some p
      | None, None -> None
    in
    let completed =
      match resume with
      | None -> []
      | Some path -> (
          match Dmc_util.Checkpoint.load path with
          | Error e -> failwith ("cannot resume: " ^ e)
          | Ok json -> (
              match Sweep.restore grid json with
              | Ok payloads -> payloads
              | Error e -> failwith ("cannot resume: " ^ e)))
    in
    if completed <> [] then
      Format.eprintf "dmc sweep: resuming, %d/%d row(s) already committed@."
        (List.length completed) total;
    let results = Array.make total None in
    let committed_rev = ref [] in
    let commit ?(write = true) gi payload =
      results.(gi) <- Some payload;
      committed_rev := payload :: !committed_rev;
      if write then
        Option.iter
          (fun p ->
            Dmc_util.Checkpoint.write p
              (Sweep.checkpoint grid ~committed:(List.rev !committed_rev)))
          ckpt_path
    in
    List.iteri (fun i payload -> commit ~write:false i payload) completed;
    let n_completed = List.length completed in
    let remaining =
      List.filteri (fun i _ -> i >= n_completed) jobs_list
    in
    let row_arr = Array.of_list rows in
    let cfg =
      {
        Pool.default with
        jobs;
        timeout = job_timeout;
        max_retries = retries;
        faults;
        should_stop = (fun () -> !interrupted <> None);
        on_progress =
          (if progress then Some Dmc_runtime.Progress.draw else None);
        postmortem_dir = postmortem;
      }
    in
    let run_started = Unix.gettimeofday () in
    let on_result i outcome =
      let gi = n_completed + i in
      let payload =
        match outcome.Pool.verdict with
        | Pool.Done payload -> payload
        | Pool.Engine_failure Dmc_util.Budget.Cancelled ->
            (* run() never commits cancelled jobs; defensive only *)
            Dmc_util.Json.Null
        | v -> (
            (* Job-attributed loss (host-attributed failures were
               re-sharded before reaching here): degrade the row
               coordinator-side, so the sweep never loses a row. *)
            let failure = Option.get (Pool.verdict_failure v) in
            Format.eprintf "dmc sweep: row %d (%s s=%d p=%d %s): worker \
                            %s; degrading@."
              gi row_arr.(gi).Sweep.workload row_arr.(gi).Sweep.s
              row_arr.(gi).Sweep.p row_arr.(gi).Sweep.engine
              (Pool.verdict_to_string v);
            match Sweep.degraded grid row_arr.(gi) ~failure with
            | Ok p -> p
            | Error _ -> Dmc_util.Json.Null)
      in
      commit gi payload
    in
    let _ : Pool.outcome array =
      Pool.run ~hosts
        ~encode:(fun (_, j) -> Dmc_core.Engine_job.to_json j)
        cfg
        ~worker:(fun _ (_, j) -> Dmc_core.Engine_job.run j)
        ~on_result remaining
    in
    if progress then Dmc_runtime.Progress.clear ();
    (match !interrupted with
    | Some _ ->
        emit_obs ~trace ~profile;
        let hint =
          match ckpt_path with
          | Some p when Sys.file_exists p ->
              Printf.sprintf "; resume with --resume %s" p
          | Some _ | None -> ""
        in
        Format.eprintf "dmc sweep: interrupted after %d/%d row(s)%s@."
          (List.length !committed_rev) total hint;
        exit (interrupt_exit_code ())
    | None -> ());
    let doc = Sweep.doc grid ~results:(Array.to_list results) in
    let doc =
      if not host_health then doc
      else
        let stats =
          List.map
            (fun h ->
              {
                Sweep.h_name = h.Host.name;
                h_remote = Host.is_remote h;
                h_verdict = Host.verdict_to_string h.Host.verdict;
                h_dispatched = h.Host.dispatched;
                h_completed = h.Host.completed;
                h_failures = h.Host.failures_total;
                h_resharded = h.Host.resharded;
                h_quarantines = h.Host.quarantines;
                h_quarantine_log = h.Host.quarantine_log;
              })
            hosts
        in
        {
          doc with
          Dmc_analysis.Doc.blocks =
            doc.Dmc_analysis.Doc.blocks
            @ Sweep.host_health_doc ~run_started stats;
        }
    in
    let ok = Dmc_analysis.Doc.ok doc in
    (match (json, md) with
    | true, _ ->
        let module J = Dmc_util.Json in
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("kind", J.String "dmc-sweep-report");
                  ("v", J.Int 1);
                  ("ok", J.Bool ok);
                  ("report", Dmc_analysis.Doc.to_json doc);
                ]))
    | _, true -> print_string (Dmc_analysis.Doc.to_markdown doc)
    | _ -> print_string (Dmc_analysis.Doc.to_text doc));
    flush stdout;
    emit_obs ~trace ~profile;
    if not ok then exit 1
  in
  let specs =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SPEC"
           ~doc:(Printf.sprintf
                   "Workload templates; %s.  A template may use {n} and \
                    {seed} placeholders, expanded over --sizes and --seeds \
                    (e.g. 'jacobi1d:{n},4' or 'layered:{seed},5,30')."
                   generator_doc))
  in
  let sizes =
    Arg.(value & opt (some string) None & info [ "sizes" ] ~docv:"LIST"
           ~doc:"Values for the {n} placeholder: comma-separated integers \
                 with inclusive ranges, e.g. '8,12,16..19'.")
  in
  let seeds =
    Arg.(value & opt (some string) None & info [ "seeds" ] ~docv:"LIST"
           ~doc:"Values for the {seed} placeholder (same syntax as --sizes) \
                 — the random-DAG fleet axis.")
  in
  let ss =
    Arg.(value & opt string "8" & info [ "s" ] ~docv:"LIST"
           ~doc:"Fast-memory capacities to sweep (same syntax as --sizes).")
  in
  let ps_axis =
    Arg.(value & opt (some string) None & info [ "p" ] ~docv:"LIST"
           ~doc:"Processor counts to sweep (same syntax as --sizes); \
                 requires a p-sensitive engine in --engines (see dmc \
                 bounds --list-engines).")
  in
  let engines =
    Arg.(value & opt (some string) None & info [ "engines" ] ~docv:"NAMES"
           ~doc:(Printf.sprintf
                   "Comma-separated engine subset (default: all of %s; \
                    multi-processor engines: %s)."
                   (String.concat ", "
                      (List.map fst Dmc_core.Bounds.governed_engines))
                   (String.concat ", " Dmc_core.Mp_bounds.engine_names)))
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one structured JSON report: $(b,{kind, v, ok, \
                 report}), byte-identical across $(b,--jobs) widths, host \
                 fleets and transient-failure schedules.")
  in
  let md_arg =
    Arg.(value & flag & info [ "md" ]
           ~doc:"Render the report as Markdown instead of text.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Atomically write the committed row prefix after every \
                 commit, so kill -9 of the coordinator resumes with \
                 $(b,--resume) without recomputing committed rows.")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"PATH"
           ~doc:"Resume from a checkpoint written by the same grid (other \
                 grids are refused); also keeps checkpointing to the same \
                 file.  The final report is byte-identical to an \
                 uninterrupted run.")
  in
  let postmortem =
    Arg.(value & opt (some string) None & info [ "postmortem" ] ~docv:"DIR"
           ~doc:"Arm the crash flight recorder: every attempt that ends \
                 crashed, timed-out or protocol-broken dumps the recent \
                 span/dispatch/verdict event ring, counters and gauges to \
                 a timestamped $(b,postmortem-*.json) in $(docv) (created \
                 if needed).  Best-effort — a failed dump warns on stderr \
                 and never perturbs supervision or the report bytes.")
  in
  let host_health =
    Arg.(value & flag & info [ "host-health" ]
           ~doc:"Append a per-host health timeline section to the report: \
                 dispatched/completed/failure/reshard counts, final \
                 verdicts and quarantine intervals relative to run start.  \
                 Off by default because its contents are run-dependent \
                 (wall-clock intervals, host placement) — the flag-less \
                 report keeps the byte-identity contract.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a workload/S/p/engine/seed parameter grid across a \
             fault-tolerant host fleet")
    Term.(const run $ specs $ sizes $ seeds $ ss $ ps_axis $ engines $ json_arg
          $ md_arg $ timeout_arg $ node_budget_arg $ host_arg $ checkpoint
          $ resume $ jobs_arg $ job_timeout_arg $ retries_arg $ fault_arg
          $ trace_arg $ profile_arg $ progress_arg $ postmortem $ host_health)

let () =
  let info =
    Cmd.info "dmc" ~version:"1.0.0"
      ~doc:"Data-movement complexity of computational DAGs (Elango et al., SPAA 2014)"
  in
  exit (Cmd.eval (Cmd.group info [ gen_cmd; bounds_cmd; game_cmd; replay_cmd; hier_cmd; horizontal_cmd; witness_cmd; formula_cmd; machines_cmd; bench_diff_cmd; experiment_cmd; serve_cmd; query_cmd; sweep_cmd; worker_cmd ]))
