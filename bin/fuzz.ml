(* dmc-fuzz: randomized cross-validation soak tool.

   Generates random CDAGs across several families and, for each,
   cross-checks every engine against every other:

     1. every lower bound <= the exhaustive RBW optimum (small graphs);
     2. the optimum <= every strategy's measured I/O;
     3. RB optimum <= RBW optimum;
     4. every schedule (Belady, LRU, DFS order) replays cleanly;
     5. the Theorem-1 partition of each game validates with
        q >= S(h-1);
     6. the LRU simulator's traffic dominates the certified bound;
     7. serialization round-trips;
     8. the three-level hierarchical game validates with both
        boundaries above their sequential bounds.

   Usage:
     dune exec bin/fuzz.exe -- [cases] [seed]
         [--timeout SECS] [--checkpoint FILE] [--resume FILE] [--no-checkpoint]

   The master RNG state and case counter are checkpointed after every
   case (default file: dmc-fuzz.ckpt.json, atomically replaced), so a
   killed run continues exactly where it stopped with --resume.  Every
   violation additionally persists a reproducer file
   (dmc-fuzz-repro-caseN.json) recording the family, seeds, S and the
   failed check.  --timeout stops cleanly between cases (exit 0),
   leaving the checkpoint behind; violations exit 1 as before. *)

module Cdag = Dmc_cdag.Cdag
module Rng = Dmc_util.Rng
module Strategy = Dmc_core.Strategy
module J = Dmc_util.Json

let max_indeg g =
  Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0

let families =
  [|
    ( "layered-4x4",
      fun rng -> Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.4 );
    ( "layered-3x5",
      fun rng -> Dmc_gen.Random_dag.layered rng ~layers:3 ~width:5 ~edge_prob:0.6 );
    ( "gnp",
      fun rng -> Dmc_gen.Random_dag.gnp rng ~n:(7 + Rng.int rng 6) ~edge_prob:0.3 );
    ( "connected",
      fun rng ->
        Dmc_gen.Random_dag.connected_dag rng ~n:(6 + Rng.int rng 8)
          ~extra_edges:(Rng.int rng 8) );
    ( "jacobi1d",
      fun rng ->
        let n = 3 + Rng.int rng 4 in
        let steps = 1 + Rng.int rng 3 in
        Dmc_gen.Workload.build_exn "jacobi1d" [ n; steps ] );
  |]

exception Violation of string

let require label ok = if not ok then raise (Violation label)

let one_case rng g ~s =
  let n = Cdag.n_vertices g in

  (* 7: serialization round-trip *)
  (match Dmc_cdag.Serialize.of_string (Dmc_cdag.Serialize.to_string g) with
  | Ok g2 -> require "serialize" (Dmc_cdag.Serialize.equal_structure g g2)
  | Error m -> raise (Violation ("serialize: " ^ m)));

  (* 4: schedules replay *)
  let check_schedule label order policy =
    match Dmc_core.Rbw_game.run g ~s (Strategy.schedule ~policy ?order g ~s) with
    | Ok stats -> stats.Dmc_core.Rbw_game.io
    | Error e -> raise (Violation (Printf.sprintf "%s: %s" label e.reason))
  in
  let belady = check_schedule "belady" None Strategy.Belady in
  let lru = check_schedule "lru" None Strategy.Lru in
  let dfs = check_schedule "dfs" (Some (Strategy.dfs_order g)) Strategy.Belady in

  (* 1-3: bound soundness against the optimum *)
  let report = Dmc_core.Bounds.analyze g ~s in
  (* Inputs nobody consumes still cost one load in a complete RBW game
     (the white-pebble rule), but they never cross an inner hierarchy
     boundary and the LRU simulator never touches them: correct the
     dominance checks by their count. *)
  let unused_inputs =
    List.length
      (List.filter (fun v -> Cdag.out_degree g v = 0) (Cdag.inputs g))
  in
  require "floor <= wavefront consistency" (report.best_lb >= report.io_floor);
  (if n <= 14 then
     match Dmc_core.Optimal.rbw_io g ~s with
     | opt ->
         require "lb <= optimal" (report.best_lb <= opt);
         require "optimal <= belady" (opt <= belady);
         require "optimal <= lru" (opt <= lru);
         require "optimal <= dfs" (opt <= dfs);
         (* The governed ladder must agree with the raising engines. *)
         (match Dmc_core.Bounds.Engine.rbw_io g ~s with
         | Ok opt' -> require "engine rbw = rbw" (opt' = opt)
         | Error e ->
             raise
               (Violation
                  ("engine rbw errored: " ^ Dmc_util.Budget.failure_to_string e)));
         if n <= 12 && Dmc_cdag.Validate.is_hong_kung g then
           require "rb <= rbw" (Dmc_core.Optimal.rb_io g ~s <= opt)
     | exception Dmc_core.Optimal.Too_large _ -> ());

  (* governed analysis: always completes and stays sound *)
  let gov = Dmc_core.Bounds.analyze_governed g ~s in
  require "governed lb sound" (gov.Dmc_core.Bounds.gov_best_lb <= belady);
  require "governed lb >= floor"
    (gov.Dmc_core.Bounds.gov_best_lb >= report.io_floor);
  (match gov.Dmc_core.Bounds.gov_best_ub with
  | Some ub -> require "governed ub >= lb" (ub >= gov.Dmc_core.Bounds.gov_best_lb)
  | None -> raise (Violation "governed ub missing for feasible S"));

  (* 5: Theorem-1 partition of the Belady game *)
  let moves = Strategy.schedule g ~s in
  let io = Dmc_core.Rbw_game.io_of g ~s moves in
  let color = Dmc_core.Spartition.of_game g ~s moves in
  let h = 1 + Array.fold_left max (-1) color in
  (match Dmc_core.Spartition.check g ~s:(2 * s) ~color with
  | Ok _ -> ()
  | Error m -> raise (Violation ("theorem1 partition: " ^ m)));
  require "theorem1 arithmetic" (io >= s * (h - 1));

  (* 6: simulator dominance *)
  let sim =
    Dmc_sim.Exec.run g
      ~order:(Strategy.default_order g)
      (Dmc_sim.Exec.sequential ~capacities:[| s; 8 * n |])
  in
  require "simulator dominates lb"
    (sim.vertical.(0).(0) + unused_inputs >= report.best_lb);

  (* 8: hierarchical game *)
  let s2 = s + 2 + Rng.int rng 8 in
  let hier_moves = Strategy.hierarchical g ~s1:s ~s2 in
  let hier = Strategy.hierarchical_hierarchy ~s1:s ~s2 in
  (match Dmc_core.Prbw_game.run hier g hier_moves with
  | Ok stats ->
      require "hier regs boundary"
        (Dmc_core.Prbw_game.boundary_traffic stats ~level:2 + unused_inputs
        >= Dmc_core.Wavefront.lower_bound g ~s);
      require "hier mem boundary"
        (Dmc_core.Prbw_game.boundary_traffic stats ~level:3 + unused_inputs
        >= Dmc_core.Wavefront.lower_bound g ~s:s2)
  | Error e -> raise (Violation ("hierarchical: " ^ e.reason)));
  n

(* ------------------------------------------------------------------ *)
(* Driver: argument parsing, checkpointing, reproducers.              *)

(* Everything a case does is a pure function of its seed, so the same
   entry point serves the sequential loop and the forked pool workers
   — the parallel run visits exactly the case stream a sequential run
   would. *)
let run_case ~case_seed =
  let rng = Rng.create case_seed in
  let family = ref "?" in
  let s_used = ref None in
  let n_built = ref None in
  match
    let fname, gen = families.(Rng.int rng (Array.length families)) in
    family := fname;
    let g = gen rng in
    n_built := Some (Cdag.n_vertices g);
    let s = max_indeg g + 1 + Rng.int rng 4 in
    s_used := Some s;
    one_case rng g ~s
  with
  | n -> Ok n
  | exception Violation msg ->
      Error ("violation", msg, !family, !s_used, !n_built)
  | exception e ->
      Error ("exception", Printexc.to_string e, !family, !s_used, !n_built)

let usage =
  "usage: fuzz [cases] [seed] [--timeout SECS] [--checkpoint FILE] \
   [--resume FILE] [--no-checkpoint] [--jobs N] [--job-timeout SECS] \
   [--retries N] [--fault SPEC] [--profile] [--trace FILE] [--progress]"

let die msg =
  prerr_endline ("fuzz: " ^ msg);
  prerr_endline usage;
  exit 2

(* [rng] is the saved master state *after* the last committed case's
   seed draw — the parallel supervisor snapshots it at dispatch time,
   so a checkpoint written while later cases are in flight still
   resumes the exact stream. *)
let fuzz_checkpoint ~cases ~seed ~next_case ~rng ~total_vertices ~failures =
  J.Obj
    [
      ("kind", J.String "dmc-fuzz");
      ("cases", J.Int cases);
      ("seed", J.Int seed);
      ("next_case", J.Int next_case);
      ("rng", J.String rng);
      ("total_vertices", J.Int total_vertices);
      ("failures", J.Int failures);
    ]

let write_repro ~case ~seed ~case_seed ~family ~s ~n ~check msg =
  let path = Printf.sprintf "dmc-fuzz-repro-case%d.json" case in
  Dmc_util.Checkpoint.write path
    (J.Obj
       [
         ("kind", J.String "dmc-fuzz-repro");
         ("case", J.Int case);
         ("seed", J.Int seed);
         ("case_seed", J.Int case_seed);
         ("family", J.String family);
         ("s", J.opt (fun s -> J.Int s) s);
         ("n_vertices", J.opt (fun n -> J.Int n) n);
         ("check", J.String check);
         ("failure", J.String msg);
       ]);
  path

let () =
  let timeout = ref None in
  let ckpt_path = ref (Some "dmc-fuzz.ckpt.json") in
  let resume = ref None in
  let jobs = ref 1 in
  let job_timeout = ref None in
  let retries = ref 0 in
  let cli_faults = ref [] in
  let profile = ref false in
  let trace = ref None in
  let progress = ref false in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--timeout" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t -> timeout := Some t
        | None -> die ("bad --timeout value: " ^ v));
        parse rest
    | "--checkpoint" :: v :: rest ->
        ckpt_path := Some v;
        parse rest
    | "--no-checkpoint" :: rest ->
        ckpt_path := None;
        parse rest
    | "--resume" :: v :: rest ->
        resume := Some v;
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> die ("bad --jobs value: " ^ v));
        parse rest
    | "--job-timeout" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t -> job_timeout := Some t
        | None -> die ("bad --job-timeout value: " ^ v));
        parse rest
    | "--retries" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 0 -> retries := n
        | _ -> die ("bad --retries value: " ^ v));
        parse rest
    | "--fault" :: v :: rest ->
        (match Dmc_runtime.Fault.parse v with
        | Ok faults -> cli_faults := !cli_faults @ faults
        | Error msg -> die msg);
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | "--trace" :: v :: rest ->
        trace := Some v;
        parse rest
    | "--progress" :: rest ->
        progress := true;
        parse rest
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" ->
        die ("unknown option " ^ arg)
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !profile || !trace <> None then Dmc_obs.Registry.set_enabled true;
  let pos_int what v =
    match int_of_string_opt v with Some i -> i | None -> die ("bad " ^ what ^ ": " ^ v)
  in
  let cases, seed =
    match List.rev !positional with
    | [] -> (200, 20140418)
    | [ c ] -> (pos_int "case count" c, 20140418)
    | [ c; s ] -> (pos_int "case count" c, pos_int "seed" s)
    | _ -> die "too many positional arguments"
  in
  (* Resume restores the case counter, totals and the exact master RNG
     stream, so the continued run visits the same remaining cases an
     uninterrupted run would have. *)
  let cases, seed, start_case, master, tv0, f0 =
    match !resume with
    | None -> (cases, seed, 1, Rng.create seed, 0, 0)
    | Some path -> (
        (match !ckpt_path with
        | Some "dmc-fuzz.ckpt.json" -> ckpt_path := Some path
        | _ -> ());
        match Dmc_util.Checkpoint.load path with
        | Error msg -> die (Printf.sprintf "cannot resume from %s: %s" path msg)
        | Ok ckpt ->
            let get field conv =
              match Option.bind (J.mem ckpt field) conv with
              | Some v -> v
              | None ->
                  die (Printf.sprintf "%s: missing or bad field %S" path field)
            in
            (match Option.bind (J.mem ckpt "kind") J.as_string with
            | Some "dmc-fuzz" -> ()
            | _ -> die (path ^ ": not a dmc-fuzz checkpoint"));
            let master =
              match Rng.restore (get "rng" J.as_string) with
              | Some g -> g
              | None -> die (path ^ ": corrupt RNG state")
            in
            ( get "cases" J.as_int,
              get "seed" J.as_int,
              get "next_case" J.as_int,
              master,
              get "total_vertices" J.as_int,
              get "failures" J.as_int ))
  in
  if start_case > 1 then
    Printf.eprintf "fuzz: resuming at case %d/%d\n%!" start_case cases;
  (* Graceful shutdown: the first SIGINT/SIGTERM stops dispatching,
     reaps any workers, keeps the last checkpoint and exits with a
     distinct code; a second one exits immediately. *)
  let interrupted = ref None in
  let install_signal s =
    Sys.set_signal s
      (Sys.Signal_handle
         (fun _ ->
           match !interrupted with
           | Some _ -> exit (if s = Sys.sigterm then 143 else 130)
           | None -> interrupted := Some s))
  in
  install_signal Sys.sigint;
  install_signal Sys.sigterm;
  let deadline = Option.map (fun t -> Dmc_util.Budget.now () +. t) !timeout in
  let total_vertices = ref tv0 in
  let failures = ref f0 in
  let record ~case ~case_seed ~family ~s ~n check msg =
    incr failures;
    let repro = write_repro ~case ~seed ~case_seed ~family ~s ~n ~check msg in
    Printf.printf "VIOLATION in case %d (seed %d): %s [reproducer: %s]\n%!"
      case case_seed msg repro
  in
  let checkpoint_after ~next_case ~rng =
    Option.iter
      (fun path ->
        Dmc_util.Checkpoint.write path
          (fuzz_checkpoint ~cases ~seed ~next_case ~rng
             ~total_vertices:!total_vertices ~failures:!failures))
      !ckpt_path
  in
  let stopped_at = ref None in
  (if !jobs > 1 then begin
     (* Supervised pool: one forked worker per case, results committed
        in case order.  Case seeds are drawn from the master stream at
        dispatch time, with the post-draw state snapshotted per case so
        every checkpoint resumes the exact stream. *)
     let module Pool = Dmc_runtime.Pool in
     let n_remaining = cases - start_case + 1 in
     if n_remaining > 0 then begin
       let seeds = Array.make n_remaining (0, "") in
       for k = 0 to n_remaining - 1 do
         let case_seed = Rng.next master in
         seeds.(k) <- (case_seed, Rng.save master)
       done;
       let worker _ k =
         let case_seed, _ = seeds.(k) in
         match run_case ~case_seed with
         | Ok n -> Ok (J.Obj [ ("n", J.Int n) ])
         | Error (check, msg, family, s, n) ->
             Ok
               (J.Obj
                  [
                    ("check", J.String check);
                    ("msg", J.String msg);
                    ("family", J.String family);
                    ("s", J.opt (fun v -> J.Int v) s);
                    ("n", J.opt (fun v -> J.Int v) n);
                  ])
       in
       let on_result k outcome =
         let case = start_case + k in
         let case_seed, rng = seeds.(k) in
         (match outcome.Pool.verdict with
         | Pool.Done payload -> (
             let field f conv = Option.bind (J.mem payload f) conv in
             match field "check" J.as_string with
             | Some check ->
                 let str f = Option.value ~default:"?" (field f J.as_string) in
                 record ~case ~case_seed ~family:(str "family")
                   ~s:(field "s" J.as_int) ~n:(field "n" J.as_int) check
                   (str "msg")
             | None -> (
                 match field "n" J.as_int with
                 | Some n -> total_vertices := !total_vertices + n
                 | None ->
                     record ~case ~case_seed ~family:"?" ~s:None ~n:None
                       "worker-protocol" "result frame lacks n"))
         | v ->
             (* The child died before it could persist anything, so the
                supervisor emits the reproducer: case index + seeds are
                enough to replay the case deterministically. *)
             record ~case ~case_seed ~family:"?" ~s:None ~n:None "worker"
               (Pool.verdict_to_string v));
         checkpoint_after ~next_case:(case + 1) ~rng
       in
       let cfg =
         {
           Pool.default with
           jobs = !jobs;
           timeout = !job_timeout;
           max_retries = !retries;
           faults = Dmc_runtime.Fault.of_env () @ !cli_faults;
           should_stop = (fun () -> !interrupted <> None);
           accept_more =
             (fun () ->
               match deadline with
               | None -> true
               | Some d -> Dmc_util.Budget.now () <= d);
           on_progress =
             (if !progress then Some Dmc_runtime.Progress.draw else None);
         }
       in
       let outcomes =
         Pool.run cfg ~worker ~on_result (List.init n_remaining Fun.id)
       in
       if !progress then Dmc_runtime.Progress.clear ();
       let cancelled =
         Array.fold_left
           (fun acc o ->
             match o.Pool.verdict with
             | Pool.Engine_failure Dmc_util.Budget.Cancelled -> acc + 1
             | _ -> acc)
           0 outcomes
       in
       if cancelled > 0 then stopped_at := Some (cases - cancelled)
     end
   end
   else begin
     let i = ref start_case in
     let timed_out = ref false in
     while !i <= cases && not !timed_out && !interrupted = None do
       match deadline with
       | Some d when Dmc_util.Budget.now () > d -> timed_out := true
       | _ ->
           let case_seed = Rng.next master in
           (match run_case ~case_seed with
           | Ok n -> total_vertices := !total_vertices + n
           | Error (check, msg, family, s, n) ->
               record ~case:!i ~case_seed ~family ~s ~n check msg);
           incr i;
           checkpoint_after ~next_case:(!i) ~rng:(Rng.save master)
     done;
     if !timed_out || !interrupted <> None then stopped_at := Some (!i - 1)
   end);
  (match !trace with
  | Some path -> Dmc_obs.Export.write_chrome_trace path
  | None -> ());
  if !profile then print_string (Dmc_obs.Export.profile ());
  let resume_hint () =
    (* Only point at a checkpoint that actually exists: a run stopped
       before its first committed case never wrote one. *)
    match !ckpt_path with
    | Some p when Sys.file_exists p ->
        Printf.sprintf " (resume with --resume %s)" p
    | Some _ | None -> ""
  in
  (match (!interrupted, !stopped_at) with
  | Some _, Some at ->
      Printf.printf "fuzz: interrupted after %d/%d cases%s\n" at cases
        (resume_hint ())
  | Some _, None ->
      Printf.printf "fuzz: interrupted after %d/%d cases%s\n" cases cases
        (resume_hint ())
  | None, Some at ->
      Printf.printf "fuzz: timeout after %d/%d cases%s\n" at cases
        (resume_hint ())
  | None, None ->
      Printf.printf "fuzz: %d cases, %d vertices total, %d violation(s)\n" cases
        !total_vertices !failures);
  if Stdlib.( > ) !failures 0 then exit 1;
  match !interrupted with
  | Some s -> exit (if s = Sys.sigterm then 143 else 130)
  | None -> ()
