type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) value =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (key, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\": ";
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 value;
  Buffer.contents buf

let opt f = function None -> Null | Some x -> f x

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent parser over the string.         *)

exception Parse_error of int * string

let parse text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= len then fail "unterminated escape");
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > len then fail "truncated \\u escape";
            let hex = String.sub text !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* Checkpoints only ever escape control characters; render
               anything else as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let lexeme = String.sub text start (!pos - start) in
    let has c = String.contains lexeme c in
    if (not (has '.')) && (not (has 'e')) && not (has 'E') then
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lexeme with
          | Some f -> Float f
          | None -> fail ("bad number: " ^ lexeme))
    else
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail ("bad number: " ^ lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let mem j key =
  match j with Obj fields -> List.assoc_opt key fields | _ -> None

let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None

let as_string = function String s -> Some s | _ -> None

let as_list = function List l -> Some l | _ -> None
