(* Atomic checkpoint writes.

   The temp file is created in the *destination's* directory, never in
   TMPDIR: rename(2) is only atomic within one filesystem, and a
   TMPDIR-honoring scratch path (Filename.temp_file's default) can sit
   on a different mount than the checkpoint, turning the final rename
   into an EXDEV failure.  open_temp_file with an explicit ~temp_dir
   also gives each writer a unique name, so two processes
   checkpointing to the same path never clobber each other's
   half-written temp. *)

let write path json =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path ^ ".") ".tmp"
  in
  match
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string json);
        output_char oc '\n';
        (* fsync before the rename: rename(2) orders the directory
           entry, not the data blocks, so a crash right after the
           rename could otherwise expose a truncated or empty file
           under the final name. *)
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Json.parse text
  | exception Sys_error msg -> Error msg
