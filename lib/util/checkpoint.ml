let write path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Json.parse text
  | exception Sys_error msg -> Error msg
