(* Atomic checkpoint writes.

   The temp file is created in the *destination's* directory, never in
   TMPDIR: rename(2) is only atomic within one filesystem, and a
   TMPDIR-honoring scratch path (Filename.temp_file's default) can sit
   on a different mount than the checkpoint, turning the final rename
   into an EXDEV failure.  open_temp_file with an explicit ~temp_dir
   also gives each writer a unique name, so two processes
   checkpointing to the same path never clobber each other's
   half-written temp. *)

(* A SIGKILL (or power loss) between temp-write and rename strands the
   temp file under the destination name's prefix forever — nothing ever
   renames or deletes it.  Each writer therefore sweeps its
   predecessors' orphans: files matching our own naming scheme
   ([basename.<random>.tmp], exactly what [open_temp_file] below
   produces) that are older than [max_age].  The age floor keeps a
   sweep from deleting the temp a concurrent writer is fsyncing right
   now — a live write-and-rename takes milliseconds, not minutes. *)
let default_max_age = 600.

let is_orphan ~base name =
  let prefix = base ^ "." and suffix = ".tmp" in
  let lp = String.length prefix and ls = String.length suffix in
  String.length name > lp + ls
  && String.sub name 0 lp = prefix
  && String.sub name (String.length name - ls) ls = suffix

let sweep_orphans ?(max_age = default_max_age) path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let cutoff = Unix.gettimeofday () -. max_age in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun removed name ->
          if not (is_orphan ~base name) then removed
          else
            let full = Filename.concat dir name in
            match Unix.stat full with
            | exception Unix.Unix_error _ -> removed
            | st ->
                if st.Unix.st_kind = Unix.S_REG && st.Unix.st_mtime <= cutoff
                then (
                  match Sys.remove full with
                  | () -> removed + 1
                  | exception Sys_error _ -> removed)
                else removed)
        0 names

let write path json =
  ignore (sweep_orphans path : int);
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path ^ ".") ".tmp"
  in
  match
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string json);
        output_char oc '\n';
        (* fsync before the rename: rename(2) orders the directory
           entry, not the data blocks, so a crash right after the
           rename could otherwise expose a truncated or empty file
           under the final name. *)
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Json.parse text
  | exception Sys_error msg -> Error msg
