(** A minimal JSON emitter and parser for machine-readable reports and
    checkpoint files.

    Only what the CLI needs: objects, arrays, strings (escaped),
    numbers, booleans and null, rendered compactly or indented, plus a
    small recursive-descent parser and typed accessors for reading
    checkpoints back.  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default [true]) pretty-prints with two-space nesting.
    Floats are rendered with [%.17g] (round-trippable); NaN and
    infinities become [null] (JSON has no lexemes for them). *)

val opt : ('a -> t) -> 'a option -> t
(** [None] becomes [Null]. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parse one JSON value (with optional surrounding whitespace).
    Numbers without [.]/[e] that fit an OCaml [int] parse as [Int],
    everything else as [Float].  Errors carry a character offset. *)

(** {1 Typed accessors}

    All return [None] on a shape mismatch, so checkpoint readers can
    validate with [Option.bind] chains instead of exceptions. *)

val mem : t -> string -> t option
(** Field of an [Obj] ([None] for missing fields or non-objects). *)

val as_int : t -> int option

val as_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val as_bool : t -> bool option

val as_string : t -> string option

val as_list : t -> t list option
