(** Atomic JSON checkpoint files for the long-running drivers.

    [dmc experiment] and the fuzzer periodically persist their progress
    (completed cases, RNG state, partial outputs) so that a killed run
    can be resumed with [--resume].  Writes go through a temporary file
    and a rename, so a crash mid-write never leaves a truncated
    checkpoint behind — the previous one survives intact. *)

val write : string -> Json.t -> unit
(** [write path json] serializes [json] to [path ^ ".tmp"] and renames
    it over [path].  Raises [Sys_error] on I/O failure (the drivers
    treat a failed checkpoint as fatal rather than silently losing
    progress). *)

val load : string -> (Json.t, string) result
(** Read and parse a checkpoint; [Error] describes a missing,
    unreadable or malformed file. *)
