(** Atomic JSON checkpoint files for the long-running drivers.

    [dmc experiment] and the fuzzer periodically persist their progress
    (completed cases, RNG state, partial outputs) so that a killed run
    can be resumed with [--resume].  Writes go through a temporary file
    and a rename, so a crash mid-write never leaves a truncated
    checkpoint behind — the previous one survives intact. *)

val write : string -> Json.t -> unit
(** [write path json] serializes [json] to a uniquely named temporary
    file {e in [path]'s own directory} and renames it over [path].
    The temp never goes to [TMPDIR]: rename is only atomic within one
    filesystem, and a TMPDIR on another mount would turn the final
    rename into an [EXDEV] failure.  Raises [Sys_error] on I/O failure
    (the drivers treat a failed checkpoint as fatal rather than
    silently losing progress); the temp file is removed on the error
    path. *)

val load : string -> (Json.t, string) result
(** Read and parse a checkpoint; [Error] describes a missing,
    unreadable or malformed file. *)
