(** Atomic JSON checkpoint files for the long-running drivers.

    [dmc experiment] and the fuzzer periodically persist their progress
    (completed cases, RNG state, partial outputs) so that a killed run
    can be resumed with [--resume].  Writes go through a temporary file
    and a rename, so a crash mid-write never leaves a truncated
    checkpoint behind — the previous one survives intact. *)

val write : string -> Json.t -> unit
(** [write path json] serializes [json] to a uniquely named temporary
    file {e in [path]'s own directory} and renames it over [path].
    The temp never goes to [TMPDIR]: rename is only atomic within one
    filesystem, and a TMPDIR on another mount would turn the final
    rename into an [EXDEV] failure.  Raises [Sys_error] on I/O failure
    (the drivers treat a failed checkpoint as fatal rather than
    silently losing progress); the temp file is removed on the error
    path.  Before writing, stale orphaned temps for the same [path]
    are swept (see {!sweep_orphans}), so a SIGKILLed predecessor
    cannot accumulate [*.tmp] litter forever. *)

val sweep_orphans : ?max_age:float -> string -> int
(** [sweep_orphans path] removes temp files stranded next to [path] by
    a writer killed between temp-write and rename: regular files in
    [path]'s directory matching this module's own naming scheme
    ([basename.<unique>.tmp]) whose mtime is older than [max_age]
    seconds (default 600).  The age floor protects a concurrent
    writer's live temp.  Returns the number of files removed; unstattable
    or unremovable entries (and an unreadable directory) are skipped
    silently — sweeping is best-effort hygiene, never a failure
    reason.  Called automatically by {!write}; exposed for daemons
    that want to sweep on startup before their first checkpoint. *)

val load : string -> (Json.t, string) result
(** Read and parse a checkpoint; [Error] describes a missing,
    unreadable or malformed file. *)
