(* SplitMix64, truncated to OCaml's 63-bit native ints.  The constants
   are the reference ones from Steele, Lea & Flood (OOPSLA'14). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_i64 g =
  g.state <- Int64.add g.state golden;
  mix g.state

let split g =
  let child_seed = next_i64 g in
  { state = child_seed }

let next g = Int64.to_int (Int64.shift_right_logical (next_i64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next g mod n

let float g x = Int64.to_float (Int64.shift_right_logical (next_i64 g) 11)
                /. 9007199254740992.0 *. x

let bool g = Int64.logand (next_i64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let save g = Printf.sprintf "%016Lx" g.state

let restore token =
  if String.length token <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ token) with
    | Some state -> Some { state }
    | None -> None
