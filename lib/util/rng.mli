(** Deterministic splittable PRNG (SplitMix64).

    Every randomized component in the repository (random CDAG
    generators, sampled wavefront heuristics, property-test fixtures)
    draws from this generator so that runs are reproducible from a
    single seed, independent of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** Independent child stream; advances the parent. *)

val next : t -> int
(** Uniform 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int g n] is uniform in [0 .. n-1]; requires [n > 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [0, x). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val save : t -> string
(** The full internal state as a hex token, for checkpoint files.
    [restore (save g)] continues the exact stream [g] would have
    produced. *)

val restore : string -> t option
(** Rebuild a generator from {!save}'s token; [None] on a malformed
    token. *)
