type read_error =
  | Closed
  | Bad_header of string
  | Oversized of int
  | Truncated of { expected : int; got : int }
  | Timed_out of { expected : int; got : int }
  | Malformed of string

(* A corrupted or hostile length prefix must never drive a giant
   allocation: [parse_header] checks against this cap before any
   payload buffer is created, and the supervisor maps the resulting
   [Oversized] error to [Worker_protocol_error].  256 MiB comfortably
   fits any real result frame (including a worker's full span/counter
   snapshot) while bounding the damage of an 8-f header. *)
let max_frame_bytes = 256 * 1024 * 1024

let read_error_to_string = function
  | Closed -> "peer closed the pipe without writing a frame"
  | Bad_header h -> Printf.sprintf "frame header is not hex: %S" h
  | Oversized n ->
      Printf.sprintf "declared frame length %d exceeds the %d-byte limit" n
        max_frame_bytes
  | Truncated { expected; got } ->
      Printf.sprintf "frame truncated: expected %d bytes, got %d" expected got
  | Timed_out { expected; got } ->
      Printf.sprintf
        "frame stalled past its read deadline: expected %d bytes, got %d"
        expected got
  | Malformed msg -> "frame payload is not JSON: " ^ msg

let header_bytes = 8

let encode_frame json =
  let payload = Json.to_string ~indent:false json in
  Printf.sprintf "%08x%s" (String.length payload) payload

(* Writes and reads retry on EINTR: the supervisor installs SIGINT /
   SIGCHLD handlers, so any blocking syscall can be interrupted. *)
let rec write_all fd buf pos len =
  if len > 0 then
    match Unix.write_substring fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len

let write_frame fd json =
  let frame = encode_frame json in
  write_all fd frame 0 (String.length frame)

(* Read exactly [len] bytes.  A short count is EOF; with a [deadline],
   a descriptor that stays unreadable past it is a stall — the two are
   distinguished so a peer that died mid-frame and a peer that is
   merely dribbling bytes (slow loris) each get their own typed
   error. *)
type exact = Full of string | Eof of int | Stalled of int

let read_exact ?deadline fd len =
  let buf = Bytes.create len in
  let ready () =
    match deadline with
    | None -> true
    | Some d ->
        let rec wait () =
          let remaining = d -. Unix.gettimeofday () in
          if remaining <= 0. then false
          else
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> false
            | _ :: _, _, _ -> true
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ()
  in
  let rec go pos =
    if pos >= len then Full (Bytes.to_string buf)
    else if not (ready ()) then Stalled pos
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> Eof pos
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let parse_header h =
  let ok = ref (String.length h = header_bytes) in
  String.iter
    (fun c -> ok := !ok && ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    h;
  if not !ok then Error (Bad_header h)
  else
    let n = int_of_string ("0x" ^ h) in
    if n > max_frame_bytes then Error (Oversized n) else Ok n

let parse_payload payload =
  match Json.parse payload with
  | Ok v -> Ok v
  | Error msg -> Error (Malformed msg)

let read_frame ?deadline fd =
  match read_exact ?deadline fd header_bytes with
  | Eof 0 -> Error Closed
  | Eof got -> Error (Truncated { expected = header_bytes; got })
  | Stalled got -> Error (Timed_out { expected = header_bytes; got })
  | Full h -> (
      match parse_header h with
      | Error e -> Error e
      | Ok len -> (
          match read_exact ?deadline fd len with
          | Eof got -> Error (Truncated { expected = len; got })
          | Stalled got -> Error (Timed_out { expected = len; got })
          | Full payload -> parse_payload payload))

let decode_frame s =
  let total = String.length s in
  if total = 0 then Error Closed
  else if total < header_bytes then
    Error (Truncated { expected = header_bytes; got = total })
  else
    match parse_header (String.sub s 0 header_bytes) with
    | Error e -> Error e
    | Ok len ->
        let avail = total - header_bytes in
        if avail < len then Error (Truncated { expected = len; got = avail })
        else if avail > len then
          Error
            (Malformed
               (Printf.sprintf "%d trailing bytes after the frame" (avail - len)))
        else parse_payload (String.sub s header_bytes len)
