(** Plain-text table rendering for the experiment reports.

    Produces aligned, `|`-separated tables matching what the paper's
    evaluation section reports, suitable for terminals and log files. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** New table; column count is fixed by [headers]. *)

val set_align : t -> align list -> unit
(** Per-column alignment; defaults to [Left] everywhere.  Lists shorter
    than the column count leave the remaining columns unchanged. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header
    width. *)

val add_rule : t -> unit
(** Insert a horizontal rule between the rows added so far and the
    next ones. *)

val render : t -> string
(** Full table as a string, with a trailing newline. *)

val print : t -> unit
(** [render] to stdout. *)

(** Structural accessors, so a table can be serialized (the report IR
    stores tables as data and must rebuild them byte-identically). *)

val headers : t -> string list

val aligns : t -> align list
(** One entry per column, in column order. *)

val body : t -> [ `Row of string list | `Rule ] list
(** Rows and rules in insertion order. *)

(** Formatting helpers shared by the report code. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point with [digits] decimals (default 4). *)

val fmt_sci : float -> string
(** Scientific notation with 3 significant decimals. *)

val fmt_int : int -> string
(** Decimal with thin thousands separators (e.g. ["12_345"]). *)
