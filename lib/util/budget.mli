(** Resource governance for the exhaustive engines.

    Every exponential search in the toolkit (optimal pebble games,
    S-span, S-partition enumeration, repeated max-flows) runs under a
    {!t}: a guard combining a wall-clock deadline, a search-node
    budget, and a cooperative cancellation hook.  Engines call {!tick}
    from their inner loops; when a resource runs out the tick raises
    {!Exhausted}, which the result-typed wrappers in
    [Dmc_core.Bounds.Engine] turn into an [Error].

    The same module owns the shared failure taxonomy, so that a
    timeout, an exhausted node budget, a graph that is structurally too
    large, invalid input, and a broken internal invariant are
    distinguishable everywhere — in the CLI status columns, in the
    checkpoints, and in the fuzzer's reproducer files. *)

type failure =
  | Timeout  (** the wall-clock deadline passed mid-search *)
  | Budget_exhausted  (** the node/state budget ran out *)
  | Cancelled  (** the cooperative cancellation hook returned [true] *)
  | Too_large of string
      (** the instance is structurally beyond the engine's encodable
          range (e.g. more than 20 vertices for the packed-int games) *)
  | Invalid_input of string
      (** a precondition on the input failed (bad [s], convention
          violation, malformed file) *)
  | Internal of string
      (** an engine invariant broke — always a bug, never a resource
          condition *)

val failure_to_string : failure -> string
(** Short machine-friendly rendering: ["timeout"],
    ["budget-exhausted"], ["cancelled"], ["too-large: ..."],
    ["invalid-input: ..."], ["internal: ..."]. *)

val pp_failure : Format.formatter -> failure -> unit

val failure_of_string : string -> failure option
(** Exact inverse of {!failure_to_string}, for failures that crossed a
    process boundary (worker-pool result frames, checkpoint files).
    [None] on an unrecognized rendering. *)

exception Exhausted of failure
(** Raised by {!tick} ({!Timeout}, {!Budget_exhausted} or
    {!Cancelled} only). *)

exception Internal_error of { where : string; details : string }
(** An invariant violation with context (which engine, graph size,
    step...), distinguishable from resource exhaustion.  Raise it with
    {!internal_error}. *)

val internal_error : where:string -> ('a, unit, string, 'b) format4 -> 'a
(** [internal_error ~where fmt ...] raises {!Internal_error} with the
    formatted details. *)

val now : unit -> float
(** The wall clock the guard reads ([Unix.gettimeofday]); exposed so
    callers timing their own ladder rungs agree with the deadlines. *)

type t

val unlimited : t
(** Never exhausts.  [tick] on it still counts, so {!spent} works. *)

val create :
  ?deadline:float -> ?nodes:int -> ?cancel:(unit -> bool) -> unit -> t
(** A fresh guard.  [deadline] is in {e seconds from now} (wall
    clock); [nodes] caps the number of {!tick} calls; [cancel] is
    polled at the same cadence as the clock.  Omitted components are
    unlimited. *)

val tick : t -> unit
(** Account one unit of search work.  Raises {!Exhausted} when the
    node budget is spent, and — every few hundred ticks, to keep the
    fast path allocation-free — when the deadline has passed or
    [cancel] returns [true]. *)

val tick_n : t -> int -> unit
(** [tick_n b k] accounts [k] units at once — for engine steps whose
    cost is proportional to the graph size (a whole partition-validity
    check, say), so the deadline overshoot stays proportional to wall
    time rather than to step count.  [k <= 0] is a no-op. *)

val check : t -> failure option
(** Non-raising probe of the same conditions (checks the clock
    unconditionally). *)

val spent : t -> int
(** Ticks consumed so far. *)

val elapsed : t -> float
(** Seconds since {!create}. *)

val guard : ?budget:t -> (unit -> 'a) -> ('a, failure) result
(** Run a thunk, catching {!Exhausted} and {!Internal_error} (other
    exceptions propagate).  [budget] is only probed once up front, so
    an already-exhausted guard short-circuits. *)
