type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

(* Percentile over a weighted multiset, matching [percentile] on the
   expanded array exactly: a pair [(v, w)] stands for [w] copies of
   [v], the rank is [p/100 * (W - 1)] over the [W] virtual samples,
   and ranks falling between the last copy of one value and the first
   copy of the next interpolate linearly.  Integer weights keep the
   result bit-deterministic, which is what lets merged histogram
   quantiles stay byte-identical across [--jobs] widths. *)
let percentile_weighted pairs p =
  if Array.length pairs = 0 then invalid_arg "Stats.percentile_weighted: empty";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_weighted: p out of range";
  let pairs = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0 then invalid_arg "Stats.percentile_weighted: negative weight";
        acc + w)
      0 pairs
  in
  if total = 0 then invalid_arg "Stats.percentile_weighted: zero total weight";
  let rank = p /. 100.0 *. float_of_int (total - 1) in
  let lo_rank = int_of_float (Float.floor rank) in
  let frac = rank -. float_of_int lo_rank in
  (* value of the virtual sample at integer rank r (0-based) *)
  let value_at r =
    let r = min r (total - 1) in
    let rec go i cum =
      let _, w = pairs.(i) in
      if r < cum + w then fst pairs.(i) else go (i + 1) (cum + w)
    in
    go 0 0
  in
  let lo = value_at lo_rank and hi = value_at (lo_rank + 1) in
  (lo *. (1.0 -. frac)) +. (hi *. frac)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let n = Array.length xs in
  let m = mean xs in
  let var =
    if n < 2 then 0.0
    else
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (n - 1)
  in
  {
    n;
    mean = m;
    stddev = sqrt var;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.0;
  }

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (Array.length xs))

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.median s.max
