(** Summary statistics over float samples, used by the benchmark
    harness and the validation experiments to report tightness ratios
    between lower bounds and measured I/O. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;   (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float

val geomean : float array -> float
(** Geometric mean; requires strictly positive samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], by linear interpolation on
    the sorted samples. *)

val percentile_weighted : (float * int) array -> float -> float
(** [percentile_weighted pairs p]: the same interpolation as
    {!percentile} over the multiset in which each [(value, weight)]
    pair stands for [weight] copies of [value] — without materializing
    it.  How {!Dmc_obs} histograms turn merged bucket counts into
    p50/p90/p99.  Raises [Invalid_argument] on an empty array, a
    negative weight or an all-zero total weight. *)

val pp_summary : Format.formatter -> summary -> unit
