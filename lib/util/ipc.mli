(** Length-prefixed JSON framing over file descriptors.

    The supervised worker pool ({!Dmc_runtime}) speaks this protocol
    over anonymous pipes: each message is one JSON value encoded
    compactly and prefixed with an 8-digit lowercase-hex byte length.
    The fixed-width textual header keeps frames trivially debuggable
    ([xxd] on a captured pipe shows the structure) while still letting
    the reader allocate exactly once per frame.

    Reads classify every way a frame can be broken — a closed pipe, a
    header that is not hex, a length beyond {!max_frame_bytes}, a
    payload cut short, or bytes that are not JSON — so the supervisor
    can turn each into a precise protocol-error verdict instead of a
    parse exception. *)

type read_error =
  | Closed  (** EOF before any header byte: the peer wrote nothing. *)
  | Bad_header of string  (** the 8 header bytes are not lowercase hex *)
  | Oversized of int  (** declared length exceeds {!max_frame_bytes} *)
  | Truncated of { expected : int; got : int }
      (** EOF mid-header or mid-payload: the peer died (or closed)
          partway through a frame *)
  | Timed_out of { expected : int; got : int }
      (** the [deadline] passed mid-frame: the peer is alive but
          dribbling bytes too slowly (only with [read_frame ~deadline]) *)
  | Malformed of string  (** payload is not parseable JSON *)

val read_error_to_string : read_error -> string

val header_bytes : int
(** Fixed width of the hex length prefix (8). *)

val parse_header : string -> (int, read_error) result
(** Validate exactly {!header_bytes} bytes of lowercase hex and return
    the declared payload length.  [Bad_header] on non-hex,
    [Oversized] past {!max_frame_bytes}.  Exposed so the pool
    supervisor can split frames incrementally out of a drain buffer
    (heartbeats arrive interleaved with the result frame). *)

val parse_payload : string -> (Json.t, read_error) result
(** Parse a complete payload; [Malformed] when it is not JSON. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (256 MiB) — checked before any
    payload buffer is allocated, so a garbage or hostile header cannot
    make the reader allocate unboundedly.  The pool supervisor surfaces
    the resulting {!Oversized} error as a [Worker_protocol_error]
    verdict. *)

val write_frame : Unix.file_descr -> Json.t -> unit
(** Encode compactly, prefix the hex length, write fully (retrying on
    [EINTR] and short writes).  Raises [Unix.Unix_error] on a broken
    pipe — callers decide whether that is fatal. *)

val read_frame : ?deadline:float -> Unix.file_descr -> (Json.t, read_error) result
(** Read exactly one frame, blocking until it is complete or the peer
    closes the descriptor.  [deadline] is an absolute
    [Unix.gettimeofday] instant: past it an incomplete frame surfaces
    as {!Timed_out} carrying the expected/received byte counts — the
    slow-loris defence the bound-query daemon runs every connection
    read under — instead of blocking forever. *)

val decode_frame : string -> (Json.t, read_error) result
(** Parse one complete frame from an already-buffered byte string —
    what the pool supervisor uses after draining a worker's pipe
    asynchronously.  The string must contain exactly one frame;
    trailing bytes are a {!Malformed} error. *)

val encode_frame : Json.t -> string
(** The exact bytes {!write_frame} would send. *)
