type failure =
  | Timeout
  | Budget_exhausted
  | Cancelled
  | Too_large of string
  | Invalid_input of string
  | Internal of string

let failure_to_string = function
  | Timeout -> "timeout"
  | Budget_exhausted -> "budget-exhausted"
  | Cancelled -> "cancelled"
  | Too_large m -> "too-large: " ^ m
  | Invalid_input m -> "invalid-input: " ^ m
  | Internal m -> "internal: " ^ m

let pp_failure ppf f = Format.pp_print_string ppf (failure_to_string f)

let failure_of_string s =
  let tagged tag =
    let prefix = tag ^ ": " in
    let lp = String.length prefix in
    if String.length s >= lp && String.sub s 0 lp = prefix then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match s with
  | "timeout" -> Some Timeout
  | "budget-exhausted" -> Some Budget_exhausted
  | "cancelled" -> Some Cancelled
  | _ -> (
      match tagged "too-large" with
      | Some m -> Some (Too_large m)
      | None -> (
          match tagged "invalid-input" with
          | Some m -> Some (Invalid_input m)
          | None -> (
              match tagged "internal" with
              | Some m -> Some (Internal m)
              | None -> None)))

exception Exhausted of failure

exception Internal_error of { where : string; details : string }

let () =
  Printexc.register_printer (function
    | Exhausted f -> Some ("Budget.Exhausted: " ^ failure_to_string f)
    | Internal_error { where; details } ->
        Some (Printf.sprintf "Internal_error at %s: %s" where details)
    | _ -> None)

let internal_error ~where fmt =
  Printf.ksprintf (fun details -> raise (Internal_error { where; details })) fmt

type t = {
  deadline : float option;  (* absolute gettimeofday *)
  started : float;
  cancel : unit -> bool;
  mutable nodes_left : int;  (* max_int means unlimited *)
  mutable ticks : int;
}

(* How often [tick] consults the clock and the cancellation hook.  The
   engines tick once per search node, so this keeps the fast path at a
   couple of memory operations while still bounding the overshoot past
   a deadline to a few hundred node expansions. *)
let clock_period = 256

let no_cancel () = false

let now () = Unix.gettimeofday ()

let create ?deadline ?nodes ?cancel () =
  let started = now () in
  {
    deadline = Option.map (fun d -> started +. d) deadline;
    started;
    cancel = Option.value cancel ~default:no_cancel;
    nodes_left = (match nodes with Some n -> max 0 n | None -> max_int);
    ticks = 0;
  }

let unlimited = create ()

let over_deadline b =
  match b.deadline with None -> false | Some d -> now () > d

let check b =
  if b.nodes_left <= 0 then Some Budget_exhausted
  else if over_deadline b then Some Timeout
  else if b.cancel () then Some Cancelled
  else None

let tick b =
  b.ticks <- b.ticks + 1;
  if b.nodes_left <> max_int then begin
    b.nodes_left <- b.nodes_left - 1;
    if b.nodes_left <= 0 then raise (Exhausted Budget_exhausted)
  end;
  if b.ticks mod clock_period = 0 then begin
    if over_deadline b then raise (Exhausted Timeout);
    if b.cancel () then raise (Exhausted Cancelled)
  end

let tick_n b k =
  if k > 0 then begin
    let before = b.ticks in
    b.ticks <- b.ticks + k;
    if b.nodes_left <> max_int then begin
      b.nodes_left <- b.nodes_left - k;
      if b.nodes_left <= 0 then raise (Exhausted Budget_exhausted)
    end;
    if b.ticks / clock_period > before / clock_period then begin
      if over_deadline b then raise (Exhausted Timeout);
      if b.cancel () then raise (Exhausted Cancelled)
    end
  end

let spent b = b.ticks

let elapsed b = now () -. b.started

let guard ?budget f =
  let precheck = match budget with None -> None | Some b -> check b in
  match precheck with
  | Some failure -> Error failure
  | None -> (
      try Ok (f ()) with
      | Exhausted failure -> Error failure
      | Internal_error { where; details } ->
          Error (Internal (where ^ ": " ^ details)))
