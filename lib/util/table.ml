type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ~headers =
  let ncols = List.length headers in
  { headers; ncols; aligns = Array.make ncols Left; lines = [] }

let set_align t aligns =
  List.iteri (fun i a -> if i < t.ncols then t.aligns.(i) <- a) aligns

let add_row t row =
  if List.length row <> t.ncols then invalid_arg "Table.add_row: width mismatch";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let lines = List.rev t.lines in
  let widths = Array.make t.ncols 0 in
  let measure row =
    List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row
  in
  measure t.headers;
  List.iter (function Row r -> measure r | Rule -> ()) lines;
  let buf = Buffer.create 256 in
  let render_row ?(aligned = true) row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i s ->
        let a = if aligned then t.aligns.(i) else Left in
        Buffer.add_string buf (pad a widths.(i) s);
        Buffer.add_string buf (if i = t.ncols - 1 then " |" else " | "))
      row;
    Buffer.add_char buf '\n'
  in
  let render_rule () =
    Buffer.add_string buf "|";
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_string buf "|")
      widths;
    Buffer.add_char buf '\n'
  in
  render_row ~aligned:false t.headers;
  render_rule ();
  List.iter (function Row r -> render_row r | Rule -> render_rule ()) lines;
  Buffer.contents buf

let print t = print_string (render t)

let headers t = t.headers

let aligns t = Array.to_list t.aligns

let body t =
  List.rev_map (function Row r -> `Row r | Rule -> `Rule) t.lines

let fmt_float ?(digits = 4) x = Printf.sprintf "%.*f" digits x

let fmt_sci x = Printf.sprintf "%.3e" x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
