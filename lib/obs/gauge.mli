(** Last-value gauges (heap words, resident set size).

    Gauges measure {e state}, not work, so they are deliberately
    excluded from the cross-width determinism contract: two runs of the
    same workload may report different heap sizes.  Merging a worker
    snapshot takes the maximum, which is commutative, so merge order
    still cannot affect the result.

    The built-in [gc.*] gauges are refreshed automatically from
    [Gc.quick_stat] at every span close; see {!Registry.sample_gc}. *)

type t = Registry.gauge

val make : string -> t
(** Find or create the gauge registered under this name. *)

val set : t -> float -> unit
(** Record the current value.  No-op when instrumentation is
    disabled. *)

val get : t -> float
(** Last recorded value, [0.] if never set. *)

val is_set : t -> bool
