(** Log-bucketed histograms of non-negative integer observations
    (cut sizes, path lengths, eviction distances).

    Like counters, histograms record {e work}, not time: the bucket
    counts, sum and observation count are all ints, merging across the
    pool fork boundary is bucket-wise addition, and the derived
    quantiles are a pure function of the merged state — so profiles
    stay byte-identical across [--jobs] widths.

    [observe] is gated on the registry's enabled flag and costs a load
    and a branch when instrumentation is off. *)

type t = Registry.histogram

val make : string -> t
(** Find or create the histogram registered under this name.
    Idempotent, like {!Registry.counter}. *)

val observe : t -> int -> unit
(** Record one observation.  Negative values clamp to 0.  No-op when
    instrumentation is disabled. *)

val count : t -> int
(** Number of observations. *)

val sum : t -> int
(** Sum of all observed values (exact). *)

val mean : t -> float
(** [sum / count], or [0.] when empty. *)

val percentile : t -> float -> float
(** [percentile h p] with [p] in [0,100]: interpolated quantile over
    bucket midpoints weighted by bucket counts, via
    {!Dmc_util.Stats.percentile_weighted}.  Raises [Invalid_argument]
    when the histogram is empty. *)
