open Dmc_util

let counters_table () =
  let t = Table.create ~headers:[ "counter"; "value" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  let _ =
    Registry.fold_counters
      (fun () c ->
        Table.add_row t [ c.Registry.c_name; Table.fmt_int c.Registry.c_value ])
      ()
  in
  Table.render t

(* Aggregate completed spans by name: count, total and mean duration.
   The count column is deterministic (it counts calls, not time); the
   millisecond columns are wall-clock and vary run to run, which is why
   [profile] prints counters and spans as separate sections. *)
let span_aggregate () =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  Registry.iter_events (fun e ->
      match Hashtbl.find_opt tbl e.Registry.ev_name with
      | Some (n, total) ->
          incr n;
          total := !total +. e.Registry.ev_dur
      | None -> Hashtbl.replace tbl e.Registry.ev_name (ref 1, ref e.Registry.ev_dur));
  Hashtbl.fold (fun name (n, total) acc -> (name, !n, !total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let spans_table () =
  let t = Table.create ~headers:[ "span"; "count"; "total ms"; "mean ms" ] in
  Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun (name, n, total_us) ->
      let total_ms = total_us /. 1e3 in
      Table.add_row t
        [
          name;
          Table.fmt_int n;
          Table.fmt_float ~digits:3 total_ms;
          Table.fmt_float ~digits:3 (total_ms /. float_of_int n);
        ])
    (span_aggregate ());
  Table.render t

let profile () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== profile: counters ==\n";
  Buffer.add_string b (counters_table ());
  Buffer.add_string b "== profile: spans ==\n";
  Buffer.add_string b (spans_table ());
  (match Registry.dropped () with
  | 0 -> ()
  | n -> Buffer.add_string b (Printf.sprintf "(%d spans dropped: buffer full)\n" n));
  Buffer.contents b

let to_json () =
  let open Json in
  let counters =
    List.rev
      (Registry.fold_counters
         (fun acc c -> (c.Registry.c_name, Int c.Registry.c_value) :: acc)
         [])
  in
  let spans =
    List.map
      (fun (name, n, total_us) ->
        Obj
          [
            ("name", String name);
            ("count", Int n);
            ("total_ms", Float (total_us /. 1e3));
          ])
      (span_aggregate ())
  in
  Obj
    [
      ("counters", Obj counters);
      ("spans", List spans);
      ("dropped", Int (Registry.dropped ()));
    ]

(* Chrome trace-event format: one complete ("ph":"X") slice per span,
   microsecond timestamps, one pid, tid 0 for the supervisor and
   [job+1] for spans merged from pool workers.  Loadable directly in
   chrome://tracing and Perfetto. *)
let chrome_trace () =
  let open Json in
  let tids = Hashtbl.create 8 in
  let slices = ref [] in
  Registry.iter_events (fun e ->
      Hashtbl.replace tids e.Registry.ev_tid ();
      slices :=
        Obj
          [
            ("name", String e.Registry.ev_name);
            ("cat", String "dmc");
            ("ph", String "X");
            ("ts", Float e.Registry.ev_ts);
            ("dur", Float e.Registry.ev_dur);
            ("pid", Int 0);
            ("tid", Int e.Registry.ev_tid);
            ( "args",
              Obj (List.map (fun (k, v) -> (k, String v)) e.Registry.ev_attrs) );
          ]
        :: !slices);
  let meta =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int 0);
        ("args", Obj [ ("name", String "dmc") ]);
      ]
    :: (Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
       |> List.sort compare
       |> List.map (fun tid ->
              let label = if tid = 0 then "main" else Printf.sprintf "job %d" (tid - 1) in
              Obj
                [
                  ("name", String "thread_name");
                  ("ph", String "M");
                  ("pid", Int 0);
                  ("tid", Int tid);
                  ("args", Obj [ ("name", String label) ]);
                ]))
  in
  Obj
    [
      ("traceEvents", List (meta @ List.rev !slices));
      ("displayTimeUnit", String "ms");
    ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:false (chrome_trace ()));
      output_char oc '\n')
