open Dmc_util

let counters_table () =
  let t = Table.create ~headers:[ "counter"; "value" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  let _ =
    Registry.fold_counters
      (fun () c ->
        Table.add_row t [ c.Registry.c_name; Table.fmt_int c.Registry.c_value ])
      ()
  in
  Table.render t

let histograms_table () =
  let t =
    Table.create ~headers:[ "histogram"; "n"; "mean"; "p50"; "p90"; "p99" ]
  in
  Table.set_align t
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  let _ =
    Registry.fold_histograms
      (fun () h ->
        if h.Registry.h_n > 0 then
          Table.add_row t
            [
              h.Registry.h_name;
              Table.fmt_int h.Registry.h_n;
              Table.fmt_float ~digits:2 (Histogram.mean h);
              Table.fmt_float ~digits:2 (Histogram.percentile h 50.0);
              Table.fmt_float ~digits:2 (Histogram.percentile h 90.0);
              Table.fmt_float ~digits:2 (Histogram.percentile h 99.0);
            ])
      ()
  in
  Table.render t

let gauges_table () =
  let t = Table.create ~headers:[ "gauge"; "value" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  let _ =
    Registry.fold_gauges
      (fun () g ->
        if g.Registry.g_set then
          Table.add_row t
            [ g.Registry.g_name; Table.fmt_float ~digits:0 g.Registry.g_value ])
      ()
  in
  Table.render t

(* Aggregate completed spans by name: count, total and mean duration.
   The count column is deterministic (it counts calls, not time); the
   millisecond columns are wall-clock and vary run to run, which is why
   [profile] prints counters and spans as separate sections. *)
let span_aggregate () =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  Registry.iter_events (fun e ->
      match Hashtbl.find_opt tbl e.Registry.ev_name with
      | Some (n, total) ->
          incr n;
          total := !total +. e.Registry.ev_dur
      | None -> Hashtbl.replace tbl e.Registry.ev_name (ref 1, ref e.Registry.ev_dur));
  Hashtbl.fold (fun name (n, total) acc -> (name, !n, !total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let spans_table () =
  let t = Table.create ~headers:[ "span"; "count"; "total ms"; "mean ms" ] in
  Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun (name, n, total_us) ->
      let total_ms = total_us /. 1e3 in
      Table.add_row t
        [
          name;
          Table.fmt_int n;
          Table.fmt_float ~digits:3 total_ms;
          Table.fmt_float ~digits:3 (total_ms /. float_of_int n);
        ])
    (span_aggregate ());
  Table.render t

(* Section order is part of the tooling contract: counters then
   histograms are deterministic work metrics (CI byte-compares that
   prefix across --jobs widths); gauges and spans that follow are
   wall-clock/memory and vary run to run. *)
let profile () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== profile: counters ==\n";
  Buffer.add_string b (counters_table ());
  Buffer.add_string b "== profile: histograms ==\n";
  Buffer.add_string b (histograms_table ());
  Buffer.add_string b "== profile: gauges ==\n";
  Buffer.add_string b (gauges_table ());
  Buffer.add_string b "== profile: spans ==\n";
  Buffer.add_string b (spans_table ());
  (match Registry.dropped () with
  | 0 -> ()
  | n -> Buffer.add_string b (Printf.sprintf "(%d spans dropped: buffer full)\n" n));
  Buffer.contents b

let to_json () =
  let open Json in
  let counters =
    List.rev
      (Registry.fold_counters
         (fun acc c -> (c.Registry.c_name, Int c.Registry.c_value) :: acc)
         [])
  in
  let spans =
    List.map
      (fun (name, n, total_us) ->
        Obj
          [
            ("name", String name);
            ("count", Int n);
            ("total_ms", Float (total_us /. 1e3));
          ])
      (span_aggregate ())
  in
  (* Every object below lists keys in a fixed order (fold_* iterate in
     name order, field keys are spelled out literally), so two baselines
     from identical runs diff cleanly line by line. *)
  let hists =
    List.rev
      (Registry.fold_histograms
         (fun acc h ->
           if h.Registry.h_n = 0 then acc
           else
             ( h.Registry.h_name,
               Obj
                 [
                   ("n", Int h.Registry.h_n);
                   ("sum", Int h.Registry.h_sum);
                   ("mean", Float (Histogram.mean h));
                   ("p50", Float (Histogram.percentile h 50.0));
                   ("p90", Float (Histogram.percentile h 90.0));
                   ("p99", Float (Histogram.percentile h 99.0));
                 ] )
             :: acc)
         [])
  in
  let gauges =
    List.rev
      (Registry.fold_gauges
         (fun acc g ->
           if g.Registry.g_set then (g.Registry.g_name, Float g.Registry.g_value) :: acc
           else acc)
         [])
  in
  Obj
    [
      ("counters", Obj counters);
      ("hists", Obj hists);
      ("gauges", Obj gauges);
      ("spans", List spans);
      ("dropped", Int (Registry.dropped ()));
    ]

(* Chrome trace-event format: one complete ("ph":"X") slice per span,
   microsecond timestamps, one pid, tid 0 for the supervisor and
   [job+1] for spans merged from pool workers.  Loadable directly in
   chrome://tracing and Perfetto. *)
let chrome_trace () =
  let open Json in
  let tids = Hashtbl.create 8 in
  let slices = ref [] in
  Registry.iter_events (fun e ->
      Hashtbl.replace tids e.Registry.ev_tid ();
      slices :=
        Obj
          [
            ("name", String e.Registry.ev_name);
            ("cat", String "dmc");
            ("ph", String "X");
            ("ts", Float e.Registry.ev_ts);
            ("dur", Float e.Registry.ev_dur);
            ("pid", Int 0);
            ("tid", Int e.Registry.ev_tid);
            ( "args",
              Obj (List.map (fun (k, v) -> (k, String v)) e.Registry.ev_attrs) );
          ]
        :: !slices);
  let meta =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int 0);
        ("args", Obj [ ("name", String "dmc") ]);
      ]
    :: (Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
       |> List.sort compare
       |> List.map (fun tid ->
              let label = if tid = 0 then "main" else Printf.sprintf "job %d" (tid - 1) in
              Obj
                [
                  ("name", String "thread_name");
                  ("ph", String "M");
                  ("pid", Int 0);
                  ("tid", Int tid);
                  ("args", Obj [ ("name", String label) ]);
                ]))
  in
  Obj
    [
      ("traceEvents", List (meta @ List.rev !slices));
      ("displayTimeUnit", String "ms");
    ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:false (chrome_trace ()));
      output_char oc '\n')
