open Dmc_util

let counters_table () =
  let t = Table.create ~headers:[ "counter"; "value" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  let _ =
    Registry.fold_counters
      (fun () c ->
        Table.add_row t [ c.Registry.c_name; Table.fmt_int c.Registry.c_value ])
      ()
  in
  Table.render t

let histograms_table () =
  let t =
    Table.create ~headers:[ "histogram"; "n"; "mean"; "p50"; "p90"; "p99" ]
  in
  Table.set_align t
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  let _ =
    Registry.fold_histograms
      (fun () h ->
        if h.Registry.h_n > 0 then
          Table.add_row t
            [
              h.Registry.h_name;
              Table.fmt_int h.Registry.h_n;
              Table.fmt_float ~digits:2 (Histogram.mean h);
              Table.fmt_float ~digits:2 (Histogram.percentile h 50.0);
              Table.fmt_float ~digits:2 (Histogram.percentile h 90.0);
              Table.fmt_float ~digits:2 (Histogram.percentile h 99.0);
            ])
      ()
  in
  Table.render t

let gauges_table () =
  let t = Table.create ~headers:[ "gauge"; "value" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  let _ =
    Registry.fold_gauges
      (fun () g ->
        if g.Registry.g_set then
          Table.add_row t
            [ g.Registry.g_name; Table.fmt_float ~digits:0 g.Registry.g_value ])
      ()
  in
  Table.render t

(* Aggregate completed spans by name: count, total and mean duration.
   The count column is deterministic (it counts calls, not time); the
   millisecond columns are wall-clock and vary run to run, which is why
   [profile] prints counters and spans as separate sections. *)
let span_aggregate () =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  Registry.iter_events (fun e ->
      match Hashtbl.find_opt tbl e.Registry.ev_name with
      | Some (n, total) ->
          incr n;
          total := !total +. e.Registry.ev_dur
      | None -> Hashtbl.replace tbl e.Registry.ev_name (ref 1, ref e.Registry.ev_dur));
  Hashtbl.fold (fun name (n, total) acc -> (name, !n, !total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let spans_table () =
  let t = Table.create ~headers:[ "span"; "count"; "total ms"; "mean ms" ] in
  Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun (name, n, total_us) ->
      let total_ms = total_us /. 1e3 in
      Table.add_row t
        [
          name;
          Table.fmt_int n;
          Table.fmt_float ~digits:3 total_ms;
          Table.fmt_float ~digits:3 (total_ms /. float_of_int n);
        ])
    (span_aggregate ());
  Table.render t

(* Section order is part of the tooling contract: counters then
   histograms are deterministic work metrics (CI byte-compares that
   prefix across --jobs widths); gauges and spans that follow are
   wall-clock/memory and vary run to run. *)
let profile () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== profile: counters ==\n";
  Buffer.add_string b (counters_table ());
  Buffer.add_string b "== profile: histograms ==\n";
  Buffer.add_string b (histograms_table ());
  Buffer.add_string b "== profile: gauges ==\n";
  Buffer.add_string b (gauges_table ());
  Buffer.add_string b "== profile: spans ==\n";
  Buffer.add_string b (spans_table ());
  (match Registry.dropped () with
  | 0 -> ()
  | n -> Buffer.add_string b (Printf.sprintf "(%d spans dropped: buffer full)\n" n));
  Buffer.contents b

let to_json () =
  let open Json in
  let counters =
    List.rev
      (Registry.fold_counters
         (fun acc c -> (c.Registry.c_name, Int c.Registry.c_value) :: acc)
         [])
  in
  let spans =
    List.map
      (fun (name, n, total_us) ->
        Obj
          [
            ("name", String name);
            ("count", Int n);
            ("total_ms", Float (total_us /. 1e3));
          ])
      (span_aggregate ())
  in
  (* Every object below lists keys in a fixed order (fold_* iterate in
     name order, field keys are spelled out literally), so two baselines
     from identical runs diff cleanly line by line. *)
  let hists =
    List.rev
      (Registry.fold_histograms
         (fun acc h ->
           if h.Registry.h_n = 0 then acc
           else
             ( h.Registry.h_name,
               Obj
                 [
                   ("n", Int h.Registry.h_n);
                   ("sum", Int h.Registry.h_sum);
                   ("mean", Float (Histogram.mean h));
                   ("p50", Float (Histogram.percentile h 50.0));
                   ("p90", Float (Histogram.percentile h 90.0));
                   ("p99", Float (Histogram.percentile h 99.0));
                 ] )
             :: acc)
         [])
  in
  let gauges =
    List.rev
      (Registry.fold_gauges
         (fun acc g ->
           if g.Registry.g_set then (g.Registry.g_name, Float g.Registry.g_value) :: acc
           else acc)
         [])
  in
  Obj
    [
      ("counters", Obj counters);
      ("hists", Obj hists);
      ("gauges", Obj gauges);
      ("spans", List spans);
      ("dropped", Int (Registry.dropped ()));
    ]

(* Prometheus text exposition (version 0.0.4): every metric name is
   sanitized into [a-zA-Z0-9_:] and prefixed [dmc_], counters render as
   [counter], gauges as [gauge], histograms as [summary] with
   quantile-labelled series plus [_sum]/[_count].  Scrapers sit behind
   [dmc query --metrics]; the rendering is deterministic (name order,
   fixed formats) so two snapshots of the same registry diff cleanly. *)
let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "dmc_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus () =
  let b = Buffer.create 4096 in
  let _ =
    Registry.fold_counters
      (fun () c ->
        let n = prom_name c.Registry.c_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string b (Printf.sprintf "%s %d\n" n c.Registry.c_value))
      ()
  in
  let _ =
    Registry.fold_histograms
      (fun () h ->
        if h.Registry.h_n > 0 then begin
          let n = prom_name h.Registry.h_name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
          List.iter
            (fun (q, p) ->
              Buffer.add_string b
                (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q
                   (prom_float (Histogram.percentile h p))))
            [ ("0.5", 50.0); ("0.9", 90.0); ("0.99", 99.0) ];
          Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n h.Registry.h_sum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.Registry.h_n)
        end)
      ()
  in
  let _ =
    Registry.fold_gauges
      (fun () g ->
        if g.Registry.g_set then begin
          let n = prom_name g.Registry.g_name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b
            (Printf.sprintf "%s %s\n" n (prom_float g.Registry.g_value))
        end)
      ()
  in
  Buffer.contents b

(* Chrome trace-event format: one complete ("ph":"X") slice per span,
   microsecond timestamps, one pid *lane* per source (0 = this
   process, one per remote host for merged fleet snapshots), tid 0 for
   the supervisor and [job+1] for spans merged from pool workers.
   Events carrying the attr [("ph", "i")] — lease grants, quarantines,
   re-shards — render as process-scoped instant events instead of
   slices.  Loadable directly in chrome://tracing and Perfetto. *)
let chrome_trace () =
  let open Json in
  let lanes = Hashtbl.create 8 in
  let slices = ref [] in
  Registry.iter_events (fun e ->
      let src = e.Registry.ev_src in
      Hashtbl.replace lanes (src, e.Registry.ev_tid) ();
      let instant = List.mem_assoc "ph" e.Registry.ev_attrs in
      let args =
        List.filter (fun (k, _) -> k <> "ph") e.Registry.ev_attrs
        |> List.map (fun (k, v) -> (k, String v))
      in
      let common =
        [
          ("name", String e.Registry.ev_name);
          ("cat", String "dmc");
          ("ts", Float e.Registry.ev_ts);
          ("pid", Int src);
          ("tid", Int e.Registry.ev_tid);
          ("args", Obj args);
        ]
      in
      let ev =
        if instant then
          Obj (("ph", String "i") :: ("s", String "p") :: common)
        else Obj (("ph", String "X") :: ("dur", Float e.Registry.ev_dur) :: common)
      in
      slices := ev :: !slices);
  let pids =
    Hashtbl.fold (fun (src, _) () acc -> src :: acc) lanes []
    |> List.sort_uniq compare
  in
  let pids = if List.mem 0 pids then pids else 0 :: pids in
  let proc_meta =
    List.map
      (fun pid ->
        let pname =
          match Registry.source_name pid with
          | Some n -> n
          | None -> Printf.sprintf "lane %d" pid
        in
        Obj
          [
            ("name", String "process_name");
            ("ph", String "M");
            ("pid", Int pid);
            ("args", Obj [ ("name", String pname) ]);
          ])
      pids
  in
  let thread_meta =
    Hashtbl.fold (fun lane () acc -> lane :: acc) lanes []
    |> List.sort compare
    |> List.map (fun (src, tid) ->
           let label = if tid = 0 then "main" else Printf.sprintf "job %d" (tid - 1) in
           Obj
             [
               ("name", String "thread_name");
               ("ph", String "M");
               ("pid", Int src);
               ("tid", Int tid);
               ("args", Obj [ ("name", String label) ]);
             ])
  in
  Obj
    [
      ("traceEvents", List (proc_meta @ thread_meta @ List.rev !slices));
      ("displayTimeUnit", String "ms");
    ]

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:false (chrome_trace ()));
      output_char oc '\n')
