type t = Registry.counter

let make = Registry.counter

let add c n =
  if !Registry.enabled then c.Registry.c_value <- c.Registry.c_value + n

let incr c =
  if !Registry.enabled then c.Registry.c_value <- c.Registry.c_value + 1

let set c n = if !Registry.enabled then c.Registry.c_value <- n
let value c = c.Registry.c_value
let name c = c.Registry.c_name
