(** Postmortem dumps of the flight-recorder ring.

    The crash side of fleet telemetry: when a pool attempt ends
    crashed, timed out or protocol-broken, the supervisor dumps the
    registry's bounded ring of recent moments ({!Registry.flight_note})
    plus a counter/gauge snapshot to a timestamped JSON file, so a
    quarantine can be diagnosed after the fleet has moved on.  The
    file shape is [{"kind": "dmc-postmortem", "v": 1, "reason", ...,
    "attrs": {...}, "flight": [{ts_us, kind, name, detail}...],
    "flight_total", "counters", "gauges", "dropped_spans"}]. *)

val version : int

val dump :
  reason:string -> attrs:(string * string) list -> unit -> Dmc_util.Json.t
(** The postmortem document for the registry's current state.
    [reason] is the verdict that triggered it (e.g.
    ["crashed: SIGKILL"]); [attrs] carries attempt context (job,
    attempt, host). *)

val write :
  dir:string ->
  slug:string ->
  reason:string ->
  attrs:(string * string) list ->
  unit ->
  (string, string) result
(** Write {!dump} atomically to
    [dir/postmortem-<unix_ms>-<slug>.json], creating [dir] if needed
    ([slug] is sanitized to filename-safe characters).  Returns the
    path, or [Error] with the failure — callers warn and carry on;
    a postmortem must never kill the supervisor. *)
