(** Hierarchical timed spans.

    [Span.with_ "spartition.search" ~attrs:[("s", "4")] f] times [f] on
    the registry's clamped-monotone clock and records a completed span
    on exit — {e including} exceptional exit, so a rung that dies with
    [Budget.Exhausted] still appears in the trace.  Nesting is implicit:
    spans opened inside [f] record a larger depth and, in the Chrome
    trace, sit under [f]'s slice.

    When instrumentation is disabled, [with_] is one ref load, one
    branch and a direct call of [f]. *)

val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. *)

val note : string -> string -> unit
(** [note key value] appends an attribute to the innermost open span —
    how the degradation ladder tags a rung span with its outcome and
    budget ticks after the fact.  A no-op when disabled or when no span
    is open. *)
