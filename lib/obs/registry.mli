(** Global-but-resettable instrumentation state.

    All of {!Dmc_obs} shares one registry: an enabled flag (the single
    load-and-branch every instrumentation site checks), a
    clamped-monotone wall clock, a name-keyed counter table and a
    bounded buffer of completed spans.  The registry is process-global
    on purpose — instrumentation must not thread a context value
    through every engine signature — but fully resettable, so tests and
    forked pool workers can start from a clean slate.

    Determinism contract: counters count {e work} (nodes expanded,
    augmenting paths, evictions), never time, so two identical runs —
    or the same jobs split across [--jobs 1] and [--jobs 2] workers —
    produce identical counter snapshots.  Only span timestamps and
    durations vary between runs. *)

type counter = { c_name : string; mutable c_value : int }
(** A registered counter.  Increment through {!Dmc_obs.Counter}, which
    honours the enabled flag — never mutate [c_value] directly. *)

type event = {
  ev_name : string;
  mutable ev_attrs : (string * string) list;
  mutable ev_ts : float;  (** microseconds since the registry epoch *)
  mutable ev_dur : float;  (** microseconds *)
  mutable ev_tid : int;
      (** 0 in-process; [job index + 1] for spans merged from a pool
          worker *)
  mutable ev_src : int;
      (** trace lane ({!source} id): 0 for spans recorded in this
          process, the origin host's lane for merged snapshots *)
  ev_depth : int;  (** nesting depth at the time the span opened *)
}
(** A completed span. *)

val enabled : bool ref
(** The master switch.  Instrumentation sites compile to one load of
    this ref and a conditional branch when it is [false]; do not write
    it directly — use {!set_enabled}, which also arms the epoch. *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit
(** Switch instrumentation on or off.  The first enable captures the
    clock epoch; subsequent enables keep it, so timestamps from before
    and after a disable window remain comparable. *)

val now : unit -> float
(** [Unix.gettimeofday] clamped to be non-decreasing, so NTP steps can
    never produce a negative span duration. *)

val now_us : unit -> float
(** Microseconds since the epoch, on the clamped clock. *)

val source : string -> int
(** Find or create the trace lane registered under [name].  Lane 0 is
    always this process (registered as ["dmc"]); every other name gets
    the next id in first-registration order, so a fleet's lanes are
    stable within a run.  Like {!counter}, registration is idempotent
    and survives {!reset}. *)

val source_name : int -> string option
(** The name a lane id was registered under. *)

val fold_sources : ('a -> int -> string -> 'a) -> 'a -> 'a
(** Fold over registered lanes in id order (deterministic). *)

val counter : string -> counter
(** Find or create the counter registered under [name].  Creation is
    idempotent, so modules may register at initialisation time and
    merged child snapshots can never introduce duplicates. *)

val fold_counters : ('a -> counter -> 'a) -> 'a -> 'a
(** Fold over all registered counters in name order (deterministic). *)

type histogram = {
  h_name : string;
  h_counts : int array;  (** one slot per log bucket *)
  mutable h_sum : int;
  mutable h_n : int;
}
(** A log-bucketed histogram of non-negative ints.  Bucket 0 holds the
    value 0; bucket [b >= 1] the values in [2^(b-1), 2^b).  All state
    is integral, so merging worker snapshots is bucket-wise addition —
    commutative and exact — and derived quantiles are byte-identical
    across [--jobs] widths.  Observe through {!Dmc_obs.Histogram}. *)

val hist_buckets : int
(** Number of buckets ([63]). *)

val bucket_of_value : int -> int
(** Bucket index for a value; negatives clamp to bucket 0. *)

val bucket_lo : int -> int
(** Smallest value a bucket admits. *)

val bucket_hi : int -> int
(** Largest value a bucket admits. *)

val histogram : string -> histogram
(** Find or create, like {!counter}. *)

val fold_histograms : ('a -> histogram -> 'a) -> 'a -> 'a
(** Fold in name order (deterministic). *)

type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }
(** A last-value gauge (heap words, RSS).  Not part of the determinism
    contract: gauges measure state, not work.  Merging across the fork
    boundary takes the maximum, so merge order still cannot matter. *)

val gauge : string -> gauge
(** Find or create, like {!counter}. *)

val fold_gauges : ('a -> gauge -> 'a) -> 'a -> 'a
(** Fold in name order (deterministic). *)

val set_gauge : gauge -> float -> unit
val merge_gauge : gauge -> float -> unit
(** [merge_gauge g v] is [set_gauge g (max g.g_value v)] once [g] has
    been set, plain [set_gauge] before. *)

val sample_gc : unit -> unit
(** Refresh the [gc.*] gauges from [Gc.quick_stat].  Runs automatically
    at every span close and inside {!snapshot_json}. *)

val max_events : unit -> int
(** Completed-span buffer bound; beyond it spans are counted as dropped
    instead of allocated. *)

val set_max_events : int -> unit
(** Lower (or restore) the span-buffer bound — how tests exercise the
    drop path without recording a million spans.  Clamped to [>= 1]. *)

val on_span_close : (string -> unit) option ref
(** Invoked with the span name after every span close (when spans are
    being recorded).  The pool's forked workers hook this to emit
    rate-limited heartbeat frames; engines never see it. *)

val iter_events : (event -> unit) -> unit
(** Iterate completed spans in completion order. *)

val event_count : unit -> int
val dropped : unit -> int

type flight_entry = {
  fl_ts : float;  (** microseconds since the registry epoch *)
  fl_kind : string;  (** ["span"], ["dispatch"], ["verdict"], ... *)
  fl_name : string;
  fl_detail : string;
}
(** One flight-recorder moment.  The recorder is a small bounded ring
    of the {e most recent} notes — the opposite retention policy from
    the span buffer, because a postmortem wants what happened just
    before a crash, not what happened first. *)

val default_flight_capacity : int
(** [256]. *)

val set_flight_capacity : int -> unit
(** Resize (and clear) the ring.  Clamped to [>= 1]. *)

val flight_note : kind:string -> name:string -> detail:string -> unit
(** Append a note (no-op while the registry is disabled).  Span closes
    note themselves automatically; the pool supervisor notes
    dispatches, heartbeat phases and verdicts. *)

val flight_entries : unit -> flight_entry list
(** The ring's contents, oldest first. *)

val flight_count : unit -> int
(** Total notes ever pushed (≥ the ring length once it wraps). *)

val open_span : name:string -> attrs:(string * string) list -> event
(** Used by {!Dmc_obs.Span}; callers outside the library should prefer
    [Span.with_]. *)

val close_span : event -> unit
val innermost : unit -> event option

val add_event :
  name:string ->
  ?attrs:(string * string) list ->
  ts_us:float ->
  dur_us:float ->
  ?tid:int ->
  ?src:int ->
  ?depth:int ->
  unit ->
  unit
(** Append an already-timed span — how the pool supervisor records the
    synthetic ["pool.job"] span around each worker attempt.  An attr
    [("ph", "i")] marks the event as an {e instant} (a lease grant, a
    quarantine) rather than a duration slice; the Chrome exporter
    renders those with [ph:"i"]. *)

val reset : unit -> unit
(** Zero every counter, discard all spans and re-arm the epoch.  The
    counter {e registrations} survive, so a reset-run-snapshot cycle is
    reproducible. *)

val child_reset : unit -> unit
(** What a forked worker calls first: like {!reset} but the epoch (and
    the enabled flag) are inherited from the parent, so the child's
    timestamps land on the parent's timeline. *)

val snapshot_json : unit -> Dmc_util.Json.t
(** Serialize non-zero counters, non-empty histograms (sparse bucket
    pairs), set gauges (after a final {!sample_gc}), the dropped count
    and all completed spans — the payload a pool worker appends to its
    {!Dmc_util.Ipc} result frame. *)

val merge_snapshot :
  ?tid:int -> ?src:int -> ?shift_us:float -> Dmc_util.Json.t -> unit
(** Fold a worker snapshot into this registry: counters and histogram
    buckets add (commutes, so completion order cannot affect the merged
    profile), gauges max-merge, spans append with [ev_tid] forced to
    [tid] and [ev_src] to [src] (the origin host's trace lane).
    [shift_us] translates the snapshot's timestamps onto this
    registry's timeline — a remote [dmc worker] is a fresh process
    whose epoch is its own start, so the supervisor shifts by the
    attempt's dispatch time.  Malformed sub-structures are skipped —
    observability must never turn a good result into a protocol
    error. *)
