let with_ ?(attrs = []) name f =
  if not !Registry.enabled then f ()
  else
    let e = Registry.open_span ~name ~attrs in
    Fun.protect ~finally:(fun () -> Registry.close_span e) f

let note key value =
  if !Registry.enabled then
    match Registry.innermost () with
    | Some e -> e.Registry.ev_attrs <- e.Registry.ev_attrs @ [ (key, value) ]
    | None -> ()
