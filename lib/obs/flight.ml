(* Postmortem dumps of the registry's flight-recorder ring.

   The ring itself lives in [Registry] (it is fed from span closes on
   the instrumentation hot path); this module is only the dump side:
   shape the ring plus a counter/gauge snapshot into one JSON document
   and write it to a timestamped file next to whatever other artefacts
   the caller keeps (fuzz reproducers, checkpoints).  Dumping is
   best-effort by design — a postmortem that fails to write must never
   take the supervisor down with it. *)

open Dmc_util

let version = 1

let dump ~reason ~attrs () =
  let open Json in
  let entries =
    List.map
      (fun e ->
        Obj
          [
            ("ts_us", Float e.Registry.fl_ts);
            ("kind", String e.Registry.fl_kind);
            ("name", String e.Registry.fl_name);
            ("detail", String e.Registry.fl_detail);
          ])
      (Registry.flight_entries ())
  in
  let counters =
    List.rev
      (Registry.fold_counters
         (fun acc c ->
           if c.Registry.c_value = 0 then acc
           else (c.Registry.c_name, Int c.Registry.c_value) :: acc)
         [])
  in
  let gauges =
    List.rev
      (Registry.fold_gauges
         (fun acc g ->
           if g.Registry.g_set then (g.Registry.g_name, Float g.Registry.g_value) :: acc
           else acc)
         [])
  in
  Obj
    [
      ("kind", String "dmc-postmortem");
      ("v", Int version);
      ("reason", String reason);
      ("wall_time", Float (Unix.gettimeofday ()));
      ("attrs", Obj (List.map (fun (k, v) -> (k, String v)) attrs));
      ("flight", List entries);
      ("flight_total", Int (Registry.flight_count ()));
      ("counters", Obj counters);
      ("gauges", Obj gauges);
      ("dropped_spans", Int (Registry.dropped ()));
    ]

let sanitize_slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let write ~dir ~slug ~reason ~attrs () =
  try
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
    let stamp_ms = Int64.of_float (Unix.gettimeofday () *. 1e3) in
    let path =
      Filename.concat dir
        (Printf.sprintf "postmortem-%Ld-%s.json" stamp_ms (sanitize_slug slug))
    in
    Checkpoint.write path (dump ~reason ~attrs ());
    Ok path
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
