(* Global-but-resettable instrumentation state: the enabled flag, the
   clamped-monotone clock, the counter table and the completed-span
   buffer.  Everything every other Dmc_obs module touches lives here so
   the disabled fast path is a single [!enabled] load shared by all of
   them. *)

type counter = { c_name : string; mutable c_value : int }

type event = {
  ev_name : string;
  mutable ev_attrs : (string * string) list;
  ev_ts : float; (* microseconds since the registry epoch *)
  mutable ev_dur : float; (* microseconds *)
  mutable ev_tid : int;
  ev_depth : int;
}

let enabled = ref false
let is_enabled () = !enabled

(* [Unix.gettimeofday] can step backwards under NTP adjustment; clamping
   to the max seen so far keeps span durations non-negative, which the
   Chrome trace viewer requires. *)
let last_now = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

(* 0.0 is the "never enabled" sentinel; the epoch is captured the first
   time instrumentation is switched on and deliberately survives
   [child_reset], so spans recorded in a forked worker share the parent
   timeline and merge without translation. *)
let epoch = ref 0.0
let now_us () = (now () -. !epoch) *. 1e6

let set_enabled b =
  if b && !epoch = 0.0 then epoch := now ();
  enabled := b

(* Counters are registered once (typically at module initialisation in
   the instrumented library) and found by name thereafter, so merging a
   child snapshot can never create duplicates. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let fold_counters f acc =
  let all = Hashtbl.fold (fun _ c l -> c :: l) counters [] in
  let all = List.sort (fun a b -> compare a.c_name b.c_name) all in
  List.fold_left f acc all

(* Completed spans, in completion order.  The buffer is bounded so a
   pathological run cannot exhaust memory; overflow is counted rather
   than silently ignored. *)
let max_events = 1_000_000
let events : event array ref = ref [||]
let n_events = ref 0
let dropped_events = ref 0

let push_event e =
  if !n_events >= max_events then incr dropped_events
  else begin
    (if !n_events >= Array.length !events then
       let cap = max 256 (2 * Array.length !events) in
       let a = Array.make cap e in
       Array.blit !events 0 a 0 !n_events;
       events := a);
    !events.(!n_events) <- e;
    incr n_events
  end

let iter_events f =
  for i = 0 to !n_events - 1 do
    f !events.(i)
  done

let event_count () = !n_events
let dropped () = !dropped_events

(* Stack of open spans for the current thread of control.  The pool
   supervisor and each forked worker are single-threaded with respect to
   spans, so one stack suffices; [cur_tid] is what distinguishes merged
   worker timelines in the exported trace. *)
let stack : event list ref = ref []
let cur_tid = ref 0

let open_span ~name ~attrs =
  let e =
    {
      ev_name = name;
      ev_attrs = attrs;
      ev_ts = now_us ();
      ev_dur = 0.0;
      ev_tid = !cur_tid;
      ev_depth = List.length !stack;
    }
  in
  stack := e :: !stack;
  e

let close_span e =
  e.ev_dur <- now_us () -. e.ev_ts;
  (match !stack with
  | top :: rest when top == e -> stack := rest
  | _ -> stack := List.filter (fun x -> x != e) !stack);
  push_event e

let innermost () = match !stack with [] -> None | e :: _ -> Some e

let add_event ~name ?(attrs = []) ~ts_us ~dur_us ?(tid = 0) ?(depth = 0) () =
  push_event
    {
      ev_name = name;
      ev_attrs = attrs;
      ev_ts = ts_us;
      ev_dur = dur_us;
      ev_tid = tid;
      ev_depth = depth;
    }

let clear () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  n_events := 0;
  events := [||];
  dropped_events := 0;
  stack := []

let reset () =
  clear ();
  epoch := now ()

let child_reset () = clear ()

(* Fork-boundary snapshot: only non-zero counters travel in the frame
   (the supervisor's merge treats a missing counter as +0), and the
   events carry registry-epoch timestamps, which are directly comparable
   to the parent's because the epoch is inherited across fork. *)

let snapshot_json () =
  let open Dmc_util.Json in
  let cs =
    fold_counters
      (fun acc c -> if c.c_value = 0 then acc else (c.c_name, Int c.c_value) :: acc)
      []
  in
  let evs =
    let out = ref [] in
    iter_events (fun e ->
        out :=
          Obj
            [
              ("name", String e.ev_name);
              ("ts", Float e.ev_ts);
              ("dur", Float e.ev_dur);
              ("depth", Int e.ev_depth);
              ("attrs", Obj (List.map (fun (k, v) -> (k, String v)) e.ev_attrs));
            ]
          :: !out);
    List.rev !out
  in
  Obj
    [
      ("counters", Obj (List.rev cs));
      ("dropped", Int !dropped_events);
      ("events", List evs);
    ]

let merge_snapshot ?(tid = 0) json =
  let open Dmc_util.Json in
  match json with
  | Obj _ ->
      (match mem json "counters" with
      | Some (Obj cs) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Int n -> (counter name).c_value <- (counter name).c_value + n
              | _ -> ())
            cs
      | _ -> ());
      (match mem json "dropped" with
      | Some (Int n) -> dropped_events := !dropped_events + n
      | _ -> ());
      (match mem json "events" with
      | Some (List evs) ->
          List.iter
            (fun ev ->
              match (mem ev "name", mem ev "ts", mem ev "dur") with
              | Some (String name), Some ts, Some dur ->
                  let num = function
                    | Float f -> f
                    | Int i -> float_of_int i
                    | _ -> 0.0
                  in
                  let depth =
                    match mem ev "depth" with Some (Int d) -> d | _ -> 0
                  in
                  let attrs =
                    match mem ev "attrs" with
                    | Some (Obj kvs) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with String s -> Some (k, s) | _ -> None)
                          kvs
                    | _ -> []
                  in
                  add_event ~name ~attrs ~ts_us:(num ts) ~dur_us:(num dur) ~tid
                    ~depth ()
              | _ -> ())
            evs
      | _ -> ())
  | _ -> ()
