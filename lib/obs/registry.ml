(* Global-but-resettable instrumentation state: the enabled flag, the
   clamped-monotone clock, the counter table and the completed-span
   buffer.  Everything every other Dmc_obs module touches lives here so
   the disabled fast path is a single [!enabled] load shared by all of
   them. *)

type counter = { c_name : string; mutable c_value : int }

type event = {
  ev_name : string;
  mutable ev_attrs : (string * string) list;
  mutable ev_ts : float; (* microseconds since the registry epoch *)
  mutable ev_dur : float; (* microseconds *)
  mutable ev_tid : int;
  mutable ev_src : int; (* lane: 0 = this process, else a registered source *)
  ev_depth : int;
}

let enabled = ref false
let is_enabled () = !enabled

(* [Unix.gettimeofday] can step backwards under NTP adjustment; clamping
   to the max seen so far keeps span durations non-negative, which the
   Chrome trace viewer requires. *)
let last_now = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

(* 0.0 is the "never enabled" sentinel; the epoch is captured the first
   time instrumentation is switched on and deliberately survives
   [child_reset], so spans recorded in a forked worker share the parent
   timeline and merge without translation. *)
let epoch = ref 0.0
let now_us () = (now () -. !epoch) *. 1e6

let set_enabled b =
  if b && !epoch = 0.0 then epoch := now ();
  enabled := b

(* Sources are the trace's process lanes: lane 0 is always this
   process (the supervisor), and every remote/forked origin a snapshot
   is merged from gets a stable id in first-registration order.  Like
   counters, registrations are idempotent and survive [clear], so a
   host keeps its lane across checkpointed resumes within one run. *)
let sources : (string, int) Hashtbl.t = Hashtbl.create 8
let source_names : (int, string) Hashtbl.t = Hashtbl.create 8
let next_source = ref 1

let register_source name id =
  Hashtbl.replace sources name id;
  Hashtbl.replace source_names id name

let () = register_source "dmc" 0

let source name =
  match Hashtbl.find_opt sources name with
  | Some id -> id
  | None ->
      let id = !next_source in
      incr next_source;
      register_source name id;
      id

let source_name id = Hashtbl.find_opt source_names id

let fold_sources f acc =
  let all = Hashtbl.fold (fun id name l -> (id, name) :: l) source_names [] in
  let all = List.sort compare all in
  List.fold_left (fun acc (id, name) -> f acc id name) acc all

(* Counters are registered once (typically at module initialisation in
   the instrumented library) and found by name thereafter, so merging a
   child snapshot can never create duplicates. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let fold_counters f acc =
  let all = Hashtbl.fold (fun _ c l -> c :: l) counters [] in
  let all = List.sort (fun a b -> compare a.c_name b.c_name) all in
  List.fold_left f acc all

(* Histograms are log-bucketed: bucket 0 holds the value 0 and bucket
   [b >= 1] the values in [2^(b-1), 2^b).  Bucket counts, the running
   sum and the observation count are all ints, so merging a worker
   snapshot is bucket-wise addition — commutative and exact, which is
   what keeps quantiles byte-identical across [--jobs] widths. *)
let hist_buckets = 63

type histogram = {
  h_name : string;
  h_counts : int array; (* length hist_buckets *)
  mutable h_sum : int;
  mutable h_n : int;
}

let bucket_of_value v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

let bucket_lo b = if b = 0 then 0 else 1 lsl (b - 1)
let bucket_hi b = if b = 0 then 0 else (1 lsl b) - 1

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; h_counts = Array.make hist_buckets 0; h_sum = 0; h_n = 0 }
      in
      Hashtbl.replace histograms name h;
      h

let fold_histograms f acc =
  let all = Hashtbl.fold (fun _ h l -> h :: l) histograms [] in
  let all = List.sort (fun a b -> compare a.h_name b.h_name) all in
  List.fold_left f acc all

(* Gauges record a last-seen value (heap words, compactions).  Unlike
   counters they do not measure work, so they are *not* part of the
   cross-width determinism contract; merging across the fork boundary
   takes the maximum, which is commutative, so merge order still
   cannot matter. *)
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0; g_set = false } in
      Hashtbl.replace gauges name g;
      g

let fold_gauges f acc =
  let all = Hashtbl.fold (fun _ g l -> g :: l) gauges [] in
  let all = List.sort (fun a b -> compare a.g_name b.g_name) all in
  List.fold_left f acc all

let set_gauge g v =
  g.g_value <- v;
  g.g_set <- true

let merge_gauge g v =
  if g.g_set then set_gauge g (Float.max g.g_value v) else set_gauge g v

(* GC/memory gauges, refreshed from [Gc.quick_stat] at every span
   boundary (and when a worker snapshots itself for the fork
   boundary).  quick_stat reads runtime globals — no heap walk — so
   the hot engines can afford the sample on every span close. *)
let g_minor_words = gauge "gc.minor_words"
let g_promoted_words = gauge "gc.promoted_words"
let g_major_words = gauge "gc.major_words"
let g_minor_collections = gauge "gc.minor_collections"
let g_major_collections = gauge "gc.major_collections"
let g_heap_words = gauge "gc.heap_words"
let g_top_heap_words = gauge "gc.top_heap_words"
let g_compactions = gauge "gc.compactions"

let sample_gc () =
  let s = Gc.quick_stat () in
  set_gauge g_minor_words s.Gc.minor_words;
  set_gauge g_promoted_words s.Gc.promoted_words;
  set_gauge g_major_words s.Gc.major_words;
  set_gauge g_minor_collections (float_of_int s.Gc.minor_collections);
  set_gauge g_major_collections (float_of_int s.Gc.major_collections);
  set_gauge g_heap_words (float_of_int s.Gc.heap_words);
  set_gauge g_top_heap_words (float_of_int s.Gc.top_heap_words);
  set_gauge g_compactions (float_of_int s.Gc.compactions)

(* Completed spans, in completion order.  The buffer is bounded so a
   pathological run cannot exhaust memory; overflow is counted rather
   than silently ignored.  The bound is settable so tests can exercise
   the drop path without recording a million spans. *)
let default_max_events = 1_000_000
let max_events_ref = ref default_max_events
let max_events () = !max_events_ref
let set_max_events n = max_events_ref := max 1 n
let events : event array ref = ref [||]
let n_events = ref 0
let dropped_events = ref 0

let push_event e =
  if !n_events >= !max_events_ref then incr dropped_events
  else begin
    (if !n_events >= Array.length !events then
       let cap = max 256 (2 * Array.length !events) in
       let a = Array.make cap e in
       Array.blit !events 0 a 0 !n_events;
       events := a);
    !events.(!n_events) <- e;
    incr n_events
  end

let iter_events f =
  for i = 0 to !n_events - 1 do
    f !events.(i)
  done

let event_count () = !n_events
let dropped () = !dropped_events

(* Flight recorder: a small bounded ring of the most recent notable
   moments (span closes, pool dispatches, verdicts).  Unlike the span
   buffer above — which keeps the *oldest* events and drops the tail —
   the ring keeps the *newest*, because a postmortem wants what
   happened just before the crash.  Kept deliberately tiny: it is
   always on once the registry is enabled, even when nobody ever dumps
   it. *)
type flight_entry = {
  fl_ts : float; (* microseconds since the registry epoch *)
  fl_kind : string; (* "span" | "dispatch" | "verdict" | ... *)
  fl_name : string;
  fl_detail : string;
}

let default_flight_capacity = 256
let flight_cap = ref default_flight_capacity
let flight_buf : flight_entry option array ref = ref [||]
let flight_next = ref 0 (* next write slot *)
let flight_seen = ref 0 (* total notes ever pushed *)

let set_flight_capacity n =
  flight_cap := max 1 n;
  flight_buf := [||];
  flight_next := 0

let flight_note ~kind ~name ~detail =
  if !enabled then begin
    (if Array.length !flight_buf <> !flight_cap then begin
       flight_buf := Array.make !flight_cap None;
       flight_next := 0
     end);
    !flight_buf.(!flight_next) <-
      Some { fl_ts = now_us (); fl_kind = kind; fl_name = name; fl_detail = detail };
    flight_next := (!flight_next + 1) mod !flight_cap;
    incr flight_seen
  end

let flight_entries () =
  let cap = Array.length !flight_buf in
  if cap = 0 then []
  else begin
    let out = ref [] in
    for i = cap - 1 downto 0 do
      match !flight_buf.((!flight_next + i) mod cap) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    !out
  end

let flight_count () = !flight_seen

(* Stack of open spans for the current thread of control.  The pool
   supervisor and each forked worker are single-threaded with respect to
   spans, so one stack suffices; [cur_tid] is what distinguishes merged
   worker timelines in the exported trace. *)
let stack : event list ref = ref []
let cur_tid = ref 0

let open_span ~name ~attrs =
  let e =
    {
      ev_name = name;
      ev_attrs = attrs;
      ev_ts = now_us ();
      ev_dur = 0.0;
      ev_tid = !cur_tid;
      ev_src = 0;
      ev_depth = List.length !stack;
    }
  in
  stack := e :: !stack;
  e

(* Called with the closing span's name; the pool's forked workers set
   this to turn span boundaries into rate-limited heartbeat frames on
   the result pipe, without the engines knowing the pool exists. *)
let on_span_close : (string -> unit) option ref = ref None

let close_span e =
  e.ev_dur <- now_us () -. e.ev_ts;
  (match !stack with
  | top :: rest when top == e -> stack := rest
  | _ -> stack := List.filter (fun x -> x != e) !stack);
  push_event e;
  sample_gc ();
  flight_note ~kind:"span" ~name:e.ev_name
    ~detail:(Printf.sprintf "%.3fms depth=%d" (e.ev_dur /. 1e3) e.ev_depth);
  match !on_span_close with Some f -> f e.ev_name | None -> ()

let innermost () = match !stack with [] -> None | e :: _ -> Some e

let add_event ~name ?(attrs = []) ~ts_us ~dur_us ?(tid = 0) ?(src = 0) ?(depth = 0)
    () =
  push_event
    {
      ev_name = name;
      ev_attrs = attrs;
      ev_ts = ts_us;
      ev_dur = dur_us;
      ev_tid = tid;
      ev_src = src;
      ev_depth = depth;
    }

let clear () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 hist_buckets 0;
      h.h_sum <- 0;
      h.h_n <- 0)
    histograms;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.0;
      g.g_set <- false)
    gauges;
  n_events := 0;
  events := [||];
  dropped_events := 0;
  flight_buf := [||];
  flight_next := 0;
  flight_seen := 0;
  stack := []

let reset () =
  clear ();
  epoch := now ()

let child_reset () = clear ()

(* Fork-boundary snapshot: only non-zero counters travel in the frame
   (the supervisor's merge treats a missing counter as +0), and the
   events carry registry-epoch timestamps, which are directly comparable
   to the parent's because the epoch is inherited across fork. *)

let snapshot_json () =
  let open Dmc_util.Json in
  sample_gc ();
  let cs =
    fold_counters
      (fun acc c -> if c.c_value = 0 then acc else (c.c_name, Int c.c_value) :: acc)
      []
  in
  (* Sparse bucket encoding: only non-empty buckets travel, as
     [[index; count]; ...] pairs, so an idle histogram costs nothing. *)
  let hs =
    fold_histograms
      (fun acc h ->
        if h.h_n = 0 then acc
        else begin
          let buckets = ref [] in
          for b = hist_buckets - 1 downto 0 do
            if h.h_counts.(b) > 0 then
              buckets := List [ Int b; Int h.h_counts.(b) ] :: !buckets
          done;
          ( h.h_name,
            Obj
              [
                ("buckets", List !buckets);
                ("sum", Int h.h_sum);
                ("n", Int h.h_n);
              ] )
          :: acc
        end)
      []
  in
  let gs =
    fold_gauges
      (fun acc g -> if g.g_set then (g.g_name, Float g.g_value) :: acc else acc)
      []
  in
  let evs =
    let out = ref [] in
    iter_events (fun e ->
        out :=
          Obj
            [
              ("name", String e.ev_name);
              ("ts", Float e.ev_ts);
              ("dur", Float e.ev_dur);
              ("depth", Int e.ev_depth);
              ("attrs", Obj (List.map (fun (k, v) -> (k, String v)) e.ev_attrs));
            ]
          :: !out);
    List.rev !out
  in
  Obj
    [
      ("counters", Obj (List.rev cs));
      ("hists", Obj (List.rev hs));
      ("gauges", Obj (List.rev gs));
      ("dropped", Int !dropped_events);
      ("events", List evs);
    ]

let merge_snapshot ?(tid = 0) ?(src = 0) ?(shift_us = 0.0) json =
  let open Dmc_util.Json in
  match json with
  | Obj _ ->
      (match mem json "counters" with
      | Some (Obj cs) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Int n -> (counter name).c_value <- (counter name).c_value + n
              | _ -> ())
            cs
      | _ -> ());
      (match mem json "hists" with
      | Some (Obj hs) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Obj _ ->
                  let h = histogram name in
                  (match mem v "buckets" with
                  | Some (List bs) ->
                      List.iter
                        (fun b ->
                          match b with
                          | List [ Int idx; Int count ]
                            when idx >= 0 && idx < hist_buckets ->
                              h.h_counts.(idx) <- h.h_counts.(idx) + count
                          | _ -> ())
                        bs
                  | _ -> ());
                  (match mem v "sum" with
                  | Some (Int s) -> h.h_sum <- h.h_sum + s
                  | _ -> ());
                  (match mem v "n" with
                  | Some (Int n) -> h.h_n <- h.h_n + n
                  | _ -> ())
              | _ -> ())
            hs
      | _ -> ());
      (match mem json "gauges" with
      | Some (Obj gs) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Float f -> merge_gauge (gauge name) f
              | Int i -> merge_gauge (gauge name) (float_of_int i)
              | _ -> ())
            gs
      | _ -> ());
      (match mem json "dropped" with
      | Some (Int n) -> dropped_events := !dropped_events + n
      | _ -> ());
      (match mem json "events" with
      | Some (List evs) ->
          List.iter
            (fun ev ->
              match (mem ev "name", mem ev "ts", mem ev "dur") with
              | Some (String name), Some ts, Some dur ->
                  let num = function
                    | Float f -> f
                    | Int i -> float_of_int i
                    | _ -> 0.0
                  in
                  let depth =
                    match mem ev "depth" with Some (Int d) -> d | _ -> 0
                  in
                  let attrs =
                    match mem ev "attrs" with
                    | Some (Obj kvs) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with String s -> Some (k, s) | _ -> None)
                          kvs
                    | _ -> []
                  in
                  add_event ~name ~attrs ~ts_us:(num ts +. shift_us)
                    ~dur_us:(num dur) ~tid ~src ~depth ()
              | _ -> ())
            evs
      | _ -> ())
  | _ -> ()
