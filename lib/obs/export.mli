(** Exporters over the registry: profile tables, JSON, Chrome trace.

    Three views of the same recorded data:
    - {!profile} — human-readable, four sections in a fixed order:
      counters, histograms, gauges, spans.  Counters and histogram
      quantiles are fully deterministic (work counts only) and are what
      the CI smoke byte-compares between [--jobs 1] and [--jobs 2];
      gauges and spans carry memory/wall-clock readings and are
      expected to vary.
    - {!to_json} — machine-readable counters + histogram quantiles +
      gauges + span aggregates with stable key ordering, used by
      [bench/main.exe bench --json] to seed perf baselines.
    - {!chrome_trace} — the Chrome trace-event format ([ph:"X"]
      complete slices, microsecond [ts]/[dur], per-worker [tid]),
      loadable in [chrome://tracing] and Perfetto. *)

val counters_table : unit -> string
(** All registered counters in name order, via {!Dmc_util.Table}. *)

val histograms_table : unit -> string
(** Non-empty histograms in name order: n, mean, p50/p90/p99. *)

val gauges_table : unit -> string
(** Set gauges in name order with their last values. *)

val spans_table : unit -> string
(** Spans aggregated by name: count, total and mean milliseconds. *)

val span_aggregate : unit -> (string * int * float) list
(** [(name, count, total_microseconds)] in name order. *)

val profile : unit -> string
(** Counters, histograms, gauges and spans sections in that order,
    plus a dropped-span notice if the event buffer overflowed. *)

val to_json : unit -> Dmc_util.Json.t

val prometheus : unit -> string
(** Prometheus text exposition (format 0.0.4) of the registry: every
    name sanitized into [[a-zA-Z0-9_:]] and prefixed [dmc_]; counters
    as [counter], gauges as [gauge], histograms as [summary] with
    [quantile]-labelled p50/p90/p99 series plus [_sum]/[_count].
    Deterministic rendering (name order, fixed number formats) — what
    [dmc query --metrics] prints for scrapers. *)

val chrome_trace : unit -> Dmc_util.Json.t
(** The [{"traceEvents": [...]}] document, including process/thread
    name metadata.  Each registered {!Registry.source} is a [pid]
    lane — 0 for this process, one per remote host in a merged fleet
    trace ([tid 0] = supervisor, [tid j+1] = pool job [j]); events
    whose attrs carry [("ph", "i")] render as process-scoped instant
    events. *)

val write_chrome_trace : string -> unit
(** Write {!chrome_trace} compactly to a file. *)
