type t = Registry.gauge

let make name = Registry.gauge name
let set g v = if !Registry.enabled then Registry.set_gauge g v
let get g = g.Registry.g_value
let is_set g = g.Registry.g_set
