module Json = Dmc_util.Json

(* ------------------------------------------------------------------ *)
(* Provenance meta block                                               *)

let read_first_line_cmd cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> None
  with _ -> None

let git_sha () =
  match read_first_line_cmd "git rev-parse HEAD 2>/dev/null" with
  | Some sha when sha <> "" -> sha
  | _ -> "unknown"

let cpu_model () =
  try
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          match String.index_opt line ':' with
          | Some i
            when String.length line >= 10
                 && String.sub line 0 10 = "model name" ->
              String.trim
                (String.sub line (i + 1) (String.length line - i - 1))
          | _ -> scan ()
        in
        scan ())
  with _ -> "unknown"

(* A silently-"unknown" host makes two baselines from different
   machines look comparable in [bench-diff]; warn once so the
   provenance gap is at least explainable. *)
let warned_hostname = ref false

let hostname () =
  try Unix.gethostname ()
  with _ ->
    if not !warned_hostname then begin
      warned_hostname := true;
      prerr_endline
        "dmc: warning: gethostname failed; baseline provenance records host \
         \"unknown\""
    end;
    "unknown"

let meta ~argv () =
  Json.Obj
    [
      ("git_sha", Json.String (git_sha ()));
      ("ocaml_version", Json.String Sys.ocaml_version);
      ("hostname", Json.String (hostname ()));
      ("machine", Json.String (cpu_model ()));
      ("argv", Json.List (Array.to_list (Array.map (fun a -> Json.String a) argv)));
    ]

(* ------------------------------------------------------------------ *)
(* Flattening a baseline into comparable scalar metrics                *)

(* Namespaces:
     bench.<name>.ns_per_run   bechamel wall-clock estimate
     counter.<name>            work counter (deterministic)
     hist.<name>.{n,mean,p50,p90,p99}  histogram stats (deterministic)
     gauge.<name>              memory/GC last value
   Spans are excluded on purpose: their totals are wall-clock and their
   per-name counts are already covered by the counters. *)
let metrics doc =
  let out = ref [] in
  let add name v = out := (name, v) :: !out in
  let num = function
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  (match Json.mem doc "benchmarks" with
  | Some (Json.List bs) ->
      List.iter
        (fun b ->
          match (Json.mem b "name", Json.mem b "ns_per_run") with
          | Some (Json.String n), Some v -> (
              match num v with
              | Some f -> add ("bench." ^ n ^ ".ns_per_run") f
              | None -> ())
          | _ -> ())
        bs
  | _ -> ());
  (match Json.mem doc "profile" with
  | Some profile ->
      (match Json.mem profile "counters" with
      | Some (Json.Obj cs) ->
          List.iter
            (fun (n, v) ->
              match num v with Some f -> add ("counter." ^ n) f | None -> ())
            cs
      | _ -> ());
      (match Json.mem profile "hists" with
      | Some (Json.Obj hs) ->
          List.iter
            (fun (n, h) ->
              List.iter
                (fun field ->
                  match Option.bind (Json.mem h field) num with
                  | Some f -> add ("hist." ^ n ^ "." ^ field) f
                  | None -> ())
                [ "n"; "mean"; "p50"; "p90"; "p99" ])
            hs
      | _ -> ());
      (match Json.mem profile "gauges" with
      | Some (Json.Obj gs) ->
          List.iter
            (fun (n, v) ->
              match num v with Some f -> add ("gauge." ^ n) f | None -> ())
            gs
      | _ -> ())
  | None -> ());
  (* Experiment reports ([dmc experiment --json]) flatten too, so the
     same gate can compare two experiment runs:
       exp.<name>.failed_checks           failed-check count
       exp.<name>.curve.<curve>.s<x>.ub   measured I/O at each S
       exp.<name>.check.<label>.measured  when a check carries a value
     All lower-is-better, all machine-independent work metrics. *)
  (match (Json.mem doc "kind", Json.mem doc "experiments") with
  | Some (Json.String "dmc-experiment-report"), Some (Json.List exps) ->
      List.iter
        (fun e ->
          match (Json.mem e "name", Json.mem e "blocks") with
          | Some (Json.String name), Some (Json.List blocks) ->
              let failed = ref 0 in
              List.iter
                (fun b ->
                  let str f = Option.bind (Json.mem b f) Json.as_string in
                  match str "t" with
                  | Some "check" -> (
                      (match Json.mem b "ok" with
                      | Some (Json.Bool false) -> incr failed
                      | _ -> ());
                      match (str "label", Option.bind (Json.mem b "measured") num)
                      with
                      | Some label, Some v ->
                          add ("exp." ^ name ^ ".check." ^ label ^ ".measured") v
                      | _ -> ())
                  | Some "curve" -> (
                      match (str "name", Json.mem b "points") with
                      | Some cname, Some (Json.List pts) ->
                          List.iter
                            (fun p ->
                              match
                                ( Json.mem p "x",
                                  Option.bind (Json.mem p "ub") num )
                              with
                              | Some (Json.Int x), Some ub ->
                                  add
                                    (Printf.sprintf "exp.%s.curve.%s.s%d.ub"
                                       name cname x)
                                    ub
                              | _ -> ())
                            pts
                      | _ -> ())
                  | _ -> ())
                blocks;
              add ("exp." ^ name ^ ".failed_checks") (float_of_int !failed)
          | _ -> ())
        exps
  | _ -> ());
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let is_work_metric name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "counter." || has_prefix "hist." || has_prefix "exp."

(* ------------------------------------------------------------------ *)
(* Metric-by-metric comparison                                         *)

type status = Unchanged | Regressed | Improved | Added | Removed

type row = {
  metric : string;
  old_value : float option;
  new_value : float option;
  status : status;
}

type report = {
  rows : row list;
  compared : int;
  regressed : int;
  improved : int;
  added : int;
  removed : int;
  max_regress : float;
}

(* Every flattened metric is lower-is-better (nanoseconds, work counts,
   heap words), so "new exceeds old by more than the tolerance" is the
   single regression rule.  [Added]/[Removed] never gate: a metric
   appearing or vanishing is a coverage change, not a slowdown. *)
let diff ?(max_regress = 10.0) ?(work_only = false) ~old ~fresh () =
  let tol = max_regress /. 100.0 in
  let keep (n, _) = (not work_only) || is_work_metric n in
  let olds = List.filter keep (metrics old) in
  let news = List.filter keep (metrics fresh) in
  let rows = ref [] in
  let compared = ref 0 in
  let regressed = ref 0 and improved = ref 0 in
  let added = ref 0 and removed = ref 0 in
  List.iter
    (fun (name, ov) ->
      match List.assoc_opt name news with
      | None ->
          incr removed;
          rows := { metric = name; old_value = Some ov; new_value = None; status = Removed } :: !rows
      | Some nv ->
          incr compared;
          let status =
            if nv > (ov *. (1.0 +. tol)) +. 1e-9 then begin
              incr regressed;
              Regressed
            end
            else if nv < (ov *. (1.0 -. tol)) -. 1e-9 then begin
              incr improved;
              Improved
            end
            else Unchanged
          in
          rows := { metric = name; old_value = Some ov; new_value = Some nv; status } :: !rows)
    olds;
  List.iter
    (fun (name, nv) ->
      if not (List.mem_assoc name olds) then begin
        incr added;
        rows := { metric = name; old_value = None; new_value = Some nv; status = Added } :: !rows
      end)
    news;
  {
    rows = List.sort (fun a b -> compare a.metric b.metric) !rows;
    compared = !compared;
    regressed = !regressed;
    improved = !improved;
    added = !added;
    removed = !removed;
    max_regress;
  }

let status_to_string = function
  | Unchanged -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Added -> "added"
  | Removed -> "removed"

let fmt_value = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Dmc_util.Table.fmt_int (int_of_float v)
      else Printf.sprintf "%.4g" v

let render report =
  let b = Buffer.create 512 in
  let changed =
    List.filter (fun r -> r.status <> Unchanged) report.rows
  in
  if changed <> [] then begin
    let t =
      Dmc_util.Table.create
        ~headers:[ "metric"; "old"; "new"; "delta"; "status" ]
    in
    Dmc_util.Table.set_align t
      Dmc_util.Table.[ Left; Right; Right; Right; Left ];
    List.iter
      (fun r ->
        let delta =
          match (r.old_value, r.new_value) with
          | Some o, Some n when o <> 0.0 ->
              Printf.sprintf "%+.1f%%" ((n -. o) /. o *. 100.0)
          | _ -> "-"
        in
        Dmc_util.Table.add_row t
          [
            r.metric;
            fmt_value r.old_value;
            fmt_value r.new_value;
            delta;
            status_to_string r.status;
          ])
      changed;
    Buffer.add_string b (Dmc_util.Table.render t)
  end;
  Buffer.add_string b
    (Printf.sprintf
       "bench-diff: %d compared (tolerance %.1f%%), %d regressed, %d \
        improved, %d added, %d removed\n"
       report.compared report.max_regress report.regressed report.improved
       report.added report.removed);
  Buffer.contents b
