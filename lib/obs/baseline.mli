(** Bench-baseline provenance and regression comparison.

    A baseline is the JSON document [bench --json] writes: a
    ["benchmarks"] list (bechamel wall-clock estimates), a ["profile"]
    snapshot ({!Export.to_json}: counters, histogram stats, gauges) and
    a ["meta"] provenance block.  This module flattens two such
    documents into scalar metrics and compares them metric-by-metric
    with a relative noise tolerance, for the [dmc bench-diff] gate. *)

val meta : argv:string array -> unit -> Dmc_util.Json.t
(** Provenance block stamped into a fresh baseline: git sha (via
    [git rev-parse HEAD], ["unknown"] outside a repo), OCaml version,
    hostname, CPU model (from [/proc/cpuinfo]) and the producing
    command line.  Purely informational — never compared. *)

val metrics : Dmc_util.Json.t -> (string * float) list
(** Flatten a baseline document into name-sorted scalar metrics:
    [bench.<name>.ns_per_run], [counter.<name>],
    [hist.<name>.{n,mean,p50,p90,p99}] and [gauge.<name>].
    Experiment reports ([dmc experiment --json]) flatten as well, into
    [exp.<name>.failed_checks], [exp.<name>.curve.<curve>.s<x>.ub] and
    [exp.<name>.check.<label>.measured], so the gate can also compare
    two experiment runs.  Spans and the meta block are excluded.
    Unknown or malformed sections are skipped, not errors, so older
    baselines still compare. *)

val is_work_metric : string -> bool
(** [counter.*], [hist.*] and [exp.*] — the metrics that count work
    rather than measure time or memory, and are therefore
    machine-independent and expected to be exactly reproducible. *)

type status = Unchanged | Regressed | Improved | Added | Removed

type row = {
  metric : string;
  old_value : float option;  (** [None] when [Added] *)
  new_value : float option;  (** [None] when [Removed] *)
  status : status;
}

type report = {
  rows : row list;  (** name-sorted, one per metric seen on either side *)
  compared : int;  (** metrics present on both sides *)
  regressed : int;
  improved : int;
  added : int;
  removed : int;
  max_regress : float;  (** the tolerance the diff ran with, percent *)
}

val diff :
  ?max_regress:float ->
  ?work_only:bool ->
  old:Dmc_util.Json.t ->
  fresh:Dmc_util.Json.t ->
  unit ->
  report
(** Compare two baselines.  Every metric is lower-is-better, so a
    metric regresses iff [fresh > old * (1 + max_regress/100)] (default
    tolerance 10%); symmetrically below the band it counts as improved.
    [Added]/[Removed] metrics are reported but never gate.
    [work_only] restricts the comparison to {!is_work_metric} —
    the machine-independent subset suitable for a cross-machine CI
    gate. *)

val render : report -> string
(** Changed rows as a table (unchanged metrics are elided) followed by
    a one-line summary; always ends with a newline. *)
