type t = Registry.histogram

let make name = Registry.histogram name

let observe h v =
  if !Registry.enabled then begin
    let v = if v < 0 then 0 else v in
    let b = Registry.bucket_of_value v in
    h.Registry.h_counts.(b) <- h.Registry.h_counts.(b) + 1;
    h.Registry.h_sum <- h.Registry.h_sum + v;
    h.Registry.h_n <- h.Registry.h_n + 1
  end

let count h = h.Registry.h_n
let sum h = h.Registry.h_sum

let mean h =
  if h.Registry.h_n = 0 then 0.0
  else float_of_int h.Registry.h_sum /. float_of_int h.Registry.h_n

(* Quantiles are computed over bucket midpoints, weighted by bucket
   counts.  Midpoints are exact ints (so the float conversion is
   lossless for every reachable bucket) and the weights are ints, which
   together make the result a pure function of the merged bucket
   vector — the byte-identical-across-widths property the profile
   output relies on. *)
let bucket_mid b =
  float_of_int (Registry.bucket_lo b + Registry.bucket_hi b) /. 2.0

let percentile h p =
  if h.Registry.h_n = 0 then invalid_arg "Histogram.percentile: empty";
  let pairs = ref [] in
  for b = Registry.hist_buckets - 1 downto 0 do
    if h.Registry.h_counts.(b) > 0 then
      pairs := (bucket_mid b, h.Registry.h_counts.(b)) :: !pairs
  done;
  Dmc_util.Stats.percentile_weighted (Array.of_list !pairs) p
