(** Typed work counters.

    A counter counts discrete units of algorithmic work — search nodes
    expanded, augmenting paths found, cache lines evicted.  Counting
    work rather than time is what makes profiles comparable across
    machines and byte-identical across [--jobs] widths.

    Register once at module initialisation:
    {[
      let c_aug = Dmc_obs.Counter.make "dinic.augmenting_paths"
    ]}
    and bump from the hot loop with {!incr}/{!add}.  When the registry
    is disabled each bump costs one ref load and an untaken branch. *)

type t = Registry.counter

val make : string -> t
(** Find or create the counter with this name (idempotent). *)

val incr : t -> unit
(** Add one, if instrumentation is enabled. *)

val add : t -> int -> unit
(** Add [n], if instrumentation is enabled. *)

val set : t -> int -> unit
(** Overwrite the value (gauge-style), if instrumentation is enabled. *)

val value : t -> int
val name : t -> string
