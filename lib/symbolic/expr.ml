type t =
  | Const of float
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t
  | Neg of t
  | Sqrt of t
  | Log2 of t
  | Floor of t
  | Min of t * t
  | Max of t * t

let const x = Const x
let int n = Const (float_of_int n)
let var s = Var s
let floor_ e = Floor e
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( ** ) a b = Pow (a, b)

exception Unbound_variable of string

let rec eval ~env e =
  let ev x = eval ~env x in
  match e with
  | Const x -> x
  | Var s -> (
      match List.assoc_opt s env with
      | Some x -> x
      | None -> raise (Unbound_variable s))
  | Add (a, b) -> ev a +. ev b
  | Sub (a, b) -> ev a -. ev b
  | Mul (a, b) -> ev a *. ev b
  | Div (a, b) ->
      let d = ev b in
      if d = 0.0 then raise Division_by_zero else ev a /. d
  | Pow (a, b) -> Float.pow (ev a) (ev b)
  | Neg a -> -.ev a
  | Sqrt a -> sqrt (ev a)
  | Log2 a -> log (ev a) /. log 2.0
  | Floor a -> Float.floor (ev a)
  | Min (a, b) -> Float.min (ev a) (ev b)
  | Max (a, b) -> Float.max (ev a) (ev b)

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var s -> s :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b)
    | Min (a, b) | Max (a, b) ->
        go (go acc a) b
    | Neg a | Sqrt a | Log2 a | Floor a -> go acc a
  in
  List.sort_uniq compare (go [] e)

let rec subst ~env e =
  let s x = subst ~env x in
  match e with
  | Const _ -> e
  | Var name -> ( match List.assoc_opt name env with Some x -> x | None -> e)
  | Add (a, b) -> Add (s a, s b)
  | Sub (a, b) -> Sub (s a, s b)
  | Mul (a, b) -> Mul (s a, s b)
  | Div (a, b) -> Div (s a, s b)
  | Pow (a, b) -> Pow (s a, s b)
  | Neg a -> Neg (s a)
  | Sqrt a -> Sqrt (s a)
  | Log2 a -> Log2 (s a)
  | Floor a -> Floor (s a)
  | Min (a, b) -> Min (s a, s b)
  | Max (a, b) -> Max (s a, s b)

let rec simplify e =
  let e =
    match e with
    | Const _ | Var _ -> e
    | Add (a, b) -> Add (simplify a, simplify b)
    | Sub (a, b) -> Sub (simplify a, simplify b)
    | Mul (a, b) -> Mul (simplify a, simplify b)
    | Div (a, b) -> Div (simplify a, simplify b)
    | Pow (a, b) -> Pow (simplify a, simplify b)
    | Neg a -> Neg (simplify a)
    | Sqrt a -> Sqrt (simplify a)
    | Log2 a -> Log2 (simplify a)
    | Floor a -> Floor (simplify a)
    | Min (a, b) -> Min (simplify a, simplify b)
    | Max (a, b) -> Max (simplify a, simplify b)
  in
  match e with
  | Add (Const a, Const b) -> Const (a +. b)
  | Add (Const 0.0, x) | Add (x, Const 0.0) -> x
  | Sub (Const a, Const b) -> Const (a -. b)
  | Sub (x, Const 0.0) -> x
  | Sub (Const 0.0, x) -> simplify (Neg x)
  | Mul (Const a, Const b) -> Const (a *. b)
  | Mul (Const 1.0, x) | Mul (x, Const 1.0) -> x
  | Mul (Const 0.0, _) | Mul (_, Const 0.0) -> Const 0.0
  | Div (Const a, Const b) when b <> 0.0 -> Const (a /. b)
  | Div (x, Const 1.0) -> x
  | Div (Const 0.0, _) -> Const 0.0
  | Pow (Const a, Const b) -> Const (Float.pow a b)
  | Pow (x, Const 1.0) -> x
  | Pow (_, Const 0.0) -> Const 1.0
  | Neg (Const a) -> Const (-.a)
  | Neg (Neg x) -> x
  | Sqrt (Const a) when a >= 0.0 -> Const (sqrt a)
  | Log2 (Const a) when a > 0.0 -> Const (log a /. log 2.0)
  | Floor (Const a) -> Const (Float.floor a)
  | Floor (Floor x) -> Floor x
  | Min (Const a, Const b) -> Const (Float.min a b)
  | Max (Const a, Const b) -> Const (Float.max a b)
  | e -> e

(* Rendering with minimal parentheses.  Precedence: Add/Sub 1,
   Mul/Div 2, unary 3, Pow 4 (right-assoc). *)
let to_string e =
  let buf = Buffer.create 64 in
  let add = Buffer.add_string buf in
  let number x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%g" x
  in
  let rec go prec e =
    let wrap p body =
      if p < prec then begin
        add "(";
        body ();
        add ")"
      end
      else body ()
    in
    match e with
    | Const x -> if x < 0.0 then wrap 3 (fun () -> add (number x)) else add (number x)
    | Var s -> add s
    | Add (a, b) -> wrap 1 (fun () -> go 1 a; add " + "; go 1 b)
    | Sub (a, b) -> wrap 1 (fun () -> go 1 a; add " - "; go 2 b)
    | Mul (a, b) -> wrap 2 (fun () -> go 2 a; add " * "; go 2 b)
    | Div (a, b) -> wrap 2 (fun () -> go 2 a; add " / "; go 3 b)
    | Pow (a, b) -> wrap 4 (fun () -> go 5 a; add "^"; go 4 b)
    | Neg a -> wrap 3 (fun () -> add "-"; go 3 a)
    | Sqrt a ->
        add "sqrt(";
        go 0 a;
        add ")"
    | Log2 a ->
        add "log2(";
        go 0 a;
        add ")"
    | Floor a ->
        add "floor(";
        go 0 a;
        add ")"
    | Min (a, b) ->
        add "min(";
        go 0 a;
        add ", ";
        go 0 b;
        add ")"
    | Max (a, b) ->
        add "max(";
        go 0 a;
        add ", ";
        go 0 b;
        add ")"
  in
  go 0 e;
  Buffer.contents buf

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ------------------------------------------------------------------ *)
(* Parser: a hand-rolled recursive descent over a token list.          *)

type token =
  | Tnum of float
  | Tid of string
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tcaret
  | Tlparen
  | Trparen
  | Tcomma

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if is_digit c || c = '.' then begin
      let start = !i in
      while
        !i < n
        && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
           || ((s.[!i] = '+' || s.[!i] = '-')
              && Stdlib.( > ) !i start
              && (s.[Stdlib.( - ) !i 1] = 'e' || s.[Stdlib.( - ) !i 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub s start (Stdlib.( - ) !i start) in
      match float_of_string_opt text with
      | Some x -> out := Tnum x :: !out
      | None -> raise (Parse_error ("bad number: " ^ text))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      out := Tid (String.sub s start (Stdlib.( - ) !i start)) :: !out
    end
    else begin
      (match c with
      | '+' -> out := Tplus :: !out
      | '-' -> out := Tminus :: !out
      | '*' -> out := Tstar :: !out
      | '/' -> out := Tslash :: !out
      | '^' -> out := Tcaret :: !out
      | '(' -> out := Tlparen :: !out
      | ')' -> out := Trparen :: !out
      | ',' -> out := Tcomma :: !out
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c)));
      incr i
    end
  done;
  List.rev !out

let parse text =
  try
    let tokens = ref (tokenize text) in
    let peek () = match !tokens with t :: _ -> Some t | [] -> None in
    let advance () = match !tokens with _ :: rest -> tokens := rest | [] -> () in
    let expect t msg =
      match peek () with
      | Some t' when t' = t -> advance ()
      | _ -> raise (Parse_error msg)
    in
    (* expr := term (("+"|"-") term)*
       term := factor (("*"|"/") factor)*
       factor := unary ("^" factor)?          -- right assoc
       unary := "-" unary | atom
       atom := number | ident | ident "(" args ")" | "(" expr ")" *)
    let rec expr () =
      let lhs = ref (term ()) in
      let rec loop () =
        match peek () with
        | Some Tplus ->
            advance ();
            lhs := Add (!lhs, term ());
            loop ()
        | Some Tminus ->
            advance ();
            lhs := Sub (!lhs, term ());
            loop ()
        | _ -> ()
      in
      loop ();
      !lhs
    and term () =
      let lhs = ref (factor ()) in
      let rec loop () =
        match peek () with
        | Some Tstar ->
            advance ();
            lhs := Mul (!lhs, factor ());
            loop ()
        | Some Tslash ->
            advance ();
            lhs := Div (!lhs, factor ());
            loop ()
        | _ -> ()
      in
      loop ();
      !lhs
    and factor () =
      let base = unary () in
      match peek () with
      | Some Tcaret ->
          advance ();
          Pow (base, factor ())
      | _ -> base
    and unary () =
      match peek () with
      | Some Tminus ->
          advance ();
          Neg (unary ())
      | _ -> atom ()
    and atom () =
      match peek () with
      | Some (Tnum x) ->
          advance ();
          Const x
      | Some (Tid name) -> (
          advance ();
          match peek () with
          | Some Tlparen -> (
              advance ();
              let a = expr () in
              match (name, peek ()) with
              | "sqrt", Some Trparen ->
                  advance ();
                  Sqrt a
              | "log2", Some Trparen ->
                  advance ();
                  Log2 a
              | "floor", Some Trparen ->
                  advance ();
                  Floor a
              | ("min" | "max"), Some Tcomma ->
                  advance ();
                  let b = expr () in
                  expect Trparen "expected ) after two-argument function";
                  if name = "min" then Min (a, b) else Max (a, b)
              | _ -> raise (Parse_error ("bad call of function " ^ name)))
          | _ -> Var name)
      | Some Tlparen ->
          advance ();
          let e = expr () in
          expect Trparen "expected )";
          e
      | _ -> raise (Parse_error "unexpected end of input")
    in
    let e = expr () in
    if !tokens <> [] then Error "trailing input" else Ok e
  with Parse_error msg -> Error msg
