(** A small symbolic-expression language for data-movement bounds.

    The paper's results are parametric formulas over problem sizes
    ([n], [T], [d], [m]), machine parameters ([S], [P], [N_nodes]) and
    balances; this module gives them a first-class representation that
    can be pretty-printed, simplified, evaluated against concrete
    parameters, and parsed back from the CLI. *)

type t =
  | Const of float
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t        (** right argument may be symbolic, e.g. [1/d] *)
  | Neg of t
  | Sqrt of t
  | Log2 of t
  | Floor of t
      (** integer part; the decomposition calculus counts whole tiles,
          so closed forms are full of [floor(n / w)] factors *)
  | Min of t * t
  | Max of t * t

(** {1 Construction helpers} *)

val const : float -> t
val int : int -> t
val var : string -> t
val floor_ : t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ** ) : t -> t -> t

(** {1 Evaluation} *)

exception Unbound_variable of string

val eval : env:(string * float) list -> t -> float
(** Raises {!Unbound_variable}, and [Division_by_zero] on a zero
    denominator. *)

val vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val subst : env:(string * t) list -> t -> t
(** Substitute expressions for variables. *)

(** {1 Simplification} *)

val simplify : t -> t
(** Constant folding and algebraic identities ([x*1], [x+0], [x^1],
    [x/1], [0*x], [--x], nested constant arithmetic).  Idempotent;
    never changes the value of the expression on any environment where
    the original is defined. *)

(** {1 Text} *)

val to_string : t -> string
(** Precedence-aware rendering, e.g.
    ["n^3 / (2 * sqrt(2 * S))"]. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse the {!to_string} syntax: numbers, identifiers, [+ - * / ^],
    parentheses, and the functions [sqrt], [log2], [floor], [min],
    [max] (the latter two with two comma-separated arguments).  [^] is
    right-associative; unary minus is supported. *)
