module Cdag := Dmc_cdag.Cdag

(** Execute a scheduled CDAG through the cache-hierarchy simulator and
    measure the actual data movement — the experimental counterpart of
    the paper's bounds.

    Every vertex is one word named by its id.  Firing a vertex reads
    its operands through the owning node's hierarchy and writes its
    result dirty at level 1.  With multiple nodes, an operand owned by
    another node is fetched once into the reader's node (one horizontal
    word per distinct (value, reader-node) pair — the ghost-cell
    traffic), after which it is served locally. *)

type config = {
  capacities : int array;
      (** per-node cache hierarchy, innermost level first *)
  nodes : int;
  owner : Cdag.vertex -> int;
      (** home node of each vertex; must return a value in
          [0 .. nodes-1].  Ignored (all zero) when [nodes = 1]. *)
}

val sequential : capacities:int array -> config
(** Single-node configuration. *)

type result = {
  vertical : int array array;
      (** [.(node).(l-1)]: words crossing boundary [l] of that node's
          hierarchy (see {!Hier_sim.traffic}), flushed at the end *)
  horizontal_in : int array;  (** words received per node *)
  horizontal_total : int;
  computed : int;             (** vertices fired *)
}

val vertical_total : result -> level:int -> int
(** Sum of boundary-[level] traffic over all nodes. *)

val run : Cdag.t -> order:Cdag.vertex array -> config -> result
(** [order] must be a topological order of the non-input vertices (the
    same contract as {!Dmc_core.Strategy.schedule}); raises
    [Invalid_argument] otherwise. *)

val run_stream : Dmc_cdag.Implicit.t -> config -> result
(** Execute an implicit graph in ascending id order — a topological
    order whenever the graph is id-monotone (checked on the fly;
    raises [Invalid_argument] on a violating edge).  Equivalent to
    {!run} with the id-order schedule, but memory is bounded by the
    cache capacities and replication tables instead of a frozen CSR,
    so it handles graphs far past materialization limits.  Inputs are
    never fired; they are faulted in from the backing store on first
    read, exactly as in {!run}. *)
