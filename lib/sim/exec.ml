module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag

type config = {
  capacities : int array;
  nodes : int;
  owner : Cdag.vertex -> int;
}

let sequential ~capacities = { capacities; nodes = 1; owner = (fun _ -> 0) }

type result = {
  vertical : int array array;
  horizontal_in : int array;
  horizontal_total : int;
  computed : int;
}

let vertical_total r ~level =
  Array.fold_left (fun acc t -> acc + t.(level - 1)) 0 r.vertical

let check_order g order =
  let n = Cdag.n_vertices g in
  let pos = Array.make n (-1) in
  if
    Array.length order
    <> Cdag.fold_vertices g (fun acc v -> if Cdag.is_input g v then acc else acc + 1) 0
  then invalid_arg "Exec.run: order must cover exactly the non-input vertices";
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || Cdag.is_input g v || pos.(v) >= 0 then
        invalid_arg "Exec.run: bad order";
      pos.(v) <- i)
    order;
  Cdag.iter_edges g (fun u v ->
      if pos.(u) >= 0 && pos.(v) >= 0 && pos.(u) >= pos.(v) then
        invalid_arg "Exec.run: order is not topological")

let c_computes = Dmc_obs.Counter.make "sim.exec.computes"
let c_remote = Dmc_obs.Counter.make "sim.exec.remote_fetches"

let run g ~order config =
  if config.nodes <= 0 then invalid_arg "Exec.run: nodes must be positive";
  check_order g order;
  Dmc_obs.Span.with_
    ~attrs:
      [
        ("nodes", string_of_int config.nodes);
        ("order_len", string_of_int (Array.length order));
      ]
    "sim.exec.run"
  @@ fun () ->
  let n = Cdag.n_vertices g in
  let owner v =
    if config.nodes = 1 then 0
    else begin
      let p = config.owner v in
      if p < 0 || p >= config.nodes then invalid_arg "Exec.run: owner out of range";
      p
    end
  in
  let hier =
    Array.init config.nodes (fun _ -> Hier_sim.create ~capacities:config.capacities ())
  in
  (* Remote values already replicated into each node's hierarchy. *)
  let replicated = Array.init config.nodes (fun _ -> Bitset.create n) in
  let horizontal_in = Array.make config.nodes 0 in
  let computed = ref 0 in
  Array.iter
    (fun v ->
      let p = owner v in
      Cdag.iter_pred g v (fun u ->
          let home = owner u in
          if home <> p && not (Bitset.mem replicated.(p) u) then begin
            horizontal_in.(p) <- horizontal_in.(p) + 1;
            Dmc_obs.Counter.incr c_remote;
            Bitset.add replicated.(p) u
          end;
          Hier_sim.read hier.(p) u);
      Hier_sim.write hier.(p) v;
      Dmc_obs.Counter.incr c_computes;
      incr computed)
    order;
  Array.iter Hier_sim.flush hier;
  {
    vertical = Array.map Hier_sim.traffic hier;
    horizontal_in;
    horizontal_total = Array.fold_left ( + ) 0 horizontal_in;
    computed = !computed;
  }

module Implicit = Dmc_cdag.Implicit

(* Streaming execution in id order over an implicit graph.  Id order
   is a topological order exactly when the graph is id-monotone, which
   is checked on the fly (a violating edge raises before any further
   state is touched).  Memory is bounded by the cache capacities plus
   the replication tables — never by a frozen CSR — so graphs far past
   materialization limits execute in constant-ish space. *)
let run_stream imp config =
  if config.nodes <= 0 then invalid_arg "Exec.run_stream: nodes must be positive";
  let n = imp.Implicit.n_vertices in
  Dmc_obs.Span.with_
    ~attrs:
      [
        ("nodes", string_of_int config.nodes);
        ("n_vertices", string_of_int n);
      ]
    "sim.exec.run_stream"
  @@ fun () ->
  let owner v =
    if config.nodes = 1 then 0
    else begin
      let p = config.owner v in
      if p < 0 || p >= config.nodes then
        invalid_arg "Exec.run_stream: owner out of range";
      p
    end
  in
  let hier =
    Array.init config.nodes (fun _ ->
        Hier_sim.create ~capacities:config.capacities ())
  in
  (* hash tables instead of length-n bitsets: the replicated set stays
     proportional to the ghost traffic, not the graph *)
  let replicated = Array.init config.nodes (fun _ -> Hashtbl.create 64) in
  let horizontal_in = Array.make config.nodes 0 in
  let computed = ref 0 in
  for v = 0 to n - 1 do
    if not (imp.Implicit.is_input v) then begin
      let p = owner v in
      imp.Implicit.iter_pred v (fun u ->
          if u >= v then
            invalid_arg "Exec.run_stream: graph is not id-monotone";
          let home = owner u in
          if home <> p && not (Hashtbl.mem replicated.(p) u) then begin
            horizontal_in.(p) <- horizontal_in.(p) + 1;
            Dmc_obs.Counter.incr c_remote;
            Hashtbl.replace replicated.(p) u ()
          end;
          Hier_sim.read hier.(p) u);
      Hier_sim.write hier.(p) v;
      Dmc_obs.Counter.incr c_computes;
      incr computed
    end
  done;
  Array.iter Hier_sim.flush hier;
  {
    vertical = Array.map Hier_sim.traffic hier;
    horizontal_in;
    horizontal_total = Array.fold_left ( + ) 0 horizontal_in;
    computed = !computed;
  }
