type policy = Inclusive | Exclusive

type t = {
  levels : Cache.t array;       (* innermost first *)
  traffic : int array;          (* boundary l-1: between level l and l+1 *)
  policy : policy;
  (* per-level work counters, registered by name so every simulator
     instance with the same depth shares them (L1 = innermost) *)
  c_hits : Dmc_obs.Counter.t array;
  c_misses : Dmc_obs.Counter.t array;
  c_evicts : Dmc_obs.Counter.t array;
}

let level_counter kind l = Dmc_obs.Counter.make (Printf.sprintf "sim.cache.l%d.%s" (l + 1) kind)

(* Where reads are satisfied: 1 = L1 (innermost), [depth + 1] = backing
   store.  Registered once at module level so all simulator instances
   share the distribution, like the per-level counters. *)
let h_hit_level = Dmc_obs.Histogram.make "sim.cache.hit_level"

let create ?(policy = Inclusive) ~capacities () =
  if Array.length capacities = 0 then invalid_arg "Hier_sim.create: no levels";
  let n = Array.length capacities in
  {
    levels = Array.map (fun c -> Cache.create ~capacity:c) capacities;
    traffic = Array.make n 0;
    policy;
    c_hits = Array.init n (level_counter "hits");
    c_misses = Array.init n (level_counter "misses");
    c_evicts = Array.init n (level_counter "evictions");
  }

let n_levels t = Array.length t.levels

(* Evicting from level [l] (0-based): under the inclusive policy only a
   dirty victim is written one level out; under the exclusive policy
   the line itself migrates out (victim caching).  Either may cascade. *)
let rec handle_eviction t l (ev : Cache.eviction option) =
  match ev with
  | None -> ()
  | Some { key; dirty } ->
      Dmc_obs.Counter.incr t.c_evicts.(l);
      (* clean lines migrate between cache levels under Exclusive but
         are simply dropped at the memory boundary *)
      let inner = l + 1 < Array.length t.levels in
      let migrate = dirty || (t.policy = Exclusive && inner) in
      if migrate then begin
        t.traffic.(l) <- t.traffic.(l) + 1;
        if l + 1 < Array.length t.levels then
          let ev' = Cache.insert t.levels.(l + 1) ~dirty key in
          handle_eviction t (l + 1) ev'
        (* beyond the outermost level lies the unbounded backing store *)
      end

let fill_to t ~from_level key ~dirty =
  (* Bring [key] inward; each fill crosses the boundary just outside
     that level.  Under Exclusive only the innermost level keeps a
     copy (the line traverses intermediate levels without residing). *)
  for l = from_level - 1 downto 0 do
    t.traffic.(l) <- t.traffic.(l) + 1;
    if l = 0 || t.policy = Inclusive then begin
      let ev = Cache.insert t.levels.(l) ~dirty:(dirty && l = 0) key in
      handle_eviction t l ev
    end
  done

let read t key =
  let n = Array.length t.levels in
  let rec probe l =
    if l >= n then (n, false)
    else if l = 0 then if Cache.touch t.levels.(0) key then (0, false) else probe 1
    else begin
      match t.policy with
      | Inclusive -> if Cache.touch t.levels.(l) key then (l, false) else probe (l + 1)
      | Exclusive ->
          (* an inner fill removes the outer copy; carry its dirty bit *)
          if Cache.mem t.levels.(l) key then begin
            match Cache.remove t.levels.(l) key with
            | Some { Cache.dirty; _ } -> (l, dirty)
            | None -> assert false
          end
          else probe (l + 1)
    end
  in
  let hit, dirty = probe 0 in
  Dmc_obs.Histogram.observe h_hit_level (hit + 1);
  for l = 0 to min hit n - 1 do
    Dmc_obs.Counter.incr t.c_misses.(l)
  done;
  if hit < n then Dmc_obs.Counter.incr t.c_hits.(hit);
  fill_to t ~from_level:hit key ~dirty

let write t key =
  (match t.policy with
  | Inclusive -> ()
  | Exclusive ->
      (* the line must not linger at an outer level *)
      for l = 1 to Array.length t.levels - 1 do
        ignore (Cache.remove t.levels.(l) key)
      done);
  let ev = Cache.insert t.levels.(0) ~dirty:true key in
  handle_eviction t 0 ev

let flush t =
  Array.iteri
    (fun l cache ->
      let victims = ref [] in
      Cache.iter (fun key ~dirty -> victims := (key, dirty) :: !victims) cache;
      List.iter
        (fun (key, dirty) ->
          ignore (Cache.remove cache key);
          handle_eviction t l (Some { Cache.key; dirty }))
        !victims)
    t.levels

let traffic t = Array.copy t.traffic

let contains t ~level key =
  if level < 1 || level > Array.length t.levels then
    invalid_arg "Hier_sim.contains: level out of range";
  Cache.mem t.levels.(level - 1) key
