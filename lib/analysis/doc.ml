module Table = Dmc_util.Table
module J = Dmc_util.Json

type fact = { key : string; value : string }

type check = {
  label : string;
  ok : bool;
  lb : float option;
  measured : float option;
  ub : float option;
}

type curve_point = { x : int; lb : float; ub : int }

type curve = {
  curve : string;
  shape : string;
  xlabel : string;
  points : curve_point list;
}

type block =
  | Section of string
  | Text of string
  | Facts of fact list list
  | Table of Table.t
  | Curve of curve
  | Check of check

type t = { name : string; blocks : block list }

let fact key value = { key; value }

let check ?lb ?measured ?ub label ok = Check { label; ok; lb; measured; ub }

let checks doc =
  List.filter_map (function Check c -> Some c | _ -> None) doc.blocks

let ok doc = List.for_all (fun c -> c.ok) (checks doc)

(* ------------------------------------------------------------------ *)
(* Text renderer: byte-identical to the pre-IR print-based reports,
   locked by the golden fixtures under test/golden.                   *)

let curve_table c =
  let t =
    Table.create ~headers:[ c.xlabel; "analytic LB"; "measured UB"; "UB/LB" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.x;
          Printf.sprintf "%.0f" p.lb;
          string_of_int p.ub;
          Printf.sprintf "%.1fx" (float_of_int p.ub /. p.lb);
        ])
    c.points;
  t

let render_block buf = function
  | Section title ->
      Buffer.add_string buf (Printf.sprintf "\n== %s ==\n\n" title)
  | Text s -> Buffer.add_string buf s
  | Facts lines ->
      List.iter
        (fun line ->
          Buffer.add_string buf "  ";
          Buffer.add_string buf
            (String.concat ", "
               (List.map (fun f -> f.key ^ " = " ^ f.value) line));
          Buffer.add_char buf '\n')
        lines
  | Table t -> Buffer.add_string buf (Table.render t)
  | Curve c ->
      Buffer.add_string buf (Printf.sprintf "\n%s   (%s)\n\n" c.curve c.shape);
      Buffer.add_string buf (Table.render (curve_table c))
  | Check c ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s\n" (if c.ok then "ok" else "FAIL") c.label)

let to_text doc =
  let buf = Buffer.create 1024 in
  List.iter (render_block buf) doc.blocks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON renderer and parser.  The schema is versioned by the enclosing
   report/checkpoint envelope, not per document.                      *)

let align_to_char = function Table.Left -> 'l' | Table.Right -> 'r'

let table_to_json t =
  J.Obj
    [
      ("headers", J.List (List.map (fun h -> J.String h) (Table.headers t)));
      ( "aligns",
        J.String
          (String.init
             (List.length (Table.aligns t))
             (fun i -> align_to_char (List.nth (Table.aligns t) i))) );
      ( "body",
        J.List
          (List.map
             (function
               | `Rule -> J.String "rule"
               | `Row cells -> J.List (List.map (fun c -> J.String c) cells))
             (Table.body t)) );
    ]

let table_of_json json =
  let ( let* ) = Option.bind in
  let* headers =
    let* l = Option.bind (J.mem json "headers") J.as_list in
    List.fold_right
      (fun h acc -> Option.bind acc (fun acc ->
           Option.map (fun s -> s :: acc) (J.as_string h)))
      l (Some [])
  in
  let t = Table.create ~headers in
  let* aligns = Option.bind (J.mem json "aligns") J.as_string in
  Table.set_align t
    (List.init (String.length aligns) (fun i ->
         match aligns.[i] with 'r' -> Table.Right | _ -> Table.Left));
  let* body = Option.bind (J.mem json "body") J.as_list in
  let rec add = function
    | [] -> Some t
    | J.String "rule" :: rest ->
        Table.add_rule t;
        add rest
    | J.List cells :: rest ->
        let* row =
          List.fold_right
            (fun c acc -> Option.bind acc (fun acc ->
                 Option.map (fun s -> s :: acc) (J.as_string c)))
            cells (Some [])
        in
        if List.length row <> List.length headers then None
        else begin
          Table.add_row t row;
          add rest
        end
    | _ -> None
  in
  add body

let block_to_json = function
  | Section title -> J.Obj [ ("t", J.String "section"); ("title", J.String title) ]
  | Text s -> J.Obj [ ("t", J.String "text"); ("text", J.String s) ]
  | Facts lines ->
      J.Obj
        [
          ("t", J.String "facts");
          ( "lines",
            J.List
              (List.map
                 (fun line ->
                   J.List
                     (List.map
                        (fun f ->
                          J.Obj [ ("k", J.String f.key); ("v", J.String f.value) ])
                        line))
                 lines) );
        ]
  | Table t -> J.Obj (("t", J.String "table") :: (match table_to_json t with J.Obj f -> f | _ -> []))
  | Curve c ->
      J.Obj
        [
          ("t", J.String "curve");
          ("name", J.String c.curve);
          ("shape", J.String c.shape);
          (* The x axis was capacity S for every curve before the
             trade-off experiments; older payloads omit the field. *)
          ("xlabel", J.String c.xlabel);
          ( "points",
            J.List
              (List.map
                 (fun p ->
                   J.Obj
                     [ ("x", J.Int p.x); ("lb", J.Float p.lb); ("ub", J.Int p.ub) ])
                 c.points) );
        ]
  | Check c ->
      J.Obj
        (List.concat
           [
             [ ("t", J.String "check"); ("label", J.String c.label); ("ok", J.Bool c.ok) ];
             (match c.lb with Some v -> [ ("lb", J.Float v) ] | None -> []);
             (match c.measured with Some v -> [ ("measured", J.Float v) ] | None -> []);
             (match c.ub with Some v -> [ ("ub", J.Float v) ] | None -> []);
           ])

let to_json doc =
  J.Obj
    [
      ("name", J.String doc.name);
      ("ok", J.Bool (ok doc));
      ("blocks", J.List (List.map block_to_json doc.blocks));
    ]

let block_of_json json =
  let str field = Option.bind (J.mem json field) J.as_string in
  let ( let* ) = Option.bind in
  match str "t" with
  | Some "section" -> Option.map (fun s -> Section s) (str "title")
  | Some "text" -> Option.map (fun s -> Text s) (str "text")
  | Some "facts" ->
      let* lines = Option.bind (J.mem json "lines") J.as_list in
      let* lines =
        List.fold_right
          (fun line acc ->
            Option.bind acc (fun acc ->
                let* facts = J.as_list line in
                let* facts =
                  List.fold_right
                    (fun f acc ->
                      Option.bind acc (fun acc ->
                          let* k = Option.bind (J.mem f "k") J.as_string in
                          let* v = Option.bind (J.mem f "v") J.as_string in
                          Some ({ key = k; value = v } :: acc)))
                    facts (Some [])
                in
                Some (facts :: acc)))
          lines (Some [])
      in
      Some (Facts lines)
  | Some "table" -> Option.map (fun t -> Table t) (table_of_json json)
  | Some "curve" ->
      let* name = str "name" in
      let* shape = str "shape" in
      let* points = Option.bind (J.mem json "points") J.as_list in
      let* points =
        List.fold_right
          (fun p acc ->
            Option.bind acc (fun acc ->
                let* x = Option.bind (J.mem p "x") J.as_int in
                let* lb = Option.bind (J.mem p "lb") J.as_float in
                let* ub = Option.bind (J.mem p "ub") J.as_int in
                Some ({ x; lb; ub } :: acc)))
          points (Some [])
      in
      let xlabel = Option.value ~default:"S" (str "xlabel") in
      Some (Curve { curve = name; shape; xlabel; points })
  | Some "check" ->
      let* label = str "label" in
      let* ok = Option.bind (J.mem json "ok") J.as_bool in
      let opt field = Option.bind (J.mem json field) J.as_float in
      Some
        (Check
           {
             label;
             ok;
             lb = opt "lb";
             measured = opt "measured";
             ub = opt "ub";
           })
  | _ -> None

let of_json json =
  match
    ( Option.bind (J.mem json "name") J.as_string,
      Option.bind (J.mem json "blocks") J.as_list )
  with
  | Some name, Some blocks -> (
      let parsed = List.map block_of_json blocks in
      if List.exists Option.is_none parsed then
        Error "doc: unparseable block"
      else Ok { name; blocks = List.filter_map Fun.id parsed })
  | _ -> Error "doc: missing name or blocks"

(* ------------------------------------------------------------------ *)
(* Markdown renderer.                                                 *)

let md_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '|' -> Buffer.add_string buf "\\|"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "<br>"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let md_table buf t =
  let cells row = String.concat " | " (List.map md_escape row) in
  Buffer.add_string buf ("| " ^ cells (Table.headers t) ^ " |\n");
  Buffer.add_string buf "|";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (match a with Table.Right -> " ---: |" | Table.Left -> " --- |"))
    (Table.aligns t);
  Buffer.add_char buf '\n';
  List.iter
    (function
      | `Rule -> () (* markdown tables have no mid-table rules *)
      | `Row row -> Buffer.add_string buf ("| " ^ cells row ^ " |\n"))
    (Table.body t);
  Buffer.add_char buf '\n'

let md_block buf = function
  | Section title -> Buffer.add_string buf (Printf.sprintf "\n## %s\n\n" title)
  | Text s ->
      let trimmed = String.trim s in
      if trimmed <> "" then
        Buffer.add_string buf ("```\n" ^ trimmed ^ "\n```\n\n")
  | Facts lines ->
      List.iter
        (List.iter (fun f ->
             Buffer.add_string buf
               (Printf.sprintf "- %s: `%s`\n" (md_escape f.key) f.value)))
        lines;
      Buffer.add_char buf '\n'
  | Table t -> md_table buf t
  | Curve c ->
      Buffer.add_string buf
        (Printf.sprintf "\n### %s   (`%s`)\n\n" (md_escape c.curve) c.shape);
      md_table buf (curve_table c)
  | Check c ->
      Buffer.add_string buf
        (Printf.sprintf "- %s %s\n" (if c.ok then "**[ok]**" else "**[FAIL]**")
           (md_escape c.label))

let to_markdown doc =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# Experiment `%s`\n" doc.name);
  List.iter (md_block buf) doc.blocks;
  (* checks end without a separating blank line; close the doc *)
  Buffer.add_char buf '\n';
  Buffer.contents buf
