module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Expr = Dmc_symbolic.Expr
module Formulas = Dmc_symbolic.Formulas

let rows () =
  let cache = float_of_int (Machines.cache_words Machines.bgq) in
  [
    ("CG (any d)", Formulas.cg_vertical_per_flop, []);
    ("GMRES m=8", Formulas.gmres_vertical_per_flop, [ ("m", 8.0) ]);
    ("GMRES m=128", Formulas.gmres_vertical_per_flop, [ ("m", 128.0) ]);
    ("Jacobi 2D", Formulas.jacobi_threshold, [ ("d", 2.0); ("S", cache) ]);
    ("Jacobi 3D", Formulas.jacobi_threshold, [ ("d", 3.0); ("S", cache) ]);
    ("Jacobi 5D", Formulas.jacobi_threshold, [ ("d", 5.0); ("S", cache) ]);
  ]

let table () =
  let t =
    Table.create
      ~headers:
        ([ "algorithm"; "vertical floor (words/FLOP)"; "value" ]
        @ List.map (fun (m : Machines.t) -> m.name) Machines.table1)
  in
  List.iter
    (fun (name, formula, env) ->
      let floor = Expr.eval ~env formula in
      Table.add_row t
        ([
           name;
           Expr.to_string (Expr.simplify formula);
           Printf.sprintf "%.2e" floor;
         ]
        @ List.map
            (fun (m : Machines.t) ->
              Balance.verdict_to_string
                (Balance.classify_lower ~lb_per_flop:floor ~balance:m.vertical_balance))
            Machines.table1))
    (rows ());
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts: one per digest row.  Each payload carries the
   pre-rendered table cells plus the BG/Q verdict the headline checks
   need. *)

module J = Dmc_util.Json
module P = Experiment.P

let part_of_row (name, formula, env) =
  let floor = Expr.eval ~env formula in
  J.Obj
    [
      ("name", J.String name);
      ("formula", J.String (Expr.to_string (Expr.simplify formula)));
      ("floor", J.String (Printf.sprintf "%.2e" floor));
      ( "verdicts",
        P.of_strings
          (List.map
             (fun (m : Machines.t) ->
               Balance.verdict_to_string
                 (Balance.classify_lower ~lb_per_flop:floor
                    ~balance:m.vertical_balance))
             Machines.table1) );
      ( "bgq",
        Experiment.verdict_to_json
          (Balance.classify_lower ~lb_per_flop:floor
             ~balance:Machines.bgq.Machines.vertical_balance) );
    ]

let parts =
  List.map
    (fun ((name, _, _) as row) ->
      { Experiment.part = name; run = (fun () -> part_of_row row) })
    (rows ())

let doc_of_parts payloads =
  let t =
    Table.create
      ~headers:
        ([ "algorithm"; "vertical floor (words/FLOP)"; "value" ]
        @ List.map (fun (m : Machines.t) -> m.name) Machines.table1)
  in
  List.iter
    (fun p ->
      Table.add_row t
        ([ P.str p "name"; P.str p "formula"; P.str p "floor" ]
        @ P.strings p "verdicts"))
    payloads;
  let verdict name =
    let p = List.find (fun p -> P.str p "name" = name) payloads in
    Experiment.verdict_of_json (P.field p "bgq")
  in
  {
    Doc.name = "summary";
    blocks =
      [
        Doc.Section
          "Summary: every algorithm's memory floor vs the Table-1 machines";
        Doc.Table t;
        Doc.Text
          "\n  The pattern the paper establishes: iterative solvers with O(1)\n\
          \  arithmetic intensity (CG, small-m GMRES) are doomed by the memory wall;\n\
          \  stencils and multigrid live far below it thanks to temporal tiling;\n\
          \  GMRES escapes as its Krylov work grows quadratically.\n";
        Doc.check "CG bandwidth-bound"
          (verdict "CG (any d)" = Balance.Bandwidth_bound);
        Doc.check "GMRES m=8 bandwidth-bound"
          (verdict "GMRES m=8" = Balance.Bandwidth_bound);
        Doc.check "GMRES m=128 escapes"
          (verdict "GMRES m=128" = Balance.Indeterminate);
        Doc.check "Jacobi 2D/3D unbound"
          (verdict "Jacobi 2D" = Balance.Indeterminate
          && verdict "Jacobi 3D" = Balance.Indeterminate);
      ];
  }
