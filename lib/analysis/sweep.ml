module J = Dmc_util.Json
module Table = Dmc_util.Table
module Bounds = Dmc_core.Bounds
module Mp_bounds = Dmc_core.Mp_bounds
module Engine_job = Dmc_core.Engine_job
module Workload = Dmc_gen.Workload

type row = { workload : string; s : int; p : int; engine : string }

type t = {
  specs : string list;
  sizes : int list;
  seeds : int list;
  ss : int list;
  ps : int list;
  engines : string list;
  tmo : float option;
  budget : int option;
  grid_rows : row list;
  graphs : (string, Dmc_cdag.Cdag.t) Hashtbl.t;
}

let rows t = t.grid_rows
let timeout t = t.tmo
let node_budget t = t.budget

(* ------------------------------------------------------------------ *)
(* Template expansion                                                  *)

let contains s sub =
  let sl = String.length s and bl = String.length sub in
  let rec go i = i + bl <= sl && (String.sub s i bl = sub || go (i + 1)) in
  go 0

let replace_all s ~sub ~by =
  let sl = String.length s and bl = String.length sub in
  let buf = Buffer.create sl in
  let i = ref 0 in
  while !i <= sl - bl do
    if String.sub s !i bl = sub then begin
      Buffer.add_string buf by;
      i := !i + bl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_substring buf s !i (sl - !i);
  Buffer.contents buf

(* Registry name/arity/integer validation without building the graph:
   a grid can reference hundreds of large workloads, and [make] must
   reject typos without paying for a single vertex. *)
let validate_spec spec =
  let name, params =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1)
          |> String.split_on_char ',' )
  in
  match Workload.find name with
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (try: dmc gen --list)" name)
  | Some w ->
      if List.length params <> List.length w.Workload.params then
        Error
          (Printf.sprintf "%S: expected %s" spec (Workload.signature w))
      else if
        List.exists (fun p -> int_of_string_opt (String.trim p) = None) params
      then Error (Printf.sprintf "%S: non-integer parameter" spec)
      else Ok ()

let expand_template ~sizes ~seeds spec =
  let with_n =
    if contains spec "{n}" then
      List.map (fun n -> replace_all spec ~sub:"{n}" ~by:(string_of_int n)) sizes
    else [ spec ]
  in
  List.concat_map
    (fun sp ->
      if contains sp "{seed}" then
        List.map
          (fun sd -> replace_all sp ~sub:"{seed}" ~by:(string_of_int sd))
          seeds
      else [ sp ])
    with_n

let make ~specs ?(sizes = []) ?(seeds = []) ~ss ?(ps = [ 1 ]) ?engines ?timeout
    ?node_budget () =
  let engines =
    match engines with
    | Some es -> es
    | None -> List.map fst Bounds.governed_engines
  in
  let known = List.map fst Bounds.governed_engines @ Mp_bounds.engine_names in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if specs = [] then err "sweep: no workload specs"
  else if ss = [] then err "sweep: no S values"
  else if List.exists (fun s -> s < 1) ss then err "sweep: S values must be >= 1"
  else if ps = [] then err "sweep: no p values"
  else if List.exists (fun q -> q < 1) ps then err "sweep: p values must be >= 1"
  else if engines = [] then err "sweep: no engines"
  else if
    (* The same two-way check as {n}/{seed}: a p axis that no selected
       engine reads would silently multiply the grid with duplicate
       rows. *)
    ps <> [ 1 ] && not (List.exists Mp_bounds.is_engine engines)
  then
    err
      "sweep: p values given but no selected engine is p-sensitive (pick \
       from: %s)"
      (String.concat ", " Mp_bounds.engine_names)
  else
    match List.find_opt (fun e -> not (List.mem e known)) engines with
    | Some e ->
        err "sweep: unknown engine %S (known: %s)" e (String.concat ", " known)
    | None -> (
        let uses_n = List.exists (fun sp -> contains sp "{n}") specs in
        let uses_seed = List.exists (fun sp -> contains sp "{seed}") specs in
        if uses_n && sizes = [] then
          err "sweep: a spec uses {n} but no sizes were given"
        else if uses_seed && seeds = [] then
          err "sweep: a spec uses {seed} but no seeds were given"
        else if (not uses_n) && sizes <> [] then
          err "sweep: sizes given but no spec uses {n}"
        else if (not uses_seed) && seeds <> [] then
          err "sweep: seeds given but no spec uses {seed}"
        else
          let concrete =
            List.concat_map (expand_template ~sizes ~seeds) specs
          in
          match
            List.find_map
              (fun sp ->
                match validate_spec sp with
                | Error e -> Some e
                | Ok () -> None)
              concrete
          with
          | Some e -> Error ("sweep: " ^ e)
          | None ->
              let grid_rows =
                List.concat_map
                  (fun wl ->
                    List.concat_map
                      (fun s ->
                        List.concat_map
                          (fun q ->
                            List.map
                              (fun engine ->
                                { workload = wl; s; p = q; engine })
                              engines)
                          ps)
                      ss)
                  concrete
              in
              Ok
                {
                  specs;
                  sizes;
                  seeds;
                  ss;
                  ps;
                  engines;
                  tmo = timeout;
                  budget = node_budget;
                  grid_rows;
                  graphs = Hashtbl.create 16;
                })

let job t row =
  match
    match Hashtbl.find_opt t.graphs row.workload with
    | Some g -> Ok g
    | None -> (
        match Workload.parse row.workload with
        | Ok g ->
            Hashtbl.replace t.graphs row.workload g;
            Ok g
        | Error e -> Error e)
  with
  | Error e -> Error e
  | Ok g ->
      Ok
        (Engine_job.make ?timeout:t.tmo ?node_budget:t.budget ~p:row.p g
           ~s:row.s ~engine:row.engine)

let degraded t row ~failure =
  match
    match Hashtbl.find_opt t.graphs row.workload with
    | Some g -> Ok g
    | None -> Workload.parse row.workload
  with
  | Error e -> Error e
  | Ok g ->
      let degraded =
        match List.assoc_opt row.engine Bounds.governed_engines with
        | Some kind ->
            Bounds.degraded_row g ~s:row.s ~engine:row.engine ~kind ~failure
              ~elapsed:0.
        | None ->
            (* [make] validated the name, so it is a {!Mp_bounds} engine. *)
            Mp_bounds.degraded_row g ~p:row.p ~s:row.s ~engine:row.engine
              ~failure ~elapsed:0.
      in
      Ok (Bounds.row_to_json degraded)

(* ------------------------------------------------------------------ *)
(* Axis syntax                                                         *)

let parse_int_list s =
  let items = String.split_on_char ',' s |> List.map String.trim in
  let parse_item it =
    match int_of_string_opt it with
    | Some n -> Ok [ n ]
    | None -> (
        match String.index_opt it '.' with
        | Some i
          when i + 1 < String.length it
               && it.[i + 1] = '.'
               && i > 0 ->
            let lo = String.sub it 0 i in
            let hi = String.sub it (i + 2) (String.length it - i - 2) in
            (match (int_of_string_opt lo, int_of_string_opt hi) with
            | Some lo, Some hi when lo <= hi ->
                Ok (List.init (hi - lo + 1) (fun k -> lo + k))
            | Some _, Some _ ->
                Error (Printf.sprintf "range %S: lower bound above upper" it)
            | _ -> Error (Printf.sprintf "bad range %S" it))
        | _ -> Error (Printf.sprintf "bad integer %S" it))
  in
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | it :: rest -> (
        match parse_item it with
        | Ok ns -> go (ns :: acc) rest
        | Error e -> Error e)
  in
  if s = "" then Error "empty integer list" else go [] items

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)

let kind_tag = "dmc-sweep"

(* v2 added the processor axis ("ps" in the grid signature, a "p"
   column in rows); v1 checkpoints are refused with a version message
   rather than a confusing grid mismatch. *)
let version = 2

let signature t =
  let ints ns = J.List (List.map (fun i -> J.Int i) ns) in
  let strs ss = J.List (List.map (fun s -> J.String s) ss) in
  J.Obj
    [
      ("specs", strs t.specs);
      ("sizes", ints t.sizes);
      ("seeds", ints t.seeds);
      ("ss", ints t.ss);
      ("ps", ints t.ps);
      ("engines", strs t.engines);
      ("timeout", match t.tmo with None -> J.Null | Some f -> J.Float f);
      ( "node_budget",
        match t.budget with None -> J.Null | Some i -> J.Int i );
    ]

let checkpoint t ~committed =
  J.Obj
    [
      ("kind", J.String kind_tag);
      ("v", J.Int version);
      ("grid", signature t);
      ("rows", J.List committed);
    ]

let restore t json =
  let str f = Option.bind (J.mem json f) J.as_string in
  match (str "kind", Option.bind (J.mem json "v") J.as_int) with
  | Some k, _ when k <> kind_tag ->
      Error (Printf.sprintf "checkpoint is %S, not a %s" k kind_tag)
  | _, Some v when v <> version ->
      Error (Printf.sprintf "checkpoint v%d, this build speaks v%d" v version)
  | Some _, Some _ -> (
      match (J.mem json "grid", Option.bind (J.mem json "rows") J.as_list) with
      | Some grid, Some payloads ->
          if grid <> signature t then
            Error
              "checkpoint was written by a different grid (specs, axes, \
               engines or budgets differ); refusing to resume"
          else if List.length payloads > List.length t.grid_rows then
            Error "checkpoint has more committed rows than the grid expands to"
          else Ok payloads
      | _ -> Error "checkpoint has no grid/rows fields")
  | _ -> Error ("not a " ^ kind_tag ^ " checkpoint")

(* ------------------------------------------------------------------ *)
(* Host health timeline                                                *)

(* A fleet snapshot the report can render without this library seeing
   dmc_runtime: the driver converts its [Host.t] ledger into these
   neutral records after the run. *)
type host_stat = {
  h_name : string;
  h_remote : bool;  (** command transport (vs. the local fork backend) *)
  h_verdict : string;  (** final health verdict, e.g. ["alive"] *)
  h_dispatched : int;
  h_completed : int;
  h_failures : int;
  h_resharded : int;
  h_quarantines : int;
  h_quarantine_log : (float * float) list;
      (** [(entered, until)] absolute times, newest first; [until] is
          [infinity] for a poisoning *)
}

let host_health_doc ~run_started stats =
  let rel ts =
    if ts = infinity then "inf"
    else Printf.sprintf "+%.1fs" (ts -. run_started)
  in
  let timeline st =
    match List.rev st.h_quarantine_log with
    | [] -> "-"
    | log ->
        String.concat "; "
          (List.map
             (fun (entered, until_) ->
               Printf.sprintf "%s..%s" (rel entered) (rel until_))
             log)
  in
  let table =
    Table.create
      ~headers:
        [ "host"; "kind"; "verdict"; "dispatched"; "completed"; "failures";
          "resharded"; "quarantines"; "quarantine timeline" ]
  in
  Table.set_align table
    [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Left ];
  List.iter
    (fun st ->
      Table.add_row table
        [
          st.h_name;
          (if st.h_remote then "command" else "fork");
          st.h_verdict;
          string_of_int st.h_dispatched;
          string_of_int st.h_completed;
          string_of_int st.h_failures;
          string_of_int st.h_resharded;
          string_of_int st.h_quarantines;
          timeline st;
        ])
    stats;
  let quarantined =
    List.length (List.filter (fun st -> st.h_quarantine_log <> []) stats)
  in
  [
    Doc.Section "host health";
    Doc.Facts
      [
        [
          Doc.fact "hosts" (string_of_int (List.length stats));
          Doc.fact "quarantined" (string_of_int quarantined);
        ];
      ];
    Doc.Table table;
  ]

(* ------------------------------------------------------------------ *)
(* Merged report                                                       *)

(* Only value-deterministic row fields may appear: values, rungs and
   failure classes are functions of the job, while elapsed times and
   host placement are functions of the run.  The byte-identity
   contract (any --jobs, any fleet, any transient-failure schedule)
   is exactly the deterministic/nondeterministic field split. *)
let doc t ~results =
  let table =
    Table.create
      ~headers:
        [ "workload"; "s"; "p"; "engine"; "kind"; "value"; "rung"; "status" ]
  in
  Table.set_align table
    [ Table.Left; Table.Right; Table.Right; Table.Left; Table.Left;
      Table.Right; Table.Left; Table.Left ];
  let committed = ref 0 in
  let parsed =
    List.map2
      (fun row payload ->
        match payload with
        | None -> (row, None)
        | Some p -> (
            incr committed;
            match Bounds.row_of_json p with
            | Some b -> (row, Some b)
            | None -> (row, None)))
      t.grid_rows results
  in
  List.iter
    (fun (row, b) ->
      match b with
      | None ->
          Table.add_row table
            [ row.workload; string_of_int row.s; string_of_int row.p;
              row.engine; "-"; "-"; "-"; "not committed" ]
      | Some b ->
          Table.add_row table
            [
              row.workload;
              string_of_int row.s;
              string_of_int row.p;
              row.engine;
              Bounds.kind_to_string b.Bounds.kind;
              (match b.Bounds.value with
              | Some v -> string_of_int v
              | None -> "-");
              b.Bounds.rung;
              Bounds.row_status b;
            ])
    parsed;
  (* Per-(workload, s, p) sandwich: engines are the innermost axis, so
     each group is one contiguous block of the row list. *)
  let groups =
    List.fold_left
      (fun acc ((row, _) as entry) ->
        match acc with
        | (key, members) :: rest when key = (row.workload, row.s, row.p) ->
            (key, entry :: members) :: rest
        | _ -> ((row.workload, row.s, row.p), [ entry ]) :: acc)
      [] parsed
    |> List.rev_map (fun (key, members) -> (key, List.rev members))
  in
  (* Engines only sandwich within their own bounded quantity: the
     governed engines bound sequential RBW I/O at S, mp-comm-* the
     p-processor communication volume, mp-time-* the makespan, and
     pc-io-* the partial-computation I/O — a wavefront LB above a
     pc-io UB (the paper's point) or an mp-comm UB (pooled memory)
     would be a spurious failure, not a bug. *)
  let family engine =
    match engine with
    | "mp-comm-lb" | "mp-comm-ub" -> "mp-comm"
    | "mp-time-lb" | "mp-time-ub" -> "mp-time"
    | "pc-io-lb" | "pc-io-ub" -> "pc-io"
    | _ -> "seq"
  in
  let checks =
    List.concat_map
      (fun ((wl, s, q), members) ->
        List.filter_map
          (fun fam ->
            let values pred =
              List.filter_map
                (fun (row, b) ->
                  match b with
                  | Some b when family row.engine = fam && pred b ->
                      Option.map float_of_int b.Bounds.value
                  | _ -> None)
                members
            in
            let lbs =
              values (fun b ->
                  match b.Bounds.kind with
                  | Bounds.Lower | Bounds.Exact -> true
                  | Bounds.Upper -> false)
            in
            let ubs =
              values (fun b ->
                  match b.Bounds.kind with
                  | Bounds.Upper -> true
                  | Bounds.Exact -> b.Bounds.rung = "exact"
                  | Bounds.Lower -> false)
            in
            match (lbs, ubs) with
            | [], _ | _, [] -> None
            | _ ->
                let lb = List.fold_left Float.max neg_infinity lbs in
                let ub = List.fold_left Float.min infinity ubs in
                let label =
                  Printf.sprintf "lb <= ub for %s s=%d%s%s" wl s
                    (if t.ps = [ 1 ] then ""
                     else Printf.sprintf " p=%d" q)
                    (if fam = "seq" then "" else " [" ^ fam ^ "]")
                in
                Some (Doc.check ~lb ~ub label (lb <= ub)))
          [ "seq"; "mp-comm"; "mp-time"; "pc-io" ])
      groups
  in
  let n_rows = List.length t.grid_rows in
  {
    Doc.name = "sweep";
    blocks =
      [
        Doc.Section "parameter sweep";
        Doc.Facts
          [
            [
              Doc.fact "rows" (string_of_int n_rows);
              Doc.fact "workloads"
                (string_of_int
                   (List.length
                      (List.sort_uniq compare
                         (List.map (fun r -> r.workload) t.grid_rows))));
              Doc.fact "engines" (string_of_int (List.length t.engines));
              Doc.fact "s values" (string_of_int (List.length t.ss));
              Doc.fact "p values" (string_of_int (List.length t.ps));
            ];
          ];
        Doc.Table table;
        Doc.Section "checks";
        Doc.check "all rows committed" (!committed = n_rows);
      ]
      @ checks;
  }
