(** Mechanical validation of the bound machinery: on families of small
    CDAGs, check that every lower bound sits below the provably optimal
    game, that every strategy sits above it, and that the Theorem-1
    game-to-partition construction produces valid 2S-partitions with
    the promised arithmetic.  These are the experiments that certify
    the implementation reproduces the paper's theory, not just its
    formulas. *)

type case = {
  name : string;
  n_vertices : int;
  s : int;
  best_lb : int;
  optimal : int option;   (** [None] when the search exceeded its budget *)
  belady : int;
  rb_optimal : int option;
      (** Hong–Kung optimum with recomputation, when the graph satisfies
          the strict convention *)
  sound : bool;
      (** [best_lb <= optimal <= belady], and [rb_optimal <= optimal]
          when both are available *)
}

val soundness_suite : ?seed:int -> ?cases:int -> unit -> case list
(** Random layered/gnp DAGs plus the fixed small families (trees,
    diamonds, FFT, pyramid, binomial), each analyzed at 2–3 values of
    [S]. *)

val soundness_table : case list -> Dmc_util.Table.t

val all_sound : case list -> bool

type theorem1_check = {
  name : string;
  s : int;
  io : int;
  h : int;              (** blocks of the game-derived 2S-partition *)
  partition_valid : bool;
  arithmetic_holds : bool;  (** [s*h >= io >= s*(h-1)] *)
}

val theorem1_suite : ?seed:int -> unit -> theorem1_check list
(** Build Belady games on assorted CDAGs, derive the Theorem-1
    partition from each, and check both partition validity (as a
    2S-partition) and the I/O sandwich. *)

val theorem1_table : theorem1_check list -> Dmc_util.Table.t

type sim_check = {
  name : string;
  s : int;                (** innermost capacity of the simulator *)
  simulated_io : int;     (** boundary-1 traffic of the LRU hierarchy *)
  game_lb : int;          (** best certified lower bound at [S = s] *)
  holds : bool;           (** [simulated_io >= game_lb] *)
}

val simulator_suite : ?seed:int -> unit -> sim_check list
(** The cache simulator is one particular pebble-game player, so its
    measured traffic must dominate every certified lower bound. *)

val simulator_table : sim_check list -> Dmc_util.Table.t

type hierarchy_check = {
  name : string;
  s1 : int;
  s2 : int;
  boundary_regs : int;   (** measured words between registers and cache *)
  boundary_mem : int;    (** measured words between cache and memory *)
  lb_at_s1 : int;        (** certified sequential bound at [S = s1] *)
  lb_at_s2 : int;
  holds : bool;
      (** both boundaries dominate their bounds (Theorem 5 with
          [N_l = 1]) and the inner boundary carries at least as much *)
}

val hierarchy_suite : unit -> hierarchy_check list
(** Run the three-level scheduler ({!Dmc_core.Strategy.hierarchical})
    on assorted workloads — every game validated by
    {!Dmc_core.Prbw_game.run} — and check the measured per-boundary
    traffic against the corresponding sequential lower bounds. *)

val hierarchy_table : hierarchy_check list -> Dmc_util.Table.t

type matmul_level_row = {
  n : int;
  s1 : int;
  s2 : int;
  regs_traffic : int;       (** measured at the register boundary *)
  regs_bound : float;       (** [n^3 / (2 sqrt(2 s1))] *)
  cache_traffic : int;      (** measured at the cache boundary *)
  cache_bound : float;      (** [n^3 / (2 sqrt(2 s2))] *)
}

val matmul_multilevel : ?n:int -> configs:(int * int) list -> unit -> matmul_level_row list
(** Drive a two-level blocked matrix multiplication through the
    three-level scheduler for each [(s1, s2)] pair and record the
    measured traffic at both boundaries next to the Hong–Kung bound at
    the corresponding capacity — the multi-level tightness experiment
    behind Theorems 5/6.  Every game is validated by
    {!Dmc_core.Prbw_game.run}.  Default [n = 16]. *)

val matmul_multilevel_table : matmul_level_row list -> Dmc_util.Table.t

val validate_parts : Experiment.part list
(** The "validate" experiment: soundness suite + Theorem 1. *)

val validate_doc_of_parts : Dmc_util.Json.t list -> Doc.t

val sim_parts : Experiment.part list
(** The "sim" experiment: simulator cross-check, P-RBW hierarchy, and
    the multi-level matmul tightness. *)

val sim_doc_of_parts : Dmc_util.Json.t list -> Doc.t
